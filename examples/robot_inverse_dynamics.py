"""Robot-arm nearest neighbors: the paper's Robot workload.

Run:  python examples/robot_inverse_dynamics.py

The paper's Robot dataset comes from a Barrett WAM arm and is used for
model learning (Nguyen-Tuong & Peters 2010): predicting dynamics at a new
state from the nearest previously-seen states.  This example builds that
pipeline on the kinematic-trace analogue: an exact RBC serves k-NN lookups
inside a local regression loop, and the answers are verified against
brute force while being ~an order of magnitude cheaper.
"""

import numpy as np

from repro import ExactRBC, bf_knn
from repro.data import robot_arm

# states: joint angles + velocities + end-effector features (21-d)
n, n_queries = 100_000, 500
trace = robot_arm(n + n_queries, n_joints=7, seed=0)
rng = np.random.default_rng(1)
perm = rng.permutation(trace.shape[0])
X, Q = trace[perm[:n]], trace[perm[n : n + n_queries]]

# the "targets" to predict: next-step joint velocities (columns 7..14 of
# the *following* sample in the original trace order)
targets = np.roll(trace[:, 7:14], -1, axis=0)
y_X, y_Q = targets[perm[:n]], targets[perm[n : n + n_queries]]

print(f"robot trace: {n} states (21 features), {n_queries} query states")

# ------------------------------------------------- index the state space
index = ExactRBC(metric="euclidean", seed=0)
index.build(X, n_reps=int(3 * np.sqrt(n)))
print(
    f"built RBC with {index.n_reps} representatives "
    f"({index.build_stats.build_evals / 1e6:.1f}M build evaluations)"
)

# ------------------------------------------------- k-NN dynamics model
K = 8
dist, idx = index.query(Q, k=K)
work = index.last_stats.per_query_evals()

# inverse-distance-weighted local regression over the K neighbors
w = 1.0 / np.maximum(dist, 1e-9)
w /= w.sum(axis=1, keepdims=True)
pred = np.einsum("qk,qkj->qj", w, y_X[idx])
err = np.linalg.norm(pred - y_Q, axis=1)
scale = np.linalg.norm(y_Q, axis=1).mean()
print(
    f"k-NN dynamics prediction: median relative error "
    f"{np.median(err) / scale:.1%} using {work:.0f} evaluations per query "
    f"({n / work:.1f}x less work than brute force)"
)

# ------------------------------------------------- verify exactness
true_dist, _ = bf_knn(Q[:50], X, k=K)
assert np.allclose(dist[:50], true_dist), "RBC must be exact"
print("verified: neighbor sets identical to exhaustive search")
