"""Image retrieval: the paper's Tiny-Images workload, end to end.

Run:  python examples/image_retrieval.py

The paper's motivating computer-vision scenario (§7.1): image descriptors
are reduced with Johnson-Lindenstrauss random projections, then searched
with the one-shot RBC, trading a little recall for an order of magnitude
of speed.  This example walks the whole pipeline on synthetic image
patches and prints the speed/quality trade-off curve of Figure 1.
"""

import numpy as np

from repro import OneShotRBC, bf_knn
from repro.data import image_patches, jl_dimension, random_projection
from repro.eval import mean_rank, ranks_of_results

# ------------------------------------------------- 1. image descriptors
n, n_queries = 30_000, 200
raw = image_patches(n + n_queries, patch=16, seed=0)  # 256-dim descriptors
print(f"generated {raw.shape[0]} image-patch descriptors of dim {raw.shape[1]}")

# ------------------------------------------------- 2. random projection
target_dim = 16  # the paper uses 4..32
projected, proj_map = random_projection(raw, target_dim, seed=1)
X, Q = projected[:n], projected[n:]
print(
    f"projected to {target_dim} dims "
    f"(JL bound for 20% distortion would need k={jl_dimension(n, 0.2)}; "
    "NN search tolerates far more distortion than the worst-case bound)"
)

# ------------------------------------------------- 3. ground truth
true_dist, true_idx = bf_knn(Q, X, k=1)

# ------------------------------------------------- 4. trade-off sweep
print(f"\n{'n_r = s':>8} {'evals/query':>12} {'work saved':>11} {'mean rank':>10}")
for frac in (0.5, 1, 2, 4, 8):
    p = int(frac * np.sqrt(n))
    index = OneShotRBC(seed=0, rep_scheme="exact").build(X, n_reps=p, s=p)
    dist, idx = index.query(Q, k=1)
    work = index.last_stats.per_query_evals()
    rank = mean_rank(Q, X, idx)
    print(f"{p:>8} {work:>12.0f} {n / work:>10.1f}x {rank:>10.3f}")

# ------------------------------------------------- 5. retrieve
index = OneShotRBC(seed=0, rep_scheme="exact").build(
    X, n_reps=int(4 * np.sqrt(n)), s=int(4 * np.sqrt(n))
)
dist, idx = index.query(Q, k=3)
ranks = ranks_of_results(Q, X, idx)
print(
    f"\nfinal index: 3-NN retrieval, {float((ranks == 0).mean()):.0%} of "
    f"queries got the exact nearest image, median rank {np.median(ranks):.0f}"
)
