"""Manifold learning on an RBC-built k-NN graph.

Run:  python examples/manifold_learning.py

The paper motivates intrinsic dimensionality with the manifold-learning
literature (LLE, Isomap — its refs [26, 27]); those methods start from an
all-k-NN graph, which is exactly the workload
:func:`repro.core.knngraph.knn_graph` accelerates.  This example runs an
Isomap-style pipeline end to end:

1. sample a 2-d manifold ("swiss-roll"-like) embedded in 10 dimensions,
2. build its k-NN graph with the exact RBC (verified against brute force),
3. embed with graph shortest-path distances + classical MDS,
4. check the recovered coordinates correlate with the true latent ones.
"""

import numpy as np

from repro.core.knngraph import knn_graph, knn_graph_networkx
from repro.dimension import estimate_expansion_rate

rng = np.random.default_rng(0)
n = 4_000

# ------------------------------------------------- 1. sample the manifold
t = rng.uniform(0, 3 * np.pi, size=n)  # latent coordinate 1 (roll angle)
h = rng.uniform(0, 5, size=n)  # latent coordinate 2 (height)
roll = np.stack([t * np.cos(t), h, t * np.sin(t)], axis=1)
# embed in 10-d with a random rotation + mild noise
basis, _ = np.linalg.qr(rng.normal(size=(10, 3)))
X = roll @ basis.T + 0.01 * rng.normal(size=(n, 10))

est = estimate_expansion_rate(X, n_centers=48, seed=0)
print(
    f"{n} points in 10 ambient dims; expansion rate c = {est.c:.1f} "
    f"(log2 c = {est.log2_c:.1f} — consistent with a ~2-d manifold)"
)

# ------------------------------------------------- 2. k-NN graph via RBC
k = 8
dist, idx = knn_graph(X, k, method="rbc", seed=0)
d_ref, _ = knn_graph(X[:400], k, method="brute")  # spot check a prefix
print(f"built the {k}-NN graph exactly (RBC-accelerated all-k-NN)")

g = knn_graph_networkx(X, k, seed=0)
import networkx as nx

if not nx.is_connected(g):
    largest = max(nx.connected_components(g), key=len)
    g = g.subgraph(largest).copy()
    print(f"  using largest component: {g.number_of_nodes()} nodes")

# ------------------------------------------------- 3. Isomap: geodesics + MDS
nodes = sorted(g.nodes())
sub = nx.relabel_nodes(g, {v: i for i, v in enumerate(nodes)})
from scipy.sparse.csgraph import shortest_path

adj = nx.to_scipy_sparse_array(sub, weight="weight", format="csr")
# geodesics from a landmark subset (landmark MDS keeps this O(Ln))
L = 200
landmarks = rng.choice(len(nodes), size=L, replace=False)
G = shortest_path(adj, method="D", directed=False, indices=landmarks)  # (L, n)

# classical MDS on the landmark-to-landmark block, then triangulate
D2 = G[:, landmarks] ** 2
J = np.eye(L) - 1.0 / L
B = -0.5 * J @ D2 @ J
w, V = np.linalg.eigh(B)
order = np.argsort(w)[::-1][:2]
Lm = V[:, order] * np.sqrt(np.maximum(w[order], 0.0))
# distance-based triangulation of all points against the landmarks
mean_d2 = D2.mean(axis=1)
pinv = np.linalg.pinv(Lm)
emb = (-0.5 * (G**2 - mean_d2[:, None])).T @ pinv.T

# ------------------------------------------------- 4. validate
true_latent = np.stack([t, h], axis=1)[nodes]


def best_corr(a: np.ndarray) -> float:
    """Max |correlation| of an embedding axis against each latent."""
    return max(
        abs(np.corrcoef(a, true_latent[:, j])[0, 1]) for j in range(2)
    )


c0, c1 = best_corr(emb[:, 0]), best_corr(emb[:, 1])
print(
    f"Isomap embedding recovered the latents: axis correlations "
    f"{c0:.2f} and {c1:.2f} (1.0 = perfect)"
)
assert c0 > 0.8 and c1 > 0.8, "embedding failed to unroll the manifold"
print("manifold successfully unrolled from the RBC-built k-NN graph")
