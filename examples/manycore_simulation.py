"""Machine models: replay a search on the paper's hardware.

Run:  python examples/manycore_simulation.py

Every search in this package can record the operations it performs (dense
distance tiles, tree-reduce merges, branchy traversal steps) into a trace;
the machine models replay a trace on a parameterized device.  This example
reproduces the paper's three hardware stories in miniature:

  * 48-core server (Figure 2): RBC beats parallel brute force;
  * strong scaling: BF-structured search scales near-linearly in cores;
  * GPU (Table 2 / §3): divergent tree search loses to dense search.
"""

import numpy as np

from repro import BruteForceIndex, CoverTree, ExactRBC, OneShotRBC
from repro.data import manifold
from repro.simulator import (
    AMD_48CORE,
    DESKTOP_QUAD,
    TESLA_C2050,
    TraceRecorder,
    simulate,
    strong_scaling,
)

pool = manifold(20_500, 24, 3, seed=0)
X, Q = pool[:20_000], pool[20_000:]

# --------------------------------------------- record one trace per index
traces = {}
for name, index, kwargs in [
    ("brute force", BruteForceIndex().build(X), dict(tile_cols=2048)),
    ("exact RBC", ExactRBC(seed=0).build(X, n_reps=500), {}),
    ("one-shot RBC", OneShotRBC(seed=0, rep_scheme="exact").build(
        X, n_reps=500, s=500), {}),
    ("cover tree", CoverTree().build(X[:5_000]), {}),
]:
    rec = TraceRecorder()
    index.query(Q, 1, recorder=rec, **kwargs)
    traces[name] = rec.trace

# --------------------------------------------- replay on each machine
print(f"{'algorithm':>14} | {'48-core ms':>10} | {'quad ms':>8} | {'GPU ms':>8}")
for name, trace in traces.items():
    times = [
        simulate(trace, m).time_s * 1e3
        for m in (AMD_48CORE, DESKTOP_QUAD, TESLA_C2050)
    ]
    print(f"{name:>14} | {times[0]:>10.3f} | {times[1]:>8.3f} | {times[2]:>8.3f}")
print("(cover tree ran on a 4x smaller database and is still slowest on GPU:")
print(" branch divergence serializes its traversal — paper §3's argument)")

# --------------------------------------------- strong scaling
print(f"\nstrong scaling of the exact RBC trace on the AMD model:")
for cores, res in strong_scaling(traces["exact RBC"], AMD_48CORE, [1, 4, 16, 48]):
    print(
        f"  {cores:>2} cores: {res.time_s * 1e3:8.3f} ms  "
        f"(utilization {res.utilization:.0%})"
    )
