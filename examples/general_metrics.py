"""General metric spaces: edit distance on strings, shortest paths on graphs.

Run:  python examples/general_metrics.py

The RBC is defined for arbitrary metrics (paper §6 names edit distance and
graph shortest-path distance explicitly).  This example indexes both:

  * DNA-like sequences under Levenshtein distance — the bioinformatics
    similarity-search workload of the paper's introduction;
  * the nodes of a road-network-like geometric graph under shortest-path
    distance — "nearest facility" queries.
"""

import numpy as np

from repro import ExactRBC, bf_knn
from repro.metrics import EditDistance, GraphMetric
from repro.data import random_geometric_graph, random_strings

# --------------------------------------------------------- edit distance
print("== sequences under edit distance ==")
# sequence families: 30 seed sequences, each mutated at ~8% per position —
# the clustered structure typical of biological sequence databases
pool = random_strings(
    4_020, min_len=12, max_len=28, n_seeds=30, mutation_rate=0.08, seed=0
)
db, queries = pool[:4_000], pool[4_000:]

index = ExactRBC(metric=EditDistance(), seed=0)
index.build(db, n_reps=int(3 * np.sqrt(len(db))))
dist, idx = index.query(queries, k=2)

true_dist, _ = bf_knn(queries, db, EditDistance(), k=2)
assert np.allclose(dist, true_dist)
work = index.last_stats.per_query_evals()
print(f"indexed {len(db)} sequences; exact 2-NN with {work:.0f} edit-distance")
print(f"computations per query ({len(db) / work:.1f}x less than brute force)")
for q, d, i in list(zip(queries, dist, idx))[:3]:
    print(f"  {q!r:32s} -> nearest {db[i[0]]!r} (distance {d[0]:.0f})")

# --------------------------------------------------------- graph metric
print("\n== graph nodes under shortest-path distance ==")
g, pos = random_geometric_graph(3_000, seed=2)
metric = GraphMetric(g)  # precomputes all-pairs shortest paths

node_ids = metric.node_ids()
rng = np.random.default_rng(3)
perm = rng.permutation(len(node_ids))
facilities, clients = node_ids[perm[:2_700]], node_ids[perm[2_700:2_720]]

index = ExactRBC(metric=metric, seed=0)
index.build(facilities)
dist, idx = index.query(clients, k=1)

true_dist, _ = bf_knn(clients, facilities, metric, k=1)
assert np.allclose(dist, true_dist)
work = index.last_stats.per_query_evals()
print(
    f"{len(facilities)} facility nodes indexed; nearest-facility queries "
    f"need {work:.0f} distance lookups each "
    f"({len(facilities) / work:.1f}x less than scanning all facilities)"
)
print(
    f"  example: client node {clients[0]} -> facility node "
    f"{facilities[idx[0, 0]]} at network distance {dist[0, 0]:.3f}"
)
