"""Quickstart: build a Random Ball Cover and search it.

Run:  python examples/quickstart.py

Covers the three public entry points in ~60 lines:
  * exhaustive search with the brute-force primitive (the baseline),
  * ``ExactRBC`` — guaranteed-exact search at a fraction of the work,
  * ``OneShotRBC`` — approximate search with a provable success rate.
"""

import numpy as np

from repro import ExactRBC, OneShotRBC, bf_knn
from repro.data import manifold

# A database with low intrinsic dimensionality (3-d structure embedded in
# 20 ambient dimensions) — the regime the RBC is designed for.
pool = manifold(50_200, ambient_dim=20, intrinsic_dim=3, seed=0)
X, Q = pool[:50_000], pool[50_000:]
print(f"database: {X.shape[0]} points in {X.shape[1]} dims, {len(Q)} queries")

# ------------------------------------------------------- brute force
true_dist, true_idx = bf_knn(Q, X, metric="euclidean", k=5)
print(f"\nbrute force: {X.shape[0]} distance evaluations per query")

# ------------------------------------------------------- exact RBC
exact = ExactRBC(metric="euclidean", seed=0)
exact.build(X)  # one BF(X, R) call; n_reps defaults to sqrt(n)
dist, idx = exact.query(Q, k=5)

assert np.allclose(dist, true_dist), "exact search must match brute force"
stats = exact.last_stats
print(
    f"exact RBC:   {stats.per_query_evals():.0f} evaluations per query "
    f"({X.shape[0] / stats.per_query_evals():.1f}x less work), "
    "answers identical"
)
print(
    f"             pruning: {stats.pruned_by_psi / len(Q):.1f} reps/query by the"
    f" psi rule, {stats.pruned_by_3gamma / len(Q):.1f} by the 3-gamma rule"
)

# ------------------------------------------------------- one-shot RBC
# Theorem 2 parameters: exact answer with probability >= 1 - delta.
oneshot = OneShotRBC(metric="euclidean", seed=0)
oneshot.build(X, delta=0.05, c=2.0)
dist1, idx1 = oneshot.query(Q, k=5)

agreement = float(np.isclose(dist1[:, 0], true_dist[:, 0]).mean())
print(
    f"one-shot:    {oneshot.last_stats.per_query_evals():.0f} evaluations per "
    f"query, found the true NN for {agreement:.0%} of queries "
    f"(guarantee: >= 95%)"
)
