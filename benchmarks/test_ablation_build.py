"""Ablation — construction cost of every structure.

The paper's §4 point: RBC construction is itself one brute-force call, so
it parallelizes exactly like queries do.  Tree structures build by
sequential insertion/partitioning.  This benchmark measures build cost
three ways per structure — distance evaluations, host wall time, and the
48-core machine-model time of the recorded build trace — and checks the
RBC's build is model-parallel while the trees' are not.
"""

from __future__ import annotations

import time

from conftest import bench_once

from repro.baselines import BallTree, CoverTree, KDTree
from repro.core import ExactRBC, OneShotRBC
from repro.data import load
from repro.eval import format_table
from repro.simulator import AMD_48CORE, TraceRecorder, simulate, with_cores

N = 8_000


def run_builds():
    X, _ = load("tiny8", scale=0.1, n_queries=1, max_n=N)
    rows = []
    results = {}
    for label, factory, build_kwargs in [
        ("exact RBC", lambda: ExactRBC(seed=0), dict(n_reps=300)),
        ("one-shot RBC", lambda: OneShotRBC(seed=0), dict(n_reps=300, s=300)),
        ("cover tree", CoverTree, {}),
        ("kd-tree", KDTree, {}),
        ("ball tree", BallTree, {}),
    ]:
        index = factory()
        rec = TraceRecorder()
        t0 = time.perf_counter()
        index.build(X, recorder=rec, **build_kwargs)
        wall = time.perf_counter() - t0
        evals = index.metric.counter.n_evals
        t48 = simulate(rec.trace, AMD_48CORE).time_s
        t1 = simulate(rec.trace, with_cores(AMD_48CORE, 1)).time_s
        scaling = t1 / t48 if t48 > 0 else 1.0
        rows.append([label, evals, wall, t48 * 1e3, scaling])
        results[label] = dict(evals=evals, scaling=scaling, wall=wall)
    return rows, results


def test_ablation_build_costs(benchmark, report):
    rows, results = bench_once(benchmark, run_builds)
    report(
        "ablation_build",
        format_table(
            ["structure", "distance evals", "host wall s",
             "48-core model ms", "model scaling 1→48"],
            rows,
            title=(
                f"Ablation: construction cost on tiny8 analog (n={N})\n"
                "(RBC builds are single BF calls and scale on the model;"
                " tree builds are sequential)"
            ),
        ),
    )
    # RBC builds parallelize on the model; the sequential-chain builds
    # (cover tree insertion, ball tree recursion) do not
    assert results["exact RBC"]["scaling"] > 4.0
    assert results["one-shot RBC"]["scaling"] > 4.0
    assert results["cover tree"]["scaling"] < 1.5
    assert results["ball tree"]["scaling"] < 1.5
    # the kd-tree build computes no distances at all (coordinate splits)
    assert results["kd-tree"]["evals"] == 0
    # RBC build work is exactly n * |R| (one BF call each way); |R| is
    # Bernoulli-sampled with mean 300, so check the n-divisibility and
    # the expected magnitude
    for name in ("exact RBC", "one-shot RBC"):
        evals = results[name]["evals"]
        assert evals % N == 0
        assert 0.8 * 300 <= evals / N <= 1.2 * 300
