"""Kernel engine — warm-cache query throughput vs the pre-engine paths.

The engine makes repeated ``BF`` calls against a fixed database
zero-recompute: prepared operands (contiguous data + hoisted norms) are
cached per dataset, stage-2 candidates are contiguous slices of a packed
pre-gathered matrix, ``squared_ok`` metrics rank in the squared domain,
the uniform one-shot lists collapse to batched block-diagonal matmuls,
and the exact stage 2 filters candidates against the gamma bound instead
of running a selection per representative.  ``dtype="float32"`` halves
GEMM traffic on top, with a float64 re-rank keeping answers safe.

This benchmark measures the acceptance configuration (d=16 Gaussian,
n=20k, m=1k, k=5): with warm caches both index classes must answer
query batches >= 1.5x faster than with the engine disabled
(``engine=False`` reproduces the pre-engine code path), at identical
answers.  Timing interleaves the contenders round by round and compares
medians of per-round ratios, so drifting load on a shared runner hits
both sides equally.

Results are written to ``BENCH_kernels.json`` at the repo root so the
perf trajectory is trackable across PRs.
"""

from __future__ import annotations

import json
import pathlib
import time

import numpy as np
from conftest import bench_once

from repro.core import ExactRBC, OneShotRBC
from repro.eval import format_table

BENCH_JSON = pathlib.Path(__file__).resolve().parents[1] / "BENCH_kernels.json"

#: the acceptance config: d=16 Gaussian, n=20k database, m=1k queries
N, M, DIM, K = 20_000, 1_000, 16, 5
SPEEDUP_BAR = 1.5


def _interleaved_times(fns: dict, rounds: int) -> dict:
    """Per-round wall-clock for each contender, measured back to back."""
    times = {name: [] for name in fns}
    for _ in range(rounds):
        for name, fn in fns.items():
            t0 = time.perf_counter()
            fn()
            times[name].append(time.perf_counter() - t0)
    return times


def _median_ratio(base: list, other: list) -> float:
    """Median of per-round base/other ratios (load-drift robust)."""
    return float(np.median([b / o for b, o in zip(base, other)]))


def run_class(cls, X, Q, rounds: int = 7):
    indexes = {
        "base": cls(seed=0, engine=False).build(X),
        "f64": cls(seed=0).build(X),
        "f32": cls(seed=0, dtype="float32").build(X),
    }

    # ---- answers first (also warms every cache)
    d0, i0 = indexes["base"].query(Q, k=K)
    d64, i64 = indexes["f64"].query(Q, k=K)
    d32, i32 = indexes["f32"].query(Q, k=K)
    # default engine path: bit-identical to the pre-engine formulation
    assert np.array_equal(i0, i64), f"{cls.__name__}: f64 engine changed ids"
    assert np.array_equal(d0, d64), f"{cls.__name__}: f64 engine changed dists"
    # float32 + refinement: identical neighbor ids, float64-accurate dists
    assert np.array_equal(i0, i32), f"{cls.__name__}: f32 path changed ids"
    np.testing.assert_allclose(d0, d32, rtol=1e-9, atol=1e-12)

    times = _interleaved_times(
        {name: (lambda ix=ix: ix.query(Q, k=K)) for name, ix in indexes.items()},
        rounds,
    )
    evals = indexes["f64"].last_stats.total_evals
    return {
        "base_s": min(times["base"]),
        "engine_f64_s": min(times["f64"]),
        "engine_f32_s": min(times["f32"]),
        "speedup_f64": _median_ratio(times["base"], times["f64"]),
        "speedup_f32": _median_ratio(times["base"], times["f32"]),
        "evals_per_query": evals / M,
    }


def test_kernel_engine_speedup(benchmark, report):
    rng = np.random.default_rng(7)
    X = rng.normal(size=(N, DIM))
    Q = rng.normal(size=(M, DIM))

    def experiment():
        results = {
            "exact": run_class(ExactRBC, X, Q),
            "oneshot": run_class(OneShotRBC, X, Q),
        }
        # the headline number: the best answer-safe engine config per class
        # (exact leans on float32 + float64 refinement, one-shot is already
        # past the bar in plain float64)
        for name, r in results.items():
            r["speedup"] = max(r["speedup_f64"], r["speedup_f32"])
        # flaky-runner guard: re-measure once with more rounds before failing
        if min(r["speedup"] for r in results.values()) < SPEEDUP_BAR:
            results = {
                "exact": run_class(ExactRBC, X, Q, rounds=15),
                "oneshot": run_class(OneShotRBC, X, Q, rounds=15),
            }
            for name, r in results.items():
                r["speedup"] = max(r["speedup_f64"], r["speedup_f32"])
        return results

    results = bench_once(benchmark, experiment)

    rows = [
        [name, r["base_s"], r["engine_f64_s"], r["engine_f32_s"],
         r["speedup_f64"], r["speedup_f32"], r["evals_per_query"]]
        for name, r in results.items()
    ]
    text = format_table(
        ["index", "base s", "f64 s", "f32 s", "x f64", "x f32", "evals/q"],
        rows,
        title=f"Kernel engine, warm caches (n={N}, m={M}, d={DIM}, k={K})",
    )
    report("kernel_engine", text)

    payload = {}
    if BENCH_JSON.exists():
        payload = json.loads(BENCH_JSON.read_text())
    payload["kernel_engine"] = {
        "config": {"n": N, "m": M, "dim": DIM, "k": K, "metric": "euclidean"},
        **{name: r for name, r in results.items()},
    }
    BENCH_JSON.write_text(json.dumps(payload, indent=2) + "\n")

    for name, r in results.items():
        assert r["speedup"] >= SPEEDUP_BAR, (
            f"{name}: warm-cache engine speedup {r['speedup']:.2f}x "
            f"below the {SPEEDUP_BAR}x acceptance bar "
            f"(f64 {r['speedup_f64']:.2f}x, f32 {r['speedup_f32']:.2f}x)"
        )
