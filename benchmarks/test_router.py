"""The SLO-driven router vs every fixed backend on a mixed workload.

Two experiments, one BENCH payload:

1. **cost grid** — per-backend build time and per-query wall time over a
   small ``(n, d, k)`` grid, the raw material of the router's cost
   model;
2. **mixed workload** — a shuffled sequence of batches with varying size
   and k, served under one per-batch latency budget.  The router plans
   each batch (degrading to cheaper rungs when the exact RBC would blow
   the budget) while each fixed backend runs the identical sequence.

Required: exact-mode (no budget) router answers identical to brute force
(recall 1.0); on the mixed workload the router must meet the latency
budget at p99 while beating every *budget-compliant* fixed backend on
recall — and beating the exact backend's p99 by a wide margin (the
router's whole point: exact answers when affordable, graceful recall
loss instead of blown budgets when not).  Every degradation rung reports
its recall so the quality ladder is trackable across PRs.  Results go to
``BENCH_router.json`` at the repo root (CI artifact + regression-gate
input).
"""

from __future__ import annotations

import json
import pathlib
import time

import numpy as np
from conftest import bench_once

from repro.eval import format_table, recall_at_k
from repro.index import Router, create_index
from repro.parallel import bf_knn

BENCH_JSON = pathlib.Path(__file__).resolve().parents[1] / "BENCH_router.json"

#: mixed-workload config
N, DIM = 20_000, 16
#: (batch size, k) classes, shuffled into one arrival sequence
BATCH_CLASSES = [(8, 1), (32, 5), (128, 5), (384, 10)]
N_BATCHES = 24
#: noise headroom for the p99 comparison on shared runners
P99_NOISE = 1.25

GRID_NS = (2_000, 8_000)
GRID_DIM = 8
GRID_KS = (1, 8)
GRID_BACKENDS = ("brute", "rbc-exact", "rbc-oneshot", "rpforest")
GRID_QUERIES = 64


def _workload(rng, X):
    """The shuffled mixed batch sequence (size, k, queries).

    Queries are perturbed database points — the near-manifold regime the
    RBC's probabilistic variants are built for (far-off uniform noise
    would make every approximate rung look uniformly bad).
    """
    classes = [BATCH_CLASSES[i % len(BATCH_CLASSES)] for i in range(N_BATCHES)]
    rng.shuffle(classes)
    out = []
    for m, k in classes:
        Q = X[rng.choice(X.shape[0], size=m, replace=False)]
        out.append((m, k, Q + 0.25 * rng.normal(size=Q.shape)))
    return out


def _run_workload(query_fn, workload, X):
    """Serve every batch; per-query latency samples + workload recall."""
    lat, hits, total = [], 0, 0
    for m, k, Q in workload:
        t0 = time.perf_counter()
        _, idx = query_fn(Q, k)
        wall = time.perf_counter() - t0
        lat.extend([wall] * m)  # each query's sojourn = its batch's wall
        _, true_idx = bf_knn(Q, X, k=k)
        hits += recall_at_k(idx, true_idx) * m * k
        total += m * k
    return np.asarray(lat), hits / total


def test_cost_grid(rng, report, out_dir):
    cases = []
    for n in GRID_NS:
        X = rng.normal(size=(n, GRID_DIM))
        Q = rng.normal(size=(GRID_QUERIES, GRID_DIM))
        for name in GRID_BACKENDS:
            idx = create_index(name, lenient=True, seed=0)
            t0 = time.perf_counter()
            idx.build(X)
            build_s = time.perf_counter() - t0
            for k in GRID_KS:
                idx.query(Q[:4], k=k)  # warm
                t0 = time.perf_counter()
                idx.query(Q, k=k)
                per_q = (time.perf_counter() - t0) / GRID_QUERIES
                cases.append(
                    {
                        "backend": name,
                        "n": n,
                        "d": GRID_DIM,
                        "k": k,
                        "build_s": round(build_s, 6),
                        "query_per_q_us": round(per_q * 1e6, 3),
                    }
                )
    rows = [
        [c["backend"], c["n"], c["k"], c["build_s"], c["query_per_q_us"]]
        for c in cases
    ]
    report(
        "router_grid",
        format_table(
            ["backend", "n", "k", "build s", "query us/q"],
            rows,
            title=f"per-backend cost grid (d={GRID_DIM})",
        ),
    )
    _merge_bench({"grid": {"cases": cases}})
    assert len(cases) == len(GRID_NS) * len(GRID_BACKENDS) * len(GRID_KS)


def test_router_mixed_workload(rng, report, benchmark, out_dir):
    X = rng.normal(size=(N, DIM))
    router = Router(seed=0).build(X)

    # ---- exact mode: no budget, rung 0 — answers must match brute force
    Qe = rng.normal(size=(64, DIM))
    d, i = router.query(Qe, k=5)
    _, true_i = bf_knn(Qe, X, k=5)
    exact_recall = recall_at_k(i, true_i)
    assert exact_recall == 1.0, "router exact mode must have recall 1.0"

    # ---- per-rung recall: the quality ladder, one rung at a time
    rungs = []
    for r in range(len(router.ladder)):
        router.restore()
        for _ in range(r):
            router.degrade()
        d, i = router.query(Qe, k=5)
        rungs.append(
            {
                "rung": r,
                "backend": router.last_decision.backend,
                "recall": round(recall_at_k(i, true_i), 4),
            }
        )
    router.restore()
    assert rungs[0]["recall"] == 1.0
    # every rung (even the deliberately under-provisioned last one) must
    # return something real, and quality may only fall down the ladder
    assert all(r["recall"] > 0.0 for r in rungs), rungs
    recalls = [r["recall"] for r in rungs]
    assert recalls[0] == max(recalls) and recalls[-1] == min(recalls), rungs

    # ---- mixed workload under one per-batch latency budget: roughly the
    # modeled cost of a mid-size exact batch, so small batches run exact
    # and the heaviest ones must degrade
    budget = router.predict_cost_s("rbc-exact", 96, 5)
    workload = _workload(rng, X)

    def run_router():
        router.restore()
        return _run_workload(
            lambda Q, k: router.query(Q, k=k, latency_budget_s=budget),
            workload,
            X,
        )

    router_lat, router_recall = bench_once(benchmark, run_router)
    routed = dict(router.route_counts())

    singles = []
    for name in router.ladder:
        backend = router.backend(name)
        lat, rec = _run_workload(lambda Q, k: backend.query(Q, k=k), workload, X)
        singles.append(
            {
                "backend": name,
                "p99_ms": round(float(np.percentile(lat, 99)) * 1e3, 4),
                "recall": round(rec, 4),
            }
        )

    router_p99 = float(np.percentile(router_lat, 99))
    exact_p99 = next(
        s["p99_ms"] for s in singles if s["backend"] == "rbc-exact"
    ) / 1e3
    compliance = float(np.mean(router_lat <= budget))

    rows = [["router", router_p99 * 1e3, router_recall]] + [
        [s["backend"], s["p99_ms"], s["recall"]] for s in singles
    ]
    report(
        "router_mixed",
        format_table(
            ["strategy", "p99 ms", "recall"],
            rows,
            title=(
                f"mixed workload (n={N}, d={DIM}, {N_BATCHES} batches, "
                f"budget {budget * 1e3:.2f} ms) — routed: {routed}"
            ),
        ),
    )
    _merge_bench(
        {
            "exact": {"recall": round(exact_recall, 4)},
            "rungs": rungs,
            "mixed": {
                "budget_ms": round(budget * 1e3, 4),
                "router_p99_ms": round(router_p99 * 1e3, 4),
                "router_recall": round(router_recall, 4),
                "route_counts": routed,
                "singles": singles,
                "slo_compliance": round(compliance, 4),
                "p99_speedup_vs_exact": round(exact_p99 / router_p99, 4),
            },
        }
    )

    # the router must itself meet the SLO at p99 ...
    assert router_p99 <= budget * P99_NOISE, (
        f"router p99 {router_p99 * 1e3:.3f} ms over budget "
        f"{budget * 1e3:.3f} ms"
    )
    # ... far below the exact backend (which blows the budget on the
    # heavy batch classes) ...
    assert router_p99 <= exact_p99, (
        f"router p99 {router_p99 * 1e3:.3f} ms vs exact "
        f"{exact_p99 * 1e3:.3f} ms"
    )
    # ... while beating every single backend that also meets the budget
    compliant = [
        s for s in singles if s["p99_ms"] / 1e3 <= budget * P99_NOISE
    ]
    if compliant:
        best_compliant = max(s["recall"] for s in compliant)
        assert router_recall >= best_compliant - 0.02, (
            f"router recall {router_recall:.3f} vs best budget-compliant "
            f"single {best_compliant:.3f}"
        )


def _merge_bench(update: dict) -> None:
    """The two tests fill one BENCH payload; merge instead of clobbering."""
    payload = {}
    if BENCH_JSON.exists():
        payload = json.loads(BENCH_JSON.read_text())
    payload.update(update)
    BENCH_JSON.write_text(json.dumps(payload, indent=2) + "\n")
