"""Table 2 — GPU: speedup of one-shot RBC over brute force, both on GPU.

The paper runs one-shot search and brute force on an NVIDIA Tesla c2050
with the parameter set for a rank error around 1e-1, reporting speedups of
19x-188x (Bio 38.1, Covertype 94.6, Physics 19.0, Robot 53.2, TinyIm4
188.4).  GPUs reward exactly the structure the RBC has: both stages are
dense distance blocks with no divergent branching.

Reproduction: both algorithms' traces are replayed on the Tesla c2050
SIMT model (DESIGN.md §1).  The parameter is chosen per dataset as the
smallest sweep point whose measured mean rank is below 1.0 (the paper's
"roughly 1e-1" regime at our scale).  The error column is reported so the
quality claim is auditable.
"""

from __future__ import annotations

from conftest import bench_once

from repro.baselines import BruteForceIndex
from repro.core import OneShotRBC
from repro.data import load
from repro.eval import format_table, mean_rank, traced_query
from repro.simulator import TESLA_C2050

#: Table 2 uses these five datasets
WORKLOADS = [
    ("bio", 20_000, 38.1),
    ("cov", 20_000, 94.6),
    ("phy", 10_000, 19.0),
    ("robot", 20_000, 53.2),
    ("tiny4", 20_000, 188.4),
]

N_QUERIES = 500
MACHINES = [TESLA_C2050]
BF_GRAIN = dict(tile_cols=2048, row_chunk=512)


def run_dataset(name: str, max_n: int, paper_x: float):
    X, Q = load(name, scale=0.1, n_queries=N_QUERIES, max_n=max_n)
    n = X.shape[0]
    brute = BruteForceIndex().build(X)
    brute_run = traced_query(brute, Q, MACHINES, k=1, **BF_GRAIN)

    # smallest parameter achieving the paper's error regime (rank < 1)
    for frac in (1.0, 2.0, 3.0, 4.0, 8.0):
        p = int(frac * n**0.5)
        rbc = OneShotRBC(seed=0, rep_scheme="exact").build(X, n_reps=p, s=p)
        run = traced_query(rbc, Q, MACHINES, k=1)
        rank = mean_rank(Q, X, run.idx)
        if rank < 1.0:
            break
    return {
        "name": name,
        "n": n,
        "param": p,
        "rank": rank,
        "paper_x": paper_x,
        "gpu_x": brute_run.sim_time(TESLA_C2050) / run.sim_time(TESLA_C2050),
        "work_x": brute_run.evals / run.evals,
    }


def test_table2_gpu_oneshot_speedup(benchmark, report):
    results = bench_once(
        benchmark, lambda: [run_dataset(*w) for w in WORKLOADS]
    )
    rows = [
        [r["name"], r["n"], r["param"], r["rank"], r["work_x"], r["gpu_x"],
         r["paper_x"]]
        for r in results
    ]
    report(
        "table2_gpu",
        format_table(
            ["dataset", "n", "n_r = s", "mean rank", "work x",
             "GPU-model x", "paper x"],
            rows,
            title=(
                "Table 2: one-shot RBC speedup over brute force, both on the"
                " Tesla c2050 model\n(paper n is 10x-500x larger, so paper"
                " speedups are proportionally larger)"
            ),
        ),
    )
    for r in results:
        assert r["gpu_x"] > 3.0, f"{r['name']}: GPU speedup too small"
        assert r["rank"] < 1.0
    by = {r["name"]: r for r in results}
    # tiny4 is the paper's best case; phy its worst — ordering must hold
    assert by["tiny4"]["gpu_x"] > by["phy"]["gpu_x"]
