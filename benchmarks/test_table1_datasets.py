"""Table 1 — overview of data sets.

Paper's Table 1 lists (name, num points, dim) for Bio/Covertype/Physics/
Robot/TinyIm.  This benchmark regenerates the table from the paper-analog
registry, materializes a sample of each dataset to verify the advertised
shape, and adds the measured expansion-rate estimate (the paper discusses
intrinsic dimensionality qualitatively; we report the number our
substituted generators actually deliver, since every other experiment's
behaviour is driven by it).
"""

from __future__ import annotations

from conftest import bench_once

from repro.data import DATASETS, load
from repro.dimension import estimate_expansion_rate
from repro.eval import format_table


def test_table1_dataset_overview(benchmark, report):
    def run():
        rows = []
        for name, spec in DATASETS.items():
            X, _ = load(name, scale=0.01, n_queries=10, max_n=4000)
            assert X.shape[1] == spec.dim
            est = estimate_expansion_rate(X, n_centers=32, seed=0)
            rows.append(
                [
                    name,
                    spec.paper_n,
                    X.shape[0],
                    spec.dim,
                    spec.intrinsic_dim,
                    est.c,
                    est.log2_c,
                ]
            )
        return rows

    rows = bench_once(benchmark, run)
    report(
        "table1_datasets",
        format_table(
            ["name", "paper n", "sampled n", "dim", "intrinsic dim",
             "expansion c", "log2 c"],
            rows,
            title="Table 1: Overview of data sets (paper-analog generators)",
        ),
    )
    # the generated dims must match the paper's Table 1 exactly
    dims = {r[0]: r[3] for r in rows}
    assert dims == {
        "bio": 74, "cov": 54, "phy": 78, "robot": 21,
        "tiny4": 4, "tiny8": 8, "tiny16": 16, "tiny32": 32,
    }
    # low-intrinsic-dim analogs must estimate lower c than high ones
    c = {r[0]: r[5] for r in rows}
    assert c["cov"] < c["phy"]
