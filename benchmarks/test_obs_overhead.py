"""Quality observability overhead — sampled stream vs bare stream.

The quality subsystem promises shadow-oracle recall estimation that is
cheap enough to leave on in production: at the default 1% sampling
fraction, the served p99 sojourn latency must stay within 5% of the same
stream served with observability off.  The design makes this structural —
the oracle pass runs *after* each batch's service wall has been measured,
so brute-force distance work never lands in a latency sample — and this
benchmark verifies the end-to-end consequence on the d=16 Gaussian
serving config.

The flight recorder rides along on the sampled run: its bounded rings
(span digests, explains, quality samples) must hold a full replay under a
fixed memory ceiling, so an always-on recorder cannot grow without bound.

Timing interleaves the contenders round by round and compares medians, so
drifting load on a shared runner hits both sides equally.  Results land
in ``BENCH_obs.json`` at the repo root (gated by
``benchmarks/check_regression.py`` and uploaded as a CI artifact) so the
observability-cost trajectory is trackable across PRs.
"""

from __future__ import annotations

import json
import pathlib

import numpy as np
from conftest import bench_once

from repro.core import ExactRBC
from repro.eval import format_table
from repro.obs import FlightRecorder, QualitySampler
from repro.serving import BatchPolicy, StreamingSearcher

BENCH_JSON = pathlib.Path(__file__).resolve().parents[1] / "BENCH_obs.json"

#: serving config: d=16 Gaussian, streamed arrivals, adaptive batching
N, M, DIM, K = 8_000, 1_500, 16, 5
QPS = 1_000.0  # ~0.3 utilization at the adapted batch size: stable p99
FRACTION = 0.01
ROUNDS = 5
OVERHEAD_BAR = 0.05
#: always-on flight rings must hold a full replay under this footprint
FLIGHT_CEILING_BYTES = 4 * 1024 * 1024
#: caps on the higher-is-better gate ratios, so a lucky run cannot
#: inflate the committed baseline beyond what a normal run reproduces
HEADROOM_CAP = 1.25
MEM_HEADROOM_CAP = 10.0


def _run_stream(index, Q, *, quality, flight=None):
    policy = BatchPolicy(max_delay_ms=100.0, max_batch=64)
    with StreamingSearcher(
        index, k=K, policy=policy, quality=quality, flight=flight
    ) as server:
        return server.search_stream(Q, qps=QPS)


def test_quality_sampling_overhead(rng, report, benchmark):
    X = rng.normal(size=(N, DIM))
    Q = rng.normal(size=(M, DIM))
    index = ExactRBC(seed=0).build(X)
    flight = FlightRecorder(cooldown_s=1e9)  # record always, never dump

    def experiment():
        _run_stream(index, Q, quality=None)  # warm caches off the record
        p99_off, p99_on, walls_off, walls_on = [], [], [], []
        n_sampled = 0
        for r in range(ROUNDS):
            off = _run_stream(index, Q, quality=None)
            sampler = QualitySampler(
                index, K, fraction=FRACTION, seed=r
            )
            on = _run_stream(index, Q, quality=sampler, flight=flight)
            p99_off.append(off.latency.p99_s)
            p99_on.append(on.latency.p99_s)
            walls_off.append(off.wall_s)
            walls_on.append(on.wall_s)
            n_sampled += sampler.n_sampled
            assert np.array_equal(off.dist, on.dist), (
                "sampling changed the served answers"
            )
        return {
            "p99_off_ms": float(np.median(p99_off) * 1e3),
            "p99_on_ms": float(np.median(p99_on) * 1e3),
            "wall_off_s": float(np.median(walls_off)),
            "wall_on_s": float(np.median(walls_on)),
            "n_sampled": n_sampled,
        }

    r = bench_once(benchmark, experiment)

    overhead = r["p99_on_ms"] / r["p99_off_ms"] - 1.0
    headroom = min(HEADROOM_CAP, r["p99_off_ms"] / r["p99_on_ms"])
    mem = flight.memory_bytes()
    mem_headroom = min(MEM_HEADROOM_CAP, FLIGHT_CEILING_BYTES / max(mem, 1))

    text = format_table(
        ["mode", "p99 ms", "wall s"],
        [
            ["off", r["p99_off_ms"], r["wall_off_s"]],
            [f"quality {FRACTION:.0%}", r["p99_on_ms"], r["wall_on_s"]],
        ],
        title=(
            f"Quality sampling overhead (n={N}, m={M}, d={DIM}, k={K}, "
            f"{ROUNDS} rounds, {r['n_sampled']} sampled): "
            f"p99 {overhead:+.2%}, flight rings {mem / 1024:.0f} KiB"
        ),
    )
    report("obs_overhead", text)

    payload = {}
    if BENCH_JSON.exists():
        payload = json.loads(BENCH_JSON.read_text())
    payload["overhead"] = {
        "config": {
            "n": N,
            "m": M,
            "dim": DIM,
            "k": K,
            "qps": QPS,
            "fraction": FRACTION,
            "rounds": ROUNDS,
        },
        "p99_off_ms": r["p99_off_ms"],
        "p99_on_ms": r["p99_on_ms"],
        "p99_overhead_frac": overhead,
        "p99_headroom": headroom,
        "wall_off_s": r["wall_off_s"],
        "wall_on_s": r["wall_on_s"],
    }
    payload["flight"] = {
        "memory_bytes": mem,
        "ceiling_bytes": FLIGHT_CEILING_BYTES,
        "mem_headroom": mem_headroom,
    }
    BENCH_JSON.write_text(json.dumps(payload, indent=2) + "\n")

    assert r["n_sampled"] > 0, "1% sampling never fired on the trace"
    assert mem > 0 and mem <= FLIGHT_CEILING_BYTES, (
        f"flight rings hold {mem} bytes, ceiling {FLIGHT_CEILING_BYTES}"
    )
    assert overhead <= OVERHEAD_BAR, (
        f"p99 with 1% sampling is {overhead:+.2%} vs off "
        f"(bar {OVERHEAD_BAR:.0%}) — the oracle must stay off the "
        f"measured service path"
    )
