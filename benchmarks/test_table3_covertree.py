"""Table 3 — Cover Tree vs exact RBC on a quad-core desktop.

The paper's Table 3 reports total query time for 10k queries: the Cover
Tree (state-of-the-art sequential search, single core — the available
implementation is single-core and the paper argues parallelizing it buys
little) against the exact RBC using the whole quad-core machine.  Paper
outcome: RBC wins on the three largest datasets (up to ~6x on tiny16/32);
the Cover Tree wins only on the very-low-intrinsic-dimension cases
(Covertype, tiny4), where its pruning is overwhelming.

Reproduction: our from-scratch Cover Tree's query trace is replayed on the
single-core desktop model, the RBC's on the full quad-core model.  At this
repo's database scale (6k points vs the paper's 0.1M-1M) the Cover Tree's
log(n)-vs-sqrt(n) advantage has not kicked in, so the asserted shape is
the ordering: the Cover Tree is *relatively* strongest exactly where the
paper finds it strongest (tiny4, cov), weakest on the high-dimensional
datasets.
"""

from __future__ import annotations

from conftest import bench_once

from repro.baselines import CoverTree
from repro.core import ExactRBC
from repro.data import load
from repro.eval import format_table, traced_query
from repro.simulator import DESKTOP_QUAD, SEQUENTIAL

#: (dataset, paper Cover Tree seconds, paper RBC seconds) from Table 3
WORKLOADS = [
    ("bio", 18.9, 6.4),
    ("cov", 0.4, 1.1),
    ("phy", 1.9, 1.7),
    ("robot", 4.6, 5.1),
    ("tiny4", 0.5, 1.2),
    ("tiny8", 14.6, 3.3),
    ("tiny16", 178.9, 25.1),
    ("tiny32", 387.0, 67.9),
]

N = 6_000
N_QUERIES = 200


def run_dataset(name: str, paper_ct: float, paper_rbc: float):
    X, Q = load(name, scale=0.1, n_queries=N_QUERIES, max_n=N)
    n = X.shape[0]

    ct = CoverTree().build(X)
    ct_run = traced_query(ct, Q, [SEQUENTIAL], k=1)

    rbc = ExactRBC(seed=0).build(X, n_reps=int(4 * n**0.5))
    rbc_run = traced_query(rbc, Q, [DESKTOP_QUAD], k=1)

    assert abs(ct_run.dist - rbc_run.dist).max() < 1e-6  # both exact

    ct_t = ct_run.sim_time(SEQUENTIAL)
    rbc_t = rbc_run.sim_time(DESKTOP_QUAD)
    return {
        "name": name,
        "n": n,
        "ct_evals": ct_run.evals / N_QUERIES,
        "rbc_evals": rbc_run.evals / N_QUERIES,
        "ct_ms": ct_t * 1e3,
        "rbc_ms": rbc_t * 1e3,
        "rbc_adv": ct_t / rbc_t,
        "paper_adv": paper_ct / paper_rbc,
    }


def test_table3_covertree_vs_rbc(benchmark, report):
    results = bench_once(
        benchmark, lambda: [run_dataset(*w) for w in WORKLOADS]
    )
    rows = [
        [r["name"], r["n"], r["ct_evals"], r["rbc_evals"], r["ct_ms"],
         r["rbc_ms"], r["rbc_adv"], r["paper_adv"]]
        for r in results
    ]
    report(
        "table3_covertree",
        format_table(
            ["dataset", "n", "CT evals/q", "RBC evals/q",
             "CT 1-core ms", "RBC 4-core ms", "RBC adv x", "paper adv x"],
            rows,
            title=(
                "Table 3: Cover Tree (1 core) vs exact RBC (quad-core "
                "model), batch of 200 queries\n(paper: total seconds for "
                "10k queries at 17x-170x larger n)"
            ),
        ),
    )
    by = {r["name"]: r for r in results}
    # the Cover Tree's strongholds in the paper (cov, tiny4) must be where
    # the RBC's advantage is smallest here too
    weakest_two = sorted(results, key=lambda r: r["rbc_adv"])[:2]
    assert {r["name"] for r in weakest_two} <= {"cov", "tiny4", "robot"}
    # and the paper's big RBC wins (tiny16/32, bio) show a clear advantage
    for name in ("bio", "tiny16", "tiny32"):
        assert by[name]["rbc_adv"] > 1.0, f"{name}: RBC should win"
    # the Cover Tree prunes better than the RBC everywhere (it is the
    # stronger sequential algorithm; the RBC wins on hardware fit)
    for r in results:
        assert r["ct_evals"] < r["rbc_evals"]
