"""Batched stage-2 kernels — wall-clock speedup over brute force.

Before the batching rewrite, the exact search did far fewer distance
evaluations than brute force yet was *slower* on the wall clock: stage 2
walked queries one at a time through Python, evaluating each trimmed list
with tiny pairwise calls.  The batched kernels (broadcast pruning, grouped
list scans, seed reuse from the stage-1 matrix) close that gap — on the
headline low-dimensional configuration the exact search must now beat
brute force on this host's actual wall clock, not just on eval counts.

This doubles as the CI smoke test for the stage-2 kernels: it asserts
exact <= brute wall-clock (the CI bound; the observed margin is well
above the 2x target) and identical answers.
"""

from __future__ import annotations

import json
import pathlib
import time

import numpy as np
from conftest import bench_once

from repro.core import ExactRBC
from repro.eval import format_table
from repro.parallel import bf_knn

BENCH_JSON = pathlib.Path(__file__).resolve().parents[1] / "BENCH_kernels.json"

#: the headline config from the issue: d=4 Gaussian, n=20k, m=1k queries
N, M, DIM = 20_000, 1_000, 4
K = 1


def run_case(dim: int):
    rng = np.random.default_rng(7)
    X = rng.normal(size=(N, dim))
    Q = rng.normal(size=(M, dim))

    t0 = time.perf_counter()
    bd, bi = bf_knn(Q, X, k=K)
    brute_s = time.perf_counter() - t0
    brute_evals = N * M

    index = ExactRBC(seed=0).build(X)
    t0 = time.perf_counter()
    d, i = index.query(Q, k=K)
    exact_s = time.perf_counter() - t0
    stats = index.last_stats

    np.testing.assert_allclose(d, bd, rtol=1e-9, atol=1e-7)
    return {
        "dim": dim,
        "brute_s": brute_s,
        "exact_s": exact_s,
        "wall_x": brute_s / exact_s,
        "work_x": brute_evals / stats.total_evals,
        "evals_per_q": stats.total_evals / M,
    }


def test_stage2_batched_beats_brute_wall_clock(benchmark, report):
    results = bench_once(benchmark, lambda: [run_case(d) for d in (4, 16)])
    rows = [
        [r["dim"], r["brute_s"], r["exact_s"], r["wall_x"], r["work_x"],
         r["evals_per_q"]]
        for r in results
    ]
    text = format_table(
        ["d", "brute s", "exact s", "wall x", "work x", "evals/q"],
        rows,
        title=f"Batched stage 2 vs brute force (n={N}, m={M}, k={K})",
    )
    report("stage2_batched", text)

    # append the headline numbers to the machine-readable perf log shared
    # with the kernel-engine benchmark
    payload = {}
    if BENCH_JSON.exists():
        payload = json.loads(BENCH_JSON.read_text())
    payload["stage2_batched"] = {
        "config": {"n": N, "m": M, "k": K},
        "cases": results,
    }
    BENCH_JSON.write_text(json.dumps(payload, indent=2) + "\n")

    headline = results[0]
    assert headline["dim"] == 4
    # the CI smoke bound: batched exact search must not lose to brute
    # force on the low-dimensional config (target in the issue is >= 2x;
    # the bound is left loose so shared CI runners don't flake)
    assert headline["exact_s"] <= headline["brute_s"], (
        f"exact {headline['exact_s']:.3f}s slower than brute "
        f"{headline['brute_s']:.3f}s on d=4"
    )
