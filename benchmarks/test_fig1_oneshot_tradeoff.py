"""Figure 1 — one-shot speedup as a function of rank error (log-log).

The paper sweeps the one-shot parameter (n_r = s, per the theory section)
and plots, per dataset, the speedup over brute force against the average
rank of the returned neighbor.  Expected shape: a monotone trade-off
running from near-exact (rank << 1) at ~10x speedup to rank ~10-100 at
100x-10000x speedup; even at rank ~0.1 the worst dataset keeps an order of
magnitude.

Here the speedup axis is the 48-core machine-model time ratio (same
substitution as Figure 2) and the error axis is the paper's rank measure
computed against exhaustive ground truth.
"""

from __future__ import annotations

from conftest import bench_once

from repro.baselines import BruteForceIndex
from repro.core import OneShotRBC
from repro.data import load
from repro.eval import ascii_plot, format_table, mean_rank, traced_query
from repro.simulator import AMD_48CORE

WORKLOADS = [
    ("bio", 20_000),
    ("cov", 20_000),
    ("phy", 10_000),
    ("robot", 20_000),
    ("tiny4", 20_000),
    ("tiny8", 20_000),
    ("tiny16", 20_000),
    ("tiny32", 20_000),
]

N_QUERIES = 500
#: sweep of n_r = s, as fractions of sqrt(n)
SWEEP = (0.5, 1.0, 2.0, 4.0, 8.0)
MACHINES = [AMD_48CORE]
BF_GRAIN = dict(tile_cols=2048, row_chunk=512)


def run_dataset(name: str, max_n: int):
    X, Q = load(name, scale=0.1, n_queries=N_QUERIES, max_n=max_n)
    n = X.shape[0]
    brute = BruteForceIndex().build(X)
    brute_run = traced_query(brute, Q, MACHINES, k=1, **BF_GRAIN)

    series = []
    for frac in SWEEP:
        p = max(1, int(frac * n**0.5))
        rbc = OneShotRBC(seed=0, rep_scheme="exact").build(X, n_reps=p, s=p)
        run = traced_query(rbc, Q, MACHINES, k=1)
        series.append(
            {
                "param": p,
                "rank": mean_rank(Q, X, run.idx),
                "speedup": brute_run.sim_time(AMD_48CORE)
                / run.sim_time(AMD_48CORE),
                "work_x": brute_run.evals / run.evals,
            }
        )
    return name, n, series


def test_fig1_oneshot_tradeoff(benchmark, report):
    results = bench_once(
        benchmark, lambda: [run_dataset(*w) for w in WORKLOADS]
    )
    rows = []
    for name, n, series in results:
        for pt in series:
            rows.append(
                [name, n, pt["param"], pt["rank"], pt["work_x"], pt["speedup"]]
            )
    # the paper's log-log panels, one curve per dataset (rank 0 points are
    # clamped to the smallest positive measurable rank, 1/n_queries)
    curves = {
        name: [
            (max(pt["rank"], 1.0 / N_QUERIES / 2), pt["speedup"])
            for pt in series
        ]
        for name, n, series in results
    }
    figure = ascii_plot(
        curves,
        logx=True,
        logy=True,
        xlabel="mean rank",
        ylabel="speedup",
        title="Figure 1 (reproduced): one-shot speedup vs rank error",
        width=68,
        height=20,
    )
    report(
        "fig1_oneshot_tradeoff",
        figure
        + "\n\n"
        + format_table(
            ["dataset", "n", "n_r = s", "mean rank", "work x", "48-core x"],
            rows,
            title=(
                "Figure 1: one-shot speedup vs rank error (log-log in the "
                "paper)\nEach dataset block sweeps n_r = s from 0.5 sqrt(n) "
                "to 8 sqrt(n)."
            ),
        ),
    )
    for name, n, series in results:
        ranks = [pt["rank"] for pt in series]
        works = [pt["work_x"] for pt in series]
        # growing s improves quality...
        assert ranks[-1] <= ranks[0] + 1e-9, f"{name}: rank not improving"
        # ...and shrinks the work advantage: a genuine trade-off
        assert works[-1] < works[0], f"{name}: no trade-off"
        # small parameters reach large speedups somewhere on the curve
        assert max(pt["speedup"] for pt in series) > 5.0, name
        # the high-quality end of the curve is genuinely accurate
        assert ranks[-1] < 5.0, f"{name}: rank too poor at s=8 sqrt(n)"
