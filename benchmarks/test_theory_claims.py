"""Theory section (§6) — quantitative checks of Claims 1-2, Theorems 1-2.

Not a table in the paper, but the paper's evaluation rests on these
predictions; this benchmark regenerates them as measured-vs-predicted
tables so EXPERIMENTS.md can record how tight the theory is on real runs.
"""

from __future__ import annotations

import numpy as np

from conftest import bench_once

from repro.core import ExactRBC, OneShotRBC, oneshot_params, sample_representatives
from repro.data import load, manifold
from repro.dimension import estimate_expansion_rate
from repro.eval import format_table
from repro.metrics import get_metric
from repro.parallel import bf_knn


def claim1_rows():
    """Claim 1: E|B(q, gamma)| = n / n_r, for any data distribution."""
    X, Q = load("bio", scale=0.05, n_queries=100, max_n=8000)
    n = X.shape[0]
    metric = get_metric("euclidean")
    D = metric.pairwise(Q, X)
    rows = []
    rng = np.random.default_rng(5)
    for n_r in (50, 100, 200, 400):
        counts = []
        for _ in range(20):
            reps = sample_representatives(n, n_r, rng, scheme="bernoulli")
            gamma = D[:, reps].min(axis=1)
            counts.append((D < gamma[:, None]).sum(axis=1).mean())
        rows.append([n_r, n / n_r, float(np.mean(counts))])
    return rows


def theorem1_rows():
    """Theorem 1: second-stage work is O(c^3 n / n_r); with n_r ~ sqrt(n)
    the total work grows like sqrt(n)."""
    rows = []
    for n in (2_000, 8_000, 32_000):
        full = manifold(n + 100, 16, 3, noise=0.0, seed=11)
        X, Q = full[:n], full[n:]
        rbc = ExactRBC(seed=0).build(X)  # standard n_r = sqrt(n)
        rbc.query(Q, k=1)
        w = rbc.last_stats.per_query_evals()
        rows.append([n, rbc.n_reps, w, w / np.sqrt(n)])
    return rows


def theorem2_rows():
    """Theorem 2: failure probability of one-shot <= delta at the
    prescribed parameter setting."""
    X, Q = load("cov", scale=0.05, n_queries=300, max_n=12_000)
    n = X.shape[0]
    c = min(estimate_expansion_rate(X, n_centers=32, seed=0).c_median, 4.0)
    true_d, _ = bf_knn(Q, X, k=1)
    rows = []
    for delta in (0.5, 0.2, 0.05):
        nr, s = oneshot_params(n, c=c, delta=delta)
        rbc = OneShotRBC(seed=3).build(X, n_reps=nr, s=s)
        d, _ = rbc.query(Q, k=1)
        fail = float((d[:, 0] > true_d[:, 0] + 1e-9).mean())
        rows.append([delta, nr, fail])
    return rows


def test_theory_predictions(benchmark, report):
    c1, t1, t2 = bench_once(
        benchmark, lambda: (claim1_rows(), theorem1_rows(), theorem2_rows())
    )
    text = "\n\n".join(
        [
            format_table(
                ["n_r", "predicted E|B(q,gamma)| = n/n_r", "measured"],
                c1,
                title="Claim 1: expected ball size (bio analog, n=8000)",
            ),
            format_table(
                ["n", "n_r = sqrt(n)", "evals/query", "evals / sqrt(n)"],
                t1,
                title=(
                    "Theorem 1: total work scales ~ sqrt(n) at the standard"
                    " setting\n(the last column should stay near-constant)"
                ),
            ),
            format_table(
                ["delta", "n_r = s", "measured failure rate"],
                t2,
                title="Theorem 2: one-shot failure rate is below delta",
            ),
        ]
    )
    report("theory_claims", text)

    # Claim 1 within 30% of prediction for every n_r
    for n_r, pred, meas in c1:
        assert abs(meas - pred) / pred < 0.3, (n_r, pred, meas)
    # Theorem 1: work/sqrt(n) varies by < 3x over a 16x range of n
    ratios = [row[3] for row in t1]
    assert max(ratios) / min(ratios) < 3.0, ratios
    # Theorem 2: measured failure below delta (+ sampling slack)
    for delta, _, fail in t2:
        assert fail <= delta + 0.05, (delta, fail)
