"""Microbenchmarks — host wall-clock of the hot kernels.

Unlike the table/figure benchmarks (which model the paper's hardware),
these time the actual Python/NumPy kernels on the host, the numbers a
downstream user of this library experiences.  They also guard against
performance regressions: pytest-benchmark stores timings for comparison
across runs (``--benchmark-autosave`` / ``--benchmark-compare``).
"""

from __future__ import annotations

import pytest

from repro.core import ExactRBC, OneShotRBC
from repro.data import manifold
from repro.metrics import EditDistance, get_metric
from repro.parallel import bf_knn, merge_topk, topk_of_block


@pytest.fixture(scope="module")
def vectors():
    full = manifold(20_200, 32, 3, seed=21)
    return full[:20_000], full[20_000:20_100]


def test_micro_pairwise_euclidean(benchmark, vectors):
    X, Q = vectors
    m = get_metric("euclidean")
    D = benchmark(lambda: m.pairwise(Q, X))
    assert D.shape == (100, 20_000)


def test_micro_pairwise_manhattan(benchmark, vectors):
    X, Q = vectors
    m = get_metric("manhattan")
    D = benchmark(lambda: m.pairwise(Q, X[:5_000]))
    assert D.shape == (100, 5_000)


def test_micro_edit_distance_batch(benchmark):
    from repro.data import random_strings

    S = random_strings(2_000, seed=3)
    m = EditDistance()
    D = benchmark(lambda: m.pairwise(S[:4], S))
    assert D.shape == (4, 2_000)


def test_micro_topk_selection(benchmark, rng):
    D = rng.normal(size=(100, 20_000))
    d, i = benchmark(lambda: topk_of_block(D, 10))
    assert d.shape == (100, 10)


def test_micro_topk_merge(benchmark, rng):
    a = topk_of_block(rng.normal(size=(500, 64)), 16)
    b = topk_of_block(rng.normal(size=(500, 64)), 16)
    d, i = benchmark(lambda: merge_topk(a, b))
    assert d.shape == (500, 16)


def test_micro_bf_knn(benchmark, vectors):
    X, Q = vectors
    d, i = benchmark(lambda: bf_knn(Q, X, k=10))
    assert d.shape == (100, 10)


def test_micro_exact_rbc_query(benchmark, vectors):
    X, Q = vectors
    index = ExactRBC(seed=0).build(X, n_reps=500)
    d, i = benchmark(lambda: index.query(Q, k=10))
    assert d.shape == (100, 10)


def test_micro_oneshot_rbc_query(benchmark, vectors):
    X, Q = vectors
    index = OneShotRBC(seed=0, rep_scheme="exact").build(X, n_reps=500, s=500)
    d, i = benchmark(lambda: index.query(Q, k=10))
    assert d.shape == (100, 10)


def test_micro_exact_rbc_build(benchmark, vectors):
    X, _ = vectors

    def build():
        return ExactRBC(seed=0).build(X, n_reps=500)

    index = benchmark.pedantic(build, rounds=3, iterations=1)
    assert index.is_built
