"""CI bench-regression gate: fresh BENCH json vs the committed baseline.

The smoke benchmarks rewrite ``BENCH_kernels.json`` / ``BENCH_serving.json``
at the repo root on every run.  CI snapshots the committed copies before
the benchmark steps, reruns them, and then invokes::

    python benchmarks/check_regression.py \
        --baseline baseline/BENCH_kernels.json --fresh BENCH_kernels.json \
        --baseline baseline/BENCH_serving.json --fresh BENCH_serving.json

Each tracked metric is a throughput-like ratio (higher is better); the
gate fails (exit 1) when a fresh value falls below ``1 - tolerance`` of
its baseline — by default a >25% regression, loose enough for shared-
runner noise but tight enough to catch a kernel walking backwards.
Metrics present in the baseline but missing fresh fail too (a deleted
benchmark silently dropping perf coverage); metrics only in the fresh
file are reported and skipped, so new benchmarks can land one PR before
their baseline does.
"""

from __future__ import annotations

import argparse
import json
import string
import sys
from pathlib import Path

#: metric name -> dotted path into the BENCH payload; ``[]`` fans out over
#: a list, labeling each element by the named config key beside it
TRACKED = {
    "BENCH_kernels.json": {
        "exact engine speedup": "kernel_engine.exact.speedup",
        "oneshot engine speedup": "kernel_engine.oneshot.speedup",
        "stage2 wall speedup (dim={dim})": "stage2_batched.cases[].wall_x",
    },
    "BENCH_serving.json": {
        "serving batched speedup": "speedup",
        "serving batched throughput qps": "batched.throughput_qps",
    },
    "BENCH_cluster.json": {
        "cluster serving scaling 1->4 shards": "scaling",
        "cluster throughput qps (shards={n_shards})": "nodes[].throughput_qps",
    },
    # labels stay backend-neutral: the CI matrix regenerates the fresh file
    # on both the numpy and numba legs against one committed baseline
    "BENCH_quant.json": {
        "quant kernel speedup": "quant_kernels.speedup",
        "quant recall before re-rank": "quant_kernels.recall_before_rerank",
    },
    # mixed-workload routing: p99 kept far under the exact backend while
    # the SLO stays met and the quality ladder's per-rung recall holds
    "BENCH_router.json": {
        "router p99 speedup vs exact": "mixed.p99_speedup_vs_exact",
        "router mixed slo compliance": "mixed.slo_compliance",
        "router exact recall": "exact.recall",
        "router degraded recall (rung={rung})": "rungs[].recall",
    },
    # skewed-traffic serving: the semantic cache must keep paying on the
    # hot-key scenario (p99_speedup is pre-capped by the bench for
    # cross-machine stability; a broken cache still collapses it to ~1)
    # quality observability must stay cheap: p99_headroom is the capped
    # off/on p99 ratio (1.0 = free, floor caught by the tolerance), and
    # mem_headroom the capped flight-ring ceiling/footprint ratio
    "BENCH_obs.json": {
        "obs p99 headroom at 1% sampling": "overhead.p99_headroom",
        "obs flight memory headroom": "flight.mem_headroom",
    },
    "BENCH_scenarios.json": {
        "zipfian p99 cache speedup": "zipfian.p99_speedup",
        "zipfian cache hit rate": "zipfian.hit_rate",
        "scenario cached throughput qps ({name})": (
            "scenarios[].cached_throughput_qps"
        ),
    },
}


def _walk(payload, dotted: str):
    """Yield (label_suffix, value) for a dotted path, fanning out lists."""
    head, _, rest = dotted.partition(".")
    if head.endswith("[]"):
        seq = payload.get(head[:-2])
        if seq is None:
            return
        for elem in seq:
            yield from _walk(elem, rest)
        return
    node = payload.get(head)
    if node is None:
        return
    if rest:
        yield from _walk(node, rest)
    else:
        yield payload, node


def _schema_for(*paths: Path) -> dict[str, str]:
    """The tracked-metric schema matching any of the given filenames."""
    for name, schema in TRACKED.items():
        if any(p.name.endswith(name) for p in paths):
            return schema
    raise SystemExit(
        f"no tracked metrics for {', '.join(p.name for p in paths)}; "
        f"known files: {', '.join(TRACKED)}"
    )


def extract(path: Path, tracked: dict[str, str]) -> dict[str, float]:
    """Flatten one BENCH file into ``{metric label: value}``."""
    payload = json.loads(path.read_text())
    out: dict[str, float] = {}
    for label, dotted in tracked.items():
        for holder, value in _walk(payload, dotted):
            name = label
            if "{" in label:
                keys = [
                    field
                    for _, field, _, _ in string.Formatter().parse(label)
                    if field
                ]
                name = label.format(**{k: holder.get(k) for k in keys})
            out[name] = float(value)
    return out


def compare(
    baseline: dict[str, float],
    fresh: dict[str, float],
    *,
    tolerance: float,
) -> tuple[list[str], list[str]]:
    """Return (report lines, failure lines)."""
    lines, failures = [], []
    width = max((len(n) for n in baseline | fresh), default=0)
    for name in sorted(baseline):
        base = baseline[name]
        if name not in fresh:
            failures.append(f"{name}: present in baseline, missing fresh")
            lines.append(f"  {name:<{width}}  {base:10.3f}  ->    MISSING")
            continue
        new = fresh[name]
        ratio = new / base if base else float("inf")
        ok = ratio >= 1.0 - tolerance
        mark = "ok" if ok else "REGRESSION"
        lines.append(
            f"  {name:<{width}}  {base:10.3f}  ->  {new:10.3f}  "
            f"({ratio:6.2%})  {mark}"
        )
        if not ok:
            failures.append(
                f"{name}: {base:.3f} -> {new:.3f} "
                f"({ratio:.1%} of baseline, floor {1 - tolerance:.0%})"
            )
    for name in sorted(set(fresh) - set(baseline)):
        lines.append(
            f"  {name:<{width}}  {'(new)':>10}  ->  {fresh[name]:10.3f}  "
            f"        no baseline, skipped"
        )
    return lines, failures


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument(
        "--baseline",
        action="append",
        required=True,
        type=Path,
        help="committed BENCH json (repeatable, pairs with --fresh in order)",
    )
    ap.add_argument(
        "--fresh",
        action="append",
        required=True,
        type=Path,
        help="just-regenerated BENCH json (repeatable)",
    )
    ap.add_argument(
        "--tolerance",
        type=float,
        default=0.25,
        help="allowed fractional drop before failing (default 0.25)",
    )
    args = ap.parse_args(argv)
    if len(args.baseline) != len(args.fresh):
        ap.error("need one --fresh per --baseline")

    all_failures: list[str] = []
    for base_path, fresh_path in zip(args.baseline, args.fresh):
        print(f"{fresh_path.name}: {base_path} vs {fresh_path}")
        if not base_path.exists():
            print("  no baseline file; skipping (first run?)")
            continue
        if not fresh_path.exists():
            all_failures.append(f"{fresh_path}: fresh results missing")
            print("  FRESH FILE MISSING")
            continue
        schema = _schema_for(base_path, fresh_path)
        lines, failures = compare(
            extract(base_path, schema),
            extract(fresh_path, schema),
            tolerance=args.tolerance,
        )
        print("\n".join(lines))
        all_failures.extend(failures)

    if all_failures:
        print(f"\n{len(all_failures)} regression(s) past the "
              f"{args.tolerance:.0%} floor:", file=sys.stderr)
        for f in all_failures:
            print(f"  {f}", file=sys.stderr)
        return 1
    print("\nbench-regression gate: all tracked metrics within tolerance")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
