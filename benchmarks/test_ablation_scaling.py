"""Ablation — strong scaling and the divergence penalty.

Two claims from paper §3 that motivate the whole design:

1. brute force and the RBC (being brute-force-structured) *scale* with
   core count, because their traces are wide phases of independent dense
   tiles.  We replay the same traces across 1..64 cores of the AMD model.
2. conditional tree search is hostile to SIMT hardware: on the GPU model a
   Cover Tree query trace collapses to scalar divergent execution, while
   the one-shot RBC trace runs at throughput.  The paper uses this to
   justify not even attempting tree search on the GPU.
"""

from __future__ import annotations

from conftest import bench_once

from repro.baselines import BruteForceIndex, CoverTree
from repro.core import ExactRBC, OneShotRBC
from repro.data import load
from repro.eval import format_table, traced_query
from repro.simulator import AMD_48CORE, TESLA_C2050, strong_scaling
from repro.simulator.trace import TraceRecorder

CORES = [1, 2, 4, 8, 16, 32, 48, 64]


def scaling_rows():
    X, Q = load("bio", scale=0.1, n_queries=500, max_n=20_000)
    rows = []
    for label, index, kwargs in [
        ("brute force", BruteForceIndex().build(X),
         dict(tile_cols=2048, row_chunk=512)),
        ("exact RBC", ExactRBC(seed=0).build(X, n_reps=500), {}),
    ]:
        rec = TraceRecorder()
        index.query(Q, 1, recorder=rec, **kwargs)
        base = None
        for cores, res in strong_scaling(rec.trace, AMD_48CORE, CORES):
            if base is None:
                base = res.time_s
            rows.append([label, cores, res.time_s * 1e3, base / res.time_s,
                         res.utilization])
    return rows


def divergence_rows():
    X, Q = load("tiny8", scale=0.05, n_queries=100, max_n=8_000)
    rows = []
    ct = CoverTree().build(X)
    run_ct = traced_query(ct, Q, [TESLA_C2050], k=1)
    rbc = OneShotRBC(seed=0, rep_scheme="exact").build(
        X, n_reps=300, s=300
    )
    run_rbc = traced_query(rbc, Q, [TESLA_C2050], k=1)
    brute = BruteForceIndex().build(X)
    run_bf = traced_query(
        brute, Q, [TESLA_C2050], k=1, tile_cols=2048, row_chunk=512
    )
    for label, run in [
        ("cover tree", run_ct), ("brute force", run_bf), ("one-shot RBC", run_rbc)
    ]:
        rows.append(
            [label, run.evals / 100, run.sim_time(TESLA_C2050) * 1e3]
        )
    return rows


def test_ablation_scaling_and_divergence(benchmark, report):
    scal, div = bench_once(
        benchmark, lambda: (scaling_rows(), divergence_rows())
    )
    text = "\n\n".join(
        [
            format_table(
                ["algorithm", "cores", "time ms", "speedup vs 1 core",
                 "utilization"],
                scal,
                title="Strong scaling of the recorded traces (AMD model)",
            ),
            format_table(
                ["algorithm", "evals/query", "GPU-model time ms"],
                div,
                title=(
                    "SIMT divergence: tree search vs BF-structured search "
                    "on the Tesla c2050 model"
                ),
            ),
        ]
    )
    report("ablation_scaling", text)

    # both BF-structured algorithms scale: >= 10x at 48 cores
    by = {}
    for label, cores, _, speedup, _ in scal:
        by[(label, cores)] = speedup
    assert by[("brute force", 48)] > 10.0
    assert by[("exact RBC", 48)] > 10.0
    # scaling is monotone in cores
    for label in ("brute force", "exact RBC"):
        seq = [by[(label, c)] for c in CORES]
        assert all(b >= a - 1e-9 for a, b in zip(seq, seq[1:])), (label, seq)

    # the cover tree evaluates far fewer distances than brute force, yet
    # the GPU model runs it SLOWER than brute force: divergence erases a
    # >10x work advantage (the paper's argument for BF-structured search)
    d = {row[0]: row for row in div}
    assert d["cover tree"][1] < d["brute force"][1] / 5
    assert d["cover tree"][2] > d["one-shot RBC"][2]
