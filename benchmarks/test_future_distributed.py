"""Future work (§8) — the RBC in a distributed / multi-GPU environment.

The paper closes by proposing to distribute "the database according to the
representatives" and to study "I/O and communication costs".  This
benchmark runs that study on the cluster model:

* node-count scaling of distributed RBC vs broadcast brute force (CPU
  nodes), with the modeled time split into coordinator / scatter / node
  compute / gather / merge;
* sharding ablation: representative-sharding routes each query to the few
  nodes that can own its answer, so its communication shrinks relative to
  random-shard broadcast as the cluster grows;
* the multi-GPU variant (Tesla c2050 nodes), which the paper names
  explicitly.
"""

from __future__ import annotations

from conftest import bench_once

from repro.data import load
from repro.distributed import ClusterSpec, DistributedBruteForce, DistributedRBC
from repro.eval import format_table
from repro.parallel import bf_knn
from repro.simulator import DESKTOP_QUAD, TESLA_C2050

N_QUERIES = 400
NODE_COUNTS = (1, 2, 4, 8, 16)


def run(node_spec, label):
    X, Q = load("robot", scale=0.1, n_queries=N_QUERIES, max_n=40_000)
    true_d, _ = bf_knn(Q, X, k=1)
    rows = []
    for n_nodes in NODE_COUNTS:
        cluster = ClusterSpec.homogeneous(n_nodes, node_spec)
        rbc = DistributedRBC(cluster, seed=0).build(
            X, n_reps=int(3 * X.shape[0] ** 0.5)
        )
        d, _ = rbc.query(Q, k=1)
        assert abs(d - true_d).max() < 1e-6  # distributed answers exact
        bf = DistributedBruteForce(cluster, seed=0).build(X)
        d2, _ = bf.query(Q, k=1)
        assert abs(d2 - true_d).max() < 1e-6
        rr, rb = rbc.last_report, bf.last_report
        rows.append(
            [
                label,
                n_nodes,
                rb.total_s * 1e3,
                rr.total_s * 1e3,
                rb.total_s / rr.total_s,
                rr.comm_fraction,
                rb.comm.total_bytes / max(rr.comm.total_bytes, 1.0),
                rr.balance,
            ]
        )
    return rows


def test_future_work_distributed(benchmark, report):
    cpu_rows, gpu_rows = bench_once(
        benchmark,
        lambda: (run(DESKTOP_QUAD, "quad-CPU"), run(TESLA_C2050, "c2050-GPU")),
    )
    rows = cpu_rows + gpu_rows
    report(
        "future_distributed",
        format_table(
            ["nodes of", "n", "bcast-BF ms", "dist-RBC ms", "RBC x",
             "RBC comm frac", "BF/RBC bytes", "balance"],
            rows,
            title=(
                "Future work (paper §8): distributed RBC vs broadcast brute"
                " force\n(robot analog, n=40k, 400 queries; representative-"
                "sharded vs random-sharded)"
            ),
        ),
    )
    for rows_ in (cpu_rows, gpu_rows):
        by_nodes = {r[1]: r for r in rows_}
        # the RBC wins at every cluster size
        for n_nodes in NODE_COUNTS:
            assert by_nodes[n_nodes][4] > 1.0, f"{n_nodes} nodes: RBC lost"
        # representative sharding moves fewer bytes than broadcast, and
        # its advantage grows with the cluster (broadcast traffic ~ nodes)
        assert by_nodes[16][6] > by_nodes[2][6]
        # LPT placement keeps nodes balanced
        assert by_nodes[16][7] > 0.5
