"""Figure 3 (Appendix C) — exact-search speedup vs number of representatives.

The exact search algorithm has a single parameter, n_r.  The paper sweeps
it over a wide range per dataset and shows the speedup (y, log scale) is
relatively stable in the parameter — the flat plateaus of Figure 3 — so no
careful tuning is required.

Reproduction: same sweep, speedup measured as the 48-core machine-model
time ratio against brute force.  The stability claim is asserted as: over
the middle of the sweep (2x-8x sqrt(n)), speedup stays within a 4x band
while n_r varies by 4x.
"""

from __future__ import annotations

from conftest import bench_once

from repro.baselines import BruteForceIndex
from repro.core import ExactRBC
from repro.data import load
from repro.eval import ascii_plot, format_table, traced_query
from repro.simulator import AMD_48CORE

WORKLOADS = [
    ("bio", 20_000),
    ("cov", 20_000),
    ("robot", 20_000),
    ("tiny4", 20_000),
    ("tiny8", 20_000),
    ("tiny32", 20_000),
]

N_QUERIES = 500
SWEEP = (1.0, 2.0, 4.0, 6.0, 8.0, 12.0)
MACHINES = [AMD_48CORE]
BF_GRAIN = dict(tile_cols=2048, row_chunk=512)


def run_dataset(name: str, max_n: int):
    X, Q = load(name, scale=0.1, n_queries=N_QUERIES, max_n=max_n)
    n = X.shape[0]
    brute = BruteForceIndex().build(X)
    brute_run = traced_query(brute, Q, MACHINES, k=1, **BF_GRAIN)
    series = []
    for frac in SWEEP:
        nr = max(1, int(frac * n**0.5))
        rbc = ExactRBC(seed=0, rep_scheme="exact").build(X, n_reps=nr)
        run = traced_query(rbc, Q, MACHINES, k=1)
        assert abs(run.dist - brute_run.dist).max() < 1e-6  # still exact
        series.append(
            (nr, brute_run.sim_time(AMD_48CORE) / run.sim_time(AMD_48CORE))
        )
    return name, n, series


def test_fig3_exact_nr_sweep(benchmark, report):
    results = bench_once(
        benchmark, lambda: [run_dataset(*w) for w in WORKLOADS]
    )
    rows = []
    for name, n, series in results:
        for nr, x in series:
            rows.append([name, n, nr, x])
    figure = ascii_plot(
        {name: [(nr, x) for nr, x in series] for name, n, series in results},
        logy=True,
        xlabel="number of representatives",
        ylabel="speedup",
        title="Figure 3 (reproduced): exact speedup vs n_reps",
        width=68,
        height=18,
    )
    report(
        "fig3_nr_sweep",
        figure
        + "\n\n"
        + format_table(
            ["dataset", "n", "n_reps", "48-core x"],
            rows,
            title=(
                "Figure 3 (Appendix C): exact-search speedup vs number of "
                "representatives\n(paper: log-scale y, speedup stable over "
                "a wide parameter range)"
            ),
        ),
    )
    for name, n, series in results:
        # stability claim over the sweep's middle (2x..8x sqrt(n))
        mid = [x for nr, x in series[1:5]]
        assert max(mid) / min(mid) < 4.0, f"{name}: unstable {mid}"
        assert max(x for _, x in series) > 1.5, f"{name}: never wins"
