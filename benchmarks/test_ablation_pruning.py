"""Ablation — contribution of each pruning rule in the exact search.

The paper states (§6.1) that using inequalities (1) and (2) *together*
improved empirical performance even though the theory only needs one, and
that sorted ownership lists allow skipping points beyond the Claim-2 bound
(footnote 2).  This ablation quantifies each rule's contribution: stage-2
distance evaluations with every combination of
{psi rule, 3-gamma rule, sorted-list trim}.
"""

from __future__ import annotations

from conftest import bench_once

from repro.core import ExactRBC
from repro.data import load
from repro.eval import format_table

WORKLOADS = [("bio", 20_000), ("robot", 20_000), ("tiny8", 20_000)]
N_QUERIES = 300

CONFIGS = [
    ("none", dict(use_psi_rule=False, use_3gamma_rule=False, use_trim=False)),
    ("psi only", dict(use_psi_rule=True, use_3gamma_rule=False, use_trim=False)),
    ("3gamma only", dict(use_psi_rule=False, use_3gamma_rule=True, use_trim=False)),
    ("psi + 3gamma", dict(use_psi_rule=True, use_3gamma_rule=True, use_trim=False)),
    ("all (paper)", dict(use_psi_rule=True, use_3gamma_rule=True, use_trim=True)),
]


def run_dataset(name: str, max_n: int):
    X, Q = load(name, scale=0.1, n_queries=N_QUERIES, max_n=max_n)
    rbc = ExactRBC(seed=0).build(X, n_reps=int(4 * X.shape[0] ** 0.5))
    out = []
    baseline = None
    for label, flags in CONFIGS:
        d, _ = rbc.query(Q, k=1, **flags)
        evals = rbc.last_stats.stage2_evals / N_QUERIES
        if baseline is None:
            baseline = evals
        out.append([name, label, evals, baseline / evals])
    return out


def test_ablation_pruning_rules(benchmark, report):
    tables = bench_once(
        benchmark, lambda: [run_dataset(*w) for w in WORKLOADS]
    )
    rows = [row for table in tables for row in table]
    report(
        "ablation_pruning",
        format_table(
            ["dataset", "rules", "stage-2 evals/query", "reduction vs none"],
            rows,
            title=(
                "Ablation: pruning-rule contributions in exact search\n"
                "(paper: both inequalities used simultaneously, plus the "
                "sorted-list trim)"
            ),
        ),
    )
    for table in tables:
        by = {row[1]: row[2] for row in table}
        # each rule alone must beat no rules; all together must be best
        assert by["psi only"] <= by["none"]
        assert by["3gamma only"] <= by["none"]
        assert by["all (paper)"] <= by["psi only"] + 1e-9
        assert by["all (paper)"] <= by["3gamma only"] + 1e-9
        assert by["all (paper)"] <= by["psi + 3gamma"] + 1e-9
        # and the full rule set must be a substantial win on these datasets
        assert by["none"] / by["all (paper)"] > 2.0
