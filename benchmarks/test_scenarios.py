"""Realistic traffic scenarios — the semantic cache under skewed load.

The acceptance experiment of the proximity-keyed result cache: each
generated scenario trace (uniform, diurnal, flash-crowd, Zipfian
hot-key, drift) is replayed twice over the same warmed index — once
cache-off, once cache-on — and the two servers' answers are compared
with ``==`` (the zero-recall-loss contract holds in *every* scenario,
not just the friendly ones).

Required: on the Zipfian hot-key scenario the cached server's p99
sojourn latency is >= 2x better than cache-off at equal correctness.
The offered rate deliberately saturates the uncached server, so its p99
is queueing-dominated — exactly the regime where serving hot traffic
from the small certified tier pays.  Results land in
``BENCH_scenarios.json`` (hit rate, p99, throughput per scenario,
cached vs uncached), uploaded as a CI artifact and tracked by the
bench-regression gate.  The tracked ``p99_speedup`` is capped at 10x so
the >25% regression gate compares a machine-stable number; the raw
ratio is kept alongside.
"""

from __future__ import annotations

import json
import pathlib

import numpy as np
from conftest import bench_once

from repro.core import ExactRBC
from repro.eval import format_table
from repro.runtime import ExecContext
from repro.serving import (
    SCENARIOS,
    BatchPolicy,
    StreamingSearcher,
    make_scenario,
)

BENCH_JSON = pathlib.Path(__file__).resolve().parents[1] / "BENCH_scenarios.json"

#: acceptance config: d=16 Gaussian, n=20k database, skewed streaming load
N, M, DIM, K = 20_000, 512, 16, 5
POOL = 4_096  # prototype pool: large enough that uniform traffic has few repeats
QPS = 4_000.0  # offered rate; saturates the uncached server on purpose
MAX_DELAY_MS = 100.0
MAX_BATCH = 256
SEED = 7
P99_BAR = 2.0  # acceptance: zipfian cached p99 at least this much better
SPEEDUP_CAP = 10.0  # tracked metric cap, for cross-machine gate stability


def test_scenario_suite(rng, report, benchmark, out_dir):
    X = rng.normal(size=(N, DIM))
    pool = rng.normal(size=(POOL, DIM))
    index = ExactRBC(seed=0).build(X)
    ctx = ExecContext(executor="threads")

    def serve(trace, cache):
        policy = BatchPolicy(max_delay_ms=MAX_DELAY_MS, max_batch=MAX_BATCH)
        with StreamingSearcher(
            index, k=K, policy=policy, ctx=ctx, cache=cache
        ) as srv:
            label = f"{trace.name}:{'cached' if cache else 'uncached'}"
            return srv.search_stream(
                trace.queries, arrival_times=trace.arrivals, name=label
            )

    def experiment():
        results = []
        for name in sorted(SCENARIOS):
            trace = make_scenario(
                name, pool, n_queries=M, qps=QPS, seed=SEED
            )
            off = serve(trace, None)
            on = serve(trace, True)
            results.append((trace, off, on))
        return results

    results = bench_once(benchmark, experiment)

    rows, payload_rows = [], []
    by_name = {}
    for trace, off, on in results:
        # ---- correctness: the cache must be invisible in the answers
        identical = bool(
            np.array_equal(off.dist, on.dist)
            and np.array_equal(off.idx, on.idx)
        )
        assert identical, (
            f"{trace.name}: cache-served answers differ from uncached "
            "exact answers — the zero-recall-loss certificate is broken"
        )
        p99_x = off.latency.p99_s / max(on.latency.p99_s, 1e-12)
        entry = {
            "name": trace.name,
            "offered_qps": trace.offered_qps,
            "hit_rate": on.cache_hit_rate,
            "cache_hits": on.cache_hits,
            "cache_rejects": on.cache_rejects,
            "uncached_throughput_qps": off.throughput_qps,
            "cached_throughput_qps": on.throughput_qps,
            "uncached_p99_ms": off.latency.p99_s * 1e3,
            "cached_p99_ms": on.latency.p99_s * 1e3,
            "p99_speedup": min(p99_x, SPEEDUP_CAP),
            "p99_speedup_raw": p99_x,
            "identical": identical,
            "params": trace.params,
        }
        by_name[trace.name] = entry
        payload_rows.append(entry)
        rows.append(
            [
                trace.name,
                on.cache_hit_rate * 100.0,
                off.throughput_qps,
                on.throughput_qps,
                off.latency.p99_s * 1e3,
                on.latency.p99_s * 1e3,
                p99_x,
            ]
        )

    report(
        "serving_scenarios",
        format_table(
            [
                "scenario", "hit %", "q/s off", "q/s on",
                "p99 off ms", "p99 on ms", "p99 x",
            ],
            rows,
            title=(
                f"Traffic scenarios (n={N}, d={DIM}, m={M} @ {QPS:g} q/s "
                f"offered, k={K}) — cache off vs on, answers identical"
            ),
        ),
    )

    zipf = by_name["zipfian"]
    payload = {
        "config": {
            "n": N,
            "dim": DIM,
            "queries": M,
            "k": K,
            "pool": POOL,
            "qps_offered": QPS,
            "max_delay_ms": MAX_DELAY_MS,
            "max_batch": MAX_BATCH,
            "seed": SEED,
            "backend": "threads",
            "speedup_cap": SPEEDUP_CAP,
        },
        "n": N,
        "dim": DIM,
        "queries": M,
        "k": K,
        "scenarios": payload_rows,
        "zipfian": {
            "p99_speedup": zipf["p99_speedup"],
            "p99_speedup_raw": zipf["p99_speedup_raw"],
            "hit_rate": zipf["hit_rate"],
        },
    }
    BENCH_JSON.write_text(json.dumps(payload, indent=2) + "\n")

    # ---- acceptance bars
    assert zipf["p99_speedup_raw"] >= P99_BAR, (
        f"zipfian cached p99 {zipf['cached_p99_ms']:.1f} ms is only "
        f"{zipf['p99_speedup_raw']:.2f}x better than uncached "
        f"({zipf['uncached_p99_ms']:.1f} ms); need >= {P99_BAR}x"
    )
    assert zipf["hit_rate"] > 0.5, (
        f"zipfian hit rate {zipf['hit_rate']:.1%} too low — the hot-key "
        "traffic is not being served from cache"
    )
