"""Extension — two-level RBC: sub-sqrt(n) query work.

Not in the paper (which is deliberately single-level); this is the natural
recursive continuation of its construction.  The benchmark measures the
work/accuracy position of the two-level one-shot cover against the flat
one-shot at the Theorem-2-flavoured sizes, across database sizes, to show
where the extra level starts paying.
"""

from __future__ import annotations

import numpy as np

from conftest import bench_once

from repro.core import HierarchicalOneShotRBC, OneShotRBC
from repro.data import manifold
from repro.eval import format_table
from repro.parallel import bf_knn

SIZES = (8_000, 27_000, 64_000)
N_QUERIES = 300


def run_size(n: int):
    full = manifold(n + N_QUERIES, 12, 3, seed=13)
    X, Q = full[:n], full[n:]
    true_d, _ = bf_knn(Q, X, k=1)

    def hit_rate(d):
        return float(np.isclose(d[:, 0], true_d[:, 0], atol=1e-9).mean())

    flat = OneShotRBC(seed=0, rep_scheme="exact").build(
        X, n_reps=int(n**0.5), s=int(n**0.5)
    )
    fd, _ = flat.query(Q, k=1)
    flat_work = flat.last_stats.per_query_evals()

    hier = HierarchicalOneShotRBC(seed=0).build(X)
    h1, _ = hier.query(Q, k=1, n_probes=1)
    work1 = hier.last_stats.per_query_evals()
    h3, _ = hier.query(Q, k=1, n_probes=3)
    work3 = hier.last_stats.per_query_evals()

    return [
        [n, "flat sqrt(n)", flat_work, hit_rate(fd)],
        [n, "two-level (1 probe)", work1, hit_rate(h1)],
        [n, "two-level (3 probes)", work3, hit_rate(h3)],
    ]


def test_ext_hierarchical(benchmark, report):
    tables = bench_once(benchmark, lambda: [run_size(n) for n in SIZES])
    rows = [row for t in tables for row in t]
    report(
        "ext_hierarchical",
        format_table(
            ["n", "structure", "evals/query", "NN hit rate"],
            rows,
            title=(
                "Extension: two-level one-shot RBC vs flat one-shot\n"
                "(3-d manifold; two-level work grows ~n^(1/3) vs sqrt(n))"
            ),
        ),
    )
    for t in tables:
        flat, one_probe, three_probe = t
        # like-for-like (single routed list): less work at every size...
        assert one_probe[2] < flat[2], t
        # ...and the probe dial buys back accuracy past the flat curve
        assert three_probe[3] >= flat[3], t
    # the work advantage grows with n (the n^{1/3} vs sqrt(n) claim)
    ratios = [t[0][2] / t[1][2] for t in tables]
    assert ratios[-1] > ratios[0]
