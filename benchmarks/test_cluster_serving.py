"""Sharded streaming serving — scatter/gather scaling and hedged tails.

The acceptance experiment of the distributed x serving fusion: the same
d=16 / n=20k Gaussian streaming trace as ``test_serving.py`` is answered
by ``ShardedStreamingSearcher`` over 1, 2 and 4 simulated node shards
(representative partitioning, alpha-beta network model).  Two claims:

* **scaling** — under a saturating offered load, modeled throughput
  grows with the shard count: each scatter wave runs the per-shard scans
  concurrently, so batch service tracks the *slowest shard*, not the sum;
* **hedged tails** — with one straggler shard (injected 200 ms delay),
  hedged requests to a replica keep p99 sojourn within the latency
  budget while the unhedged server blows through it.

Answers must stay bit-identical to the single-node ``StreamingSearcher``
at every shard count.  Results go to ``BENCH_cluster.json`` at the repo
root (tracked by ``check_regression.py`` and uploaded as a CI artifact).
"""

from __future__ import annotations

import json
import pathlib

import numpy as np
from conftest import bench_once

from repro.core import ExactRBC
from repro.distributed import ClusterSpec
from repro.eval import format_table
from repro.serving import BatchPolicy, HedgePolicy, ShardedStreamingSearcher
from repro.serving.searcher import StreamingSearcher
from repro.simulator import DESKTOP_QUAD

BENCH_JSON = pathlib.Path(__file__).resolve().parents[1] / "BENCH_cluster.json"

#: same acceptance config as the serving benchmark, saturating load
N, M, DIM, K = 20_000, 384, 16, 5
QPS_SATURATE = 50_000.0
MAX_DELAY_MS = 100.0
MAX_BATCH = 64
SHARD_COUNTS = (1, 2, 4)
SCALING_BAR = 1.3  # 4 shards must beat 1 shard by this factor

#: hedging scenario: moderate load, one shard 200 ms slow, 2 replicas
QPS_HEDGE = 100.0
SLOW_SHARD_DELAY_S = 0.200


def test_cluster_serving(rng, report, benchmark, out_dir):
    X = rng.normal(size=(N, DIM))
    Q = rng.normal(size=(M, DIM))
    index = ExactRBC(seed=0).build(X)
    policy = BatchPolicy(max_delay_ms=MAX_DELAY_MS, max_batch=MAX_BATCH)

    def run_shards(n_shards):
        cluster = ClusterSpec.homogeneous(n_shards, DESKTOP_QUAD)
        with ShardedStreamingSearcher(
            index, k=K, policy=policy, n_shards=n_shards, cluster=cluster
        ) as srv:
            return srv.search_stream(Q, qps=QPS_SATURATE, name=f"{n_shards}-shard")

    def run_hedge(hedge):
        with ShardedStreamingSearcher(
            index,
            k=K,
            policy=BatchPolicy(max_delay_ms=MAX_DELAY_MS, min_batch=4, max_batch=4),
            n_shards=4,
            replicas=2,
            hedge=hedge,
            shard_delays={1: SLOW_SHARD_DELAY_S},
        ) as srv:
            return srv.search_stream(Q, qps=QPS_HEDGE)

    def experiment():
        with StreamingSearcher(index, k=K, policy=policy) as base:
            want = base.search_stream(Q, qps=QPS_SATURATE, name="single-node")
        reports = [run_shards(s) for s in SHARD_COUNTS]
        return want, reports, run_hedge(None), run_hedge(HedgePolicy())

    want, reports, unhedged, hedged = bench_once(benchmark, experiment)

    # ---- correctness: sharding must be invisible in the answers
    for r in reports:
        assert np.array_equal(want.dist, r.dist), f"{r.name}: dists differ"
        assert np.array_equal(want.idx, r.idx), f"{r.name}: ids differ"

    base_qps = reports[0].throughput_qps
    rows = [
        [
            r.n_shards,
            r.throughput_qps,
            r.throughput_qps / base_qps,
            r.latency.p99_s * 1e3,
            r.rounds,
            r.hedges,
        ]
        for r in reports
    ]
    scaling = reports[-1].throughput_qps / base_qps
    report(
        "cluster_serving",
        format_table(
            ["shards", "q/s", "speedup", "p99 ms", "rounds", "hedges"],
            rows,
            title=(
                f"Sharded serving (n={N}, d={DIM}, m={M} @ saturating load, "
                f"k={K}) — 4-shard scaling {scaling:.2f}x; straggler p99 "
                f"{unhedged.latency.p99_s * 1e3:.0f} ms unhedged vs "
                f"{hedged.latency.p99_s * 1e3:.0f} ms hedged "
                f"({hedged.hedges} hedges)"
            ),
        ),
    )

    payload = {
        "config": {
            "n": N,
            "dim": DIM,
            "queries": M,
            "k": K,
            "qps_offered": QPS_SATURATE,
            "max_delay_ms": MAX_DELAY_MS,
            "max_batch": MAX_BATCH,
            "slow_shard_delay_s": SLOW_SHARD_DELAY_S,
            "qps_hedge": QPS_HEDGE,
        },
        "identical": True,
        "scaling": scaling,
        "nodes": [
            {
                "n_shards": r.n_shards,
                "throughput_qps": r.throughput_qps,
                "speedup": r.throughput_qps / base_qps,
                "p99_ms": r.latency.p99_s * 1e3,
                "rounds": r.rounds,
                "hedges": r.hedges,
            }
            for r in reports
        ],
        "hedging": {
            "unhedged_p99_ms": unhedged.latency.p99_s * 1e3,
            "hedged_p99_ms": hedged.latency.p99_s * 1e3,
            "hedges": hedged.hedges,
            "budget_ms": MAX_DELAY_MS,
        },
    }
    BENCH_JSON.write_text(json.dumps(payload, indent=2) + "\n")

    # ---- acceptance bars
    assert scaling >= SCALING_BAR, (
        f"4-shard throughput {reports[-1].throughput_qps:.0f} q/s is only "
        f"{scaling:.2f}x the 1-shard {base_qps:.0f} q/s; need >= "
        f"{SCALING_BAR}x"
    )
    assert (
        reports[0].throughput_qps
        <= reports[1].throughput_qps
        <= reports[2].throughput_qps
    ), "throughput must be monotone in shard count"
    budget_s = MAX_DELAY_MS / 1e3
    assert unhedged.latency.p99_s > budget_s, (
        "straggler scenario is miscalibrated: even unhedged stays in budget"
    )
    assert hedged.latency.p99_s <= budget_s, (
        f"hedged p99 {hedged.latency.p99_s * 1e3:.1f} ms exceeds the "
        f"{MAX_DELAY_MS:g} ms budget despite {hedged.hedges} hedges"
    )
    assert hedged.hedges > 0
