"""Ablation — batch size: streaming vs batched queries.

Paper §3: "In the case where there is only a single query presented at a
time (e.g. a stream of queries), the distance computation step of BF(q,X)
has the structure of a matrix-vector multiplication."  Matvec parallelizes
(tiles over the database) but cannot amortize per-batch overheads or reuse
operands the way GEMM does, so throughput rises with batch size while
per-query latency does too.  This ablation maps that trade-off for brute
force and for the exact RBC on the 48-core model.
"""

from __future__ import annotations

from conftest import bench_once

from repro.baselines import BruteForceIndex
from repro.core import ExactRBC
from repro.data import load
from repro.eval import format_table, traced_query
from repro.simulator import AMD_48CORE

BATCHES = (1, 8, 64, 512)
TOTAL_QUERIES = 512


def run():
    X, Q = load("tiny8", scale=0.1, n_queries=TOTAL_QUERIES, max_n=20_000)
    rows = []
    for label, index, kwargs in [
        ("brute force", BruteForceIndex().build(X), dict(tile_cols=2048)),
        ("exact RBC", ExactRBC(seed=0).build(X, n_reps=500), {}),
    ]:
        for b in BATCHES:
            total = 0.0
            batches = 0
            for lo in range(0, TOTAL_QUERIES, b):
                run_ = traced_query(
                    index, Q[lo : lo + b], [AMD_48CORE], k=1, **kwargs
                )
                total += run_.sim_time(AMD_48CORE)
                batches += 1
            latency_ms = total / batches * 1e3
            throughput = TOTAL_QUERIES / total
            rows.append([label, b, latency_ms, throughput])
    return rows


def test_ablation_batching(benchmark, report):
    rows = bench_once(benchmark, run)
    report(
        "ablation_batching",
        format_table(
            ["algorithm", "batch size", "latency ms/batch",
             "throughput q/s"],
            rows,
            title=(
                "Ablation: batch size vs latency and throughput "
                "(48-core model, tiny8 analog)\n(single queries = matvec; "
                "batches = GEMM)"
            ),
        ),
    )
    by = {(r[0], r[1]): r for r in rows}
    for label in ("brute force", "exact RBC"):
        # batching monotonically raises throughput...
        tp = [by[(label, b)][3] for b in BATCHES]
        assert all(b >= a for a, b in zip(tp, tp[1:])), (label, tp)
        # ...at the price of batch latency
        assert by[(label, 512)][2] > by[(label, 1)][2]
        # and the big-batch regime gains at least 3x throughput
        assert tp[-1] > 3 * tp[0], (label, tp)
    # the RBC keeps its advantage in the streaming regime too
    assert by[("exact RBC", 1)][3] > by[("brute force", 1)][3]
