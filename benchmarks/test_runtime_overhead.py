"""Runtime observability overhead — instrumented vs bare queries.

The unified runtime promises observability that is cheap enough to leave
on: a ``traced_query`` run in the wall-clock-only mode
(``trace_ops=False`` — per-phase timings and the counter windows, no
machine-model trace) must stay within 5% of a bare
``query(Q, k)`` call on the d=16 acceptance config (n=20k, m=1k, k=5).

Timing interleaves the contenders round by round and compares medians of
per-round ratios, so drifting load on a shared runner hits both sides
equally.  Results are appended to ``BENCH_kernels.json`` under the
``runtime_overhead`` key so the perf trajectory is trackable across PRs.
"""

from __future__ import annotations

import json
import pathlib
import time

import numpy as np
from conftest import bench_once

from repro.core import ExactRBC, OneShotRBC
from repro.eval import format_table, traced_query

BENCH_JSON = pathlib.Path(__file__).resolve().parents[1] / "BENCH_kernels.json"

#: the acceptance config: d=16 Gaussian, n=20k database, m=1k queries
N, M, DIM, K = 20_000, 1_000, 16, 5
OVERHEAD_BAR = 1.05


def _interleaved_times(fns: dict, rounds: int) -> dict:
    times = {name: [] for name in fns}
    for _ in range(rounds):
        for name, fn in fns.items():
            t0 = time.perf_counter()
            fn()
            times[name].append(time.perf_counter() - t0)
    return times


def run_class(cls, X, Q, rounds: int = 9) -> dict:
    index = cls(seed=0).build(X)

    # answers must be untouched by instrumentation (also warms caches)
    d0, i0 = index.query(Q, k=K)
    run = traced_query(index, Q, k=K, trace_ops=False)
    assert np.array_equal(d0, run.dist), f"{cls.__name__}: tracing changed dists"
    assert np.array_equal(i0, run.idx), f"{cls.__name__}: tracing changed ids"
    assert run.evals > 0

    times = _interleaved_times(
        {
            "bare": lambda: index.query(Q, k=K),
            "instrumented": lambda: traced_query(
                index, Q, k=K, trace_ops=False
            ),
        },
        rounds,
    )
    ratios = [i / b for b, i in zip(times["bare"], times["instrumented"])]
    return {
        "bare_s": float(np.median(times["bare"])),
        "instrumented_s": float(np.median(times["instrumented"])),
        "overhead": float(np.median(ratios)),
    }


def test_runtime_overhead(benchmark, report, rng):
    X = rng.normal(size=(N, DIM))
    Q = rng.normal(size=(M, DIM))

    def experiment():
        results = {
            "exact": run_class(ExactRBC, X, Q),
            "oneshot": run_class(OneShotRBC, X, Q),
        }
        # flaky-runner guard: re-measure once with more rounds before failing
        if max(r["overhead"] for r in results.values()) > OVERHEAD_BAR:
            results = {
                "exact": run_class(ExactRBC, X, Q, rounds=21),
                "oneshot": run_class(OneShotRBC, X, Q, rounds=21),
            }
        return results

    results = bench_once(benchmark, experiment)

    rows = [
        [name, r["bare_s"], r["instrumented_s"], r["overhead"]]
        for name, r in results.items()
    ]
    text = format_table(
        ["index", "bare s", "instrumented s", "ratio"],
        rows,
        title=(
            f"Runtime observability overhead, trace_ops=False "
            f"(n={N}, m={M}, d={DIM}, k={K})"
        ),
    )
    report("runtime_overhead", text)

    payload = {}
    if BENCH_JSON.exists():
        payload = json.loads(BENCH_JSON.read_text())
    payload["runtime_overhead"] = {
        "config": {"n": N, "m": M, "dim": DIM, "k": K, "metric": "euclidean"},
        **results,
    }
    BENCH_JSON.write_text(json.dumps(payload, indent=2) + "\n")

    for name, r in results.items():
        assert r["overhead"] <= OVERHEAD_BAR, (
            f"{name}: instrumented query is {r['overhead']:.3f}x bare "
            f"(bar {OVERHEAD_BAR}x) — observability must stay cheap"
        )
