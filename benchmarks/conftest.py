"""Shared fixtures and helpers for the paper-reproduction benchmarks.

Every benchmark regenerates one table or figure of the paper (see the
experiment index in DESIGN.md §3).  Output conventions:

* each benchmark prints its table and writes it to ``benchmarks/out/``;
* timing uses ``benchmark.pedantic(..., rounds=1)`` — an experiment is a
  one-shot measurement, not a microbenchmark to be repeated;
* algorithmic comparisons (who wins, by what factor) are made on distance
  evaluations and machine-model times, which are deterministic — not on
  the host's wall clock.
"""

from __future__ import annotations

import pathlib

import numpy as np
import pytest

OUT_DIR = pathlib.Path(__file__).parent / "out"


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(12345)


@pytest.fixture(scope="session")
def out_dir() -> pathlib.Path:
    OUT_DIR.mkdir(exist_ok=True)
    return OUT_DIR


@pytest.fixture
def report(out_dir):
    """Returns a function that prints a table and persists it to out/."""

    def _report(name: str, text: str) -> None:
        print("\n" + text)
        (out_dir / f"{name}.txt").write_text(text + "\n")

    return _report


def bench_once(benchmark, fn):
    """Run an experiment exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(fn, rounds=1, iterations=1)
