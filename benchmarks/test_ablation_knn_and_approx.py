"""Ablations — k-NN extension and the (1+eps)-approximate mode.

Paper §5 notes "the extensions to k-NN and eps-range search are
straightforward" and footnote 1 sketches the approximate variant of the
exact algorithm.  Both are implemented; these benchmarks quantify them:

* k-sweep: per-query work of exact RBC as k grows 1..32, vs the k-free
  cost of brute force (whose work is n regardless of k);
* eps-sweep: work saved and realized quality as the exact search's
  pruning threshold is relaxed.
"""

from __future__ import annotations

import numpy as np

from conftest import bench_once

from repro.core import ExactRBC
from repro.data import load
from repro.eval import distance_ratio, format_table
from repro.parallel import bf_knn

N_QUERIES = 300


def k_sweep():
    X, Q = load("robot", scale=0.1, n_queries=N_QUERIES, max_n=20_000)
    n = X.shape[0]
    rbc = ExactRBC(seed=0).build(X, n_reps=int(3 * n**0.5))
    rows = []
    for k in (1, 2, 4, 8, 16, 32):
        d, _ = rbc.query(Q, k=k)
        td, _ = bf_knn(Q, X, k=k)
        assert np.allclose(d, td, atol=1e-9)
        w = rbc.last_stats.per_query_evals()
        rows.append([k, w, n / w])
    return rows


def eps_sweep():
    X, Q = load("bio", scale=0.1, n_queries=N_QUERIES, max_n=20_000)
    n = X.shape[0]
    rbc = ExactRBC(seed=0).build(X, n_reps=int(4 * n**0.5))
    true_d, _ = bf_knn(Q, X, k=1)
    rows = []
    for eps in (0.0, 0.05, 0.1, 0.25, 0.5, 1.0, 2.0):
        d, _ = rbc.query(Q, k=1, approx_eps=eps)
        ratio = distance_ratio(d, true_d)
        w = rbc.last_stats.per_query_evals()
        rows.append([eps, w, n / w, ratio, 1.0 + eps])
        assert ratio <= 1.0 + eps + 1e-9  # the guarantee holds
    return rows


def test_ablation_k_and_eps(benchmark, report):
    krows, erows = bench_once(benchmark, lambda: (k_sweep(), eps_sweep()))
    text = "\n\n".join(
        [
            format_table(
                ["k", "evals/query", "work reduction vs brute"],
                krows,
                title="k-NN sweep: exact RBC work vs k (robot analog)",
            ),
            format_table(
                ["approx eps", "evals/query", "work reduction",
                 "measured dist ratio", "guaranteed bound"],
                erows,
                title=(
                    "(1+eps)-approximate exact search (bio analog): work "
                    "saved vs realized quality"
                ),
            ),
        ]
    )
    report("ablation_knn_approx", text)

    # k grows work sublinearly: 32x more neighbors < 16x more work
    assert krows[-1][1] < 16 * krows[0][1]
    # and every k stays below brute force
    for _, w, red in krows:
        assert red > 1.0
    # relaxing eps monotonically reduces work...
    works = [r[1] for r in erows]
    assert all(b <= a + 1e-9 for a, b in zip(works, works[1:]))
    # ...and the realized quality stays far better than the worst case
    assert erows[-1][3] < 1.2  # eps=2 bound allows 3.0; measured << that
