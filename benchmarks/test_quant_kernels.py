"""Quantized kernel tier — warm-path throughput vs the float32 engine.

The quantized tier attacks the regime the pruning rules cannot: at d=32
on Gaussian data the exact RBC's triangle-inequality rules retain nearly
the whole database, so stage 2 is a full scan in disguise and the win
left on the table is *bytes per scanned dimension*.  int8 codes move 4x
less than float32 (8x less than float64); the certified frontier scan
over-fetches ``k' = ck`` candidates against a triangle-inequality bound
and re-ranks them in float64, so answers stay id-identical to the exact
engine — compression accelerates candidate generation, never ranking.

This benchmark measures the acceptance configuration (d=32 Gaussian,
n=20k, m=1k, k=5): the int8 flat plan must answer warm query batches
>= 2x faster than the float32 engine path at bit-identical result ids.
The scan backend (numpy decode-cache vs numba codes-direct) is whatever
:func:`repro.metrics.jit.kernel_backend` resolves — the CI matrix runs
both legs; answers are backend-independent by construction because both
feed the same float64 re-rank.

Timing interleaves the contenders round by round and compares medians of
per-round ratios, so drifting load on a shared runner hits both sides
equally.  Results are written to ``BENCH_quant.json`` at the repo root
so the perf trajectory is trackable across PRs.
"""

from __future__ import annotations

import json
import pathlib
import time

import numpy as np
from conftest import bench_once

from repro.core import ExactRBC
from repro.eval import format_table
from repro.metrics.jit import kernel_backend

BENCH_JSON = pathlib.Path(__file__).resolve().parents[1] / "BENCH_quant.json"

#: the acceptance config: d=32 Gaussian — pruning is ineffective here, so
#: the flat certified scan is the tuned strategy (pinned for determinism)
N, M, DIM, K = 20_000, 1_000, 32, 5
SPEEDUP_BAR = 2.0


def _interleaved_times(fns: dict, rounds: int) -> dict:
    """Per-round wall-clock for each contender, measured back to back."""
    times = {name: [] for name in fns}
    for _ in range(rounds):
        for name, fn in fns.items():
            t0 = time.perf_counter()
            fn()
            times[name].append(time.perf_counter() - t0)
    return times


def _median_ratio(base: list, other: list) -> float:
    """Median of per-round base/other ratios (load-drift robust)."""
    return float(np.median([b / o for b, o in zip(base, other)]))


def run_quant(X, Q, rounds: int = 7):
    indexes = {
        "f32": ExactRBC(seed=0, dtype="float32").build(X),
        "quant": ExactRBC(
            seed=0, quantizer="int8", quant_strategy="flat"
        ).build(X),
    }
    for ix in indexes.values():
        ix.warm()

    # ---- answers first (also warms the code caches)
    d32, i32 = indexes["f32"].query(Q, k=K)
    dq, iq = indexes["quant"].query(Q, k=K)
    assert np.array_equal(i32, iq), "quantized path changed result ids"
    np.testing.assert_allclose(d32, dq, rtol=1e-9, atol=1e-12)

    times = _interleaved_times(
        {name: (lambda ix=ix: ix.query(Q, k=K)) for name, ix in indexes.items()},
        rounds,
    )
    quant_info = dict(indexes["quant"].last_stats.quant)
    return {
        "f32_s": min(times["f32"]),
        "quant_s": min(times["quant"]),
        "speedup": _median_ratio(times["f32"], times["quant"]),
        "backend": quant_info.get("backend", kernel_backend("int8")),
        "quantizer": quant_info.get("quantizer", "int8"),
        "strategy": quant_info.get("strategy", "flat"),
        "k_prime": quant_info.get("k_prime", 0),
        "recall_before_rerank": quant_info.get("recall_before_rerank", 0.0),
        "code_bytes": quant_info.get("code_bytes", 0),
        "f32_bytes": int(N * DIM * 4),
    }


def test_quant_kernel_speedup(benchmark, report):
    rng = np.random.default_rng(7)
    X = rng.normal(size=(N, DIM))
    Q = rng.normal(size=(M, DIM))

    def experiment():
        r = run_quant(X, Q)
        # flaky-runner guard: re-measure once with more rounds before failing
        if r["speedup"] < SPEEDUP_BAR:
            r = run_quant(X, Q, rounds=15)
        return r

    r = bench_once(benchmark, experiment)

    text = format_table(
        ["contender", "s/batch", "speedup", "bytes/scan"],
        [
            ["f32 engine", r["f32_s"], 1.0, r["f32_bytes"]],
            [f"int8 flat ({r['backend']})", r["quant_s"], r["speedup"],
             r["code_bytes"]],
        ],
        title=(
            f"Quantized kernel tier, warm caches "
            f"(n={N}, m={M}, d={DIM}, k={K}, k'={r['k_prime']}, "
            f"recall@rerank={r['recall_before_rerank']:.3f})"
        ),
    )
    report("quant_kernels", text)

    payload = {}
    if BENCH_JSON.exists():
        payload = json.loads(BENCH_JSON.read_text())
    payload["quant_kernels"] = {
        "config": {"n": N, "m": M, "dim": DIM, "k": K, "metric": "euclidean"},
        **r,
    }
    BENCH_JSON.write_text(json.dumps(payload, indent=2) + "\n")

    assert r["speedup"] >= SPEEDUP_BAR, (
        f"quantized warm-path speedup {r['speedup']:.2f}x below the "
        f"{SPEEDUP_BAR}x acceptance bar ({r['backend']} backend, "
        f"f32 {r['f32_s']*1e3:.1f}ms vs quant {r['quant_s']*1e3:.1f}ms)"
    )
