"""Figure 2 — speedup of exact search over brute force (48-core machine).

The paper's headline result: on a 48-core AMD server, the exact RBC search
beats already-fast parallel brute force by one to two orders of magnitude
across the Table-1 datasets.

Reproduction: both algorithms run for real (same distance evaluations as
the paper's algorithm would perform); their recorded operation traces are
replayed on the 48-core machine model (see DESIGN.md §1 for why wall-clock
on this 1-core host cannot be used).  Reported per dataset:

* ``work x`` — distance-evaluation reduction (hardware-independent);
* ``48-core x`` — simulated-time speedup on the AMD 6176SE model, the
  quantity Figure 2 plots;
* ``wall x`` — host wall-clock ratio, for reference only.

Expected shape: speedup > 1 everywhere, largest on the low-intrinsic-dim
datasets (robot, tiny4), smallest on the highest-dimensional (phy, tiny32).
"""

from __future__ import annotations

import time

from conftest import bench_once

from repro.baselines import BruteForceIndex
from repro.core import ExactRBC, standard_n_reps
from repro.data import load
from repro.eval import format_table, traced_query
from repro.simulator import AMD_48CORE

#: datasets and their (scale, cap): large enough for sqrt(n) to win,
#: small enough to run in minutes on one host core
WORKLOADS = [
    ("bio", 0.1, 20_000),
    ("cov", 0.1, 20_000),
    ("phy", 0.1, 10_000),
    ("robot", 0.1, 20_000),
    ("tiny4", 0.1, 20_000),
    ("tiny8", 0.1, 20_000),
    ("tiny16", 0.1, 20_000),
    ("tiny32", 0.1, 20_000),
]

#: the paper queries 10k points; 1000 is enough to saturate the 48-core
#: model's workers in every stage while keeping host runtime in minutes
N_QUERIES = 1000
MACHINES = [AMD_48CORE]
#: brute-force blocking: one pass over the database per query block (the
#: recorded trace subdivides each tile into row bands, so the machine
#: models still see abundant parallelism)
BF_GRAIN = dict(tile_cols=2048, row_chunk=512)


def run_one(name: str, scale: float, max_n: int):
    X, Q = load(name, scale=scale, n_queries=N_QUERIES, max_n=max_n)
    n = X.shape[0]

    brute = BruteForceIndex().build(X)
    brute_run = traced_query(brute, Q, MACHINES, k=1, **BF_GRAIN)

    rbc = ExactRBC(seed=0)
    t0 = time.perf_counter()
    rbc.build(X, n_reps=standard_n_reps(n, c=2.5))
    build_s = time.perf_counter() - t0
    rbc_run = traced_query(rbc, Q, MACHINES, k=1)

    # exactness is part of the claim: same answers as brute force
    assert abs(rbc_run.dist - brute_run.dist).max() < 1e-6

    return {
        "name": name,
        "n": n,
        "work_x": brute_run.evals / rbc_run.evals,
        "sim48_x": brute_run.sim_time(AMD_48CORE) / rbc_run.sim_time(AMD_48CORE),
        "wall_x": brute_run.wall_s / rbc_run.wall_s,
        "build_s": build_s,
        "evals_per_q": rbc_run.evals / N_QUERIES,
    }


def test_fig2_exact_speedup_48core(benchmark, report):
    results = bench_once(
        benchmark, lambda: [run_one(*w) for w in WORKLOADS]
    )
    rows = [
        [r["name"], r["n"], r["evals_per_q"], r["work_x"], r["sim48_x"],
         r["wall_x"], r["build_s"]]
        for r in results
    ]
    report(
        "fig2_exact_speedup",
        format_table(
            ["dataset", "n", "evals/query", "work x", "48-core x", "wall x",
             "build s"],
            rows,
            title=(
                "Figure 2: speedup of exact RBC search over brute force\n"
                "(simulated AMD 48-core; paper reports 5x-100x)"
            ),
        ),
    )
    by_name = {r["name"]: r for r in results}
    # shape assertions: RBC wins everywhere on the 48-core model...
    for r in results:
        assert r["sim48_x"] > 1.0, f"{r['name']}: no speedup"
    # ...dimensionality ordering holds within the tiny family...
    assert by_name["tiny4"]["work_x"] > by_name["tiny16"]["work_x"]
    assert by_name["tiny8"]["work_x"] > by_name["tiny32"]["work_x"]
    # ...and the easiest datasets reach ~an order of magnitude
    assert max(r["sim48_x"] for r in results) > 8.0
