"""Streaming serving — per-call dispatch vs resident micro-batching.

The acceptance experiment of the serving subsystem: queries arrive one at
a time (a uniform 2000 q/s trace over the d=16 / n=20k Gaussian config)
and are answered by two servers over the *same* warmed index on the
thread backend:

* **per-call** — ``BatchPolicy(max_batch=1)``: every arrival is its own
  ``query()`` call, the pre-serving dispatch discipline;
* **resident+batched** — the adaptive micro-batcher groups arrivals under
  a 100 ms latency budget.

Required: >= 3x throughput for the batched server, bit-identical float64
answers, and batched p99 sojourn latency within the latency budget.
Results are written to ``BENCH_serving.json`` at the repo root (uploaded
as a CI artifact alongside ``BENCH_kernels.json``) so the serving perf
trajectory is trackable across PRs.
"""

from __future__ import annotations

import json
import pathlib

import numpy as np
from conftest import bench_once

from repro.core import ExactRBC
from repro.eval import format_table
from repro.runtime import ExecContext
from repro.serving import BatchPolicy, StreamingSearcher

BENCH_JSON = pathlib.Path(__file__).resolve().parents[1] / "BENCH_serving.json"

#: acceptance config: d=16 Gaussian, n=20k database, streaming arrivals
N, M, DIM, K = 20_000, 512, 16, 5
QPS = 2_000.0
MAX_DELAY_MS = 100.0
MAX_BATCH = 256
SPEEDUP_BAR = 3.0


def test_streaming_speedup(rng, report, benchmark, out_dir):
    X = rng.normal(size=(N, DIM))
    Q = rng.normal(size=(M, DIM))
    index = ExactRBC(seed=0).build(X)
    ctx = ExecContext(executor="threads")

    def run(max_batch: int, label: str):
        policy = BatchPolicy(max_delay_ms=MAX_DELAY_MS, max_batch=max_batch)
        with StreamingSearcher(index, k=K, policy=policy, ctx=ctx) as server:
            return server.search_stream(Q, qps=QPS, name=label)

    def experiment():
        per_call = run(1, "per-call")
        batched = run(MAX_BATCH, "resident+batched")
        return per_call, batched

    per_call, batched = bench_once(benchmark, experiment)

    # ---- correctness: batching must be invisible in the answers
    assert np.array_equal(per_call.dist, batched.dist), "dists not bit-identical"
    assert np.array_equal(per_call.idx, batched.idx), "ids not identical"
    assert per_call.rule_counts == batched.rule_counts

    speedup = batched.throughput_qps / per_call.throughput_qps
    rows = [
        [
            r.name,
            r.throughput_qps,
            r.latency.p50_s * 1e3,
            r.latency.p95_s * 1e3,
            r.latency.p99_s * 1e3,
            r.mean_batch,
            r.n_batches,
        ]
        for r in (per_call, batched)
    ]
    report(
        "serving_stream",
        format_table(
            ["server", "q/s", "p50 ms", "p95 ms", "p99 ms", "batch", "flushes"],
            rows,
            title=(
                f"Streaming serving (n={N}, d={DIM}, m={M} @ {QPS:g} q/s "
                f"offered, k={K}, budget {MAX_DELAY_MS:g} ms) — "
                f"speedup {speedup:.1f}x"
            ),
        ),
    )

    payload = {
        "config": {
            "n": N,
            "dim": DIM,
            "queries": M,
            "k": K,
            "qps_offered": QPS,
            "max_delay_ms": MAX_DELAY_MS,
            "max_batch": MAX_BATCH,
            "backend": "threads",
        },
        "speedup": speedup,
        "identical": True,
        "per_call": per_call.to_dict(),
        "batched": batched.to_dict(),
    }
    BENCH_JSON.write_text(json.dumps(payload, indent=2) + "\n")

    # ---- acceptance bars
    assert speedup >= SPEEDUP_BAR, (
        f"micro-batched throughput {batched.throughput_qps:.0f} q/s is only "
        f"{speedup:.2f}x per-call ({per_call.throughput_qps:.0f} q/s); "
        f"need >= {SPEEDUP_BAR}x"
    )
    assert batched.latency.p99_s * 1e3 < MAX_DELAY_MS, (
        f"batched p99 {batched.latency.p99_s * 1e3:.1f} ms exceeds the "
        f"{MAX_DELAY_MS:g} ms budget"
    )
