"""Vector metrics: agreement with SciPy references, axioms, counters."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays
from scipy.spatial.distance import cdist

from repro.metrics import (
    Chebyshev,
    Cosine,
    Euclidean,
    Hamming,
    Manhattan,
    Minkowski,
    SqEuclidean,
    check_metric_axioms,
    get_metric,
)

REFERENCE = [
    (Euclidean, "euclidean", {}),
    (SqEuclidean, "sqeuclidean", {}),
    (Manhattan, "cityblock", {}),
    (Chebyshev, "chebyshev", {}),
]


@pytest.mark.parametrize("cls,scipy_name,kwargs", REFERENCE)
def test_matches_scipy(cls, scipy_name, kwargs, rng):
    Q = rng.normal(size=(13, 5))
    X = rng.normal(size=(29, 5))
    D = cls(**kwargs).pairwise(Q, X)
    np.testing.assert_allclose(D, cdist(Q, X, scipy_name), rtol=1e-10, atol=1e-8)


def test_minkowski_matches_scipy(rng):
    Q = rng.normal(size=(7, 4))
    X = rng.normal(size=(11, 4))
    D = Minkowski(p=3).pairwise(Q, X)
    np.testing.assert_allclose(D, cdist(Q, X, "minkowski", p=3), rtol=1e-10)


def test_minkowski_inf_is_chebyshev(rng):
    Q = rng.normal(size=(5, 4))
    X = rng.normal(size=(6, 4))
    np.testing.assert_allclose(
        Minkowski(p=np.inf).pairwise(Q, X), Chebyshev().pairwise(Q, X)
    )


def test_minkowski_rejects_p_below_one():
    with pytest.raises(ValueError, match="p >= 1"):
        Minkowski(p=0.5)


def test_hamming_counts_mismatches():
    Q = np.array([[0.0, 1.0, 2.0]])
    X = np.array([[0.0, 1.0, 2.0], [1.0, 1.0, 2.0], [9.0, 9.0, 9.0]])
    np.testing.assert_array_equal(Hamming().pairwise(Q, X), [[0.0, 1.0, 3.0]])


def test_cosine_is_angle(rng):
    q = np.array([[1.0, 0.0]])
    x = np.array([[0.0, 1.0], [1.0, 0.0], [-1.0, 0.0]])
    np.testing.assert_allclose(
        Cosine().pairwise(q, x), [[np.pi / 2, 0.0, np.pi]], atol=1e-12
    )


def test_cosine_rejects_zero_vectors():
    with pytest.raises(ValueError, match="zero"):
        Cosine().pairwise(np.zeros((1, 3)), np.ones((2, 3)))


@pytest.mark.parametrize(
    "name",
    ["euclidean", "manhattan", "chebyshev", "angular", "hamming"],
)
def test_axioms_hold(name, rng):
    X = rng.normal(size=(60, 5))
    if name == "hamming":
        X = np.round(X)
    check_metric_axioms(get_metric(name), X, n_triples=80, rng=rng)


def test_sqeuclidean_fails_triangle(rng):
    # squared euclidean violates the triangle inequality: the axiom checker
    # must catch it on colinear points
    X = np.array([[0.0], [1.0], [2.0]])
    with pytest.raises(AssertionError, match="triangle"):
        check_metric_axioms(SqEuclidean(), X, n_triples=200, rng=rng)


def test_sqeuclidean_flagged_not_true_metric():
    assert SqEuclidean().is_true_metric is False
    assert Euclidean().is_true_metric is True


def test_counter_counts_every_pair(rng):
    m = Euclidean()
    m.pairwise(rng.normal(size=(4, 3)), rng.normal(size=(9, 3)))
    assert m.counter.n_evals == 36
    assert m.counter.n_calls == 1
    m.pairwise(rng.normal(size=(2, 3)), rng.normal(size=(2, 3)))
    assert m.counter.n_evals == 40
    m.reset_counter()
    assert m.counter.n_evals == 0


def test_counter_snapshot_is_independent(rng):
    m = Euclidean()
    m.pairwise(rng.normal(size=(2, 2)), rng.normal(size=(2, 2)))
    snap = m.counter.snapshot()
    m.pairwise(rng.normal(size=(2, 2)), rng.normal(size=(2, 2)))
    assert snap.n_evals == 4
    assert m.counter.n_evals == 8


def test_dimension_mismatch_raises(rng):
    with pytest.raises(ValueError, match="dimension mismatch"):
        Euclidean().pairwise(rng.normal(size=(2, 3)), rng.normal(size=(2, 4)))


def test_distance_single_points():
    m = Euclidean()
    assert m.distance(np.array([0.0, 0.0]), np.array([3.0, 4.0])) == pytest.approx(5.0)


def test_take_subsets_rows(rng):
    m = Euclidean()
    X = rng.normal(size=(10, 3))
    sub = m.take(X, [2, 5])
    np.testing.assert_array_equal(sub, X[[2, 5]])
    assert m.length(X) == 10
    assert m.dim(X) == 3


def test_euclidean_self_distance_zero(rng):
    X = rng.normal(size=(50, 8)) * 100
    D = Euclidean().pairwise(X, X)
    np.testing.assert_allclose(np.diag(D), 0.0, atol=1e-5)


def test_blocked_kernels_match_unblocked(rng, monkeypatch):
    # force tiny blocks to exercise the blocked path
    import repro.metrics.lp as lp

    Q = rng.normal(size=(20, 4))
    X = rng.normal(size=(30, 4))
    expected = Manhattan().pairwise(Q, X)
    monkeypatch.setattr(lp, "_BLOCK_ROWS", 3)
    np.testing.assert_allclose(Manhattan().pairwise(Q, X), expected)


FINITE = st.floats(
    min_value=-1e6, max_value=1e6, allow_nan=False, allow_infinity=False
)


@settings(max_examples=40, deadline=None)
@given(arrays(np.float64, (3, 4), elements=FINITE))
def test_property_symmetry_and_identity(pts):
    m = Euclidean()
    D = m.pairwise(pts, pts)
    np.testing.assert_allclose(D, D.T, rtol=1e-7, atol=1e-6)
    assert (np.diag(D) <= 1e-6 * (1 + np.abs(pts).max())).all()


@settings(max_examples=40, deadline=None)
@given(arrays(np.float64, (3, 3), elements=FINITE))
def test_property_triangle_inequality(pts):
    for metric in (Euclidean(), Manhattan(), Chebyshev()):
        D = metric.pairwise(pts, pts)
        slack = 1e-7 * (1.0 + np.abs(D).max())
        assert D[0, 1] <= D[0, 2] + D[2, 1] + slack
