"""The telemetry layer: span tracing, metrics registry, exporters.

Contracts under test:

* **span identity** — spans nest per thread, ids are unique, contexts
  pickle across process boundaries, and :meth:`Tracer.adopt` re-parents
  worker spans into the submitting trace;
* **propagation** — the thread, process (resident, pickled), and
  distributed engines all produce worker/node spans parented under the
  submitting span, with no spans (and no overhead path) when tracing is
  disabled;
* **metric exactness** — sharded counters and histograms survive thread
  hammering with exact totals; the Prometheus exposition and JSON
  snapshot render labels, buckets, and collector-backed gauges.
"""

from __future__ import annotations

import json
import pickle
import threading

import numpy as np
import pytest

from repro import BruteForceIndex, ExactRBC
from repro.obs import (
    NULL_TRACER,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    SLOMonitor,
    Span,
    SpanContext,
    Tracer,
    chrome_trace,
    install_index_collectors,
    install_standard_collectors,
)
from repro.parallel.bruteforce import bf_knn
from repro.runtime import ExecContext


@pytest.fixture
def data():
    rng = np.random.default_rng(0)
    return rng.standard_normal((300, 8)), rng.standard_normal((25, 8))


# --------------------------------------------------------------------- spans
class TestSpans:
    def test_nesting_and_identity(self):
        tr = Tracer()
        with tr.span("outer") as outer:
            with tr.span("inner", depth=1) as inner:
                assert inner.parent_id == outer.span_id
                assert inner.trace_id == outer.trace_id
                assert tr.current is inner
            assert tr.current is outer
        assert tr.current is None
        assert len(tr) == 2
        assert outer.span_id != inner.span_id
        assert outer.dur_s >= inner.dur_s >= 0.0
        assert inner.attrs == {"depth": 1}

    def test_separate_roots_get_separate_traces(self):
        tr = Tracer()
        with tr.span("a") as a:
            pass
        with tr.span("b") as b:
            pass
        assert a.trace_id != b.trace_id

    def test_start_finish_non_lexical(self):
        tr = Tracer()
        span = tr.start_span("query", ticket=7)
        assert len(tr) == 0  # not collected until finished
        tr.finish(span)
        assert len(tr) == 1 and tr.spans[0].attrs["ticket"] == 7

    def test_span_under_explicit_parent(self):
        tr = Tracer()
        with tr.span("root") as root:
            ctx = root.context
        with tr.span_under(ctx, "child") as child:
            pass
        assert child.parent_id == root.span_id
        assert child.trace_id == root.trace_id

    def test_context_pickles(self):
        ctx = SpanContext("t1-1", "s1-2")
        assert pickle.loads(pickle.dumps(ctx)) == ctx

    def test_span_dict_round_trip(self):
        tr = Tracer()
        with tr.span("x", a=1):
            pass
        d = tr.export()[0]
        assert Span.from_dict(d).to_dict() == d

    def test_thread_stacks_are_independent(self):
        tr = Tracer()
        seen = {}

        def work(name):
            with tr.span(name) as s:
                seen[name] = s.parent_id

        with tr.span("main"):
            threads = [
                threading.Thread(target=work, args=(f"w{i}",)) for i in range(4)
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
        # worker threads have their own (empty) stacks: their spans are
        # roots, not children of the main thread's open span
        assert all(parent is None for parent in seen.values())

    def test_worker_root_tracer_parents_under_submitter(self):
        parent_tr = Tracer()
        with parent_tr.span("submit") as sub:
            ctx = parent_tr.context()
        worker = Tracer(root=ctx)
        with worker.span("chunk"):
            pass
        adopted = parent_tr.adopt(worker.export())
        assert len(adopted) == 1
        assert adopted[0].parent_id == sub.span_id
        assert adopted[0].trace_id == sub.trace_id

    def test_adopt_folds_orphan_traces(self):
        parent_tr = Tracer()
        orphan = Tracer()  # no root: its spans live in a foreign trace
        with orphan.span("lost"):
            pass
        with parent_tr.span("home") as home:
            parent_tr.adopt(orphan.export())
        lost = [s for s in parent_tr.spans if s.name == "lost"][0]
        assert lost.trace_id == home.trace_id
        assert lost.parent_id == home.span_id

    def test_null_tracer_is_inert(self):
        with NULL_TRACER.span("x") as s:
            assert s.set(a=1) is s
        assert NULL_TRACER.context() is None
        assert NULL_TRACER.adopt([{"name": "x"}]) == []
        assert len(NULL_TRACER) == 0
        assert not NULL_TRACER.enabled

    def test_chrome_trace_format(self):
        tr = Tracer()
        with tr.span("phase", size=3):
            with tr.span("sub"):
                pass
        doc = tr.chrome_trace()
        events = doc["traceEvents"]
        assert len(events) == 2
        assert {e["ph"] for e in events} == {"X"}
        # rebased: earliest event starts at ts 0
        assert min(e["ts"] for e in events) == 0.0
        for e in events:
            assert e["dur"] >= 0.0
            assert "span_id" in e["args"] and "trace_id" in e["args"]
        json.dumps(doc)  # valid JSON
        assert chrome_trace([])["traceEvents"] == []

    def test_save_writes_json(self, tmp_path):
        tr = Tracer()
        with tr.span("x"):
            pass
        path = tmp_path / "trace.json"
        tr.save(path)
        doc = json.loads(path.read_text())
        assert len(doc["traceEvents"]) == 1


# --------------------------------------------------------- span propagation
class TestPropagation:
    def test_thread_backend_chunks_parent_under_bf(self, data):
        X, Q = data
        tr = Tracer()
        ctx = ExecContext(
            executor="threads", n_workers=2, row_chunk=8, tracer=tr
        )
        bf_knn(Q, X, "euclidean", k=3, ctx=ctx)
        bf = [s for s in tr.spans if s.name == "bf:knn"]
        chunks = [s for s in tr.spans if s.name == "bf:chunk"]
        assert len(bf) == 1 and len(chunks) >= 2
        assert all(c.parent_id == bf[0].span_id for c in chunks)
        assert all(c.trace_id == bf[0].trace_id for c in chunks)

    @pytest.mark.slow
    def test_process_backend_reparents_worker_spans(self, data):
        X, Q = data
        tr = Tracer()
        ctx = ExecContext(executor="processes", n_workers=2, tracer=tr)
        with tr.span("root") as root:
            d, i = bf_knn(Q, X, "euclidean", k=3, ctx=ctx)
        chunks = [s for s in tr.spans if s.name == "bf:chunk"]
        assert chunks
        bf = [s for s in tr.spans if s.name == "bf:knn"][0]
        for c in chunks:
            assert c.trace_id == root.trace_id
            assert c.parent_id == bf.span_id
            assert c.pid != bf.pid  # genuinely recorded in the worker
        d0, i0 = bf_knn(Q, X, "euclidean", k=3)
        np.testing.assert_array_equal(i, i0)

    @pytest.mark.slow
    def test_pickled_path_propagates(self):
        rng = np.random.default_rng(2)
        words = ["".join(rng.choice(list("abcd"), 6)) for _ in range(50)]
        tr = Tracer()
        ctx = ExecContext(executor="processes", n_workers=2, tracer=tr)
        bf_knn(words[:8], words, "edit", k=2, ctx=ctx)
        bf = [s for s in tr.spans if s.name == "bf:knn"][0]
        chunks = [s for s in tr.spans if s.name == "bf:chunk"]
        assert chunks and all(c.parent_id == bf.span_id for c in chunks)

    def test_disabled_tracing_records_nothing(self, data):
        X, Q = data
        ctx = ExecContext(executor="threads", n_workers=2)
        bf_knn(Q, X, "euclidean", k=3, ctx=ctx)
        assert len(NULL_TRACER) == 0

    def test_distributed_nodes_parent_under_query(self, data):
        from repro.distributed.cluster import ClusterSpec
        from repro.distributed.engine import DistributedRBC
        from repro.simulator.machine import MachineSpec

        X, Q = data
        cluster = ClusterSpec.homogeneous(3, MachineSpec("node"))
        tr = Tracer()
        eng = DistributedRBC(cluster).build(X, 12)
        eng.query(Q, k=2, ctx=ExecContext(tracer=tr))
        q = [s for s in tr.spans if s.name == "dist:query"][0]
        nodes = [s for s in tr.spans if s.name == "dist:node"]
        assert nodes
        assert all(
            s.trace_id == q.trace_id and s.parent_id == q.span_id
            for s in nodes
        )
        assert {"dist:coord", "dist:merge"} <= {s.name for s in tr.spans}


# -------------------------------------------------------------------- metrics
class TestMetrics:
    def test_counter_exact_under_thread_hammering(self):
        c = Counter("hits")
        n_threads, n_incs = 8, 5000

        def hammer():
            for _ in range(n_incs):
                c.inc()

        threads = [threading.Thread(target=hammer) for _ in range(n_threads)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert c.value() == n_threads * n_incs

    def test_counter_labels_and_negative_rejection(self):
        c = Counter("req", labelnames=("backend",))
        c.inc(2.0, backend="threads")
        c.inc(backend="processes")
        assert c.value(backend="threads") == 2.0
        assert c.value(backend="processes") == 1.0
        with pytest.raises(ValueError):
            c.inc(-1.0, backend="threads")
        with pytest.raises(ValueError):
            c.inc(1.0, wrong="label")

    def test_histogram_exact_under_thread_hammering(self):
        h = Histogram("lat", buckets=(0.1, 1.0))
        n_threads, n_obs = 6, 2000

        def hammer():
            for i in range(n_obs):
                h.observe(0.05 if i % 2 else 0.5)

        threads = [threading.Thread(target=hammer) for _ in range(n_threads)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        (counts, total, n) = h.collect()[()]
        assert n == n_threads * n_obs
        assert counts == [n // 2, n // 2]
        assert total == pytest.approx(n // 2 * 0.05 + n // 2 * 0.5)

    def test_histogram_cumulative_samples(self):
        h = Histogram("lat", buckets=(0.01, 0.1, 1.0))
        for v in (0.005, 0.05, 0.5, 5.0):
            h.observe(v)
        rows = {suffix: val for suffix, _key, val in h.samples()}
        assert rows['_bucket{le="0.01"}'] == 1
        assert rows['_bucket{le="0.1"}'] == 2
        assert rows['_bucket{le="1"}'] == 3
        assert rows['_bucket{le="+Inf"}'] == 4
        assert rows["_count"] == 4

    def test_gauge(self):
        g = Gauge("depth")
        g.set(5)
        g.inc(2)
        g.dec()
        assert g.value() == 6

    def test_registry_create_or_return_and_mismatch(self):
        reg = MetricsRegistry()
        c1 = reg.counter("x_total", "help")
        assert reg.counter("x_total") is c1
        with pytest.raises(ValueError):
            reg.gauge("x_total")
        with pytest.raises(ValueError):
            reg.counter("x_total", labelnames=("a",))
        assert "x_total" in reg and len(reg) == 1

    def test_expose_format(self):
        reg = MetricsRegistry()
        reg.counter("c_total", "a counter", labelnames=("op",)).inc(3, op="bf")
        reg.gauge("g", "a gauge").set(1.5)
        reg.histogram("h_seconds", buckets=(1.0,)).observe(0.5)
        text = reg.expose()
        assert "# HELP c_total a counter" in text
        assert "# TYPE c_total counter" in text
        assert 'c_total{op="bf"} 3' in text
        assert "g 1.5" in text
        assert 'h_seconds_bucket{le="1"} 1' in text
        assert 'h_seconds_bucket{le="+Inf"} 1' in text
        assert "h_seconds_count 1" in text

    def test_histogram_label_merge_in_expose(self):
        reg = MetricsRegistry()
        reg.histogram(
            "h_seconds", labelnames=("idx",), buckets=(1.0,)
        ).observe(0.5, idx="a")
        text = reg.expose()
        assert 'h_seconds_bucket{idx="a",le="1"} 1' in text

    @staticmethod
    def _parse_exposition(text: str) -> dict[str, float]:
        """Parse Prometheus text exposition into {sample_line_key: value}.

        Every non-comment line must be ``name{labels} value`` (or bare
        ``name value``); raises on anything malformed."""
        out: dict[str, float] = {}
        for line in text.splitlines():
            if not line or line.startswith("#"):
                continue
            key, _, raw = line.rpartition(" ")
            assert key, f"malformed sample line: {line!r}"
            out[key] = float(raw)
        return out

    def test_exposition_conformance_large_counts(self):
        # regression: %g formatting truncated values >= 1e6 to 6
        # significant digits, so a bucket could expose 1.23457e+06 while
        # _count exposed a different rounding of the same tally
        reg = MetricsRegistry()
        big = 12_345_678
        reg.counter("c_total", "a big counter").inc(big)
        h = reg.histogram(
            "lat_seconds", "latency", labelnames=("shard",), buckets=(0.1,)
        )
        # seed this thread's shard as a long-lived serving process would
        # have left it: `big` observations, all above the last edge
        h._shard()[("0",)] = [[0], 0.5 * big, big]
        samples = self._parse_exposition(reg.expose())
        assert samples["c_total"] == big
        assert samples['lat_seconds_bucket{shard="0",le="+Inf"}'] == big
        assert samples['lat_seconds_count{shard="0"}'] == big

    def test_exposition_conformance_histogram_invariants(self):
        # the scrape-side contract: cumulative buckets are nondecreasing,
        # the +Inf bucket equals _count, and _sum is the exact total —
        # per labeled shard, parsed from the exposition text itself
        reg = MetricsRegistry()
        h = reg.histogram(
            "svc_seconds", "per-shard service", labelnames=("shard",),
            buckets=(0.01, 0.1, 1.0),
        )
        rng = np.random.default_rng(3)
        totals = {}
        for shard in ("0", "1"):
            vals = rng.gamma(1.0, 0.05, size=257)
            for v in vals:
                h.observe(float(v), shard=shard)
            totals[shard] = (len(vals), float(np.sum(vals)))
        samples = self._parse_exposition(reg.expose())
        for shard, (n, total) in totals.items():
            edges = ["0.01", "0.1", "1", "+Inf"]
            cum = [
                samples[f'svc_seconds_bucket{{shard="{shard}",le="{e}"}}']
                for e in edges
            ]
            assert cum == sorted(cum), "buckets must be cumulative"
            assert cum[-1] == n == samples[f'svc_seconds_count{{shard="{shard}"}}']
            assert samples[f'svc_seconds_sum{{shard="{shard}"}}'] == (
                pytest.approx(total, rel=1e-12)
            )

    def test_exposition_conformance_values_round_trip(self):
        # finite values must round-trip through the text exactly;
        # specials render as the spec's +Inf / -Inf / NaN tokens
        reg = MetricsRegistry()
        cases = {
            "g_tiny": 3.0000000000000004e-7,
            "g_pi": 3.141592653589793,
            "g_big_int": 9_007_199_254_740_992.0,
            "g_neg": -123456789.25,
        }
        for name, val in cases.items():
            reg.gauge(name).set(val)
        reg.gauge("g_inf").set(float("inf"))
        reg.gauge("g_ninf").set(float("-inf"))
        text = reg.expose()
        samples = self._parse_exposition(text)
        for name, val in cases.items():
            assert samples[name] == val, name
        assert "g_inf +Inf" in text
        assert "g_ninf -Inf" in text

    def test_exposition_escapes_label_values(self):
        reg = MetricsRegistry()
        reg.counter("c_total", labelnames=("path",)).inc(
            1, path='a"b\\c\nd'
        )
        text = reg.expose()
        assert 'c_total{path="a\\"b\\\\c\\nd"} 1' in text

    def test_snapshot_and_jsonl(self, tmp_path):
        reg = MetricsRegistry()
        reg.counter("c_total").inc(4)
        snap = reg.snapshot()
        assert snap["c_total"]["values"][""] == 4
        path = tmp_path / "m.jsonl"
        reg.dump_jsonl(path, now=1.5)
        reg.dump_jsonl(path, now=2.5)
        lines = [json.loads(ln) for ln in path.read_text().splitlines()]
        assert [r["ts"] for r in lines] == [1.5, 2.5]
        assert lines[0]["metrics"]["c_total"]["values"][""] == 4

    def test_collectors_pull_at_scrape_time(self, data):
        X, _ = data
        reg = MetricsRegistry()
        install_standard_collectors(reg)
        idx = ExactRBC(seed=0).build(X, n_reps=10)
        install_index_collectors(idx, reg)
        text = reg.expose()
        assert "repro_operand_cache_prepared_total" in text
        assert f'repro_index_points{{index="ExactRBC"}} {X.shape[0]}' in text
        assert "repro_packed_entries" in text

    def test_index_collector_survives_index_gc(self, data):
        X, _ = data
        reg = MetricsRegistry()
        idx = BruteForceIndex().build(X)
        install_index_collectors(idx, reg)
        del idx
        reg.expose()  # weakref-dead index must not break scrapes


# ---------------------------------------------------------------- op stamping
class TestOpSpanStamping:
    def test_recorded_ops_carry_live_span_id(self, data):
        from repro.runtime import TimingRecorder

        X, Q = data
        tr = Tracer()
        idx = BruteForceIndex().build(X)
        rec = TimingRecorder(trace_ops=True, tracer=tr)
        with tr.span("run") as run:
            idx.query(Q, 2, ctx=ExecContext(recorder=rec, tracer=tr))
        ops = [op for p in rec.trace.phases for op in p.ops]
        assert ops and all(op.span_id is not None for op in ops)
        span_ids = {s.span_id for s in tr.spans} | {run.span_id}
        assert {op.span_id for op in ops} <= span_ids

    def test_ops_unstamped_without_tracer(self, data):
        from repro.runtime import TimingRecorder

        X, Q = data
        idx = BruteForceIndex().build(X)
        rec = TimingRecorder(trace_ops=True)
        idx.query(Q, 2, ctx=ExecContext(recorder=rec))
        ops = [op for p in rec.trace.phases for op in p.ops]
        assert ops and all(op.span_id is None for op in ops)


def test_slo_exported_from_obs_package():
    assert SLOMonitor(0.1).budget_s == 0.1


# ---------------------------------------------------------------- acceptance
@pytest.mark.slow
class TestAcceptance:
    """The ISSUE's end-to-end scenario: one streamed run with the process
    backend produces a valid Chrome trace with re-parented worker spans, a
    Prometheus exposition with live serving gauges, agreeing SLO
    percentiles, and periodic JSONL metric snapshots."""

    def test_streamed_process_run_full_telemetry(self, tmp_path):
        from repro.serving import BatchPolicy, StreamingSearcher

        rng = np.random.default_rng(4)
        X = rng.standard_normal((1500, 12))
        Q = rng.standard_normal((96, 12))
        idx = BruteForceIndex().build(X)
        tr = Tracer()
        reg = MetricsRegistry()
        slo = SLOMonitor(0.05, window_s=float("inf"))
        jsonl = tmp_path / "metrics.jsonl"
        srv = StreamingSearcher(
            idx,
            k=3,
            policy=BatchPolicy(max_delay_ms=50.0, max_batch=32),
            ctx=ExecContext(executor="processes", n_workers=2, tracer=tr),
            slo=slo,
            metrics=reg,
        )
        rep = srv.search_stream(
            Q, qps=3000.0, metrics_jsonl=jsonl, snapshot_every_s=0.01
        )

        # results are exact: identical to a plain serial query
        d0, i0 = BruteForceIndex().build(X).query(Q, 3)
        np.testing.assert_array_equal(rep.idx, i0)

        # (a) valid Chrome trace, worker spans re-parented under queries
        query_traces = {
            s.trace_id for s in tr.spans if s.name == "serve:query"
        }
        chunks = [s for s in tr.spans if s.name == "bf:chunk"]
        assert len(query_traces) == len(Q)
        assert chunks and all(c.trace_id in query_traces for c in chunks)
        main_pid = next(s.pid for s in tr.spans if s.name == "serve:query")
        assert any(c.pid != main_pid for c in chunks)
        doc = chrome_trace(tr.spans)
        assert all(
            ev["ph"] == "X" and ev["ts"] >= 0 and ev["dur"] >= 0
            for ev in doc["traceEvents"]
        )
        json.dumps(doc)  # serializable as-is

        # (b) exposition carries the live serving/cache observables
        text = reg.expose()
        for name in (
            "repro_batcher_ladder_level",
            "repro_batcher_queue_depth",
            "repro_operand_cache_hit_rate",
            "repro_query_sojourn_seconds_bucket",
            "repro_queries_served_total",
        ):
            assert name in text, name
        assert f"repro_queries_served_total {len(Q)}" in text

        # (c) the live monitor agrees exactly with the post-hoc stats
        assert slo.p99_s == rep.latency.p99_s
        assert rep.slo["p50_s"] == rep.latency.p50_s

        # periodic virtual-time snapshots landed, and parse as JSON
        lines = jsonl.read_text().strip().splitlines()
        assert len(lines) >= 2
        assert all("metrics" in json.loads(ln) for ln in lines)
