"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(12345)


@pytest.fixture
def small_vectors(rng) -> tuple[np.ndarray, np.ndarray]:
    """A small (X, Q) pair of generic float vectors."""
    X = rng.normal(size=(400, 7))
    Q = rng.normal(size=(25, 7))
    return X, Q


@pytest.fixture
def clustered(rng) -> tuple[np.ndarray, np.ndarray]:
    """Clustered data where pruning is effective: (X, Q) from one pool."""
    from repro.data import manifold

    full = manifold(3100, 16, 3, seed=7)
    return full[:3000], full[3000:3050]
