"""Edit-distance metric: reference agreement and metric properties."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.metrics import EditDistance, check_metric_axioms, encode_strings


def reference_levenshtein(a: str, b: str) -> int:
    """Classic O(len(a) * len(b)) dynamic program, scalar."""
    prev = list(range(len(b) + 1))
    for i, ca in enumerate(a, 1):
        cur = [i] + [0] * len(b)
        for j, cb in enumerate(b, 1):
            cur[j] = min(
                prev[j] + 1, cur[j - 1] + 1, prev[j - 1] + (ca != cb)
            )
        prev = cur
    return prev[-1]


KNOWN = [
    ("kitten", "sitting", 3),
    ("flaw", "lawn", 2),
    ("", "", 0),
    ("", "abc", 3),
    ("abc", "", 3),
    ("abc", "abc", 0),
    ("abc", "abd", 1),
    ("ab", "ba", 2),
]


@pytest.mark.parametrize("a,b,expected", KNOWN)
def test_known_pairs(a, b, expected):
    m = EditDistance()
    assert m.pairwise([a], [b])[0, 0] == expected


def test_batch_matches_reference(rng):
    m = EditDistance()
    words = ["acgt", "aacg", "gggg", "a", "", "acgtacgt", "tgca", "cat"]
    D = m.pairwise(words, words)
    for i, a in enumerate(words):
        for j, b in enumerate(words):
            assert D[i, j] == reference_levenshtein(a, b), (a, b)


def test_axioms_on_random_strings(rng):
    from repro.data import random_strings

    S = random_strings(40, seed=3)
    check_metric_axioms(EditDistance(), S, n_triples=60, rng=rng)


def test_encode_roundtrip_lengths():
    codes, lengths = encode_strings(["ab", "", "abcd"])
    assert codes.shape == (3, 4)
    np.testing.assert_array_equal(lengths, [2, 0, 4])
    assert (codes[1] == -1).all()


def test_take_and_length():
    m = EditDistance()
    S = ["alpha", "beta", "gamma"]
    sub = m.take(S, [0, 2])
    assert m.length(sub) == 2
    # distances via the encoded subset match direct computation
    D = m.pairwise(sub, ["beta"])
    assert D[0, 0] == reference_levenshtein("alpha", "beta")
    assert D[1, 0] == reference_levenshtein("gamma", "beta")


def test_single_string_query_batching():
    m = EditDistance()
    assert m.distance("abc", "abd") == 1.0


def test_counter_counts_string_pairs():
    m = EditDistance()
    m.pairwise(["ab", "cd"], ["x", "y", "z"])
    assert m.counter.n_evals == 6


def test_cache_not_fooled_by_recycled_ids():
    # regression: CPython reuses object ids after garbage collection, so a
    # cache keyed by bare id(X) can serve one dataset's encoding for
    # another; the cache must verify identity
    m = EditDistance()
    for trial in range(50):
        words = [f"word{trial}", f"other{trial}"]
        D = m.pairwise(words, [f"word{trial}"])
        assert D[0, 0] == 0, f"stale cache hit on trial {trial}"
        del words


def test_unicode_strings():
    m = EditDistance()
    assert m.pairwise(["héllo"], ["hello"])[0, 0] == 1
    assert m.pairwise(["日本語"], ["日本"])[0, 0] == 1


SHORT = st.text(alphabet="abcd", max_size=8)


@settings(max_examples=60, deadline=None)
@given(SHORT, SHORT)
def test_property_matches_reference(a, b):
    assert EditDistance().pairwise([a], [b])[0, 0] == reference_levenshtein(a, b)


@settings(max_examples=40, deadline=None)
@given(SHORT, SHORT, SHORT)
def test_property_triangle(a, b, c):
    m = EditDistance()
    dab = m.pairwise([a], [b])[0, 0]
    dac = m.pairwise([a], [c])[0, 0]
    dcb = m.pairwise([c], [b])[0, 0]
    assert dab <= dac + dcb


@settings(max_examples=40, deadline=None)
@given(SHORT, st.integers(min_value=0, max_value=3))
def test_property_single_insert_costs_one(s, pos):
    pos = min(pos, len(s))
    t = s[:pos] + "x" + s[pos:]
    assert EditDistance().pairwise([s], [t])[0, 0] == 1
