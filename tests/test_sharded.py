"""Sharded streaming serving: bit-identity, hedging, observability."""

import numpy as np
import pytest

from repro import (
    BatchPolicy,
    ExactRBC,
    HedgePolicy,
    MetricsRegistry,
    OneShotRBC,
    ShardedStreamingSearcher,
    StreamingSearcher,
)
from repro.distributed import ClusterSpec
from repro.runtime import StreamReport
from repro.simulator import DESKTOP_QUAD


@pytest.fixture
def served_index(rng):
    X = rng.normal(size=(2500, 10))
    Q = rng.normal(size=(120, 10))
    return ExactRBC(seed=0).build(X), Q


POLICY = BatchPolicy(max_delay_ms=50.0, max_batch=32)


# ------------------------------------------------------------- determinism
@pytest.mark.parametrize("n_shards", [1, 2, 4])
def test_sharded_bit_identical_to_single_node(served_index, n_shards):
    index, Q = served_index
    with StreamingSearcher(index, k=3, policy=POLICY) as base:
        want = base.search_stream(Q, qps=3000.0)
    with ShardedStreamingSearcher(
        index, k=3, policy=POLICY, n_shards=n_shards
    ) as srv:
        got = srv.search_stream(Q, qps=3000.0)
    np.testing.assert_array_equal(got.idx, want.idx)
    assert (got.dist == want.dist).all()  # bit-identical, not just close
    assert got.n_shards == n_shards


def test_random_partition_bit_identical(served_index):
    index, Q = served_index
    with StreamingSearcher(index, k=2, policy=POLICY) as base:
        want = base.search_stream(Q, qps=3000.0)
    with ShardedStreamingSearcher(
        index, k=2, policy=POLICY, n_shards=3, partition="random"
    ) as srv:
        got = srv.search_stream(Q, qps=3000.0)
    np.testing.assert_array_equal(got.idx, want.idx)
    assert (got.dist == want.dist).all()


def test_sharded_k_exceeds_rep_count(rng):
    # k > n_reps disables pruning (gamma = inf); answers stay exact
    X = rng.normal(size=(400, 6))
    Q = rng.normal(size=(30, 6))
    index = ExactRBC(seed=0).build(X, n_reps=4)
    with StreamingSearcher(index, k=9, policy=POLICY) as base:
        want = base.search_stream(Q, qps=3000.0)
    with ShardedStreamingSearcher(
        index, k=9, policy=POLICY, n_shards=2
    ) as srv:
        got = srv.search_stream(Q, qps=3000.0)
    np.testing.assert_array_equal(got.idx, want.idx)
    assert (got.dist == want.dist).all()


def test_more_shards_than_reps(rng):
    # shards can outnumber representatives: some shards host none, are
    # never contacted, and report zero load
    X = rng.normal(size=(300, 5))
    Q = rng.normal(size=(20, 5))
    index = ExactRBC(seed=0).build(X, n_reps=3)
    with ShardedStreamingSearcher(
        index, k=2, policy=POLICY, n_shards=6
    ) as srv:
        report = srv.search_stream(Q, qps=3000.0)
    empties = [row for row in report.per_shard if row["n_reps"] == 0]
    assert empties
    for row in empties:
        assert row["tasks"] == 0 and row["bytes_to"] == 0.0
    dist, idx = index.query(Q, k=2)
    np.testing.assert_array_equal(report.idx, idx)


def test_live_submit_path_is_sharded_too(served_index):
    index, Q = served_index
    dist, idx = index.query(Q[:6], k=2)
    with ShardedStreamingSearcher(
        index, k=2, policy=BatchPolicy(max_batch=2, max_delay_ms=1000),
        n_shards=3,
    ) as srv:
        tickets = [srv.submit(q) for q in Q[:6]]
        answers = srv.drain()
    for row, t in enumerate(tickets):
        np.testing.assert_array_equal(answers[t][1], idx[row])
    assert srv.rounds > 0


# --------------------------------------------------------------- stragglers
def _stream(index, Q, **kw):
    policy = BatchPolicy(max_delay_ms=100.0, min_batch=4, max_batch=4)
    with ShardedStreamingSearcher(
        index, k=3, policy=policy, n_shards=4, **kw
    ) as srv:
        return srv.search_stream(Q, qps=100.0)


def test_hedging_tames_slow_shard_p99(served_index):
    index, Q = served_index
    budget_s = 0.100
    slow = {1: 0.200}  # shard 1's primary takes 200 ms > the budget
    unhedged = _stream(index, Q, replicas=2, hedge=None, shard_delays=slow)
    hedged = _stream(
        index, Q, replicas=2, hedge=HedgePolicy(), shard_delays=slow
    )
    # without hedging the straggler dictates every batch and the queue
    # backs up past the budget; hedged requests re-issue its tasks to the
    # replica after the cutoff and p99 stays within budget
    assert unhedged.latency.p99_s > budget_s
    assert hedged.latency.p99_s <= budget_s
    assert hedged.hedges > 0
    assert hedged.rounds > hedged.n_batches  # hedge waves are extra rounds
    assert hedged.per_shard[1]["hedges"] == hedged.hedges
    # answers are unaffected by hedging
    np.testing.assert_array_equal(hedged.idx, unhedged.idx)


def test_dead_shard_needs_replicas(served_index):
    index, Q = served_index
    dead = {2: float("inf")}
    with pytest.raises(RuntimeError, match="shard 2"):
        _stream(index, Q, replicas=1, shard_delays=dead)
    report = _stream(
        index, Q, replicas=2, hedge=HedgePolicy(), shard_delays=dead
    )
    dist, idx = index.query(Q, k=3)
    np.testing.assert_array_equal(report.idx, idx)
    assert report.hedges >= report.per_shard[2]["tasks"] > 0


def test_dead_replica_delay_addressing(served_index):
    index, Q = served_index
    # (w, r) addresses a specific replica: primary fine, replica dead —
    # nothing should hedge onto it unless the primary stalls
    report = _stream(
        index,
        Q,
        replicas=2,
        hedge=HedgePolicy(),
        shard_delays={(0, 1): float("inf")},
    )
    dist, idx = index.query(Q, k=3)
    np.testing.assert_array_equal(report.idx, idx)


def test_hedge_policy_validation():
    with pytest.raises(ValueError):
        HedgePolicy(quantile=1.5)
    with pytest.raises(ValueError):
        HedgePolicy(factor=0.5)
    with pytest.raises(ValueError):
        HedgePolicy(budget_fraction=0.0)
    with pytest.raises(ValueError):
        HedgePolicy(min_samples=0)
    # cold start: the budget fraction bounds the cutoff
    assert HedgePolicy(budget_fraction=0.25).cutoff([], 0.1) == pytest.approx(
        0.025
    )
    # warmed up: the latency quantile can only tighten it
    hp = HedgePolicy(min_samples=4, factor=2.0, quantile=0.5)
    assert hp.cutoff([0.001] * 8, 0.1) == pytest.approx(0.002)


# ------------------------------------------------------------ observability
def test_stream_report_shard_observables(served_index):
    index, Q = served_index
    cluster = ClusterSpec.homogeneous(4, DESKTOP_QUAD)
    with ShardedStreamingSearcher(
        index, k=3, policy=POLICY, n_shards=4, cluster=cluster
    ) as srv:
        report = srv.search_stream(Q, qps=3000.0)
    assert report.n_shards == 4
    assert report.rounds >= report.n_batches
    assert len(report.per_shard) == 4
    assert sum(r["queries"] for r in report.per_shard) >= report.n_queries
    active = [r for r in report.per_shard if r["tasks"]]
    assert active
    for row in active:
        assert row["evals"] > 0 and row["bytes_to"] > 0 and row["busy_s"] > 0
    assert "shards: 4" in report.summary()
    # the new fields survive the JSON round trip
    back = StreamReport.from_dict(report.to_dict())
    assert back.n_shards == 4
    assert back.rounds == report.rounds
    assert back.per_shard == report.per_shard
    # a second stream reports its own diffs, not lifetime totals
    again = srv_report = None
    with ShardedStreamingSearcher(
        index, k=3, policy=POLICY, n_shards=4
    ) as srv:
        srv_report = srv.search_stream(Q[:40], qps=3000.0)
        again = srv.search_stream(Q[:40], qps=3000.0)
    assert again.rounds == pytest.approx(srv_report.rounds, abs=2)


def test_per_shard_metrics_instruments(served_index):
    index, Q = served_index
    registry = MetricsRegistry()
    with ShardedStreamingSearcher(
        index, k=2, policy=POLICY, n_shards=2, metrics=registry
    ) as srv:
        srv.search_stream(Q, qps=3000.0)
    tasks = registry.get("repro_shard_tasks_total")
    total = sum(tasks.collect().values())
    assert total > 0
    assert sum(registry.get("repro_scatter_rounds_total").collect().values()) > 0
    busy = registry.get("repro_shard_busy_seconds").collect()
    assert any(v > 0 for v in busy.values())


def test_comm_accounting_accumulates(served_index):
    index, Q = served_index
    cluster = ClusterSpec.homogeneous(2, DESKTOP_QUAD)
    with ShardedStreamingSearcher(
        index, k=2, policy=POLICY, n_shards=2, cluster=cluster
    ) as srv:
        srv.search_stream(Q, qps=3000.0)
        comm_after_one = srv.comm.total_bytes
        assert comm_after_one > 0
        assert srv.comm.messages > 0
        srv.search_stream(Q, qps=3000.0)
        assert srv.comm.total_bytes > comm_after_one


# --------------------------------------------------------------- validation
def test_sharded_validation(served_index, rng):
    index, _ = served_index
    with pytest.raises(ValueError, match="n_shards"):
        ShardedStreamingSearcher(index, n_shards=0)
    with pytest.raises(ValueError, match="replicas"):
        ShardedStreamingSearcher(index, n_shards=2, replicas=0)
    with pytest.raises(ValueError, match="nodes"):
        ShardedStreamingSearcher(
            index,
            n_shards=2,
            cluster=ClusterSpec.homogeneous(3, DESKTOP_QUAD),
        )
    with pytest.raises(ValueError, match="partition"):
        ShardedStreamingSearcher(index, n_shards=2, partition="hash")
    X = rng.normal(size=(400, 6))
    oneshot = OneShotRBC(seed=0).build(X, n_reps=20, s=40)
    with pytest.raises(ValueError, match="disjoint"):
        ShardedStreamingSearcher(oneshot, n_shards=2)
