"""The quantized + autotuned kernel tier under the metric engine.

Everything here checks one invariant from two directions: compressed
codes only ever *generate candidates*; the float64 re-rank makes the
final answers id-identical to the uncompressed search (up to ties, where
any member of the tied equivalence class is a correct answer).
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

import repro.runtime.autotune as autotune_mod
from repro.core import ExactRBC, OneShotRBC
from repro.metrics import (
    HAVE_NUMBA,
    QUANT_KINDS,
    OperandCache,
    get_metric,
    kernel_backend,
    quant_search,
    quantize_prepared,
    set_kernel_backend,
    supports_quantization,
)
from repro.metrics.quantize import bound_filter, check_quantizer, quant_topk
from repro.parallel import bf_knn
from repro.runtime import Autotuner, RunReport


@pytest.fixture(autouse=True)
def _memory_tuner(monkeypatch):
    """Keep autotuner plans in-memory so tests never touch ~/.cache."""
    monkeypatch.setattr(
        autotune_mod, "default_autotuner", autotune_mod.Autotuner(persist=False)
    )


def reference_knn(Q, X, k, metric="euclidean"):
    D = get_metric(metric).pairwise(np.atleast_2d(Q), X)
    order = np.argsort(D, axis=1, kind="stable")[:, :k]
    return np.take_along_axis(D, order, axis=1), order


def assert_same_answers(d_ref, i_ref, d_new, i_new, *, tol=1e-7, pairs=None):
    """Distances must agree; ids may differ only at tied distances.

    Because every quantized path re-ranks in exact float64, a differing
    id whose reported distance matches the reference *is* a tie (any
    member of the equal-distance class is a correct k-NN answer).  Pass
    ``pairs=(metric, Q, X)`` to additionally recompute the distance of
    each differing id and pin it to the reported value, ruling out a
    bug that pairs wrong ids with copied reference distances.
    """
    i_ref, i_new = np.asarray(i_ref), np.asarray(i_new)
    np.testing.assert_allclose(d_new, d_ref, rtol=1e-6, atol=tol)
    if pairs is None:
        return
    met, Q, X = pairs
    Q = np.atleast_2d(Q)
    for r, t in zip(*np.nonzero(i_ref != i_new)):
        if i_new[r, t] < 0:
            continue  # padding slot: already pinned inf by the allclose
        true = met.pairwise(Q[r : r + 1], X[i_new[r, t]][None, :])[0, 0]
        assert np.isclose(true, d_new[r, t], rtol=1e-6, atol=max(tol, 1e-6))


# ------------------------------------------------------------ primitives
def test_check_quantizer_rejects_unknown():
    with pytest.raises(ValueError, match="quantizer"):
        check_quantizer("int4")


def test_supports_quantization_by_kernel():
    assert supports_quantization(get_metric("euclidean"))
    assert supports_quantization(get_metric("cosine"))
    assert not supports_quantization(get_metric("chebyshev"))


def test_quantize_rejects_unquantizable_metric(small_vectors):
    X, _ = small_vectors
    met = get_metric("chebyshev")
    with pytest.raises(ValueError, match="quantizable"):
        quantize_prepared(met, met.prepare(X), "int8")


@pytest.mark.parametrize("metric", ["euclidean", "cosine"])
@pytest.mark.parametrize("kind", QUANT_KINDS)
def test_quant_search_matches_reference(metric, kind, small_vectors):
    X, Q = small_vectors
    met = get_metric(metric)
    qop = quantize_prepared(met, met.prepare(X), kind)
    d, i, info = quant_search(met, Q, X, qop, 5)
    ed, ei = reference_knn(Q, X, 5, metric)
    assert_same_answers(ed, ei, d, i, pairs=(met, Q, X))
    assert info["quantizer"] == kind
    assert 0.0 <= info["recall_before_rerank"] <= 1.0
    assert info["code_bytes"] < X.nbytes


def test_quant_search_k_exceeds_n():
    X = np.array([[0.0], [1.0], [1.0], [2.0]])
    met = get_metric("euclidean")
    qop = quantize_prepared(met, met.prepare(X), "int8")
    d, i, _ = quant_search(met, X[:2], X, qop, 6)
    ed, ei = reference_knn(X[:2], X, 4, "euclidean")
    # the primitive clamps to the 4 live rows; bf_knn pads back to k
    assert d.shape == (2, 4)
    assert_same_answers(ed, ei, d, i)
    bd, bi = bf_knn(X[:2], X, k=6, quantizer="int8")
    assert bd.shape == (2, 6) and np.isinf(bd[:, 4:]).all()
    assert (bi[:, 4:] == -1).all()


def test_bound_filter_keeps_true_topk(rng):
    D = np.abs(rng.normal(size=(8, 40)))
    resid = np.abs(rng.normal(scale=0.1, size=40))
    true = D  # pretend D is exact; any truth within +-resid must survive
    mask, _ = bound_filter(D, resid, 3)
    kth = np.sort(true, axis=1)[:, 2]
    assert ((true <= kth[:, None]) <= mask).all()
    assert mask.sum(axis=1).min() >= 3


FINITE = st.floats(-50, 50, allow_nan=False)
PROP_DATA = arrays(
    np.float64,
    st.tuples(st.integers(12, 40), st.integers(1, 5)),
    elements=FINITE,
)


@settings(max_examples=15, deadline=None)
@given(
    PROP_DATA,
    st.sampled_from(QUANT_KINDS),
    st.sampled_from(["euclidean", "cosine"]),
    st.integers(1, 3),
)
def test_property_quant_matches_float64(X, kind, metric, k):
    X = np.concatenate([X, X[:3]])  # force duplicate points (hard ties)
    if metric == "cosine":
        # cosine is undefined on zero rows: nudge them onto a unit axis
        zero = np.linalg.norm(X, axis=1) < 1e-9
        X[zero] = 0.0
        X[zero, 0] = 1.0
    else:
        X[0] = 0.0  # and an explicit zero vector for l2
    Q = X[::4]
    met = get_metric(metric)
    qop = quantize_prepared(met, met.prepare(X), kind)
    d, i, _ = quant_search(met, Q, X, qop, k)
    ed, ei = reference_knn(Q, X, k, metric)
    assert_same_answers(ed, ei, d, i, tol=2e-4, pairs=(met, Q, X))


# ------------------------------------------------------------ index paths
@pytest.mark.parametrize("strategy", ["flat", "grouped"])
@pytest.mark.parametrize(
    "metric,kind",
    [("euclidean", "int8"), ("euclidean", "pq"), ("cosine", "float16")],
)
def test_exact_rbc_quant_parity(metric, kind, strategy, rng):
    X = rng.normal(size=(900, 8))
    Q = rng.normal(size=(40, 8))
    plain = ExactRBC(metric=metric, seed=0).build(X, n_reps=30)
    quant = ExactRBC(
        metric=metric, seed=0, quantizer=kind, quant_strategy=strategy
    ).build(X, n_reps=30)
    ed, ei = plain.query(Q, k=5)
    d, i = quant.query(Q, k=5)
    assert_same_answers(ed, ei, d, i)
    assert quant.last_stats.quant is not None
    assert quant.last_stats.quant["strategy"] == strategy
    assert quant.last_stats.quant["quantizer"] == kind


def test_exact_rbc_quant_survives_insert_delete(rng):
    X = rng.normal(size=(300, 6))
    quant = ExactRBC(seed=0, quantizer="int8", quant_strategy="flat").build(
        X, n_reps=20
    )
    quant.query(X[:5], k=3)  # populate the quantized operand
    gid = quant.insert(rng.normal(size=6))
    quant.delete(0)
    live = np.concatenate([X[1:], quant.X[gid][None, :]])
    live_ids = np.concatenate([np.arange(1, 300), [gid]])
    Q = rng.normal(size=(10, 6))
    d, i = quant.query(Q, k=4)
    ed, ei = reference_knn(Q, live, 4)
    assert_same_answers(ed, ei, d, np.searchsorted(live_ids, i))


def test_quant_topk_full_branch_excludes_slack(rng):
    """When the over-fetch width covers every live row (full branch), the
    selection must not leak packed slack columns: their ids would map to
    whatever sentinel the slack entries hold (historically a clipped 0,
    i.e. a *real* point id)."""
    X = rng.normal(size=(12, 4))
    met = get_metric("euclidean")
    valid = np.ones(12, dtype=bool)
    valid[8:] = False
    ids = np.arange(12, dtype=np.int64)
    ids[8:] = 0  # adversarial slack ids: a leak would surface as id 0
    qop = quantize_prepared(met, met.prepare(X), "int8", ids=ids, valid=valid)
    gids, fallback, _ = quant_topk(met, X[:3], qop, k=6)  # width >= 8 live
    assert not fallback
    for row in gids:
        kept = row[row >= 0]
        assert len(kept) == 8  # exactly the live rows, nothing more
        assert sorted(kept) == list(range(8))


def test_exact_rbc_quant_flat_full_overfetch_after_delete(rng):
    """Deletions leave slack rows in the packed layout; with k large
    enough that the flat scan's over-fetch width covers every live row,
    answers must stay id-identical to brute force over the live points —
    no duplicated ids, no tombstoned ids (the historical failure returned
    global id 0 in multiple slots after id 0 itself was deleted)."""
    X = rng.normal(size=(60, 5))
    quant = ExactRBC(seed=0, quantizer="int8", quant_strategy="flat").build(
        X, n_reps=8
    )
    deleted = [0, 3, 7, 11, 19, 23, 31, 37, 42, 45, 48, 51, 54, 57, 59]
    for gid in deleted:
        quant.delete(gid)
    live_ids = np.setdiff1d(np.arange(60), deleted)
    Q = rng.normal(size=(8, 5))
    # k=12 -> width = 4*12+1 = 49 > 45 live rows: the full branch runs
    d, i = quant.query(Q, k=12)
    assert not np.isin(i, deleted).any()
    for row in i:
        kept = row[row >= 0]
        assert len(np.unique(kept)) == len(kept)
    ed, ei = reference_knn(Q, X[live_ids], 12)
    assert_same_answers(ed, ei, d, np.searchsorted(live_ids, i))
    # work accounting counts live rows only, matching the metric counter
    assert quant.last_stats.candidates_examined == len(Q) * len(live_ids)


def test_warm_builds_quant_operand(rng):
    X = rng.normal(size=(400, 8))
    idx = ExactRBC(seed=0, quantizer="int8").build(X, n_reps=20)
    base = idx.memory_footprint()
    idx.warm()
    prep_keys = list(idx._prep)
    assert any(k[0] == "quant" for k in prep_keys if isinstance(k, tuple))
    assert idx.memory_footprint() > base  # codes counted in the footprint


@pytest.mark.parametrize("n_probes", [1, 3])
def test_oneshot_quant_parity(n_probes, clustered):
    X, Q = clustered
    plain = OneShotRBC(seed=0).build(X, n_reps=60)
    quant = OneShotRBC(seed=0, quantizer="int8").build(X, n_reps=60)
    ed, ei = plain.query(Q, k=4, n_probes=n_probes)
    d, i = quant.query(Q, k=4, n_probes=n_probes)
    assert_same_answers(ed, ei, d, i)
    assert quant.last_stats.quant is not None


def test_quantizer_arg_validation(rng):
    with pytest.raises(ValueError):
        ExactRBC(quantizer="int4")
    with pytest.raises(ValueError):
        ExactRBC(quantizer="int8", quant_strategy="diagonal")
    with pytest.raises(ValueError):
        ExactRBC(metric="chebyshev", quantizer="int8")


# --------------------------------------------------------------- bf_knn
def test_bf_knn_quantizer_parity(small_vectors):
    X, Q = small_vectors
    ed, ei = bf_knn(Q, X, k=5)
    d, i = bf_knn(Q, X, k=5, quantizer="int8")
    assert_same_answers(ed, ei, d, i)
    # dtype sugar routes through the same path
    d2, i2 = bf_knn(Q, X, k=5, dtype="int8")
    np.testing.assert_array_equal(i, i2)
    np.testing.assert_allclose(d, d2)


def test_bf_knn_quantizer_with_ids(small_vectors, rng):
    X, Q = small_vectors
    ids = np.sort(rng.choice(len(X), size=120, replace=False))
    ed, ei = bf_knn(Q, X, k=3, ids=ids)
    d, i = bf_knn(Q, X, k=3, ids=ids, quantizer="float16")
    assert_same_answers(ed, ei, d, i)


def test_bf_knn_quantizer_operand_cache_is_stable(rng):
    """The quantized operand must be cached under the caller's array —
    an internal coerced temporary would change id() every call, so each
    query batch would re-quantize (and re-train PQ) from scratch."""
    from repro.metrics.engine import operand_cache

    met = get_metric("euclidean")
    X = rng.normal(size=(80, 6))
    Q = rng.normal(size=(5, 6))
    bf_knn(Q, X, k=3, quantizer="int8")
    hits0 = operand_cache.stats.n_hits
    assert operand_cache.get_quantized(met, X, "int8") is not None
    assert operand_cache.stats.n_hits == hits0 + 1  # keyed on X itself


def test_bf_knn_quantizer_rejects_processes(small_vectors):
    X, Q = small_vectors
    with pytest.raises(ValueError, match="in-process"):
        bf_knn(Q, X, k=3, quantizer="int8", executor="processes")


def test_bf_knn_quantizer_rejects_unquantizable(small_vectors):
    X, Q = small_vectors
    with pytest.raises(ValueError):
        bf_knn(Q, X, "chebyshev", k=3, quantizer="int8")


def test_bf_knn_thread_prealloc_matches_serial(small_vectors):
    X, Q = small_vectors
    d1, i1 = bf_knn(Q, X, k=5)
    d2, i2 = bf_knn(Q, X, k=5, executor="threads", row_chunk=4)
    np.testing.assert_allclose(d1, d2)
    np.testing.assert_array_equal(i1, i2)


def test_bf_knn_thread_prealloc_k_exceeds_n(rng):
    X = rng.normal(size=(3, 4))
    Q = rng.normal(size=(9, 4))
    d, i = bf_knn(Q, X, k=5, executor="threads", row_chunk=2)
    assert d.shape == (9, 5)
    assert np.isinf(d[:, 3:]).all() and (i[:, 3:] == -1).all()


# ---------------------------------------------------------- cache family
def test_operand_cache_quantized_hit_and_family_eviction(rng):
    cache = OperandCache(max_entries=8)
    met = get_metric("euclidean")
    X = rng.normal(size=(50, 4))
    cache.get(met, X, version=0)
    q0 = cache.get_quantized(met, X, "int8", version=0)
    assert cache.get_quantized(met, X, "int8", version=0) is q0
    assert cache.stats.n_hits >= 1

    # invalidating the float64 parent must take every variant with it
    before = cache.stats.n_invalidated
    cache.get(met, X, version=1)
    assert cache.stats.n_invalidated >= before + 2
    q1 = cache.get_quantized(met, X, "int8", version=1)
    assert q1 is not q0

    # and a stale version seen via the quantized getter evicts too
    q2 = cache.get_quantized(met, X, "int8", version=2)
    assert q2 is not q1


# ------------------------------------------------------------- autotuner
def test_autotuner_persistence_roundtrip(tmp_path):
    path = tmp_path / "plans.json"
    t1 = Autotuner(path=path)
    plan = t1.plan_for("exactrbc", 4096, 32, backend="numpy", cand_frac=0.5)
    assert path.exists()
    t2 = Autotuner(path=path)
    again = t2.plan_for("exactrbc", 4096, 32, backend="numpy", cand_frac=0.5)
    assert again.to_dict() == plan.to_dict()


def test_autotuner_corrupt_cache_is_retuned(tmp_path):
    path = tmp_path / "plans.json"
    path.write_text("{not json")
    plan = Autotuner(path=path).plan_for("exactrbc", 1024, 16, backend="numpy")
    assert plan.strategy in ("flat", "grouped")


def test_autotuner_prefers_grouped_when_pruning_bites():
    t = Autotuner(persist=False)
    plan = t.plan_for(
        "exactrbc", 1 << 16, 32, backend="numpy", cand_frac=0.01
    )
    assert plan.strategy == "grouped"
    assert plan.predicted_ms["grouped"] < plan.predicted_ms["flat"]


def test_autotuner_prefers_flat_on_compressed_full_scans():
    t = Autotuner(persist=False)
    plan = t.plan_for(
        "exactrbc", 1 << 20, 128, backend="numba", quantizer="pq",
        cand_frac=1.0,
    )
    assert plan.strategy == "flat"


def test_autotuner_cand_frac_is_part_of_plan_key():
    """Two same-shaped workloads with different pruning behavior must not
    share a cached plan: the first dataset tuned at a shape used to lock
    its flat/grouped pick in for every later dataset at that shape."""
    t = Autotuner(persist=False)
    g = t.plan_for("exactrbc", 1 << 16, 32, backend="numpy", cand_frac=0.01)
    f = t.plan_for("exactrbc", 1 << 16, 32, backend="numpy", cand_frac=1.0)
    assert g.strategy == "grouped"
    assert f.strategy == "flat"
    assert g.cand_frac == 0.01 and f.cand_frac == 1.0
    # and near-identical fractions still share one memoized plan
    assert t.plan_for(
        "exactrbc", 1 << 16, 32, backend="numpy", cand_frac=0.99
    ) is f


def test_autotuner_row_chunk_clamped():
    t = Autotuner(persist=False)
    assert t.plan_for("a", 1 << 20, 32, backend="numpy").row_chunk == 32
    assert t.plan_for("a", 1000, 32, backend="numpy").row_chunk == 256


def test_kernel_plan_roundtrip_ignores_unknown_fields():
    from repro.runtime import KernelPlan

    plan = KernelPlan(quantizer="pq", strategy="grouped", row_chunk=128)
    d = plan.to_dict()
    d["future_field"] = 1
    assert KernelPlan.from_dict(d) == plan


# ------------------------------------------------------- backend control
def test_set_kernel_backend_override():
    try:
        set_kernel_backend("numpy")
        assert kernel_backend() == "numpy"
        assert kernel_backend("int8") == "numpy"
        with pytest.raises(ValueError):
            set_kernel_backend("fortran")
    finally:
        set_kernel_backend(None)
    assert kernel_backend("float16") == "numpy"  # storage-only kind


@pytest.mark.skipif(not HAVE_NUMBA, reason="numba not installed")
@pytest.mark.parametrize("kind", ["int8", "pq"])
def test_numba_backend_matches_numpy(kind, small_vectors):
    X, Q = small_vectors
    met = get_metric("euclidean")
    qop = quantize_prepared(met, met.prepare(X), kind)
    d1, i1, _ = quant_search(met, Q, X, qop, 5, backend="numpy")
    d2, i2, _ = quant_search(met, Q, X, qop, 5, backend="numba")
    np.testing.assert_allclose(d1, d2)
    assert_same_answers(d1, i1, d2, i2)


# --------------------------------------------------------------- reports
def test_runreport_quant_roundtrip():
    rep = RunReport(
        name="q",
        quant={"strategy": "flat", "quantizer": "int8", "k_prime": 20},
    )
    back = RunReport.from_dict(rep.to_dict())
    assert back.quant == rep.quant
    assert "quant:" in rep.summary()
