"""k-NN graph construction."""

import numpy as np
import pytest

from repro.core.knngraph import knn_graph, knn_graph_networkx, mutual_knn_graph


def test_rbc_matches_brute(small_vectors):
    X, _ = small_vectors
    d1, i1 = knn_graph(X, 4, method="rbc", seed=0)
    d2, i2 = knn_graph(X, 4, method="brute")
    np.testing.assert_allclose(d1, d2, atol=1e-9)


def test_self_excluded(small_vectors):
    X, _ = small_vectors
    d, i = knn_graph(X, 3)
    for r in range(X.shape[0]):
        assert r not in i[r]
    assert (d > 0).all()


def test_rows_sorted(small_vectors):
    X, _ = small_vectors
    d, _ = knn_graph(X, 5)
    assert (np.diff(d, axis=1) >= -1e-12).all()


def test_duplicates_handled():
    X = np.repeat(np.arange(5.0)[:, None], 3, axis=0)
    d, i = knn_graph(X, 2, method="brute")
    for r in range(X.shape[0]):
        assert r not in i[r]
        # each point's duplicates are at distance ~0
        assert d[r, 0] == pytest.approx(0.0, abs=1e-9)


def test_validation(small_vectors):
    X, _ = small_vectors
    with pytest.raises(ValueError):
        knn_graph(X, 0)
    with pytest.raises(ValueError):
        knn_graph(X, 2, method="magic")
    with pytest.raises(ValueError):
        knn_graph(X[:3], 5)  # k >= n


def test_mutual_edges_are_mutual(small_vectors):
    X, _ = small_vectors
    k = 4
    d, i = knn_graph(X, k)
    rows, cols, dists = mutual_knn_graph(X, k)
    assert (rows < cols).all()
    neighbor = [set(map(int, r)) for r in i]
    for u, v in zip(rows, cols):
        assert v in neighbor[u] and u in neighbor[v]
    # every mutual pair in the brute graph is present
    expected = sum(
        1
        for u in range(X.shape[0])
        for v in neighbor[u]
        if u < v and u in neighbor[v]
    )
    assert len(rows) == expected


def test_networkx_graph(small_vectors):
    X, _ = small_vectors
    g = knn_graph_networkx(X, 3, seed=0)
    assert g.number_of_nodes() == X.shape[0]
    # symmetric closure: at least k edges per node's selections / 2
    assert g.number_of_edges() >= X.shape[0] * 3 / 2
    for _, _, w in g.edges(data="weight"):
        assert w > 0


def test_string_knn_graph():
    from repro.data import random_strings
    from repro.metrics import EditDistance

    S = random_strings(120, seed=0)
    d, i = knn_graph(S, 2, EditDistance(), method="rbc")
    d2, i2 = knn_graph(S, 2, EditDistance(), method="brute")
    np.testing.assert_allclose(d, d2)
