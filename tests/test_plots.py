"""ASCII figure rendering."""

import pytest

from repro.eval.plots import ascii_plot


def test_single_series_renders():
    out = ascii_plot(
        {"a": [(1, 1), (2, 4), (3, 9)]},
        xlabel="x",
        ylabel="y",
        title="squares",
    )
    lines = out.splitlines()
    assert lines[0] == "squares"
    assert "o a" in lines[-1]
    assert out.count("o") >= 3  # all three points drawn (plus legend)


def test_extremes_land_on_corners():
    out = ascii_plot({"s": [(0, 0), (10, 10)]}, width=20, height=6)
    lines = [ln for ln in out.splitlines() if "|" in ln]
    assert lines[0].rstrip().endswith("o")  # max point at top-right
    # min point at bottom-left of the plot area
    assert lines[-1].split("|")[1][0] == "o"


def test_log_axes_positive_only():
    with pytest.raises(ValueError, match="positive"):
        ascii_plot({"s": [(0.0, 1.0)]}, logx=True)
    with pytest.raises(ValueError, match="positive"):
        ascii_plot({"s": [(1.0, -2.0)]}, logy=True)


def test_loglog_line_is_straightish():
    # y = x^2 on log-log is a straight line: column/row steps are uniform
    pts = [(10.0**i, 10.0 ** (2 * i)) for i in range(5)]
    out = ascii_plot({"s": pts}, logx=True, logy=True, width=41, height=21)
    cells = []
    for r, line in enumerate(ln for ln in out.splitlines() if "|" in ln):
        body = line.split("|", 1)[1]
        for c, ch in enumerate(body):
            if ch == "o":
                cells.append((r, c))
    assert len(cells) == 5
    rows = sorted(r for r, _ in cells)
    diffs = {b - a for a, b in zip(rows, rows[1:])}
    assert len(diffs) == 1  # uniform spacing = straight line


def test_multiple_series_distinct_markers():
    out = ascii_plot({"a": [(0, 0)], "b": [(1, 1)], "c": [(2, 2)]})
    assert "o a" in out and "x b" in out and "+ c" in out


def test_axis_labels_present():
    out = ascii_plot(
        {"s": [(1, 2), (3, 4)]}, xlabel="rank", ylabel="speedup"
    )
    assert "rank" in out
    assert "speedup" in out


def test_degenerate_single_point():
    out = ascii_plot({"s": [(5, 5)]})
    assert "o" in out


def test_validation():
    with pytest.raises(ValueError, match="nothing"):
        ascii_plot({})
    with pytest.raises(ValueError, match="nothing"):
        ascii_plot({"s": []})
    with pytest.raises(ValueError, match="small"):
        ascii_plot({"s": [(0, 0)]}, width=4)
