"""End-to-end flows across subsystem boundaries."""

import numpy as np
import pytest

from repro import (
    BallTree,
    BruteForceIndex,
    CoverTree,
    ExactRBC,
    KDTree,
    OneShotRBC,
    bf_knn,
)
from repro.baselines import AESA, GNAT, VPTree
from repro.data import load
from repro.dimension import estimate_expansion_rate
from repro.eval import results_match_exactly, traced_query
from repro.simulator import AMD_48CORE, DESKTOP_QUAD, TESLA_C2050


@pytest.fixture(scope="module")
def workload():
    # small: AESA is O(n^2) memory and the cover tree build is Python-speed
    X, Q = load("tiny8", scale=0.0002, n_queries=40)
    return X, Q


ALL_EXACT_INDEXES = [
    lambda: BruteForceIndex(),
    lambda: ExactRBC(seed=0),
    lambda: CoverTree(),
    lambda: KDTree(),
    lambda: BallTree(),
    lambda: VPTree(),
    lambda: GNAT(),
    lambda: AESA(),
]


def test_every_exact_index_agrees(workload):
    X, Q = workload
    reference, _ = bf_knn(Q, X, k=3)
    for factory in ALL_EXACT_INDEXES:
        index = factory().build(X)
        d, _ = index.query(Q, k=3)
        assert results_match_exactly(d, reference), type(index).__name__


def test_every_index_traces_on_every_machine(workload):
    X, Q = workload
    machines = [AMD_48CORE, DESKTOP_QUAD, TESLA_C2050]
    for factory in ALL_EXACT_INDEXES:
        index = factory().build(X)
        run = traced_query(index, Q[:10], machines, k=1)
        for m in machines:
            assert run.sim_time(m) > 0, (type(index).__name__, m.name)


def test_estimated_c_feeds_parameter_rules(workload):
    # the full paper pipeline: estimate c, build with it, query exactly
    X, Q = workload
    c = min(estimate_expansion_rate(X, n_centers=16, seed=0).c_median, 8.0)
    rbc = ExactRBC(seed=0).build(X, c=c)
    d, _ = rbc.query(Q, k=1)
    td, _ = bf_knn(Q, X, k=1)
    assert results_match_exactly(d, td)


def test_oneshot_then_exact_refinement(workload):
    """A realistic two-tier serving pattern: answer from the one-shot
    index, fall back to exact for queries whose one-shot answer is far."""
    X, Q = workload
    fast = OneShotRBC(seed=0, rep_scheme="exact").build(X, n_reps=40, s=40)
    slow = ExactRBC(seed=0).build(X)
    d_fast, i_fast = fast.query(Q, k=1)
    cutoff = np.median(d_fast[:, 0]) * 2
    suspect = d_fast[:, 0] > cutoff
    d_final = d_fast.copy()
    if suspect.any():
        d_slow, _ = slow.query(Q[suspect], k=1)
        d_final[suspect] = d_slow
    td, _ = bf_knn(Q, X, k=1)
    # refined answers are never worse than pure one-shot
    assert (d_final[:, 0] <= d_fast[:, 0] + 1e-12).all()
    assert (d_final[:, 0] >= td[:, 0] - 1e-9).all()


def test_counters_isolate_between_indexes(workload):
    X, Q = workload
    a = ExactRBC(seed=0).build(X)
    b = ExactRBC(seed=0).build(X)
    a.metric.reset_counter()
    b.metric.reset_counter()
    a.query(Q, k=1)
    assert b.metric.counter.n_evals == 0


def test_dataset_scale_flag_changes_n():
    X1, _ = load("cov", scale=0.002, n_queries=1)
    X2, _ = load("cov", scale=0.004, n_queries=1)
    assert X2.shape[0] == 2 * X1.shape[0]


def test_trace_work_matches_counter(workload):
    """The recorded gemm FLOPs must equal counted evals x model cost —
    the bridge between the counter and the machine models."""
    from repro.simulator import TraceRecorder

    X, Q = workload
    rbc = ExactRBC(seed=0).build(X)
    rec = TraceRecorder()
    before = rbc.metric.counter.n_evals
    rbc.query(Q, k=1, recorder=rec)
    evals = rbc.metric.counter.n_evals - before
    gemm_flops = sum(
        op.flops
        for p in rec.trace.phases
        for op in p.ops
        if op.kind == "gemm"
    )
    expected = evals * rbc.metric.flops_per_eval(X.shape[1])
    assert gemm_flops == pytest.approx(expected, rel=1e-9)
