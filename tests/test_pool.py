"""Executors and shared-memory arrays."""

import numpy as np
import pytest

from repro.parallel import (
    ProcessExecutor,
    SerialExecutor,
    SharedArray,
    ThreadExecutor,
    default_workers,
    get_executor,
)


def _square(x):
    return x * x


def test_serial_map_order():
    ex = SerialExecutor()
    assert ex.map(_square, range(5)) == [0, 1, 4, 9, 16]
    assert ex.n_workers == 1


def test_thread_map_order():
    with ThreadExecutor(3) as ex:
        assert ex.map(_square, range(20)) == [x * x for x in range(20)]
        assert ex.n_workers == 3


def test_process_map_order():
    with ProcessExecutor(2) as ex:
        assert ex.map(_square, range(8)) == [x * x for x in range(8)]


def test_default_workers_positive():
    assert default_workers() >= 1


def test_get_executor_specs():
    assert isinstance(get_executor(None), SerialExecutor)
    assert isinstance(get_executor("serial"), SerialExecutor)
    ex = get_executor("threads", 2)
    try:
        assert isinstance(ex, ThreadExecutor)
    finally:
        ex.close()
    inst = SerialExecutor()
    assert get_executor(inst) is inst
    with pytest.raises(ValueError):
        get_executor("gpu")


def test_shared_array_roundtrip(rng):
    arr = rng.normal(size=(13, 4))
    handle = SharedArray.from_array(arr)
    try:
        view = handle.open()
        np.testing.assert_array_equal(view, arr)
    finally:
        handle.unlink()


def test_shared_array_pickles_without_buffer(rng):
    import pickle

    arr = rng.normal(size=(3, 3))
    handle = SharedArray.from_array(arr)
    try:
        clone = pickle.loads(pickle.dumps(handle))
        assert clone.name == handle.name
        np.testing.assert_array_equal(clone.open(), arr)
        clone.close()
    finally:
        handle.unlink()


def _read_shared(args):
    handle, row = args
    view = handle.open()
    out = float(view[row].sum())
    handle.close()
    return out


def test_shared_array_visible_across_processes(rng):
    arr = rng.normal(size=(4, 8))
    handle = SharedArray.from_array(arr)
    try:
        with ProcessExecutor(2) as ex:
            sums = ex.map(_read_shared, [(handle, r) for r in range(4)])
        np.testing.assert_allclose(sums, arr.sum(axis=1))
    finally:
        handle.unlink()


# ------------------------------------------------- executor registry residency


def _getpid(_):
    import os

    return os.getpid()


def test_executor_pool_reuses_and_recreates():
    from repro.parallel import ExecutorPool

    pool = ExecutorPool()
    try:
        a = pool.get("threads", 2)
        assert pool.get("threads", 2) is a  # identical spec -> same pool
        assert pool.n_created == 1 and len(pool) == 1
        b = pool.get("threads", 3)
        assert b is not a  # different worker count -> different pool
        assert pool.n_created == 2
        a.shutdown()  # a resident pool killed out-of-band ...
        c = pool.get("threads", 2)
        assert c is not a  # ... is detected and replaced
        assert c.map(_square, [3]) == [9]
    finally:
        pool.shutdown()
    assert len(pool) == 0
    d = pool.get("threads", 2)  # usable again after shutdown
    try:
        assert d.map(_square, [4]) == [16]
    finally:
        pool.shutdown()


def test_executor_pool_rejects_serial_spec():
    from repro.parallel import ExecutorPool

    with pytest.raises(ValueError):
        ExecutorPool().get("serial", 1)


def test_resident_pool_close_is_noop():
    from repro.parallel import ExecutorPool

    pool = ExecutorPool()
    try:
        ex = pool.get("threads", 2)
        ex.close()  # callers' scope-exit close must not kill a resident pool
        assert ex.map(_square, [5]) == [25]
    finally:
        pool.shutdown()


def test_bf_knn_process_workers_persist_across_calls(rng):
    """Back-to-back process-backend calls reuse the same worker PIDs."""
    from repro.parallel import bf_knn, executor_pool
    from repro.runtime import ExecContext

    X = rng.normal(size=(300, 8))
    Q = rng.normal(size=(16, 8))
    ctx = ExecContext(executor="processes", n_workers=2)
    resident = executor_pool.get("processes", 2)
    assert set(resident.map(_getpid, range(8)))  # force worker spawn
    pids_before = set(resident._pool._processes)
    created = executor_pool.n_created

    d1, i1 = bf_knn(Q, X, k=2, ctx=ctx)
    d2, i2 = bf_knn(Q, X, k=2, ctx=ctx)

    assert executor_pool.n_created == created  # both calls reused the pool
    assert executor_pool.get("processes", 2) is resident
    # the very same worker processes served both calls: none were
    # respawned, and an idle resident worker means none were added
    assert set(resident._pool._processes) == pids_before
    np.testing.assert_array_equal(i1, i2)
    np.testing.assert_array_equal(d1, d2)


# ------------------------------------------------------ resident operand store


def test_operand_store_registers_once_and_releases(rng):
    from repro.parallel import operand_store, register_resident_operands

    X = np.ascontiguousarray(rng.normal(size=(60, 5)))
    h1 = register_resident_operands("euclidean", X)
    registered = operand_store.n_registered
    h2 = register_resident_operands("euclidean", X)
    assert h2 is h1  # second call is a pure hit
    assert operand_store.n_registered == registered
    names = operand_store.segments_for(X)
    assert len(names) == len(h1)
    assert operand_store.release_for(X) == 1
    assert operand_store.segments_for(X) == []
    from multiprocessing import shared_memory

    for name in names:
        with pytest.raises(FileNotFoundError):
            shared_memory.SharedMemory(name=name)


def test_operand_store_version_bump_reregisters(rng):
    from repro.parallel import operand_store, register_resident_operands

    X = np.ascontiguousarray(rng.normal(size=(40, 4)))
    register_resident_operands("euclidean", X, version=0)
    old_names = operand_store.segments_for(X)
    register_resident_operands("euclidean", X, version=1)
    new_names = operand_store.segments_for(X)
    assert set(old_names).isdisjoint(new_names)
    from multiprocessing import shared_memory

    for name in old_names:  # the stale epoch's segments were unlinked
        with pytest.raises(FileNotFoundError):
            shared_memory.SharedMemory(name=name)
    operand_store.release_for(X)


def test_operand_store_unlinks_when_dataset_dies(rng):
    import gc

    from repro.parallel import operand_store, register_resident_operands

    X = np.ascontiguousarray(rng.normal(size=(30, 3)))
    register_resident_operands("euclidean", X)
    names = operand_store.segments_for(X)
    assert names
    del X
    gc.collect()
    from multiprocessing import shared_memory

    for name in names:
        with pytest.raises(FileNotFoundError):
            shared_memory.SharedMemory(name=name)
