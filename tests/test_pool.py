"""Executors and shared-memory arrays."""

import numpy as np
import pytest

from repro.parallel import (
    ProcessExecutor,
    SerialExecutor,
    SharedArray,
    ThreadExecutor,
    default_workers,
    get_executor,
)


def _square(x):
    return x * x


def test_serial_map_order():
    ex = SerialExecutor()
    assert ex.map(_square, range(5)) == [0, 1, 4, 9, 16]
    assert ex.n_workers == 1


def test_thread_map_order():
    with ThreadExecutor(3) as ex:
        assert ex.map(_square, range(20)) == [x * x for x in range(20)]
        assert ex.n_workers == 3


def test_process_map_order():
    with ProcessExecutor(2) as ex:
        assert ex.map(_square, range(8)) == [x * x for x in range(8)]


def test_default_workers_positive():
    assert default_workers() >= 1


def test_get_executor_specs():
    assert isinstance(get_executor(None), SerialExecutor)
    assert isinstance(get_executor("serial"), SerialExecutor)
    ex = get_executor("threads", 2)
    try:
        assert isinstance(ex, ThreadExecutor)
    finally:
        ex.close()
    inst = SerialExecutor()
    assert get_executor(inst) is inst
    with pytest.raises(ValueError):
        get_executor("gpu")


def test_shared_array_roundtrip(rng):
    arr = rng.normal(size=(13, 4))
    handle = SharedArray.from_array(arr)
    try:
        view = handle.open()
        np.testing.assert_array_equal(view, arr)
    finally:
        handle.unlink()


def test_shared_array_pickles_without_buffer(rng):
    import pickle

    arr = rng.normal(size=(3, 3))
    handle = SharedArray.from_array(arr)
    try:
        clone = pickle.loads(pickle.dumps(handle))
        assert clone.name == handle.name
        np.testing.assert_array_equal(clone.open(), arr)
        clone.close()
    finally:
        handle.unlink()


def _read_shared(args):
    handle, row = args
    view = handle.open()
    out = float(view[row].sum())
    handle.close()
    return out


def test_shared_array_visible_across_processes(rng):
    arr = rng.normal(size=(4, 8))
    handle = SharedArray.from_array(arr)
    try:
        with ProcessExecutor(2) as ex:
            sums = ex.map(_read_shared, [(handle, r) for r in range(4)])
        np.testing.assert_allclose(sums, arr.sum(axis=1))
    finally:
        handle.unlink()
