"""The unified execution runtime: ExecContext, executor_scope, merging.

The contract under test is the PR's core promise: ``ctx=ExecContext(...)``
and the legacy ``recorder=``/``executor=`` kwargs are the *same run* —
identical answers, identical recorded traces — and executor ownership is
handled exactly once, by ``executor_scope``.
"""

from __future__ import annotations

from collections import Counter

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines import BruteForceIndex, KDTree
from repro.core import ExactRBC, OneShotRBC
from repro.parallel import bf_knn
from repro.parallel.pool import (
    Executor,
    SerialExecutor,
    ThreadExecutor,
    executor_scope,
)
from repro.runtime import ExecContext, TimingRecorder, resolve_ctx
from repro.simulator.trace import NULL_RECORDER, TraceRecorder


def _trace_key(recorder: TraceRecorder) -> Counter:
    """Order-insensitive fingerprint of a recorded trace."""
    return Counter(
        (p.name, len(p.ops), round(p.flops, 6), round(p.bytes, 6))
        for p in recorder.trace.phases
    )


# ---------------------------------------------------------------- executor scope


def test_executor_scope_spec_pool_is_registry_resident():
    with executor_scope("threads", 2) as exec_:
        assert isinstance(exec_, ThreadExecutor)
        inner = exec_
    # spec-resolved pools belong to the process-wide registry: they
    # survive the scope, and the next identical spec reuses the same one
    assert inner.map(lambda x: x, [1]) == [1]
    with executor_scope("threads", 2) as again:
        assert again is inner


def test_executor_scope_leaves_caller_pool_open():
    pool = ThreadExecutor(2)
    try:
        with executor_scope(pool) as exec_:
            assert exec_ is pool
        # caller-owned instance stays usable after the scope
        assert pool.map(lambda x: x + 1, [1, 2]) == [2, 3]
    finally:
        pool.close()


def test_executor_scope_pool_survives_error():
    captured = []
    with pytest.raises(ValueError, match="boom"):
        with executor_scope("threads", 2) as exec_:
            captured.append(exec_)
            raise ValueError("boom")
    # an exception inside the scope must not poison the resident pool
    assert captured[0].map(lambda x: x, [1]) == [1]


def test_ctx_executor_scope_inline_processes_degrade():
    ctx = ExecContext(executor="processes", n_workers=2)
    with ctx.executor_scope(inline_processes=True) as exec_:
        assert isinstance(exec_, SerialExecutor)


def test_ctx_executor_scope_serial_default():
    with ExecContext().executor_scope() as exec_:
        assert isinstance(exec_, Executor)
        assert exec_.map(lambda x: x * 2, [3]) == [6]


# -------------------------------------------------------------------- merging


def test_resolve_ctx_packages_kwargs():
    r = TraceRecorder()
    ctx = resolve_ctx(None, recorder=r, executor="threads", dtype="float32")
    assert ctx.recorder is r
    assert ctx.executor == "threads"
    assert ctx.dtype == "float32"


def test_resolve_ctx_ctx_fields_win():
    r1, r2 = TraceRecorder(), TraceRecorder()
    ctx = resolve_ctx(
        ExecContext(recorder=r1, dtype="float32"),
        recorder=r2,
        executor="threads",
        dtype="float64",
    )
    assert ctx.recorder is r1  # ctx wins
    assert ctx.dtype == "float32"  # ctx wins
    assert ctx.executor == "threads"  # kwargs fill the gap


def test_overriding_unset_fields_inherit():
    base = ExecContext(executor="threads", n_workers=3, dtype="float32")
    merged = ExecContext(dtype="float64").overriding(base)
    assert merged.executor == "threads"
    assert merged.n_workers == 3
    assert merged.dtype == "float64"


def test_transport_drops_numeric_policy():
    r = TraceRecorder()
    ctx = ExecContext(
        executor="threads", recorder=r, dtype="float32", engine=False, row_chunk=64
    )
    t = ctx.transport()
    assert t.executor == "threads"
    assert t.recorder is r
    assert t.row_chunk == 64
    assert t.dtype is None and t.engine is None


def test_invalid_dtype_rejected():
    with pytest.raises(ValueError):
        ExecContext(dtype="float16")


def test_uses_processes():
    assert ExecContext(executor="processes").uses_processes
    assert not ExecContext(executor="threads").uses_processes
    assert not ExecContext().uses_processes


def test_engine_policy_off_under_processes():
    from repro.metrics import get_metric

    metric = get_metric("euclidean")
    X = np.zeros((4, 3))
    assert ExecContext().engine_active(metric, X)
    assert not ExecContext(executor="processes").engine_active(metric, X)
    assert not ExecContext(engine=False).engine_active(metric, X)


# -------------------------------------------------------------- timing recorder


def test_timing_recorder_collects_phase_wall():
    rec = TimingRecorder()
    with rec.phase("work"):
        pass
    with rec.phase("work"):
        pass
    assert rec.enabled
    assert rec.phase_wall["work"] >= 0.0
    # repeats accumulate into one entry
    assert set(rec.phase_wall) == {"work"}


def test_timing_recorder_trace_ops_false_keeps_wall_drops_ops():
    from repro.simulator.trace import Op

    rec = TimingRecorder(trace_ops=False)
    assert not rec.enabled
    with rec.phase("work"):
        rec.record(Op(kind="gemm", flops=1.0, bytes=1.0))
    assert rec.trace.phases == []  # no ops collected
    assert "work" in rec.phase_wall  # but wall time is


# ------------------------------------------------- ctx == legacy kwargs, exactly


def _run_legacy(index, Q, k, recorder):
    return index.query(Q, k=k, recorder=recorder)


def _run_ctx(index, Q, k, recorder):
    return index.query(Q, k=k, ctx=ExecContext(recorder=recorder))


@pytest.mark.parametrize(
    "make_index",
    [
        lambda: ExactRBC(seed=0),
        lambda: OneShotRBC(seed=0),
        lambda: BruteForceIndex(),
        lambda: KDTree(),
    ],
    ids=["exact", "oneshot", "brute", "kdtree"],
)
def test_ctx_equals_legacy_kwargs(make_index, small_vectors):
    X, Q = small_vectors
    k = 3

    a = make_index().build(X)
    ra = TraceRecorder()
    da, ia = _run_legacy(a, Q, k, ra)

    b = make_index().build(X)
    rb = TraceRecorder()
    db, ib = _run_ctx(b, Q, k, rb)

    np.testing.assert_array_equal(da, db)
    np.testing.assert_array_equal(ia, ib)
    assert _trace_key(ra) == _trace_key(rb)


@settings(max_examples=15, deadline=None)
@given(
    n=st.integers(min_value=30, max_value=120),
    m=st.integers(min_value=1, max_value=10),
    dim=st.integers(min_value=2, max_value=6),
    k=st.integers(min_value=1, max_value=4),
    seed=st.integers(min_value=0, max_value=2**31 - 1),
    cls=st.sampled_from([ExactRBC, OneShotRBC]),
)
def test_ctx_equals_legacy_kwargs_property(n, m, dim, k, seed, cls):
    rng = np.random.default_rng(seed)
    X = rng.normal(size=(n, dim))
    Q = rng.normal(size=(m, dim))

    a = cls(seed=0).build(X)
    ra = TraceRecorder()
    da, ia = a.query(Q, k=k, recorder=ra, executor=None)

    b = cls(seed=0).build(X)
    rb = TraceRecorder()
    db, ib = b.query(Q, k=k, ctx=ExecContext(recorder=rb))

    np.testing.assert_array_equal(da, db)
    np.testing.assert_array_equal(ia, ib)
    assert _trace_key(ra) == _trace_key(rb)
    assert a.last_stats.rule_counts() == b.last_stats.rule_counts()


def test_bf_knn_ctx_equals_kwargs(small_vectors):
    X, Q = small_vectors
    ra, rb = TraceRecorder(), TraceRecorder()
    da, ia = bf_knn(Q, X, k=2, recorder=ra, dtype="float32")
    db, ib = bf_knn(Q, X, k=2, ctx=ExecContext(recorder=rb, dtype="float32"))
    np.testing.assert_array_equal(da, db)
    np.testing.assert_array_equal(ia, ib)
    assert _trace_key(ra) == _trace_key(rb)


def test_ctx_overrides_index_executor(small_vectors):
    """An explicit ctx executor wins over the index's configured one."""
    X, Q = small_vectors
    pool = ThreadExecutor(2)
    try:
        index = ExactRBC(seed=0).build(X)
        d1, i1 = index.query(Q, k=2, ctx=ExecContext(executor=pool))
        d2, i2 = index.query(Q, k=2)
        np.testing.assert_array_equal(d1, d2)
        np.testing.assert_array_equal(i1, i2)
        # the run must not have closed the caller's pool
        assert pool.map(lambda x: x, [1]) == [1]
    finally:
        pool.close()


def test_ctx_recorder_not_mutated_by_null_default(small_vectors):
    """Queries without a recorder stay silent: NULL_RECORDER collects nothing."""
    X, Q = small_vectors
    index = ExactRBC(seed=0).build(X)
    index.query(Q, k=1)
    assert NULL_RECORDER.trace.phases == []
