"""AESA baseline."""

import numpy as np
import pytest

from repro.baselines import AESA
from repro.eval import results_match_exactly
from repro.metrics import EditDistance
from repro.parallel import bf_knn
from repro.simulator import TraceRecorder


@pytest.mark.parametrize("k", [1, 3])
def test_exact_knn(k, small_vectors):
    X, Q = small_vectors
    true_d, _ = bf_knn(Q, X, k=k)
    a = AESA().build(X)
    d, _ = a.query(Q, k=k)
    assert results_match_exactly(d, true_d)


def test_dramatically_fewer_evals(clustered):
    X, Q = clustered
    X = X[:1500]
    a = AESA().build(X)
    a.metric.reset_counter()
    a.query(Q[:20], k=1)
    per_query = a.metric.counter.n_evals / 20
    # AESA's hallmark: near-constant evaluations per query
    assert per_query < 0.05 * X.shape[0]


def test_edit_distance(rng):
    from repro.data import random_strings

    S = random_strings(200, seed=1)
    Q = random_strings(5, seed=2)
    true_d, _ = bf_knn(Q, S, EditDistance(), k=1)
    a = AESA(metric=EditDistance()).build(S)
    d, _ = a.query(Q, k=1)
    assert results_match_exactly(d, true_d)


def test_size_cap(rng):
    with pytest.raises(ValueError, match="safety cap"):
        AESA().build(np.zeros((30_000, 2)))


def test_rejects_non_metric():
    with pytest.raises(ValueError):
        AESA(metric="sqeuclidean")


def test_query_before_build():
    with pytest.raises(RuntimeError):
        AESA().query(np.zeros((1, 2)))


def test_k_exceeds_database(rng):
    X = rng.normal(size=(4, 3))
    a = AESA().build(X)
    d, i = a.query(rng.normal(size=(1, 3)), k=6)
    assert np.isfinite(d[0, :4]).all()
    assert (i[0, 4:] == -1).all()


def test_duplicates(rng):
    X = np.repeat(rng.normal(size=(3, 2)), 10, axis=0)
    a = AESA().build(X)
    true_d, _ = bf_knn(X[:3], X, k=4)
    d, _ = a.query(X[:3], k=4)
    assert results_match_exactly(d, true_d)


def test_trace_is_branchy(small_vectors):
    X, Q = small_vectors
    a = AESA().build(X)
    rec = TraceRecorder()
    a.query(Q[:3], k=1, recorder=rec)
    query_ops = [
        op
        for p in rec.trace.phases
        for op in p.ops
        if op.tag == "aesa:pivot"
    ]
    assert query_ops
    assert all(not op.vectorizable for op in query_ops)
