"""Packed CSR-style list storage: equivalence with the list-of-arrays model."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import ExactRBC, OneShotRBC
from repro.core.packed import PackedLists


def random_lists(rng, n_lists, max_len=12):
    lists, dists = [], []
    for _ in range(n_lists):
        size = int(rng.integers(0, max_len))
        lists.append(rng.integers(0, 1000, size=size).astype(np.int64))
        dists.append(np.sort(rng.random(size)))
    return lists, dists


def assert_matches_model(packed, lists, dists):
    assert packed.n_lists == len(lists)
    assert packed.total == sum(len(lst) for lst in lists)
    for j, (l, d) in enumerate(zip(lists, dists)):
        np.testing.assert_array_equal(packed.ids_of(j), l)
        np.testing.assert_array_equal(packed.dists_of(j), d)
        np.testing.assert_array_equal(packed.id_views[j], l)
        np.testing.assert_array_equal(packed.dist_views[j], d)
        assert packed.size(j) == len(l)
        lo, hi = packed.span(j)
        assert hi - lo == len(l)


def test_round_trip(rng):
    lists, dists = random_lists(rng, 17)
    packed = PackedLists(lists, dists)
    assert_matches_model(packed, lists, dists)
    # a fresh build is packed tight: zero slack
    assert packed.capacity == packed.total


def test_views_are_views_not_copies(rng):
    lists, dists = random_lists(rng, 5, max_len=8)
    lists[2] = np.arange(6, dtype=np.int64)
    dists[2] = np.linspace(0, 1, 6)
    packed = PackedLists(lists, dists)
    v = packed.ids_of(2)
    assert v.base is packed.ids
    packed.ids[packed.starts[2]] = 999
    assert v[0] == 999


def test_segment_seq_interface(rng):
    lists, dists = random_lists(rng, 6)
    packed = PackedLists(lists, dists)
    seq = packed.id_views
    assert len(seq) == 6
    np.testing.assert_array_equal(seq[-1], lists[-1])
    assert len(seq[1:4]) == 3
    with pytest.raises(IndexError):
        seq[6]
    with pytest.raises(TypeError):
        seq["nope"]
    # iteration works (Sequence protocol)
    assert sum(len(lst) for lst in seq) == packed.total


@settings(max_examples=40, deadline=None)
@given(st.data())
def test_mutations_match_shadow_model(data):
    """Random insert/delete/replace/drop agree with a list-of-arrays shadow."""
    rng = np.random.default_rng(data.draw(st.integers(0, 2**31)))
    n_lists = data.draw(st.integers(1, 6))
    lists, dists = random_lists(rng, n_lists, max_len=6)
    packed = PackedLists(lists, dists)
    shadow = [(l.copy(), d.copy()) for l, d in zip(lists, dists)]

    for _ in range(data.draw(st.integers(1, 25))):
        if not shadow:
            break
        op = data.draw(st.sampled_from(["insert", "delete", "replace", "drop"]))
        j = data.draw(st.integers(0, len(shadow) - 1))
        ids_j, d_j = shadow[j]
        if op == "insert":
            dist = float(rng.random())
            pos = int(np.searchsorted(d_j, dist))
            gid = int(rng.integers(0, 1000))
            packed.insert(j, pos, gid, dist)
            shadow[j] = (
                np.insert(ids_j, pos, gid),
                np.insert(d_j, pos, dist),
            )
        elif op == "delete":
            if ids_j.size == 0:
                continue
            pos = int(rng.integers(0, ids_j.size))
            packed.delete_at(j, pos)
            shadow[j] = (np.delete(ids_j, pos), np.delete(d_j, pos))
        elif op == "replace":
            size = int(rng.integers(0, 9))
            new_ids = rng.integers(0, 1000, size=size).astype(np.int64)
            new_d = np.sort(rng.random(size))
            packed.replace(j, new_ids, new_d)
            shadow[j] = (new_ids, new_d)
        else:
            packed.drop(j)
            del shadow[j]

    assert_matches_model(
        packed, [s[0] for s in shadow], [s[1] for s in shadow]
    )
    assert packed.capacity >= packed.total


def test_insert_growth_is_geometric(rng):
    """Appending n entries into one segment triggers O(log n) relayouts."""
    packed = PackedLists([np.empty(0, dtype=np.int64)], [np.empty(0)])
    relayouts = 0
    n = 500
    for t in range(n):
        relayouts += bool(packed.insert(0, t, t, float(t)))
    assert packed.size(0) == n
    np.testing.assert_array_equal(packed.ids_of(0), np.arange(n))
    assert relayouts <= int(np.log2(n)) + 2
    # slack is bounded by the geometric growth factor
    assert packed.capacity <= 2 * n + 4


def test_append_point_amortized_and_footprint(rng):
    """Database appends use a geometric buffer; footprint reports capacity."""
    X = rng.normal(size=(256, 4))
    index = ExactRBC(seed=0).build(X)
    base = index.memory_footprint()
    buffers = set()
    for _ in range(64):
        index.insert(rng.normal(size=4))
        buffers.add(id(index._X_buf))
    # 64 appends must reuse a handful of geometrically grown buffers,
    # not reallocate per insert
    assert len(buffers) <= 8
    assert index._X_buf.shape[0] >= index.n
    assert index.X.shape[0] == index.n
    after = index.memory_footprint()
    slack_rows = index._X_buf.shape[0] - index.n
    # the footprint reports allocated capacity: buffer slack rows count
    assert after >= slack_rows * index.X.itemsize * index.X.shape[1]
    assert after >= base


@pytest.mark.parametrize("cls", [ExactRBC, OneShotRBC])
def test_lists_api_preserved_after_build(cls, rng):
    """`index.lists` / `index.list_dists` still behave like the seed's lists."""
    X = rng.normal(size=(500, 6))
    index = cls(seed=0).build(X)
    assert len(index.lists) == index.n_reps
    total = 0
    for j in range(index.n_reps):
        lst, d = index.lists[j], index.list_dists[j]
        assert lst.shape == d.shape
        assert np.all(np.diff(d) >= 0)  # sorted by distance to rep
        total += lst.size
    assert total == index.packed.total
