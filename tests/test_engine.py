"""Kernel engine: prepared operands, caches, dtype paths, paired kernels."""

import threading

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import ExactRBC, OneShotRBC
from repro.metrics import (
    Cosine,
    DistanceCounter,
    Euclidean,
    Mahalanobis,
    OperandCache,
    SqEuclidean,
    operand_cache,
    refine_topk,
)
from repro.metrics.engine import check_dtype
from repro.parallel import bf_knn, bf_range

VECTOR_METRICS = [
    Euclidean,
    SqEuclidean,
    Cosine,
    lambda: Mahalanobis(np.diag([1.0, 2.0, 0.5, 1.5, 1.0])),
]


def make_metric(factory):
    return factory()


# ---------------------------------------------------------------- prepared
@pytest.mark.parametrize("factory", VECTOR_METRICS)
def test_prepared_matches_plain_pairwise(factory, rng):
    metric = make_metric(factory)
    Q = rng.normal(size=(13, 5))
    X = rng.normal(size=(40, 5))
    expect = metric.pairwise(Q, X)
    got = metric.pairwise_prepared(metric.prepare(Q), metric.prepare(X))
    np.testing.assert_array_equal(got, expect)


@pytest.mark.parametrize("factory", VECTOR_METRICS)
def test_prepared_slice_take_carry_extras(factory, rng):
    metric = make_metric(factory)
    X = rng.normal(size=(40, 5))
    Q = rng.normal(size=(6, 5))
    Xp = metric.prepare(X)
    Qp = metric.prepare(Q)
    full = metric.pairwise_prepared(Qp, Xp)
    np.testing.assert_array_equal(
        metric.pairwise_prepared(Qp, Xp.slice(10, 25)), full[:, 10:25]
    )
    idx = np.array([3, 0, 17, 39])
    np.testing.assert_array_equal(
        metric.pairwise_prepared(Qp, Xp.take(idx)), full[:, idx]
    )


def test_squared_domain_round_trip(rng):
    metric = Euclidean()
    Q, X = rng.normal(size=(7, 4)), rng.normal(size=(30, 4))
    Qp, Xp = metric.prepare(Q), metric.prepare(X)
    Dsq = metric.pairwise_prepared(Qp, Xp, squared=True)
    np.testing.assert_array_equal(
        metric.from_squared(Dsq), metric.pairwise_prepared(Qp, Xp)
    )


def test_cosine_rejects_squared(rng):
    metric = Cosine()
    Xp = metric.prepare(rng.normal(size=(10, 3)))
    with pytest.raises(ValueError, match="squared"):
        metric.pairwise_prepared(Xp, Xp, squared=True)


def test_check_dtype():
    assert check_dtype("float64") == "float64"
    assert check_dtype("float32") == "float32"
    with pytest.raises(ValueError, match="compute dtype"):
        check_dtype("float16")


# ------------------------------------------------------------------ cache
def test_operand_cache_hits_and_identity(rng):
    cache = OperandCache()
    metric = Euclidean()
    X = rng.normal(size=(50, 4))
    p1 = cache.get(metric, X)
    p2 = cache.get(metric, X)
    assert p1 is p2
    assert cache.stats.n_prepared == 1
    assert cache.stats.n_hits == 1
    # a different dtype is a different entry, not an invalidation
    p32 = cache.get(metric, X, dtype="float32")
    assert p32.data.dtype == np.float32
    assert cache.stats.n_prepared == 2


def test_operand_cache_version_invalidates(rng):
    cache = OperandCache()
    metric = Euclidean()
    X = rng.normal(size=(50, 4))
    cache.get(metric, X, version=0)
    cache.get(metric, X, version=1)
    assert cache.stats.n_prepared == 2
    assert cache.stats.n_invalidated == 1


def test_operand_cache_does_not_keep_arrays_alive(rng):
    cache = OperandCache()
    metric = Euclidean()
    X = rng.normal(size=(50, 4))
    cache.get(metric, X)
    assert len(cache) == 1
    del X
    # the weakref is dead; the next miss drops the stale entry
    Y = np.asarray(rng.normal(size=(50, 4)))
    cache.get(metric, Y)
    assert cache.stats.n_prepared == 2


def test_operand_cache_lru_bound(rng):
    cache = OperandCache(max_entries=3)
    metric = Euclidean()
    held = [rng.normal(size=(8, 2)) for _ in range(5)]
    for X in held:
        cache.get(metric, X)
    assert len(cache) == 3


def test_metric_instances_do_not_share_mahalanobis_entries(rng):
    cache = OperandCache()
    X = rng.normal(size=(20, 3))
    m1 = Mahalanobis(np.eye(3))
    m2 = Mahalanobis(np.diag([4.0, 4.0, 4.0]))
    p1 = cache.get(m1, X)
    p2 = cache.get(m2, X)
    assert p1 is not p2
    assert cache.stats.n_prepared == 2


# --------------------------------------------------- zero-recompute property
@pytest.mark.parametrize("cls", [ExactRBC, OneShotRBC])
def test_database_norms_computed_once_per_build(cls, rng):
    """10 consecutive query batches: zero norm recomputations after warmup."""
    X = rng.normal(size=(1200, 8))
    index = cls(seed=0).build(X)
    index.query(rng.normal(size=(20, 8)), k=3)  # warm the prepared caches
    before = operand_cache.stats.snapshot()
    for _ in range(10):
        index.query(rng.normal(size=(20, 8)), k=3)
    after = operand_cache.stats.snapshot()
    assert after.n_prepared == before.n_prepared, (
        "query batches re-prepared cached operands"
    )
    assert after.n_invalidated == before.n_invalidated


@pytest.mark.parametrize("cls", [ExactRBC, OneShotRBC])
def test_dynamic_update_invalidates_and_recomputes(cls, rng):
    X = rng.normal(size=(600, 6))
    index = cls(seed=0).build(X)
    Q = rng.normal(size=(10, 6))
    index.query(Q, k=2)
    version0 = index._version

    gid = index.insert(rng.normal(size=6))
    assert index._version > version0
    prepared0 = operand_cache.stats.snapshot().n_prepared
    d1, i1 = index.query(Q, k=2)
    assert operand_cache.stats.snapshot().n_prepared > prepared0, (
        "insert did not trigger re-preparation"
    )
    # the fresh point must be reachable through the recomputed operands
    d_new, i_new = index.query(X[[0]] * 0 + index.X[gid][None, :], k=1)
    assert i_new[0, 0] == gid

    version1 = index._version
    index.delete(gid)
    assert index._version > version1
    d2, i2 = index.query(Q, k=2)
    assert gid not in i2
    # results after churn match a fresh index built on the same data
    rebuilt = type(index)(seed=0, engine=False)
    rebuilt.build(np.asarray(index.X[: index.n]))
    # (only check exactness for the exact search; one-shot is stochastic)
    if cls is ExactRBC:
        d3, i3 = index.query(Q, k=2)
        np.testing.assert_array_equal(i2, i3)


# ----------------------------------------------------------- engine on/off
@pytest.mark.parametrize("factory", [Euclidean, Cosine])
def test_exact_engine_matches_disabled(factory, rng):
    metric = make_metric(factory)
    X = rng.normal(size=(900, 6))
    Q = rng.normal(size=(40, 6))
    on = ExactRBC(metric=metric, seed=3).build(X)
    off = ExactRBC(metric=type(metric)(), seed=3, engine=False).build(X)
    d1, i1 = on.query(Q, k=4)
    d0, i0 = off.query(Q, k=4)
    np.testing.assert_array_equal(i1, i0)
    np.testing.assert_array_equal(d1, d0)


@pytest.mark.parametrize("factory", [Euclidean, Cosine])
@pytest.mark.parametrize("n_probes", [1, 2, 3])
def test_oneshot_engine_matches_disabled(factory, n_probes, rng):
    metric = make_metric(factory)
    X = rng.normal(size=(900, 6))
    Q = rng.normal(size=(40, 6))
    on = OneShotRBC(metric=metric, seed=3).build(X)
    off = OneShotRBC(metric=type(metric)(), seed=3, engine=False).build(X)
    d1, i1 = on.query(Q, k=4, n_probes=n_probes)
    d0, i0 = off.query(Q, k=4, n_probes=n_probes)
    np.testing.assert_array_equal(i1, i0)
    np.testing.assert_allclose(d1, d0, rtol=1e-12, atol=1e-12)


def test_oneshot_engine_matches_after_updates(rng):
    """Updates break the uniform packed layout; the fallback path must agree."""
    X = rng.normal(size=(700, 5))
    Q = rng.normal(size=(30, 5))
    on = OneShotRBC(seed=1).build(X)
    off = OneShotRBC(seed=1, engine=False).build(X)
    for _ in range(5):
        p = rng.normal(size=5)
        on.insert(p)
        off.insert(p)
    d1, i1 = on.query(Q, k=3)
    d0, i0 = off.query(Q, k=3)
    np.testing.assert_array_equal(i1, i0)
    np.testing.assert_allclose(d1, d0, rtol=1e-12)


def test_exact_engine_ablation_flags_still_exact(rng):
    X = rng.normal(size=(800, 6))
    Q = rng.normal(size=(25, 6))
    on = ExactRBC(seed=2).build(X)
    off = ExactRBC(seed=2, engine=False).build(X)
    for flags in (
        dict(use_psi_rule=False),
        dict(use_3gamma_rule=False),
        dict(use_trim=False),
        dict(use_psi_rule=False, use_3gamma_rule=False, use_trim=False),
    ):
        d1, i1 = on.query(Q, k=3, **flags)
        d0, i0 = off.query(Q, k=3, **flags)
        np.testing.assert_array_equal(i1, i0)
        np.testing.assert_array_equal(d1, d0)


# ------------------------------------------------------------ float32 path
@settings(max_examples=15, deadline=None)
@given(seed=st.integers(0, 2**20), n=st.integers(80, 400), d=st.integers(2, 12))
def test_float32_refined_matches_float64(seed, n, d):
    """Property: f32 compute + f64 refinement returns the f64 ids."""
    rng = np.random.default_rng(seed)
    X = rng.normal(size=(n, d))
    Q = rng.normal(size=(10, d))
    k = min(4, n)
    d64, i64 = bf_knn(Q, X, k=k)
    d32, i32 = bf_knn(Q, X, k=k, dtype="float32")
    # Gaussian data: ties have measure zero, ids must agree exactly
    np.testing.assert_array_equal(i32, i64)
    np.testing.assert_allclose(d32, d64, rtol=1e-9, atol=1e-12)


@pytest.mark.parametrize("cls", [ExactRBC, OneShotRBC])
def test_index_float32_matches_float64_ids(cls, rng):
    X = rng.normal(size=(1500, 10))
    Q = rng.normal(size=(50, 10))
    f64 = cls(seed=0).build(X)
    f32 = cls(seed=0, dtype="float32").build(X)
    d1, i1 = f64.query(Q, k=5)
    d2, i2 = f32.query(Q, k=5)
    np.testing.assert_array_equal(i1, i2)
    np.testing.assert_allclose(d1, d2, rtol=1e-9, atol=1e-12)


def test_float32_unrefined_is_low_precision(rng):
    X = rng.normal(size=(300, 6))
    Q = rng.normal(size=(10, 6))
    d64, _ = bf_knn(Q, X, k=3)
    d32, _ = bf_knn(Q, X, k=3, dtype="float32", refine=False)
    assert d32.dtype == np.float32  # no refinement: raw compute dtype
    assert not np.array_equal(d32.astype(np.float64), d64)  # f32 rounding
    np.testing.assert_allclose(d32, d64, rtol=1e-4)


def test_bf_range_float32_matches(rng):
    X = rng.normal(size=(400, 5))
    Q = rng.normal(size=(12, 5))
    eps = 2.0
    out64 = bf_range(Q, X, eps=eps)
    out32 = bf_range(Q, X, eps=eps, dtype="float32")
    for (d64, i64), (d32, i32) in zip(out64, out32):
        np.testing.assert_array_equal(np.sort(i64), np.sort(i32))
        np.testing.assert_allclose(np.sort(d64), np.sort(d32), rtol=1e-9)


def test_exact_range_query_float32_matches(rng):
    X = rng.normal(size=(800, 5))
    Q = rng.normal(size=(15, 5))
    f64 = ExactRBC(seed=0).build(X)
    f32 = ExactRBC(seed=0, dtype="float32").build(X)
    for (d1, i1), (d2, i2) in zip(f64.range_query(Q, 1.5), f32.range_query(Q, 1.5)):
        np.testing.assert_array_equal(np.sort(i1), np.sort(i2))


def test_bf_knn_rejects_bad_dtype_and_prepared_with_ids(rng):
    X = rng.normal(size=(50, 3))
    Q = rng.normal(size=(4, 3))
    # ("int8"/"float16" are now quantizer sugar, so they no longer reject)
    with pytest.raises(ValueError, match="compute dtype"):
        bf_knn(Q, X, k=2, dtype="int16")
    metric = Euclidean()
    with pytest.raises(ValueError, match="x_prepared"):
        bf_knn(
            Q, X, metric, k=2,
            ids=np.arange(50), x_prepared=metric.prepare(X),
        )


def test_refine_topk_handles_padding(rng):
    metric = Euclidean()
    X = rng.normal(size=(20, 4))
    Q = rng.normal(size=(3, 4))
    idx = np.array([[0, 5, -1, -1], [1, 2, 3, -1], [4, -1, -1, -1]])
    d, i = refine_topk(metric, Q, X, idx, k=2)
    assert d.shape == (3, 2)
    # padding slots stay padding; real slots are exact distances
    assert i[2, 1] == -1 and np.isinf(d[2, 1])
    np.testing.assert_allclose(
        d[0, 0], min(metric.pairwise(Q[[0]], X[[0, 5]])[0]), rtol=1e-12
    )


# ------------------------------------------------------------- paired API
@pytest.mark.parametrize("factory", VECTOR_METRICS)
def test_paired_matches_pairwise_diagonal(factory, rng):
    metric = make_metric(factory)
    A = rng.normal(size=(30, 5))
    B = rng.normal(size=(30, 5))
    expect = np.array([metric.pairwise(A[[i]], B[[i]])[0, 0] for i in range(30)])
    np.testing.assert_allclose(metric.paired(A, B), expect, rtol=1e-12)


def test_paired_counts_evals(rng):
    metric = Euclidean()
    before = metric.counter.snapshot().n_evals
    metric.paired(rng.normal(size=(17, 3)), rng.normal(size=(17, 3)))
    assert metric.counter.snapshot().n_evals - before == 17


def test_paired_shape_mismatch(rng):
    metric = Euclidean()
    with pytest.raises(ValueError):
        metric.paired(rng.normal(size=(4, 3)), rng.normal(size=(5, 3)))


# ------------------------------------------------------- counter integrity
def test_distance_counter_snapshot_consistent_under_threads():
    """snapshot() must never observe a torn (n_calls, n_evals) pair."""
    counter = DistanceCounter()
    stop = threading.Event()
    bad = []

    def writer():
        while not stop.is_set():
            counter.add(2)

    def reader():
        for _ in range(3000):
            snap = counter.snapshot()
            if snap.n_evals != 2 * snap.n_calls:
                bad.append((snap.n_calls, snap.n_evals))

    threads = [threading.Thread(target=writer) for _ in range(2)]
    checker = threading.Thread(target=reader)
    for t in threads:
        t.start()
    checker.start()
    checker.join()
    stop.set()
    for t in threads:
        t.join()
    assert not bad, f"torn snapshots observed: {bad[:3]}"
