"""The streaming serving layer: batcher policy, determinism, residency.

Three contracts matter:

* **determinism** — a micro-batched stream returns *bit-identical*
  answers (float64 distances compared with ``==``) and identical pruning
  counters to per-query dispatch; batching is a throughput decision, never
  a results decision;
* **latency** — the adaptive batcher honors its ``max_delay_ms`` budget,
  including under bursty arrival traces;
* **residency hygiene** — shared-memory segments pinned for a serving
  session are all unlinked by ``close()``, also when the stream dies
  mid-flight.
"""

from __future__ import annotations

from multiprocessing import shared_memory

import numpy as np
import pytest

from repro import BatchPolicy, ExactRBC, OneShotRBC, StreamingSearcher
from repro.baselines import BruteForceIndex
from repro.eval import streamed_query
from repro.runtime import ExecContext, StreamReport
from repro.serving import DatasetResidency, QueryBatcher


@pytest.fixture
def served_index(rng):
    X = rng.normal(size=(1200, 10))
    Q = rng.normal(size=(80, 10))
    return ExactRBC(seed=0).build(X), Q


# ------------------------------------------------------------ batcher policy


def test_batcher_fills_to_target_then_flushes():
    b = QueryBatcher(BatchPolicy(max_delay_ms=1000, min_batch=4, max_batch=4))
    for i in range(3):
        b.add(i, now=0.0)
        assert not b.ready(0.0)
    b.add(3, now=0.0)
    assert b.ready(0.0)
    items = b.take(0.0)
    assert [p for p, _ in items] == [0, 1, 2, 3]
    assert b.pending == 0 and b.n_batches == 1 and b.n_deadline_flushes == 0


def test_batcher_deadline_flush_and_counter():
    b = QueryBatcher(BatchPolicy(max_delay_ms=10, max_batch=64))
    for _ in range(8):  # climb the ladder so the target exceeds one query
        b.observe(b.target, 0.001)
    assert b.target > 1
    b.add("q", now=0.0)
    assert not b.ready(0.0)
    deadline = b.next_deadline()
    assert 0.0 < deadline <= 0.010
    assert b.ready(deadline)  # slack exhausted exactly at the deadline
    b.take(deadline)
    assert b.n_deadline_flushes == 1


def test_batcher_grows_toward_throughput():
    # service time ~ constant per batch (the GEMM regime): bigger is
    # always better, so the controller should climb to max_batch
    b = QueryBatcher(BatchPolicy(max_delay_ms=1000, max_batch=64))
    for _ in range(12):
        b.observe(b.target, 0.001)
    assert b.target == 64


def test_batcher_shrinks_when_service_eats_budget():
    # measured rate of 1000 q/s: a 64-batch costs 64 ms, far beyond
    # service_fraction * 20 ms — the target must come down
    b = QueryBatcher(BatchPolicy(max_delay_ms=20, max_batch=64))
    for _ in range(12):
        b.observe(b.target, b.target / 1000.0)
    assert b.service_estimate(b.target) <= 0.5 * 0.020 + 1e-9


def test_batcher_take_caps_at_max_batch():
    b = QueryBatcher(BatchPolicy(max_delay_ms=10, max_batch=8))
    for _ in range(8):  # climb the ladder to the max_batch target
        b.observe(b.target, 0.001)
    assert b.target == 8
    for i in range(20):
        b.add(i, now=0.0)
    assert len(b.take(1.0)) == 8
    assert b.pending == 12


def test_batcher_take_respects_adaptive_target():
    # take() must pop the controller's target, not policy.max_batch: a
    # deep queue right after an SLO backoff is exactly the overload
    # regime where dispatching max_batch anyway would bypass the ladder
    b = QueryBatcher(BatchPolicy(max_delay_ms=1000, max_batch=64))
    for _ in range(12):
        b.observe(b.target, 0.001)
    assert b.target == 64
    b.backoff()
    assert b.target == 32
    for i in range(64):
        b.add(i, now=0.0)
    items = b.take(0.0)
    assert len(items) == 32  # not 64
    assert b.pending == 32
    assert b.n_deadline_flushes == 0  # a full target batch is not a flush


def test_batcher_final_drain_is_ready():
    b = QueryBatcher(BatchPolicy(max_delay_ms=1000, min_batch=4, max_batch=64))
    b.add("q", now=0.0)
    assert not b.ready(0.0, more_coming=True)
    assert b.ready(0.0, more_coming=False)


def test_policy_validation():
    with pytest.raises(ValueError):
        BatchPolicy(max_delay_ms=0)
    with pytest.raises(ValueError):
        BatchPolicy(min_batch=8, max_batch=4)
    assert BatchPolicy(min_batch=3, max_batch=20).ladder() == [3, 6, 12, 20]


# --------------------------------------------------------------- determinism


@pytest.mark.parametrize("make_index", [ExactRBC, OneShotRBC])
def test_stream_bit_identical_to_per_query(rng, make_index):
    X = rng.normal(size=(1500, 12))
    Q = rng.normal(size=(96, 12))
    index = make_index(seed=0).build(X)

    with StreamingSearcher(
        index, k=4, policy=BatchPolicy(max_batch=1, max_delay_ms=100)
    ) as one:
        per_call = one.search_stream(Q, qps=5000.0)
    with StreamingSearcher(
        index, k=4, policy=BatchPolicy(max_batch=64, max_delay_ms=100)
    ) as many:
        batched = many.search_stream(Q, qps=5000.0)

    assert batched.mean_batch > 1  # the comparison exercised real batching
    # bit-identical float64 distances and ids, not merely allclose
    np.testing.assert_array_equal(per_call.dist, batched.dist)
    np.testing.assert_array_equal(per_call.idx, batched.idx)


def test_stream_rule_counts_batching_invariant(served_index):
    index, Q = served_index
    with StreamingSearcher(
        index, k=3, policy=BatchPolicy(max_batch=1, max_delay_ms=50)
    ) as one:
        per_call = one.search_stream(Q, qps=4000.0)
    with StreamingSearcher(
        index, k=3, policy=BatchPolicy(max_batch=32, max_delay_ms=50)
    ) as many:
        batched = many.search_stream(Q, qps=4000.0)
    assert per_call.rule_counts == batched.rule_counts
    assert per_call.rule_counts["n_queries"] == Q.shape[0]


def test_stream_matches_direct_query_answers(served_index):
    index, Q = served_index
    dist, idx = index.query(Q, k=3)
    report = streamed_query(index, Q, k=3, qps=3000.0)
    np.testing.assert_array_equal(report.idx, idx)
    np.testing.assert_allclose(report.dist, dist, rtol=0, atol=1e-9)


def test_stream_works_without_rescore_hooks(rng):
    # an index outside the RBC family (no warm(), no _base_ctx surprises)
    X = rng.normal(size=(300, 6))
    Q = rng.normal(size=(20, 6))
    index = BruteForceIndex().build(X)
    report = streamed_query(index, Q, k=2, qps=1000.0)
    dist, idx = index.query(Q, k=2)
    np.testing.assert_array_equal(report.idx, idx)


# ------------------------------------------------------------------- latency


def test_stream_latency_capped_under_bursty_trace(served_index):
    index, Q = served_index
    budget_ms = 200.0
    # bursty: half the queries land in one instant, the rest trickle
    m = Q.shape[0]
    arrivals = np.concatenate(
        [np.zeros(m // 2), 0.05 + np.arange(m - m // 2) * 0.002]
    )
    with StreamingSearcher(
        index, k=2, policy=BatchPolicy(max_delay_ms=budget_ms, max_batch=64)
    ) as server:
        report = server.search_stream(Q, arrival_times=arrivals)
    assert isinstance(report, StreamReport)
    assert report.latency.n == m
    assert report.latency.p99_s * 1e3 < budget_ms
    # waits are part of sojourn, so wait <= latency everywhere
    assert report.wait.max_s <= report.latency.max_s + 1e-12


def test_stream_report_observables(served_index):
    index, Q = served_index
    report = streamed_query(
        index, Q, k=2, qps=2000.0, policy=BatchPolicy(max_batch=32)
    )
    assert report.n_queries == Q.shape[0]
    assert report.throughput_qps > 0
    assert report.n_batches >= 1
    assert report.max_batch <= 32
    assert report.evals > 0  # counter window captured the stream's work
    d = report.to_dict()
    assert d["latency"]["p99_s"] >= d["latency"]["p50_s"]
    assert "q/s" in report.summary()


def test_stream_input_validation(served_index):
    index, Q = served_index
    with StreamingSearcher(index, k=1) as server:
        with pytest.raises(ValueError, match="exactly one"):
            server.search_stream(Q)
        with pytest.raises(ValueError, match="exactly one"):
            server.search_stream(Q, qps=10.0, arrival_times=np.zeros(len(Q)))
        with pytest.raises(ValueError, match="nondecreasing"):
            server.search_stream(Q[:2], arrival_times=np.array([1.0, 0.5]))
    with pytest.raises(RuntimeError, match="closed"):
        server.search_stream(Q, qps=10.0)


# ----------------------------------------------------------------- live API


def test_submit_poll_drain(served_index):
    index, Q = served_index
    dist, idx = index.query(Q[:10], k=2)
    with StreamingSearcher(
        index, k=2, policy=BatchPolicy(max_batch=4, max_delay_ms=1000)
    ) as server:
        tickets = [server.submit(q) for q in Q[:10]]
        answers = server.drain()
    assert sorted(answers) == tickets
    for row, ticket in enumerate(tickets):
        d, i = answers[ticket]
        np.testing.assert_array_equal(i, idx[row])
        np.testing.assert_allclose(d, dist[row], rtol=0, atol=1e-9)


def test_submit_rejects_batches(served_index):
    index, Q = served_index
    with StreamingSearcher(index, k=1) as server:
        with pytest.raises(ValueError, match="one query"):
            server.submit(Q[:3])


def test_tick_serves_lone_query_after_budget(served_index):
    # live-path starvation pin: submit() alone only evaluates the
    # deadline at submission time, so with no further arrivals a lone
    # query below the target would wait forever; tick() must flush it
    # once its latency budget has elapsed
    index, Q = served_index
    policy = BatchPolicy(min_batch=4, max_batch=4, max_delay_ms=50)
    with StreamingSearcher(index, k=2, policy=policy) as server:
        ticket = server.submit(Q[0], now=0.0)
        assert server.poll(ticket, now=0.0) is None  # not due yet
        assert server.tick(now=0.010) == 0  # budget not yet elapsed
        deadline = server.next_deadline()
        assert deadline is not None and deadline <= 0.050
        assert server.tick(now=deadline) == 1
        d, i = server.poll(ticket)
        dist, idx = index.query(Q[:1], k=2)
        np.testing.assert_array_equal(i, idx[0])


def test_poll_flushes_past_deadline(served_index):
    # a submit-then-poll-only caller must not starve the last batch:
    # poll() checks the deadline rule itself
    index, Q = served_index
    policy = BatchPolicy(min_batch=4, max_batch=4, max_delay_ms=50)
    with StreamingSearcher(index, k=2, policy=policy) as server:
        ticket = server.submit(Q[0], now=0.0)
        assert server.poll(ticket, now=0.001) is None
        answer = server.poll(ticket, now=server.next_deadline())
        assert answer is not None


# ------------------------------------------------------- residency hygiene


def _segments_all_unlinked(names):
    for name in names:
        with pytest.raises(FileNotFoundError):
            shared_memory.SharedMemory(name=name)


def test_close_releases_shared_segments(rng):
    X = rng.normal(size=(400, 8))
    Q = rng.normal(size=(8, 8))
    index = ExactRBC(seed=0).build(X)
    ctx = ExecContext(executor="processes", n_workers=2)
    server = StreamingSearcher(index, k=2, ctx=ctx)
    try:
        assert server.residency.active
        names = server.residency.segment_names()
        assert names  # database and representative block are pinned
        report = server.search_stream(Q, qps=500.0)
        assert report.n_queries == 8
    finally:
        server.close()
    assert server.residency.segment_names() == []
    _segments_all_unlinked(names)
    server.close()  # idempotent


def test_midstream_exception_releases_segments(rng):
    X = rng.normal(size=(300, 6))
    index = ExactRBC(seed=0).build(X)
    ctx = ExecContext(executor="processes", n_workers=2)
    names = []
    with pytest.raises(ValueError, match="nondecreasing"):
        with StreamingSearcher(index, k=1, ctx=ctx) as server:
            names = server.residency.segment_names()
            assert names
            # a malformed trace aborts the stream mid-setup
            server.search_stream(
                np.zeros((2, 6)), arrival_times=np.array([1.0, 0.0])
            )
    _segments_all_unlinked(names)


def test_thread_backend_sessions_pin_nothing(served_index):
    index, Q = served_index
    with StreamingSearcher(
        index, k=1, ctx=ExecContext(executor="threads", n_workers=2)
    ) as server:
        assert not server.residency.active
        server.search_stream(Q[:16], qps=1000.0)


def test_residency_release_is_idempotent(rng):
    X = rng.normal(size=(200, 5))
    index = ExactRBC(seed=0).build(X)
    res = DatasetResidency(index, ExecContext(executor="processes"))
    assert res.active
    assert res.release() >= 1
    assert res.release() == 0
