"""Edge-case coverage across the public API."""

import numpy as np
import pytest

from repro.core import ExactRBC, OneShotRBC
from repro.eval import results_match_exactly
from repro.metrics import Euclidean
from repro.parallel import bf_knn, bf_range


def test_every_point_a_representative(small_vectors):
    # n_reps = n degenerates gracefully: stage 1 IS brute force
    X, Q = small_vectors
    rbc = ExactRBC(seed=0, rep_scheme="exact").build(X, n_reps=X.shape[0])
    d, _ = rbc.query(Q, k=2)
    td, _ = bf_knn(Q, X, k=2)
    assert results_match_exactly(d, td)
    # every list is the representative alone (each point is its own rep)
    assert all(lst.size == 1 for lst in rbc.lists)


def test_single_representative(small_vectors):
    X, Q = small_vectors
    rbc = ExactRBC(seed=0, rep_scheme="exact").build(X, n_reps=1)
    d, _ = rbc.query(Q, k=3)
    td, _ = bf_knn(Q, X, k=3)
    assert results_match_exactly(d, td)


def test_single_point_database():
    X = np.array([[3.0, 4.0]])
    for cls in (ExactRBC, OneShotRBC):
        idx = cls(seed=0).build(X)
        d, i = idx.query(np.array([[0.0, 0.0]]), k=1)
        assert i[0, 0] == 0
        assert d[0, 0] == pytest.approx(5.0)


def test_queries_equal_database(small_vectors):
    X, _ = small_vectors
    rbc = ExactRBC(seed=0).build(X)
    d, i = rbc.query(X, k=1)
    np.testing.assert_array_equal(i[:, 0], np.arange(X.shape[0]))


def test_shared_metric_instance_across_indexes(small_vectors):
    # a user may pass one metric object to several structures; counters
    # are shared but results must stay correct
    X, Q = small_vectors
    m = Euclidean()
    a = ExactRBC(metric=m, seed=0).build(X)
    b = OneShotRBC(metric=m, seed=1).build(X, n_reps=20, s=50)
    da, _ = a.query(Q, k=1)
    db, _ = b.query(Q, k=1)
    td, _ = bf_knn(Q, X, k=1)
    assert results_match_exactly(da, td)
    assert (db[:, 0] >= td[:, 0] - 1e-9).all()


def test_range_query_huge_eps_returns_everything(small_vectors):
    X, Q = small_vectors
    rbc = ExactRBC(seed=0).build(X)
    out = rbc.range_query(Q[:3], 1e9)
    for d, i in out:
        assert i.size == X.shape[0]


def test_bf_range_tiny_eps_finds_self(small_vectors):
    X, _ = small_vectors
    # eps above the sq-euclidean cancellation noise floor: finds self
    out = bf_range(X[:2], X, 1e-5)
    for r, (d, i) in enumerate(out):
        assert r in i


def test_bf_range_eps_zero_integer_data():
    # with cancellation-free coordinates, eps=0 returns exact matches
    X = np.arange(20.0)[:, None]
    out = bf_range(X[:3], X, 0.0)
    for r, (d, i) in enumerate(out):
        assert i.tolist() == [r]
        assert d[0] == 0.0


def test_chebyshev_grid_exact():
    from repro.data import grid_l1

    X = grid_l1(6, 2)
    Q = X[::4] + 0.25
    rbc = ExactRBC(metric="chebyshev", seed=0).build(X)
    d, _ = rbc.query(Q, k=3)
    td, _ = bf_knn(Q, X, "chebyshev", k=3)
    assert results_match_exactly(d, td)


def test_one_dimensional_data(rng):
    X = np.sort(rng.normal(size=(300, 1)), axis=0)
    Q = rng.normal(size=(10, 1))
    for cls in (ExactRBC, OneShotRBC):
        idx = cls(seed=0).build(X)
        d, i = idx.query(Q, k=2)
        assert np.isfinite(d).all()
    td, _ = bf_knn(Q, X, k=2)
    d, _ = ExactRBC(seed=0).build(X).query(Q, k=2)
    assert results_match_exactly(d, td)


def test_identical_database_points_knn(rng):
    # all points identical: any k of them is a correct answer at dist 0
    X = np.tile(rng.normal(size=(1, 3)), (40, 1))
    rbc = ExactRBC(seed=0).build(X)
    d, i = rbc.query(X[:2], k=5)
    np.testing.assert_allclose(d, 0.0, atol=1e-6)
    for row in i:
        assert len(set(row.tolist())) == 5  # five distinct ids


def test_very_large_k_equals_full_sort(small_vectors):
    X, Q = small_vectors
    n = X.shape[0]
    rbc = ExactRBC(seed=0).build(X)
    d, i = rbc.query(Q[:3], k=n)
    td, _ = bf_knn(Q[:3], X, k=n)
    assert results_match_exactly(d, td)
    # the full ranking contains every database point once
    for row in i:
        assert sorted(row.tolist()) == list(range(n))


def test_metric_counter_monotone_across_operations(small_vectors):
    X, Q = small_vectors
    rbc = ExactRBC(seed=0).build(X)
    readings = [rbc.metric.counter.n_evals]
    for _ in range(3):
        rbc.query(Q, k=1)
        readings.append(rbc.metric.counter.n_evals)
    assert readings == sorted(readings)
    assert readings[-1] > readings[0]
