"""Thread-safety of :class:`TraceRecorder`.

The recorder keeps its open phase in thread-local storage, so concurrent
worker threads each build their own phases and only the completed phase is
appended (under a lock) to the shared trace.  Phase *order* across threads
is scheduling-dependent; the multiset of phases — their names and op
totals — must match a serial run exactly.
"""

import threading

import numpy as np
import pytest

from repro.core import ExactRBC
from repro.parallel import bf_knn
from repro.simulator import TraceRecorder
from repro.simulator.trace import Op


def phase_multiset(trace):
    """Order-independent fingerprint: one tuple per phase."""
    return sorted(
        (
            p.name,
            len(p.ops),
            round(sum(op.flops for op in p.ops), 6),
            round(sum(op.bytes for op in p.ops), 6),
        )
        for p in trace.phases
    )


def test_concurrent_phases_do_not_interleave():
    rec = TraceRecorder()
    start = threading.Barrier(4)

    def worker(tid):
        start.wait()
        for rep in range(20):
            with rec.phase(f"t{tid}"):
                for _ in range(5):
                    rec.record(Op(kind="ewise", flops=float(tid + 1), bytes=8.0))

    threads = [threading.Thread(target=worker, args=(t,)) for t in range(4)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()

    assert len(rec.trace.phases) == 4 * 20
    for p in rec.trace.phases:
        tid = int(p.name[1:])
        assert len(p.ops) == 5
        # every op in a phase came from the thread that opened it
        assert all(op.flops == float(tid + 1) for op in p.ops)


def test_record_outside_phase_is_safe_across_threads():
    rec = TraceRecorder()

    def worker():
        for _ in range(50):
            rec.record(Op(kind="ewise", flops=1.0, bytes=8.0))

    threads = [threading.Thread(target=worker) for _ in range(4)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert rec.trace.n_ops == 200


def test_bf_knn_trace_invariant_under_threads():
    rng = np.random.default_rng(0)
    X = rng.normal(size=(2000, 6))
    Q = rng.normal(size=(700, 6))

    rec_s = TraceRecorder()
    bf_knn(Q, X, k=3, recorder=rec_s, row_chunk=128, tile_cols=500)
    rec_t = TraceRecorder()
    bf_knn(Q, X, k=3, recorder=rec_t, row_chunk=128, tile_cols=500,
           executor="threads")

    assert phase_multiset(rec_s.trace) == phase_multiset(rec_t.trace)
    assert rec_s.trace.n_ops == rec_t.trace.n_ops


def test_exact_query_trace_invariant_under_threads():
    rng = np.random.default_rng(1)
    X = rng.normal(size=(2000, 4))
    Q = rng.normal(size=(600, 4))  # > 256 queries => several stage-2 chunks

    idx_s = ExactRBC(seed=0).build(X)
    rec_s = TraceRecorder()
    d1, i1 = idx_s.query(Q, k=2, recorder=rec_s)

    idx_t = ExactRBC(seed=0, executor="threads").build(X)
    rec_t = TraceRecorder()
    d2, i2 = idx_t.query(Q, k=2, recorder=rec_t)

    np.testing.assert_allclose(d1, d2)
    np.testing.assert_array_equal(i1, i2)
    assert phase_multiset(rec_s.trace) == phase_multiset(rec_t.trace)
    assert rec_s.trace.flops == pytest.approx(rec_t.trace.flops)
