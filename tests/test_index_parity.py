"""Cross-backend answer parity through the registry.

Every registered backend must return the same *shape* of answer — a
``(m, k)`` float64 distance block and a ``(m, k)`` int64 id block,
ascending per row, padded with ``inf`` / ``-1`` past the valid prefix —
on the same edge cases (k > n, duplicate points, d = 1, empty query
batch).  Exact backends must additionally agree with the brute-force
oracle; approximate backends must report true distances for whatever ids
they do return.  The Router must hand back its chosen backend's answer
bit for bit.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.index import Router, create_index
from repro.metrics import get_metric
from repro.parallel import bf_knn

FINITE = st.floats(min_value=-100, max_value=100, allow_nan=False)
SMALL_DATA = arrays(
    np.float64, st.tuples(st.integers(10, 50), st.integers(1, 4)),
    elements=FINITE,
)

EXACT = (
    "rbc-exact", "brute", "covertree", "kdtree", "balltree", "vptree",
    "gnat", "aesa", "buffer-kd",
)
APPROX = ("rbc-oneshot", "rpforest")
ALL = EXACT + APPROX

_FAST = {
    "kdtree": {"leaf_size": 4},
    "balltree": {"leaf_size": 4},
    "vptree": {"leaf_size": 4},
    "gnat": {"leaf_size": 6},
    "buffer-kd": {"leaf_size": 8},
    "rpforest": {"leaf_size": 8, "n_trees": 6},
}


def _built(name, X, seed=0):
    kw = {"metric": "euclidean", "seed": seed, **_FAST.get(name, {})}
    return create_index(name, lenient=True, **kw).build(X)


def _check_row_contract(name, d, i, m, k, n, *, exact=True):
    assert d.shape == (m, k) and i.shape == (m, k), name
    assert d.dtype == np.float64 and i.dtype == np.int64, name
    valid = i >= 0
    # valid prefix, then -1 padding — never interleaved
    n_valid = valid.sum(axis=1)
    if exact:
        assert (n_valid == np.minimum(k, n)).all(), name
    else:
        # approximate backends may surface fewer than min(k, n)
        # candidates, but never more
        assert (n_valid <= np.minimum(k, n)).all(), name
    cols = np.arange(k)
    assert (valid == (cols[None, :] < n_valid[:, None])).all(), name
    assert np.isinf(d[~valid]).all(), name
    assert (i[valid] < n).all(), name
    # ascending over the valid prefix (inf - inf in the padding is nan,
    # and the padding itself is already checked above)
    with np.errstate(invalid="ignore"):
        diffs = np.diff(d, axis=1)
    assert ((diffs >= -1e-12) | np.isnan(diffs)).all(), name


@settings(max_examples=15, deadline=None)
@given(SMALL_DATA, st.integers(1, 3), st.integers(0, 99))
def test_property_uniform_answer_contract(X, k, seed):
    Q = X[:: max(1, X.shape[0] // 5)]
    ref, _ = bf_knn(Q, X, k=k)
    metric = get_metric("euclidean")
    for name in ALL:
        idx = _built(name, X, seed=seed)
        d, i = idx.query(Q, k=k)
        _check_row_contract(name, d, i, Q.shape[0], k, X.shape[0],
                            exact=name in EXACT)
        if name in EXACT:
            np.testing.assert_allclose(d, ref, atol=2e-5, err_msg=name)
        else:
            # approximate: the distances reported must be the true
            # distances of the ids reported
            valid = i >= 0
            true_d = metric.paired(
                np.repeat(Q, k, axis=0)[valid.ravel()],
                X[i[valid]],
            )
            np.testing.assert_allclose(d[valid], true_d, atol=2e-5,
                                       err_msg=name)


def test_k_exceeds_n_pads_uniformly():
    rng = np.random.default_rng(3)
    X = rng.normal(size=(7, 3))
    Q = X[:4]
    for name in ALL:
        d, i = _built(name, X).query(Q, k=11)
        _check_row_contract(name, d, i, 4, 11, 7, exact=name in EXACT)
        assert np.isinf(d[:, 7:]).all(), name
        assert (i[:, 7:] == -1).all(), name


def test_duplicate_points_tie_stable():
    # 4 copies of each of 5 points: ties everywhere.  Each backend must
    # return k ids all at the tied distance, deterministically across
    # repeated calls.
    rng = np.random.default_rng(5)
    base = rng.normal(size=(5, 3))
    X = np.repeat(base, 4, axis=0)
    Q = base + 1e-9
    for name in ALL:
        idx = _built(name, X)
        d1, i1 = idx.query(Q, k=4)
        d2, i2 = idx.query(Q, k=4)
        _check_row_contract(name, d1, i1, 5, 4, 20)
        assert np.array_equal(i1, i2) and np.array_equal(d1, d2), name
        # every returned id is one of the 4 coincident copies
        for row, ids in enumerate(i1):
            assert set(ids.tolist()) <= set(range(4 * row, 4 * row + 4)), name


def test_one_dimensional_data():
    X = np.linspace(0.0, 1.0, 20)[:, None]
    Q = np.array([[0.05], [0.5], [0.97]])
    ref, ref_i = bf_knn(Q, X, k=2)
    for name in EXACT:
        d, i = _built(name, X).query(Q, k=2)
        np.testing.assert_allclose(d, ref, atol=1e-12, err_msg=name)
        assert np.array_equal(np.sort(i, axis=1), np.sort(ref_i, axis=1)), name


def test_empty_query_batch_everywhere():
    rng = np.random.default_rng(9)
    X = rng.normal(size=(15, 4))
    for name in ALL:
        d, i = _built(name, X).query(X[:0], k=3)
        assert d.shape == (0, 3) and i.shape == (0, 3), name
        assert d.dtype == np.float64 and i.dtype == np.int64, name


def test_router_bit_identical_to_chosen_backend():
    rng = np.random.default_rng(11)
    X = rng.normal(size=(300, 8))
    Q = rng.normal(size=(20, 8))
    router = Router(seed=0).build(X)
    for k in (1, 3, 7):
        d, i = router.query(Q, k=k)
        chosen = router.last_decision.backend
        d_ref, i_ref = router.backend(chosen).query(Q, k=k)
        assert np.array_equal(d, d_ref), chosen
        assert np.array_equal(i, i_ref), chosen


def test_router_edge_cases_follow_contract():
    rng = np.random.default_rng(13)
    X = rng.normal(size=(40, 5))
    router = Router(seed=0).build(X)
    d, i = router.query(X[:3], k=50)
    _check_row_contract("router", d, i, 3, 50, 40)
    d, i = router.query(X[:0], k=2)
    assert d.shape == (0, 2) and i.shape == (0, 2)
