"""The proximity-keyed semantic cache: zero recall loss, by certificate.

The cache's one load-bearing promise is that a cache-served answer is
*indistinguishable* from an uncached one — same ids, same (rescored)
distances, bit-for-bit — because the triangle-inequality certificate
proves set equality before a hit is served.  Everything here hammers
that promise from different directions:

* a hypothesis property drives random databases (duplicates injected,
  ``d = 1``, ``k > n``) through a cached server and compares every
  answer to an uncached server's with ``==``;
* zero-radius keys (tied k-th/(k+1)-th distances) must serve only exact
  repeats and certified-reject everything else;
* an insert between a hit and a re-query must invalidate — the
  regression test for stale certified answers;
* the miss path must be a pure passthrough of the uncached answer.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import ExactRBC, OneShotRBC
from repro.obs import MetricsRegistry
from repro.obs.collectors import install_cache_collectors
from repro.runtime import StreamReport
from repro.serving import (
    BatchPolicy,
    CachePolicy,
    ProximityCache,
    ShardedStreamingSearcher,
    StreamingSearcher,
)


def _serve(index, T, *, k, cache=None, max_batch=16, qps=5000.0):
    with StreamingSearcher(
        index, k=k, policy=BatchPolicy(max_batch=max_batch), cache=cache
    ) as srv:
        report = srv.search_stream(T, qps=qps)
        return report, srv.cache


# ------------------------------------------------------------- gatekeeping


def test_policy_validation():
    with pytest.raises(ValueError):
        CachePolicy(max_entries=0)
    with pytest.raises(ValueError):
        CachePolicy(ttl_s=0.0)
    with pytest.raises(ValueError):
        CachePolicy(safety=1.0)


def test_cache_requires_exact_index(rng):
    X = rng.normal(size=(300, 6))
    approx = OneShotRBC(seed=0).build(X)
    with pytest.raises(ValueError, match="exact"):
        ProximityCache(approx, 3)


def test_cache_requires_true_metric(rng):
    # sqeuclidean ranks like l2 but fails the triangle inequality, which
    # the certificate needs; brute force is the exact index that takes it
    from repro.baselines import BruteForceIndex

    X = rng.normal(size=(300, 6))
    idx = BruteForceIndex("sqeuclidean").build(X)
    with pytest.raises(ValueError, match="triangle"):
        ProximityCache(idx, 3)


def test_cache_requires_rescore(rng):
    X = rng.normal(size=(300, 6))
    idx = ExactRBC(seed=0).build(X)
    with pytest.raises(ValueError, match="rescor"):
        StreamingSearcher(idx, k=2, rescore=False, cache=True)


def test_cache_rejects_mismatched_searcher(rng):
    X = rng.normal(size=(300, 6))
    idx = ExactRBC(seed=0).build(X)
    other = ExactRBC(seed=1).build(X)
    cache = ProximityCache(idx, 3)
    with pytest.raises(ValueError, match="different index or k"):
        StreamingSearcher(other, k=3, cache=cache)
    with pytest.raises(ValueError, match="different index or k"):
        StreamingSearcher(idx, k=2, cache=cache)


# --------------------------------------------------- the identity property


@settings(max_examples=25, deadline=None)
@given(
    n=st.integers(2, 120),
    d=st.integers(1, 6),
    k=st.integers(1, 8),
    n_dups=st.integers(0, 6),
    data_seed=st.integers(0, 2**32 - 1),
)
def test_cached_hits_bit_identical_to_uncached(n, d, k, n_dups, data_seed):
    """For any cached hit, the served row equals the uncached server's
    answer bit-for-bit — duplicates, d=1, and k > n included.  The trace
    replays each query twice plus jittered variants, so the second pass
    is guaranteed hit traffic (exact repeats always certify)."""
    rng = np.random.default_rng(data_seed)
    X = rng.normal(size=(n, d))
    for t in range(n_dups):  # exact duplicate points: worst-case ties
        X[rng.integers(n)] = X[rng.integers(n)]
    idx = ExactRBC(seed=0).build(X, max(2, n // 8))

    base = rng.normal(size=(12, d))
    jit = base + rng.normal(scale=1e-9, size=base.shape)
    T = np.concatenate([base, base, jit])  # repeats + near-duplicates

    want, _ = _serve(ExactRBC(seed=0).build(X, max(2, n // 8)), T, k=k)
    got, cache = _serve(idx, T, k=k, cache=True)

    assert cache.counters.hits >= base.shape[0]  # second pass all hits
    np.testing.assert_array_equal(got.idx, want.idx)
    assert np.array_equal(got.dist, want.dist)
    assert got.cache_hits == cache.counters.hits
    assert got.cache_hit_rate == pytest.approx(
        got.cache_hits / (got.cache_hits + got.cache_misses)
    )


def test_duplicate_heavy_ties_stay_ordered(rng):
    # many duplicated points force distance ties in every answer; the
    # hit path's structural re-ranking must reproduce the kernel's order
    X = rng.normal(size=(400, 5))
    X[50:60] = X[7]
    X[200:204] = X[3]
    idx = ExactRBC(seed=0).build(X)
    q = X[7] + rng.normal(scale=1e-3, size=5)
    T = np.tile(q, (6, 1))
    want, _ = _serve(ExactRBC(seed=0).build(X), T, k=8)
    # first stream admits the key, the second is pure hit traffic
    # (queries inside one micro-batch cannot hit each other's entries)
    cache = ProximityCache(idx, 8)
    _serve(idx, T, k=8, cache=cache)
    got, _ = _serve(idx, T, k=8, cache=cache)
    assert cache.counters.hits >= 6
    np.testing.assert_array_equal(got.idx, want.idx)
    assert np.array_equal(got.dist, want.dist)


def test_k_exceeds_database(rng):
    X = rng.normal(size=(4, 3))
    idx = ExactRBC(seed=0).build(X, 2)
    T = np.tile(rng.normal(size=3), (5, 1))
    want, _ = _serve(ExactRBC(seed=0).build(X, 2), T, k=9)
    got, cache = _serve(idx, T, k=9, cache=True)
    assert cache.counters.hits >= 4  # radius inf: everything certifies
    np.testing.assert_array_equal(got.idx, want.idx)
    assert np.array_equal(got.dist, want.dist)
    assert np.all(got.idx[:, 4:] == -1)  # padding preserved


def test_zero_radius_keys_serve_only_exact_repeats(rng):
    # three copies of the nearest point with k=2: the 2nd and 3rd best
    # distances tie, so the certified radius collapses to zero — only a
    # byte-exact repeat may hit; anything jittered must certified-reject
    X = rng.normal(size=(200, 4))
    q = rng.normal(size=4)
    X[10] = X[11] = X[12] = q + 0.05
    idx = ExactRBC(seed=0).build(X)
    cache = ProximityCache(idx, 2)
    with StreamingSearcher(idx, k=2, cache=cache) as srv:
        srv.search_stream(np.array([q]), qps=100.0)  # miss, admitted
        assert cache._radius[0] == 0.0
        srv.search_stream(np.array([q]), qps=100.0)  # exact repeat
        assert cache.counters.hits == 1
        srv.search_stream(np.array([q + 1e-7]), qps=100.0)
        assert cache.counters.hits == 1  # jitter rejected despite closeness
        assert cache.counters.rejects >= 1


def test_miss_path_is_pure_passthrough(rng):
    # queries far apart: every lookup misses, and the answers must equal
    # the uncached server's exactly (the cache adds nothing but counters)
    X = rng.normal(size=(500, 8))
    T = rng.normal(size=(40, 8)) * 50.0  # spread out: no certifiable hits
    want, _ = _serve(ExactRBC(seed=0).build(X), T, k=3)
    got, cache = _serve(ExactRBC(seed=0).build(X), T, k=3, cache=True)
    assert cache.counters.hits == 0
    assert cache.counters.misses == 40
    np.testing.assert_array_equal(got.idx, want.idx)
    assert np.array_equal(got.dist, want.dist)


# ------------------------------------------------------------ invalidation


def test_insert_between_hit_and_requery_invalidates(rng):
    """The regression the version stamps exist for: admit, hit, mutate
    the index, re-query — the cache must drop its certificates and the
    answer must include the newly inserted point."""
    X = rng.normal(size=(600, 6))
    idx = ExactRBC(seed=0).build(X)
    q = rng.normal(size=6)
    cache = ProximityCache(idx, 3)
    with StreamingSearcher(idx, k=3, cache=cache) as srv:
        srv.search_stream(np.array([q]), qps=100.0)
        r_hit = srv.search_stream(np.array([q]), qps=100.0)
        assert cache.counters.hits == 1

        new_id = idx.insert(q)  # the new point is its own nearest neighbor
        r_after = srv.search_stream(np.array([q]), qps=100.0)

    assert cache.counters.invalidated >= 1
    assert r_after.idx[0, 0] == new_id
    assert new_id not in r_hit.idx[0]
    # and the post-insert answer matches a cold server's exactly
    fresh, _ = _serve(idx, np.array([q]), k=3)
    np.testing.assert_array_equal(r_after.idx, fresh.idx)
    assert np.array_equal(r_after.dist, fresh.dist)


def test_delete_invalidates_certificates(rng):
    X = rng.normal(size=(400, 5))
    idx = ExactRBC(seed=0).build(X)
    q = rng.normal(size=5)
    cache = ProximityCache(idx, 2)
    with StreamingSearcher(idx, k=2, cache=cache) as srv:
        first = srv.search_stream(np.array([q]), qps=100.0)
        victim = int(first.idx[0, 0])
        idx.delete(victim)
        after = srv.search_stream(np.array([q]), qps=100.0)
    assert victim not in after.idx[0]
    fresh, _ = _serve(idx, np.array([q]), k=2)
    np.testing.assert_array_equal(after.idx, fresh.idx)


def test_packed_lists_version_bumps():
    from repro.core.packed import PackedLists

    p = PackedLists([[0, 1], [2]], [[0.1, 0.2], [0.3]])
    assert p.version == 0
    p.insert(0, 1, 9, 0.15)
    assert p.version == 1
    p.delete_at(0, 1)
    assert p.version == 2
    p.replace(1, np.array([5]), np.array([0.4]))
    assert p.version == 3
    p.drop(1)
    assert p.version == 4


# --------------------------------------------------- policy: TTL, LRU, ...


def test_ttl_expiry_on_virtual_clock(rng):
    X = rng.normal(size=(300, 4))
    idx = ExactRBC(seed=0).build(X)
    cache = ProximityCache(idx, 2, policy=CachePolicy(ttl_s=0.5))
    q = rng.normal(size=4)
    cache_miss = cache.lookup(np.array([q]), now=0.0)
    assert not cache_miss[0].any()
    d, i = idx.query(np.array([q]), 3)
    cache.admit(np.array([q]), d, i, now=0.0)
    hit, _, _ = cache.lookup(np.array([q]), now=0.2)
    assert hit.all()
    hit, _, _ = cache.lookup(np.array([q]), now=1.0)  # past the TTL
    assert not hit.any()
    assert cache.counters.expired == 1
    assert len(cache) == 0


def test_lru_eviction_under_capacity_pressure(rng):
    X = rng.normal(size=(300, 4))
    idx = ExactRBC(seed=0).build(X)
    cache = ProximityCache(idx, 1, policy=CachePolicy(max_entries=4))
    Q = rng.normal(size=(10, 4)) * 10.0
    d, i = idx.query(Q, 2)
    for t in range(10):  # admit one at a time with advancing clocks
        cache.admit(Q[t : t + 1], d[t : t + 1], i[t : t + 1], now=float(t))
    assert len(cache) == 4
    assert cache.counters.evicted == 6
    # the survivors are the most recently admitted keys
    hit, _, _ = cache.lookup(Q[6:], now=20.0)
    assert hit.all()


def test_served_width_is_k_not_k_plus_one(rng):
    X = rng.normal(size=(200, 4))
    idx = ExactRBC(seed=0).build(X)
    report, _ = _serve(idx, rng.normal(size=(8, 4)), k=3, cache=True)
    assert report.dist.shape == (8, 3)
    assert report.idx.shape == (8, 3)


# ----------------------------------------------------- sharded integration


def test_sharded_searcher_with_cache(rng):
    X = rng.normal(size=(1500, 8))
    T = np.concatenate([rng.normal(size=(30, 8))] * 2)
    want, _ = _serve(ExactRBC(seed=0).build(X), T, k=4)
    idx = ExactRBC(seed=0).build(X)
    with ShardedStreamingSearcher(
        idx, k=4, n_shards=3, policy=BatchPolicy(max_batch=16), cache=True
    ) as srv:
        got = srv.search_stream(T, qps=5000.0)
        assert srv.cache.counters.hits >= 30
    np.testing.assert_array_equal(got.idx, want.idx)
    assert np.array_equal(got.dist, want.dist)
    assert got.n_shards == 3  # sharded fields still stamped
    assert got.cache_hits == srv.cache.counters.hits


# ------------------------------------------------- report + obs round-trip


def test_stream_report_roundtrips_cache_fields():
    rep = StreamReport(
        name="s",
        n_queries=10,
        cache_hits=6,
        cache_misses=4,
        cache_rejects=3,
        cache_hit_rate=0.6,
    )
    back = StreamReport.from_dict(rep.to_dict())
    assert back.cache_hits == 6
    assert back.cache_misses == 4
    assert back.cache_rejects == 3
    assert back.cache_hit_rate == pytest.approx(0.6)
    assert "semantic cache: 6 hits" in back.summary()


def test_stream_report_degrades_on_old_payloads():
    # payloads serialized before the cache fields existed load cleanly
    old = StreamReport(name="old", n_queries=5).to_dict()
    for key in ("cache_hits", "cache_misses", "cache_rejects",
                "cache_hit_rate"):
        old.pop(key)
    back = StreamReport.from_dict(old)
    assert back.cache_hits == 0 and back.cache_hit_rate == 0.0
    assert "semantic cache" not in back.summary()


def test_cache_collectors_expose_gauges(rng):
    X = rng.normal(size=(200, 4))
    idx = ExactRBC(seed=0).build(X)
    cache = ProximityCache(idx, 2)
    q = rng.normal(size=(1, 4))
    d, i = idx.query(q, 3)
    cache.admit(q, d, i, now=0.0)
    cache.lookup(q, now=0.0)
    reg = MetricsRegistry()
    install_cache_collectors(cache, reg)
    snap = reg.snapshot()
    flat = {name: entry for name, entry in snap.items()}
    assert flat["repro_semantic_cache_hits_total"]["values"][""] == 1
    assert flat["repro_semantic_cache_entries"]["values"][""] == 1
    assert flat["repro_semantic_cache_hit_rate"]["values"][""] == 1.0
