"""Mahalanobis metric."""

import numpy as np
import pytest
from scipy.spatial.distance import cdist

from repro.core import ExactRBC
from repro.eval import results_match_exactly
from repro.metrics import Mahalanobis, check_metric_axioms
from repro.parallel import bf_knn


@pytest.fixture
def VI(rng):
    A = rng.normal(size=(5, 5))
    return A @ A.T + 0.5 * np.eye(5)


def test_matches_scipy(VI, rng):
    Q = rng.normal(size=(8, 5))
    X = rng.normal(size=(13, 5))
    D = Mahalanobis(VI).pairwise(Q, X)
    np.testing.assert_allclose(D, cdist(Q, X, "mahalanobis", VI=VI), rtol=1e-8)


def test_identity_matrix_is_euclidean(rng):
    Q = rng.normal(size=(4, 3))
    X = rng.normal(size=(6, 3))
    D = Mahalanobis(np.eye(3)).pairwise(Q, X)
    np.testing.assert_allclose(D, cdist(Q, X, "euclidean"), atol=1e-9)


def test_axioms(VI, rng):
    X = rng.normal(size=(50, 5))
    check_metric_axioms(Mahalanobis(VI), X, n_triples=60, rng=rng)


def test_from_data_whitens(rng):
    # strongly anisotropic data: Mahalanobis from the data's covariance
    # should equalize a stretched axis
    X = rng.normal(size=(500, 2)) * np.array([100.0, 1.0])
    m = Mahalanobis.from_data(X)
    a = m.pairwise(np.array([[0.0, 0.0]]), np.array([[100.0, 0.0]]))[0, 0]
    b = m.pairwise(np.array([[0.0, 0.0]]), np.array([[0.0, 1.0]]))[0, 0]
    assert a == pytest.approx(b, rel=0.2)


def test_validation(rng):
    with pytest.raises(ValueError, match="square"):
        Mahalanobis(np.zeros((2, 3)))
    with pytest.raises(ValueError, match="symmetric"):
        Mahalanobis(np.array([[1.0, 2.0], [0.0, 1.0]]))
    with pytest.raises(ValueError, match="positive definite"):
        Mahalanobis(np.array([[1.0, 0.0], [0.0, -1.0]]))
    m = Mahalanobis(np.eye(3))
    with pytest.raises(ValueError, match="fitted for d=3"):
        m.pairwise(rng.normal(size=(2, 4)), rng.normal(size=(2, 4)))


def test_exact_rbc_under_mahalanobis(VI, rng):
    X = rng.normal(size=(600, 5))
    Q = rng.normal(size=(20, 5))
    metric = Mahalanobis(VI)
    true_d, _ = bf_knn(Q, X, metric, k=2)
    rbc = ExactRBC(metric=Mahalanobis(VI), seed=0).build(X)
    d, _ = rbc.query(Q, k=2)
    assert results_match_exactly(d, true_d)
