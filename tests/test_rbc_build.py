"""RBC construction invariants for both build variants."""

import numpy as np
import pytest

from repro.core import ExactRBC, OneShotRBC, sample_representatives


def test_sample_bernoulli_expected_count(rng):
    sizes = [
        sample_representatives(10_000, 500, rng, scheme="bernoulli").size
        for _ in range(20)
    ]
    assert 350 < np.mean(sizes) < 650  # mean 500, sd ~22


def test_sample_bernoulli_never_empty(rng):
    for _ in range(50):
        ids = sample_representatives(50, 1, rng, scheme="bernoulli")
        assert ids.size >= 1


def test_sample_exact_count(rng):
    ids = sample_representatives(1000, 37, rng, scheme="exact")
    assert ids.size == 37
    assert np.unique(ids).size == 37
    assert ids.min() >= 0 and ids.max() < 1000


def test_sample_validation(rng):
    with pytest.raises(ValueError):
        sample_representatives(10, 0, rng)
    with pytest.raises(ValueError):
        sample_representatives(10, 11, rng)
    with pytest.raises(ValueError):
        sample_representatives(10, 5, rng, scheme="nope")


def test_exact_build_lists_partition_database(small_vectors):
    X, _ = small_vectors
    rbc = ExactRBC(seed=0, rep_scheme="exact").build(X, n_reps=20)
    all_ids = np.concatenate(rbc.lists)
    assert all_ids.size == X.shape[0]
    assert np.array_equal(np.sort(all_ids), np.arange(X.shape[0]))


def test_exact_build_assigns_to_nearest_rep(small_vectors):
    X, _ = small_vectors
    rbc = ExactRBC(seed=0, rep_scheme="exact").build(X, n_reps=15)
    m = rbc.metric
    D = m.pairwise(X, rbc.rep_data)
    nearest = D.min(axis=1)
    for j, lst in enumerate(rbc.lists):
        for x_id in lst:
            assert D[x_id, j] == pytest.approx(nearest[x_id], abs=1e-9)


def test_lists_sorted_and_radii_match(small_vectors):
    X, _ = small_vectors
    for rbc in (
        ExactRBC(seed=1, rep_scheme="exact").build(X, n_reps=12),
        OneShotRBC(seed=1, rep_scheme="exact").build(X, n_reps=12, s=30),
    ):
        for dists, radius in zip(rbc.list_dists, rbc.radii):
            if dists.size:
                assert (np.diff(dists) >= 0).all()
                assert radius == pytest.approx(dists.max())


def test_oneshot_lists_have_size_s(small_vectors):
    X, _ = small_vectors
    rbc = OneShotRBC(seed=0, rep_scheme="exact").build(X, n_reps=10, s=25)
    for lst in rbc.lists:
        assert lst.size == 25


def test_oneshot_lists_are_true_neighbors(small_vectors):
    X, _ = small_vectors
    rbc = OneShotRBC(seed=0, rep_scheme="exact").build(X, n_reps=8, s=10)
    m = rbc.metric
    D = m.pairwise(rbc.rep_data, X)
    for j in range(rbc.n_reps):
        true_set_d = np.sort(D[j])[:10]
        np.testing.assert_allclose(np.sort(rbc.list_dists[j]), true_set_d)


def test_rep_owns_itself_exact(small_vectors):
    X, _ = small_vectors
    rbc = ExactRBC(seed=0, rep_scheme="exact").build(X, n_reps=10)
    for j, rep_id in enumerate(rbc.rep_ids):
        assert rep_id in rbc.lists[j]


def test_build_counts_evals(small_vectors):
    X, _ = small_vectors
    rbc = ExactRBC(seed=0, rep_scheme="exact").build(X, n_reps=10)
    # BF(X, R): n * n_reps evaluations
    assert rbc.build_stats.build_evals == X.shape[0] * rbc.n_reps


def test_build_deterministic_given_seed(small_vectors):
    X, _ = small_vectors
    a = ExactRBC(seed=42).build(X)
    b = ExactRBC(seed=42).build(X)
    np.testing.assert_array_equal(a.rep_ids, b.rep_ids)
    for la, lb in zip(a.lists, b.lists):
        np.testing.assert_array_equal(la, lb)


def test_query_before_build_raises():
    with pytest.raises(RuntimeError, match="build"):
        ExactRBC().query(np.zeros((1, 2)))


def test_empty_database_raises():
    with pytest.raises(ValueError, match="empty"):
        ExactRBC().build(np.empty((0, 3)))
    with pytest.raises(ValueError, match="empty"):
        OneShotRBC().build(np.empty((0, 3)))


def test_exact_rejects_non_metric(small_vectors):
    X, _ = small_vectors
    with pytest.raises(ValueError, match="triangle"):
        ExactRBC(metric="sqeuclidean").build(X)


def test_oneshot_s_validation(small_vectors):
    X, _ = small_vectors
    with pytest.raises(ValueError, match="s"):
        OneShotRBC(seed=0).build(X, n_reps=5, s=0)
    with pytest.raises(ValueError, match="s"):
        OneShotRBC(seed=0).build(X, n_reps=5, s=X.shape[0] + 1)


def test_memory_footprint_positive(small_vectors):
    X, _ = small_vectors
    rbc = ExactRBC(seed=0).build(X)
    assert rbc.memory_footprint() > 0


def test_build_stats_list_summary(small_vectors):
    X, _ = small_vectors
    rbc = ExactRBC(seed=0, rep_scheme="exact").build(X, n_reps=10)
    bs = rbc.build_stats
    assert bs.n_points == X.shape[0]
    assert bs.n_reps == 10
    assert bs.max_list >= bs.mean_list > 0


def test_repr_mentions_state(small_vectors):
    X, _ = small_vectors
    rbc = ExactRBC(seed=0)
    assert "unbuilt" in repr(rbc)
    rbc.build(X)
    assert f"n={X.shape[0]}" in repr(rbc)
