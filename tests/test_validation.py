"""Input validation and failure injection."""

import numpy as np
import pytest

from repro.core import ExactRBC, OneShotRBC
from repro.metrics import Euclidean, check_metric_axioms


def test_nan_database_rejected(rng):
    X = rng.normal(size=(100, 4))
    X[17, 2] = np.nan
    with pytest.raises(ValueError, match="non-finite"):
        ExactRBC(seed=0).build(X)
    with pytest.raises(ValueError, match="non-finite"):
        OneShotRBC(seed=0).build(X)


def test_inf_database_rejected(rng):
    X = rng.normal(size=(50, 3))
    X[0, 0] = np.inf
    with pytest.raises(ValueError, match="non-finite"):
        ExactRBC(seed=0).build(X)


def test_validate_reports_point_count(rng):
    X = rng.normal(size=(20, 2))
    X[3] = np.nan
    X[7] = np.inf
    with pytest.raises(ValueError, match="2 point"):
        Euclidean().validate(X)


def test_clean_data_passes(rng):
    Euclidean().validate(rng.normal(size=(10, 3)))  # no raise


def test_broken_metric_detected_by_axiom_checker(rng):
    """A user-supplied 'metric' violating the triangle inequality is the
    failure mode that silently breaks exact search; the checker is the
    defense the docs point to."""

    class Broken(Euclidean):
        def _pairwise(self, Q, X):
            return super()._pairwise(Q, X) ** 2  # sq-euclidean in disguise

    X = np.array([[0.0], [1.0], [2.0]])
    with pytest.raises(AssertionError, match="triangle"):
        check_metric_axioms(Broken(), X, n_triples=200, rng=rng)


def test_exact_rejects_flagged_non_metric_upfront(rng):
    # the is_true_metric flag is honoured before any work happens
    with pytest.raises(ValueError, match="triangle"):
        ExactRBC(metric="sqeuclidean").build(rng.normal(size=(50, 2)))
