"""Synthetic generators, projection, and the dataset registry."""

import numpy as np
import pytest

from repro.data import (
    DATASETS,
    dataset_names,
    gaussian_mixture,
    grid_l1,
    image_patches,
    jl_dimension,
    load,
    manifold,
    random_geometric_graph,
    random_projection,
    random_strings,
    robot_arm,
    table1_rows,
    uniform_hypercube,
)


def test_gaussian_mixture_shape_and_determinism():
    a = gaussian_mixture(100, 5, seed=3)
    b = gaussian_mixture(100, 5, seed=3)
    assert a.shape == (100, 5)
    np.testing.assert_array_equal(a, b)
    c = gaussian_mixture(100, 5, seed=4)
    assert not np.array_equal(a, c)


def test_uniform_hypercube_range():
    X = uniform_hypercube(200, 3, seed=0)
    assert X.shape == (200, 3)
    assert X.min() >= 0.0 and X.max() <= 1.0


def test_manifold_shape_and_validation():
    X = manifold(50, 10, 2, seed=0)
    assert X.shape == (50, 10)
    with pytest.raises(ValueError):
        manifold(50, 5, 6)
    with pytest.raises(ValueError):
        manifold(50, 5, 0)


def test_manifold_intrinsic_dim_governs_neighborhoods():
    # with the same n, a 1-d manifold has much closer NNs than a 6-d one
    from repro.parallel import bf_knn

    def nn_dist(di):
        X = manifold(2000, 12, di, noise=0.0, seed=1)
        d, _ = bf_knn(X[:50], X[50:], k=1)
        return float(np.median(d))

    assert nn_dist(1) < 0.5 * nn_dist(6)


def test_grid_l1_lattice():
    X = grid_l1(3, 2)
    assert X.shape == (9, 2)
    assert set(map(tuple, X)) == {(i, j) for i in range(3) for j in range(3)}


def test_grid_l1_size_guard():
    with pytest.raises(ValueError):
        grid_l1(100, 4)


def test_robot_arm_shape_and_smoothness():
    X = robot_arm(500, n_joints=7, seed=0)
    assert X.shape == (500, 21)
    # consecutive trajectory samples are close: it's a physical trace
    steps = np.linalg.norm(np.diff(X[:, :7], axis=0), axis=1)
    assert np.median(steps) < 0.5


def test_image_patches_shape_and_correlation():
    X = image_patches(50, patch=8, seed=0)
    assert X.shape == (50, 64)
    # neighbouring pixels in a patch are correlated (smooth fields)
    corr = np.corrcoef(X[:, 0], X[:, 1])[0, 1]
    assert corr > 0.5


def test_random_strings_properties():
    S = random_strings(100, seed=0, min_len=5, max_len=10)
    assert len(S) == 100
    assert all(set(s) <= set("acgt") for s in S)
    assert S == random_strings(100, seed=0, min_len=5, max_len=10)


def test_random_geometric_graph_connected():
    import networkx as nx

    g, pos = random_geometric_graph(80, seed=0)
    assert g.number_of_nodes() == 80
    assert nx.is_connected(g)
    assert pos.shape == (80, 2)


def test_jl_dimension_formula():
    assert jl_dimension(1000, eps=0.5) == int(np.ceil(8 * np.log(1000) / 0.25))
    with pytest.raises(ValueError):
        jl_dimension(1000, eps=0.0)
    with pytest.raises(ValueError):
        jl_dimension(1)


def test_random_projection_preserves_distances(rng):
    X = rng.normal(size=(60, 300))
    P, G = random_projection(X, 120, seed=0)
    assert P.shape == (60, 120)
    assert G.shape == (300, 120)
    from scipy.spatial.distance import pdist

    orig = pdist(X)
    proj = pdist(P)
    ratios = proj / orig
    # JL: distortions concentrate near 1
    assert 0.7 < ratios.min() and ratios.max() < 1.4


def test_random_projection_applies_to_queries(rng):
    X = rng.normal(size=(10, 50))
    P, G = random_projection(X, 5, seed=0)
    np.testing.assert_allclose(X @ G, P)


def test_registry_matches_table1():
    assert dataset_names() == [
        "bio", "cov", "phy", "robot", "tiny4", "tiny8", "tiny16", "tiny32",
    ]
    assert DATASETS["bio"].paper_n == 200_000
    assert DATASETS["bio"].dim == 74
    assert DATASETS["robot"].dim == 21
    assert DATASETS["tiny32"].dim == 32


def test_load_shapes_and_split():
    X, Q = load("phy", scale=0.01, n_queries=50)
    assert X.shape == (1000, 78)
    assert Q.shape == (50, 78)


def test_load_deterministic():
    X1, Q1 = load("bio", scale=0.005, n_queries=10)
    X2, Q2 = load("bio", scale=0.005, n_queries=10)
    np.testing.assert_array_equal(X1, X2)
    np.testing.assert_array_equal(Q1, Q2)


def test_load_max_n_cap():
    X, _ = load("robot", scale=0.01, n_queries=10, max_n=500)
    assert X.shape[0] == 500


def test_load_unknown_and_bad_scale():
    with pytest.raises(ValueError, match="unknown dataset"):
        load("mnist")
    with pytest.raises(ValueError, match="scale"):
        load("bio", scale=0.0)


def test_table1_rows_structure():
    rows = table1_rows(scale=0.01)
    assert len(rows) == 8
    name, paper_n, gen_n, dim, idim = rows[0]
    assert name == "bio" and paper_n == 200_000 and dim == 74
    assert gen_n == 2000
