"""Expansion-rate estimation."""

import numpy as np
import pytest

from repro.data import grid_l1, manifold, uniform_hypercube
from repro.dimension import ExpansionEstimate, doubling_dimension, estimate_expansion_rate


def test_grid_expansion_near_2_pow_d():
    # Definition 1's motivating example: the l1 grid in R^d has c = 2^d
    for d, lo, hi in [(1, 1.5, 3.0), (2, 2.5, 7.0)]:
        side = {1: 512, 2: 45}[d]
        X = grid_l1(side, d)
        est = estimate_expansion_rate(X, "manhattan", n_centers=40, seed=0)
        assert lo <= est.c <= hi, f"d={d}: c={est.c}"


def test_higher_intrinsic_dim_larger_c():
    cs = []
    for di in (1, 2, 4):
        X = manifold(4000, 8, di, noise=0.0, seed=0)
        cs.append(estimate_expansion_rate(X, n_centers=40, seed=1).c)
    assert cs[0] < cs[1] < cs[2]


def test_log2c_reads_as_dimension():
    X = uniform_hypercube(5000, 2, seed=0)
    d_est = doubling_dimension(X, n_centers=50, seed=0)
    assert 1.0 < d_est < 4.0


def test_estimate_fields_consistent():
    X = uniform_hypercube(1000, 3, seed=0)
    est = estimate_expansion_rate(X, seed=0)
    assert isinstance(est, ExpansionEstimate)
    assert est.c_median <= est.c <= est.c_max
    assert est.c >= 1.0
    assert est.log2_c == pytest.approx(np.log2(est.c))


def test_validation(rng):
    with pytest.raises(ValueError):
        estimate_expansion_rate(rng.normal(size=(5, 2)))
    with pytest.raises(ValueError):
        estimate_expansion_rate(rng.normal(size=(100, 2)), quantile=0.0)


def test_degenerate_data_raises():
    X = np.zeros((100, 3))  # all points identical: no positive radii
    with pytest.raises(ValueError, match="degenerate"):
        estimate_expansion_rate(X)


def test_works_on_string_metric():
    from repro.data import random_strings
    from repro.metrics import EditDistance

    S = random_strings(300, seed=0)
    est = estimate_expansion_rate(S, EditDistance(), n_centers=20, seed=0)
    assert est.c >= 1.0
