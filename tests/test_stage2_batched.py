"""Batched stage 2 of the exact search vs a slow per-query reference.

The batched kernels (vectorized pruning, grouped scans, seed reuse) must be
*semantically invisible*: identical ``(dist, idx)`` answers and identical
batching-invariant ``SearchStats`` counters (``rule_counts()``) compared to
a straightforward per-query implementation of the same rules.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import ExactRBC
from repro.parallel import bf_knn
from repro.parallel.reduce import EMPTY_IDX


def reference_query(index, Q, k, *, use_psi_rule=True, use_3gamma_rule=True,
                    use_trim=True, approx_eps=0.0):
    """Per-query mirror of the exact stage 2 (the pre-batching formulation).

    Semantics: psi / 3-gamma rules per representative, Claim-2 prefix trim,
    candidates gathered per query, seeded with the k nearest representatives
    (their stage-1 distances reused, like the batched kernel).  Returns
    ``(dist, idx, counts)`` with ``counts`` matching ``SearchStats.rule_counts``.
    """
    metric = index.metric
    Qb = Q if isinstance(Q, (list, np.ndarray)) and np.ndim(Q) != 1 else metric._as_batch(Q)
    m = metric.length(Qb)
    nr = index.n_reps
    D_R = metric.pairwise(Qb, index.rep_data) if isinstance(Qb, np.ndarray) else \
        np.stack([metric.pairwise(metric.take(Qb, [i]), index.rep_data)[0]
                  for i in range(m)])
    if nr >= k:
        gamma = np.partition(D_R, k - 1, axis=1)[:, k - 1]
    else:
        gamma = np.full(m, np.inf)
    gamma_eff = gamma / (1.0 + approx_eps)

    counts = dict(n_queries=m, pruned_by_psi=0, pruned_by_3gamma=0,
                  trimmed_by_4gamma=0, candidates_examined=0)
    dists = np.full((m, k), np.inf)
    idxs = np.full((m, k), EMPTY_IDX, dtype=np.int64)
    for i in range(m):
        d_row = D_R[i]
        keep = np.ones(nr, dtype=bool)
        if use_psi_rule:
            kept = d_row - index.radii < gamma_eff[i]
            counts["pruned_by_psi"] += int(nr - kept.sum())
            keep &= kept
        if use_3gamma_rule:
            kept = d_row <= 3.0 * gamma[i]
            counts["pruned_by_3gamma"] += int(np.count_nonzero(keep & ~kept))
            keep &= kept
        parts = []
        for j in np.flatnonzero(keep):
            lst = index.lists[j]
            if lst.size == 0:
                continue
            if use_trim:
                cut = np.searchsorted(
                    index.list_dists[j], d_row[j] + gamma_eff[i], side="right"
                )
                counts["trimmed_by_4gamma"] += int(lst.size - cut)
                parts.append(lst[:cut])
            else:
                parts.append(lst)
        kk = min(k, nr)
        seed_pos = np.argpartition(d_row, kk - 1)[:kk]
        scanned = (np.concatenate(parts) if parts
                   else np.empty(0, dtype=np.int64))
        extra = seed_pos[~np.isin(index.rep_ids[seed_pos], scanned)]
        counts["candidates_examined"] += int(scanned.size + extra.size)

        if scanned.size:
            cd = metric.pairwise(
                metric.take(Qb, [i]), metric.take(index.X, scanned)
            )[0]
        else:
            cd = np.empty(0)
        all_d = np.concatenate([cd, d_row[extra]])
        all_i = np.concatenate([scanned, index.rep_ids[extra]])
        order = np.argsort(all_d, kind="stable")[:k]
        dists[i, : order.size] = all_d[order]
        idxs[i, : order.size] = all_i[order]
    return dists, idxs, counts


FLAGS = [
    dict(),
    dict(use_psi_rule=False),
    dict(use_3gamma_rule=False),
    dict(use_trim=False),
    dict(use_psi_rule=False, use_3gamma_rule=False, use_trim=False),
]


@pytest.mark.parametrize("metric", ["euclidean", "manhattan", "chebyshev"])
@pytest.mark.parametrize("flags", FLAGS)
def test_batched_matches_reference_rules(metric, flags):
    rng = np.random.default_rng(5)
    X = rng.normal(size=(600, 5))
    Q = rng.normal(size=(40, 5))
    index = ExactRBC(metric=metric, seed=1).build(X)
    d, i = index.query(Q, k=3, **flags)
    rd, ri, rc = reference_query(index, Q, 3, **flags)
    np.testing.assert_allclose(d, rd, rtol=1e-9, atol=1e-9)
    np.testing.assert_array_equal(i, ri)
    assert index.last_stats.rule_counts() == rc


@settings(max_examples=25, deadline=None)
@given(
    seed=st.integers(0, 10_000),
    k=st.integers(1, 6),
    approx_eps=st.sampled_from([0.0, 0.1, 1.0]),
    n_reps=st.integers(1, 80),
    flag_idx=st.integers(0, len(FLAGS) - 1),
)
def test_property_batched_equals_reference(seed, k, approx_eps, n_reps, flag_idx):
    rng = np.random.default_rng(seed)
    X = rng.normal(size=(300, 3))
    Q = rng.normal(size=(17, 3))
    flags = FLAGS[flag_idx]
    index = ExactRBC(seed=seed, rep_scheme="exact").build(X, n_reps=n_reps)
    d, i = index.query(Q, k=k, approx_eps=approx_eps, **flags)
    rd, ri, rc = reference_query(index, Q, k, approx_eps=approx_eps, **flags)
    np.testing.assert_allclose(d, rd, rtol=1e-9, atol=1e-9)
    np.testing.assert_array_equal(i, ri)
    assert index.last_stats.rule_counts() == rc


def test_batched_matches_reference_edit_distance():
    # integer-valued metric: distance ties everywhere, so compare distances
    # and counters (ids are ambiguous under ties by design)
    from repro.data import random_strings
    from repro.metrics import EditDistance

    S = random_strings(250, seed=0)
    Q = random_strings(12, seed=1)
    index = ExactRBC(metric=EditDistance(), seed=0).build(S)
    d, _ = index.query(Q, k=3)
    rd, _, rc = reference_query(index, Q, 3)
    np.testing.assert_array_equal(d, rd)
    assert index.last_stats.rule_counts() == rc


def test_batched_candidate_count_preserved_on_headline_config():
    # the batched scan must examine exactly the candidates the per-query
    # formulation would (no silent widening from group padding)
    rng = np.random.default_rng(0)
    X = rng.normal(size=(4000, 4))
    Q = rng.normal(size=(300, 4))
    index = ExactRBC(seed=0).build(X)
    d, i = index.query(Q, k=1)
    rd, ri, rc = reference_query(index, Q, 1)
    np.testing.assert_allclose(d, rd, rtol=1e-9, atol=1e-9)
    np.testing.assert_array_equal(i, ri)
    assert index.last_stats.rule_counts() == rc
    true_d, _ = bf_knn(Q, X, k=1)
    np.testing.assert_allclose(d, true_d, rtol=1e-9, atol=1e-7)


def test_batched_after_insert_delete():
    # dynamic updates shuffle list membership; the rep-position map used by
    # the seed dedup must stay consistent
    rng = np.random.default_rng(3)
    X = rng.normal(size=(500, 4))
    Q = rng.normal(size=(20, 4))
    index = ExactRBC(seed=0, rep_scheme="exact").build(X, n_reps=25)
    for p in rng.normal(size=(10, 4)):
        index.insert(p)
    victims = [int(g) for g in rng.choice(500, size=5, replace=False)
               if g not in set(index.rep_ids.tolist())][:3]
    for gid in victims:
        index.delete(gid)
    d, i = index.query(Q, k=4)
    rd, ri, rc = reference_query(index, Q, 4)
    np.testing.assert_allclose(d, rd, rtol=1e-9, atol=1e-9)
    np.testing.assert_array_equal(i, ri)
    assert index.last_stats.rule_counts() == rc


def test_batched_thread_executor_same_stats(small_vectors):
    X, Q = small_vectors
    serial = ExactRBC(seed=0).build(X)
    d1, i1 = serial.query(Q, k=3)
    c1 = serial.last_stats.rule_counts()
    threaded = ExactRBC(seed=0, executor="threads").build(X)
    d2, i2 = threaded.query(Q, k=3)
    c2 = threaded.last_stats.rule_counts()
    np.testing.assert_allclose(d1, d2)
    np.testing.assert_array_equal(i1, i2)
    assert c1 == c2
