"""Property-based tests across the search structures.

These complement the per-structure suites with randomized cross-checks:
every exact structure must agree with brute force on arbitrary data, and
the approximate structures must respect their contracts.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.baselines import GNAT, BallTree, CoverTree, KDTree, VPTree
from repro.core import ExactRBC, OneShotRBC
from repro.parallel import bf_knn

FINITE = st.floats(min_value=-100, max_value=100, allow_nan=False)
SMALL_DATA = arrays(
    np.float64, st.tuples(st.integers(10, 50), st.integers(1, 4)),
    elements=FINITE,
)


@settings(max_examples=20, deadline=None)
@given(SMALL_DATA, st.integers(1, 3), st.integers(0, 999))
def test_property_all_exact_structures_agree(X, k, seed):
    Q = X[:: max(1, X.shape[0] // 5)]
    ref, _ = bf_knn(Q, X, k=k)
    for index in (
        ExactRBC(seed=seed),
        CoverTree(),
        KDTree(leaf_size=4),
        BallTree(leaf_size=4, seed=seed),
        VPTree(leaf_size=4, seed=seed),
        GNAT(arity=3, leaf_size=6, seed=seed),
    ):
        index.build(X)
        d, _ = index.query(Q, k=k)
        np.testing.assert_allclose(
            d, ref, atol=2e-5, err_msg=type(index).__name__
        )


@settings(max_examples=20, deadline=None)
@given(SMALL_DATA, st.integers(0, 999))
def test_property_oneshot_never_beats_optimal(X, seed):
    # the one-shot answer is drawn from the database, so its distance can
    # never be below the true NN distance (sanity for the merge logic)
    Q = X[:5]
    true_d, _ = bf_knn(Q, X, k=1)
    rbc = OneShotRBC(seed=seed).build(X)
    d, i = rbc.query(Q, k=1)
    assert (d[:, 0] >= true_d[:, 0] - 2e-5).all()
    # and every returned index is a real database id
    assert ((i >= 0) & (i < X.shape[0])).all()


@settings(max_examples=20, deadline=None)
@given(SMALL_DATA, st.floats(min_value=0.0, max_value=3.0), st.integers(0, 99))
def test_property_approx_contract(X, eps, seed):
    Q = X[:4] + 0.01
    true_d, _ = bf_knn(Q, X, k=1)
    rbc = ExactRBC(seed=seed).build(X)
    d, _ = rbc.query(Q, k=1, approx_eps=eps)
    assert (d[:, 0] <= (1 + eps) * true_d[:, 0] + 2e-5).all()


@settings(max_examples=15, deadline=None)
@given(SMALL_DATA, st.floats(min_value=0.1, max_value=20.0))
def test_property_range_query_complete(X, eps):
    from repro.parallel import bf_range

    Q = X[:3]
    rbc = ExactRBC(seed=0).build(X)
    got = rbc.range_query(Q, eps)
    expect = bf_range(Q, X, eps)
    for (gd, gi), (ed, ei) in zip(got, expect):
        assert set(gi.tolist()) == set(ei.tolist())


@settings(max_examples=20, deadline=None)
@given(SMALL_DATA, st.integers(1, 4), st.integers(0, 99))
def test_property_returned_distances_are_real(X, k, seed):
    # every (dist, idx) pair the index returns must satisfy
    # dist == rho(q, X[idx]) — guards against bookkeeping bugs
    Q = X[:4]
    rbc = ExactRBC(seed=seed).build(X)
    d, i = rbc.query(Q, k=k)
    m = rbc.metric
    for r in range(Q.shape[0]):
        for c in range(k):
            if i[r, c] >= 0:
                true = m.pairwise(Q[r : r + 1], X[i[r, c]][None])[0, 0]
                # abs tol covers sq-euclidean cancellation noise, which
                # differs between block shapes for the same pair
                assert d[r, c] == pytest.approx(true, abs=1e-5)
