"""Dynamic insert/delete on built RBC indexes."""

import numpy as np
import pytest

from repro.core import ExactRBC, OneShotRBC
from repro.eval import results_match_exactly
from repro.metrics import EditDistance
from repro.parallel import bf_knn


def active_brute(index, Q, k):
    """Ground truth restricted to the index's live points."""
    ids = index.active_ids
    return bf_knn(Q, index.X, index.metric, k=k, ids=ids)


def test_exact_insert_found_and_exact(small_vectors, rng):
    X, Q = small_vectors
    idx = ExactRBC(seed=0).build(X)
    new = rng.normal(size=(10, X.shape[1]))
    gids = [idx.insert(p) for p in new]
    assert gids == list(range(X.shape[0], X.shape[0] + 10))
    # inserted points are their own nearest neighbors
    d, i = idx.query(new, k=1)
    np.testing.assert_array_equal(i[:, 0], gids)
    # and general queries remain exact over the grown database
    d, _ = idx.query(Q, k=3)
    td, _ = active_brute(idx, Q, 3)
    assert results_match_exactly(d, td)


def test_exact_insert_maintains_invariants(small_vectors, rng):
    X, _ = small_vectors
    idx = ExactRBC(seed=0, rep_scheme="exact").build(X, n_reps=12)
    for p in rng.normal(size=(20, X.shape[1])):
        idx.insert(p)
    # lists partition the active set and stay sorted with valid radii
    all_ids = np.concatenate(idx.lists)
    np.testing.assert_array_equal(np.sort(all_ids), idx.active_ids)
    for dists, radius in zip(idx.list_dists, idx.radii):
        assert (np.diff(dists) >= -1e-12).all()
        if dists.size:
            assert radius >= dists.max() - 1e-12


def test_exact_delete_point(small_vectors):
    X, Q = small_vectors
    idx = ExactRBC(seed=0).build(X)
    td, ti = bf_knn(Q, X, k=1)
    victim = int(ti[0, 0])  # delete the first query's NN
    idx.delete(victim)
    assert idx.n_active == X.shape[0] - 1
    d, i = idx.query(Q, k=2)
    assert victim not in i
    td2, _ = active_brute(idx, Q, 2)
    assert results_match_exactly(d, td2)


def test_exact_delete_representative(small_vectors):
    X, Q = small_vectors
    idx = ExactRBC(seed=0, rep_scheme="exact").build(X, n_reps=10)
    rep = int(idx.rep_ids[3])
    idx.delete(rep)
    assert idx.rep_ids.size == 9
    assert rep not in np.concatenate([lst for lst in idx.lists if lst.size])
    # orphans were reassigned to their nearest surviving representative
    D = idx.metric.pairwise(idx.metric.take(idx.X, idx.active_ids), idx.rep_data)
    nearest = D.min(axis=1)
    owner_dist = {}
    for j, lst in enumerate(idx.lists):
        for gid, dist in zip(lst, idx.list_dists[j]):
            owner_dist[int(gid)] = dist
    for row, gid in enumerate(idx.active_ids):
        assert owner_dist[int(gid)] == pytest.approx(nearest[row], abs=1e-9)
    # queries stay exact
    d, _ = idx.query(Q, k=3)
    td, _ = active_brute(idx, Q, 3)
    assert results_match_exactly(d, td)


def test_exact_delete_last_rep_rejected():
    X = np.arange(10.0)[:, None]
    idx = ExactRBC(seed=0, rep_scheme="exact").build(X, n_reps=1)
    with pytest.raises(ValueError, match="only representative"):
        idx.delete(int(idx.rep_ids[0]))


def test_delete_twice_rejected(small_vectors):
    X, _ = small_vectors
    idx = ExactRBC(seed=0).build(X)
    idx.delete(5)
    with pytest.raises(ValueError, match="deleted"):
        idx.delete(5)


def test_delete_bad_id(small_vectors):
    X, _ = small_vectors
    idx = ExactRBC(seed=0).build(X)
    with pytest.raises(ValueError):
        idx.delete(X.shape[0] + 7)


def test_insert_dimension_mismatch(small_vectors):
    X, _ = small_vectors
    idx = ExactRBC(seed=0).build(X)
    with pytest.raises(ValueError, match="dimension"):
        idx.insert(np.zeros(X.shape[1] + 1))


def test_string_database_updates_rejected():
    from repro.data import random_strings

    idx = ExactRBC(metric=EditDistance(), seed=0).build(random_strings(60))
    with pytest.raises(ValueError, match="ndarray"):
        idx.insert("acgt")
    with pytest.raises(ValueError, match="ndarray"):
        idx.delete(0)


def test_oneshot_insert_reachable(small_vectors, rng):
    X, _ = small_vectors
    idx = OneShotRBC(seed=0, rep_scheme="exact").build(X, n_reps=10, s=40)
    new = rng.normal(size=(5, X.shape[1]))
    gids = [idx.insert(p) for p in new]
    d, i = idx.query(new, k=1)
    np.testing.assert_array_equal(i[:, 0], gids)
    np.testing.assert_allclose(d[:, 0], 0.0, atol=1e-6)


def test_oneshot_insert_joins_covering_lists(small_vectors, rng):
    X, _ = small_vectors
    idx = OneShotRBC(seed=0, rep_scheme="exact").build(X, n_reps=8, s=60)
    gid = idx.insert(rng.normal(size=X.shape[1]))
    d = idx.metric.pairwise(idx.X[gid][None], idx.rep_data)[0]
    for j in range(idx.n_reps):
        in_list = gid in idx.lists[j]
        if d[j] <= idx.radii[j]:
            assert in_list, f"point inside ball {j} but not in its list"


def test_oneshot_delete_removed_everywhere(small_vectors):
    X, _ = small_vectors
    idx = OneShotRBC(seed=0, rep_scheme="exact").build(X, n_reps=8, s=80)
    # pick a point that appears in at least one list
    victim = int(idx.lists[0][0])
    idx.delete(victim)
    for lst in idx.lists:
        assert victim not in lst
    d, i = idx.query(X[victim][None], k=1)
    assert i[0, 0] != victim


def test_interleaved_churn_stays_exact(small_vectors, rng):
    X, Q = small_vectors
    idx = ExactRBC(seed=0, rep_scheme="exact").build(X, n_reps=20)
    for step in range(30):
        if step % 3 == 2:
            live = idx.active_ids
            nonrep = np.setdiff1d(live, idx.rep_ids)
            idx.delete(int(rng.choice(nonrep)))
        else:
            idx.insert(rng.normal(size=X.shape[1]))
    d, _ = idx.query(Q, k=4)
    td, _ = active_brute(idx, Q, 4)
    assert results_match_exactly(d, td)
