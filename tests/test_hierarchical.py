"""Two-level one-shot RBC."""

import numpy as np
import pytest

from repro.core.hierarchical import HierarchicalOneShotRBC
from repro.parallel import bf_knn


@pytest.fixture(scope="module")
def big_clustered():
    from repro.data import manifold

    full = manifold(30_100, 12, 3, seed=9)
    return full[:30_000], full[30_000:30_100]


def test_finds_reasonable_neighbors(big_clustered):
    X, Q = big_clustered
    true_d, _ = bf_knn(Q, X, k=1)
    h = HierarchicalOneShotRBC(seed=0).build(X)
    d, i = h.query(Q, k=1, n_probes=3)
    # routing is two-level-approximate: most queries land on the true NN,
    # the rest on a near neighbor
    hit = np.isclose(d[:, 0], true_d[:, 0], rtol=1e-9, atol=1e-9).mean()
    assert hit >= 0.6
    assert np.median(d[:, 0] / np.maximum(true_d[:, 0], 1e-12)) < 1.5


def test_self_queries_found(big_clustered):
    X, _ = big_clustered
    h = HierarchicalOneShotRBC(seed=0).build(X)
    d, i = h.query(X[:50], k=1, n_probes=3)
    assert (d[:, 0] < 1e-6).mean() >= 0.8


def test_less_work_than_flat_oneshot(big_clustered):
    from repro.core import OneShotRBC

    X, Q = big_clustered
    n = X.shape[0]
    flat = OneShotRBC(seed=0, rep_scheme="exact").build(
        X, n_reps=int(n**0.5), s=int(n**0.5)
    )
    flat.query(Q, k=1)
    flat_work = flat.last_stats.per_query_evals()
    h = HierarchicalOneShotRBC(seed=0).build(X)
    h.query(Q, k=1, n_probes=1)
    hier_work = h.last_stats.per_query_evals()
    assert hier_work < flat_work


def test_more_probes_improve_quality(big_clustered):
    X, Q = big_clustered
    true_d, _ = bf_knn(Q, X, k=1)
    h = HierarchicalOneShotRBC(seed=0).build(X)

    def hit_rate(p):
        d, _ = h.query(Q, k=1, n_probes=p)
        return np.isclose(d[:, 0], true_d[:, 0], atol=1e-9).mean()

    assert hit_rate(4) >= hit_rate(1)


def test_no_duplicate_results(big_clustered):
    X, Q = big_clustered
    h = HierarchicalOneShotRBC(seed=0).build(X)
    _, i = h.query(Q, k=5, n_probes=3)
    for row in i:
        real = [x for x in row if x >= 0]
        assert len(real) == len(set(real))


def test_stats_and_validation(big_clustered):
    X, Q = big_clustered
    h = HierarchicalOneShotRBC(seed=0)
    with pytest.raises(RuntimeError):
        h.query(Q)
    h.build(X)
    with pytest.raises(ValueError):
        h.query(Q, k=0)
    h.query(Q, k=1)
    st = h.last_stats
    assert st.n_queries == len(Q)
    assert st.stage1_evals > 0 and st.stage2_evals > 0
    with pytest.raises(ValueError):
        HierarchicalOneShotRBC().build(np.empty((0, 2)))


def test_explicit_level_parameters(big_clustered):
    X, Q = big_clustered
    h = HierarchicalOneShotRBC(seed=0).build(
        X, n_reps=900, s=120, inner_n_reps=30, inner_s=60
    )
    assert h.inner.n >= 1
    d, _ = h.query(Q[:10], k=2)
    assert d.shape == (10, 2)
