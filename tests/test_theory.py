"""Empirical checks of the paper's theory (Claims 1-2, Theorems 1-2, Lemma 1)."""

import numpy as np
import pytest

from repro.core import ExactRBC, OneShotRBC, sample_representatives
from repro.metrics import get_metric
from repro.parallel import bf_knn


def test_claim1_expected_ball_size():
    """Claim 1: E|B(q, gamma)| = n / n_r under Bernoulli sampling.

    gamma is the distance from q to its nearest representative; the number
    of database points closer than that follows a geometric law with mean
    n / n_r regardless of the data distribution.
    """
    rng = np.random.default_rng(0)
    X = rng.normal(size=(4000, 6))
    Q = rng.normal(size=(60, 6))
    n, n_r = X.shape[0], 200
    metric = get_metric("euclidean")
    D = metric.pairwise(Q, X)  # (m, n), reused across trials

    counts = []
    trial_rng = np.random.default_rng(7)
    for _ in range(30):
        reps = sample_representatives(n, n_r, trial_rng, scheme="bernoulli")
        gamma = D[:, reps].min(axis=1)
        counts.extend((D < gamma[:, None]).sum(axis=1).tolist())
    observed = np.mean(counts)
    expected = n / n_r  # = 20
    assert observed == pytest.approx(expected, rel=0.25)


def test_lemma1_owner_within_3gamma(small_vectors):
    """Lemma 1: the representative owning q's NN satisfies rho(q,r*) <= 3 gamma."""
    X, Q = small_vectors
    rbc = ExactRBC(seed=0, rep_scheme="exact").build(X, n_reps=25)
    m = rbc.metric
    D_R = m.pairwise(Q, rbc.rep_data)
    gamma = D_R.min(axis=1)
    _, nn = bf_knn(Q, X, k=1)
    owner_of = np.empty(X.shape[0], dtype=int)
    for j, lst in enumerate(rbc.lists):
        owner_of[lst] = j
    for qi in range(Q.shape[0]):
        r_star = owner_of[nn[qi, 0]]
        assert D_R[qi, r_star] <= 3.0 * gamma[qi] + 1e-9


def test_claim2_nn_within_gamma_plus_rep_distance(small_vectors):
    """Claim 2 (trim form): an NN owned by r satisfies
    rho(x, r) <= rho(q, r) + gamma, hence lies in the sorted-list prefix."""
    X, Q = small_vectors
    rbc = ExactRBC(seed=1, rep_scheme="exact").build(X, n_reps=25)
    m = rbc.metric
    D_R = m.pairwise(Q, rbc.rep_data)
    gamma = D_R.min(axis=1)
    _, nn = bf_knn(Q, X, k=1)
    owner_of = np.empty(X.shape[0], dtype=int)
    dist_to_owner = np.empty(X.shape[0])
    for j, lst in enumerate(rbc.lists):
        owner_of[lst] = j
        dist_to_owner[lst] = rbc.list_dists[j]
    for qi in range(Q.shape[0]):
        x = nn[qi, 0]
        r = owner_of[x]
        assert dist_to_owner[x] <= D_R[qi, r] + gamma[qi] + 1e-9
        # and the paper's coarser 4-gamma form
        assert dist_to_owner[x] <= 4.0 * gamma[qi] + 1e-9


def test_theorem1_stage2_work_bound(clustered):
    """Theorem 1: expected stage-2 examinations <= c^3 n / n_r.

    We check the operational half of the statement: the measured stage-2
    candidate count shrinks as n_r grows, with the n / n_r trend."""
    X, Q = clustered
    works = {}
    for n_r in (50, 200, 800):
        rbc = ExactRBC(seed=0, rep_scheme="exact").build(X, n_reps=n_r)
        rbc.query(Q, k=1)
        works[n_r] = rbc.last_stats.candidates_examined / len(Q)
    assert works[800] < works[200] < works[50]


def test_theorem1_total_work_sublinear_scaling():
    """With the standard n_r = sqrt(n), per-query work grows like sqrt(n),
    not n: quadrupling n should at most ~double the work on benign data."""
    from repro.data import manifold

    work = {}
    for n in (2000, 8000):
        full = manifold(n + 50, 10, 2, noise=0.0, seed=3)
        X, Q = full[:n], full[n:]
        rbc = ExactRBC(seed=0).build(X)  # n_reps = sqrt(n)
        rbc.query(Q, k=1)
        work[n] = rbc.last_stats.per_query_evals()
    growth = work[8000] / work[2000]
    assert growth < 3.0, f"work grew {growth:.2f}x for 4x data"


def test_theorem2_failure_rate_bounded(clustered):
    """Theorem 2's guarantee, checked end to end (same flavour as the
    one-shot test but sweeping delta)."""
    X, Q = clustered
    true_d, _ = bf_knn(Q, X, k=1)
    for delta in (0.3, 0.05):
        from repro.core import oneshot_params

        nr, s = oneshot_params(X.shape[0], c=2.0, delta=delta)
        rbc = OneShotRBC(seed=1).build(X, n_reps=nr, s=s)
        d, _ = rbc.query(Q, k=1)
        failure = float((d[:, 0] > true_d[:, 0] + 1e-9).mean())
        assert failure <= delta + 0.05


def test_oneshot_proof_step_query_near_rep_succeeds(small_vectors):
    """The key step of Theorem 2's proof: if rho(q, r) <= psi_r / 2 for the
    chosen representative, the true NN is guaranteed to be in L_r."""
    X, _ = small_vectors
    rbc = OneShotRBC(seed=0, rep_scheme="exact").build(X, n_reps=12, s=60)
    m = rbc.metric
    true_d, _ = bf_knn(X, X, k=1)  # self-queries: exact NN is the point
    D_R = m.pairwise(X, rbc.rep_data)
    choice = D_R.argmin(axis=1)
    d, _ = rbc.query(X, k=1)
    for qi in range(X.shape[0]):
        r = choice[qi]
        if D_R[qi, r] <= rbc.radii[r] / 2.0:
            assert d[qi, 0] <= true_d[qi, 0] + 1e-9
