"""Cover Tree baseline: exactness and structural invariants."""

import numpy as np
import pytest

from repro.baselines import CoverTree
from repro.eval import results_match_exactly
from repro.metrics import EditDistance
from repro.parallel import bf_knn
from repro.simulator import TraceRecorder


@pytest.mark.parametrize("k", [1, 4])
def test_exact_knn(k, small_vectors):
    X, Q = small_vectors
    true_d, _ = bf_knn(Q, X, k=k)
    ct = CoverTree().build(X)
    d, i = ct.query(Q, k=k)
    assert results_match_exactly(d, true_d)


def test_invariants_hold(small_vectors):
    X, _ = small_vectors
    ct = CoverTree().build(X)
    ct.check_invariants()


def test_duplicates(rng):
    X = np.repeat(rng.normal(size=(5, 3)), 10, axis=0)
    ct = CoverTree().build(X)
    ct.check_invariants()
    true_d, _ = bf_knn(X[:5], X, k=3)
    d, _ = ct.query(X[:5], k=3)
    assert results_match_exactly(d, true_d)


def test_depth_logarithmic_on_clustered(clustered):
    X, _ = clustered
    ct = CoverTree().build(X[:1000])
    # depth should be far below n; cover trees give O(log spread) depth
    assert ct.depth() < 60


@pytest.mark.parametrize("base", [1.5, 3.0])
def test_alternative_bases(base, small_vectors):
    X, Q = small_vectors
    true_d, _ = bf_knn(Q, X, k=2)
    ct = CoverTree(base=base).build(X)
    ct.check_invariants()
    d, _ = ct.query(Q, k=2)
    assert results_match_exactly(d, true_d)


def test_base_validation():
    with pytest.raises(ValueError):
        CoverTree(base=1.0)


def test_rejects_non_metric():
    with pytest.raises(ValueError):
        CoverTree(metric="sqeuclidean")


def test_query_before_build():
    with pytest.raises(RuntimeError):
        CoverTree().query(np.zeros((1, 2)))


def test_k_exceeds_database(rng):
    X = rng.normal(size=(4, 2))
    ct = CoverTree().build(X)
    d, i = ct.query(rng.normal(size=(1, 2)), k=7)
    assert np.isfinite(d[0, :4]).all()
    assert (i[0, 4:] == -1).all()


def test_single_point_database():
    ct = CoverTree().build(np.array([[1.0, 2.0]]))
    d, i = ct.query(np.array([[1.0, 2.0]]), k=1)
    assert i[0, 0] == 0
    assert d[0, 0] == pytest.approx(0.0, abs=1e-9)


def test_prunes_relative_to_brute(clustered):
    X, Q = clustered
    ct = CoverTree().build(X)
    ct.metric.reset_counter()
    ct.query(Q[:10], k=1)
    per_query = ct.metric.counter.n_evals / 10
    assert per_query < 0.8 * X.shape[0]  # genuinely prunes


def test_edit_distance_covertree():
    from repro.data import random_strings

    S = random_strings(200, seed=0)
    Q = random_strings(10, seed=1)
    true_d, _ = bf_knn(Q, S, EditDistance(), k=1)
    ct = CoverTree(metric=EditDistance()).build(S)
    d, _ = ct.query(Q, k=1)
    assert results_match_exactly(d, true_d)


def test_query_trace_is_branchy(small_vectors):
    X, Q = small_vectors
    ct = CoverTree().build(X)
    rec = TraceRecorder()
    ct.query(Q[:5], k=1, recorder=rec)
    ops = [op for p in rec.trace.phases for op in p.ops]
    assert ops
    assert all(op.kind == "branchy" and not op.vectorizable for op in ops)


def test_single_query_vector(small_vectors):
    X, _ = small_vectors
    ct = CoverTree().build(X)
    d, i = ct.query(X[3], k=1)
    assert i[0, 0] == 3
