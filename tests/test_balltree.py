"""Metric ball tree baseline."""

import numpy as np
import pytest

from repro.baselines import BallTree
from repro.eval import results_match_exactly
from repro.metrics import EditDistance, GraphMetric
from repro.parallel import bf_knn


@pytest.mark.parametrize("metric", ["euclidean", "manhattan", "angular"])
@pytest.mark.parametrize("k", [1, 4])
def test_exact_knn(metric, k, small_vectors):
    X, Q = small_vectors
    true_d, _ = bf_knn(Q, X, metric, k=k)
    t = BallTree(metric=metric).build(X)
    d, _ = t.query(Q, k=k)
    assert results_match_exactly(d, true_d)


@pytest.mark.parametrize("leaf_size", [1, 8, 200])
def test_leaf_sizes(leaf_size, small_vectors):
    X, Q = small_vectors
    true_d, _ = bf_knn(Q, X, k=2)
    t = BallTree(leaf_size=leaf_size).build(X)
    d, _ = t.query(Q, k=2)
    assert results_match_exactly(d, true_d)


def test_duplicates_fall_back_to_leaf(rng):
    X = np.repeat(rng.normal(size=(2, 3)), 30, axis=0)
    t = BallTree(leaf_size=4).build(X)
    true_d, _ = bf_knn(X[:2], X, k=3)
    d, _ = t.query(X[:2], k=3)
    assert results_match_exactly(d, true_d)


def test_edit_distance(rng):
    from repro.data import random_strings

    S = random_strings(150, seed=2)
    Q = random_strings(8, seed=3)
    true_d, _ = bf_knn(Q, S, EditDistance(), k=2)
    t = BallTree(metric=EditDistance()).build(S)
    d, _ = t.query(Q, k=2)
    assert results_match_exactly(d, true_d)


def test_graph_metric():
    from repro.data import random_geometric_graph

    g, _ = random_geometric_graph(120, seed=1)
    gm = GraphMetric(g)
    ids = gm.node_ids()
    X, Q = ids[:100], ids[100:]
    true_d, _ = bf_knn(Q, X, gm, k=1)
    t = BallTree(metric=GraphMetric(g)).build(X)
    d, _ = t.query(Q, k=1)
    assert results_match_exactly(d, true_d)


def test_prunes_on_clustered(clustered):
    X, Q = clustered
    t = BallTree().build(X)
    t.metric.reset_counter()
    t.query(Q[:10], k=1)
    assert t.metric.counter.n_evals / 10 < 0.9 * X.shape[0]


def test_rejects_non_metric():
    with pytest.raises(ValueError):
        BallTree(metric="sqeuclidean")


def test_validation(rng):
    with pytest.raises(ValueError):
        BallTree(leaf_size=0)
    with pytest.raises(RuntimeError):
        BallTree().query(np.zeros((1, 2)))
    with pytest.raises(ValueError):
        BallTree().build(np.empty((0, 3)))
    t = BallTree().build(rng.normal(size=(10, 2)))
    with pytest.raises(ValueError):
        t.query(np.zeros((1, 2)), k=0)
