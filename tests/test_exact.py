"""Exact RBC search: correctness guarantees under every configuration."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.core import ExactRBC
from repro.eval import distance_ratio, results_match_exactly
from repro.metrics import EditDistance, GraphMetric
from repro.parallel import bf_knn, bf_range


@pytest.mark.parametrize("k", [1, 2, 7])
@pytest.mark.parametrize("metric", ["euclidean", "manhattan", "chebyshev"])
def test_exact_matches_brute(metric, k, small_vectors):
    X, Q = small_vectors
    true_d, _ = bf_knn(Q, X, metric, k=k)
    rbc = ExactRBC(metric=metric, seed=0).build(X)
    d, i = rbc.query(Q, k=k)
    assert results_match_exactly(d, true_d)


@pytest.mark.parametrize("n_reps", [1, 3, 20, 150, 400])
def test_exact_for_any_rep_count(n_reps, small_vectors):
    X, Q = small_vectors
    true_d, _ = bf_knn(Q, X, k=2)
    rbc = ExactRBC(seed=3, rep_scheme="exact").build(X, n_reps=n_reps)
    d, _ = rbc.query(Q, k=2)
    assert results_match_exactly(d, true_d)


@pytest.mark.parametrize(
    "flags",
    [
        dict(use_psi_rule=False),
        dict(use_3gamma_rule=False),
        dict(use_trim=False),
        dict(use_psi_rule=False, use_3gamma_rule=False, use_trim=False),
    ],
)
def test_exact_with_rules_disabled(flags, small_vectors):
    X, Q = small_vectors
    true_d, _ = bf_knn(Q, X, k=3)
    rbc = ExactRBC(seed=0).build(X)
    d, _ = rbc.query(Q, k=3, **flags)
    assert results_match_exactly(d, true_d)


def test_pruning_reduces_work(clustered):
    X, Q = clustered
    rbc = ExactRBC(seed=0).build(X, n_reps=200)
    rbc.query(Q, k=1)
    with_rules = rbc.last_stats.stage2_evals
    rbc.query(Q, k=1, use_psi_rule=False, use_3gamma_rule=False, use_trim=False)
    without_rules = rbc.last_stats.stage2_evals
    assert with_rules < without_rules


def test_work_sublinear_on_clustered(clustered):
    X, Q = clustered
    rbc = ExactRBC(seed=0).build(X, n_reps=200)
    rbc.query(Q, k=1)
    assert rbc.last_stats.per_query_evals() < 0.7 * X.shape[0]


def test_duplicate_points_exact():
    X = np.repeat(np.arange(10.0)[:, None], 4, axis=0)  # every point x4
    Q = np.array([[3.1], [7.9]])
    true_d, _ = bf_knn(Q, X, k=5)
    rbc = ExactRBC(seed=0, rep_scheme="exact").build(X, n_reps=6)
    d, _ = rbc.query(Q, k=5)
    assert results_match_exactly(d, true_d)


def test_integer_grid_ties_exact():
    # lattice data has massive distance ties: the boundary cases of the
    # pruning inequalities all fire here
    from repro.data import grid_l1

    X = grid_l1(7, 2)
    Q = X[::5] + 0.5
    true_d, _ = bf_knn(Q, X, "manhattan", k=4)
    rbc = ExactRBC(metric="manhattan", seed=0).build(X)
    d, _ = rbc.query(Q, k=4)
    assert results_match_exactly(d, true_d)


def test_query_is_database_point(small_vectors):
    X, _ = small_vectors
    rbc = ExactRBC(seed=0).build(X)
    d, i = rbc.query(X[:10], k=1)
    np.testing.assert_array_equal(i[:, 0], np.arange(10))
    np.testing.assert_allclose(d[:, 0], 0.0, atol=1e-6)


def test_k_exceeds_reps_and_lists(small_vectors):
    X, Q = small_vectors
    rbc = ExactRBC(seed=0, rep_scheme="exact").build(X, n_reps=2)
    true_d, _ = bf_knn(Q, X, k=5)
    d, _ = rbc.query(Q, k=5)  # k > n_reps: gamma falls back to no pruning
    assert results_match_exactly(d, true_d)


def test_k_exceeds_database():
    X = np.arange(4.0)[:, None]
    rbc = ExactRBC(seed=0).build(X)
    d, i = rbc.query(np.array([[1.4]]), k=6)
    assert np.isfinite(d[0, :4]).all()
    assert np.isinf(d[0, 4:]).all()
    assert (i[0, 4:] == -1).all()


def test_single_query_vector(small_vectors):
    X, _ = small_vectors
    rbc = ExactRBC(seed=0).build(X)
    d, i = rbc.query(X[5], k=1)  # 1-d input
    assert d.shape == (1, 1)
    assert i[0, 0] == 5


def test_approx_eps_guarantee(clustered):
    X, Q = clustered
    true_d, _ = bf_knn(Q, X, k=1)
    rbc = ExactRBC(seed=0).build(X, n_reps=200)
    for eps in (0.1, 0.5, 2.0):
        d, _ = rbc.query(Q, k=1, approx_eps=eps)
        # every returned distance is within (1 + eps) of optimal
        assert (d[:, 0] <= (1.0 + eps) * true_d[:, 0] + 1e-9).all()
        assert distance_ratio(d, true_d) <= 1.0 + eps + 1e-9


def test_approx_eps_prunes_more(clustered):
    X, Q = clustered
    rbc = ExactRBC(seed=0).build(X, n_reps=200)
    rbc.query(Q, k=1)
    exact_work = rbc.last_stats.stage2_evals
    rbc.query(Q, k=1, approx_eps=2.0)
    approx_work = rbc.last_stats.stage2_evals
    assert approx_work <= exact_work


def test_approx_eps_validation(small_vectors):
    X, Q = small_vectors
    rbc = ExactRBC(seed=0).build(X)
    with pytest.raises(ValueError):
        rbc.query(Q, k=1, approx_eps=-0.5)


def test_bad_k(small_vectors):
    X, Q = small_vectors
    rbc = ExactRBC(seed=0).build(X)
    with pytest.raises(ValueError):
        rbc.query(Q, k=0)


def test_stats_accounting(small_vectors):
    X, Q = small_vectors
    rbc = ExactRBC(seed=0, rep_scheme="exact").build(X, n_reps=20)
    before = rbc.metric.counter.n_evals
    rbc.query(Q, k=1)
    spent = rbc.metric.counter.n_evals - before
    st_ = rbc.last_stats
    assert st_.stage1_evals == Q.shape[0] * 20
    assert st_.stage1_evals + st_.stage2_evals == spent
    assert st_.n_queries == Q.shape[0]
    assert st_.total_evals == spent


def test_range_query_matches_brute(small_vectors):
    X, Q = small_vectors
    rbc = ExactRBC(seed=0).build(X)
    for eps in (0.5, 2.0, 5.0):
        got = rbc.range_query(Q, eps)
        expect = bf_range(Q, X, eps)
        for (gd, gi), (ed, ei) in zip(got, expect):
            assert set(gi.tolist()) == set(ei.tolist())
            np.testing.assert_allclose(np.sort(gd), np.sort(ed))


def test_range_query_tiny_eps_finds_self(small_vectors):
    X, _ = small_vectors
    rbc = ExactRBC(seed=0).build(X)
    # eps slightly above the sq-euclidean cancellation noise floor
    out = rbc.range_query(X[:3], 1e-5)
    for r, (d, i) in enumerate(out):
        assert r in i.tolist()


def test_range_query_validation(small_vectors):
    X, Q = small_vectors
    rbc = ExactRBC(seed=0).build(X)
    with pytest.raises(ValueError):
        rbc.range_query(Q, -1.0)


def test_exact_on_edit_distance():
    from repro.data import random_strings

    S = random_strings(300, seed=0)
    Q = random_strings(15, seed=1)
    true_d, _ = bf_knn(Q, S, EditDistance(), k=2)
    rbc = ExactRBC(metric=EditDistance(), seed=0).build(S)
    d, _ = rbc.query(Q, k=2)
    assert results_match_exactly(d, true_d)


def test_exact_on_graph_metric():
    from repro.data import random_geometric_graph

    g, _ = random_geometric_graph(300, seed=0)
    gm = GraphMetric(g)
    ids = gm.node_ids()
    X, Q = ids[:260], ids[260:]
    true_d, _ = bf_knn(Q, X, gm, k=2)
    rbc = ExactRBC(metric=GraphMetric(g), seed=0).build(X)
    d, _ = rbc.query(Q, k=2)
    assert results_match_exactly(d, true_d)


def test_thread_executor_equivalent(small_vectors):
    X, Q = small_vectors
    serial = ExactRBC(seed=0).build(X)
    d1, _ = serial.query(Q, k=3)
    threaded = ExactRBC(seed=0, executor="threads").build(X)
    d2, _ = threaded.query(Q, k=3)
    np.testing.assert_allclose(d1, d2)


FINITE = st.floats(min_value=-50, max_value=50, allow_nan=False)


@settings(max_examples=25, deadline=None)
@given(
    arrays(np.float64, st.tuples(st.integers(20, 60), st.just(3)), elements=FINITE),
    st.integers(1, 4),
    st.integers(0, 10_000),
)
def test_property_exact_equals_brute(X, k, seed):
    Q = X[::7]
    true_d, _ = bf_knn(Q, X, k=k)
    rbc = ExactRBC(seed=seed).build(X)
    d, _ = rbc.query(Q, k=k)
    # atol covers the Gram-trick cancellation noise at coordinate scale 50
    np.testing.assert_allclose(d, true_d, rtol=1e-9, atol=2e-5)
