"""Quality observability: shadow-oracle sampling, drift, EXPLAIN, flight.

Contracts under test:

* **monitor** — the rolling :class:`QualityMonitor` fires on a windowed
  recall breach (after ``min_samples``, paced by cooldown), evicts old
  samples, and aggregates per backend/rung/cache label;
* **sampler determinism** — content-hash selection picks the *same*
  queries for the same seed and trace regardless of searcher type or
  batching, and the windowed estimate tracks exhaustive recall;
* **drift** — shifted query streams trip the live-vs-build distribution
  monitor before recall math is even consulted;
* **EXPLAIN** — per-query digests carry router scores, cache outcomes
  with radii, pruning attribution, and round-trip through dicts;
* **flight recorder** — bounded rings, breach-triggered bundles the
  ``repro report`` CLI auto-detects;
* **closed loop** — a forced recall regression (router pinned to its
  cheapest approximate rung under adversarial drift) trips the monitor,
  walks the router back up the ladder, disables the proximity cache,
  and leaves a parseable bundle behind.
"""

from __future__ import annotations

import json
import math

import numpy as np
import pytest

from repro.core import ExactRBC, OneShotRBC
from repro.index import Router
from repro.obs import (
    DriftMonitor,
    FlightRecorder,
    QualityMonitor,
    QualitySample,
    QualitySampler,
    QueryExplain,
)
from repro.parallel import bf_knn
from repro.runtime.report import StreamReport
from repro.serving import BatchPolicy, ShardedStreamingSearcher, StreamingSearcher
from repro.serving.scenarios import make_scenario


@pytest.fixture(scope="module")
def data():
    rng = np.random.default_rng(11)
    X = rng.normal(size=(500, 8))
    Q = rng.normal(size=(160, 8))
    return X, Q


@pytest.fixture(scope="module")
def exact(data):
    X, _ = data
    return ExactRBC(seed=0).build(X)


def _sample(recall, t, **kw):
    defaults = dict(
        key="00", rank_error=0.0, distance_ratio=1.0, backend="b", rung=0
    )
    defaults.update(kw)
    return QualitySample(recall=recall, t=t, **defaults)


# ------------------------------------------------------------------ monitor
class TestQualityMonitor:
    def test_breach_fires_after_min_samples(self):
        fired = []
        mon = QualityMonitor(
            target=0.9, window_s=math.inf, min_samples=4, cooldown_s=0.0
        )
        mon.on_breach(lambda m: fired.append(m.recall_estimate))
        for t in range(3):
            mon.observe(_sample(0.5, float(t)), now=float(t))
        assert not fired  # below min_samples: one bad query can't trip
        mon.observe(_sample(0.5, 3.0), now=3.0)
        assert len(fired) == 1 and fired[0] == pytest.approx(0.5)
        assert mon.n_breaches == 1
        assert mon.last_fired_at == 3.0

    def test_cooldown_paces_firings(self):
        fired = []
        mon = QualityMonitor(
            target=0.9, window_s=math.inf, min_samples=1, cooldown_s=10.0
        )
        mon.on_breach(lambda m: fired.append(1))
        for t in (0.0, 1.0, 2.0, 11.0):
            mon.observe(_sample(0.0, t), now=t)
        assert len(fired) == 2  # t=0 fires, 1/2 cooled down, 11 fires

    def test_window_eviction_recovers_estimate(self):
        mon = QualityMonitor(target=0.5, window_s=5.0, min_samples=99)
        mon.observe(_sample(0.0, 0.0), now=0.0)
        assert mon.recall_estimate == 0.0
        mon.observe(_sample(1.0, 10.0), now=10.0)  # evicts the t=0 sample
        assert mon.n_window == 1
        assert mon.recall_estimate == 1.0
        assert mon.n_samples == 2  # lifetime counter survives eviction

    def test_empty_window_reads_perfect(self):
        mon = QualityMonitor()
        assert mon.recall_estimate == 1.0
        assert mon.rank_error_mean == 0.0
        assert mon.distance_ratio_mean == 1.0

    def test_labels_aggregate_by_backend_rung_hit(self):
        mon = QualityMonitor(window_s=math.inf)
        mon.observe(_sample(1.0, 0.0, backend="rbc-exact"), now=0.0)
        mon.observe(
            _sample(0.5, 1.0, backend="rpforest", rung=2), now=1.0
        )
        mon.observe(
            _sample(1.0, 2.0, backend="cache", cache_hit=True), now=2.0
        )
        by = mon.by_label()
        assert by["rbc-exact|rung0|miss"] == {"n": 1, "recall": 1.0}
        assert by["rpforest|rung2|miss"] == {"n": 1, "recall": 0.5}
        assert by["cache|rung0|hit"]["n"] == 1
        rep = mon.report()
        assert rep["n_samples"] == 3
        assert "recall est" in mon.summary()

    def test_validation(self):
        with pytest.raises(ValueError):
            QualityMonitor(target=0.0)
        with pytest.raises(ValueError):
            QualityMonitor(window_s=0.0)
        with pytest.raises(ValueError):
            QualityMonitor(min_samples=0)


# ------------------------------------------------------------------ sampler
class TestSamplerDeterminism:
    def _zipf_trace(self, data, *, n_queries=300, seed=21):
        X, Q = data
        return make_scenario(
            "zipfian", Q, n_queries=n_queries, qps=4000.0, seed=seed
        )

    def test_same_seed_same_trace_same_sample_set(self, data, exact):
        X, _ = data
        trace = self._zipf_trace(data)

        def run(make_searcher, policy):
            sampler = QualitySampler(exact, 3, fraction=0.25, seed=9)
            with make_searcher(policy, sampler) as srv:
                srv.search_stream(
                    trace.queries, arrival_times=trace.arrivals
                )
            return sampler.sample_keys

        plain = run(
            lambda p, s: StreamingSearcher(exact, k=3, policy=p, quality=s),
            BatchPolicy(max_batch=1),
        )
        batched = run(
            lambda p, s: StreamingSearcher(exact, k=3, policy=p, quality=s),
            BatchPolicy(max_batch=64),
        )
        sharded = run(
            lambda p, s: ShardedStreamingSearcher(
                exact, k=3, policy=p, quality=s, n_shards=3
            ),
            BatchPolicy(max_batch=32),
        )
        assert plain  # the zipfian trace at 25% must sample something
        assert plain == batched == sharded

    def test_different_seed_different_sample_set(self, data, exact):
        trace = self._zipf_trace(data)
        keys = {}
        for seed in (0, 1):
            sampler = QualitySampler(exact, 3, fraction=0.25, seed=seed)
            with StreamingSearcher(exact, k=3, quality=sampler) as srv:
                srv.search_stream(trace.queries, arrival_times=trace.arrivals)
            keys[seed] = sampler.sample_keys
        assert keys[0] != keys[1]

    def test_fraction_one_samples_everything(self, data, exact):
        X, Q = data
        sampler = QualitySampler(exact, 3, fraction=1.0, seed=0)
        with StreamingSearcher(exact, k=3, quality=sampler) as srv:
            srv.search_stream(Q[:40], qps=4000.0)
        assert sampler.n_seen == sampler.n_sampled == 40
        # the exact index against its own oracle: perfect everywhere
        assert sampler.monitor.recall_estimate == 1.0
        assert sampler.monitor.distance_ratio_mean == pytest.approx(1.0)

    def test_estimate_tracks_exhaustive_recall_on_zipfian(self, data):
        """The windowed estimate from a 50% sample sits within +-0.02 of
        the true recall of every served answer (approximate backend, so
        there is a real gap to estimate).  Everything is seeded, so the
        numbers are exactly reproducible."""
        X, _ = data
        k = 10
        trace = self._zipf_trace(data, n_queries=500, seed=9)
        approx = OneShotRBC(seed=3).build(X, n_reps=32, s=80)
        sampler = QualitySampler(
            approx,
            k,
            fraction=0.5,
            seed=0,
            monitor=QualityMonitor(target=0.01, window_s=math.inf),
        )
        with StreamingSearcher(
            approx, k=k, policy=BatchPolicy(max_batch=32), quality=sampler
        ) as srv:
            report = srv.search_stream(
                trace.queries, arrival_times=trace.arrivals
            )
        od, oi = bf_knn(trace.queries, X, k=k)
        m = trace.queries.shape[0]
        true_recall = np.mean(
            [
                len(set(report.idx[r]) & set(oi[r])) / k
                for r in range(m)
            ]
        )
        assert true_recall < 1.0  # the gap being estimated is real
        est = sampler.monitor.recall_estimate
        assert est == pytest.approx(true_recall, abs=0.02)
        assert report.quality["recall_estimate"] == est

    def test_sampler_requires_ndarray_database(self):
        class NoX:
            metric = None

        with pytest.raises(ValueError, match="ndarray database"):
            QualitySampler(NoX(), 3)

    def test_rank_error_and_ratio_scoring(self, data, exact):
        X, _ = data
        sampler = QualitySampler(exact, 2, fraction=1.0, seed=0)
        Qs = X[:3] + 1e-3  # large enough that the self-distance is > 0
        od, oi, D = sampler.oracle_topk(Qs)
        # serve the oracle's 2nd and 3rd neighbors instead of 1st/2nd:
        # each served id sits one rank below its position
        part = np.argsort(D, axis=1)[:, 1:3]
        dist = np.take_along_axis(D, part, axis=1)
        samples = sampler.observe_batch(Qs, dist, part, now=0.0)
        assert len(samples) == 3
        for s in samples:
            assert s.recall == pytest.approx(0.5)  # shares one of two ids
            assert s.rank_error == pytest.approx(1.0)
            assert s.distance_ratio > 1.0


# -------------------------------------------------------------------- drift
class TestDrift:
    def test_in_distribution_stream_is_stable(self, data, exact):
        X, Q = data
        mon = DriftMonitor.from_index(exact)
        assert mon is not None
        mon.observe_queries(Q)
        rep = mon.report()
        assert not rep.drifted
        assert rep.dist_ratio < 1.5
        assert rep.n_window == Q.shape[0]

    def test_shifted_stream_trips_distance_ratio(self, data, exact):
        X, Q = data
        mon = DriftMonitor.from_index(exact)
        mon.observe_queries(Q + 6.0)  # far off the built manifold
        rep = mon.report()
        assert rep.drifted
        assert any("rep-distance" in r for r in rep.reasons)
        assert "DRIFTED" in rep.summary()

    def test_hot_spot_collapses_entropy(self, data, exact):
        X, _ = data
        mon = DriftMonitor.from_index(exact)
        hot = np.repeat(X[:1], 200, axis=0)  # every query hits one rep
        mon.observe_queries(hot)
        rep = mon.report()
        assert rep.rep_entropy < rep.baseline_entropy
        assert any("entropy" in r for r in rep.reasons)

    def test_live_c_estimate_from_rule_counts(self, data, exact):
        mon = DriftMonitor.from_index(exact)
        assert mon.c_live is None  # nothing observed yet
        # candidates/query equal to the whole database: c = n_reps^(1/3)
        mon.observe_rules(exact.n * 10, 10)
        assert mon.c_live == pytest.approx(mon.n_reps ** (1.0 / 3.0))

    def test_from_index_returns_none_without_lists(self, data):
        X, _ = data

        class Bare:
            pass

        assert DriftMonitor.from_index(Bare()) is None

    def test_report_round_trip(self, data, exact):
        mon = DriftMonitor.from_index(exact)
        mon.observe_queries(data[1])
        rep = mon.report()
        back = type(rep).from_dict(rep.to_dict())
        assert back.to_dict() == rep.to_dict()


# ------------------------------------------------------------------ explain
class TestExplain:
    def test_explain_query_basic(self, data, exact):
        X, Q = data
        with StreamingSearcher(exact, k=3) as srv:
            dist, idx, e = srv.explain_query(Q[0])
        ref_d, ref_i = exact.query(Q[:1], k=3)
        np.testing.assert_array_equal(idx, ref_i[0])
        assert e.ticket == 0
        assert e.row == 0
        assert e.k == 3
        assert e.backend == "ExactRBC"
        assert e.batch_size == 1
        assert e.cache is None  # no cache attached -> no cache section
        assert e.rules.get("n_queries") == 1
        assert "EXPLAIN ticket 0" in e.summary()

    def test_explain_cache_outcomes(self, data, exact):
        X, Q = data
        with StreamingSearcher(
            exact, k=3, policy=BatchPolicy(max_batch=1), cache=True
        ) as srv:
            _d, _i, miss = srv.explain_query(Q[0])
            _d, _i, hit = srv.explain_query(Q[0])
            _d, _i, other = srv.explain_query(Q[1])
        assert miss.cache["outcome"] == "miss"
        assert hit.cache["outcome"] == "hit"
        assert hit.backend == "cache"
        assert hit.cache["radius"] is not None
        # a different query near the store is a certified reject or miss
        assert other.cache["outcome"] in ("reject", "miss")
        if other.cache["outcome"] == "reject":
            assert other.cache["delta"] > other.cache["radius"]

    def test_explain_router_scores(self, data):
        X, Q = data
        router = Router(seed=0, calibrate=False).build(X)
        with StreamingSearcher(router, k=2) as srv:
            _d, _i, e = srv.explain_query(Q[0])
        assert e.backend == "rbc-exact"
        assert e.rung == 0
        assert set(e.router["scores"]) == set(router.backend_names())
        assert e.router["reason"]
        assert "<-- chosen" in e.summary()

    def test_explain_sharded_fan_out(self, data, exact):
        X, Q = data
        with ShardedStreamingSearcher(exact, k=2, n_shards=4) as srv:
            _d, _i, e = srv.explain_query(Q[0])
        assert e.shards is not None
        assert 1 <= e.shards["fan_out"] <= 4
        assert e.shards["rounds"] >= 1
        assert "fan-out" in e.summary()

    def test_explain_marks_sampled_queries(self, data, exact):
        X, Q = data
        with StreamingSearcher(exact, k=3, quality=1.0) as srv:
            _d, _i, e = srv.explain_query(Q[0])
        assert e.sampled
        assert e.recall == pytest.approx(1.0)

    def test_dict_round_trip(self, data, exact):
        X, Q = data
        with StreamingSearcher(exact, k=3, cache=True, quality=1.0) as srv:
            _d, _i, e = srv.explain_query(Q[0])
        back = QueryExplain.from_dict(json.loads(json.dumps(e.to_dict())))
        assert back.to_dict() == e.to_dict()

    def test_submit_explain_interleaved(self, data, exact):
        """Only tickets submitted with explain=True get digests, and each
        digest points at its own batch row."""
        X, Q = data
        with StreamingSearcher(
            exact,
            k=2,
            policy=BatchPolicy(max_batch=8, min_batch=2, max_delay_ms=1e6),
        ) as srv:
            t_plain = srv.submit(Q[0])
            t_explained = srv.submit(Q[1], explain=True)
            srv.drain()
            assert srv.explain(t_plain) is None
            e = srv.explain(t_explained)
        assert e is not None and e.ticket == t_explained
        assert e.row == 1  # second row of the served batch
        assert e.batch_size == 2
        assert srv.explain(t_explained) is None  # collected once


# ----------------------------------------------------------- flight recorder
class TestFlightRecorder:
    def test_rings_are_bounded(self):
        fr = FlightRecorder(span_capacity=4, event_capacity=2)
        for i in range(10):
            fr.record_span("s", ts=float(i), dur_s=0.001)
            fr.record_event("e", now=float(i))
        assert len(fr.spans) == 4
        assert len(fr.events) == 2
        assert fr.spans[0]["ts"] == 6.0  # oldest evicted first
        assert fr.memory_bytes() > 0

    def test_dump_writes_selfcontained_bundle(self, tmp_path, data, exact):
        X, Q = data
        fr = FlightRecorder(dir=tmp_path, cooldown_s=0.0)
        sampler = QualitySampler(exact, 2, fraction=1.0, seed=0)
        fr.attach(quality=sampler)
        with StreamingSearcher(
            exact, k=2, quality=sampler, flight=fr
        ) as srv:
            srv.search_stream(Q[:20], qps=4000.0)
        bundle = fr.dump("unit-test", now=1.25)
        assert bundle is not None
        manifest = json.loads((bundle / "manifest.json").read_text())
        assert manifest["kind"] == "flight-bundle"
        assert manifest["reason"] == "unit-test"
        assert manifest["now"] == 1.25
        trace = json.loads((bundle / "trace.json").read_text())
        assert trace["traceEvents"]
        assert all(e["ph"] == "X" for e in trace["traceEvents"])
        quality = json.loads((bundle / "quality.json").read_text())
        assert quality["samples"]
        assert quality["monitor"]["n_samples"] == 20
        explains = json.loads((bundle / "explains.json").read_text())
        assert explains  # per-batch digests were recorded

    def test_cooldown_and_cap_suppress_dumps(self, tmp_path):
        fr = FlightRecorder(dir=tmp_path, cooldown_s=1e9, max_bundles=8)
        assert fr.dump("first") is not None
        assert fr.dump("second") is None  # inside the cooldown
        assert fr.n_suppressed == 1
        fr2 = FlightRecorder(dir=tmp_path / "capped", cooldown_s=0.0, max_bundles=1)
        assert fr2.dump("only") is not None
        assert fr2.dump("over-cap") is None
        assert len(fr2.bundles) == 1

    def test_cli_report_autodetects_bundle(self, tmp_path, capsys):
        from repro.cli import main

        fr = FlightRecorder(dir=tmp_path, cooldown_s=0.0)
        fr.record_span("serve:batch", ts=0.0, dur_s=0.002, size=4)
        fr.record_event("quality-breach", now=0.5, recall_estimate=0.8)
        bundle = fr.dump("breach")
        assert main(["report", str(bundle)]) == 0
        out = capsys.readouterr().out
        assert "flight bundle" in out
        assert "breach" in out
        # the manifest path alone works too
        assert main(["report", str(bundle / "manifest.json")]) == 0


# ------------------------------------------------- stream report integration
class TestStreamReportQuality:
    def test_quality_section_round_trips(self, data, exact):
        X, Q = data
        with StreamingSearcher(exact, k=2, quality=1.0) as srv:
            report = srv.search_stream(Q[:30], qps=4000.0)
        assert report.quality["n_sampled"] == 30
        back = StreamReport.from_dict(json.loads(json.dumps(report.to_dict())))
        assert back.quality == report.quality
        assert "quality: recall est" in back.summary()

    def test_old_payloads_degrade_gracefully(self, data, exact):
        X, Q = data
        with StreamingSearcher(exact, k=2) as srv:
            report = srv.search_stream(Q[:10], qps=4000.0)
        payload = report.to_dict()
        assert payload["quality"] is None
        del payload["quality"]  # a pre-quality serialized report
        back = StreamReport.from_dict(payload)
        assert back.quality is None
        assert "quality" not in back.summary()


# ------------------------------------------------------------- the full loop
class TestBreachClosedLoop:
    def test_recall_regression_walks_router_up_and_dumps(self, tmp_path):
        """The acceptance scenario: the router pinned to its approximate
        rpforest rung under adversarial drift trips the QualityMonitor,
        which restores the router to the exact rung, disables the
        proximity cache, and emits a flight bundle the CLI parses."""
        from repro.cli import main

        rng = np.random.default_rng(5)
        X = rng.normal(size=(600, 16))
        router = Router(seed=0, calibrate=False).build(X)
        Q = rng.normal(size=(120, 16)) + 2.5  # off the built manifold

        mon = QualityMonitor(
            target=0.95, window_s=math.inf, min_samples=4, cooldown_s=0.0
        )
        fr = FlightRecorder(dir=tmp_path, cooldown_s=0.0, max_bundles=2)
        sampler = QualitySampler(
            router,
            5,
            fraction=1.0,
            seed=3,
            monitor=mon,
            drift=DriftMonitor.from_index(router),
        )
        srv = StreamingSearcher(
            router,
            k=5,
            policy=BatchPolicy(max_batch=16),
            cache=True,
            quality=sampler,
            flight=fr,
        )
        # pin the degraded rung *after* construction (the cache needs the
        # exact rung's capabilities to build its certificates against)
        router.degrade()
        router.degrade()
        assert router.ladder[router.rung] == "rpforest"
        with srv:
            report = srv.search_stream(Q, qps=4000.0)

        assert mon.n_breaches >= 1
        assert router.rung == 0  # walked back up the ladder
        assert not srv.cache.enabled
        assert srv.cache.disabled_reason == "quality breach"
        assert report.quality["n_breaches"] == mon.n_breaches
        assert report.quality["drift"]["drifted"]
        # the per-label ledger shows where recall was lost
        by = report.quality["by_label"]
        assert any(label.startswith("rpforest|rung2") for label in by)
        bad = [v["recall"] for k, v in by.items() if k.startswith("rpforest")]
        assert min(bad) < 0.95

        assert fr.bundles
        bundle = fr.bundles[0]
        manifest = json.loads((bundle / "manifest.json").read_text())
        assert manifest["reason"] == "quality-breach"
        events = json.loads((bundle / "events.json").read_text())
        kinds = {e["kind"] for e in events}
        assert {"quality-breach", "cache-disabled"} <= kinds
        assert main(["report", str(bundle)]) == 0
