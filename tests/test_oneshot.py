"""One-shot RBC search: probabilistic guarantees and structure."""

import numpy as np
import pytest

from repro.core import OneShotRBC, oneshot_params
from repro.eval import recall_at_k, results_match_exactly
from repro.metrics import EditDistance
from repro.parallel import bf_knn


def test_full_lists_make_search_exact(small_vectors):
    # s = n: every list is the whole database, so one-shot IS brute force
    X, Q = small_vectors
    true_d, _ = bf_knn(Q, X, k=3)
    rbc = OneShotRBC(seed=0, rep_scheme="exact").build(X, n_reps=5, s=X.shape[0])
    d, _ = rbc.query(Q, k=3)
    assert results_match_exactly(d, true_d)


def test_theorem2_success_probability(clustered):
    """Theorem 2: with n_r = s = c sqrt(n ln 1/delta), P(exact NN) >= 1 - delta."""
    X, Q = clustered
    n = X.shape[0]
    delta = 0.1
    # modest c; the data has low intrinsic dimension
    nr, s = oneshot_params(n, c=2.0, delta=delta)
    rbc = OneShotRBC(seed=0).build(X, n_reps=nr, s=s)
    d, i = rbc.query(Q, k=1)
    true_d, _ = bf_knn(Q, X, k=1)
    success = np.isclose(d[:, 0], true_d[:, 0], rtol=1e-9, atol=1e-9).mean()
    assert success >= 1.0 - delta


def test_returned_point_is_from_chosen_list(small_vectors):
    X, Q = small_vectors
    rbc = OneShotRBC(seed=0, rep_scheme="exact").build(X, n_reps=8, s=40)
    d, i = rbc.query(Q, k=1)
    _, rep_local = bf_knn(Q, rbc.rep_data, rbc.metric, k=1)
    for r in range(Q.shape[0]):
        assert i[r, 0] in rbc.lists[rep_local[r, 0]]


def test_returned_distances_are_real(small_vectors):
    X, Q = small_vectors
    rbc = OneShotRBC(seed=0).build(X, n_reps=30, s=30)
    d, i = rbc.query(Q, k=2)
    m = rbc.metric
    for r in range(Q.shape[0]):
        for c in range(2):
            if i[r, c] >= 0:
                assert d[r, c] == pytest.approx(
                    m.pairwise(Q[r : r + 1], X[i[r, c]][None])[0, 0], abs=1e-9
                )


def test_larger_s_improves_quality(clustered):
    X, Q = clustered
    true_d, _ = bf_knn(Q, X, k=1)

    def err(s):
        rbc = OneShotRBC(seed=0, rep_scheme="exact").build(X, n_reps=60, s=s)
        d, _ = rbc.query(Q, k=1)
        return float(np.mean(d[:, 0] - true_d[:, 0]))

    assert err(400) <= err(10) + 1e-12


def test_multi_probe_improves_recall(clustered):
    X, Q = clustered
    _, true_i = bf_knn(Q, X, k=5)
    rbc = OneShotRBC(seed=0, rep_scheme="exact").build(X, n_reps=80, s=30)
    _, i1 = rbc.query(Q, k=5, n_probes=1)
    _, i3 = rbc.query(Q, k=5, n_probes=3)
    assert recall_at_k(i3, true_i) >= recall_at_k(i1, true_i)


def test_multi_probe_no_duplicate_results(small_vectors):
    X, Q = small_vectors
    rbc = OneShotRBC(seed=0, rep_scheme="exact").build(X, n_reps=20, s=50)
    _, i = rbc.query(Q, k=5, n_probes=4)
    for row in i:
        real = [x for x in row if x >= 0]
        assert len(real) == len(set(real))


def test_probes_capped_at_reps(small_vectors):
    X, Q = small_vectors
    rbc = OneShotRBC(seed=0, rep_scheme="exact").build(X, n_reps=3, s=20)
    d, i = rbc.query(Q, k=1, n_probes=10)  # silently capped to 3
    assert np.isfinite(d[:, 0]).all()


def test_work_is_nr_plus_s(small_vectors):
    X, Q = small_vectors
    rbc = OneShotRBC(seed=0, rep_scheme="exact").build(X, n_reps=16, s=25)
    rbc.query(Q, k=1)
    st = rbc.last_stats
    assert st.stage1_evals == Q.shape[0] * 16
    assert st.stage2_evals == Q.shape[0] * 25
    assert st.per_query_evals() == pytest.approx(41.0)


def test_default_params_used(small_vectors):
    X, Q = small_vectors
    rbc = OneShotRBC(seed=0).build(X, delta=0.2, c=1.0)
    nr, s = oneshot_params(X.shape[0], c=1.0, delta=0.2)
    assert rbc.s == s
    d, i = rbc.query(Q)
    assert d.shape == (Q.shape[0], 1)


def test_k_larger_than_s_pads(small_vectors):
    X, Q = small_vectors
    rbc = OneShotRBC(seed=0, rep_scheme="exact").build(X, n_reps=10, s=3)
    d, i = rbc.query(Q, k=6)
    assert np.isfinite(d[:, :3]).all()
    assert np.isinf(d[:, 3:]).all()


def test_single_query(small_vectors):
    X, _ = small_vectors
    rbc = OneShotRBC(seed=0).build(X)
    d, i = rbc.query(X[7], k=1)
    assert i[0, 0] == 7
    assert d[0, 0] == pytest.approx(0.0, abs=1e-6)


def test_validation(small_vectors):
    X, Q = small_vectors
    rbc = OneShotRBC(seed=0).build(X)
    with pytest.raises(ValueError):
        rbc.query(Q, k=0)
    with pytest.raises(ValueError):
        rbc.query(Q, k=1, n_probes=0)


def test_oneshot_on_strings():
    from repro.data import random_strings

    S = random_strings(400, seed=0)
    rbc = OneShotRBC(metric=EditDistance(), seed=0).build(S, n_reps=40, s=160)
    d, i = rbc.query(S[:20], k=1)
    # querying database strings: one-shot finds an exact (distance 0) match
    # whenever the string lands in its chosen representative's list; edit
    # distance is heavily tied, so expect most-but-not-all successes
    assert (d[:, 0] == 0).mean() >= 0.7


def test_deterministic_given_seed(small_vectors):
    X, Q = small_vectors
    d1, i1 = OneShotRBC(seed=9).build(X).query(Q, k=2)
    d2, i2 = OneShotRBC(seed=9).build(X).query(Q, k=2)
    np.testing.assert_array_equal(i1, i2)
