"""GNAT baseline (Brin 1995)."""

import numpy as np
import pytest

from repro.baselines import GNAT
from repro.eval import results_match_exactly
from repro.metrics import EditDistance
from repro.parallel import bf_knn


@pytest.mark.parametrize("k", [1, 4])
@pytest.mark.parametrize("metric", ["euclidean", "manhattan"])
def test_exact_knn(metric, k, small_vectors):
    X, Q = small_vectors
    true_d, _ = bf_knn(Q, X, metric, k=k)
    g = GNAT(metric=metric, seed=0).build(X)
    d, _ = g.query(Q, k=k)
    assert results_match_exactly(d, true_d)


@pytest.mark.parametrize("arity", [2, 4, 16])
def test_arity_variants(arity, small_vectors):
    X, Q = small_vectors
    true_d, _ = bf_knn(Q, X, k=2)
    g = GNAT(arity=arity, seed=0).build(X)
    d, _ = g.query(Q, k=2)
    assert results_match_exactly(d, true_d)


def test_prunes_on_clustered(clustered):
    X, Q = clustered
    g = GNAT(seed=0).build(X)
    g.metric.reset_counter()
    g.query(Q[:10], k=1)
    assert g.metric.counter.n_evals / 10 < 0.6 * X.shape[0]


def test_range_tables_cover_members(small_vectors):
    X, _ = small_vectors
    g = GNAT(seed=0, leaf_size=16).build(X)

    def collect(node):
        if node.leaf_ids is not None:
            return [node.leaf_ids]
        return [np.concatenate(collect(c)) for c in node.children]

    node = g.root
    assert node.split_ids is not None
    child_members = collect(node)
    for i, si in enumerate(node.split_ids):
        for j in range(len(node.children)):
            members = child_members[j]
            D = g.metric.pairwise(g.metric.take(X, [si]), g.metric.take(X, members))[0]
            lo, hi = node.ranges[i, j]
            assert D.min() >= lo - 1e-9
            assert D.max() <= hi + 1e-9


def test_duplicates(rng):
    X = np.repeat(rng.normal(size=(4, 3)), 15, axis=0)
    g = GNAT(seed=0).build(X)
    true_d, _ = bf_knn(X[:4], X, k=5)
    d, _ = g.query(X[:4], k=5)
    assert results_match_exactly(d, true_d)


def test_edit_distance():
    from repro.data import random_strings

    S = random_strings(200, seed=4)
    Q = random_strings(8, seed=5)
    true_d, _ = bf_knn(Q, S, EditDistance(), k=1)
    g = GNAT(metric=EditDistance(), seed=0).build(S)
    d, _ = g.query(Q, k=1)
    assert results_match_exactly(d, true_d)


def test_validation(rng):
    with pytest.raises(ValueError):
        GNAT(arity=1)
    with pytest.raises(ValueError):
        GNAT(leaf_size=0)
    with pytest.raises(ValueError):
        GNAT(metric="sqeuclidean")
    with pytest.raises(RuntimeError):
        GNAT().query(np.zeros((1, 2)))
    with pytest.raises(ValueError):
        GNAT().build(np.empty((0, 3)))
    g = GNAT(seed=0).build(rng.normal(size=(100, 2)))
    with pytest.raises(ValueError):
        g.query(np.zeros((1, 2)), k=0)


def test_all_points_in_exactly_one_region(small_vectors):
    X, _ = small_vectors

    def collect_all(node):
        if node.leaf_ids is not None:
            return list(node.leaf_ids)
        out = []
        for c in node.children:
            out.extend(collect_all(c))
        return out

    g = GNAT(seed=0).build(X)
    ids = collect_all(g.root)
    assert sorted(ids) == list(range(X.shape[0]))
