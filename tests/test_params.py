"""Parameter rules from the theory section."""

import math

import pytest

from repro.core import clip_reps, oneshot_params, standard_n_reps


def test_standard_setting_sqrt_n():
    assert standard_n_reps(10_000) == 100
    assert standard_n_reps(1_000_000) == 1000


def test_standard_setting_scales_with_c():
    # n_r = c^{3/2} sqrt(n)
    assert standard_n_reps(10_000, c=4.0) == pytest.approx(8 * 100, abs=1)


def test_standard_setting_clipped_to_n():
    assert standard_n_reps(10, c=100.0) == 10


def test_standard_setting_rejects_c_below_one():
    with pytest.raises(ValueError):
        standard_n_reps(100, c=0.5)


def test_oneshot_params_formula():
    nr, s = oneshot_params(10_000, c=1.0, delta=math.exp(-1))
    assert nr == s == 100  # c sqrt(n * 1)


def test_oneshot_params_grow_with_confidence():
    lo, _ = oneshot_params(10_000, delta=0.5)
    hi, _ = oneshot_params(10_000, delta=0.001)
    assert hi > lo


def test_oneshot_params_validation():
    with pytest.raises(ValueError):
        oneshot_params(100, delta=0.0)
    with pytest.raises(ValueError):
        oneshot_params(100, delta=1.0)
    with pytest.raises(ValueError):
        oneshot_params(100, c=0.2)


def test_clip_reps():
    assert clip_reps(0.2, 100) == 1
    assert clip_reps(1e9, 100) == 100
    assert clip_reps(17.4, 100) == 17
    with pytest.raises(ValueError):
        clip_reps(10, 0)
