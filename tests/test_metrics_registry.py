"""Metric registry behaviour."""

import pytest

from repro.metrics import (
    Euclidean,
    Minkowski,
    available_metrics,
    get_metric,
    register_metric,
)


def test_lookup_by_name():
    assert isinstance(get_metric("euclidean"), Euclidean)
    assert isinstance(get_metric("L2"), Euclidean)  # case-insensitive


def test_each_call_returns_fresh_instance():
    a = get_metric("euclidean")
    b = get_metric("euclidean")
    assert a is not b
    a.counter.add(10)
    assert b.counter.n_evals == 0


def test_instance_passthrough():
    m = Euclidean()
    assert get_metric(m) is m


def test_instance_with_kwargs_rejected():
    with pytest.raises(ValueError, match="kwargs"):
        get_metric(Euclidean(), p=2)


def test_kwargs_forwarded():
    m = get_metric("minkowski", p=4)
    assert isinstance(m, Minkowski)
    assert m.p == 4.0


def test_unknown_name_lists_alternatives():
    with pytest.raises(ValueError, match="euclidean"):
        get_metric("nosuchmetric")


def test_available_metrics_sorted_and_complete():
    names = available_metrics()
    assert names == sorted(names)
    for expected in ("euclidean", "manhattan", "levenshtein", "angular"):
        assert expected in names


def test_register_custom_metric():
    class MyMetric(Euclidean):
        name = "custom-test-metric"

    register_metric("custom-test-metric", MyMetric)
    assert isinstance(get_metric("custom-test-metric"), MyMetric)
    with pytest.raises(ValueError, match="already registered"):
        register_metric("custom-test-metric", MyMetric)
