"""Property-based tests of the machine-model invariants.

The machine models back every figure reproduction, so their algebra gets
the same scrutiny as the search algorithms: speedups bounded by core
counts, monotonicity in work, conservation of busy time, chain semantics.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.simulator import (
    DESKTOP_QUAD,
    MachineSpec,
    Op,
    Phase,
    Trace,
    simulate,
    with_cores,
)

FLOPS = st.floats(min_value=1e3, max_value=1e9)


def flat_machine(cores: int) -> MachineSpec:
    return MachineSpec(
        name="flat", cores=cores, simd_lanes=1, flops_per_cycle_per_lane=1.0,
        ghz=1.0, mem_bandwidth_gbs=1e6, sync_overhead_us=0.0,
    )


@settings(max_examples=50, deadline=None)
@given(st.lists(FLOPS, min_size=1, max_size=30), st.integers(1, 16))
def test_property_speedup_bounded_by_cores(flops_list, cores):
    trace = Trace([Phase("p", [Op("gemm", f) for f in flops_list])])
    t1 = simulate(trace, flat_machine(1)).time_s
    tc = simulate(trace, flat_machine(cores)).time_s
    assert tc <= t1 + 1e-12
    assert t1 / tc <= cores + 1e-9


@settings(max_examples=50, deadline=None)
@given(st.lists(FLOPS, min_size=1, max_size=30), st.integers(1, 16))
def test_property_makespan_at_least_critical_path(flops_list, cores):
    trace = Trace([Phase("p", [Op("gemm", f) for f in flops_list])])
    res = simulate(trace, flat_machine(cores))
    # no schedule beats the largest op or the perfect division of work
    rate = 1e9
    assert res.time_s >= max(flops_list) / rate - 1e-12
    assert res.time_s >= sum(flops_list) / (cores * rate) - 1e-12


@settings(max_examples=50, deadline=None)
@given(st.lists(FLOPS, min_size=1, max_size=20))
def test_property_busy_time_conserved(flops_list):
    trace = Trace([Phase("p", [Op("gemm", f) for f in flops_list])])
    for cores in (1, 4):
        res = simulate(trace, flat_machine(cores))
        assert res.busy_time_s == pytest.approx(sum(flops_list) / 1e9)
        assert res.utilization <= 1.0 + 1e-9


@settings(max_examples=50, deadline=None)
@given(st.lists(FLOPS, min_size=2, max_size=20), st.integers(2, 16))
def test_property_chained_ops_never_faster_than_free(flops_list, cores):
    free = Trace([Phase("p", [Op("gemm", f) for f in flops_list])])
    chained = Trace(
        [Phase("p", [Op("gemm", f, chain=0) for f in flops_list])]
    )
    m = flat_machine(cores)
    t_free = simulate(free, m).time_s
    t_chained = simulate(chained, m).time_s
    assert t_chained >= t_free - 1e-12
    # a single chain is fully serial
    assert t_chained == pytest.approx(sum(flops_list) / 1e9)


@settings(max_examples=30, deadline=None)
@given(
    st.lists(FLOPS, min_size=1, max_size=10),
    st.lists(FLOPS, min_size=1, max_size=10),
)
def test_property_phases_additive(a, b):
    m = flat_machine(4)
    t_ab = simulate(
        Trace([
            Phase("a", [Op("gemm", f) for f in a]),
            Phase("b", [Op("gemm", f) for f in b]),
        ]),
        m,
    ).time_s
    t_a = simulate(Trace([Phase("a", [Op("gemm", f) for f in a])]), m).time_s
    t_b = simulate(Trace([Phase("b", [Op("gemm", f) for f in b])]), m).time_s
    assert t_ab == pytest.approx(t_a + t_b)


@settings(max_examples=30, deadline=None)
@given(st.floats(min_value=0.0, max_value=1.0))
def test_property_gpu_divergence_monotone(div):
    from repro.simulator import TESLA_C2050

    op_lo = Op("gemm", 1e6, divergence=0.0)
    op_hi = Op("gemm", 1e6, divergence=div)
    assert TESLA_C2050.compute_time(op_hi) >= TESLA_C2050.compute_time(op_lo)


def test_more_chains_scale_like_queries():
    # 8 chains of equal work on 8 cores run 8x faster than on 1 core
    ops = [Op("gemm", 1e6, chain=i % 8) for i in range(64)]
    trace = Trace([Phase("p", ops)])
    t1 = simulate(trace, flat_machine(1)).time_s
    t8 = simulate(trace, flat_machine(8)).time_s
    assert t1 / t8 == pytest.approx(8.0, rel=1e-6)


def test_with_cores_preserves_everything_else():
    m = with_cores(DESKTOP_QUAD, 13)
    assert m.cores == 13
    assert m.ghz == DESKTOP_QUAD.ghz
    assert m.simd_lanes == DESKTOP_QUAD.simd_lanes
    assert m.name == DESKTOP_QUAD.name
