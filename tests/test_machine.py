"""Machine models: roofline op times, scheduling, scaling."""

import pytest

from repro.simulator import (
    AMD_48CORE,
    DESKTOP_QUAD,
    SEQUENTIAL,
    TESLA_C2050,
    GpuSpec,
    MachineSpec,
    Op,
    Phase,
    Trace,
    simulate,
    speedup,
    strong_scaling,
    with_cores,
)


def _flat_machine(cores=4):
    """Machine with convenient round numbers and no sync overhead."""
    return MachineSpec(
        name="test",
        cores=cores,
        simd_lanes=1,
        flops_per_cycle_per_lane=1.0,
        ghz=1.0,  # 1e9 flop/s per core
        mem_bandwidth_gbs=1e3,  # effectively never memory-bound here
        sync_overhead_us=0.0,
    )


def test_compute_bound_op_time():
    m = _flat_machine()
    op = Op("gemm", flops=1e9, bytes=8.0)
    assert m.op_time(op) == pytest.approx(1.0)


def test_memory_bound_op_time():
    m = MachineSpec(
        name="bw", cores=1, simd_lanes=1, flops_per_cycle_per_lane=1.0,
        ghz=100.0, mem_bandwidth_gbs=1.0, sync_overhead_us=0.0,
    )
    op = Op("memcpy", flops=1.0, bytes=1e9)
    assert m.op_time(op) == pytest.approx(1.0)  # roofline: bandwidth wins


def test_scalar_op_slower_than_vector():
    m = MachineSpec(
        name="v", cores=1, simd_lanes=8, flops_per_cycle_per_lane=2.0,
        ghz=1.0, mem_bandwidth_gbs=1e3, sync_overhead_us=0.0,
    )
    vec = Op("gemm", flops=1e6, vectorizable=True)
    scalar = Op("branchy", flops=1e6, vectorizable=False)
    assert m.op_time(scalar) / m.op_time(vec) == pytest.approx(16.0)


def test_gpu_divergence_penalty():
    g = TESLA_C2050
    clean = Op("gemm", flops=1e6, divergence=0.0)
    divergent = Op("gemm", flops=1e6, divergence=1.0)
    assert g.op_time(divergent) / g.op_time(clean) == pytest.approx(
        g.warp_size, rel=1e-6
    )


def test_gpu_partial_divergence_interpolates():
    g = TESLA_C2050
    half = Op("gemm", flops=1e6, divergence=0.5)
    clean = Op("gemm", flops=1e6)
    assert g.op_time(half) / g.op_time(clean) == pytest.approx(
        1 + 0.5 * (g.warp_size - 1)
    )


def test_simulate_perfectly_parallel_phase():
    m = _flat_machine(cores=4)
    ops = [Op("gemm", flops=1e9) for _ in range(4)]
    res = simulate(Trace([Phase("p", ops)]), m)
    assert res.time_s == pytest.approx(1.0)
    assert res.utilization == pytest.approx(1.0)


def test_simulate_serial_phase_wastes_cores():
    m = _flat_machine(cores=4)
    res = simulate(Trace([Phase("p", [Op("gemm", flops=1e9)])]), m)
    assert res.time_s == pytest.approx(1.0)
    assert res.utilization == pytest.approx(0.25)


def test_simulate_phases_are_barriers():
    m = _flat_machine(cores=2)
    t = Trace(
        [
            Phase("a", [Op("gemm", flops=1e9), Op("gemm", flops=1e9)]),
            Phase("b", [Op("gemm", flops=1e9)]),
        ]
    )
    res = simulate(t, m)
    assert res.time_s == pytest.approx(2.0)  # 1s parallel + 1s serial


def test_simulate_lpt_balances_uneven_ops():
    m = _flat_machine(cores=2)
    # LPT on costs [3,2,2,1]e9 over 2 cores -> makespan 4 (3+1 | 2+2)
    ops = [Op("gemm", flops=f * 1e9) for f in (3, 2, 2, 1)]
    res = simulate(Trace([Phase("p", ops)]), m)
    assert res.time_s == pytest.approx(4.0)


def test_sync_overhead_charged_per_phase():
    m = MachineSpec(
        name="s", cores=1, simd_lanes=1, flops_per_cycle_per_lane=1.0,
        ghz=1.0, mem_bandwidth_gbs=1e3, sync_overhead_us=100.0,
    )
    t = Trace([Phase("a", [Op("gemm", flops=0.0)])] * 3)
    res = simulate(t, m)
    assert res.time_s == pytest.approx(300e-6)


def test_empty_trace():
    res = simulate(Trace(), DESKTOP_QUAD)
    assert res.time_s == 0.0
    assert res.utilization == 0.0


def test_with_cores_replaces_count():
    m2 = with_cores(DESKTOP_QUAD, 16)
    assert m2.cores == 16
    assert m2.mem_bandwidth_gbs == DESKTOP_QUAD.mem_bandwidth_gbs
    g2 = with_cores(TESLA_C2050, 28)
    assert g2.sms == 28


def test_strong_scaling_compute_bound_is_linearish():
    m = _flat_machine()
    ops = [Op("gemm", flops=1e8) for _ in range(64)]
    t = Trace([Phase("p", ops)])
    results = strong_scaling(t, m, [1, 2, 4, 8])
    times = [r.time_s for _, r in results]
    assert times == sorted(times, reverse=True)
    assert times[0] / times[-1] == pytest.approx(8.0, rel=0.05)


def test_strong_scaling_bandwidth_bound_saturates():
    m = MachineSpec(
        name="bw", cores=1, simd_lanes=1, flops_per_cycle_per_lane=1.0,
        ghz=100.0, mem_bandwidth_gbs=10.0, sync_overhead_us=0.0,
    )
    ops = [Op("memcpy", flops=1.0, bytes=1e8) for _ in range(64)]
    t = Trace([Phase("p", ops)])
    results = strong_scaling(t, m, [1, 8, 64])
    times = [r.time_s for _, r in results]
    # fixed socket bandwidth: adding cores cannot speed a bound phase
    assert times[0] == pytest.approx(times[-1], rel=0.05)


def test_speedup_ratio():
    m = _flat_machine(1)
    slow = simulate(Trace([Phase("p", [Op("gemm", flops=2e9)])]), m)
    fast = simulate(Trace([Phase("p", [Op("gemm", flops=1e9)])]), m)
    assert speedup(slow, fast) == pytest.approx(2.0)


def test_presets_are_sane():
    assert AMD_48CORE.cores == 48
    assert DESKTOP_QUAD.cores == 4
    assert SEQUENTIAL.cores == 1
    assert isinstance(TESLA_C2050, GpuSpec)
    # peak rates are in realistic ranges (GFLOP/s)
    assert 100 < AMD_48CORE.peak_gflops < 2000
    assert 100 < TESLA_C2050.peak_gflops < 2000
    assert AMD_48CORE.peak_gflops > DESKTOP_QUAD.peak_gflops


def test_machine_validation():
    with pytest.raises(ValueError):
        MachineSpec(name="bad", cores=0)
    with pytest.raises(ValueError):
        MachineSpec(name="bad", ghz=-1.0)
