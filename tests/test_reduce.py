"""Parallel-reduce building blocks: top-k selection and tree merging."""

import functools
import operator

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.parallel import (
    EMPTY_IDX,
    ThreadExecutor,
    merge_topk,
    topk_of_block,
    tree_reduce,
)
from repro.parallel.reduce import dedupe_rows


def brute_topk(D, k):
    order = np.argsort(D, axis=1, kind="stable")[:, :k]
    return np.take_along_axis(D, order, axis=1), order


def test_topk_matches_argsort(rng):
    D = rng.normal(size=(6, 20))
    d, i = topk_of_block(D, 4)
    ed, ei = brute_topk(D, 4)
    np.testing.assert_allclose(d, ed)
    # validate by value (ties may permute indices)
    np.testing.assert_allclose(np.take_along_axis(D, i, axis=1), ed)


def test_topk_k_equals_n(rng):
    D = rng.normal(size=(3, 5))
    d, i = topk_of_block(D, 5)
    np.testing.assert_allclose(d, np.sort(D, axis=1))


def test_topk_pads_when_k_exceeds_n(rng):
    D = rng.normal(size=(2, 3))
    d, i = topk_of_block(D, 5)
    assert d.shape == (2, 5)
    assert np.isinf(d[:, 3:]).all()
    assert (i[:, 3:] == EMPTY_IDX).all()


def test_topk_col_offset(rng):
    D = rng.normal(size=(2, 4))
    _, i = topk_of_block(D, 2, col_offset=100)
    assert (i >= 100).all()


def test_topk_rejects_bad_k(rng):
    with pytest.raises(ValueError):
        topk_of_block(rng.normal(size=(2, 3)), 0)


def test_merge_topk_keeps_global_best(rng):
    D = rng.normal(size=(5, 30))
    a = topk_of_block(D[:, :15], 4)
    b = topk_of_block(D[:, 15:], 4, col_offset=15)
    d, i = merge_topk(a, b)
    ed, _ = brute_topk(D, 4)
    np.testing.assert_allclose(d, ed)


def test_merge_topk_handles_padding(rng):
    D = rng.normal(size=(2, 2))
    a = topk_of_block(D, 5)  # padded
    b = topk_of_block(D + 10, 5)
    d, i = merge_topk(a, b)
    assert np.isfinite(d[:, :4]).all()
    assert np.isinf(d[:, 4]).all()


def test_merge_topk_shape_mismatch():
    a = (np.zeros((2, 3)), np.zeros((2, 3), dtype=np.int64))
    b = (np.zeros((2, 4)), np.zeros((2, 4), dtype=np.int64))
    with pytest.raises(ValueError):
        merge_topk(a, b)


def test_tree_reduce_matches_linear_reduce():
    items = list(range(1, 20))
    assert tree_reduce(items, operator.add) == functools.reduce(operator.add, items)


def test_tree_reduce_single_item():
    assert tree_reduce([42], operator.add) == 42


def test_tree_reduce_empty_raises():
    with pytest.raises(ValueError):
        tree_reduce([], operator.add)


def test_tree_reduce_preserves_operand_order():
    # non-commutative merge: string concatenation order must be stable
    items = list("abcdefg")
    out = tree_reduce(items, operator.add)
    assert sorted(out) == sorted("abcdefg")
    assert out == "abcdefg"  # tree reduce keeps left-to-right order


def test_tree_reduce_with_executor():
    ex = ThreadExecutor(2)
    try:
        assert tree_reduce(list(range(50)), operator.add, executor=ex) == sum(
            range(50)
        )
    finally:
        ex.close()


def test_tree_reduce_equals_serial_for_topk(rng):
    D = rng.normal(size=(4, 64))
    parts = [
        topk_of_block(D[:, j : j + 8], 3, col_offset=j) for j in range(0, 64, 8)
    ]
    d_tree, _ = tree_reduce(parts, merge_topk)
    ed, _ = brute_topk(D, 3)
    np.testing.assert_allclose(d_tree, ed)


def test_dedupe_rows_basic():
    d = np.array([[1.0, 1.0, 2.0, np.inf]])
    i = np.array([[7, 7, 9, EMPTY_IDX]])
    dd, ii = dedupe_rows(d, i, 3)
    np.testing.assert_array_equal(ii, [[7, 9, EMPTY_IDX]])
    np.testing.assert_allclose(dd[0, :2], [1.0, 2.0])


def test_dedupe_rows_no_duplicates_passthrough(rng):
    d = np.sort(rng.normal(size=(3, 4)), axis=1)
    i = np.arange(12).reshape(3, 4)
    dd, ii = dedupe_rows(d, i, 4)
    np.testing.assert_allclose(dd, d)
    np.testing.assert_array_equal(ii, i)


FINITE = st.floats(min_value=-100, max_value=100, allow_nan=False)


@settings(max_examples=40, deadline=None)
@given(arrays(np.float64, (3, 12), elements=FINITE), st.integers(1, 6))
def test_property_split_merge_equals_direct(D, k):
    direct_d, _ = topk_of_block(D, k)
    a = topk_of_block(D[:, :5], k)
    b = topk_of_block(D[:, 5:], k, col_offset=5)
    merged_d, merged_i = merge_topk(a, b)
    np.testing.assert_allclose(merged_d, direct_d)
    # indices are consistent: looking up the merged indices reproduces dists
    for r in range(3):
        for c in range(k):
            if merged_i[r, c] != EMPTY_IDX:
                assert D[r, merged_i[r, c]] == merged_d[r, c]


@settings(max_examples=30, deadline=None)
@given(arrays(np.float64, (2, 9), elements=FINITE))
def test_property_merge_associative(D):
    k = 3
    a = topk_of_block(D[:, :3], k)
    b = topk_of_block(D[:, 3:6], k, col_offset=3)
    c = topk_of_block(D[:, 6:], k, col_offset=6)
    left = merge_topk(merge_topk(a, b), c)
    right = merge_topk(a, merge_topk(b, c))
    np.testing.assert_allclose(left[0], right[0])
