"""Command-line interface."""

import numpy as np
import pytest

from repro.cli import main


@pytest.fixture
def data_file(tmp_path, rng):
    path = tmp_path / "data.npy"
    np.save(path, rng.normal(size=(600, 6)))
    return path


@pytest.fixture
def query_file(tmp_path, rng):
    path = tmp_path / "queries.npy"
    np.save(path, rng.normal(size=(7, 6)))
    return path


def test_info(capsys):
    assert main(["info"]) == 0
    out = capsys.readouterr().out
    assert "bio" in out and "tiny32" in out
    assert "euclidean" in out
    assert "tesla-c2050" in out


def test_build_and_query_roundtrip(tmp_path, data_file, query_file, capsys):
    index_path = tmp_path / "index.npz"
    assert main(["build", str(data_file), "-o", str(index_path)]) == 0
    out = capsys.readouterr().out
    assert "built exact RBC over 600 points" in out
    assert index_path.exists()

    assert main(["query", str(index_path), str(query_file), "-k", "3"]) == 0
    out = capsys.readouterr().out
    assert "query 0:" in out
    assert "evaluations/query" in out


def test_build_oneshot(tmp_path, data_file, capsys):
    index_path = tmp_path / "one.npz"
    rc = main(
        ["build", str(data_file), "-o", str(index_path),
         "--algorithm", "oneshot", "--n-reps", "20", "--s", "40"]
    )
    assert rc == 0
    assert "built oneshot RBC" in capsys.readouterr().out


def test_query_results_match_library(tmp_path, data_file, query_file, capsys):
    from repro.parallel import bf_knn

    index_path = tmp_path / "index.npz"
    main(["build", str(data_file), "-o", str(index_path)])
    capsys.readouterr()
    main(["query", str(index_path), str(query_file), "-k", "1", "--show", "7"])
    out = capsys.readouterr().out
    X = np.load(data_file)
    Q = np.load(query_file)
    _, ti = bf_knn(Q, X, k=1)
    for r in range(7):
        assert f"query {r}: #{int(ti[r, 0])} @" in out


def test_dim(data_file, capsys):
    assert main(["dim", str(data_file)]) == 0
    out = capsys.readouterr().out
    assert "expansion rate c" in out
    assert "growth dimension" in out


def test_dim_registry_dataset(capsys):
    assert main(["dim", "tiny4", "--scale", "0.0005", "--centers", "16"]) == 0
    assert "expansion rate" in capsys.readouterr().out


def test_compare(data_file, capsys):
    assert main(["compare", str(data_file), "--queries", "20"]) == 0
    out = capsys.readouterr().out
    assert "answers identical: True" in out
    assert "48-core sim" in out


def test_bad_npy_shape(tmp_path, capsys):
    path = tmp_path / "bad.npy"
    np.save(path, np.zeros(5))
    with pytest.raises(SystemExit, match="2-d"):
        main(["dim", str(path)])


def test_knn_graph(tmp_path, data_file, capsys):
    out = tmp_path / "graph.npz"
    assert main(["knn-graph", str(data_file), "-o", str(out), "-k", "4"]) == 0
    assert "4-NN graph over 600 points" in capsys.readouterr().out
    with np.load(out) as z:
        assert z["dist"].shape == (600, 4)
        assert z["idx"].shape == (600, 4)
        # no self-edges
        assert (z["idx"] != np.arange(600)[:, None]).all()


def test_unknown_command_rejected():
    with pytest.raises(SystemExit):
        main(["frobnicate"])
