"""Operation traces and recorders."""

import pytest

from repro.simulator import NULL_RECORDER, Op, Phase, Trace, TraceRecorder


def test_op_validation():
    with pytest.raises(ValueError):
        Op(kind="gemm", flops=-1.0)
    with pytest.raises(ValueError):
        Op(kind="gemm", flops=1.0, divergence=1.5)
    op = Op(kind="gemm", flops=10.0, bytes=5.0)
    assert op.vectorizable is True


def test_phase_totals():
    p = Phase("x", [Op("gemm", 10.0, 2.0), Op("reduce", 5.0, 1.0)])
    assert p.flops == 15.0
    assert p.bytes == 3.0


def test_trace_totals_and_extend():
    t1 = Trace([Phase("a", [Op("gemm", 1.0)])])
    t2 = Trace([Phase("b", [Op("gemm", 2.0)]), Phase("c", [Op("gemm", 3.0)])])
    t1.extend(t2)
    assert t1.flops == 6.0
    assert t1.n_ops == 3
    assert [p.name for p in t1.phases] == ["a", "b", "c"]


def test_recorder_groups_ops_into_phases():
    rec = TraceRecorder()
    with rec.phase("dist"):
        rec.record(Op("gemm", 1.0))
        rec.record(Op("gemm", 2.0))
    with rec.phase("merge"):
        rec.record(Op("reduce", 3.0))
    assert [p.name for p in rec.trace.phases] == ["dist", "merge"]
    assert len(rec.trace.phases[0].ops) == 2


def test_recorder_drops_empty_phases():
    rec = TraceRecorder()
    with rec.phase("nothing"):
        pass
    assert rec.trace.phases == []


def test_nested_phases_flatten_into_outer():
    rec = TraceRecorder()
    with rec.phase("outer"):
        rec.record(Op("gemm", 1.0))
        with rec.phase("inner"):
            rec.record(Op("gemm", 2.0))
    assert len(rec.trace.phases) == 1
    assert rec.trace.phases[0].name == "outer"
    assert len(rec.trace.phases[0].ops) == 2


def test_orphan_op_gets_own_phase():
    rec = TraceRecorder()
    rec.record(Op("gemm", 1.0, tag="solo"))
    assert len(rec.trace.phases) == 1
    assert rec.trace.phases[0].name == "solo"


def test_null_recorder_swallows_everything():
    NULL_RECORDER.record(Op("gemm", 1.0))
    with NULL_RECORDER.phase("x"):
        NULL_RECORDER.record(Op("gemm", 1.0))
    assert NULL_RECORDER.trace.phases == []
    assert NULL_RECORDER.enabled is False
