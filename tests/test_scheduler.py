"""Work-distribution policies."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.parallel import lpt_assign, makespan, static_assign


def _is_partition(assignment, n_tasks):
    seen = sorted(i for tasks in assignment for i in tasks)
    return seen == list(range(n_tasks))


def test_static_assign_partition_and_balance():
    a = static_assign(10, 3)
    assert _is_partition(a, 10)
    sizes = [len(t) for t in a]
    assert max(sizes) - min(sizes) <= 1


def test_static_assign_more_workers_than_tasks():
    a = static_assign(2, 5)
    assert _is_partition(a, 2)
    assert sum(1 for t in a if t) == 2


def test_static_assign_rejects_zero_workers():
    with pytest.raises(ValueError):
        static_assign(5, 0)


def test_lpt_assign_partition():
    costs = [5.0, 1.0, 1.0, 1.0, 1.0, 1.0]
    a = lpt_assign(costs, 2)
    assert _is_partition(a, 6)


def test_lpt_beats_static_on_skewed_costs():
    # one huge task first: static puts it with other work, LPT isolates it
    costs = [10.0, 10.0, 1.0, 1.0, 1.0, 1.0, 1.0, 1.0]
    stat = makespan(static_assign(len(costs), 2), costs)
    lpt = makespan(lpt_assign(costs, 2), costs)
    assert lpt <= stat


def test_makespan_simple():
    assert makespan([[0, 1], [2]], [2.0, 3.0, 4.0]) == 5.0
    assert makespan([], []) == 0.0


def test_lpt_rejects_zero_workers():
    with pytest.raises(ValueError):
        lpt_assign([1.0], 0)


@settings(max_examples=50, deadline=None)
@given(
    st.lists(st.floats(min_value=0.1, max_value=100), min_size=1, max_size=40),
    st.integers(min_value=1, max_value=8),
)
def test_property_lpt_partition_and_bound(costs, w):
    a = lpt_assign(costs, w)
    assert _is_partition(a, len(costs))
    # LPT is a 4/3-approximation: makespan <= 4/3 * OPT + largest;
    # check the weaker certified bound: max(avg, max_cost) <= makespan
    ms = makespan(a, costs)
    lower = max(sum(costs) / w, max(costs))
    assert ms >= lower - 1e-9
    assert ms <= lower * (4.0 / 3.0) + max(costs) + 1e-9


# ------------------------------------------------------------ row-chunk plans


def _covers_rows(chunks, m):
    covered = []
    for lo, hi in chunks:
        assert 0 <= lo < hi <= m
        covered.extend(range(lo, hi))
    return covered == list(range(m))


def test_plan_row_chunks_static_regime():
    from repro.parallel import plan_row_chunks

    # light load: one contiguous chunk per worker, no oversubscription
    chunks = plan_row_chunks(1000, 4, grain=512)
    assert _covers_rows(chunks, 1000)
    assert len(chunks) == 4


def test_plan_row_chunks_dynamic_regime():
    from repro.parallel import plan_row_chunks

    # heavy load: oversubscribed chunks for dynamic balancing
    chunks = plan_row_chunks(100_000, 4, grain=512)
    assert _covers_rows(chunks, 100_000)
    assert len(chunks) > 4
    sizes = {hi - lo for lo, hi in chunks}
    assert all(32 <= s <= 512 for s in sizes)


def test_plan_row_chunks_small_inputs():
    from repro.parallel import plan_row_chunks

    assert plan_row_chunks(0, 4) == []
    assert plan_row_chunks(10, 1) == [(0, 10)]
    assert plan_row_chunks(20, 8, min_chunk=32) == [(0, 20)]
    with pytest.raises(ValueError):
        plan_row_chunks(10, 0)


@settings(max_examples=60, deadline=None)
@given(
    m=st.integers(min_value=0, max_value=50_000),
    w=st.integers(min_value=1, max_value=16),
)
def test_property_plan_row_chunks_partitions(m, w):
    from repro.parallel import plan_row_chunks

    chunks = plan_row_chunks(m, w)
    assert _covers_rows(chunks, m)
