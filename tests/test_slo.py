"""SLO monitor, latency-stats edge cases, and breach-driven batcher backoff.

The monitor is a pure policy object on an explicit clock, so every
behaviour here — window eviction, burn-rate math, cooldown pacing — is
tested deterministically with hand-picked timestamps.  The integration
tests then drive a real :class:`~repro.serving.searcher.StreamingSearcher`
replay and check the wiring: a tight budget makes the monitor fire and the
micro-batch ladder back off, and the monitor's percentiles agree exactly
with the post-hoc :class:`~repro.runtime.report.LatencyStats`.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import BruteForceIndex, SLOMonitor, StreamReport
from repro.runtime.report import LatencyStats, RunReport
from repro.serving import BatchPolicy, QueryBatcher, StreamingSearcher


# --------------------------------------------------------------------------
# LatencyStats edge cases (satellite: report-layer robustness)
# --------------------------------------------------------------------------
class TestLatencyStats:
    def test_empty_samples_give_zeros(self):
        s = LatencyStats.from_samples([])
        assert s.n == 0
        assert s.mean_s == s.p50_s == s.p95_s == s.p99_s == s.max_s == 0.0

    def test_single_sample_is_every_percentile(self):
        s = LatencyStats.from_samples([0.25])
        assert s.n == 1
        assert s.mean_s == s.p50_s == s.p95_s == s.p99_s == s.max_s == 0.25

    @pytest.mark.parametrize("bad", [float("nan"), float("inf"), -np.inf])
    def test_non_finite_samples_rejected(self, bad):
        with pytest.raises(ValueError, match="finite"):
            LatencyStats.from_samples([0.1, bad, 0.2])

    def test_matches_numpy_percentiles(self):
        rng = np.random.default_rng(3)
        lat = rng.exponential(0.01, size=500)
        s = LatencyStats.from_samples(lat)
        assert s.p50_s == float(np.percentile(lat, 50))
        assert s.p99_s == float(np.percentile(lat, 99))
        assert s.max_s == float(lat.max())

    def test_dict_round_trip(self):
        s = LatencyStats.from_samples([0.01, 0.02, 0.5])
        assert LatencyStats.from_dict(s.to_dict()) == s


# --------------------------------------------------------------------------
# SLOMonitor unit behaviour
# --------------------------------------------------------------------------
class TestSLOMonitor:
    def test_constructor_validation(self):
        with pytest.raises(ValueError):
            SLOMonitor(0.0)
        with pytest.raises(ValueError):
            SLOMonitor(0.1, target=1.0)
        with pytest.raises(ValueError):
            SLOMonitor(0.1, target=0.0)
        with pytest.raises(ValueError):
            SLOMonitor(0.1, window_s=0.0)

    @pytest.mark.parametrize("bad", [float("nan"), float("inf"), -0.5])
    def test_observe_rejects_bad_latency(self, bad):
        mon = SLOMonitor(0.1)
        with pytest.raises(ValueError):
            mon.observe(bad, now=0.0)

    def test_empty_monitor_reads_zero(self):
        mon = SLOMonitor(0.1)
        assert mon.n_window == 0
        assert mon.p99_s == 0.0
        assert mon.violation_fraction == 0.0
        assert mon.burn_rate == 0.0

    def test_violation_fraction_and_burn(self):
        # 10% violations against a 1% error budget -> burn 10
        mon = SLOMonitor(0.1, target=0.99, window_s=float("inf"))
        mon.on_breach(lambda m: None)
        for i in range(10):
            mon.observe(0.2 if i == 0 else 0.01, now=float(i))
        assert mon.n_window == 10
        assert mon.violation_fraction == pytest.approx(0.1)
        assert mon.burn_rate == pytest.approx(10.0)
        assert mon.n_violations_total == 1

    def test_window_eviction_drops_old_violations(self):
        mon = SLOMonitor(0.1, window_s=5.0)
        mon.observe(0.5, now=0.0)  # violation, will age out
        assert mon.violation_fraction == 1.0
        for t in (10.0, 10.5, 11.0):
            mon.observe(0.01, now=t)
        # the t=0 violation is outside [now - 5, now]
        assert mon.n_window == 3
        assert mon.violation_fraction == 0.0
        # lifetime counters are never evicted
        assert mon.n_observed == 4
        assert mon.n_violations_total == 1

    def test_breach_callback_fires_with_cooldown(self):
        fired = []
        mon = SLOMonitor(
            0.1, target=0.5, window_s=float("inf"), cooldown_s=2.0
        )
        mon.on_breach(lambda m: fired.append(m.burn_rate))
        # every sample violates: burn 2.0 > threshold 1.0 from the start
        for i in range(6):
            mon.observe(0.2, now=float(i))
        # fires at t=0, 2, 4 — paced by the 2 s cooldown, not once per query
        assert len(fired) == 3
        assert mon.n_breaches == 3
        assert all(b > mon.burn_threshold for b in fired)

    def test_no_breach_below_threshold(self):
        fired = []
        mon = SLOMonitor(0.1, target=0.5, window_s=float("inf"))
        mon.on_breach(lambda m: fired.append(m))
        for i in range(10):
            mon.observe(0.01, now=float(i))
        assert fired == []
        assert mon.n_breaches == 0

    def test_percentiles_agree_with_latency_stats(self):
        rng = np.random.default_rng(11)
        lat = rng.exponential(0.02, size=300)
        mon = SLOMonitor(0.05, window_s=float("inf"))
        for i, s in enumerate(lat):
            mon.observe(float(s), now=float(i))
        stats = LatencyStats.from_samples(lat)
        assert mon.p50_s == stats.p50_s
        assert mon.p95_s == stats.p95_s
        assert mon.p99_s == stats.p99_s

    def test_report_and_summary(self):
        mon = SLOMonitor(0.1, window_s=float("inf"))
        mon.observe(0.05, now=0.0, queue_depth=7)
        r = mon.report()
        assert r["n_window"] == 1
        assert r["queue_depth"] == 7
        assert r["budget_s"] == 0.1
        text = mon.summary()
        assert "p99" in text and "burn" in text and "1 served" in text


# --------------------------------------------------------------------------
# QueryBatcher.backoff — the knob a breach turns
# --------------------------------------------------------------------------
class TestBatcherBackoff:
    def test_backoff_steps_down_ladder(self):
        b = QueryBatcher(BatchPolicy(min_batch=1, max_batch=16))
        # climb a few levels by hand
        b._lvl = 3
        assert b.level == 3
        b.backoff()
        assert b.level == 2
        assert b.n_backoffs == 1
        b.backoff()
        b.backoff()
        assert b.level == 0

    def test_backoff_floors_at_zero(self):
        b = QueryBatcher(BatchPolicy(min_batch=1, max_batch=16))
        b.backoff()
        b.backoff()
        assert b.level == 0
        assert b.n_backoffs == 0  # no-op at the floor is not counted


# --------------------------------------------------------------------------
# Integration: monitor drives the ladder during a replayed stream
# --------------------------------------------------------------------------
@pytest.fixture
def corpus(rng):
    X = rng.normal(size=(2000, 16)).astype(np.float32)
    Q = rng.normal(size=(256, 16)).astype(np.float32)
    return X, Q


class TestServingIntegration:
    def test_breach_backs_off_ladder(self, corpus):
        X, Q = corpus
        idx = BruteForceIndex().build(X)
        # microscopic budget: every query violates, burn explodes, and the
        # monitor should hammer the ladder back down
        slo = SLOMonitor(
            1e-9, window_s=float("inf"), cooldown_s=0.0
        )
        srv = StreamingSearcher(
            idx,
            k=4,
            policy=BatchPolicy(max_delay_ms=50.0, max_batch=64),
            slo=slo,
        )
        rep = srv.search_stream(Q, qps=5000.0)
        assert slo.n_breaches > 0
        assert rep.n_backoffs > 0
        assert rep.slo is not None
        assert rep.slo["n_breaches"] == slo.n_breaches
        assert f"{rep.n_backoffs} backoffs" in rep.summary()

    def test_slo_report_agrees_with_stream_latency(self, corpus):
        X, Q = corpus
        idx = BruteForceIndex().build(X)
        slo = SLOMonitor(0.05, window_s=float("inf"))
        srv = StreamingSearcher(idx, k=4, slo=slo)
        rep = srv.search_stream(Q, qps=2000.0)
        # the monitor saw every sojourn the report's LatencyStats saw, and
        # both use np.percentile — agreement is exact
        assert rep.slo["n_window"] == rep.n_queries == len(Q)
        assert rep.slo["p50_s"] == rep.latency.p50_s
        assert rep.slo["p99_s"] == rep.latency.p99_s
        assert "slo" in rep.summary().lower() or "burn" in rep.summary()

    def test_stream_results_unchanged_by_monitoring(self, corpus):
        X, Q = corpus
        idx = BruteForceIndex().build(X)
        plain = StreamingSearcher(idx, k=3).search_stream(Q, qps=1000.0)
        slo = SLOMonitor(1e-9, window_s=float("inf"), cooldown_s=0.0)
        watched = StreamingSearcher(idx, k=3, slo=slo).search_stream(
            Q, qps=1000.0
        )
        np.testing.assert_array_equal(plain.idx, watched.idx)
        np.testing.assert_allclose(plain.dist, watched.dist)


# --------------------------------------------------------------------------
# Report round-trips (satellite: from_dict + summary splice fix)
# --------------------------------------------------------------------------
class TestReportRoundTrip:
    def test_run_report_round_trip(self, corpus):
        from repro.eval import traced_query

        X, Q = corpus
        idx = BruteForceIndex().build(X)
        rep = traced_query(idx, Q, k=2)
        d = rep.to_dict()
        back = RunReport.from_dict(d)
        assert back.to_dict() == d
        assert back.name == rep.name
        assert back.evals == rep.evals

    def test_stream_report_round_trip_keeps_slo(self, corpus):
        X, Q = corpus
        idx = BruteForceIndex().build(X)
        slo = SLOMonitor(0.05, window_s=float("inf"))
        rep = StreamingSearcher(idx, k=2, slo=slo).search_stream(
            Q, qps=1000.0
        )
        d = rep.to_dict()
        back = StreamReport.from_dict(d)
        assert back.to_dict() == d
        assert back.slo == rep.slo
        assert back.n_queries == rep.n_queries

    def test_stream_summary_contains_stream_lines(self, corpus):
        X, Q = corpus
        idx = BruteForceIndex().build(X)
        rep = StreamingSearcher(idx, k=2).search_stream(Q, qps=1000.0)
        text = rep.summary()
        # the splice used to drop/duplicate lines; check both halves render
        assert "latency: p50" in text
        assert "batches:" in text
        assert "q/s" in text
        assert text.splitlines()[0].startswith(rep.name)
