"""The traffic-scenario generators: seeded, structured, pluggable.

Every generator must be a pure function of its explicit seed (the whole
point of the ``--seed`` satellite: benches replay byte-identical traffic
run-to-run), must emit a valid trace (nondecreasing arrivals, one per
query), and must actually exhibit the structure its name promises —
repeats under Zipf, rate swings under diurnal, burst near-duplicates
under flash crowds, moving targets under drift.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import ExactRBC
from repro.index import Router
from repro.serving import (
    SCENARIOS,
    BatchPolicy,
    StreamingSearcher,
    make_scenario,
    observe_scenario,
)


@pytest.fixture
def pool(rng):
    return rng.normal(size=(256, 8))


# ----------------------------------------------------------- trace contract


@pytest.mark.parametrize("name", sorted(SCENARIOS))
def test_trace_shape_and_arrivals(name, pool):
    trace = make_scenario(name, pool, n_queries=200, qps=1000.0, seed=5)
    assert trace.name == name
    assert trace.queries.shape == (200, 8)
    assert trace.arrivals.shape == (200,)
    assert np.all(np.diff(trace.arrivals) >= 0)
    assert np.all(np.isfinite(trace.queries))
    assert trace.params["seed"] == 5
    assert trace.n_queries == 200
    assert trace.duration_s > 0


@pytest.mark.parametrize("name", sorted(SCENARIOS))
def test_same_seed_same_trace(name, pool):
    a = make_scenario(name, pool, n_queries=150, qps=800.0, seed=11)
    b = make_scenario(name, pool, n_queries=150, qps=800.0, seed=11)
    assert np.array_equal(a.queries, b.queries)
    assert np.array_equal(a.arrivals, b.arrivals)
    c = make_scenario(name, pool, n_queries=150, qps=800.0, seed=12)
    assert not np.array_equal(a.queries, c.queries) or not np.array_equal(
        a.arrivals, c.arrivals
    )


@pytest.mark.parametrize("name", sorted(SCENARIOS))
def test_offered_rate_near_requested(name, pool):
    trace = make_scenario(name, pool, n_queries=2000, qps=1000.0, seed=0)
    # Poisson noise and burst head-room allowed; order of magnitude holds
    assert 300.0 < trace.offered_qps < 3000.0


def test_unknown_scenario_raises(pool):
    with pytest.raises(ValueError, match="unknown scenario"):
        make_scenario("tsunami", pool, n_queries=10, qps=10.0)


# ------------------------------------------------------- promised structure


def test_zipfian_has_hot_repeats(pool):
    trace = make_scenario(
        "zipfian", pool, n_queries=1000, qps=1000.0, seed=3
    )
    _, counts = np.unique(trace.queries, axis=0, return_counts=True)
    # exact repeats of hot prototypes dominate: far fewer unique rows
    # than queries, and the hottest key is asked many times
    assert counts.max() >= 50
    assert counts.size < 700


def test_diurnal_rate_actually_swings(pool):
    trace = make_scenario(
        "diurnal", pool, n_queries=4000, qps=2000.0, seed=1,
        period_s=1.0, depth=0.9,
    )
    # bin arrivals at quarter-period resolution: peak bins must carry
    # several times the trough bins
    bins = np.histogram(
        trace.arrivals, bins=max(8, int(4 * trace.duration_s))
    )[0]
    inner = bins[1:-1]  # edge bins are partial
    assert inner.max() > 3 * max(inner.min(), 1)


def test_flash_crowd_bursts_are_near_duplicates(pool):
    trace = make_scenario(
        "flash_crowd", pool, n_queries=1500, qps=1000.0, seed=2,
        burst_x=10.0, jitter=1e-5,
    )
    # during a burst everyone asks (a jitter of) the same prototype, so
    # a large clump of queries sits within ~jitter of one another
    D = np.linalg.norm(
        trace.queries[:, None, :] - trace.queries[None, :500, :], axis=2
    )
    clump = (D < 1e-3).sum(axis=0).max()
    assert clump > 100


def test_drift_moves_the_hot_set(pool):
    trace = make_scenario(
        "drift", pool, n_queries=1000, qps=1000.0, seed=4,
        background_frac=0.0, drift_scale=0.2,
    )
    early = trace.queries[:100].mean(axis=0)
    late = trace.queries[-100:].mean(axis=0)
    assert np.linalg.norm(early - late) > 0.5


# ----------------------------------------------------------- stack plumbing


def test_trace_replays_through_search_stream(rng, pool):
    X = rng.normal(size=(800, 8))
    idx = ExactRBC(seed=0).build(X)
    trace = make_scenario("zipfian", pool, n_queries=60, qps=3000.0, seed=9)
    with StreamingSearcher(
        idx, k=2, policy=BatchPolicy(max_batch=16), cache=True
    ) as srv:
        report = srv.search_stream(
            trace.queries, arrival_times=trace.arrivals, name=trace.name
        )
    assert report.n_queries == 60
    assert report.cache_hits + report.cache_misses == 60
    assert report.cache_hits > 0  # zipfian repeats hit within one stream
    # cache-served answers match a fresh uncached query bit-for-bit
    with StreamingSearcher(idx, k=2) as plain:
        want = plain.search_stream(trace.queries, qps=3000.0)
    np.testing.assert_array_equal(report.idx, want.idx)
    assert np.array_equal(report.dist, want.dist)


def test_observe_scenario_feeds_router_cost_model(rng, pool):
    X = rng.normal(size=(600, 8))
    router = Router(seed=0).build(X)
    trace = make_scenario("uniform", pool, n_queries=30, qps=2000.0, seed=0)
    router.query(trace.queries[:4], 2)  # sets last_decision
    backend = router.last_decision.backend
    with StreamingSearcher(router, k=2) as srv:
        report = srv.search_stream(
            trace.queries, arrival_times=trace.arrivals
        )
    before = router._cost[backend].predict(2)
    observe_scenario(router, report, backend=backend)
    after = router._cost[backend].predict(2)
    assert after is not None
    assert after != before  # the stream's measured cost was ingested


def test_observe_scenario_needs_a_backend(rng):
    X = rng.normal(size=(200, 4))
    router = Router(seed=0).build(X)
    router.last_decision = None
    with pytest.raises(ValueError, match="backend"):
        observe_scenario(router, object())
