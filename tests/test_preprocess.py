"""Data preprocessing utilities."""

import numpy as np
import pytest

from repro.data.preprocess import (
    Standardizer,
    split_database_queries,
    unit_normalize,
)


def test_standardizer_zero_mean_unit_var(rng):
    X = rng.normal(size=(200, 4)) * [1, 10, 100, 1000] + [5, -3, 0, 99]
    s = Standardizer.fit(X)
    Z = s.transform(X)
    np.testing.assert_allclose(Z.mean(axis=0), 0.0, atol=1e-10)
    np.testing.assert_allclose(Z.std(axis=0), 1.0, atol=1e-10)


def test_standardizer_applies_database_statistics_to_queries(rng):
    # queries must be transformed with the DATABASE's mean/std (using
    # query statistics would silently change the metric)
    X = rng.normal(size=(100, 3)) * 7 + 2
    Q = rng.normal(size=(10, 3)) * 50 - 4  # deliberately different stats
    s = Standardizer.fit(X)
    np.testing.assert_allclose(
        s.transform(Q), (Q - X.mean(axis=0)) / X.std(axis=0)
    )


def test_standardized_euclidean_is_diagonal_mahalanobis(rng):
    from repro.metrics import Euclidean, Mahalanobis

    X = rng.normal(size=(80, 3)) * [1, 10, 100]
    Q = rng.normal(size=(5, 3)) * [1, 10, 100]
    s = Standardizer.fit(X)
    D_std = Euclidean().pairwise(s.transform(Q), s.transform(X))
    VI = np.diag(1.0 / s.std**2)
    D_mah = Mahalanobis(VI).pairwise(Q, X)
    np.testing.assert_allclose(D_std, D_mah, rtol=1e-8, atol=1e-8)


def test_standardizer_constant_feature(rng):
    X = rng.normal(size=(50, 2))
    X[:, 1] = 7.0
    Z = Standardizer.fit(X).transform(X)
    assert np.isfinite(Z).all()
    np.testing.assert_allclose(Z[:, 1], 0.0)


def test_standardizer_roundtrip(rng):
    X = rng.normal(size=(60, 3)) * 5 + 1
    s = Standardizer.fit(X)
    np.testing.assert_allclose(s.inverse_transform(s.transform(X)), X)


def test_standardizer_validation(rng):
    with pytest.raises(ValueError, match="at least 2"):
        Standardizer.fit(np.zeros((1, 3)))
    s = Standardizer.fit(rng.normal(size=(10, 3)))
    with pytest.raises(ValueError, match="fitted for d=3"):
        s.transform(rng.normal(size=(2, 4)))


def test_fit_transform(rng):
    X = rng.normal(size=(40, 2)) + 9
    s = Standardizer(mean=np.zeros(2), std=np.ones(2))
    Z = s.fit_transform(X)
    np.testing.assert_allclose(Z.mean(axis=0), 0.0, atol=1e-10)


def test_unit_normalize(rng):
    X = rng.normal(size=(30, 5)) * 100
    U = unit_normalize(X)
    np.testing.assert_allclose(np.linalg.norm(U, axis=1), 1.0)
    with pytest.raises(ValueError, match="zero"):
        unit_normalize(np.zeros((2, 3)))


def test_split_disjoint_and_complete(rng):
    X = rng.normal(size=(100, 2))
    db, q = split_database_queries(X, 25, seed=3)
    assert db.shape == (75, 2)
    assert q.shape == (25, 2)
    combined = np.vstack([db, q])
    assert sorted(map(tuple, combined)) == sorted(map(tuple, X))


def test_split_deterministic(rng):
    X = rng.normal(size=(50, 2))
    a = split_database_queries(X, 10, seed=1)
    b = split_database_queries(X, 10, seed=1)
    np.testing.assert_array_equal(a[0], b[0])


def test_split_validation(rng):
    X = rng.normal(size=(10, 2))
    with pytest.raises(ValueError):
        split_database_queries(X, 0)
    with pytest.raises(ValueError):
        split_database_queries(X, 10)
