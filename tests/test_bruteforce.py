"""The brute-force primitive BF(Q, X[L])."""

import numpy as np
import pytest

from repro.metrics import EditDistance, Euclidean, get_metric
from repro.parallel import bf_knn, bf_knn_processes, bf_nn, bf_range
from repro.simulator import TraceRecorder


def reference_knn(Q, X, k, metric="euclidean"):
    D = get_metric(metric).pairwise(Q, X)
    order = np.argsort(D, axis=1, kind="stable")[:, :k]
    return np.take_along_axis(D, order, axis=1), order


@pytest.mark.parametrize("metric", ["euclidean", "manhattan", "chebyshev"])
@pytest.mark.parametrize("k", [1, 3, 10])
def test_matches_reference(metric, k, small_vectors):
    X, Q = small_vectors
    d, i = bf_knn(Q, X, metric, k=k)
    ed, _ = reference_knn(Q, X, k, metric)
    np.testing.assert_allclose(d, ed)
    # index consistency: distances recomputed from indices agree
    m = get_metric(metric)
    for r in range(Q.shape[0]):
        np.testing.assert_allclose(m.pairwise(Q[r : r + 1], X[i[r]])[0], d[r])


def test_tiny_tiles_match_single_tile(small_vectors):
    X, Q = small_vectors
    d1, i1 = bf_knn(Q, X, k=5)
    d2, i2 = bf_knn(Q, X, k=5, tile_cols=7)
    np.testing.assert_allclose(d1, d2)


def test_tiny_row_chunks_match(small_vectors):
    X, Q = small_vectors
    d1, _ = bf_knn(Q, X, k=5)
    d2, _ = bf_knn(Q, X, k=5, row_chunk=3)
    np.testing.assert_allclose(d1, d2)


def test_thread_executor_matches_serial(small_vectors):
    X, Q = small_vectors
    d1, _ = bf_knn(Q, X, k=4)
    d2, _ = bf_knn(Q, X, k=4, executor="threads", row_chunk=4)
    np.testing.assert_allclose(d1, d2)


def test_process_backend_matches_serial(small_vectors):
    X, Q = small_vectors
    d1, _ = bf_knn(Q, X, k=4)
    d2, _ = bf_knn_processes(Q, X, "euclidean", k=4, n_workers=2, row_chunk=8)
    np.testing.assert_allclose(d1, d2)


def test_process_backend_rejects_metric_instance(small_vectors):
    X, Q = small_vectors
    with pytest.raises(TypeError):
        bf_knn_processes(Q, X, Euclidean(), k=1)


def test_bf_knn_processes_executor_matches_serial(small_vectors):
    # the regression this guards: executor="processes" used to crash with a
    # pickle error on the chunk closure
    X, Q = small_vectors
    d1, i1 = bf_knn(Q, X, k=4)
    d2, i2 = bf_knn(Q, X, k=4, executor="processes", row_chunk=64)
    np.testing.assert_allclose(d1, d2)
    np.testing.assert_array_equal(i1, i2)


def test_bf_knn_processes_counter_credit(small_vectors):
    X, Q = small_vectors
    m = get_metric("euclidean")
    before = m.counter.n_evals
    bf_knn(Q, X, m, k=2, executor="processes")
    assert m.counter.n_evals - before == Q.shape[0] * X.shape[0]


def test_bf_knn_processes_string_metric():
    # non-vector metrics can't use shared memory; they go through the
    # pickled-chunk worker, rebuilt by registry name in each worker
    S = ["cat", "cart", "dog", "dig", "cot", "cut", "coat", "dart"]
    Q = ["cut", "dug"]
    d1, i1 = bf_knn(Q, S, "edit", k=3)
    d2, i2 = bf_knn(Q, S, "edit", k=3, executor="processes", row_chunk=1)
    np.testing.assert_array_equal(d1, d2)


def test_bf_knn_processes_default_instance_routed(small_vectors):
    # a pristine registry-metric instance is equivalent to its name and is
    # accepted; only customized instances are rejected
    X, Q = small_vectors
    d1, _ = bf_knn(Q, X, k=2)
    d2, _ = bf_knn(Q, X, Euclidean(), k=2, executor="processes")
    np.testing.assert_allclose(d1, d2)


def test_bf_knn_processes_custom_instance_raises(small_vectors):
    from repro.metrics import Minkowski

    X, Q = small_vectors
    with pytest.raises(TypeError, match="registry"):
        bf_knn(Q, X, Minkowski(p=4.0), k=2, executor="processes")


def test_bf_knn_processes_tracing_raises(small_vectors):
    X, Q = small_vectors
    with pytest.raises(ValueError, match="trace"):
        bf_knn(Q, X, k=2, executor="processes", recorder=TraceRecorder())


def test_bf_knn_processes_ids_restriction(small_vectors, rng):
    X, Q = small_vectors
    L = rng.choice(X.shape[0], size=31, replace=False)
    d1, i1 = bf_knn(Q, X, k=3, ids=L)
    d2, i2 = bf_knn(Q, X, k=3, ids=L, executor="processes")
    np.testing.assert_allclose(d1, d2)
    assert set(i2.ravel()) <= set(L.tolist())


def test_ids_restriction(small_vectors, rng):
    X, Q = small_vectors
    L = rng.choice(X.shape[0], size=37, replace=False)
    d, i = bf_knn(Q, X, k=3, ids=L)
    # indices are global and drawn from L
    assert set(i.ravel()) <= set(L.tolist())
    ed, ei = reference_knn(Q, X[L], 3)
    np.testing.assert_allclose(d, ed)


def test_empty_ids_returns_padding(small_vectors):
    X, Q = small_vectors
    d, i = bf_knn(Q, X, k=2, ids=np.array([], dtype=np.int64))
    assert np.isinf(d).all()
    assert (i == -1).all()
    assert d.shape == (Q.shape[0], 2)


def test_k_larger_than_database(rng):
    X = rng.normal(size=(3, 2))
    Q = rng.normal(size=(2, 2))
    d, i = bf_knn(Q, X, k=5)
    assert d.shape == (2, 5)
    assert np.isfinite(d[:, :3]).all()
    assert np.isinf(d[:, 3:]).all()
    assert (i[:, 3:] == -1).all()


def test_single_query_vector(rng):
    X = rng.normal(size=(50, 4))
    q = X[17]  # 1-d array: a single point
    d, i = bf_knn(q, X, k=1)
    assert d.shape == (1, 1)
    assert i[0, 0] == 17
    assert d[0, 0] == pytest.approx(0.0, abs=1e-6)


def test_bf_nn_squeezes(small_vectors):
    X, Q = small_vectors
    d, i = bf_nn(Q, X)
    assert d.shape == (Q.shape[0],)
    assert i.shape == (Q.shape[0],)
    dk, ik = bf_knn(Q, X, k=1)
    np.testing.assert_allclose(d, dk[:, 0])


def test_empty_database_raises(rng):
    with pytest.raises(ValueError, match="empty"):
        bf_knn(rng.normal(size=(2, 3)), np.empty((0, 3)), k=1)


def test_bad_k_raises(small_vectors):
    X, Q = small_vectors
    with pytest.raises(ValueError):
        bf_knn(Q, X, k=0)


def test_string_metric(rng):
    S = ["cat", "cart", "dog", "dig", "cot"]
    d, i = bf_knn(["cut"], S, EditDistance(), k=2)
    assert d[0, 0] == 1.0  # cat or cot
    assert i[0, 0] in (0, 4)


def test_bf_range_matches_reference(small_vectors):
    X, Q = small_vectors
    eps = 2.0
    out = bf_range(Q, X, eps)
    D = get_metric("euclidean").pairwise(Q, X)
    for r, (d, i) in enumerate(out):
        expect = np.flatnonzero(D[r] <= eps)
        assert set(i.tolist()) == set(expect.tolist())
        assert (d <= eps).all()
        assert (np.diff(d) >= 0).all()  # sorted ascending


def test_bf_range_empty_result(rng):
    X = rng.normal(size=(20, 3)) + 100.0
    Q = rng.normal(size=(2, 3))
    out = bf_range(Q, X, 0.5)
    for d, i in out:
        assert d.size == 0 and i.size == 0


def test_bf_range_with_ids(small_vectors, rng):
    X, Q = small_vectors
    L = rng.choice(X.shape[0], size=25, replace=False)
    out = bf_range(Q, X, 3.0, ids=L)
    for d, i in out:
        assert set(i.tolist()) <= set(L.tolist())


def test_bf_range_negative_eps(small_vectors):
    X, Q = small_vectors
    with pytest.raises(ValueError):
        bf_range(Q, X, -1.0)


def test_counter_reflects_all_pairs(small_vectors):
    X, Q = small_vectors
    m = get_metric("euclidean")
    bf_knn(Q, X, m, k=1)
    assert m.counter.n_evals == Q.shape[0] * X.shape[0]


def test_trace_records_gemm_work(small_vectors):
    X, Q = small_vectors
    rec = TraceRecorder()
    m = get_metric("euclidean")
    bf_knn(Q, X, m, k=2, recorder=rec, tile_cols=100)
    trace = rec.trace
    assert trace.n_ops > 0
    gemm_flops = sum(
        op.flops for p in trace.phases for op in p.ops if op.kind == "gemm"
    )
    expected = Q.shape[0] * X.shape[0] * m.flops_per_eval(X.shape[1])
    assert gemm_flops == pytest.approx(expected)
    # tiling must produce a merge phase
    assert any("merge" in p.name for p in trace.phases)


def test_exhaustive_small_case():
    X = np.array([[0.0], [1.0], [2.0], [3.0]])
    Q = np.array([[1.2]])
    d, i = bf_knn(Q, X, k=4)
    np.testing.assert_array_equal(i, [[1, 2, 0, 3]])
    np.testing.assert_allclose(d, [[0.2, 0.8, 1.2, 1.8]])


def test_thread_backend_scheduler_chunks_match_serial(rng):
    """The scheduler-planned thread chunking is invisible in the results."""
    from repro.runtime import ExecContext

    X = rng.normal(size=(700, 9))
    Q = rng.normal(size=(150, 9))
    ds, is_ = bf_knn(Q, X, k=4)
    # no row_chunk override: the thread path plans via plan_row_chunks
    dt, it = bf_knn(Q, X, k=4, ctx=ExecContext(executor="threads", n_workers=3))
    np.testing.assert_array_equal(is_, it)
    np.testing.assert_allclose(ds, dt)
