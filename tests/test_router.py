"""The SLO-driven query router: planning, degradation, and serving glue."""

import numpy as np
import pytest

from repro.core import ExactRBC, OneShotRBC
from repro.index import RouteDecision, Router, UnsupportedCapability
from repro.obs import SLOMonitor
from repro.parallel import bf_knn


@pytest.fixture(scope="module")
def data():
    rng = np.random.default_rng(17)
    return rng.normal(size=(400, 8))


@pytest.fixture(scope="module")
def router(data):
    return Router(seed=0).build(data)


def test_default_build_wires_the_ladder(router):
    assert router.ladder == Router.DEFAULT_LADDER
    assert set(router.ladder) <= set(router.backend_names())
    assert router.rung == 0
    assert router.c_est is not None and router.c_est >= 1.0


def test_plan_is_pure_and_exact_first(router):
    before = router.last_decision
    decision = router.plan(32, k=3)
    assert isinstance(decision, RouteDecision)
    assert decision.backend == "rbc-exact"
    assert decision.rung == 0
    assert decision.measured_s is None
    assert router.last_decision is before  # plan() never dispatches


def test_tiny_budget_forces_cheapest_rung(router):
    # a budget nothing can meet: the plan falls back to the cheapest
    # remaining rung instead of failing
    decision = router.plan(64, k=3, latency_budget_s=1e-12)
    assert decision.backend in router.ladder
    costs = {
        name: router.predict_cost_s(name, 64, 3) for name in router.ladder
    }
    assert decision.backend == min(costs, key=costs.get)
    assert "over budget" in decision.reason


def test_exact_rung_matches_oracle(router, data):
    Q = data[:16]
    d, i = router.query(Q, k=2)
    assert router.last_decision.backend == "rbc-exact"
    ref, _ = bf_knn(Q, data, k=2)
    np.testing.assert_allclose(d, ref, atol=1e-10)


def test_pinned_backend_dispatch(router, data):
    d, i = router.query(data[:4], k=1, backend="rpforest")
    assert router.last_decision.backend == "rpforest"
    assert router.last_decision.reason == "pinned by caller"
    assert d.shape == (4, 1)


def test_degrade_restore_walk(router):
    assert router.restore() == 0
    rungs = [router.degrade() for _ in range(len(router.ladder) + 2)]
    # monotone, clamped at the last rung
    assert rungs[-1] == len(router.ladder) - 1
    assert router.plan(8, k=1).backend == router.ladder[-1]
    assert router.restore() == 0
    assert router.plan(8, k=1).backend == router.ladder[0]


def test_measured_latency_feeds_cost_model(router, data):
    router.restore()
    before = router.predict_cost_s("rbc-exact", 1, 2)
    for _ in range(3):
        router.query(data[:8], k=2)
    after = router.predict_cost_s("rbc-exact", 1, 2)
    assert after != before  # EWMA moved on observed wall clock
    assert router.last_decision.measured_s is not None


def test_attach_slo_degrades_on_breach(data):
    router = Router(seed=0).build(data)
    mon = SLOMonitor(0.001, window_s=60.0, burn_threshold=1.0, cooldown_s=0.0)
    router.attach_slo(mon)
    assert router.rung == 0
    # hammer the monitor with over-budget latencies: every breach walks
    # one more rung down the ladder
    now = 0.0
    while router.rung < len(router.ladder) - 1:
        now += 0.1
        mon.observe(0.5, now)
    assert router.rung == len(router.ladder) - 1
    assert mon.n_breaches >= 1


def test_route_counts_and_history(router, data):
    router.restore()
    base = sum(router.route_counts().values())
    router.query(data[:4], k=1)
    router.query(data[:4], k=1, backend="rbc-oneshot")
    counts = router.route_counts()
    assert sum(counts.values()) == base + 2
    assert counts.get("rbc-oneshot", 0) >= 1
    assert router.history[-1].backend == "rbc-oneshot"


def test_range_routes_to_range_capable(router, data):
    out = router.range_query(data[:3], 2.0)
    assert len(out) == 3
    assert router.last_decision.backend == "rbc-exact"


def test_range_refused_without_capable_backend(data):
    oneshot = OneShotRBC(seed=0)
    router = Router(
        backends={"rbc-oneshot": oneshot},
        ladder=("rbc-oneshot",),
        calibrate=False,
    ).build(data)
    with pytest.raises(UnsupportedCapability):
        router.range_query(data[:2], 1.0)


def test_observe_report_ingestion(router, data):
    from repro.eval import traced_query

    router.restore()
    report = traced_query(
        router.backend("rbc-exact"), data[:32], [], k=2, name="probe"
    )
    before = router.predict_cost_s("rbc-exact", 1, 2)
    router.observe_report("rbc-exact", report)
    # ingestion moves (or at minimum re-confirms) the EWMA estimate
    assert router.predict_cost_s("rbc-exact", 1, 2) > 0


def test_observe_report_is_idempotent_per_report(data):
    """Regression: re-observing one RunReport must not double-count.

    The EWMA is a weighted average, so feeding the same report twice
    (two harness layers both handing it back) used to keep pulling the
    model toward that one sample.  Observations are now deduplicated by
    ``report.report_id``."""
    from repro.eval import traced_query

    router = Router(seed=0, calibrate=False).build(data)
    exact = router.backend("rbc-exact")
    r1 = traced_query(exact, data[:32], [], k=2, name="probe-a")
    r2 = traced_query(exact, data[:16], [], k=2, name="probe-b")
    assert r1.report_id != r2.report_id
    router.observe_report("rbc-exact", r1)
    router.observe_report("rbc-exact", r2)
    settled = router.predict_cost_s("rbc-exact", 64, 2)
    # the duplicate is dropped: the prediction does not move again
    router.observe_report("rbc-exact", r2)
    router.observe_report("rbc-exact", r2)
    assert router.predict_cost_s("rbc-exact", 64, 2) == settled
    # a genuinely fresh report is still ingested
    r3 = traced_query(exact, data[:8], [], k=2, name="probe-c")
    router.observe_report("rbc-exact", r3)
    assert r3.report_id in router._seen_reports


def test_router_memory_footprint_sums_backends(router):
    total = router.memory_footprint()
    parts = sum(
        router.backend(name).memory_footprint()
        for name in router.backend_names()
    )
    assert total == parts > 0


def test_router_capabilities_reflect_rung(router):
    router.restore()
    assert router.capabilities().exact  # rung 0 is the exact RBC
    router.degrade()
    assert not router.capabilities().exact  # one-shot rung
    router.restore()


def test_streaming_searcher_auto_wires_degradation(data):
    from repro.serving import StreamingSearcher

    router = Router(seed=0).build(data)
    mon = SLOMonitor(1e-6, window_s=60.0, burn_threshold=1.0, cooldown_s=0.0)
    with StreamingSearcher(router, k=2, slo=mon) as srv:
        for q in data[:6]:
            srv.submit(q)
        srv.drain()
    # every served query blows the 1us budget, so the searcher's SLO loop
    # must have walked the router down the ladder
    assert router.rung > 0


def test_sharded_searcher_unwraps_shard_target(data):
    from repro.serving import ShardedStreamingSearcher

    router = Router(seed=0).build(data)
    with ShardedStreamingSearcher(router, n_shards=2, k=1) as srv:
        got = srv.search_stream(data[:5], qps=3000.0)
    ref, _ = bf_knn(data[:5], data, k=1)
    np.testing.assert_allclose(got.dist, ref, atol=2e-5)
    assert got.n_shards == 2
