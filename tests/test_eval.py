"""Evaluation utilities: rank error, recall, the harness."""

import numpy as np
import pytest

from repro.baselines import BruteForceIndex
from repro.core import ExactRBC
from repro.eval import (
    QueryRun,
    distance_ratio,
    format_table,
    geomean,
    mean_rank,
    ranks_of_results,
    recall_at_k,
    results_match_exactly,
    traced_build,
    traced_query,
)
from repro.parallel import bf_knn
from repro.simulator import DESKTOP_QUAD, SEQUENTIAL


def test_rank_zero_for_exact_results(small_vectors):
    X, Q = small_vectors
    _, i = bf_knn(Q, X, k=1)
    ranks = ranks_of_results(Q, X, i)
    assert (ranks == 0).all()
    assert mean_rank(Q, X, i) == 0.0


def test_rank_counts_closer_points():
    X = np.arange(10.0)[:, None]
    Q = np.array([[0.1]])
    # return point 3: points 0,1,2 are closer -> rank 3
    ranks = ranks_of_results(Q, X, np.array([3]))
    assert ranks[0] == 3


def test_rank_accepts_2d_takes_first_column():
    X = np.arange(10.0)[:, None]
    Q = np.array([[0.1]])
    ranks = ranks_of_results(Q, X, np.array([[2, 0]]))
    assert ranks[0] == 2


def test_rank_missing_result_scores_n():
    X = np.arange(5.0)[:, None]
    ranks = ranks_of_results(np.array([[1.0]]), X, np.array([-1]))
    assert ranks[0] == 5


def test_recall_at_k():
    true = np.array([[1, 2, 3], [4, 5, 6]])
    found = np.array([[1, 2, 9], [4, 5, 6]])
    assert recall_at_k(found, true) == pytest.approx(5 / 6)
    assert recall_at_k(true, true) == 1.0


def test_recall_ignores_padding():
    true = np.array([[1, -1]])
    found = np.array([[1, -1]])
    assert recall_at_k(found, true) == 1.0


def test_recall_query_count_mismatch():
    with pytest.raises(ValueError):
        recall_at_k(np.array([[1]]), np.array([[1], [2]]))


def test_results_match_exactly_tolerates_ties():
    a = np.array([[1.0, 2.0]])
    b = np.array([[1.0, 2.0 + 1e-12]])
    assert results_match_exactly(a, b)
    assert not results_match_exactly(a, np.array([[1.0, 2.5]]))


def test_distance_ratio():
    found = np.array([[2.0], [3.0]])
    true = np.array([[1.0], [3.0]])
    assert distance_ratio(found, true) == pytest.approx(1.5)
    # zero true distances are skipped
    assert distance_ratio(np.array([[5.0]]), np.array([[0.0]])) == 1.0


def test_geomean():
    assert geomean([1.0, 4.0]) == pytest.approx(2.0)
    assert geomean([10.0]) == pytest.approx(10.0)
    with pytest.raises(ValueError):
        geomean([1.0, 0.0])
    with pytest.raises(ValueError):
        geomean([])


def test_format_table_alignment():
    out = format_table(
        ["name", "value"],
        [["bio", 38.1], ["covertype", 0.0001234]],
        title="Table X",
    )
    lines = out.splitlines()
    assert lines[0] == "Table X"
    assert "name" in lines[1] and "value" in lines[1]
    assert "bio" in lines[3]
    assert "1.23e-04" in out  # small floats rendered in scientific notation


def test_traced_query_collects_everything(small_vectors):
    X, Q = small_vectors
    idx = BruteForceIndex().build(X)
    run = traced_query(idx, Q, [SEQUENTIAL, DESKTOP_QUAD], k=2)
    assert isinstance(run, QueryRun)
    assert run.dist.shape == (Q.shape[0], 2)
    assert run.evals == Q.shape[0] * X.shape[0]
    assert run.wall_s > 0
    assert run.sim_time(SEQUENTIAL) > 0
    assert run.sim_time(DESKTOP_QUAD) > 0


def test_traced_query_parallel_workload_scales(rng):
    # a workload with many independent tiles must run faster on more cores
    X = rng.normal(size=(20_000, 16))
    Q = rng.normal(size=(512, 16))
    idx = BruteForceIndex().build(X)
    run = traced_query(
        idx, Q, [SEQUENTIAL, DESKTOP_QUAD], k=1, tile_cols=1024, row_chunk=64
    )
    # note: tile count >> 4, so the quad should be ~4x faster minus sync
    assert run.sim_time(DESKTOP_QUAD) < 0.5 * run.sim_time(SEQUENTIAL)


def test_traced_build(small_vectors):
    X, _ = small_vectors
    rbc = ExactRBC(seed=0)
    sims = traced_build(rbc, X, [DESKTOP_QUAD], n_reps=10)
    assert rbc.is_built
    assert sims[DESKTOP_QUAD.name].time_s > 0
