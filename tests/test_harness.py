"""The eval harness as a runtime client: traced runs return RunReports.

``traced_query``/``traced_build`` are the package's highest-level
observability entry points; these tests pin their contract: the counter
window is exactly the run's work, every requested machine is replayed,
and the report's trace totals agree with a manual recorder run of the
same query.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines import BruteForceIndex
from repro.core import ExactRBC, OneShotRBC
from repro.eval import QueryRun, RunReport, traced_build, traced_query
from repro.runtime import ExecContext
from repro.simulator import AMD_48CORE, DESKTOP_QUAD, SEQUENTIAL
from repro.simulator.trace import TraceRecorder


def test_traced_query_counter_window_is_exact(small_vectors):
    """``report.evals`` counts only this run, whatever ran before."""
    X, Q = small_vectors
    index = BruteForceIndex().build(X)
    # pollute the global counter with unrelated work first
    index.query(Q, k=1)
    index.query(Q, k=2)
    run = traced_query(index, Q, k=1)
    assert run.evals == Q.shape[0] * X.shape[0]
    assert run.n_calls >= 1
    assert run.wall_s > 0.0


def test_traced_query_sims_per_machine(small_vectors):
    X, Q = small_vectors
    index = BruteForceIndex().build(X)
    machines = [DESKTOP_QUAD, AMD_48CORE, SEQUENTIAL]
    run = traced_query(index, Q, machines, k=2)
    assert set(run.sims) == {m.name for m in machines}
    for m in machines:
        assert run.sim_time(m) > 0.0
    assert run.sim_time(AMD_48CORE) == run.sims[AMD_48CORE.name].time_s


def test_traced_query_agrees_with_manual_recorder_run(small_vectors):
    """The report's trace totals are exactly a manual recorder run's."""
    X, Q = small_vectors
    k = 3

    manual = TraceRecorder()
    index = ExactRBC(seed=0).build(X)
    dist_m, idx_m = index.query(Q, k=k, recorder=manual)
    manual_stats = index.last_stats

    index2 = ExactRBC(seed=0).build(X)
    run = traced_query(index2, Q, [DESKTOP_QUAD], k=k)

    np.testing.assert_array_equal(run.dist, dist_m)
    np.testing.assert_array_equal(run.idx, idx_m)
    assert run.flops == pytest.approx(manual.trace.flops)
    assert run.bytes == pytest.approx(manual.trace.bytes)
    assert run.n_ops == manual.trace.n_ops
    assert run.evals == manual_stats.total_evals
    assert run.rule_counts == manual_stats.rule_counts()
    # per-phase aggregation covers the same phases the manual trace saw
    assert set(run.phases) >= {p.name for p in manual.trace.phases}
    from repro.simulator.machine import simulate

    assert run.sim_time(DESKTOP_QUAD) == pytest.approx(
        simulate(manual.trace, DESKTOP_QUAD).time_s
    )


def test_traced_query_is_a_queryrun(small_vectors):
    X, Q = small_vectors
    run = traced_query(BruteForceIndex().build(X), Q, k=1)
    assert isinstance(run, QueryRun)
    assert isinstance(run, RunReport)


def test_traced_query_with_ctx_threads_execution_state(small_vectors):
    X, Q = small_vectors
    index = ExactRBC(seed=0).build(X)
    base = traced_query(index, Q, k=2)
    via_ctx = traced_query(index, Q, k=2, ctx=ExecContext(dtype="float64"))
    np.testing.assert_array_equal(base.dist, via_ctx.dist)
    np.testing.assert_array_equal(base.idx, via_ctx.idx)
    assert base.evals == via_ctx.evals
    assert base.flops == pytest.approx(via_ctx.flops)


def test_traced_query_trace_ops_false(small_vectors):
    """The near-zero-overhead mode: wall phases, no trace, no sims."""
    X, Q = small_vectors
    index = OneShotRBC(seed=0).build(X)
    run = traced_query(index, Q, [DESKTOP_QUAD], k=1, trace_ops=False)
    assert run.n_ops == 0 and run.flops == 0.0
    assert run.sims == {} or all(s.time_s == 0 for s in run.sims.values())
    assert run.evals > 0  # counter window still measured
    assert any(w >= 0 for w in run.phase_wall.values())


def test_traced_build_reports_and_indexes_by_machine(small_vectors):
    X, _ = small_vectors
    index = ExactRBC(seed=0)
    report = traced_build(index, X, [DESKTOP_QUAD, SEQUENTIAL])
    assert isinstance(report, RunReport)
    assert report.dist is None and report.idx is None
    assert report.evals > 0
    # legacy dict-style access by machine name
    assert DESKTOP_QUAD.name in report
    assert report[DESKTOP_QUAD.name].time_s > 0.0
    assert set(report.keys()) == {DESKTOP_QUAD.name, SEQUENTIAL.name}


def test_run_report_summary_and_to_dict(small_vectors):
    X, Q = small_vectors
    run = traced_query(ExactRBC(seed=0).build(X), Q, [DESKTOP_QUAD], k=2)
    text = run.summary()
    assert "distance evals" in text
    assert "sim[" in text
    d = run.to_dict()
    assert d["evals"] == run.evals
    assert set(d["sims"]) == set(run.sims)
    import json

    json.dumps(d)  # JSON-serializable end to end
