"""Distributed RBC and the distributed brute-force baseline."""

import numpy as np
import pytest

from repro.distributed import (
    ClusterSpec,
    DistributedBruteForce,
    DistributedRBC,
    NetworkSpec,
    partition_by_representatives,
    partition_random,
)
from repro.eval import results_match_exactly
from repro.parallel import bf_knn
from repro.simulator import DESKTOP_QUAD, TESLA_C2050


@pytest.fixture
def cluster():
    return ClusterSpec.homogeneous(4, DESKTOP_QUAD)


# ------------------------------------------------------------- cluster model
def test_network_message_time():
    net = NetworkSpec(latency_us=10.0, bandwidth_gbs=1.0)
    assert net.message_time(0) == pytest.approx(10e-6)
    assert net.message_time(1e9) == pytest.approx(1.0 + 10e-6)


def test_network_validation():
    with pytest.raises(ValueError):
        NetworkSpec(latency_us=-1)
    with pytest.raises(ValueError):
        NetworkSpec(bandwidth_gbs=0)


def test_cluster_construction():
    c = ClusterSpec.homogeneous(3, DESKTOP_QUAD)
    assert c.n_nodes == 3
    assert c.coordinator_spec is DESKTOP_QUAD
    with pytest.raises(ValueError):
        ClusterSpec.homogeneous(0, DESKTOP_QUAD)
    with pytest.raises(ValueError):
        ClusterSpec(nodes=())


def test_comm_phase_overlaps_links():
    c = ClusterSpec.homogeneous(
        4, DESKTOP_QUAD, network=NetworkSpec(latency_us=10, bandwidth_gbs=1.0,
                                             per_message_overhead_us=0.0)
    )
    # four equal messages on four links: time of one, not four
    t = c.comm_phase_time([1e6] * 4)
    assert t == pytest.approx(c.network.message_time(1e6))
    # empty phase is free
    assert c.comm_phase_time([0.0] * 4) == 0.0
    with pytest.raises(ValueError):
        c.comm_phase_time([1.0])


# ------------------------------------------------------------- partitioning
def test_partition_by_reps_balances():
    sizes = [100, 90, 10, 10, 10, 10, 10, 10]
    parts = partition_by_representatives(sizes, 2)
    loads = [sum(sizes[j] for j in p) for p in parts]
    assert abs(loads[0] - loads[1]) <= 70  # LPT keeps the giants apart
    assert sorted(j for p in parts for j in p) == list(range(8))


def test_partition_random_covers_everything(rng):
    parts = partition_random(100, 3, rng)
    allv = np.concatenate(parts)
    assert np.array_equal(np.sort(allv), np.arange(100))


def test_partition_validation(rng):
    with pytest.raises(ValueError):
        partition_by_representatives([1, 2], 0)
    with pytest.raises(ValueError):
        partition_random(10, 0, rng)


# ------------------------------------------------------------- engines
@pytest.mark.parametrize("k", [1, 3])
def test_distributed_rbc_exact(k, cluster, clustered):
    X, Q = clustered
    true_d, _ = bf_knn(Q, X, k=k)
    eng = DistributedRBC(cluster, seed=0).build(X, n_reps=150)
    d, i = eng.query(Q, k=k)
    assert results_match_exactly(d, true_d)


@pytest.mark.parametrize("k", [1, 3])
def test_distributed_brute_exact(k, cluster, clustered):
    X, Q = clustered
    true_d, _ = bf_knn(Q, X, k=k)
    eng = DistributedBruteForce(cluster, seed=0).build(X)
    d, i = eng.query(Q, k=k)
    assert results_match_exactly(d, true_d)


def test_rbc_sharding_covers_database(cluster, clustered):
    X, _ = clustered
    eng = DistributedRBC(cluster, seed=0).build(X, n_reps=100)
    assert sum(eng.points_per_node()) == X.shape[0]
    # LPT balance: no node more than 2x the mean
    ppn = eng.points_per_node()
    assert max(ppn) < 2.0 * np.mean(ppn)


def test_rbc_sends_less_than_broadcast(cluster, clustered):
    X, Q = clustered
    rbc = DistributedRBC(cluster, seed=0).build(X, n_reps=150)
    rbc.query(Q, k=1)
    bf = DistributedBruteForce(cluster, seed=0).build(X)
    bf.query(Q, k=1)
    # representative routing touches a subset of nodes per query, so both
    # directions of traffic shrink vs broadcast-everything
    assert sum(rbc.last_report.comm.bytes_from_nodes) <= sum(
        bf.last_report.comm.bytes_from_nodes
    )
    assert rbc.last_report.comm.messages <= len(Q) * cluster.n_nodes


def test_rbc_does_less_work(cluster, clustered):
    X, Q = clustered
    rbc = DistributedRBC(cluster, seed=0).build(X, n_reps=200)
    rbc.query(Q, k=1)
    bf = DistributedBruteForce(cluster, seed=0).build(X)
    bf.query(Q, k=1)
    assert sum(rbc.last_report.node_evals) < 0.8 * sum(
        bf.last_report.node_evals
    )


def test_report_accounting(cluster, clustered):
    X, Q = clustered
    eng = DistributedRBC(cluster, seed=0).build(X, n_reps=100)
    eng.query(Q, k=2)
    r = eng.last_report
    assert r.n_queries == len(Q)
    assert len(r.node_evals) == cluster.n_nodes
    assert r.total_s == pytest.approx(
        r.coordinator_s + r.scatter_s + r.compute_s + r.gather_s + r.merge_s
    )
    assert 0.0 <= r.comm_fraction <= 1.0
    assert 0.0 < r.balance <= 1.0
    assert r.comm.total_bytes > 0


def test_gpu_nodes_supported(clustered):
    # the paper's multi-GPU scenario: every node a Tesla c2050
    X, Q = clustered
    cluster = ClusterSpec.homogeneous(4, TESLA_C2050)
    eng = DistributedRBC(cluster, seed=0).build(X, n_reps=150)
    d, _ = eng.query(Q, k=1)
    true_d, _ = bf_knn(Q, X, k=1)
    assert results_match_exactly(d, true_d)


def test_single_node_cluster_works(clustered):
    X, Q = clustered
    cluster = ClusterSpec.homogeneous(1, DESKTOP_QUAD)
    eng = DistributedRBC(cluster, seed=0).build(X, n_reps=100)
    d, _ = eng.query(Q, k=1)
    true_d, _ = bf_knn(Q, X, k=1)
    assert results_match_exactly(d, true_d)


def test_k_exceeds_shard_point_count(cluster, rng):
    # every shard holds far fewer points than k: each node's partial
    # top-k is partly padding, and the merge must still be exact
    X = rng.normal(size=(40, 5))
    Q = rng.normal(size=(10, 5))
    true_d, _ = bf_knn(Q, X, k=12)
    eng = DistributedRBC(cluster, seed=0).build(X, n_reps=6)
    d, i = eng.query(Q, k=12)
    assert results_match_exactly(d, true_d)
    bf = DistributedBruteForce(cluster, seed=0).build(X)
    d, i = bf.query(Q, k=12)
    assert results_match_exactly(d, true_d)


def test_k_exceeds_rep_count(cluster, rng):
    # k > n_reps: the kk-th rep distance does not bound the k-th
    # neighbor, so pruning must be disabled (gamma = inf), not unsound
    X = rng.normal(size=(300, 6))
    Q = rng.normal(size=(12, 6))
    eng = DistributedRBC(cluster, seed=0).build(X, n_reps=4)
    d, _ = eng.query(Q, k=9)
    true_d, _ = bf_knn(Q, X, k=9)
    assert results_match_exactly(d, true_d)


def test_node_with_zero_points(rng):
    # more nodes than points: some shards are empty, and an empty shard
    # must neither break correctness nor be charged communication
    X = rng.normal(size=(3, 4))
    Q = rng.normal(size=(5, 4))
    cluster = ClusterSpec.homogeneous(6, DESKTOP_QUAD)
    bf = DistributedBruteForce(cluster, seed=0).build(X)
    d, _ = bf.query(Q, k=2)
    true_d, _ = bf_knn(Q, X, k=2)
    assert results_match_exactly(d, true_d)
    comm = bf.last_report.comm
    for shard, to, frm in zip(
        bf.shards, comm.bytes_to_nodes, comm.bytes_from_nodes
    ):
        assert (shard.size > 0) == (to > 0) == (frm > 0)

    eng = DistributedRBC(cluster, seed=0).build(X, n_reps=2)
    # at most 3 representatives exist: several nodes host none
    empty = sum(1 for reps in eng.node_reps if not reps)
    assert empty >= cluster.n_nodes - eng.index.n_reps >= 3
    d, _ = eng.query(Q, k=2)
    assert results_match_exactly(d, true_d)


def test_skewed_shards_charge_active_nodes_only(rng):
    # skewed random sharding (few points, several nodes): CommStats must
    # agree with the number of shards that actually ran a scan
    X = rng.normal(size=(7, 4))
    Q = rng.normal(size=(6, 4))
    cluster = ClusterSpec.homogeneous(5, DESKTOP_QUAD)
    bf = DistributedBruteForce(cluster, seed=3).build(X)
    bf.query(Q, k=1)
    comm = bf.last_report.comm
    n_active = sum(1 for s in bf.shards if s.size)
    assert n_active < cluster.n_nodes  # the seed leaves a shard empty
    assert comm.active_nodes == n_active
    assert comm.messages == 2 * n_active
    dim = X.shape[1]
    assert sum(comm.bytes_to_nodes) == pytest.approx(
        n_active * len(Q) * dim * 8.0
    )


def test_single_node_parity_with_exact_rbc(clustered):
    # DistributedRBC on one node is ExactRBC plus bookkeeping: same
    # neighbor ids, same distances
    from repro import ExactRBC

    X, Q = clustered
    cluster = ClusterSpec.homogeneous(1, DESKTOP_QUAD)
    eng = DistributedRBC(cluster, seed=0).build(X, n_reps=120)
    local = ExactRBC(seed=0).build(X, n_reps=120)
    dd, di = eng.query(Q, k=3)
    ld, li = local.query(Q, k=3)
    np.testing.assert_array_equal(di, li)
    np.testing.assert_allclose(dd, ld, rtol=0, atol=1e-9)


def test_query_before_build(cluster):
    with pytest.raises(RuntimeError):
        DistributedRBC(cluster).query(np.zeros((1, 2)))
    with pytest.raises(RuntimeError):
        DistributedBruteForce(cluster).query(np.zeros((1, 2)))
    with pytest.raises(RuntimeError):
        DistributedRBC(cluster).points_per_node()


def test_build_comm_counted(cluster, clustered):
    X, _ = clustered
    eng = DistributedRBC(cluster, seed=0).build(X, n_reps=100)
    dim = X.shape[1]
    assert sum(eng.build_comm.bytes_to_nodes) == pytest.approx(
        X.shape[0] * dim * 8.0
    )


def test_more_nodes_reduce_compute_time(clustered):
    X, Q = clustered
    times = []
    for n_nodes in (2, 8):
        cluster = ClusterSpec.homogeneous(n_nodes, DESKTOP_QUAD)
        eng = DistributedRBC(cluster, seed=0).build(X, n_reps=150)
        eng.query(Q, k=1)
        times.append(eng.last_report.compute_s)
    assert times[1] < times[0]
