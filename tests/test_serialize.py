"""Index persistence (save_index / load_index)."""

import numpy as np
import pytest

from repro.core import ExactRBC, OneShotRBC, load_index, save_index
from repro.metrics import EditDistance


def test_exact_roundtrip(small_vectors, tmp_path):
    X, Q = small_vectors
    orig = ExactRBC(seed=0, rep_scheme="exact").build(X, n_reps=15)
    d0, i0 = orig.query(Q, k=3)
    path = tmp_path / "exact.npz"
    save_index(orig, path)
    clone = load_index(path)
    assert isinstance(clone, ExactRBC)
    d1, i1 = clone.query(Q, k=3)
    np.testing.assert_allclose(d1, d0)
    np.testing.assert_array_equal(i1, i0)


def test_oneshot_roundtrip(small_vectors, tmp_path):
    X, Q = small_vectors
    orig = OneShotRBC(seed=0, rep_scheme="exact").build(X, n_reps=10, s=30)
    d0, i0 = orig.query(Q, k=2)
    path = tmp_path / "oneshot.npz"
    save_index(orig, path)
    clone = load_index(path)
    assert isinstance(clone, OneShotRBC)
    assert clone.s == 30
    d1, i1 = clone.query(Q, k=2)
    np.testing.assert_allclose(d1, d0)
    np.testing.assert_array_equal(i1, i0)


def test_roundtrip_preserves_structure(small_vectors, tmp_path):
    X, _ = small_vectors
    orig = ExactRBC(metric="manhattan", seed=3).build(X, n_reps=12)
    path = tmp_path / "idx.npz"
    save_index(orig, path)
    clone = load_index(path)
    assert clone.metric.name == "manhattan"
    np.testing.assert_array_equal(clone.rep_ids, orig.rep_ids)
    np.testing.assert_allclose(clone.radii, orig.radii)
    for a, b in zip(clone.lists, orig.lists):
        np.testing.assert_array_equal(a, b)


def test_unbuilt_rejected(tmp_path):
    with pytest.raises(ValueError, match="unbuilt"):
        save_index(ExactRBC(), tmp_path / "x.npz")


def test_string_database_rejected(tmp_path):
    from repro.data import random_strings

    idx = ExactRBC(metric=EditDistance(), seed=0).build(random_strings(80))
    with pytest.raises(ValueError, match="ndarray"):
        save_index(idx, tmp_path / "x.npz")


def test_empty_lists_roundtrip(tmp_path, rng):
    # nearly-duplicate databases produce reps that own nothing
    X = np.repeat(rng.normal(size=(3, 2)), 20, axis=0)
    orig = ExactRBC(seed=0, rep_scheme="exact").build(X, n_reps=5)
    path = tmp_path / "dups.npz"
    save_index(orig, path)
    clone = load_index(path)
    d, i = clone.query(X[:2], k=1)
    assert (d[:, 0] < 1e-9).all()
