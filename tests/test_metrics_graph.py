"""Graph shortest-path metric."""

import networkx as nx
import numpy as np
import pytest

from repro.metrics import GraphMetric, check_metric_axioms


def path_graph_metric(n=6):
    g = nx.path_graph(n)
    for u, v in g.edges:
        g[u][v]["weight"] = 1.0
    return GraphMetric(g)


def test_path_graph_distances():
    m = path_graph_metric(6)
    ids = m.node_ids()
    D = m.pairwise(ids, ids)
    for i in range(6):
        for j in range(6):
            assert D[i, j] == abs(i - j)


def test_weighted_triangle():
    g = nx.Graph()
    g.add_edge("a", "b", weight=1.0)
    g.add_edge("b", "c", weight=2.0)
    g.add_edge("a", "c", weight=10.0)  # shortcut is longer than the path
    m = GraphMetric(g)
    ids = m.node_ids(["a", "c"])
    assert m.pairwise([ids[0]], [ids[1]])[0, 0] == 3.0


def test_disconnected_raises():
    g = nx.Graph()
    g.add_edge(0, 1, weight=1.0)
    g.add_node(2)
    with pytest.raises(ValueError, match="connected"):
        GraphMetric(g)


def test_empty_graph_raises():
    with pytest.raises(ValueError, match="empty"):
        GraphMetric(nx.Graph())


def test_nonpositive_weight_raises():
    g = nx.Graph()
    g.add_edge(0, 1, weight=0.0)
    with pytest.raises(ValueError, match="positive"):
        GraphMetric(g)


def test_axioms_on_random_graph(rng):
    from repro.data import random_geometric_graph

    g, _ = random_geometric_graph(60, seed=2)
    m = GraphMetric(g)
    check_metric_axioms(m, m.node_ids(), n_triples=60, rng=rng)


def test_take_and_length():
    m = path_graph_metric(5)
    ids = m.node_ids()
    sub = m.take(ids, [1, 3])
    assert m.length(sub) == 2
    np.testing.assert_array_equal(sub, [1, 3])


def test_matches_networkx_dijkstra(rng):
    from repro.data import random_geometric_graph

    g, _ = random_geometric_graph(40, seed=4)
    m = GraphMetric(g)
    ids = m.node_ids()
    D = m.pairwise(ids[:5], ids)
    for i in range(5):
        lengths = nx.single_source_dijkstra_path_length(g, int(ids[i]))
        for j in range(len(ids)):
            assert D[i, j] == pytest.approx(lengths[int(ids[j])])
