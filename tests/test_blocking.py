"""Block decomposition: tiles partition the output exactly."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.parallel import Tile, choose_tile_cols, grid_tiles, row_chunks


def test_row_chunks_cover_range():
    chunks = row_chunks(10, 3)
    assert chunks == [(0, 3), (3, 6), (6, 9), (9, 10)]


def test_row_chunks_single():
    assert row_chunks(5, 100) == [(0, 5)]


def test_row_chunks_empty():
    assert row_chunks(0, 4) == []


def test_row_chunks_rejects_bad_chunk():
    with pytest.raises(ValueError):
        row_chunks(10, 0)


def test_grid_tiles_partition():
    tiles = grid_tiles(7, 5, 3, 2)
    covered = np.zeros((7, 5), dtype=int)
    for t in tiles:
        covered[t.row_lo : t.row_hi, t.col_lo : t.col_hi] += 1
    assert (covered == 1).all()


def test_grid_tiles_empty_dims():
    assert grid_tiles(0, 5, 2, 2) == []
    assert grid_tiles(5, 0, 2, 2) == []


def test_tile_properties():
    t = Tile(0, 3, 2, 6)
    assert t.rows == 3
    assert t.cols == 4
    assert t.size == 12


def test_degenerate_tile_rejected():
    with pytest.raises(ValueError):
        Tile(3, 3, 0, 1)
    with pytest.raises(ValueError):
        Tile(-1, 2, 0, 1)


def test_choose_tile_cols_bounds():
    assert choose_tile_cols(100, 10) == 100  # never exceeds n
    big = choose_tile_cols(10_000_000, 10)
    assert 256 <= big <= 10_000_000
    # higher dimension -> smaller tiles for the same byte budget
    assert choose_tile_cols(10_000_000, 1000) < choose_tile_cols(10_000_000, 10)


@settings(max_examples=50, deadline=None)
@given(
    st.integers(min_value=1, max_value=40),
    st.integers(min_value=1, max_value=40),
    st.integers(min_value=1, max_value=10),
    st.integers(min_value=1, max_value=10),
)
def test_property_tiles_partition(m, n, tr, tc):
    covered = np.zeros((m, n), dtype=int)
    for t in grid_tiles(m, n, tr, tc):
        assert t.rows <= tr and t.cols <= tc
        covered[t.row_lo : t.row_hi, t.col_lo : t.col_hi] += 1
    assert (covered == 1).all()


@settings(max_examples=50, deadline=None)
@given(st.integers(min_value=0, max_value=200), st.integers(min_value=1, max_value=50))
def test_property_row_chunks_partition(m, chunk):
    chunks = row_chunks(m, chunk)
    pos = 0
    for lo, hi in chunks:
        assert lo == pos and hi > lo and hi - lo <= chunk
        pos = hi
    assert pos == m
