"""Vantage-point tree baseline."""

import numpy as np
import pytest

from repro.baselines import VPTree
from repro.eval import results_match_exactly
from repro.metrics import EditDistance
from repro.parallel import bf_knn


@pytest.mark.parametrize("k", [1, 4])
@pytest.mark.parametrize("metric", ["euclidean", "manhattan", "angular"])
def test_exact_knn(metric, k, small_vectors):
    X, Q = small_vectors
    true_d, _ = bf_knn(Q, X, metric, k=k)
    t = VPTree(metric=metric, seed=0).build(X)
    d, _ = t.query(Q, k=k)
    assert results_match_exactly(d, true_d)


@pytest.mark.parametrize("leaf_size", [1, 8, 200])
def test_leaf_sizes(leaf_size, small_vectors):
    X, Q = small_vectors
    true_d, _ = bf_knn(Q, X, k=2)
    t = VPTree(leaf_size=leaf_size, seed=0).build(X)
    d, _ = t.query(Q, k=2)
    assert results_match_exactly(d, true_d)


def test_prunes_on_clustered(clustered):
    X, Q = clustered
    t = VPTree(seed=0).build(X)
    t.metric.reset_counter()
    t.query(Q[:10], k=1)
    assert t.metric.counter.n_evals / 10 < 0.7 * X.shape[0]


def test_duplicates_fall_back_to_leaf(rng):
    X = np.repeat(rng.normal(size=(2, 3)), 30, axis=0)
    t = VPTree(leaf_size=4, seed=0).build(X)
    true_d, _ = bf_knn(X[:2], X, k=3)
    d, _ = t.query(X[:2], k=3)
    assert results_match_exactly(d, true_d)


def test_shell_bounds_valid(small_vectors):
    X, _ = small_vectors
    t = VPTree(seed=0, leaf_size=16).build(X)

    def check(node):
        if node is None or node.ids is not None:
            return
        # every inner point within inner_max, every outer beyond outer_min
        def members(nd):
            if nd.ids is not None:
                return list(nd.ids)
            return members(nd.inner) + members(nd.outer) + [nd.vantage]

        m = t.metric
        for side, bound, cmp in (
            (node.inner, node.inner_max, "le"),
            (node.outer, node.outer_min, "ge"),
        ):
            ids = members(side)
            if not ids:
                continue
            D = m.pairwise(m.take(X, [node.vantage]), m.take(X, ids))[0]
            if cmp == "le":
                assert D.max() <= bound + 1e-9
            else:
                assert D.min() >= bound - 1e-9
        check(node.inner)
        check(node.outer)

    check(t.root)


def test_edit_distance():
    from repro.data import random_strings

    S = random_strings(180, seed=6)
    Q = random_strings(8, seed=7)
    true_d, _ = bf_knn(Q, S, EditDistance(), k=2)
    t = VPTree(metric=EditDistance(), seed=0).build(S)
    d, _ = t.query(Q, k=2)
    assert results_match_exactly(d, true_d)


def test_depth_logarithmic(rng):
    X = rng.random((4096, 3))
    t = VPTree(leaf_size=16, seed=0).build(X)
    assert t.depth() <= 20  # median split: ~log2(4096/16) + slack


def test_validation(rng):
    with pytest.raises(ValueError):
        VPTree(leaf_size=0)
    with pytest.raises(ValueError):
        VPTree(metric="sqeuclidean")
    with pytest.raises(RuntimeError):
        VPTree().query(np.zeros((1, 2)))
    with pytest.raises(ValueError):
        VPTree().build(np.empty((0, 3)))
    t = VPTree(seed=0).build(rng.normal(size=(50, 2)))
    with pytest.raises(ValueError):
        t.query(np.zeros((1, 2)), k=0)
