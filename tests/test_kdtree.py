"""kd-tree baseline."""

import numpy as np
import pytest

from repro.baselines import KDTree
from repro.eval import results_match_exactly
from repro.parallel import bf_knn


@pytest.mark.parametrize("metric", ["euclidean", "manhattan", "chebyshev"])
@pytest.mark.parametrize("k", [1, 3])
def test_exact_knn(metric, k, small_vectors):
    X, Q = small_vectors
    true_d, _ = bf_knn(Q, X, metric, k=k)
    t = KDTree(metric=metric).build(X)
    d, _ = t.query(Q, k=k)
    assert results_match_exactly(d, true_d)


def test_unsupported_metric_rejected():
    with pytest.raises(ValueError, match="l1/l2/linf"):
        KDTree(metric="angular")


@pytest.mark.parametrize("leaf_size", [1, 4, 128])
def test_leaf_sizes(leaf_size, small_vectors):
    X, Q = small_vectors
    true_d, _ = bf_knn(Q, X, k=2)
    t = KDTree(leaf_size=leaf_size).build(X)
    d, _ = t.query(Q, k=2)
    assert results_match_exactly(d, true_d)


def test_leaf_size_validation():
    with pytest.raises(ValueError):
        KDTree(leaf_size=0)


def test_duplicate_points(rng):
    X = np.repeat(rng.normal(size=(4, 2)), 20, axis=0)
    t = KDTree(leaf_size=4).build(X)
    true_d, _ = bf_knn(X[:4], X, k=5)
    d, _ = t.query(X[:4], k=5)
    assert results_match_exactly(d, true_d)


def test_effective_in_low_dim(rng):
    X = rng.random((5000, 2))
    Q = rng.random((20, 2))
    t = KDTree().build(X)
    t.metric.reset_counter()
    t.query(Q, k=1)
    per_query = t.metric.counter.n_evals / 20
    assert per_query < 0.05 * X.shape[0]  # massive pruning in 2-d


def test_degrades_in_high_dim(rng):
    def work(d):
        X = rng.random((2000, d))
        Q = rng.random((10, d))  # generic queries, not database points
        t = KDTree().build(X)
        t.metric.reset_counter()
        t.query(Q, k=1)
        return t.metric.counter.n_evals

    assert work(25) > 5 * work(2)  # the curse of dimensionality


def test_query_before_build():
    with pytest.raises(RuntimeError):
        KDTree().query(np.zeros((1, 2)))


def test_k_exceeds_database(rng):
    X = rng.normal(size=(3, 2))
    t = KDTree().build(X)
    d, i = t.query(rng.normal(size=(2, 2)), k=5)
    assert np.isfinite(d[:, :3]).all()
    assert (i[:, 3:] == -1).all()


def test_depth_reasonable(rng):
    X = rng.random((4096, 3))
    t = KDTree(leaf_size=16).build(X)
    assert t.depth() <= 12  # log2(4096/16) + 1 + slack
