"""The Index protocol, capability declarations, and the backend registry."""

import numpy as np
import pytest

from repro.baselines.base import Index as LegacyIndex
from repro.index import (
    Capabilities,
    Index,
    UnsupportedCapability,
    available_indexes,
    capabilities_for,
    capabilities_of,
    create_index,
    index_class,
    register_index,
    supported_kwargs,
    unregister_index,
)

EXPECTED = {
    "rbc-exact", "rbc-oneshot", "brute", "covertree", "kdtree", "balltree",
    "vptree", "gnat", "aesa", "buffer-kd", "rpforest", "router",
}

#: backends buildable on a plain euclidean matrix, with build-fast kwargs
BUILDABLE = {
    "rbc-exact": {},
    "rbc-oneshot": {},
    "brute": {},
    "covertree": {},
    "kdtree": {"leaf_size": 8},
    "balltree": {"leaf_size": 8},
    "vptree": {"leaf_size": 8},
    "gnat": {"leaf_size": 8},
    "aesa": {},
    "buffer-kd": {"leaf_size": 16},
    "rpforest": {"leaf_size": 16},
}


@pytest.fixture(scope="module")
def data():
    rng = np.random.default_rng(7)
    return rng.normal(size=(120, 6))


def _built(name, data, **kw):
    kw = {"metric": "euclidean", "seed": 0, **BUILDABLE.get(name, {}), **kw}
    return create_index(name, lenient=True, **kw).build(data)


def test_registry_contents():
    assert EXPECTED <= set(available_indexes())


def test_aliases_resolve():
    assert index_class("exact") is index_class("rbc-exact")
    assert index_class("oneshot") is index_class("rbc-oneshot")
    assert index_class("bufferkd") is index_class("buffer-kd")


def test_unknown_name_lists_known():
    with pytest.raises(KeyError, match="rbc-exact"):
        index_class("no-such-backend")


def test_declared_capabilities_are_capabilities():
    for name in EXPECTED:
        caps = capabilities_of(name)
        assert isinstance(caps, Capabilities), name


def test_exactness_declarations():
    for name in ("rbc-exact", "brute", "covertree", "kdtree", "balltree",
                 "vptree", "gnat", "aesa", "buffer-kd"):
        assert capabilities_of(name).exact, name
    for name in ("rbc-oneshot", "rpforest"):
        assert not capabilities_of(name).exact, name


def test_range_declarations_match_behavior(data):
    eps = 1.5
    for name in BUILDABLE:
        idx = _built(name, data)
        caps = idx.capabilities()
        if caps.range_queries:
            out = idx.range_query(data[:2], eps)
            assert len(out) == 2
        else:
            with pytest.raises(UnsupportedCapability):
                idx.range_query(data[:2], eps)


def test_range_is_uniform_error_not_attribute_error(data):
    idx = _built("kdtree", data)
    try:
        idx.range_query(data[:1], 1.0)
    except AttributeError:  # pragma: no cover - the defect being guarded
        pytest.fail("range_query raised bare AttributeError")
    except UnsupportedCapability:
        pass


def test_memory_footprint_everywhere(data):
    for name in BUILDABLE:
        idx = _built(name, data)
        fp = idx.memory_footprint()
        assert isinstance(fp, int) and fp > 0, name


def test_memory_footprint_requires_build():
    idx = create_index("balltree", lenient=True, metric="euclidean")
    with pytest.raises(RuntimeError):
        idx.memory_footprint()


def test_create_index_strict_rejects_bad_kwargs():
    with pytest.raises(TypeError):
        create_index("brute", metric="euclidean", seed=0)


def test_supported_kwargs_filters():
    kw = supported_kwargs("brute", {"metric": "euclidean", "seed": 0})
    assert kw == {"metric": "euclidean"}


def test_register_unregister_custom():
    class Custom(Index):
        CAPS = Capabilities(exact=False)

    register_index("custom-test", Custom)
    try:
        assert "custom-test" in available_indexes()
        assert capabilities_of("custom-test").exact is False
        with pytest.raises(ValueError):
            register_index("custom-test", Custom)
    finally:
        unregister_index("custom-test")
    assert "custom-test" not in available_indexes()


def test_legacy_base_reexports_protocol():
    assert LegacyIndex is Index


def test_capabilities_for_foreign_object():
    class Duck:
        metric = None
        X = None

    caps = capabilities_for(Duck())
    assert isinstance(caps, Capabilities)
    assert not caps.rescorable and not caps.exact


def test_rescorable_resolved_against_metric(data):
    idx = _built("balltree", data)
    assert idx.capabilities().rescorable
    from repro.metrics import get_metric

    edit = create_index("balltree", lenient=True, metric=get_metric("edit"))
    edit.build(["abc", "abd", "xyz", "xxy", "aac", "zzz", "abz", "qrs"])
    assert not edit.capabilities().rescorable


def test_quantizable_only_for_rbc(data):
    assert capabilities_of("rbc-exact").quantizable
    idx = _built("rbc-exact", data)
    assert idx.capabilities().quantizable
    assert not _built("kdtree", data).capabilities().quantizable


def test_collectors_report_footprint(data):
    from repro.obs import MetricsRegistry
    from repro.obs.collectors import install_index_collectors

    reg = MetricsRegistry()
    idx = _built("buffer-kd", data)
    install_index_collectors(idx, reg, label="bufferkd")
    snap = reg.snapshot()
    values = snap["repro_index_memory_bytes"]["values"]
    assert values["bufferkd"] == idx.memory_footprint()


def test_collectors_skip_unbuilt_footprint():
    from repro.obs import MetricsRegistry
    from repro.obs.collectors import install_index_collectors

    reg = MetricsRegistry()
    idx = create_index("balltree", lenient=True, metric="euclidean")
    install_index_collectors(idx, reg, label="unbuilt")
    assert "repro_index_memory_bytes" not in reg.snapshot()


def test_searcher_rescore_gated_by_capability(data):
    from repro.serving import StreamingSearcher

    exact = _built("rbc-exact", data)
    with StreamingSearcher(exact, k=2) as srv:
        assert srv.rescore

    class NoRescore(Index):
        CAPS = Capabilities(exact=True, rescorable=False)
        metric = exact.metric
        X = data
        n = data.shape[0]

        def build(self, X, **kw):
            return self

        def query(self, Q, k=1, **kw):
            return exact.query(Q, k)

    with StreamingSearcher(NoRescore().build(data), k=2) as srv:
        assert not srv.rescore
