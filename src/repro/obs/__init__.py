"""repro.obs — live telemetry: span tracing, metrics, and SLO monitoring.

The post-hoc observability of :mod:`repro.runtime` (RunReports summarize a
run after it ends) gets a *live* counterpart here:

* :mod:`repro.obs.tracing` — :class:`Span`/:class:`Tracer` timelines with
  trace/span/parent identity that crosses the process boundary (span
  contexts ride pickled task payloads; worker spans are re-parented on
  return) and export as Chrome ``trace_events`` JSON;
* :mod:`repro.obs.metrics` — a process-wide :class:`MetricsRegistry` of
  named counters/gauges/histograms with label support, per-thread shards
  on the write path, Prometheus text exposition, and JSONL snapshots;
* :mod:`repro.obs.collectors` — pull-gauges over the instruments the
  package already has (operand cache, executor pool, operand store,
  packed-list slack);
* :mod:`repro.obs.slo` — a rolling-window :class:`SLOMonitor` tracking
  latency percentiles and error-budget burn against the batcher's
  latency budget, with breach callbacks the batcher consumes.

This package sits at the bottom of the layering (stdlib + numpy only), so
every other module can import it freely.
"""

from .collectors import install_index_collectors, install_standard_collectors
from .metrics import (
    DEFAULT_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    registry,
)
from .slo import SLOMonitor
from .tracing import NULL_TRACER, Span, SpanContext, Tracer, chrome_trace

__all__ = [
    "Span",
    "SpanContext",
    "Tracer",
    "NULL_TRACER",
    "chrome_trace",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "registry",
    "DEFAULT_BUCKETS",
    "install_standard_collectors",
    "install_index_collectors",
    "SLOMonitor",
]
