"""repro.obs — live telemetry: span tracing, metrics, and SLO monitoring.

The post-hoc observability of :mod:`repro.runtime` (RunReports summarize a
run after it ends) gets a *live* counterpart here:

* :mod:`repro.obs.tracing` — :class:`Span`/:class:`Tracer` timelines with
  trace/span/parent identity that crosses the process boundary (span
  contexts ride pickled task payloads; worker spans are re-parented on
  return) and export as Chrome ``trace_events`` JSON;
* :mod:`repro.obs.metrics` — a process-wide :class:`MetricsRegistry` of
  named counters/gauges/histograms with label support, per-thread shards
  on the write path, Prometheus text exposition, and JSONL snapshots;
* :mod:`repro.obs.collectors` — pull-gauges over the instruments the
  package already has (operand cache, executor pool, operand store,
  packed-list slack);
* :mod:`repro.obs.slo` — a rolling-window :class:`SLOMonitor` tracking
  latency percentiles and error-budget burn against the batcher's
  latency budget, with breach callbacks the batcher consumes;
* :mod:`repro.obs.quality` — the answer-quality counterpart: shadow-
  oracle recall sampling (:class:`QualitySampler`), a rolling
  :class:`QualityMonitor` with breach callbacks, and query-distribution
  drift detection (:class:`DriftMonitor` / :class:`DriftReport`);
* :mod:`repro.obs.explain` — :class:`QueryExplain`, the structured
  per-query account of routing, pruning, caching, and sharding;
* :mod:`repro.obs.flight` — the :class:`FlightRecorder`: always-on
  bounded telemetry rings dumped as a self-contained bundle on breach.

This package sits at the bottom of the layering (stdlib + numpy only), so
every other module can import it freely.
"""

from .collectors import (
    install_index_collectors,
    install_quality_collectors,
    install_standard_collectors,
)
from .explain import QueryExplain
from .flight import FlightRecorder
from .metrics import (
    DEFAULT_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    registry,
)
from .quality import (
    DriftMonitor,
    DriftReport,
    QualityMonitor,
    QualitySample,
    QualitySampler,
)
from .slo import SLOMonitor
from .tracing import NULL_TRACER, Span, SpanContext, Tracer, chrome_trace

__all__ = [
    "Span",
    "SpanContext",
    "Tracer",
    "NULL_TRACER",
    "chrome_trace",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "registry",
    "DEFAULT_BUCKETS",
    "install_standard_collectors",
    "install_index_collectors",
    "install_quality_collectors",
    "SLOMonitor",
    "QualitySample",
    "QualityMonitor",
    "QualitySampler",
    "DriftMonitor",
    "DriftReport",
    "QueryExplain",
    "FlightRecorder",
]
