"""Online answer-quality observability: shadow-oracle recall sampling,
a rolling :class:`QualityMonitor`, and query-distribution drift detection.

Latency observability (:mod:`repro.obs.slo`) closed the loop on *speed*;
this module closes it on *answers*.  Every speed win since the exact
kernels — the router's degradation ladder, RPForest, the quantized
pre-rerank frontier, the semantic cache — trades exactness for latency,
and none of them report what that trade actually costs under live
traffic.  Three pieces:

* :class:`QualitySampler` — samples a configurable fraction of served
  queries by **deterministic content hashing** (blake2b of the query
  bytes keyed by the seed), so the same trace replayed through any
  searcher — batched differently, sharded, cached — samples the *same*
  queries.  Sampled queries are re-answered by brute force against the
  database (a shadow oracle, off the measured service path: the virtual
  clock never sees it) and scored with recall@k, rank error, and the
  distance ratio.
* :class:`QualityMonitor` — SLOMonitor-shaped: a rolling window of
  per-sample recall with breach callbacks (cooldown-paced) when the
  windowed recall estimate falls below target, labeled by backend,
  router rung, and cache-hit-vs-miss.  The serving front-end wires
  breaches to ``Router.restore()`` (walk *up* the quality ladder — the
  symmetric counterpart of latency-driven ``degrade()``) and can disable
  the proximity cache.
* :class:`DriftMonitor` / :class:`DriftReport` — the paper's Theorem-1
  machinery reused as a monitor: the built index fixes a baseline
  distribution (distance of owned points to their representative, the
  ownership-list size entropy, the build-time expansion estimate
  ``c``); the live window tracks sampled queries' nearest-representative
  distances, which representatives they hit, and the live ``c`` implied
  by the measured stage-2 candidate fraction.  A drifting query stream
  shows up as a distance-ratio shift, an entropy collapse (hot spot) or
  a ``c`` blow-up before recall falls off a cliff.

Everything runs on the caller's explicit clock, like the SLO monitor, so
the virtual-clock replay and the live path share one code path.
"""

from __future__ import annotations

import hashlib
import math
from collections import deque
from dataclasses import dataclass, field

import numpy as np

__all__ = [
    "QualitySample",
    "QualityMonitor",
    "QualitySampler",
    "DriftMonitor",
    "DriftReport",
]


# --------------------------------------------------------------------------
# samples and the rolling monitor
# --------------------------------------------------------------------------


@dataclass(frozen=True)
class QualitySample:
    """One shadow-oracle evaluation of a served query."""

    #: deterministic content-hash key of the query (hex); identical
    #: queries share a key, so a replay samples the same set
    key: str
    #: fraction of the oracle's top-k the served answer recovered
    #: (tie-aware: a served id within the oracle's k-th distance counts,
    #: so duplicate database points never read as recall loss)
    recall: float
    #: mean positions the served ids sit *below* their oracle rank
    rank_error: float
    #: served over oracle nearest-neighbor distance (>= 1; 1 is exact)
    distance_ratio: float
    #: backend label of the batch that served the query
    backend: str = ""
    #: router degradation rung at serve time (0 when unrouted)
    rung: int = 0
    #: whether the row was answered from the proximity cache
    cache_hit: bool = False
    #: observation time on the caller's clock
    t: float = 0.0
    #: row index inside the served batch (explain attribution)
    row: int = -1

    def to_dict(self) -> dict:
        return {
            "key": self.key,
            "recall": self.recall,
            "rank_error": self.rank_error,
            "distance_ratio": self.distance_ratio,
            "backend": self.backend,
            "rung": self.rung,
            "cache_hit": self.cache_hit,
            "t": self.t,
        }


class QualityMonitor:
    """Rolling-window recall tracking with breach callbacks.

    The shape mirrors :class:`~repro.obs.slo.SLOMonitor` on purpose — an
    explicit clock, a rolling window, cooldown-paced callbacks — so
    serving code treats latency SLOs and quality SLOs symmetrically.

    Parameters
    ----------
    target:
        windowed recall@k estimate the stream must hold (default 0.95).
    window_s:
        rolling-window length in seconds (``inf`` keeps every sample —
        a whole replayed stream as one evaluation window).
    min_samples:
        breaches only fire once the window holds at least this many
        samples, so one unlucky early query cannot trip the ladder.
    cooldown_s:
        minimum spacing between callback firings.
    """

    def __init__(
        self,
        *,
        target: float = 0.95,
        window_s: float = 60.0,
        min_samples: int = 8,
        cooldown_s: float = 1.0,
    ) -> None:
        if not 0.0 < target <= 1.0:
            raise ValueError("target must be in (0, 1]")
        if window_s <= 0:
            raise ValueError("window_s must be positive")
        if min_samples < 1:
            raise ValueError("min_samples must be >= 1")
        self.target = float(target)
        self.window_s = float(window_s)
        self.min_samples = int(min_samples)
        self.cooldown_s = float(cooldown_s)
        self._samples: deque[QualitySample] = deque()
        self._recall_sum = 0.0
        self._rank_err_sum = 0.0
        self._ratio_sum = 0.0
        self._callbacks: list = []
        self._last_fired: float | None = None
        #: lifetime counters (survive window eviction)
        self.n_samples = 0
        self.n_breaches = 0
        #: per-label lifetime aggregates: label -> [n, recall_sum]
        self._by_label: dict[str, list] = {}

    # ------------------------------------------------------------ ingestion
    def on_breach(self, callback) -> None:
        """Register ``callback(monitor)`` to fire on a recall breach."""
        self._callbacks.append(callback)

    @staticmethod
    def label_of(backend: str, rung: int, cache_hit: bool) -> str:
        return f"{backend or '?'}|rung{int(rung)}|" + (
            "hit" if cache_hit else "miss"
        )

    def observe(self, sample: QualitySample, now: float) -> None:
        """Record one shadow-oracle sample at time ``now``."""
        self._evict(now)
        self._samples.append(sample)
        self._recall_sum += sample.recall
        self._rank_err_sum += sample.rank_error
        self._ratio_sum += sample.distance_ratio
        self.n_samples += 1
        agg = self._by_label.setdefault(
            self.label_of(sample.backend, sample.rung, sample.cache_hit),
            [0, 0.0],
        )
        agg[0] += 1
        agg[1] += sample.recall
        if (
            len(self._samples) >= self.min_samples
            and self.recall_estimate < self.target
        ):
            self._fire(now)

    def _evict(self, now: float) -> None:
        if self.window_s == math.inf:
            return
        horizon = float(now) - self.window_s
        samples = self._samples
        while samples and samples[0].t < horizon:
            s = samples.popleft()
            self._recall_sum -= s.recall
            self._rank_err_sum -= s.rank_error
            self._ratio_sum -= s.distance_ratio

    def _fire(self, now: float) -> None:
        if (
            self._last_fired is not None
            and now - self._last_fired < self.cooldown_s
        ):
            return
        self._last_fired = float(now)
        self.n_breaches += 1
        for cb in list(self._callbacks):
            cb(self)

    # ------------------------------------------------------------- reading
    @property
    def n_window(self) -> int:
        return len(self._samples)

    @property
    def last_fired_at(self) -> float | None:
        """Clock time of the most recent breach firing (``None`` if
        nothing ever fired)."""
        return self._last_fired

    @property
    def recall_estimate(self) -> float:
        """Windowed mean recall (1.0 when nothing is sampled yet)."""
        n = len(self._samples)
        return self._recall_sum / n if n else 1.0

    @property
    def rank_error_mean(self) -> float:
        n = len(self._samples)
        return self._rank_err_sum / n if n else 0.0

    @property
    def distance_ratio_mean(self) -> float:
        n = len(self._samples)
        return self._ratio_sum / n if n else 1.0

    def by_label(self) -> dict[str, dict]:
        """Lifetime per-label sample counts and mean recall, keyed by
        ``backend|rungN|hit-or-miss``."""
        return {
            label: {"n": n, "recall": s / n if n else 1.0}
            for label, (n, s) in sorted(self._by_label.items())
        }

    def report(self) -> dict:
        """JSON-friendly summary of the current window and lifetime."""
        return {
            "target": self.target,
            "window_s": self.window_s,
            "min_samples": self.min_samples,
            "n_window": self.n_window,
            "recall_estimate": self.recall_estimate,
            "rank_error_mean": self.rank_error_mean,
            "distance_ratio_mean": self.distance_ratio_mean,
            "n_samples": self.n_samples,
            "n_breaches": self.n_breaches,
            "by_label": self.by_label(),
        }

    def summary(self) -> str:
        r = self.report()
        return (
            f"quality: recall est {r['recall_estimate']:.4f} "
            f"(target {self.target:g}) over {r['n_window']} windowed / "
            f"{r['n_samples']} lifetime samples; "
            f"rank err {r['rank_error_mean']:.2f}, "
            f"dist ratio {r['distance_ratio_mean']:.4f}, "
            f"{r['n_breaches']} breach signals"
        )


# --------------------------------------------------------------------------
# the shadow-oracle sampler
# --------------------------------------------------------------------------


class QualitySampler:
    """Deterministic shadow-oracle recall sampling over served batches.

    Parameters
    ----------
    index:
        the served index — must expose an ndarray database ``X`` and a
        ``metric`` with ``pairwise`` (the oracle is one brute-force row
        per sampled query against the *same* database the index serves).
    k:
        neighbors per served answer (the searcher's ``k_serve``).
    fraction:
        expected fraction of queries sampled (default 1%).
    seed:
        keys the content hash; same seed + same trace = same sampled
        set, across searcher types and replays.
    monitor:
        the :class:`QualityMonitor` fed by every sample (a default one
        is created when omitted).
    drift:
        optional :class:`DriftMonitor` fed the sampled queries and the
        per-batch candidate counts.
    keep:
        how many recent :class:`QualitySample` objects to retain in
        :attr:`samples` (flight-recorder fodder).
    """

    def __init__(
        self,
        index,
        k: int,
        *,
        fraction: float = 0.01,
        seed: int = 0,
        monitor: QualityMonitor | None = None,
        drift: "DriftMonitor | None" = None,
        keep: int = 512,
    ) -> None:
        X = getattr(index, "X", None)
        metric = getattr(index, "metric", None)
        if not isinstance(X, np.ndarray) or metric is None:
            raise ValueError(
                "QualitySampler needs an index over an ndarray database "
                "with a metric (the shadow oracle is brute force over X)"
            )
        if not 0.0 < fraction <= 1.0:
            raise ValueError("fraction must be in (0, 1]")
        if k < 1:
            raise ValueError("k must be >= 1")
        self.index = index
        self.metric = metric
        self.k = int(k)
        self.fraction = float(fraction)
        self.seed = int(seed)
        self.monitor = monitor if monitor is not None else QualityMonitor()
        self.drift = drift
        #: lifetime counters
        self.n_seen = 0
        self.n_sampled = 0
        #: content-hash keys of every sampled query, in serve order —
        #: the determinism tests compare these lists across searchers
        self.sample_keys: list[str] = []
        #: recent samples (bounded)
        self.samples: deque[QualitySample] = deque(maxlen=int(keep))
        self._threshold = int(self.fraction * 2.0**64)
        self._seed_key = self.seed.to_bytes(8, "little", signed=False)

    # ------------------------------------------------------------ selection
    def _digest(self, row: np.ndarray) -> bytes:
        buf = np.ascontiguousarray(row, dtype=np.float64)
        return hashlib.blake2b(
            buf.tobytes(), digest_size=8, key=self._seed_key
        ).digest()

    def wants(self, row: np.ndarray) -> bool:
        """Whether the content hash selects this query for sampling."""
        d = self._digest(row)
        return int.from_bytes(d, "big") < self._threshold

    def select_rows(self, Qb: np.ndarray) -> list[tuple[int, str]]:
        """``(row, key_hex)`` for every sampled row of the batch; also
        advances the lifetime seen/sampled counters."""
        m = int(Qb.shape[0])
        self.n_seen += m
        picked: list[tuple[int, str]] = []
        for r in range(m):
            d = self._digest(Qb[r])
            if int.from_bytes(d, "big") < self._threshold:
                picked.append((r, d.hex()))
        self.n_sampled += len(picked)
        return picked

    # -------------------------------------------------------------- oracle
    def oracle_topk(self, Qs: np.ndarray) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Brute-force top-k for the sampled rows: ``(dist, idx, D)``
        where ``D`` is the full ``(s, n)`` distance matrix (kept for
        rank-error attribution)."""
        X = self.index.X
        D = np.atleast_2d(self.metric.pairwise(Qs, X))
        n = D.shape[1]
        k = min(self.k, n)
        part = np.argpartition(D, k - 1, axis=1)[:, :k]
        pd = np.take_along_axis(D, part, axis=1)
        order = np.argsort(pd, axis=1, kind="stable")
        oi = np.take_along_axis(part, order, axis=1)
        od = np.take_along_axis(pd, order, axis=1)
        return od, oi, D

    # ------------------------------------------------------------- scoring
    def observe_batch(
        self,
        Qb: np.ndarray,
        dist: np.ndarray,
        idx: np.ndarray,
        *,
        now: float,
        backend: str = "",
        rung: int = 0,
        cache_hit: np.ndarray | None = None,
    ) -> list[QualitySample]:
        """Score the sampled rows of one served batch against the oracle
        and feed the monitor (and the drift monitor, when attached).

        Runs *off* the measured service path: the caller invokes this
        after the batch's service time has been taken, so the oracle's
        brute-force work never lands in a latency sample.
        """
        picked = self.select_rows(Qb)
        if not picked:
            return []
        rows = [r for r, _ in picked]
        Qs = np.ascontiguousarray(Qb[rows], dtype=np.float64)
        od, oi, D = self.oracle_topk(Qs)
        if self.drift is not None:
            self.drift.observe_queries(Qs)
        out: list[QualitySample] = []
        for s, (r, key) in enumerate(picked):
            served_i = idx[r]
            served_d = dist[r]
            oracle_ids = set(int(x) for x in oi[s] if x >= 0)
            got = set(int(x) for x in served_i if x >= 0)
            # tie-aware recall: a served id counts when its *true* distance
            # (re-evaluated against this query) is within the oracle's k-th
            # distance, so exact duplicates in the database cannot read as
            # recall loss no matter how ties were broken
            if oracle_ids:
                thresh = float(od[s, -1])
                tol = abs(thresh) * 1e-9 + 1e-12
                hits = sum(1 for i in got if D[s, i] <= thresh + tol)
                recall = min(hits, len(oracle_ids)) / len(oracle_ids)
            else:
                recall = 1.0
            rank_err = self._rank_error(D[s], served_i)
            t0 = float(od[s, 0])
            f0 = float(served_d[0]) if np.isfinite(served_d[0]) else np.inf
            ratio = f0 / t0 if t0 > 0 else 1.0
            sample = QualitySample(
                key=key,
                recall=recall,
                rank_error=rank_err,
                distance_ratio=float(ratio),
                backend=backend,
                rung=int(rung),
                cache_hit=bool(cache_hit[r]) if cache_hit is not None else False,
                t=float(now),
                row=r,
            )
            self.monitor.observe(sample, now)
            self.samples.append(sample)
            self.sample_keys.append(key)
            out.append(sample)
        return out

    @staticmethod
    def _rank_error(D_row: np.ndarray, served_i: np.ndarray) -> float:
        """Mean excess rank of the served ids: 0 when every served id
        sits at (or above) its position in the oracle ordering."""
        ids = [int(x) for x in served_i if x >= 0]
        if not ids:
            return 0.0
        d_served = D_row[ids]
        # rank of an id = how many points are strictly closer
        ranks = (D_row[None, :] < d_served[:, None]).sum(axis=1)
        excess = [max(0, int(rank) - pos) for pos, rank in enumerate(ranks)]
        return float(np.mean(excess))

    def observe_rules(self, rule_delta: dict, n_queries: int) -> None:
        """Forward one batch's pruning-rule deltas to the drift monitor
        (the live c-estimate reads the candidate fraction from them)."""
        if self.drift is not None:
            self.drift.observe_rules(
                int(rule_delta.get("candidates_examined", 0)), int(n_queries)
            )

    def report(self) -> dict:
        rep = {
            "fraction": self.fraction,
            "seed": self.seed,
            "n_seen": self.n_seen,
            "n_sampled": self.n_sampled,
            **self.monitor.report(),
        }
        if self.drift is not None:
            rep["drift"] = self.drift.report().to_dict()
        return rep


# --------------------------------------------------------------------------
# drift detection
# --------------------------------------------------------------------------


@dataclass
class DriftReport:
    """Windowed query-distribution statistics vs the built index."""

    #: sampled queries inside the live window
    n_window: int = 0
    #: live mean / 95th-quantile distance of sampled queries to their
    #: nearest representative
    mean_rep_dist: float = 0.0
    q95_rep_dist: float = 0.0
    #: build-time baseline: distances of owned points to their rep
    baseline_mean_rep_dist: float = 0.0
    baseline_q95_rep_dist: float = 0.0
    #: live mean over baseline mean (1 = the stream looks like the build)
    dist_ratio: float = 1.0
    #: normalized entropy of which representatives the live window hits
    rep_entropy: float = 1.0
    #: normalized entropy of the build-time ownership-list sizes
    baseline_entropy: float = 1.0
    entropy_gap: float = 0.0
    #: live expansion-rate estimate from the measured stage-2 candidate
    #: fraction (Theorem 1 inverted), vs the build-time estimate
    c_live: float | None = None
    c_build: float | None = None
    c_ratio: float | None = None
    drifted: bool = False
    reasons: list = field(default_factory=list)

    def to_dict(self) -> dict:
        return {
            "n_window": self.n_window,
            "mean_rep_dist": self.mean_rep_dist,
            "q95_rep_dist": self.q95_rep_dist,
            "baseline_mean_rep_dist": self.baseline_mean_rep_dist,
            "baseline_q95_rep_dist": self.baseline_q95_rep_dist,
            "dist_ratio": self.dist_ratio,
            "rep_entropy": self.rep_entropy,
            "baseline_entropy": self.baseline_entropy,
            "entropy_gap": self.entropy_gap,
            "c_live": self.c_live,
            "c_build": self.c_build,
            "c_ratio": self.c_ratio,
            "drifted": self.drifted,
            "reasons": list(self.reasons),
        }

    @classmethod
    def from_dict(cls, d: dict) -> "DriftReport":
        return cls(
            n_window=int(d.get("n_window", 0)),
            mean_rep_dist=float(d.get("mean_rep_dist", 0.0)),
            q95_rep_dist=float(d.get("q95_rep_dist", 0.0)),
            baseline_mean_rep_dist=float(d.get("baseline_mean_rep_dist", 0.0)),
            baseline_q95_rep_dist=float(d.get("baseline_q95_rep_dist", 0.0)),
            dist_ratio=float(d.get("dist_ratio", 1.0)),
            rep_entropy=float(d.get("rep_entropy", 1.0)),
            baseline_entropy=float(d.get("baseline_entropy", 1.0)),
            entropy_gap=float(d.get("entropy_gap", 0.0)),
            c_live=d.get("c_live"),
            c_build=d.get("c_build"),
            c_ratio=d.get("c_ratio"),
            drifted=bool(d.get("drifted", False)),
            reasons=list(d.get("reasons", [])),
        )

    def summary(self) -> str:
        bits = [
            f"drift: {'DRIFTED' if self.drifted else 'stable'} "
            f"({self.n_window} sampled)",
            f"rep dist {self.mean_rep_dist:.4g} vs build "
            f"{self.baseline_mean_rep_dist:.4g} "
            f"(ratio {self.dist_ratio:.2f})",
            f"entropy {self.rep_entropy:.3f} vs build "
            f"{self.baseline_entropy:.3f}",
        ]
        if self.c_live is not None and self.c_build is not None:
            bits.append(f"c {self.c_live:.2f} vs build {self.c_build:.2f}")
        if self.reasons:
            bits.append("; ".join(self.reasons))
        return " | ".join(bits)


def _norm_entropy(counts: np.ndarray) -> float:
    """Entropy of a count vector normalized by ``log(len)`` (1 =
    uniform, 0 = a single bin takes everything)."""
    counts = np.asarray(counts, dtype=np.float64)
    total = counts.sum()
    if total <= 0 or counts.size <= 1:
        return 1.0
    p = counts[counts > 0] / total
    return float(-(p * np.log(p)).sum() / math.log(counts.size))


class DriftMonitor:
    """Windowed live-vs-build query-distribution comparison.

    Build one with :meth:`from_index` over any RBC-built structure (the
    router resolves to its exact primary).  The baseline is frozen at
    construction from the ownership lists; the live side is fed sampled
    queries (:meth:`observe_queries`) and per-batch candidate counts
    (:meth:`observe_rules`).
    """

    def __init__(
        self,
        rep_data: np.ndarray,
        metric,
        *,
        baseline_dists: np.ndarray,
        baseline_sizes: np.ndarray,
        n: int,
        c_build: float | None = None,
        window: int = 2048,
        dist_ratio_threshold: float = 1.5,
        entropy_gap_threshold: float = 0.2,
        c_ratio_threshold: float = 1.25,
    ) -> None:
        self.rep_data = np.ascontiguousarray(rep_data, dtype=np.float64)
        self.metric = metric
        self.n = int(n)
        self.n_reps = int(self.rep_data.shape[0])
        self.window = int(window)
        self.dist_ratio_threshold = float(dist_ratio_threshold)
        self.entropy_gap_threshold = float(entropy_gap_threshold)
        self.c_ratio_threshold = float(c_ratio_threshold)
        bd = np.asarray(baseline_dists, dtype=np.float64)
        bd = bd[np.isfinite(bd)]
        self.baseline_mean = float(bd.mean()) if bd.size else 0.0
        self.baseline_q95 = float(np.percentile(bd, 95)) if bd.size else 0.0
        self.baseline_entropy = _norm_entropy(np.asarray(baseline_sizes))
        self.c_build = float(c_build) if c_build is not None else None
        self._d_rep: deque[float] = deque(maxlen=self.window)
        self._rep_hits: deque[int] = deque(maxlen=self.window)
        self._hit_counts = np.zeros(self.n_reps, dtype=np.int64)
        #: rolling (candidates, queries) pairs for the live c estimate
        self._rules: deque[tuple[int, int]] = deque(maxlen=512)
        self._cand_sum = 0
        self._query_sum = 0

    @classmethod
    def from_index(cls, index, **kwargs) -> "DriftMonitor | None":
        """A monitor over ``index``'s representative structure, or
        ``None`` when the index has no RBC ownership lists to baseline
        against (brute force, a bare forest, ...)."""
        target = index
        shard_target = getattr(index, "shard_target", None)
        if callable(shard_target):
            try:
                target = shard_target()
            except Exception:
                target = index
        rep_data = getattr(target, "rep_data", None)
        list_dists = getattr(target, "list_dists", None)
        lists = getattr(target, "lists", None)
        if rep_data is None or list_dists is None or lists is None:
            return None
        dists = (
            np.concatenate([np.asarray(d, dtype=np.float64) for d in list_dists])
            if len(list_dists)
            else np.zeros(0)
        )
        sizes = np.asarray([len(lst) for lst in lists], dtype=np.int64)
        c_build = getattr(index, "c_est", None)
        if c_build is None:
            probe = getattr(target, "_estimate_candidate_fraction", None)
            if callable(probe):
                try:
                    frac = float(probe())
                    c_build = max(1.0, (frac * max(sizes.size, 1)) ** (1.0 / 3.0))
                except Exception:
                    c_build = None
        return cls(
            rep_data,
            target.metric,
            baseline_dists=dists,
            baseline_sizes=sizes,
            n=int(getattr(target, "n", 0)),
            c_build=c_build,
            **kwargs,
        )

    # ------------------------------------------------------------ ingestion
    def observe_queries(self, Qs: np.ndarray) -> None:
        """Fold sampled queries into the live window: distance to and
        identity of each query's nearest representative."""
        if Qs.size == 0 or self.n_reps == 0:
            return
        D = np.atleast_2d(self.metric.pairwise(Qs, self.rep_data))
        j = np.argmin(D, axis=1)
        d = D[np.arange(D.shape[0]), j]
        for ji, di in zip(j, d):
            if len(self._rep_hits) == self._rep_hits.maxlen:
                old = self._rep_hits[0]
                self._hit_counts[old] -= 1
            self._rep_hits.append(int(ji))
            self._hit_counts[int(ji)] += 1
            self._d_rep.append(float(di))

    def observe_rules(self, candidates: int, n_queries: int) -> None:
        """Fold one batch's stage-2 candidate count into the live
        c-estimate window."""
        if n_queries <= 0:
            return
        if len(self._rules) == self._rules.maxlen:
            c0, q0 = self._rules[0]
            self._cand_sum -= c0
            self._query_sum -= q0
        self._rules.append((int(candidates), int(n_queries)))
        self._cand_sum += int(candidates)
        self._query_sum += int(n_queries)

    # ------------------------------------------------------------- reading
    @property
    def c_live(self) -> float | None:
        """Theorem 1 inverted on the live window: candidates per query
        ``= c^3 n / n_r`` so ``c = (frac * n_r)^(1/3)``."""
        if self._query_sum == 0 or self.n == 0 or self.n_reps == 0:
            return None
        frac = self._cand_sum / (self._query_sum * self.n)
        return max(1.0, (frac * self.n_reps) ** (1.0 / 3.0))

    def report(self) -> DriftReport:
        d = np.asarray(self._d_rep, dtype=np.float64)
        mean_d = float(d.mean()) if d.size else 0.0
        q95_d = float(np.percentile(d, 95)) if d.size else 0.0
        ratio = (
            mean_d / self.baseline_mean
            if self.baseline_mean > 0 and d.size
            else 1.0
        )
        entropy = (
            _norm_entropy(self._hit_counts) if len(self._rep_hits) else 1.0
        )
        gap = abs(entropy - self.baseline_entropy) if len(self._rep_hits) else 0.0
        c_live = self.c_live
        c_ratio = (
            c_live / self.c_build
            if c_live is not None and self.c_build
            else None
        )
        reasons: list[str] = []
        if d.size and ratio > self.dist_ratio_threshold:
            reasons.append(
                f"rep-distance ratio {ratio:.2f} > "
                f"{self.dist_ratio_threshold:g}"
            )
        if len(self._rep_hits) and gap > self.entropy_gap_threshold:
            reasons.append(
                f"entropy gap {gap:.2f} > {self.entropy_gap_threshold:g}"
            )
        if c_ratio is not None and c_ratio > self.c_ratio_threshold:
            reasons.append(
                f"c ratio {c_ratio:.2f} > {self.c_ratio_threshold:g}"
            )
        return DriftReport(
            n_window=len(self._d_rep),
            mean_rep_dist=mean_d,
            q95_rep_dist=q95_d,
            baseline_mean_rep_dist=self.baseline_mean,
            baseline_q95_rep_dist=self.baseline_q95,
            dist_ratio=float(ratio),
            rep_entropy=entropy,
            baseline_entropy=self.baseline_entropy,
            entropy_gap=float(gap),
            c_live=c_live,
            c_build=self.c_build,
            c_ratio=c_ratio,
            drifted=bool(reasons),
            reasons=reasons,
        )
