"""Process-wide metrics: named counters/gauges/histograms with exporters.

The serving stack already *has* the measurement seams — DistanceCounter
windows, operand-cache hit counters, the batcher's ladder level, executor
pool health — but each lives in its own object with its own API.  This
module gives them one registry with the Prometheus data model:

* :class:`Counter` — monotone totals.  The hot-path concern is lock
  traffic: a counter bumped per batch (or per query) from many threads
  must not serialize them, so each thread writes its own *shard* (a plain
  dict bump, no lock) and readers sum the shards.  Totals are exact — a
  shard is only ever written by its owning thread — which the concurrency
  tests hammer.
* :class:`Gauge` — last-written values (ladder level, queue depth, slack).
  Set/inc are lock-protected; gauges are written per batch, not per row.
* :class:`Histogram` — cumulative bucket counts plus sum/count (latency
  distributions), sharded per thread like counters.

All three support label dimensions (``counter.inc(backend="threads")``).

:class:`MetricsRegistry` is the namespace: ``registry.counter(name, help)``
creates-or-returns, :meth:`MetricsRegistry.expose` renders the Prometheus
text exposition format (``# HELP`` / ``# TYPE`` / samples), and
:meth:`MetricsRegistry.snapshot` / :meth:`MetricsRegistry.dump_jsonl`
produce the JSON forms the ``repro report`` CLI pretty-prints.  Registered
*collector* callbacks run before every read so pull-style gauges (cache
hit rate, pool health — see :mod:`repro.obs.collectors`) are fresh at
scrape time and cost nothing between scrapes.

The module-level :data:`registry` is the process default, mirroring
Prometheus client conventions; tests build private registries.
"""

from __future__ import annotations

import json
import math
import threading
import time

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "registry",
    "DEFAULT_BUCKETS",
]

#: default histogram buckets (seconds): 100µs .. 10s, log-spaced-ish
DEFAULT_BUCKETS = (
    0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025,
    0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
)


def _label_key(labelnames: tuple, labels: dict) -> tuple:
    if set(labels) != set(labelnames):
        raise ValueError(
            f"expected labels {labelnames}, got {tuple(labels)}"
        )
    return tuple(str(labels[name]) for name in labelnames)


def _escape_label(val: str) -> str:
    """Prometheus label-value escaping: backslash, quote, newline."""
    return (
        str(val)
        .replace("\\", "\\\\")
        .replace('"', '\\"')
        .replace("\n", "\\n")
    )


def _render_labels(labelnames: tuple, key: tuple) -> str:
    if not labelnames:
        return ""
    inner = ",".join(
        f'{name}="{_escape_label(val)}"'
        for name, val in zip(labelnames, key)
    )
    return "{" + inner + "}"


def _fmt_value(val: float) -> str:
    """Exposition-format sample value at full precision.

    ``%g`` truncates to 6 significant digits, so a counter past 1e6
    rendered ``1.23457e+06`` no longer round-trips — and a histogram's
    ``_count`` would disagree with its summed shard totals by parsing.
    Integral values render as integers; everything else uses ``repr``,
    which is shortest-exact for floats.
    """
    f = float(val)
    if math.isnan(f):
        return "NaN"
    if math.isinf(f):
        return "+Inf" if f > 0 else "-Inf"
    if f.is_integer() and abs(f) < 2**53:
        return str(int(f))
    return repr(f)


class _Metric:
    """Shared plumbing: name, help text, label schema."""

    kind = "untyped"

    def __init__(self, name: str, help: str = "", labelnames=()) -> None:
        self.name = name
        self.help = help
        self.labelnames = tuple(labelnames)

    def samples(self) -> list[tuple[str, tuple, float]]:
        """(suffix, label_key, value) triples for the exposition."""
        raise NotImplementedError


class Counter(_Metric):
    """Monotone counter with per-thread shards (lock-free increments)."""

    kind = "counter"

    def __init__(self, name: str, help: str = "", labelnames=()) -> None:
        super().__init__(name, help, labelnames)
        self._tls = threading.local()
        self._shards: list[dict] = []
        self._lock = threading.Lock()

    def _shard(self) -> dict:
        shard = getattr(self._tls, "shard", None)
        if shard is None:
            shard = self._tls.shard = {}
            # shard registration is the only locked operation, paid once
            # per (thread, counter) pair over the process lifetime
            with self._lock:
                self._shards.append(shard)
        return shard

    def inc(self, amount: float = 1.0, **labels) -> None:
        if amount < 0:
            raise ValueError("counters only go up")
        key = _label_key(self.labelnames, labels)
        shard = self._shard()
        shard[key] = shard.get(key, 0.0) + amount

    def value(self, **labels) -> float:
        key = _label_key(self.labelnames, labels)
        with self._lock:
            shards = list(self._shards)
        return sum(shard.get(key, 0.0) for shard in shards)

    def collect(self) -> dict[tuple, float]:
        """Label-key -> total, summed across thread shards."""
        with self._lock:
            shards = list(self._shards)
        out: dict[tuple, float] = {}
        for shard in shards:
            for key, val in list(shard.items()):
                out[key] = out.get(key, 0.0) + val
        return out

    def samples(self) -> list[tuple[str, tuple, float]]:
        return [("", key, val) for key, val in sorted(self.collect().items())]


class Gauge(_Metric):
    """Last-written value; supports ``set``/``inc``/``dec`` and callbacks."""

    kind = "gauge"

    def __init__(self, name: str, help: str = "", labelnames=()) -> None:
        super().__init__(name, help, labelnames)
        self._values: dict[tuple, float] = {}
        self._lock = threading.Lock()

    def set(self, value: float, **labels) -> None:
        key = _label_key(self.labelnames, labels)
        with self._lock:
            self._values[key] = float(value)

    def inc(self, amount: float = 1.0, **labels) -> None:
        key = _label_key(self.labelnames, labels)
        with self._lock:
            self._values[key] = self._values.get(key, 0.0) + amount

    def dec(self, amount: float = 1.0, **labels) -> None:
        self.inc(-amount, **labels)

    def value(self, **labels) -> float:
        key = _label_key(self.labelnames, labels)
        with self._lock:
            return self._values.get(key, 0.0)

    def collect(self) -> dict[tuple, float]:
        with self._lock:
            return dict(self._values)

    def samples(self) -> list[tuple[str, tuple, float]]:
        return [("", key, val) for key, val in sorted(self.collect().items())]


class Histogram(_Metric):
    """Cumulative-bucket histogram, sharded per thread like a counter."""

    kind = "histogram"

    def __init__(
        self, name: str, help: str = "", labelnames=(), buckets=DEFAULT_BUCKETS
    ) -> None:
        super().__init__(name, help, labelnames)
        self.buckets = tuple(sorted(float(b) for b in buckets))
        self._tls = threading.local()
        self._shards: list[dict] = []
        self._lock = threading.Lock()

    def _shard(self) -> dict:
        shard = getattr(self._tls, "shard", None)
        if shard is None:
            shard = self._tls.shard = {}
            with self._lock:
                self._shards.append(shard)
        return shard

    def observe(self, value: float, **labels) -> None:
        key = _label_key(self.labelnames, labels)
        shard = self._shard()
        ent = shard.get(key)
        if ent is None:
            ent = shard[key] = [[0] * len(self.buckets), 0.0, 0]
        counts, _, _ = ent
        for i, bound in enumerate(self.buckets):
            if value <= bound:
                counts[i] += 1
                break
        ent[1] += value
        ent[2] += 1

    def collect(self) -> dict[tuple, tuple[list[int], float, int]]:
        """Label-key -> (bucket_counts, sum, count) across shards."""
        with self._lock:
            shards = list(self._shards)
        out: dict[tuple, list] = {}
        for shard in shards:
            for key, (counts, total, n) in list(shard.items()):
                ent = out.setdefault(key, [[0] * len(self.buckets), 0.0, 0])
                ent[0] = [a + b for a, b in zip(ent[0], counts)]
                ent[1] += total
                ent[2] += n
        return {k: (v[0], v[1], v[2]) for k, v in out.items()}

    def samples(self) -> list[tuple[str, tuple, float]]:
        rows: list[tuple[str, tuple, float]] = []
        for key, (counts, total, n) in sorted(self.collect().items()):
            cum = 0
            for bound, c in zip(self.buckets, counts):
                cum += c
                rows.append((f'_bucket{{le="{bound:g}"}}', key, float(cum)))
            rows.append(('_bucket{le="+Inf"}', key, float(n)))
            rows.append(("_sum", key, total))
            rows.append(("_count", key, float(n)))
        return rows


class MetricsRegistry:
    """Named metrics plus the exporters that read them.

    ``counter``/``gauge``/``histogram`` are create-or-return: the first
    call fixes kind, help, and label schema, later calls must agree (a
    mismatch raises, catching collisions between instrumented modules).
    """

    def __init__(self) -> None:
        self._metrics: dict[str, _Metric] = {}
        self._collectors: list = []
        self._lock = threading.Lock()

    # --------------------------------------------------------- registration
    def _get_or_create(self, cls, name: str, help: str, labelnames, **kw):
        with self._lock:
            existing = self._metrics.get(name)
            if existing is not None:
                if not isinstance(existing, cls) or existing.labelnames != tuple(
                    labelnames
                ):
                    raise ValueError(
                        f"metric {name!r} already registered as "
                        f"{existing.kind} with labels {existing.labelnames}"
                    )
                return existing
            metric = cls(name, help, labelnames, **kw)
            self._metrics[name] = metric
            return metric

    def counter(self, name: str, help: str = "", labelnames=()) -> Counter:
        return self._get_or_create(Counter, name, help, labelnames)

    def gauge(self, name: str, help: str = "", labelnames=()) -> Gauge:
        return self._get_or_create(Gauge, name, help, labelnames)

    def histogram(
        self, name: str, help: str = "", labelnames=(), buckets=DEFAULT_BUCKETS
    ) -> Histogram:
        return self._get_or_create(
            Histogram, name, help, labelnames, buckets=buckets
        )

    def get(self, name: str) -> _Metric | None:
        with self._lock:
            return self._metrics.get(name)

    def add_collector(self, fn) -> None:
        """Register ``fn(registry)`` to run before every read (idempotent
        by function identity)."""
        with self._lock:
            if fn not in self._collectors:
                self._collectors.append(fn)

    def _run_collectors(self) -> None:
        with self._lock:
            collectors = list(self._collectors)
        for fn in collectors:
            fn(self)

    # ------------------------------------------------------------ exporters
    def expose(self) -> str:
        """The Prometheus text exposition format (scrape endpoint body)."""
        self._run_collectors()
        with self._lock:
            metrics = sorted(self._metrics.items())
        lines: list[str] = []
        for name, metric in metrics:
            if metric.help:
                lines.append(f"# HELP {name} {metric.help}")
            lines.append(f"# TYPE {name} {metric.kind}")
            for suffix, key, val in metric.samples():
                if suffix.startswith("_bucket"):
                    # bucket suffix carries its own le label; merge with
                    # the metric's label set
                    le = suffix[suffix.index("{") :]
                    base = _render_labels(metric.labelnames, key)
                    if base:
                        merged = base[:-1] + "," + le[1:]
                    else:
                        merged = le
                    lines.append(f"{name}_bucket{merged} {_fmt_value(val)}")
                else:
                    labels = _render_labels(metric.labelnames, key)
                    lines.append(f"{name}{suffix}{labels} {_fmt_value(val)}")
        return "\n".join(lines) + "\n"

    def snapshot(self) -> dict:
        """JSON-friendly view: name -> {kind, values} (labels joined)."""
        self._run_collectors()
        with self._lock:
            metrics = sorted(self._metrics.items())
        out: dict[str, dict] = {}
        for name, metric in metrics:
            if isinstance(metric, Histogram):
                values = {
                    ",".join(key) or "": {"sum": total, "count": n}
                    for key, (counts, total, n) in metric.collect().items()
                }
            else:
                values = {
                    ",".join(key) or "": val
                    for key, val in metric.collect().items()
                }
            out[name] = {"kind": metric.kind, "values": values}
        return out

    def dump_jsonl(self, path, *, now: float | None = None) -> None:
        """Append one timestamped snapshot line to a JSONL file."""
        record = {
            "ts": time.time() if now is None else float(now),
            "metrics": self.snapshot(),
        }
        with open(path, "a") as fh:
            fh.write(json.dumps(record) + "\n")

    def clear(self) -> None:
        """Drop every metric and collector (test isolation)."""
        with self._lock:
            self._metrics.clear()
            self._collectors.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self._metrics)

    def __contains__(self, name: str) -> bool:
        with self._lock:
            return name in self._metrics


#: the process-default registry (instrumented modules and the CLI share it)
registry = MetricsRegistry()
