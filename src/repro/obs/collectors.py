"""Pull-style collectors: bridge existing instruments into the registry.

The package already measures its hot seams — the operand cache counts
preparations vs hits, the executor pool counts pools created, the operand
store counts registrations, packed list storage knows its slack.  None of
that should be *pushed* into the registry on the hot path; instead these
collectors read the existing instruments at scrape time (they run inside
:meth:`~repro.obs.metrics.MetricsRegistry.expose` / ``snapshot``), so the
cost lands on the scraper, never on a query.

:func:`install_standard_collectors` wires the process-wide seams; it is
idempotent, so every entry point that wants a populated registry (the
serving front-end, the ``repro metrics`` CLI) can call it unconditionally.
:func:`install_index_collectors` adds per-index gauges (packed-list slack,
dataset shape) for the index a serving session fronts.
"""

from __future__ import annotations

import weakref

from .metrics import MetricsRegistry, registry as default_registry

__all__ = [
    "install_standard_collectors",
    "install_index_collectors",
    "install_cache_collectors",
    "install_quality_collectors",
]


def _collect_process_seams(reg: MetricsRegistry) -> None:
    # imported lazily: obs sits below everything else in the layering, so
    # the modules being observed must not be imported at obs import time
    from ..metrics.engine import operand_cache
    from ..parallel.pool import executor_pool, operand_store

    stats = operand_cache.stats.snapshot()
    reg.gauge(
        "repro_operand_cache_hits_total",
        "pairwise calls served by a cached prepared operand",
    ).set(stats.n_hits)
    reg.gauge(
        "repro_operand_cache_prepared_total",
        "operand preparations (norm hoists) performed",
    ).set(stats.n_prepared)
    reg.gauge(
        "repro_operand_cache_invalidated_total",
        "cached operands invalidated by version bumps",
    ).set(stats.n_invalidated)
    total = stats.n_hits + stats.n_prepared
    reg.gauge(
        "repro_operand_cache_hit_rate",
        "fraction of operand lookups served from cache",
    ).set(stats.n_hits / total if total else 0.0)

    reg.gauge(
        "repro_executor_pool_live",
        "resident executors currently registered",
    ).set(len(executor_pool))
    reg.gauge(
        "repro_executor_pool_created_total",
        "executors constructed over the registry lifetime",
    ).set(executor_pool.n_created)

    reg.gauge(
        "repro_operand_store_entries",
        "datasets resident in the shared-memory operand store",
    ).set(len(operand_store))
    reg.gauge(
        "repro_operand_store_registered_total",
        "shared-memory operand registrations (each is one copy)",
    ).set(operand_store.n_registered)
    reg.gauge(
        "repro_operand_store_hits_total",
        "process-backend calls served by an existing registration",
    ).set(operand_store.n_hits)


def install_standard_collectors(reg: MetricsRegistry | None = None) -> MetricsRegistry:
    """Attach the process-wide seam collectors to ``reg`` (idempotent)."""
    reg = reg if reg is not None else default_registry
    reg.add_collector(_collect_process_seams)
    return reg


def install_index_collectors(
    index, reg: MetricsRegistry | None = None, *, label: str | None = None
) -> MetricsRegistry:
    """Attach per-index gauges: packed-list occupancy/slack and size.

    The collector holds the index weakly — registering an index for
    observation must not keep it alive past its serving session.
    """
    reg = reg if reg is not None else default_registry
    ref = weakref.ref(index)
    name = label or type(index).__name__

    def collect(r: MetricsRegistry) -> None:
        idx = ref()
        if idx is None:
            return
        r.gauge(
            "repro_index_points", "database points indexed", ("index",)
        ).set(getattr(idx, "n", 0), index=name)
        footprint = getattr(idx, "memory_footprint", None)
        if callable(footprint):
            try:
                bytes_held = int(footprint())
            except (NotImplementedError, RuntimeError):
                bytes_held = None  # unbuilt, or no accounting
            if bytes_held is not None:
                r.gauge(
                    "repro_index_memory_bytes",
                    "approximate bytes held by the index structure",
                    ("index",),
                ).set(bytes_held, index=name)
        packed = getattr(idx, "packed", None)
        if packed is None:
            return
        size = getattr(packed, "total", None)
        capacity = getattr(packed, "capacity", None)
        if size is None or capacity is None:
            return
        r.gauge(
            "repro_packed_entries",
            "stored entries in packed list storage",
            ("index",),
        ).set(size, index=name)
        r.gauge(
            "repro_packed_slack_entries",
            "allocated-but-unused entries (growth headroom)",
            ("index",),
        ).set(capacity - size, index=name)

    reg.add_collector(collect)
    return reg


def install_cache_collectors(
    cache, reg: MetricsRegistry | None = None
) -> MetricsRegistry:
    """Attach semantic-cache gauges for one
    :class:`~repro.serving.cache.ProximityCache` (held weakly): lifetime
    hit/miss/certified-reject/eviction/invalidation tallies, live entry
    count, and the running hit rate — read from the cache's own counters
    at scrape time, never on the lookup path."""
    reg = reg if reg is not None else default_registry
    ref = weakref.ref(cache)

    def collect(r: MetricsRegistry) -> None:
        c = ref()
        if c is None:
            return
        counters = c.counters
        r.gauge(
            "repro_semantic_cache_hits_total",
            "queries answered from a certified cached result",
        ).set(counters.hits)
        r.gauge(
            "repro_semantic_cache_misses_total",
            "queries that fell through to the index",
        ).set(counters.misses)
        r.gauge(
            "repro_semantic_cache_rejects_total",
            "misses whose nearest key failed the tolerance certificate",
        ).set(counters.rejects)
        r.gauge(
            "repro_semantic_cache_entries",
            "live cached results",
        ).set(len(c))
        r.gauge(
            "repro_semantic_cache_hit_rate",
            "lifetime fraction of lookups served from cache",
        ).set(counters.hit_rate)
        r.gauge(
            "repro_semantic_cache_evictions_total",
            "entries dropped by LRU pressure or TTL expiry",
        ).set(counters.evicted + counters.expired)
        r.gauge(
            "repro_semantic_cache_invalidations_total",
            "entries dropped because the index mutated",
        ).set(counters.invalidated)

    reg.add_collector(collect)
    return reg


def install_quality_collectors(
    sampler, reg: MetricsRegistry | None = None
) -> MetricsRegistry:
    """Attach answer-quality gauges for one
    :class:`~repro.obs.quality.QualitySampler` (held weakly): the
    windowed recall estimate, sample/breach counters, and — when a
    drift monitor is attached — the live-vs-build distribution gauges
    (nearest-representative distance ratio, ownership-hit entropy, and
    the live Theorem-1 ``c`` estimate)."""
    reg = reg if reg is not None else default_registry
    ref = weakref.ref(sampler)

    def collect(r: MetricsRegistry) -> None:
        s = ref()
        if s is None:
            return
        mon = s.monitor
        r.gauge(
            "repro_quality_recall_estimate",
            "windowed shadow-oracle recall@k estimate",
        ).set(mon.recall_estimate)
        r.gauge(
            "repro_quality_rank_error",
            "windowed mean excess rank of served ids",
        ).set(mon.rank_error_mean)
        r.gauge(
            "repro_quality_distance_ratio",
            "windowed mean served-over-oracle NN distance ratio",
        ).set(mon.distance_ratio_mean)
        r.gauge(
            "repro_quality_samples_total",
            "queries re-answered by the shadow oracle",
        ).set(mon.n_samples)
        r.gauge(
            "repro_quality_breaches_total",
            "recall-target breach signals fired",
        ).set(mon.n_breaches)
        r.gauge(
            "repro_quality_seen_total",
            "queries the sampler hashed (sampled or not)",
        ).set(s.n_seen)
        drift = getattr(s, "drift", None)
        if drift is None:
            return
        rep = drift.report()
        r.gauge(
            "repro_drift_rep_dist_ratio",
            "live over build-time mean nearest-representative distance",
        ).set(rep.dist_ratio)
        r.gauge(
            "repro_drift_rep_entropy",
            "normalized entropy of live representative hits",
        ).set(rep.rep_entropy)
        r.gauge(
            "repro_drift_entropy_baseline",
            "normalized entropy of build-time ownership-list sizes",
        ).set(rep.baseline_entropy)
        if rep.c_live is not None:
            r.gauge(
                "repro_drift_c_live",
                "live expansion-rate estimate (Theorem 1 inverted)",
            ).set(rep.c_live)
        if rep.c_build is not None:
            r.gauge(
                "repro_drift_c_build",
                "build-time expansion-rate estimate",
            ).set(rep.c_build)
        r.gauge(
            "repro_drift_flag",
            "1 when the live window crossed a drift threshold",
        ).set(1.0 if rep.drifted else 0.0)

    reg.add_collector(collect)
    return reg
