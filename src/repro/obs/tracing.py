"""Span tracing: per-run timelines that survive the process boundary.

The paper's accounting story — RBC wins because ``BF(Q, X[L])`` does
provably less work and schedules like dense linear algebra (§3) — needs a
*live* counterpart to the post-hoc :class:`~repro.runtime.report.RunReport`:
something that attributes wall time to individual queries, batches, kernel
calls, and worker processes while a serve run is in flight.

A :class:`Span` is one timed, attributed interval with OpenTelemetry-style
identity: a ``trace_id`` naming the causal tree it belongs to, its own
``span_id``, and a ``parent_id``.  Ids are strings namespaced by pid
(``s<pid>-<n>``), so spans created in different worker processes can never
collide when they are merged into one timeline.

The :class:`Tracer` is the collection point.  ``tracer.span("phase")`` is
a context manager that opens a child of the calling thread's current span
(each thread has its own stack, so concurrent batches nest correctly);
:meth:`Tracer.context` captures the current position as a picklable
:class:`SpanContext` that rides task payloads into worker processes, where
a child :class:`Tracer` (``Tracer(root=span_ctx)``) parents everything it
records under the submitting span.  The finished worker spans return as
plain dicts in the result payload and :meth:`Tracer.adopt` re-parents them
into the submitting tracer — so one Chrome-trace export shows coordinator
and worker activity on a single timeline, in the worker's own pid lane.

Export is the Chrome ``trace_events`` JSON format (:meth:`chrome_trace`),
loadable in ``chrome://tracing`` / Perfetto: one complete (``"ph": "X"``)
event per span, grouped by pid/tid, with the span identity and attributes
in ``args``.

Disabled tracing must cost nothing: :data:`NULL_TRACER` answers
``enabled = False`` and its ``span()`` reuses a no-op context manager, so
instrumented code paths need no conditional at the call site.
"""

from __future__ import annotations

import itertools
import json
import os
import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass, field

__all__ = [
    "Span",
    "SpanContext",
    "Tracer",
    "NULL_TRACER",
    "chrome_trace",
]

#: per-process id source; ids are namespaced by pid so worker-minted ids
#: stay unique after adoption into the parent's tracer
_ids = itertools.count(1)


def _new_id(prefix: str) -> str:
    return f"{prefix}{os.getpid()}-{next(_ids)}"


@dataclass(frozen=True)
class SpanContext:
    """The picklable identity of a span: what crosses process boundaries.

    Workers receive one of these in their task payload and parent their
    own spans under it; nothing else about the tracer travels.
    """

    trace_id: str
    span_id: str


@dataclass
class Span:
    """One timed, attributed interval of work.

    ``start_s`` is epoch wall-clock (``time.time()``) so spans recorded in
    different processes on one machine land on a common timeline;
    ``dur_s`` is measured with ``perf_counter`` for resolution.
    """

    name: str
    trace_id: str
    span_id: str
    parent_id: str | None = None
    start_s: float = 0.0
    dur_s: float = 0.0
    attrs: dict = field(default_factory=dict)
    pid: int = 0
    tid: int = 0
    _t0: float = field(default=0.0, repr=False, compare=False)

    def set(self, **attrs) -> "Span":
        """Attach attributes to a live span (chainable)."""
        self.attrs.update(attrs)
        return self

    @property
    def context(self) -> SpanContext:
        return SpanContext(self.trace_id, self.span_id)

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "start_s": self.start_s,
            "dur_s": self.dur_s,
            "attrs": dict(self.attrs),
            "pid": self.pid,
            "tid": self.tid,
        }

    @classmethod
    def from_dict(cls, d: dict) -> "Span":
        return cls(
            name=d["name"],
            trace_id=d["trace_id"],
            span_id=d["span_id"],
            parent_id=d.get("parent_id"),
            start_s=float(d.get("start_s", 0.0)),
            dur_s=float(d.get("dur_s", 0.0)),
            attrs=dict(d.get("attrs", {})),
            pid=int(d.get("pid", 0)),
            tid=int(d.get("tid", 0)),
        )


class _NullSpan:
    """Stand-in yielded by the null tracer; absorbs attribute writes."""

    __slots__ = ()
    trace_id = span_id = parent_id = None
    context = None

    def set(self, **attrs) -> "_NullSpan":
        return self


_NULL_SPAN = _NullSpan()


class Tracer:
    """Collects finished spans; thread-safe, one per run (or per worker).

    Parameters
    ----------
    root:
        optional :class:`SpanContext` adopted as the implicit parent: a
        worker-side tracer built from the submitting span's context
        parents its top-level spans under the submitter, in the
        submitter's trace.
    """

    enabled = True

    def __init__(self, root: SpanContext | None = None) -> None:
        self.spans: list[Span] = []
        self.root = root
        self._tls = threading.local()
        self._lock = threading.Lock()

    # ------------------------------------------------------------ recording
    @property
    def _stack(self) -> list[Span]:
        stack = getattr(self._tls, "stack", None)
        if stack is None:
            stack = self._tls.stack = []
        return stack

    @property
    def current(self) -> Span | None:
        """This thread's innermost open span (``None`` outside any)."""
        stack = self._stack
        return stack[-1] if stack else None

    def context(self) -> SpanContext | None:
        """Picklable identity of the current span, for task payloads."""
        cur = self.current
        return cur.context if cur is not None else self.root

    def start_span(
        self, name: str, *, parent: SpanContext | None = None, **attrs
    ) -> Span:
        """Open a span without entering it on the thread stack.

        For intervals that do not nest lexically — a served query's life
        from arrival to answer spans many batcher events — the caller
        holds the span and ends it with :meth:`finish`.
        """
        up = parent or self.context()
        span = Span(
            name=name,
            trace_id=up.trace_id if up is not None else _new_id("t"),
            span_id=_new_id("s"),
            parent_id=up.span_id if up is not None else None,
            start_s=time.time(),
            attrs=dict(attrs),
            pid=os.getpid(),
            tid=threading.get_ident(),
        )
        span._t0 = time.perf_counter()
        return span

    def finish(self, span: Span) -> Span:
        """Close a span opened with :meth:`start_span` and collect it."""
        span.dur_s = time.perf_counter() - span._t0
        with self._lock:
            self.spans.append(span)
        return span

    @contextmanager
    def span(self, name: str, **attrs):
        """Open a child of the calling thread's current span."""
        span = self.start_span(name, **attrs)
        stack = self._stack
        stack.append(span)
        try:
            yield span
        finally:
            stack.pop()
            self.finish(span)

    @contextmanager
    def span_under(self, parent: SpanContext | None, name: str, **attrs):
        """Like :meth:`span`, but parented explicitly.

        Worker threads have an empty span stack, so a task fanned out over
        a thread pool passes the submitting span's context here to keep
        the tree connected across the dispatch.
        """
        span = self.start_span(name, parent=parent, **attrs)
        stack = self._stack
        stack.append(span)
        try:
            yield span
        finally:
            stack.pop()
            self.finish(span)

    # ---------------------------------------------------------- re-parenting
    def adopt(
        self, span_dicts, parent: SpanContext | Span | None = None
    ) -> list[Span]:
        """Merge worker-side span dicts into this tracer's timeline.

        Spans whose ``trace_id``/``parent_id`` already point at the
        submitting span (the worker was built with ``Tracer(root=...)``)
        are taken as-is; orphans — workers run without a root context — are
        re-parented under ``parent`` (default: the current span) and moved
        into its trace.  Children keep their internal linkage either way.
        """
        if parent is None:
            parent = self.context()
        elif isinstance(parent, Span):
            parent = parent.context
        spans = [Span.from_dict(d) for d in span_dicts]
        local = {s.span_id for s in spans}
        for s in spans:
            if s.parent_id not in local:  # worker-root span
                if parent is not None and s.parent_id is None:
                    s.parent_id = parent.span_id
            if parent is not None and s.trace_id != parent.trace_id:
                # orphan trace: fold the whole worker subtree into the
                # submitting trace so the timeline reads as one tree
                if s.parent_id not in local:
                    s.parent_id = parent.span_id
                s.trace_id = parent.trace_id
        with self._lock:
            self.spans.extend(spans)
        return spans

    # -------------------------------------------------------------- export
    def export(self) -> list[dict]:
        """Finished spans as dicts (the JSONL/pickle-friendly form)."""
        with self._lock:
            return [s.to_dict() for s in self.spans]

    def chrome_trace(self) -> dict:
        """The collected timeline in Chrome ``trace_events`` format."""
        with self._lock:
            spans = list(self.spans)
        return chrome_trace(spans)

    def save(self, path) -> None:
        """Write the Chrome-trace JSON to ``path``."""
        with open(path, "w") as fh:
            json.dump(self.chrome_trace(), fh, indent=2)

    def clear(self) -> None:
        with self._lock:
            self.spans.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self.spans)


class _NullTracer(Tracer):
    """Tracer that records nothing (tracing disabled)."""

    enabled = False

    def __init__(self) -> None:
        super().__init__()

    @contextmanager
    def span(self, name: str, **attrs):  # noqa: D102 - intentional no-op
        yield _NULL_SPAN

    @contextmanager
    def span_under(self, parent, name: str, **attrs):  # noqa: D102
        yield _NULL_SPAN

    def start_span(self, name: str, *, parent=None, **attrs):  # noqa: D102
        return _NULL_SPAN

    def finish(self, span):  # noqa: D102
        return span

    def context(self) -> None:  # noqa: D102
        return None

    def adopt(self, span_dicts, parent=None) -> list:  # noqa: D102
        return []


NULL_TRACER = _NullTracer()


def chrome_trace(spans: list[Span]) -> dict:
    """Render spans as a Chrome ``trace_events`` document.

    One complete event (``"ph": "X"``) per span, timestamps rebased to the
    earliest span so the timeline starts at zero; span identity and
    attributes land in ``args`` for inspection in the trace viewer.
    """
    t0 = min((s.start_s for s in spans), default=0.0)
    events = []
    for s in sorted(spans, key=lambda s: s.start_s):
        events.append(
            {
                "ph": "X",
                "name": s.name,
                "cat": s.name.split(":")[0],
                "ts": (s.start_s - t0) * 1e6,
                "dur": s.dur_s * 1e6,
                "pid": s.pid,
                "tid": s.tid,
                "args": {
                    "trace_id": s.trace_id,
                    "span_id": s.span_id,
                    "parent_id": s.parent_id,
                    **s.attrs,
                },
            }
        )
    return {"traceEvents": events, "displayTimeUnit": "ms"}
