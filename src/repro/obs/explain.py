"""Per-query EXPLAIN: a structured account of how one answer was made.

``submit(q, explain=True)`` (or the one-shot
:meth:`~repro.serving.searcher.StreamingSearcher.explain_query`) yields a
:class:`QueryExplain` alongside the answer: which backend served it and
why the router picked it (decision + per-backend cost-model scores),
which pruning rules did the stage-1/stage-2 work (SearchStats deltas for
the serving micro-batch), what the proximity cache decided (hit, reject
with the measured delta vs the tolerance radius, bypass), the quantized
tier's bound statistics, and — under the sharded searcher — the scatter
fan-out and hedges.  The ``repro explain`` CLI renders the same object.

Pruning-rule attribution is per *micro-batch*: the kernels count rules
per dispatched batch, so a query's attribution is the batch that served
it.  That is the honest granularity — rules are evaluated on the batch's
fused kernel calls, not per row.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["QueryExplain"]


@dataclass
class QueryExplain:
    """Structured explanation of one served query (or one batch)."""

    #: live-path ticket (``None`` for stream rows / batch digests)
    ticket: int | None = None
    #: row inside the served micro-batch (``None`` for batch digests)
    row: int | None = None
    k: int = 0
    #: backend that served the batch ("cache" when every row hit)
    backend: str = ""
    #: router degradation rung at serve time (``None`` when unrouted)
    rung: int | None = None
    batch_size: int = 0
    service_s: float = 0.0
    #: serve time on the caller's clock
    t: float = 0.0
    #: router decision (reason, predicted/measured seconds, budget,
    #: c_est) plus ``scores``: predicted cost per candidate backend
    router: dict | None = None
    #: pruning-rule counters attributed to the serving micro-batch
    rules: dict = field(default_factory=dict)
    #: proximity-cache outcome for this row: ``outcome`` is one of
    #: hit / reject / miss / disabled / off, with the measured ``delta``
    #: and the nearest key's certified ``radius`` when one existed
    cache: dict | None = None
    #: quantized-tier stats of the serving batch (bounds, k', recall)
    quant: dict | None = None
    #: scatter-gather shape under the sharded searcher (fan-out, hedges)
    shards: dict | None = None
    #: whether the shadow oracle sampled this query, and its recall
    sampled: bool = False
    recall: float | None = None

    def to_dict(self) -> dict:
        return {
            "ticket": self.ticket,
            "row": self.row,
            "k": self.k,
            "backend": self.backend,
            "rung": self.rung,
            "batch_size": self.batch_size,
            "service_s": self.service_s,
            "t": self.t,
            "router": self.router,
            "rules": dict(self.rules),
            "cache": self.cache,
            "quant": self.quant,
            "shards": self.shards,
            "sampled": self.sampled,
            "recall": self.recall,
        }

    @classmethod
    def from_dict(cls, d: dict) -> "QueryExplain":
        return cls(
            ticket=d.get("ticket"),
            row=d.get("row"),
            k=int(d.get("k", 0)),
            backend=str(d.get("backend", "")),
            rung=d.get("rung"),
            batch_size=int(d.get("batch_size", 0)),
            service_s=float(d.get("service_s", 0.0)),
            t=float(d.get("t", 0.0)),
            router=d.get("router"),
            rules=dict(d.get("rules", {})),
            cache=d.get("cache"),
            quant=d.get("quant"),
            shards=d.get("shards"),
            sampled=bool(d.get("sampled", False)),
            recall=d.get("recall"),
        )

    def summary(self) -> str:
        """Human-readable rendering (the ``repro explain`` CLI body)."""
        who = (
            f"ticket {self.ticket}"
            if self.ticket is not None
            else (f"row {self.row}" if self.row is not None else "batch")
        )
        lines = [
            f"EXPLAIN {who}: k={self.k} served by {self.backend or '?'}"
            + (f" (rung {self.rung})" if self.rung is not None else "")
            + f" in a {self.batch_size}-query batch, "
            f"{self.service_s * 1e3:.3f} ms service"
        ]
        if self.router:
            r = self.router
            lines.append(
                f"  router: {r.get('reason', '?')}; predicted "
                f"{(r.get('predicted_s') or 0.0) * 1e3:.3f} ms"
                + (
                    f", measured {r['measured_s'] * 1e3:.3f} ms"
                    if r.get("measured_s") is not None
                    else ""
                )
                + (
                    f", budget {r['budget_s'] * 1e3:.1f} ms"
                    if r.get("budget_s") is not None
                    else ""
                )
                + (
                    f", c_est {r['c_est']:.2f}"
                    if r.get("c_est") is not None
                    else ""
                )
            )
            scores = r.get("scores") or {}
            for name in sorted(scores):
                mark = " <-- chosen" if name == self.backend else ""
                lines.append(
                    f"    {name}: {scores[name] * 1e3:.3f} ms predicted{mark}"
                )
        if self.cache:
            c = self.cache
            bits = [f"outcome {c.get('outcome', '?')}"]
            if c.get("delta") is not None:
                bits.append(f"delta {c['delta']:.4g}")
            if c.get("radius") is not None:
                bits.append(f"radius {c['radius']:.4g}")
            lines.append("  cache: " + ", ".join(bits))
        if self.rules:
            lines.append(
                "  pruning (batch): "
                + ", ".join(f"{k}={v}" for k, v in sorted(self.rules.items()))
            )
        if self.quant:
            q = self.quant
            bits = [
                f"{q.get('quantizer', '?')}/{q.get('strategy', '?')}"
                f" ({q.get('backend', '?')})"
            ]
            if "k_prime" in q:
                bits.append(f"k'={q['k_prime']}")
            if "recall_before_rerank" in q:
                bits.append(f"recall@rerank {q['recall_before_rerank']:.4f}")
            lines.append("  quant: " + ", ".join(bits))
        if self.shards:
            s = self.shards
            lines.append(
                f"  shards: fan-out {s.get('fan_out', 0)}, "
                f"{s.get('hedges', 0)} hedges, "
                f"{s.get('rounds', 0)} rounds"
            )
        if self.sampled:
            lines.append(
                "  quality: shadow-oracle sampled"
                + (
                    f", recall {self.recall:.4f}"
                    if self.recall is not None
                    else ""
                )
            )
        return "\n".join(lines)
