"""Serving SLO monitor: rolling latency percentiles and error-budget burn.

The micro-batcher (:class:`~repro.serving.batcher.QueryBatcher`) already
*enforces* a latency budget per query; this module *tracks* how the served
distribution sits against that budget, the way a production serving stack
does:

* a **rolling window** of per-query sojourn latencies (arrival to answer)
  with p50/p95/p99 over the window — the live counterpart of the post-hoc
  :class:`~repro.runtime.report.LatencyStats`;
* **error-budget burn**: with an SLO of "``target`` of queries answered
  within ``budget_s``" (default 99%), the allowed violation fraction is
  ``1 - target``; the burn rate is the observed violation fraction divided
  by the allowance.  Burn 1.0 means the budget is being spent exactly as
  fast as it accrues; burn 4.0 means a 30-day budget dies in a week;
* **threshold callbacks**: consumers register ``on_breach`` callbacks
  fired (with cooldown) while the burn rate exceeds ``burn_threshold``.
  The batcher consumes this — :class:`~repro.serving.searcher.
  StreamingSearcher` wires a breach to
  :meth:`~repro.serving.batcher.QueryBatcher.backoff`, dropping the ladder
  one level so smaller, faster batches relieve the tail.

Like the batcher, the monitor is a pure policy object on an explicit
clock: ``observe(latency_s, now)`` takes the caller's ``now``, so the same
code runs under the live ``submit()`` path (wall clock) and the
virtual-clock ``search_stream`` replay, and the percentile agreement
between the monitor and the stream's :class:`LatencyStats` is testable
exactly.
"""

from __future__ import annotations

from collections import deque

import numpy as np

__all__ = ["SLOMonitor"]


class SLOMonitor:
    """Rolling-window latency SLO tracking with breach callbacks.

    Parameters
    ----------
    budget_s:
        per-query latency objective (seconds); a query slower than this is
        a violation.  Serving code passes the batcher's
        ``BatchPolicy.max_delay_s``.
    target:
        SLO attainment target — fraction of queries that must meet the
        budget (default 0.99, i.e. a 1% error budget).
    window_s:
        rolling-window length in seconds (``inf`` keeps every sample —
        useful when a whole replayed stream is one evaluation window).
    burn_threshold:
        callbacks fire while ``burn_rate`` exceeds this (default 1.0:
        spending budget faster than it accrues).
    cooldown_s:
        minimum spacing between callback firings, so a sustained breach
        produces a paced signal instead of one per query.
    """

    def __init__(
        self,
        budget_s: float,
        *,
        target: float = 0.99,
        window_s: float = 60.0,
        burn_threshold: float = 1.0,
        cooldown_s: float = 1.0,
    ) -> None:
        if budget_s <= 0:
            raise ValueError("budget_s must be positive")
        if not 0.0 < target < 1.0:
            raise ValueError("target must be in (0, 1)")
        if window_s <= 0:
            raise ValueError("window_s must be positive")
        self.budget_s = float(budget_s)
        self.target = float(target)
        self.window_s = float(window_s)
        self.burn_threshold = float(burn_threshold)
        self.cooldown_s = float(cooldown_s)
        #: (observed_at, latency_s) samples inside the window
        self._samples: deque[tuple[float, float]] = deque()
        self._violations = 0
        self._callbacks: list = []
        self._last_fired: float | None = None
        #: lifetime counters (survive window eviction)
        self.n_observed = 0
        self.n_violations_total = 0
        self.n_breaches = 0
        #: most recent queue depth reported by the server
        self.queue_depth = 0

    # ------------------------------------------------------------ ingestion
    def on_breach(self, callback) -> None:
        """Register ``callback(monitor)`` to fire on budget-burn breach."""
        self._callbacks.append(callback)

    def observe(
        self, latency_s: float, now: float, *, queue_depth: int | None = None
    ) -> None:
        """Record one served query's sojourn latency at time ``now``."""
        latency_s = float(latency_s)
        if not np.isfinite(latency_s) or latency_s < 0:
            raise ValueError("latency samples must be finite and non-negative")
        self._evict(now)
        self._samples.append((float(now), latency_s))
        self.n_observed += 1
        if latency_s > self.budget_s:
            self._violations += 1
            self.n_violations_total += 1
        if queue_depth is not None:
            self.queue_depth = int(queue_depth)
        if self.burn_rate > self.burn_threshold:
            self._fire(now)

    def _evict(self, now: float) -> None:
        if self.window_s == np.inf:
            return
        horizon = float(now) - self.window_s
        samples = self._samples
        while samples and samples[0][0] < horizon:
            _, lat = samples.popleft()
            if lat > self.budget_s:
                self._violations -= 1

    def _fire(self, now: float) -> None:
        if (
            self._last_fired is not None
            and now - self._last_fired < self.cooldown_s
        ):
            return
        self._last_fired = float(now)
        self.n_breaches += 1
        for cb in list(self._callbacks):
            cb(self)

    # ------------------------------------------------------------- reading
    @property
    def n_window(self) -> int:
        return len(self._samples)

    @property
    def violation_fraction(self) -> float:
        return self._violations / len(self._samples) if self._samples else 0.0

    @property
    def burn_rate(self) -> float:
        """Observed violation fraction over the allowed fraction."""
        return self.violation_fraction / (1.0 - self.target)

    def percentile(self, q: float) -> float:
        if not self._samples:
            return 0.0
        lats = np.fromiter(
            (lat for _, lat in self._samples), dtype=np.float64
        )
        return float(np.percentile(lats, q))

    @property
    def p50_s(self) -> float:
        return self.percentile(50)

    @property
    def p95_s(self) -> float:
        return self.percentile(95)

    @property
    def p99_s(self) -> float:
        return self.percentile(99)

    def report(self) -> dict:
        """JSON-friendly summary of the current window and lifetime."""
        return {
            "budget_s": self.budget_s,
            "target": self.target,
            "window_s": self.window_s,
            "n_window": self.n_window,
            "p50_s": self.p50_s,
            "p95_s": self.p95_s,
            "p99_s": self.p99_s,
            "violation_fraction": self.violation_fraction,
            "burn_rate": self.burn_rate,
            "queue_depth": self.queue_depth,
            "n_observed": self.n_observed,
            "n_violations_total": self.n_violations_total,
            "n_breaches": self.n_breaches,
        }

    def summary(self) -> str:
        r = self.report()
        return (
            f"SLO p50 {r['p50_s'] * 1e3:.3f} ms, p95 {r['p95_s'] * 1e3:.3f} ms, "
            f"p99 {r['p99_s'] * 1e3:.3f} ms against {self.budget_s * 1e3:g} ms "
            f"budget; burn {r['burn_rate']:.2f} "
            f"({r['n_violations_total']} violations / {r['n_observed']} served, "
            f"{r['n_breaches']} breach signals)"
        )
