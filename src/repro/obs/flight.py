"""Flight recorder: an always-on bounded telemetry ring with breach dumps.

Production incidents are diagnosed from what was recorded *before* the
page fired.  The :class:`FlightRecorder` keeps small bounded rings of
span digests (one per served micro-batch), recent
:class:`~repro.obs.explain.QueryExplain` digests, shadow-oracle quality
samples, metric snapshots, and operational events — cheap enough to
leave on in steady state.  When an SLO or quality breach fires (the
serving front-end wires the callbacks), :meth:`dump` writes a
self-contained **bundle directory**:

* ``manifest.json`` — ``{"kind": "flight-bundle", ...}`` with the
  reason, ring counts, and the file map (the ``repro report`` CLI
  auto-detects this);
* ``trace.json`` — the span-digest ring as Chrome ``traceEvents``;
* ``metrics.jsonl`` — the recorded metric snapshots (one line each);
* ``explains.json`` — the recent QueryExplain ring;
* ``quality.json`` — quality samples plus the monitor report and the
  :class:`~repro.obs.quality.DriftReport` at dump time;
* ``events.json`` — breaches, cache disables, ladder moves.

Dumps are cooldown-paced on the wall clock and capped at
``max_bundles`` per recorder, so a flapping breach cannot fill a disk.
"""

from __future__ import annotations

import json
import time
import weakref
from collections import deque
from pathlib import Path

__all__ = ["FlightRecorder"]

#: manifest schema marker the CLI keys off
BUNDLE_KIND = "flight-bundle"


class FlightRecorder:
    """Bounded telemetry rings plus breach-triggered bundle dumps.

    Parameters
    ----------
    dir:
        directory the bundles land under (created on first dump);
        defaults to ``./flight-bundles``.
    explain_capacity / span_capacity / quality_capacity /
    event_capacity / snapshot_capacity:
        ring sizes.  The defaults hold a recorder to a few hundred KiB
        (:meth:`memory_bytes` measures the real footprint).
    cooldown_s:
        minimum wall-clock spacing between dumps.
    max_bundles:
        lifetime cap on bundles written.
    """

    def __init__(
        self,
        *,
        dir=None,
        explain_capacity: int = 256,
        span_capacity: int = 2048,
        quality_capacity: int = 512,
        event_capacity: int = 256,
        snapshot_capacity: int = 32,
        cooldown_s: float = 5.0,
        max_bundles: int = 8,
    ) -> None:
        self.dir = Path(dir) if dir is not None else Path("flight-bundles")
        self.explains: deque[dict] = deque(maxlen=int(explain_capacity))
        self.spans: deque[dict] = deque(maxlen=int(span_capacity))
        self.quality: deque[dict] = deque(maxlen=int(quality_capacity))
        self.events: deque[dict] = deque(maxlen=int(event_capacity))
        self.snapshots: deque[dict] = deque(maxlen=int(snapshot_capacity))
        self.cooldown_s = float(cooldown_s)
        self.max_bundles = int(max_bundles)
        #: bundle directories written so far
        self.bundles: list[Path] = []
        self.n_dumps = 0
        self.n_suppressed = 0
        self._last_dump_wall: float | None = None
        self._quality_ref = None
        self._metrics_ref = None

    # ------------------------------------------------------------ recording
    def record_span(self, name: str, *, ts: float, dur_s: float, **attrs) -> None:
        """Append one span digest (``ts`` on the caller's clock)."""
        self.spans.append(
            {"name": name, "ts": float(ts), "dur_s": float(dur_s), **attrs}
        )

    def record_explain(self, explain) -> None:
        """Append one QueryExplain (stored as its dict form)."""
        self.explains.append(
            explain.to_dict() if hasattr(explain, "to_dict") else dict(explain)
        )

    def record_quality(self, sample) -> None:
        self.quality.append(
            sample.to_dict() if hasattr(sample, "to_dict") else dict(sample)
        )

    def record_event(self, kind: str, *, now: float | None = None, **payload) -> None:
        self.events.append({"kind": kind, "t": now, **payload})

    def record_metrics(self, registry, *, now: float | None = None) -> None:
        """Append one metrics snapshot (runs the registry collectors)."""
        self.snapshots.append({"ts": now, "metrics": registry.snapshot()})

    def attach(self, *, quality=None, metrics=None) -> None:
        """Wire live sources read at dump time (held weakly): the
        :class:`~repro.obs.quality.QualitySampler` for a fresh monitor
        report + DriftReport, and a metrics registry for a final
        snapshot."""
        if quality is not None:
            self._quality_ref = weakref.ref(quality)
        if metrics is not None:
            self._metrics_ref = weakref.ref(metrics)

    # ------------------------------------------------------------ footprint
    def memory_bytes(self) -> int:
        """Approximate resident footprint of the rings (serialized
        size — what a dump would write)."""
        total = 0
        for ring in (
            self.explains,
            self.spans,
            self.quality,
            self.events,
            self.snapshots,
        ):
            for item in ring:
                total += len(json.dumps(item, default=str))
        return total

    # ----------------------------------------------------------------- dump
    def _chrome_trace(self) -> dict:
        events = []
        for i, s in enumerate(self.spans):
            attrs = {
                k: v for k, v in s.items() if k not in ("name", "ts", "dur_s")
            }
            events.append(
                {
                    "name": s["name"],
                    "ph": "X",
                    "ts": s["ts"] * 1e6,
                    "dur": max(s["dur_s"], 0.0) * 1e6,
                    "pid": 0,
                    "tid": 0,
                    "args": attrs,
                }
            )
        return {"traceEvents": events, "displayTimeUnit": "ms"}

    def dump(self, reason: str, *, now: float | None = None) -> Path | None:
        """Write one bundle directory; returns its path, or ``None``
        when suppressed by the cooldown or the bundle cap.

        ``now`` is the caller's (possibly virtual) clock, recorded in
        the manifest; the cooldown itself runs on the wall clock so a
        replayed breach storm is paced the same way a live one is.
        """
        wall = time.perf_counter()
        if (
            self._last_dump_wall is not None
            and wall - self._last_dump_wall < self.cooldown_s
        ) or len(self.bundles) >= self.max_bundles:
            self.n_suppressed += 1
            return None
        self._last_dump_wall = wall
        self.n_dumps += 1

        quality_src = self._quality_ref() if self._quality_ref else None
        metrics_src = self._metrics_ref() if self._metrics_ref else None
        if metrics_src is not None:
            self.record_metrics(metrics_src, now=now)

        bundle = self.dir / f"flight-{len(self.bundles):03d}-{reason}"
        bundle.mkdir(parents=True, exist_ok=True)

        (bundle / "trace.json").write_text(json.dumps(self._chrome_trace()))
        with open(bundle / "metrics.jsonl", "w") as fh:
            for snap in self.snapshots:
                fh.write(json.dumps(snap, default=str) + "\n")
        (bundle / "explains.json").write_text(
            json.dumps(list(self.explains), default=str)
        )
        (bundle / "events.json").write_text(
            json.dumps(list(self.events), default=str)
        )
        quality_payload: dict = {"samples": list(self.quality)}
        if quality_src is not None:
            quality_payload["monitor"] = quality_src.monitor.report()
            drift = getattr(quality_src, "drift", None)
            if drift is not None:
                quality_payload["drift"] = drift.report().to_dict()
        (bundle / "quality.json").write_text(
            json.dumps(quality_payload, default=str)
        )

        manifest = {
            "kind": BUNDLE_KIND,
            "version": 1,
            "reason": reason,
            "created_ts": time.time(),
            "now": now,
            "counts": {
                "spans": len(self.spans),
                "explains": len(self.explains),
                "quality_samples": len(self.quality),
                "events": len(self.events),
                "metric_snapshots": len(self.snapshots),
            },
            "files": {
                "trace": "trace.json",
                "metrics": "metrics.jsonl",
                "explains": "explains.json",
                "quality": "quality.json",
                "events": "events.json",
            },
        }
        (bundle / "manifest.json").write_text(json.dumps(manifest, indent=2))
        self.bundles.append(bundle)
        return bundle
