"""Buffer k-d tree: a k-d tree queried in batched rounds.

Classic k-d tree traversal is one query, one branchy descent — exactly the
shape that wastes manycore hardware.  *Bigger Buffer k-d Trees on
Multi-Many-Core Systems* (PAPERS.md) restructures the search so queries
accumulate in per-leaf buffers which are then "flushed" as dense scans.
This implementation adapts the idea to the repo's batched BF machinery:

* **Build** — a shallow median-split top tree whose leaves hold *large*
  buffers (hundreds of points).  Leaf point ids are packed contiguously so
  each leaf is one dense database slab; per-leaf bounding boxes give the
  standard axis-gap lower bound.
* **Query** — round-based.  Every round, each still-active query picks its
  most promising unvisited leaf (smallest box lower bound below its
  current kth distance); queries choosing the same leaf are grouped and
  scanned as one ``metric.pairwise`` block folded into the running top-k
  with :func:`~repro.parallel.reduce.merge_group_topk` — the same grouped
  stage-2 kernel the RBC searches use.  A query retires when no unvisited
  leaf can beat its kth-nearest distance, so results are exact.

Supports the Minkowski family (``l1``, ``l2``, ``linf``) where the
axis-aligned box bound is valid, like the classic :class:`KDTree`
baseline — but the work here is dense blocks, not per-node hops.
"""

from __future__ import annotations

import numpy as np

from ..metrics import Chebyshev, Euclidean, Manhattan, get_metric
from ..metrics.base import Metric
from ..parallel.bruteforce import _record_dist_tile
from ..parallel.reduce import EMPTY_IDX, merge_group_topk
from ..runtime.context import ExecContext
from ..simulator.trace import NULL_RECORDER, TraceRecorder
from .protocol import Capabilities, Index

__all__ = ["BufferKDTree"]

_SUPPORTED = (Euclidean, Manhattan, Chebyshev)

#: query rows processed per lower-bound/selection round (bounds the
#: (rows, n_leaves, d) gap tensor)
_QUERY_BLOCK = 512


class BufferKDTree(Index):
    """Median-split k-d tree with batched leaf-buffer scans."""

    CAPS = Capabilities(
        exact=True,
        range_queries=True,
        mutable=False,
        process_safe=True,
        quantizable=False,
        rescorable=True,
        warmable=False,
        degradable=False,
    )

    def __init__(
        self,
        metric: str | Metric = "euclidean",
        *,
        leaf_size: int = 256,
    ) -> None:
        self.metric = get_metric(metric)
        if not isinstance(self.metric, _SUPPORTED):
            raise ValueError(
                "BufferKDTree supports l1/l2/linf metrics (axis-gap bound); "
                f"got {type(self.metric).__name__}"
            )
        if leaf_size < 1:
            raise ValueError("leaf_size must be >= 1")
        self.leaf_size = int(leaf_size)
        self.X: np.ndarray | None = None
        self.n = 0
        # packed leaf layout
        self.leaf_ids: np.ndarray | None = None  # (n,) global ids, leaf-major
        self.leaf_starts: np.ndarray | None = None  # (L+1,) offsets
        self.box_lo: np.ndarray | None = None  # (L, d)
        self.box_hi: np.ndarray | None = None  # (L, d)
        self._gathered: np.ndarray | None = None  # (n, d) X[leaf_ids]

    # ------------------------------------------------------------ build

    def build(
        self,
        X,
        *,
        recorder: TraceRecorder = NULL_RECORDER,
        ctx: ExecContext | None = None,
    ) -> "BufferKDTree":
        recorder = self._resolve(ctx, recorder).recorder
        X = np.asarray(X, dtype=np.float64)
        if X.ndim != 2 or X.shape[0] == 0:
            raise ValueError("X must be a non-empty (n, d) matrix")
        self.X = X
        self.n = X.shape[0]
        with recorder.phase("bufferkd:build"):
            leaves: list[np.ndarray] = []
            stack = [np.arange(self.n)]
            while stack:
                ids = stack.pop()
                if ids.size <= self.leaf_size:
                    leaves.append(ids)
                    continue
                pts = X[ids]
                spans = pts.max(axis=0) - pts.min(axis=0)
                axis = int(np.argmax(spans))
                vals = pts[:, axis]
                order = np.argsort(vals, kind="stable")
                half = ids.size // 2
                # degenerate axis (all coordinates equal): buffer as-is
                if vals[order[0]] == vals[order[-1]]:
                    leaves.append(ids)
                    continue
                stack.append(ids[order[half:]])
                stack.append(ids[order[:half]])
            L = len(leaves)
            self.leaf_starts = np.zeros(L + 1, dtype=np.int64)
            self.leaf_starts[1:] = np.cumsum([lv.size for lv in leaves])
            self.leaf_ids = np.concatenate(leaves)
            self._gathered = X[self.leaf_ids]
            d = X.shape[1]
            self.box_lo = np.empty((L, d))
            self.box_hi = np.empty((L, d))
            for j, lv in enumerate(leaves):
                self.box_lo[j] = X[lv].min(axis=0)
                self.box_hi[j] = X[lv].max(axis=0)
        return self

    # ------------------------------------------------------------ bounds

    def _box_lower_bounds(self, Qb: np.ndarray) -> np.ndarray:
        """(m, L) lower bound on dist(q, any point in leaf)."""
        gaps = np.maximum(self.box_lo[None, :, :] - Qb[:, None, :], 0.0)
        gaps = np.maximum(gaps, np.maximum(Qb[:, None, :] - self.box_hi[None, :, :], 0.0))
        if isinstance(self.metric, Euclidean):
            return np.sqrt(np.einsum("mld,mld->ml", gaps, gaps))
        if isinstance(self.metric, Manhattan):
            return gaps.sum(axis=2)
        return gaps.max(axis=2)

    def _require_built(self) -> None:
        if self.X is None:
            raise RuntimeError("call build(X) first")

    # ------------------------------------------------------------ query

    def query(
        self,
        Q,
        k: int = 1,
        *,
        recorder: TraceRecorder = NULL_RECORDER,
        ctx: ExecContext | None = None,
    ) -> tuple[np.ndarray, np.ndarray]:
        self._require_built()
        if k < 1:
            raise ValueError("k must be >= 1")
        recorder = self._resolve(ctx, recorder).recorder
        Qb = np.atleast_2d(np.asarray(Q, dtype=np.float64))
        m = Qb.shape[0]
        best_d = np.full((m, k), np.inf)
        best_i = np.full((m, k), EMPTY_IDX, dtype=np.int64)
        with recorder.phase("bufferkd:query"):
            for lo in range(0, m, _QUERY_BLOCK):
                hi = min(lo + _QUERY_BLOCK, m)
                self._query_block(
                    Qb[lo:hi], k, best_d[lo:hi], best_i[lo:hi], recorder
                )
        return best_d, best_i

    def _query_block(self, Qb, k, best_d, best_i, recorder) -> None:
        m = Qb.shape[0]
        if m == 0:
            return
        L = self.box_lo.shape[0]
        LB = self._box_lower_bounds(Qb)
        visited = np.zeros((m, L), dtype=bool)
        dim = Qb.shape[1]
        arange_m = np.arange(m)
        while True:
            kth = best_d[:, k - 1]
            # each query's cheapest unvisited leaf that could still improve it
            masked = np.where(visited | (LB >= kth[:, None]), np.inf, LB)
            choice = np.argmin(masked, axis=1)
            todo = np.flatnonzero(np.isfinite(masked[arange_m, choice]))
            if todo.size == 0:
                return
            chosen = choice[todo]
            for leaf in np.unique(chosen):
                rows = todo[chosen == leaf]
                s, e = self.leaf_starts[leaf], self.leaf_starts[leaf + 1]
                D = self.metric.pairwise(Qb[rows], self._gathered[s:e])
                _record_dist_tile(
                    recorder, self.metric, rows.size, int(e - s), dim,
                    "bufferkd:flush",
                )
                merge_group_topk(best_d, best_i, rows, D, self.leaf_ids[s:e])
            visited[todo, chosen] = True

    # ------------------------------------------------------------ range

    def range_query(
        self,
        Q,
        eps: float,
        *,
        recorder: TraceRecorder = NULL_RECORDER,
        ctx: ExecContext | None = None,
    ) -> list[tuple[np.ndarray, np.ndarray]]:
        """Exact ε-range search: leaves whose box bound exceeds ``eps`` are
        never scanned; the rest are flushed as grouped dense blocks."""
        self._require_built()
        if eps < 0:
            raise ValueError("eps must be non-negative")
        recorder = self._resolve(ctx, recorder).recorder
        Qb = np.atleast_2d(np.asarray(Q, dtype=np.float64))
        m = Qb.shape[0]
        hits_d: list[list[np.ndarray]] = [[] for _ in range(m)]
        hits_i: list[list[np.ndarray]] = [[] for _ in range(m)]
        dim = Qb.shape[1] if m else 0
        with recorder.phase("bufferkd:range"):
            for lo in range(0, m, _QUERY_BLOCK):
                hi = min(lo + _QUERY_BLOCK, m)
                LB = self._box_lower_bounds(Qb[lo:hi])
                for leaf in np.flatnonzero((LB <= eps).any(axis=0)):
                    rows = np.flatnonzero(LB[:, leaf] <= eps)
                    s, e = self.leaf_starts[leaf], self.leaf_starts[leaf + 1]
                    D = self.metric.pairwise(Qb[lo + rows], self._gathered[s:e])
                    _record_dist_tile(
                        recorder, self.metric, rows.size, int(e - s), dim,
                        "bufferkd:range",
                    )
                    ids = self.leaf_ids[s:e]
                    within = D <= eps
                    for t, r in enumerate(rows):
                        sel = within[t]
                        hits_d[lo + r].append(D[t, sel])
                        hits_i[lo + r].append(ids[sel])
        out = []
        for t in range(m):
            if hits_d[t]:
                d = np.concatenate(hits_d[t])
                i = np.concatenate(hits_i[t])
                order = np.argsort(d, kind="stable")
                out.append((d[order], i[order].astype(np.int64)))
            else:
                out.append((np.empty(0), np.empty(0, dtype=np.int64)))
        return out

    # ------------------------------------------------------------ misc

    def memory_footprint(self) -> int:
        """Bytes held beyond the caller's own ``X``: the packed leaf copy,
        id permutation, offsets, and bounding boxes."""
        self._require_built()
        return int(
            self._gathered.nbytes
            + self.leaf_ids.nbytes
            + self.leaf_starts.nbytes
            + self.box_lo.nbytes
            + self.box_hi.nbytes
        )

    @property
    def n_leaves(self) -> int:
        self._require_built()
        return int(self.box_lo.shape[0])

    def leaf_sizes(self) -> np.ndarray:
        self._require_built()
        return np.diff(self.leaf_starts)
