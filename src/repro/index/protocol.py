"""The formal ``Index`` protocol shared by every search backend.

Historically the baselines inherited an ad-hoc two-method base class while
RBC grew extra surface (``range_query``, ``memory_footprint``, ``warm``,
mutability) that callers discovered through ``getattr`` probes.  This module
replaces that with a declared contract:

* :class:`Capabilities` — a frozen dataclass of feature flags a backend
  advertises (exact vs approximate, range support, mutability,
  process-backend safety, quantizer support, rescore/warm opt-in).
* :class:`UnsupportedCapability` — the uniform error raised when a caller
  invokes an operation the backend does not declare (never a bare
  ``AttributeError``).
* :class:`Index` — the abstract protocol: ``build / query / range_query /
  memory_footprint / capabilities``.

``capabilities()`` is an *instance* method so backends may refine their
class-level declaration from runtime state (e.g. brute force over an edit
metric is not rescorable because its database is not a vector matrix).
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass

import numpy as np

from ..runtime.context import ExecContext, resolve_ctx
from ..simulator.trace import NULL_RECORDER, TraceRecorder

__all__ = [
    "Capabilities",
    "Index",
    "UnsupportedCapability",
    "capabilities_for",
]


class UnsupportedCapability(RuntimeError):
    """Raised when an index is asked for an operation it does not declare.

    Uniform across the fleet: callers can catch one exception type instead
    of distinguishing ``AttributeError`` (missing method) from
    ``NotImplementedError`` (stub method).
    """


@dataclass(frozen=True)
class Capabilities:
    """Feature flags a backend declares about itself.

    Attributes
    ----------
    exact:
        ``query`` returns the true k nearest neighbors (not approximate).
    range_queries:
        ``range_query(Q, eps)`` is implemented.
    mutable:
        ``insert`` / ``delete`` are supported after ``build``.
    process_safe:
        The backend can run its query path under a process-pool
        :class:`~repro.runtime.context.ExecContext` (its dispatch payloads
        pickle cleanly / it degrades gracefully); serving layers use this
        to decide residency and executor reuse.
    quantizable:
        The backend accepts a ``quantizer`` and can scan compressed
        operands through the metric engine.
    rescorable:
        Serving layers may re-rank the backend's returned ids against its
        ``.X`` matrix with ``rescore_pairs`` (requires a vector metric and
        an ndarray database).
    warmable:
        ``warm(ctx)`` pre-builds kernel plans / caches.
    degradable:
        ``degrade()`` / ``restore()`` walk a quality ladder (the router);
        SLO breach hooks may call them.
    """

    exact: bool = True
    range_queries: bool = False
    mutable: bool = False
    process_safe: bool = True
    quantizable: bool = False
    rescorable: bool = False
    warmable: bool = False
    degradable: bool = False

    def replace(self, **kw) -> "Capabilities":
        return dataclasses.replace(self, **kw)

    def as_dict(self) -> dict:
        return dataclasses.asdict(self)


class Index:
    """Abstract nearest-neighbor index — the one protocol every backend
    (and the router itself) implements.

    Concrete classes must implement :meth:`build` and :meth:`query`;
    :meth:`range_query` defaults to raising :class:`UnsupportedCapability`
    and :meth:`capabilities` defaults to the class-level :attr:`CAPS`
    declaration.
    """

    #: class-level capability declaration; instances may refine via
    #: :meth:`capabilities`.
    CAPS: Capabilities = Capabilities()

    metric = None

    def build(
        self,
        X,
        *,
        recorder: TraceRecorder = NULL_RECORDER,
        ctx: ExecContext | None = None,
    ) -> "Index":
        """Preprocess the database ``X``; returns ``self``."""
        raise NotImplementedError

    def query(
        self,
        Q,
        k: int = 1,
        *,
        recorder: TraceRecorder = NULL_RECORDER,
        ctx: ExecContext | None = None,
    ):
        """Return ``(dist, idx)`` arrays of shape ``(len(Q), k)``.

        Rows are ascending by distance; short rows are padded with
        ``inf`` / ``-1``.
        """
        raise NotImplementedError

    def range_query(
        self,
        Q,
        eps: float,
        *,
        recorder: TraceRecorder = NULL_RECORDER,
        ctx: ExecContext | None = None,
    ):
        """Return, per query, a ``(dist, idx)`` pair of all points within
        ``eps`` — or raise :class:`UnsupportedCapability` when the backend
        does not declare ``range_queries``."""
        raise UnsupportedCapability(
            f"{type(self).__name__} does not support range queries "
            "(capabilities().range_queries is False)"
        )

    def memory_footprint(self) -> int:
        """Approximate bytes held by the built structure."""
        raise NotImplementedError

    def capabilities(self) -> Capabilities:
        """The backend's declared feature flags.

        The default refines the class-level :attr:`CAPS` with instance
        state: ``rescorable`` additionally requires a vector metric over
        an ndarray database *right now* (an index configured with, say,
        an edit metric cannot be re-scored even if the class allows it).
        """
        return self.CAPS.replace(
            rescorable=self.CAPS.rescorable and self._rescorable_now()
        )

    def _rescorable_now(self) -> bool:
        from ..metrics.base import VectorMetric

        return isinstance(self.metric, VectorMetric) and isinstance(
            getattr(self, "X", None), np.ndarray
        )

    # Convenience used by serving layers and tests -------------------------

    def supports(self, flag: str) -> bool:
        """``True`` iff :meth:`capabilities` declares ``flag``."""
        return bool(getattr(self.capabilities(), flag))

    def _resolve(self, ctx, recorder):
        return resolve_ctx(ctx, recorder=recorder)


def capabilities_for(index) -> Capabilities:
    """Capabilities of *any* index-like object.

    Protocol-conforming backends answer through :meth:`Index.capabilities`;
    for foreign objects (user-supplied duck-typed indexes) this falls back
    to conservative structural probes so existing integrations keep
    working.
    """
    caps = getattr(index, "capabilities", None)
    if callable(caps):
        got = caps()
        if isinstance(got, Capabilities):
            return got
    from ..metrics.base import VectorMetric

    rescorable = isinstance(getattr(index, "metric", None), VectorMetric) and isinstance(
        getattr(index, "X", None), np.ndarray
    )
    return Capabilities(
        exact=False,
        range_queries=callable(getattr(index, "range_query", None)),
        mutable=callable(getattr(index, "insert", None)),
        process_safe=False,
        quantizable=False,
        rescorable=rescorable,
        warmable=callable(getattr(index, "warm", None)),
        degradable=callable(getattr(index, "degrade", None)),
    )
