"""repro.index — the formal :class:`Index` protocol, backend registry, and
capability-aware query router.

Every search structure in the repo (RBC exact/one-shot, brute force, the
metric-tree baselines, and the batched buffer k-d tree / random projection
forest added here) implements one protocol::

    build(X, ...) -> self
    query(Q, k) -> (dist, idx)        # (m, k), inf/-1 padded, ascending
    range_query(Q, eps) -> [(d, i)]   # or raises UnsupportedCapability
    memory_footprint() -> int         # approximate bytes held
    capabilities() -> Capabilities    # declared, machine-readable

Backends are name-keyed in :mod:`repro.index.registry` and the
:class:`~repro.index.router.Router` composes them into a single servable
index with an SLO-driven degradation ladder.
"""

from .bufferkd import BufferKDTree
from .protocol import Capabilities, Index, UnsupportedCapability, capabilities_for
from .registry import (
    available_indexes,
    capabilities_of,
    create_index,
    index_class,
    register_index,
    supported_kwargs,
    unregister_index,
)
from .router import RouteDecision, Router
from .rpforest import RPForest

__all__ = [
    "BufferKDTree",
    "Capabilities",
    "Index",
    "RPForest",
    "RouteDecision",
    "Router",
    "UnsupportedCapability",
    "available_indexes",
    "capabilities_for",
    "capabilities_of",
    "create_index",
    "index_class",
    "register_index",
    "supported_kwargs",
    "unregister_index",
]
