"""Name-keyed backend registry.

Every servable index is registered here under a stable name with a dotted
path to its class; classes are imported lazily on first use so the
registry itself stays import-cheap and cycle-free.  Declared capabilities
come from the class-level :attr:`~repro.index.protocol.Index.CAPS`
constant, so the registry can answer "which backends support range
queries?" without instantiating anything.

    >>> from repro.index import available_indexes, create_index
    >>> sorted(available_indexes())[:3]
    ['aesa', 'balltree', 'brute']
    >>> idx = create_index("rpforest", metric="euclidean", seed=0)
"""

from __future__ import annotations

import inspect
from dataclasses import dataclass, field
from importlib import import_module

from .protocol import Capabilities, Index

__all__ = [
    "BackendSpec",
    "available_indexes",
    "capabilities_of",
    "create_index",
    "index_class",
    "register_index",
    "supported_kwargs",
    "unregister_index",
]


@dataclass
class BackendSpec:
    """One registry entry: where the class lives and what it declares."""

    name: str
    module: str
    qualname: str
    description: str = ""
    _cls: type | None = field(default=None, repr=False)

    def load(self) -> type:
        if self._cls is None:
            self._cls = getattr(import_module(self.module), self.qualname)
        return self._cls


_REGISTRY: dict[str, BackendSpec] = {}
_ALIASES: dict[str, str] = {}


def register_index(
    name: str,
    module_or_cls,
    qualname: str | None = None,
    *,
    description: str = "",
    aliases: tuple[str, ...] = (),
    overwrite: bool = False,
) -> None:
    """Register a backend under ``name``.

    ``module_or_cls`` is either a dotted module path (with ``qualname``
    naming the class inside it, imported lazily) or a class object.
    """
    if name in _REGISTRY and not overwrite:
        raise ValueError(f"index backend {name!r} is already registered")
    if isinstance(module_or_cls, str):
        if qualname is None:
            raise ValueError("qualname is required with a dotted module path")
        spec = BackendSpec(name, module_or_cls, qualname, description)
    else:
        cls = module_or_cls
        spec = BackendSpec(name, cls.__module__, cls.__qualname__, description, _cls=cls)
    _REGISTRY[name] = spec
    for alias in aliases:
        _ALIASES[alias] = name


def unregister_index(name: str) -> None:
    _REGISTRY.pop(_resolve(name), None)
    for alias, target in list(_ALIASES.items()):
        if target == name or alias == name:
            del _ALIASES[alias]


def _resolve(name: str) -> str:
    name = _ALIASES.get(name, name)
    if name not in _REGISTRY:
        known = ", ".join(sorted(_REGISTRY))
        raise KeyError(f"unknown index backend {name!r}; registered: {known}")
    return name


def available_indexes() -> list[str]:
    """Registered backend names (aliases excluded), sorted."""
    return sorted(_REGISTRY)


def index_class(name: str) -> type:
    """The class registered under ``name`` (imports it if needed)."""
    return _REGISTRY[_resolve(name)].load()


def capabilities_of(name: str) -> Capabilities:
    """The class-level declared capabilities of backend ``name``."""
    return index_class(name).CAPS


def describe(name: str) -> str:
    return _REGISTRY[_resolve(name)].description


def supported_kwargs(name: str, kwargs: dict) -> dict:
    """Filter ``kwargs`` down to those the backend's constructor accepts.

    Lets callers (CLI, benches) pass one uniform kwarg set — e.g.
    ``{"metric": ..., "seed": 0}`` — across backends whose signatures
    differ (``BruteForceIndex`` takes no ``seed``).
    """
    sig = inspect.signature(index_class(name).__init__)
    params = sig.parameters.values()
    if any(p.kind is inspect.Parameter.VAR_KEYWORD for p in params):
        return dict(kwargs)
    names = {p.name for p in params}
    return {k: v for k, v in kwargs.items() if k in names}


def create_index(name: str, *, lenient: bool = False, **kwargs) -> Index:
    """Instantiate (not build) the backend registered under ``name``.

    With ``lenient=True``, constructor kwargs the backend does not accept
    are silently dropped instead of raising ``TypeError``.
    """
    if lenient:
        kwargs = supported_kwargs(name, kwargs)
    return index_class(name)(**kwargs)


# --------------------------------------------------------------------------
# Built-in backends.  Modules are imported on first create/capability call.
# --------------------------------------------------------------------------

_BUILTINS = [
    ("rbc-exact", "repro.core.exact", "ExactRBC", ("exact",),
     "Random Ball Cover, exact two-stage search (paper Sec. 3.2)"),
    ("rbc-oneshot", "repro.core.oneshot", "OneShotRBC", ("oneshot",),
     "Random Ball Cover, one-shot probabilistic search (paper Sec. 3.1)"),
    ("brute", "repro.baselines.brute", "BruteForceIndex", ("bruteforce",),
     "Blocked brute-force scan (the BF primitive itself)"),
    ("covertree", "repro.baselines.covertree", "CoverTree", (),
     "Cover tree with exact branch-and-bound descent"),
    ("kdtree", "repro.baselines.kdtree", "KDTree", (),
     "Classic k-d tree (L1/L2/Linf only)"),
    ("balltree", "repro.baselines.balltree", "BallTree", (),
     "Ball tree with triangle-inequality pruning"),
    ("vptree", "repro.baselines.vptree", "VPTree", (),
     "Vantage-point tree"),
    ("gnat", "repro.baselines.gnat", "GNAT", (),
     "Geometric near-neighbor access tree"),
    ("aesa", "repro.baselines.aesa", "AESA", (),
     "AESA: near-minimal evals, quadratic memory"),
    ("buffer-kd", "repro.index.bufferkd", "BufferKDTree", ("bufferkd",),
     "Buffer k-d tree: batched leaf buffers flushed through blocked BF"),
    ("rpforest", "repro.index.rpforest", "RPForest", ("rp-forest",),
     "Random projection forest, candidate union re-ranked exactly"),
    ("router", "repro.index.router", "Router", (),
     "Capability/SLO-aware router over registered backends"),
]

for _name, _mod, _qual, _aliases, _desc in _BUILTINS:
    register_index(_name, _mod, _qual, description=_desc, aliases=_aliases)
