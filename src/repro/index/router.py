"""SLO-driven query router — an :class:`Index` that picks other indexes.

The paper's core observation is that the right search algorithm depends on
the regime: brute force wins small-n/high-d, RBC exact wins when the
expansion rate ``c`` is modest, one-shot and forests trade recall for
latency.  The :class:`Router` makes that choice per query batch from

* ``(n, d)`` of the built database,
* ``k`` and the batch size of the incoming request,
* the expansion-rate estimate ``c_est`` inverted from the exact RBC's
  build stats via Theorem 1 (expected stage-2 candidates ``c^3 n / n_r``),
* a latency budget (per batch, seconds), and
* measured per-backend cost history (EWMA over RunReport wall clocks,
  seeded by a calibration probe at build time and updated after every
  dispatch).

Degradation ladder: under SLO pressure the router walks ``rbc-exact →
rbc-oneshot → rpforest → rbc-oneshot-small`` (one-shot with ``n_r/4``
representatives), restoring to exact when pressure clears.  Wire it to an
:class:`~repro.obs.slo.SLOMonitor` with :meth:`Router.attach_slo` — or let
:class:`~repro.serving.searcher.StreamingSearcher` do it automatically for
any index whose capabilities declare ``degradable``.

Range queries are routed only to range-capable backends; if none is
configured the router raises the uniform
:class:`~repro.index.protocol.UnsupportedCapability`.
"""

from __future__ import annotations

import dataclasses
import math
import time
from collections import deque
from dataclasses import dataclass, field

import numpy as np

from ..metrics.base import VectorMetric
from ..runtime.context import ExecContext
from ..simulator.trace import NULL_RECORDER, TraceRecorder
from .protocol import Capabilities, Index, UnsupportedCapability, capabilities_for

__all__ = ["RouteDecision", "Router"]

#: seconds per distance-flop fallback used before any measurement exists
_DEFAULT_S_PER_FLOP = 2.5e-10


@dataclass(frozen=True)
class RouteDecision:
    """One routing choice and its justification."""

    backend: str
    rung: int
    n_queries: int
    k: int
    predicted_s: float
    budget_s: float | None
    reason: str
    measured_s: float | None = None
    c_est: float | None = None


@dataclass
class _CostModel:
    """Per-backend EWMA of measured seconds/query, bucketed by ``log2 k``."""

    alpha: float = 0.3
    buckets: dict = field(default_factory=dict)

    def update(self, k: int, per_query_s: float) -> None:
        b = int(math.log2(max(k, 1)))
        prev = self.buckets.get(b)
        self.buckets[b] = (
            per_query_s
            if prev is None
            else (1.0 - self.alpha) * prev + self.alpha * per_query_s
        )

    def predict(self, k: int) -> float | None:
        if not self.buckets:
            return None
        b = int(math.log2(max(k, 1)))
        if b in self.buckets:
            return self.buckets[b]
        nearest = min(self.buckets, key=lambda x: abs(x - b))
        return self.buckets[nearest]


class Router(Index):
    """Capability- and cost-aware dispatch over registered backends."""

    CAPS = Capabilities(
        exact=True,
        range_queries=True,
        mutable=False,
        process_safe=True,
        quantizable=False,
        rescorable=True,
        warmable=True,
        degradable=True,
    )

    #: default quality ladder, best first
    DEFAULT_LADDER = ("rbc-exact", "rbc-oneshot", "rpforest", "rbc-oneshot-small")

    def __init__(
        self,
        metric: str | object = "euclidean",
        *,
        backends: dict | None = None,
        ladder: tuple | None = None,
        latency_budget_s: float | None = None,
        seed: int = 0,
        calibrate: bool = True,
        calibration_queries: int = 8,
        ewma_alpha: float = 0.3,
    ) -> None:
        from ..metrics import get_metric

        self.metric = get_metric(metric)
        self.seed = int(seed)
        self.calibrate = bool(calibrate)
        self.calibration_queries = int(calibration_queries)
        self.latency_budget_s = latency_budget_s
        self._given_backends = backends
        self._given_ladder = tuple(ladder) if ladder is not None else None
        self._backends: dict[str, Index] = {}
        self.ladder: tuple[str, ...] = ()
        self._cost: dict[str, _CostModel] = {}
        self._ewma_alpha = float(ewma_alpha)
        self._rung = 0
        self.c_est: float | None = None
        self.X = None
        self.n = 0
        self.last_decision: RouteDecision | None = None
        self.last_stats = None
        self.history: deque[RouteDecision] = deque(maxlen=256)
        #: report ids already folded into the cost model (bounded FIFO)
        self._seen_reports: set[str] = set()
        self._seen_order: deque[str] = deque(maxlen=4096)

    # ------------------------------------------------------------ build

    def _default_backends(self) -> tuple[dict[str, Index], tuple[str, ...]]:
        from ..core.exact import ExactRBC
        from ..core.oneshot import OneShotRBC

        backends: dict[str, Index] = {
            "rbc-exact": ExactRBC(self.metric, seed=self.seed),
            "rbc-oneshot": OneShotRBC(self.metric, seed=self.seed),
            "rbc-oneshot-small": OneShotRBC(self.metric, seed=self.seed + 1),
        }
        ladder = ["rbc-exact", "rbc-oneshot", "rpforest", "rbc-oneshot-small"]
        if isinstance(self.metric, VectorMetric):
            from .rpforest import RPForest

            backends["rpforest"] = RPForest(self.metric, seed=self.seed)
        else:
            ladder.remove("rpforest")
        return backends, tuple(ladder)

    def build(
        self,
        X,
        n_reps: int | None = None,
        *,
        c: float = 1.0,
        recorder: TraceRecorder = NULL_RECORDER,
        ctx: ExecContext | None = None,
    ) -> "Router":
        ctx = self._resolve(ctx, recorder)
        recorder = ctx.recorder
        if self._given_backends is not None:
            self._backends = dict(self._given_backends)
            self.ladder = self._given_ladder or tuple(self._backends)
        else:
            self._backends, self.ladder = self._default_backends()
            if self._given_ladder is not None:
                self.ladder = self._given_ladder
        missing = [name for name in self.ladder if name not in self._backends]
        if missing:
            raise ValueError(f"ladder names missing from backends: {missing}")
        self.X = X
        self.n = self.metric.length(X)
        self._cost = {name: _CostModel(self._ewma_alpha) for name in self._backends}
        self._rung = 0
        with recorder.phase("router:build"):
            for name, index in self._backends.items():
                self._build_backend(name, index, X, n_reps, c, ctx)
            self.c_est = self._estimate_c()
            if self.calibrate:
                self._calibrate(ctx)
        return self

    def _build_backend(self, name, index, X, n_reps, c, ctx) -> None:
        from ..core.oneshot import OneShotRBC
        from ..core.params import oneshot_params
        from ..core.rbc import RBCBase

        if not isinstance(index, RBCBase):
            index.build(X, ctx=ctx)
        elif name == "rbc-oneshot-small" and isinstance(index, OneShotRBC):
            # the ladder's last rung: deliberately under-provisioned
            nr_full, s_full = oneshot_params(self.metric.length(X), c=c)
            small = max(1, nr_full // 4)
            index.build(X, n_reps=small, s=max(1, s_full // 4), c=c, ctx=ctx)
        elif isinstance(index, OneShotRBC):
            index.build(X, c=c, ctx=ctx)
        else:
            index.build(X, n_reps=n_reps, c=c, ctx=ctx)

    def _estimate_c(self) -> float:
        """Invert Theorem 1: expected stage-2 candidates ``c^3 n / n_r``.

        The exact RBC's pruning probe measures the candidate fraction
        ``f = candidates / n`` directly, so ``c_est = (f * n_r)^(1/3)``,
        clipped to the metric's lower bound ``c >= 1``.
        """
        exact = self._backends.get("rbc-exact")
        probe = getattr(exact, "_estimate_candidate_fraction", None)
        if exact is None or probe is None or not getattr(exact, "is_built", False):
            return 1.0
        frac = float(probe())
        nr = int(exact.rep_ids.size)
        return max(1.0, (frac * nr) ** (1.0 / 3.0))

    def _calibrate(self, ctx) -> None:
        """Seed the cost model with one tiny probe batch per backend."""
        m = min(self.calibration_queries, self.n)
        if m == 0:
            return
        rng = np.random.default_rng(self.seed)
        probe_ids = rng.choice(self.n, size=m, replace=False)
        Qp = self.metric.take(self.X, probe_ids)
        for name, index in self._backends.items():
            t0 = time.perf_counter()
            index.query(Qp, k=1, ctx=ctx)
            self._cost[name].update(1, (time.perf_counter() - t0) / m)

    def _require_built(self) -> None:
        if self.X is None:
            raise RuntimeError("call build(X) first")

    # ------------------------------------------------------- cost model

    def _analytic_per_query_s(self, name: str, k: int) -> float:
        """Eval-count model used before any measurement exists, from the
        paper's work expressions with the build-time ``c_est``."""
        n, c = max(self.n, 1), self.c_est or 1.0
        d = 1.0
        if isinstance(self.metric, VectorMetric) and self.X is not None:
            d = float(self.metric.dim(self.X))
        index = self._backends[name]
        nr = int(getattr(index, "rep_ids", np.empty(0)).size) or int(math.sqrt(n))
        if name == "brute":
            evals = float(n)
        elif name == "rbc-exact":
            evals = nr + min(float(n), c**3 * n / nr) * max(1.0, k / 4.0)
        elif name.startswith("rbc-oneshot"):
            s = int(getattr(index, "s", nr)) or nr
            evals = nr + s
        elif name == "rpforest":
            evals = float(
                getattr(index, "n_trees", 8) * getattr(index, "leaf_size", 64)
            )
        else:
            evals = float(n)
        return evals * d * _DEFAULT_S_PER_FLOP * 3.0

    def predict_cost_s(self, name: str, m: int, k: int) -> float:
        """Predicted wall seconds to run an ``(m, k)`` batch on backend
        ``name`` (measured EWMA when available, analytic model otherwise)."""
        per_q = self._cost[name].predict(k)
        if per_q is None:
            per_q = self._analytic_per_query_s(name, k)
        return per_q * max(m, 1)

    def observe_report(self, name: str, report) -> None:
        """Ingest an external RunReport/StreamReport for backend ``name``
        (e.g. from the eval harness) into the cost model.

        Idempotent by ``report.report_id``: the EWMA is a weighted
        average, so re-observing the same report (a calibration-seeded
        report handed back by two harness layers, a report summarized
        twice) would keep pulling the model toward one sample.  Seen ids
        are tracked in a bounded FIFO and duplicates are dropped.
        """
        if name not in self._cost:
            return
        rid = getattr(report, "report_id", None)
        if rid is not None:
            if rid in self._seen_reports:
                return
            if len(self._seen_order) == self._seen_order.maxlen:
                self._seen_reports.discard(self._seen_order[0])
            self._seen_order.append(rid)
            self._seen_reports.add(rid)
        wall = float(getattr(report, "wall_s", 0.0) or 0.0)
        m = getattr(report, "n_queries", None)
        if m is None:
            dist = getattr(report, "dist", None)
            m = dist.shape[0] if dist is not None else 1
        k_arr = getattr(report, "dist", None)
        k = k_arr.shape[1] if k_arr is not None and k_arr.ndim == 2 else 1
        if wall > 0 and m:
            self._cost[name].update(k, wall / m)

    # -------------------------------------------------------- selection

    @property
    def rung(self) -> int:
        """Current degradation rung (0 = best quality)."""
        return self._rung

    def degrade(self) -> int:
        """Step one rung down the quality ladder (SLO breach hook)."""
        self._rung = min(self._rung + 1, len(self.ladder) - 1)
        return self._rung

    def restore(self) -> int:
        """Reset to the best-quality rung."""
        self._rung = 0
        return self._rung

    def attach_slo(self, monitor) -> None:
        """Degrade one rung on every breach of ``monitor``."""
        monitor.on_breach(lambda _mon: self.degrade())

    def plan(
        self,
        n_queries: int,
        k: int = 1,
        *,
        latency_budget_s: float | None = None,
    ) -> RouteDecision:
        """The routing decision for an ``(n_queries, k)`` batch — pure
        (no dispatch, no cost-model update)."""
        self._require_built()
        budget = (
            latency_budget_s if latency_budget_s is not None else self.latency_budget_s
        )
        candidates = self.ladder[self._rung :] or self.ladder[-1:]
        chosen, pred, reason = None, math.inf, ""
        for name in candidates:
            p = self.predict_cost_s(name, n_queries, k)
            if budget is None or p <= budget:
                chosen, pred = name, p
                reason = (
                    f"rung {self._rung}; first ladder backend "
                    + ("within budget" if budget is not None else "(no budget)")
                )
                break
        if chosen is None:
            # nothing fits: take the cheapest remaining rung
            chosen = min(candidates, key=lambda s: self.predict_cost_s(s, n_queries, k))
            pred = self.predict_cost_s(chosen, n_queries, k)
            reason = f"rung {self._rung}; over budget everywhere, cheapest rung"
        return RouteDecision(
            backend=chosen,
            rung=self._rung,
            n_queries=n_queries,
            k=k,
            predicted_s=pred,
            budget_s=budget,
            reason=reason,
            c_est=self.c_est,
        )

    def backend(self, name: str) -> Index:
        """The built backend registered under ``name``."""
        self._require_built()
        return self._backends[name]

    def backend_names(self) -> tuple[str, ...]:
        return tuple(self._backends)

    def shard_target(self) -> Index:
        """The backend a sharded searcher should partition (the exact RBC
        primary, which owns the disjoint ownership lists)."""
        self._require_built()
        exact = self._backends.get("rbc-exact")
        if exact is None:
            raise UnsupportedCapability(
                "Router has no rbc-exact backend to shard over"
            )
        return exact

    # ------------------------------------------------------------ query

    def query(
        self,
        Q,
        k: int = 1,
        *,
        backend: str | None = None,
        latency_budget_s: float | None = None,
        recorder: TraceRecorder = NULL_RECORDER,
        ctx: ExecContext | None = None,
        **query_kwargs,
    ) -> tuple[np.ndarray, np.ndarray]:
        """Route the batch to one backend and run it.

        ``backend=`` pins the choice explicitly; otherwise the decision
        comes from :meth:`plan`.  The measured wall clock feeds back into
        the cost model.
        """
        self._require_built()
        if isinstance(self.metric, VectorMetric):
            Q = self.metric._as_batch(np.asarray(Q, dtype=np.float64))
        m = self.metric.length(Q)
        if backend is not None:
            decision = RouteDecision(
                backend=backend,
                rung=self._rung,
                n_queries=m,
                k=k,
                predicted_s=self.predict_cost_s(backend, m, k),
                budget_s=latency_budget_s,
                reason="pinned by caller",
                c_est=self.c_est,
            )
        else:
            decision = self.plan(m, k, latency_budget_s=latency_budget_s)
        index = self._backends[decision.backend]
        t0 = time.perf_counter()
        out = index.query(Q, k, recorder=recorder, ctx=ctx, **query_kwargs)
        wall = time.perf_counter() - t0
        if m:
            self._cost[decision.backend].update(k, wall / m)
        decision = dataclasses.replace(decision, measured_s=wall)
        self.last_decision = decision
        self.history.append(decision)
        self.last_stats = getattr(index, "last_stats", None)
        return out

    # ------------------------------------------------------------ range

    def range_query(
        self,
        Q,
        eps: float,
        *,
        recorder: TraceRecorder = NULL_RECORDER,
        ctx: ExecContext | None = None,
    ):
        """Route to the best-quality range-capable backend; refuse (with
        the uniform error) if none is configured."""
        self._require_built()
        for name in (*self.ladder, *self._backends):
            index = self._backends.get(name)
            if index is not None and capabilities_for(index).range_queries:
                self.last_decision = RouteDecision(
                    backend=name,
                    rung=self._rung,
                    n_queries=int(self.metric.length(Q)),
                    k=0,
                    predicted_s=0.0,
                    budget_s=None,
                    reason="range query; first range-capable backend",
                    c_est=self.c_est,
                )
                return index.range_query(Q, eps, recorder=recorder, ctx=ctx)
        raise UnsupportedCapability(
            "no configured backend supports range queries; add rbc-exact, "
            "buffer-kd, or brute to the router's backends"
        )

    # ------------------------------------------------------------- misc

    def warm(self, ctx=None) -> None:
        for index in self._backends.values():
            if capabilities_for(index).warmable:
                index.warm(ctx)

    def memory_footprint(self) -> int:
        """Sum of the built backends' structures."""
        self._require_built()
        total = 0
        for index in self._backends.values():
            try:
                total += int(index.memory_footprint())
            except (NotImplementedError, RuntimeError):
                pass
        return total

    def capabilities(self) -> Capabilities:
        caps = self.CAPS
        if self._backends:
            current = self._backends[self.ladder[self._rung]]
            backend_caps = capabilities_for(current)
            caps = caps.replace(
                exact=backend_caps.exact,
                range_queries=any(
                    capabilities_for(b).range_queries for b in self._backends.values()
                ),
                process_safe=all(
                    capabilities_for(b).process_safe for b in self._backends.values()
                ),
                rescorable=isinstance(self.metric, VectorMetric)
                and isinstance(self.X, np.ndarray),
            )
        return caps

    def route_counts(self) -> dict[str, int]:
        """How many batches each backend served (from bounded history)."""
        counts: dict[str, int] = {}
        for dec in self.history:
            counts[dec.backend] = counts.get(dec.backend, 0) + 1
        return counts
