"""Random projection forest with exact candidate re-ranking.

*K-nearest Neighbor Search by Random Projection Forests* (PAPERS.md):
each tree recursively splits the data at the median of a random
projection; a query descends every tree, the candidate buffers of the
leaves it lands in are unioned across trees, and the union is re-ranked
exactly.  Recall grows with the number of trees while the re-rank cost
stays ``O(n_trees * leaf_size)`` per query.

The implementation is batched end to end: queries descend each tree as
index *groups* (one projection per node applied to the whole group at
once), candidate buffers are packed into one padded ``(m, width)`` id
block, and the final re-rank is a single
:func:`~repro.metrics.engine.refine_topk` call — the same exact float64
re-rank kernel the quantized RBC tier uses — followed by
:func:`~repro.parallel.reduce.dedupe_rows` to drop cross-tree duplicates.

Approximate by design (``capabilities().exact`` is ``False``): reported
distances are exact for the returned ids, but an id can be missed when no
tree routes the query to its leaf.
"""

from __future__ import annotations

import numpy as np

from ..core.stats import SearchStats
from ..metrics import get_metric
from ..metrics.base import VectorMetric
from ..metrics.engine import refine_topk
from ..parallel.bruteforce import _record_dist_tile
from ..parallel.reduce import EMPTY_IDX, dedupe_rows
from ..runtime.context import ExecContext
from ..simulator.trace import NULL_RECORDER, TraceRecorder
from .protocol import Capabilities, Index

__all__ = ["RPForest"]


class _Node:
    __slots__ = ("direction", "threshold", "left", "right", "ids")

    def __init__(self) -> None:
        self.direction: np.ndarray | None = None
        self.threshold: float = 0.0
        self.left: "_Node | None" = None
        self.right: "_Node | None" = None
        self.ids: np.ndarray | None = None  # leaf only


class RPForest(Index):
    """Forest of random-projection median-split trees."""

    CAPS = Capabilities(
        exact=False,
        range_queries=False,
        mutable=False,
        process_safe=True,
        quantizable=False,
        rescorable=True,
        warmable=False,
        degradable=False,
    )

    def __init__(
        self,
        metric: str | VectorMetric = "euclidean",
        *,
        n_trees: int = 8,
        leaf_size: int = 64,
        seed: int = 0,
    ) -> None:
        self.metric = get_metric(metric)
        if not isinstance(self.metric, VectorMetric):
            raise ValueError(
                "RPForest projects raw coordinates; it requires a vector "
                f"metric, got {type(self.metric).__name__}"
            )
        if n_trees < 1:
            raise ValueError("n_trees must be >= 1")
        if leaf_size < 1:
            raise ValueError("leaf_size must be >= 1")
        self.n_trees = int(n_trees)
        self.leaf_size = int(leaf_size)
        self.seed = int(seed)
        self.X: np.ndarray | None = None
        self.n = 0
        self.trees: list[_Node] = []
        self._n_nodes = 0
        self.last_stats: SearchStats | None = None

    # ------------------------------------------------------------ build

    def build(
        self,
        X,
        *,
        recorder: TraceRecorder = NULL_RECORDER,
        ctx: ExecContext | None = None,
    ) -> "RPForest":
        recorder = self._resolve(ctx, recorder).recorder
        X = np.asarray(X, dtype=np.float64)
        if X.ndim != 2 or X.shape[0] == 0:
            raise ValueError("X must be a non-empty (n, d) matrix")
        self.X = X
        self.n = X.shape[0]
        self.trees = []
        self._n_nodes = 0
        rng = np.random.default_rng(self.seed)
        with recorder.phase("rpforest:build"):
            for _ in range(self.n_trees):
                self.trees.append(self._grow(np.arange(self.n), rng))
        return self

    def _grow(self, ids: np.ndarray, rng: np.random.Generator) -> _Node:
        node = _Node()
        self._n_nodes += 1
        if ids.size <= self.leaf_size:
            node.ids = ids
            return node
        d = self.X.shape[1]
        direction = rng.normal(size=d)
        direction /= np.linalg.norm(direction)
        proj = self.X[ids] @ direction
        thr = float(np.median(proj))
        left = proj <= thr
        # degenerate split (mass concentrated at the median): stop here
        if left.all() or not left.any():
            node.ids = ids
            return node
        node.direction = direction
        node.threshold = thr
        node.left = self._grow(ids[left], rng)
        node.right = self._grow(ids[~left], rng)
        return node

    def _require_built(self) -> None:
        if self.X is None:
            raise RuntimeError("call build(X) first")

    # ------------------------------------------------------------ query

    def _route(self, root: _Node, Qb: np.ndarray) -> list[tuple[np.ndarray, np.ndarray]]:
        """Descend the whole query block through one tree.

        Returns ``(query_rows, leaf_ids)`` pairs — every query in
        ``query_rows`` reached the leaf holding ``leaf_ids``.
        """
        out: list[tuple[np.ndarray, np.ndarray]] = []
        stack: list[tuple[_Node, np.ndarray]] = [(root, np.arange(Qb.shape[0]))]
        while stack:
            node, rows = stack.pop()
            if rows.size == 0:
                continue
            if node.ids is not None:
                out.append((rows, node.ids))
                continue
            proj = Qb[rows] @ node.direction
            left = proj <= node.threshold
            stack.append((node.left, rows[left]))
            stack.append((node.right, rows[~left]))
        return out

    def query(
        self,
        Q,
        k: int = 1,
        *,
        recorder: TraceRecorder = NULL_RECORDER,
        ctx: ExecContext | None = None,
    ) -> tuple[np.ndarray, np.ndarray]:
        self._require_built()
        if k < 1:
            raise ValueError("k must be >= 1")
        recorder = self._resolve(ctx, recorder).recorder
        Qb = np.atleast_2d(np.asarray(Q, dtype=np.float64))
        m = Qb.shape[0]
        if m == 0:
            self.last_stats = SearchStats()
            return np.full((0, k), np.inf), np.full((0, k), EMPTY_IDX, dtype=np.int64)
        with recorder.phase("rpforest:route"):
            parts: list[tuple[np.ndarray, np.ndarray]] = []
            for root in self.trees:
                parts.extend(self._route(root, Qb))
            counts = np.zeros(m, dtype=np.int64)
            for rows, leaf in parts:
                counts[rows] += leaf.size
            width = int(counts.max())
            cand = np.full((m, width), EMPTY_IDX, dtype=np.int64)
            fill = np.zeros(m, dtype=np.int64)
            for rows, leaf in parts:
                pos = fill[rows]
                cand[rows[:, None], pos[:, None] + np.arange(leaf.size)] = leaf
                fill[rows] += leaf.size
        with recorder.phase("rpforest:refine"):
            d, i = refine_topk(self.metric, Qb, self.X, cand, width)
            d, i = dedupe_rows(d, i, k)
            _record_dist_tile(
                recorder, self.metric, m, width, Qb.shape[1], "rpforest:refine"
            )
        # routing is projection-only (no metric evals); all metric work is
        # the exact re-rank, accounted as stage-2 candidate examination
        self.last_stats = SearchStats(
            n_queries=m,
            stage2_evals=int(counts.sum()),
            candidates_examined=int(counts.sum()),
        )
        return d, i

    # ------------------------------------------------------------ misc

    def memory_footprint(self) -> int:
        """Bytes for the forest structure: leaf id buffers (one copy of
        each id per tree) plus per-internal-node split planes."""
        self._require_built()
        d = self.X.shape[1]
        # every tree partitions all n ids across its leaves
        leaf_bytes = self.n_trees * self.n * 8
        node_bytes = self._n_nodes * (d * 8 + 8 + 2 * 8)
        return int(leaf_bytes + node_bytes)

    def depth(self) -> int:
        self._require_built()

        def go(node: _Node) -> int:
            if node.ids is not None:
                return 1
            return 1 + max(go(node.left), go(node.right))

        return max(go(root) for root in self.trees)

