"""kd-tree baseline.

The paper notes that "in very low-dimensional spaces, basic data structures
like kd-trees are extremely effective, hence the challenging cases are data
that is somewhat higher dimensional" (§7.1).  This implementation exists to
exhibit exactly that regime boundary in the benchmarks: it wins in 2-4
dimensions and degrades toward brute force as dimensionality grows.

Supports the Minkowski family (``l1``, ``l2``, ``linf``) where the
axis-aligned splitting-plane bound is valid: the distance from a query to
any point beyond the plane is at least the coordinate gap.
"""

from __future__ import annotations

import heapq

import numpy as np

from ..metrics import Chebyshev, Euclidean, Manhattan, get_metric
from ..metrics.base import Metric
from ..runtime.context import ExecContext, resolve_ctx
from ..simulator.trace import NULL_RECORDER, Op, TraceRecorder
from .base import Capabilities, Index

__all__ = ["KDTree"]

_SUPPORTED = (Euclidean, Manhattan, Chebyshev)

#: approximate per-node Python object overhead charged by memory_footprint
_NODE_BYTES = 64


class _Split:
    __slots__ = ("axis", "threshold", "left", "right")

    def __init__(self, axis: int, threshold: float, left, right) -> None:
        self.axis = axis
        self.threshold = threshold
        self.left = left
        self.right = right


class _Leaf:
    __slots__ = ("ids",)

    def __init__(self, ids: np.ndarray) -> None:
        self.ids = ids


class KDTree(Index):
    """Median-split kd-tree with branch-and-bound k-NN queries."""

    CAPS = Capabilities(
        exact=True,
        process_safe=False,
        rescorable=True,
    )

    def __init__(
        self, metric: str | Metric = "euclidean", *, leaf_size: int = 32
    ) -> None:
        self.metric = get_metric(metric)
        if not isinstance(self.metric, _SUPPORTED):
            raise ValueError(
                "kd-tree pruning is only valid for l1/l2/linf metrics, got "
                f"{self.metric.name}"
            )
        if leaf_size < 1:
            raise ValueError("leaf_size must be >= 1")
        self.leaf_size = leaf_size
        self.root = None
        self.X: np.ndarray | None = None

    def build(
        self,
        X,
        *,
        recorder: TraceRecorder = NULL_RECORDER,
        ctx: ExecContext | None = None,
    ) -> "KDTree":
        recorder = resolve_ctx(ctx, recorder=recorder).recorder
        X = np.ascontiguousarray(np.atleast_2d(np.asarray(X, dtype=np.float64)))
        if X.shape[0] == 0:
            raise ValueError("database is empty")
        self.X = X
        with recorder.phase("kdtree:build"):
            self.root = self._build(np.arange(X.shape[0], dtype=np.int64), 0)
        return self

    def _build(self, ids: np.ndarray, depth: int):
        if ids.size <= self.leaf_size:
            return _Leaf(ids)
        pts = self.X[ids]
        # split the axis of largest spread at its median
        spread = pts.max(axis=0) - pts.min(axis=0)
        axis = int(np.argmax(spread))
        if spread[axis] == 0.0:  # all points identical: no useful split
            return _Leaf(ids)
        order = np.argsort(pts[:, axis], kind="stable")
        half = ids.size // 2
        threshold = float(pts[order[half], axis])
        left, right = ids[order[:half]], ids[order[half:]]
        return _Split(
            axis,
            threshold,
            self._build(left, depth + 1),
            self._build(right, depth + 1),
        )

    # -------------------------------------------------------------- query
    def query(
        self,
        Q,
        k: int = 1,
        *,
        recorder: TraceRecorder = NULL_RECORDER,
        ctx: ExecContext | None = None,
    ) -> tuple[np.ndarray, np.ndarray]:
        if self.root is None:
            raise RuntimeError("call build(X) first")
        if k < 1:
            raise ValueError("k must be >= 1")
        recorder = resolve_ctx(ctx, recorder=recorder).recorder
        Q = np.atleast_2d(np.asarray(Q, dtype=np.float64))
        m = Q.shape[0]
        out_d = np.full((m, k), np.inf)
        out_i = np.full((m, k), -1, dtype=np.int64)
        with recorder.phase("kdtree:query"):
            for i in range(m):
                d, idx = self._query_one(Q[i : i + 1], k, recorder, chain=i)
                out_d[i, : d.size] = d
                out_i[i, : idx.size] = idx
        return out_d, out_i

    def _axis_gap_distance(self, gaps: list[tuple[int, float]]) -> float:
        """Lower bound on the metric distance given per-axis gaps to a cell."""
        if not gaps:
            return 0.0
        vals = [abs(g) for _, g in gaps]
        if isinstance(self.metric, Manhattan):
            return float(sum(vals))
        if isinstance(self.metric, Chebyshev):
            return float(max(vals))
        return float(np.sqrt(np.sum(np.square(vals))))

    def _query_one(self, q: np.ndarray, k: int, recorder: TraceRecorder, chain: int = 0):
        dim = self.X.shape[1]
        best: list[tuple[float, int]] = []  # max-heap via negatives

        def kth() -> float:
            return -best[0][0] if len(best) == k else np.inf

        # frontier of (lower_bound, tiebreak, node, per-axis gap dict)
        frontier = [(0.0, 0, self.root, {})]
        tiebreak = 1
        while frontier and frontier[0][0] < kth():
            _, _, node, gaps = heapq.heappop(frontier)
            if isinstance(node, _Leaf):
                D = self.metric.pairwise(q, self.X[node.ids])[0]
                recorder.record(
                    Op(
                        kind="branchy",
                        flops=node.ids.size * self.metric.flops_per_eval(dim),
                        bytes=8.0 * node.ids.size * dim,
                        vectorizable=False,
                        divergence=1.0,
                        tag="kdtree:leaf",
                        chain=chain,
                    )
                )
                for d, pid in zip(D, node.ids):
                    d = float(d)
                    if d < kth():
                        if len(best) == k:
                            heapq.heapreplace(best, (-d, int(pid)))
                        else:
                            heapq.heappush(best, (-d, int(pid)))
                continue
            qa = float(q[0, node.axis])
            near, far = (
                (node.left, node.right)
                if qa < node.threshold
                else (node.right, node.left)
            )
            # the near cell inherits the current bound; the far cell's gap
            # on this axis becomes |qa - threshold|
            heapq.heappush(
                frontier, (self._axis_gap_distance(list(gaps.items())), tiebreak, near, gaps)
            )
            tiebreak += 1
            far_gaps = dict(gaps)
            far_gaps[node.axis] = max(
                abs(qa - node.threshold), abs(far_gaps.get(node.axis, 0.0))
            )
            lb = self._axis_gap_distance(list(far_gaps.items()))
            if lb < kth():
                heapq.heappush(frontier, (lb, tiebreak, far, far_gaps))
                tiebreak += 1

        pairs = sorted((-nd, pid) for nd, pid in best)
        d = np.array([p[0] for p in pairs])
        idx = np.array([p[1] for p in pairs], dtype=np.int64)
        return d, idx

    def depth(self) -> int:
        """Maximum tree depth (diagnostics)."""

        def go(node) -> int:
            if isinstance(node, _Leaf):
                return 1
            return 1 + max(go(node.left), go(node.right))

        return go(self.root) if self.root is not None else 0

    def memory_footprint(self) -> int:
        """Bytes for the tree: leaf id arrays plus per-node object
        overhead (axis/threshold/child slots, ~``_NODE_BYTES`` each)."""
        if self.root is None:
            raise RuntimeError("call build(X) first")
        total = 0

        def go(node) -> None:
            nonlocal total
            if isinstance(node, _Leaf):
                total += node.ids.nbytes + _NODE_BYTES
                return
            total += _NODE_BYTES
            go(node.left)
            go(node.right)

        go(self.root)
        return int(total)
