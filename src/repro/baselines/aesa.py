"""AESA baseline (Vidal 1986).

The paper's related-work section singles out AESA as one of "the two most
empirically effective structures" for metric search (§2, [29]).  AESA
precomputes *all* pairwise distances in the database (O(n²) memory — the
reason it only suits small databases) and then answers queries with very
few distance evaluations: each evaluated pivot ``p`` eliminates every
``x`` whose precomputed ``rho(p, x)`` is incompatible with the triangle
inequality, and the next pivot is the surviving point with the best lower
bound.

It is the extreme opposite of the RBC on the trade-off the paper studies:
minimal distance evaluations, maximal data-dependence — a fully sequential
chain of eliminate/select steps that cannot be batched or vectorized, so
its trace is pure ``branchy`` ops.
"""

from __future__ import annotations

import numpy as np

from ..metrics import get_metric
from ..metrics.base import Metric
from ..runtime.context import ExecContext, resolve_ctx
from ..simulator.trace import NULL_RECORDER, Op, TraceRecorder
from .base import Capabilities, Index

__all__ = ["AESA"]

#: refuse to build beyond this size: the distance matrix is O(n^2)
_MAX_POINTS = 20_000


class AESA(Index):
    """Approximating and Eliminating Search Algorithm — exact k-NN with
    near-minimal distance evaluations and quadratic memory."""

    CAPS = Capabilities(
        exact=True,
        process_safe=False,
        rescorable=True,
    )

    def __init__(self, metric: str | Metric = "euclidean") -> None:
        self.metric = get_metric(metric)
        if not getattr(self.metric, "is_true_metric", True):
            raise ValueError("AESA's elimination rule requires a true metric")
        self.X = None
        self.D: np.ndarray | None = None  # (n, n) pairwise distances
        self.n = 0

    def build(
        self,
        X,
        *,
        recorder: TraceRecorder = NULL_RECORDER,
        ctx: ExecContext | None = None,
    ) -> "AESA":
        """Precompute the full distance matrix (one giant BF(X, X))."""
        recorder = resolve_ctx(ctx, recorder=recorder).recorder
        n = self.metric.length(X)
        if n == 0:
            raise ValueError("database is empty")
        if n > _MAX_POINTS:
            raise ValueError(
                f"AESA stores an n x n matrix; n={n} exceeds the "
                f"{_MAX_POINTS} safety cap"
            )
        self.X = X
        self.n = n
        with recorder.phase("aesa:build"):
            self.D = self.metric.pairwise(X, X)
            recorder.record(
                Op(
                    kind="gemm",
                    flops=n * n * self.metric.flops_per_eval(self.metric.dim(X)),
                    bytes=8.0 * n * n,
                    tag="aesa:build",
                )
            )
        return self

    def query(
        self,
        Q,
        k: int = 1,
        *,
        recorder: TraceRecorder = NULL_RECORDER,
        ctx: ExecContext | None = None,
    ) -> tuple[np.ndarray, np.ndarray]:
        if self.D is None:
            raise RuntimeError("call build(X) first")
        if k < 1:
            raise ValueError("k must be >= 1")
        recorder = resolve_ctx(ctx, recorder=recorder).recorder
        from ..parallel.bruteforce import _is_batch

        Qb = Q if _is_batch(self.metric, Q) else self.metric._as_batch(Q)
        m = self.metric.length(Qb)
        out_d = np.full((m, k), np.inf)
        out_i = np.full((m, k), -1, dtype=np.int64)
        with recorder.phase("aesa:query"):
            for i in range(m):
                d, idx = self._query_one(
                    self.metric.take(Qb, [i]), k, recorder, chain=i
                )
                out_d[i, : d.size] = d
                out_i[i, : idx.size] = idx
        return out_d, out_i

    def _query_one(self, q, k: int, recorder: TraceRecorder, chain: int = 0):
        n = self.n
        dim = self.metric.dim(self.X)
        alive = np.ones(n, dtype=bool)
        #: per-point lower bound on rho(q, x), tightened with each pivot
        lb = np.zeros(n)
        evaluated: list[tuple[float, int]] = []  # (dist, id)
        kth = np.inf

        pivot = 0  # arbitrary deterministic start
        while pivot >= 0:
            d_p = float(
                self.metric.pairwise(q, self.metric.take(self.X, [pivot]))[0, 0]
            )
            recorder.record(
                Op(
                    kind="branchy",
                    flops=self.metric.flops_per_eval(dim) + 4.0 * alive.sum(),
                    bytes=8.0 * alive.sum(),
                    vectorizable=False,
                    divergence=1.0,
                    tag="aesa:pivot",
                    chain=chain,
                )
            )
            alive[pivot] = False
            evaluated.append((d_p, pivot))
            if len(evaluated) >= k:
                kth = sorted(ev[0] for ev in evaluated)[k - 1]
            # eliminate: |d(q,p) - d(p,x)| is a lower bound on d(q,x)
            np.maximum(lb, np.abs(self.D[pivot] - d_p), out=lb)
            alive &= lb < kth
            # next pivot: the survivor with the smallest lower bound
            # (the "approximating" choice that makes AESA effective)
            if alive.any():
                candidates = np.flatnonzero(alive)
                pivot = int(candidates[np.argmin(lb[candidates])])
            else:
                pivot = -1

        evaluated.sort()
        top = evaluated[:k]
        return (
            np.array([t[0] for t in top]),
            np.array([t[1] for t in top], dtype=np.int64),
        )

    def memory_footprint(self) -> int:
        """The full pairwise matrix — AESA's defining quadratic cost."""
        if self.D is None:
            raise RuntimeError("call build(X) first")
        return int(self.D.nbytes)
