"""Brute-force search as an index-shaped baseline.

This is the comparator for every speedup figure in the paper: on manycore
hardware brute force is "already quite fast because of the raw
computational power" (§7.2), so beating it is the meaningful test.  The
class simply wraps the brute-force primitive behind the same
``build``/``query`` interface as the RBC structures and the tree baselines,
so harness code treats all indexes uniformly.
"""

from __future__ import annotations

import numpy as np

from ..metrics import get_metric
from ..metrics.base import Metric
from ..parallel.bruteforce import bf_knn, bf_range
from ..runtime.context import ExecContext, resolve_ctx
from ..simulator.trace import NULL_RECORDER, TraceRecorder
from .base import Capabilities, Index

__all__ = ["BruteForceIndex"]


class BruteForceIndex(Index):
    """Exhaustive k-NN: one ``BF(Q, X)`` call per query batch."""

    CAPS = Capabilities(
        exact=True,
        range_queries=True,
        mutable=False,
        process_safe=True,
        rescorable=True,
    )

    def __init__(
        self,
        metric: str | Metric = "euclidean",
        *,
        executor=None,
    ) -> None:
        self.metric = get_metric(metric)
        self.executor = executor
        self.X = None
        self.n = 0

    def build(
        self,
        X,
        *,
        recorder: TraceRecorder = NULL_RECORDER,
        ctx: ExecContext | None = None,
    ):
        """Store the database (no preprocessing)."""
        self.X = X
        self.n = self.metric.length(X)
        return self

    def query(
        self,
        Q,
        k: int = 1,
        *,
        recorder: TraceRecorder = NULL_RECORDER,
        executor=None,
        ctx: ExecContext | None = None,
        **bf_kwargs,
    ) -> tuple[np.ndarray, np.ndarray]:
        """Extra ``bf_kwargs`` (``tile_cols``, ``row_chunk``, ``dtype``)
        reach :func:`~repro.parallel.bruteforce.bf_knn`; benchmarks use
        them to set the parallel grain the machine models schedule.  An
        explicit ``ctx`` (or ``executor=``) overrides the index's
        configured executor for this call."""
        if self.X is None:
            raise RuntimeError("call build(X) first")
        call = resolve_ctx(ctx, recorder=recorder, executor=executor)
        call = call.overriding(ExecContext(executor=self.executor))
        return bf_knn(Q, self.X, self.metric, k=k, ctx=call, **bf_kwargs)

    def range_query(
        self,
        Q,
        eps: float,
        *,
        recorder: TraceRecorder = NULL_RECORDER,
        ctx: ExecContext | None = None,
    ) -> list[tuple[np.ndarray, np.ndarray]]:
        if self.X is None:
            raise RuntimeError("call build(X) first")
        return bf_range(
            Q, self.X, eps, self.metric, ctx=resolve_ctx(ctx, recorder=recorder)
        )

    def memory_footprint(self) -> int:
        """Brute force stores nothing beyond the caller's database; the
        accounted bytes are the stored reference's payload (so the metrics
        registry can still compare resident set across backends)."""
        if self.X is None:
            raise RuntimeError("call build(X) first")
        if isinstance(self.X, np.ndarray):
            return int(self.X.nbytes)
        import sys

        return int(sum(sys.getsizeof(x) for x in self.X))
