"""GNAT baseline (Brin, VLDB 1995).

Paper §2 calls out the GNAT as one of the two most relevant prior methods:
"The GNAT uses a simple space decomposition based on representatives from
the database, much as we do" — but with heuristic (not provable) intrinsic-
dimension behaviour and no parallel story.  Implementing it makes the
comparison concrete: like the RBC it picks split points and assigns each
point to its nearest one; unlike the RBC it recurses, and it prunes with
per-child *range tables* instead of a single radius.

Structure: each node holds ``m`` split points; every point of the node is
assigned to its nearest split point; for every ordered pair ``(i, j)`` the
node stores ``[min, max]`` of ``rho(p_i, x)`` over ``x`` in child ``j``.
Query pruning: child ``j`` can be discarded once some evaluated split
point ``p_i`` has ``rho(q, p_i) + r  <  min_ij`` or
``rho(q, p_i) - r > max_ij`` (no point of child ``j`` can lie within the
current search radius ``r``).
"""

from __future__ import annotations

import heapq

import numpy as np

from ..metrics import get_metric
from ..metrics.base import Metric
from ..runtime.context import ExecContext, resolve_ctx
from ..simulator.trace import NULL_RECORDER, Op, TraceRecorder
from .base import Capabilities, Index

__all__ = ["GNAT"]


class _Node:
    __slots__ = ("split_ids", "children", "ranges", "leaf_ids")

    def __init__(self) -> None:
        self.split_ids: np.ndarray | None = None  # (m,) global ids
        self.children: list["_Node"] = []
        #: ranges[i, j] = (min, max) of rho(split_i, x) over child j
        self.ranges: np.ndarray | None = None  # (m, m, 2)
        self.leaf_ids: np.ndarray | None = None


class GNAT(Index):
    """Geometric Near-neighbor Access Tree with exact k-NN queries."""

    CAPS = Capabilities(
        exact=True,
        process_safe=False,
        rescorable=True,
    )

    def __init__(
        self,
        metric: str | Metric = "euclidean",
        *,
        arity: int = 8,
        leaf_size: int = 32,
        seed: int = 0,
    ) -> None:
        self.metric = get_metric(metric)
        if not getattr(self.metric, "is_true_metric", True):
            raise ValueError("GNAT pruning requires a true metric")
        if arity < 2:
            raise ValueError("arity must be >= 2")
        if leaf_size < 1:
            raise ValueError("leaf_size must be >= 1")
        self.arity = arity
        self.leaf_size = leaf_size
        self.rng = np.random.default_rng(seed)
        self.root: _Node | None = None
        self.X = None

    # -------------------------------------------------------------- build
    def build(
        self,
        X,
        *,
        recorder: TraceRecorder = NULL_RECORDER,
        ctx: ExecContext | None = None,
    ) -> "GNAT":
        recorder = resolve_ctx(ctx, recorder=recorder).recorder
        self.X = X
        n = self.metric.length(X)
        if n == 0:
            raise ValueError("database is empty")
        evals0 = self.metric.counter.n_evals
        with recorder.phase("gnat:build"):
            self.root = self._build(np.arange(n, dtype=np.int64))
            recorder.record(
                Op(
                    kind="branchy",
                    flops=(self.metric.counter.n_evals - evals0)
                    * self.metric.flops_per_eval(self.metric.dim(X)),
                    bytes=8.0 * n * self.metric.dim(X),
                    vectorizable=False,
                    divergence=1.0,
                    tag="gnat:build",
                    chain=0,
                )
            )
        return self

    def _pick_splits(self, ids: np.ndarray, m: int) -> np.ndarray:
        """Greedy far-apart split points (Brin's heuristic): start from a
        random point, repeatedly add the point maximizing the minimum
        distance to the chosen set."""
        first = int(ids[self.rng.integers(ids.size)])
        chosen = [first]
        min_d = self.metric.pairwise(
            self.metric.take(self.X, [first]), self.metric.take(self.X, ids)
        )[0]
        while len(chosen) < m:
            nxt = int(ids[int(np.argmax(min_d))])
            if min_d.max() == 0.0:
                break  # all remaining points coincide with a split
            chosen.append(nxt)
            d = self.metric.pairwise(
                self.metric.take(self.X, [nxt]), self.metric.take(self.X, ids)
            )[0]
            np.minimum(min_d, d, out=min_d)
        return np.asarray(chosen, dtype=np.int64)

    def _build(self, ids: np.ndarray) -> _Node:
        node = _Node()
        if ids.size <= max(self.leaf_size, self.arity):
            node.leaf_ids = ids
            return node
        splits = self._pick_splits(ids, self.arity)
        m = splits.size
        if m < 2:
            node.leaf_ids = ids
            return node
        node.split_ids = splits
        rest = ids[~np.isin(ids, splits)]
        D = self.metric.pairwise(
            self.metric.take(self.X, splits), self.metric.take(self.X, rest)
        )  # (m, rest)
        owner = D.argmin(axis=0)
        node.ranges = np.empty((m, m, 2))
        node.ranges[:, :, 0] = np.inf
        node.ranges[:, :, 1] = 0.0
        members: list[np.ndarray] = []
        for j in range(m):
            sel = owner == j
            members.append(rest[sel])
            for i in range(m):
                if sel.any():
                    dij = D[i, sel]
                    node.ranges[i, j, 0] = dij.min()
                    node.ranges[i, j, 1] = dij.max()
                # the split point of child j belongs to the child region
                d_split = self.metric.pairwise(
                    self.metric.take(self.X, [splits[i]]),
                    self.metric.take(self.X, [splits[j]]),
                )[0, 0]
                node.ranges[i, j, 0] = min(node.ranges[i, j, 0], d_split)
                node.ranges[i, j, 1] = max(node.ranges[i, j, 1], d_split)
        node.children = [
            self._build(np.concatenate([[splits[j]], members[j]]))
            for j in range(m)
        ]
        return node

    # -------------------------------------------------------------- query
    def query(
        self,
        Q,
        k: int = 1,
        *,
        recorder: TraceRecorder = NULL_RECORDER,
        ctx: ExecContext | None = None,
    ) -> tuple[np.ndarray, np.ndarray]:
        recorder = resolve_ctx(ctx, recorder=recorder).recorder
        if self.root is None:
            raise RuntimeError("call build(X) first")
        if k < 1:
            raise ValueError("k must be >= 1")
        from ..parallel.bruteforce import _is_batch

        Qb = Q if _is_batch(self.metric, Q) else self.metric._as_batch(Q)
        m = self.metric.length(Qb)
        out_d = np.full((m, k), np.inf)
        out_i = np.full((m, k), -1, dtype=np.int64)
        with recorder.phase("gnat:query"):
            for i in range(m):
                d, idx = self._query_one(
                    self.metric.take(Qb, [i]), k, recorder, chain=i
                )
                out_d[i, : d.size] = d
                out_i[i, : idx.size] = idx
        return out_d, out_i

    def _query_one(self, q, k: int, recorder: TraceRecorder, chain: int = 0):
        dim = self.metric.dim(self.X)
        best: list[tuple[float, int]] = []
        offered: set[int] = set()

        def kth() -> float:
            return -best[0][0] if len(best) == k else np.inf

        def offer(d: float, pid: int) -> None:
            if d < kth() and pid not in offered:
                offered.add(pid)
                if len(best) == k:
                    heapq.heapreplace(best, (-d, pid))
                else:
                    heapq.heappush(best, (-d, pid))

        stack = [self.root]
        while stack:
            node = stack.pop()
            if node.leaf_ids is not None:
                if node.leaf_ids.size == 0:
                    continue
                D = self.metric.pairwise(
                    q, self.metric.take(self.X, node.leaf_ids)
                )[0]
                recorder.record(
                    Op(
                        kind="branchy",
                        flops=node.leaf_ids.size
                        * self.metric.flops_per_eval(dim),
                        bytes=8.0 * node.leaf_ids.size * dim,
                        vectorizable=False,
                        divergence=1.0,
                        tag="gnat:leaf",
                        chain=chain,
                    )
                )
                for d, pid in zip(D, node.leaf_ids):
                    offer(float(d), int(pid))
                continue
            splits = node.split_ids
            d_split = self.metric.pairwise(
                q, self.metric.take(self.X, splits)
            )[0]
            recorder.record(
                Op(
                    kind="branchy",
                    flops=splits.size * self.metric.flops_per_eval(dim),
                    bytes=8.0 * splits.size * dim,
                    vectorizable=False,
                    divergence=1.0,
                    tag="gnat:node",
                    chain=chain,
                )
            )
            for i, pid in enumerate(splits):
                offer(float(d_split[i]), int(pid))
            # range-table pruning: child j survives only if, for every
            # split i, [rho(q,p_i) - r, rho(q,p_i) + r] intersects range_ij
            r = kth()
            alive = np.ones(splits.size, dtype=bool)
            for i in range(splits.size):
                lo = node.ranges[i, :, 0]
                hi = node.ranges[i, :, 1]
                alive &= (d_split[i] - r <= hi) & (d_split[i] + r >= lo)
            # visit nearer children first (better bound tightening)
            order = np.argsort(d_split)
            for j in order[::-1]:  # stack: push far ones first
                if alive[j]:
                    stack.append(node.children[j])

        pairs = sorted((-nd, pid) for nd, pid in best)
        return (
            np.array([p[0] for p in pairs]),
            np.array([p[1] for p in pairs], dtype=np.int64),
        )

    def depth(self) -> int:
        """Maximum node depth (diagnostics)."""

        def go(node) -> int:
            if not node.children:
                return 1
            return 1 + max(go(c) for c in node.children)

        return go(self.root) if self.root is not None else 0

    def memory_footprint(self) -> int:
        """Bytes for the tree: split ids, the per-node range tables
        (the dominant term), leaf id arrays, and per-node overhead."""
        if self.root is None:
            raise RuntimeError("call build(X) first")
        total = 0

        def go(node: _Node) -> None:
            nonlocal total
            total += 64
            if node.split_ids is not None:
                total += node.split_ids.nbytes
            if node.ranges is not None:
                total += node.ranges.nbytes
            if node.leaf_ids is not None:
                total += node.leaf_ids.nbytes
            for child in node.children:
                go(child)

        go(self.root)
        return int(total)
