"""Vantage-point tree baseline (Yianilos, SODA 1993).

The paper cites Yianilos's vp-tree alongside Omohundro's ball trees as the
canonical metric-tree family (§2, refs [23, 31]).  Unlike the two-pivot
ball tree, each vp-tree node picks a single vantage point and splits the
remaining points at the *median distance* to it, storing the inner/outer
distance bounds; queries prune a side when the query's distance to the
vantage point puts the whole side outside the current search radius.

Works for any true metric; included so the benchmark family spans all
three classic metric-tree designs (ball, vantage-point, GNAT).
"""

from __future__ import annotations

import heapq

import numpy as np

from ..metrics import get_metric
from ..metrics.base import Metric
from ..runtime.context import ExecContext, resolve_ctx
from ..simulator.trace import NULL_RECORDER, Op, TraceRecorder
from .base import Capabilities, Index

__all__ = ["VPTree"]


class _Node:
    __slots__ = ("vantage", "threshold", "inner", "outer", "ids",
                 "inner_max", "outer_min")

    def __init__(self) -> None:
        self.vantage: int = -1
        self.threshold: float = 0.0
        self.inner = None
        self.outer = None
        self.ids: np.ndarray | None = None  # leaf-only
        self.inner_max: float = 0.0
        self.outer_min: float = 0.0


class VPTree(Index):
    """Median-split vantage-point tree with exact k-NN queries."""

    CAPS = Capabilities(
        exact=True,
        process_safe=False,
        rescorable=True,
    )

    def __init__(
        self,
        metric: str | Metric = "euclidean",
        *,
        leaf_size: int = 32,
        seed: int = 0,
    ) -> None:
        self.metric = get_metric(metric)
        if not getattr(self.metric, "is_true_metric", True):
            raise ValueError("vp-trees require a true metric")
        if leaf_size < 1:
            raise ValueError("leaf_size must be >= 1")
        self.leaf_size = leaf_size
        self.rng = np.random.default_rng(seed)
        self.root: _Node | None = None
        self.X = None

    # -------------------------------------------------------------- build
    def build(
        self,
        X,
        *,
        recorder: TraceRecorder = NULL_RECORDER,
        ctx: ExecContext | None = None,
    ) -> "VPTree":
        recorder = resolve_ctx(ctx, recorder=recorder).recorder
        self.X = X
        n = self.metric.length(X)
        if n == 0:
            raise ValueError("database is empty")
        evals0 = self.metric.counter.n_evals
        with recorder.phase("vptree:build"):
            self.root = self._build(np.arange(n, dtype=np.int64))
            recorder.record(
                Op(
                    kind="branchy",
                    flops=(self.metric.counter.n_evals - evals0)
                    * self.metric.flops_per_eval(self.metric.dim(X)),
                    bytes=8.0 * n * self.metric.dim(X),
                    vectorizable=False,
                    divergence=1.0,
                    tag="vptree:build",
                    chain=0,
                )
            )
        return self

    def _build(self, ids: np.ndarray) -> _Node:
        node = _Node()
        if ids.size <= self.leaf_size:
            node.ids = ids
            return node
        v = int(ids[self.rng.integers(ids.size)])
        rest = ids[ids != v]
        d = self.metric.pairwise(
            self.metric.take(self.X, [v]), self.metric.take(self.X, rest)
        )[0]
        threshold = float(np.median(d))
        inner_sel = d <= threshold
        if inner_sel.all() or not inner_sel.any():
            # all at one distance (duplicates): splitting gains nothing
            node.ids = ids
            return node
        node.vantage = v
        node.threshold = threshold
        node.inner_max = float(d[inner_sel].max())
        node.outer_min = float(d[~inner_sel].min())
        node.inner = self._build(rest[inner_sel])
        node.outer = self._build(rest[~inner_sel])
        return node

    # -------------------------------------------------------------- query
    def query(
        self,
        Q,
        k: int = 1,
        *,
        recorder: TraceRecorder = NULL_RECORDER,
        ctx: ExecContext | None = None,
    ) -> tuple[np.ndarray, np.ndarray]:
        recorder = resolve_ctx(ctx, recorder=recorder).recorder
        if self.root is None:
            raise RuntimeError("call build(X) first")
        if k < 1:
            raise ValueError("k must be >= 1")
        from ..parallel.bruteforce import _is_batch

        Qb = Q if _is_batch(self.metric, Q) else self.metric._as_batch(Q)
        m = self.metric.length(Qb)
        out_d = np.full((m, k), np.inf)
        out_i = np.full((m, k), -1, dtype=np.int64)
        with recorder.phase("vptree:query"):
            for i in range(m):
                d, idx = self._query_one(
                    self.metric.take(Qb, [i]), k, recorder, chain=i
                )
                out_d[i, : d.size] = d
                out_i[i, : idx.size] = idx
        return out_d, out_i

    def _query_one(self, q, k: int, recorder: TraceRecorder, chain: int = 0):
        dim = self.metric.dim(self.X)
        best: list[tuple[float, int]] = []

        def kth() -> float:
            return -best[0][0] if len(best) == k else np.inf

        def offer(d: float, pid: int) -> None:
            if d < kth():
                if len(best) == k:
                    heapq.heapreplace(best, (-d, pid))
                else:
                    heapq.heappush(best, (-d, pid))

        def visit(node: _Node) -> None:
            if node.ids is not None:
                if node.ids.size == 0:
                    return
                D = self.metric.pairwise(
                    q, self.metric.take(self.X, node.ids)
                )[0]
                recorder.record(
                    Op(
                        kind="branchy",
                        flops=node.ids.size * self.metric.flops_per_eval(dim),
                        bytes=8.0 * node.ids.size * dim,
                        vectorizable=False,
                        divergence=1.0,
                        tag="vptree:leaf",
                        chain=chain,
                    )
                )
                for d, pid in zip(D, node.ids):
                    offer(float(d), int(pid))
                return
            dv = float(
                self.metric.pairwise(
                    q, self.metric.take(self.X, [node.vantage])
                )[0, 0]
            )
            recorder.record(
                Op(
                    kind="branchy",
                    flops=self.metric.flops_per_eval(dim),
                    bytes=8.0 * dim,
                    vectorizable=False,
                    divergence=1.0,
                    tag="vptree:node",
                    chain=chain,
                )
            )
            offer(dv, node.vantage)
            # nearer side first; revisit the far side only if the shell
            # around the vantage point still intersects the search ball
            first, second = (
                (node.inner, node.outer)
                if dv <= node.threshold
                else (node.outer, node.inner)
            )
            visit(first)
            if second is node.outer:
                if dv + kth() >= node.outer_min:
                    visit(second)
            else:
                if dv - kth() <= node.inner_max:
                    visit(second)

        visit(self.root)
        pairs = sorted((-nd, pid) for nd, pid in best)
        return (
            np.array([p[0] for p in pairs]),
            np.array([p[1] for p in pairs], dtype=np.int64),
        )

    def depth(self) -> int:
        """Maximum tree depth (diagnostics)."""

        def go(node) -> int:
            if node is None or node.ids is not None:
                return 1
            return 1 + max(go(node.inner), go(node.outer))

        return go(self.root) if self.root is not None else 0

    def memory_footprint(self) -> int:
        """Bytes for the tree: leaf id arrays plus per-node overhead
        (vantage id, threshold, band bounds, child slots)."""
        if self.root is None:
            raise RuntimeError("call build(X) first")
        total = 0

        def go(node) -> None:
            nonlocal total
            if node is None:
                return
            total += 88
            if node.ids is not None:
                total += node.ids.nbytes
            go(node.inner)
            go(node.outer)

        go(self.root)
        return int(total)
