"""Cover Tree baseline (Beygelzimer, Kakade & Langford, ICML 2006).

The paper's Table 3 compares the exact RBC against the Cover Tree, the
state-of-the-art sequential structure developed under the same
expansion-rate notion of intrinsic dimensionality.  This is a from-scratch
implementation in the *simplified* formulation (each point stored in one
node; children lie within ``covdist(node) = base**level`` of their parent),
with queries answered by best-first branch-and-bound on the subtree radii.

The computational structure is exactly what paper §3 describes as hostile
to parallel hardware: a deep traversal of interleaved distance
computations, bound updates, and data-dependent branching.  Query traces
are therefore recorded as non-vectorizable ``branchy`` ops, which is how
the machine models see the difference between tree search and the RBC's
dense brute-force stages.
"""

from __future__ import annotations

import heapq
import math

import numpy as np

from ..metrics import get_metric
from ..metrics.base import Metric
from ..runtime.context import ExecContext, resolve_ctx
from ..simulator.trace import NULL_RECORDER, Op, TraceRecorder
from .base import Capabilities, Index

__all__ = ["CoverTree"]

#: scalar bookkeeping charged per node expansion (heap ops, bound checks)
_VISIT_OVERHEAD_FLOPS = 50.0


class _Node:
    __slots__ = ("point", "level", "maxdist", "children")

    def __init__(self, point: int, level: int) -> None:
        self.point = point
        self.level = level
        self.maxdist = 0.0  # upper bound on distance to any descendant
        self.children: list[_Node] = []


class CoverTree(Index):
    """Cover tree with insertion-based construction and exact k-NN queries.

    Parameters
    ----------
    metric:
        any true metric (the covering invariant and the query bound both
        rest on the triangle inequality).
    base:
        expansion base of the level radii (``covdist = base**level``);
        the classical choice is 2.
    """

    CAPS = Capabilities(
        exact=True,
        process_safe=False,
        rescorable=True,
    )

    def __init__(self, metric: str | Metric = "euclidean", *, base: float = 2.0):
        if base <= 1.0:
            raise ValueError("base must exceed 1")
        self.metric = get_metric(metric)
        if not getattr(self.metric, "is_true_metric", True):
            raise ValueError("cover trees require a true metric")
        self.base = float(base)
        self.root: _Node | None = None
        self.X = None
        self.n = 0

    # -------------------------------------------------------------- build
    def _covdist(self, node: _Node) -> float:
        return self.base**node.level

    def _dist_to_points(self, x_id: int, ids: list[int]) -> np.ndarray:
        q = self.metric.take(self.X, [x_id])
        P = self.metric.take(self.X, ids)
        return self.metric.pairwise(q, P)[0]

    def build(
        self,
        X,
        *,
        recorder: TraceRecorder = NULL_RECORDER,
        ctx: ExecContext | None = None,
    ) -> "CoverTree":
        """Insert every point; deterministic given the dataset order."""
        recorder = resolve_ctx(ctx, recorder=recorder).recorder
        self.X = X
        self.n = self.metric.length(X)
        if self.n == 0:
            raise ValueError("database is empty")
        self.root = _Node(0, level=0)
        with recorder.phase("covertree:build"):
            for x_id in range(1, self.n):
                self._insert(x_id, recorder)
        return self

    def _insert(self, x_id: int, recorder: TraceRecorder) -> None:
        root = self.root
        d_root = self._dist_to_points(x_id, [root.point])[0]
        if d_root > self._covdist(root):
            # grow a new root over the old one, at a level whose cover
            # radius reaches the new point
            level = max(root.level + 1, int(math.ceil(math.log(d_root, self.base))))
            new_root = _Node(x_id, level)
            new_root.children.append(root)
            new_root.maxdist = d_root + root.maxdist
            self.root = new_root
            return
        node = root
        d_node = d_root
        while True:
            node.maxdist = max(node.maxdist, d_node)
            if node.children:
                child_ids = [c.point for c in node.children]
                dists = self._dist_to_points(x_id, child_ids)
                recorder.record(
                    Op(
                        kind="branchy",
                        flops=len(child_ids)
                        * self.metric.flops_per_eval(self.metric.dim(self.X))
                        + _VISIT_OVERHEAD_FLOPS,
                        bytes=8.0 * len(child_ids),
                        vectorizable=False,
                        divergence=1.0,
                        tag="covertree:insert",
                        chain=0,  # insertion is one sequential dependency chain
                    )
                )
                # descend into any child whose cover ball contains x
                j = int(np.argmin(dists))
                if dists[j] <= self._covdist(node.children[j]):
                    node = node.children[j]
                    d_node = float(dists[j])
                    continue
            node.children.append(_Node(x_id, node.level - 1))
            return

    # -------------------------------------------------------------- query
    def query(
        self,
        Q,
        k: int = 1,
        *,
        recorder: TraceRecorder = NULL_RECORDER,
        ctx: ExecContext | None = None,
    ) -> tuple[np.ndarray, np.ndarray]:
        """Exact k-NN by best-first search with the subtree-radius bound.

        A node is expanded only while ``d(q, node) - maxdist(node)`` is
        below the current k-th best distance; by the triangle inequality no
        pruned subtree can contain a closer point.
        """
        recorder = resolve_ctx(ctx, recorder=recorder).recorder
        if self.root is None:
            raise RuntimeError("call build(X) first")
        if k < 1:
            raise ValueError("k must be >= 1")
        Qb = Q if not _is_single(Q) else np.asarray(Q)[None, :]
        m = self.metric.length(Qb)
        out_d = np.full((m, k), np.inf)
        out_i = np.full((m, k), -1, dtype=np.int64)
        with recorder.phase("covertree:query"):
            for i in range(m):
                d, idx = self._query_one(i, Qb, k, recorder)
                out_d[i, : d.size] = d
                out_i[i, : idx.size] = idx
        return out_d, out_i

    def _query_one(self, qi: int, Qb, k: int, recorder: TraceRecorder):
        q = self.metric.take(Qb, [qi])
        dim = self.metric.dim(self.X)

        d_root = self.metric.pairwise(
            q, self.metric.take(self.X, [self.root.point])
        )[0, 0]
        # best candidates as a max-heap of (-dist, id)
        best: list[tuple[float, int]] = [(-d_root, self.root.point)]
        frontier = [(max(0.0, d_root - self.root.maxdist), 0, self.root)]
        tiebreak = 1

        def kth() -> float:
            return -best[0][0] if len(best) == k else np.inf

        while frontier and frontier[0][0] < kth():
            _, _, node = heapq.heappop(frontier)
            if not node.children:
                continue
            child_ids = [c.point for c in node.children]
            dists = self.metric.pairwise(q, self.metric.take(self.X, child_ids))[0]
            recorder.record(
                Op(
                    kind="branchy",
                    flops=len(child_ids) * self.metric.flops_per_eval(dim)
                    + _VISIT_OVERHEAD_FLOPS,
                    bytes=8.0 * len(child_ids) * dim,
                    vectorizable=False,
                    divergence=1.0,
                    tag="covertree:query",
                    chain=qi,  # expansions of one query form a serial chain
                )
            )
            for child, d in zip(node.children, dists):
                d = float(d)
                if d < kth():
                    if len(best) == k:
                        heapq.heapreplace(best, (-d, child.point))
                    else:
                        heapq.heappush(best, (-d, child.point))
                lb = max(0.0, d - child.maxdist)
                if lb < kth():
                    heapq.heappush(frontier, (lb, tiebreak, child))
                    tiebreak += 1

        pairs = sorted((-nd, pid) for nd, pid in best)
        d = np.array([p[0] for p in pairs])
        idx = np.array([p[1] for p in pairs], dtype=np.int64)
        return d, idx

    # ----------------------------------------------------------- invariants
    def check_invariants(self) -> None:
        """Verify the covering and radius invariants (for tests)."""
        if self.root is None:
            return
        stack = [self.root]
        while stack:
            node = stack.pop()
            for child in node.children:
                d = self._dist_to_points(node.point, [child.point])[0]
                assert d <= self._covdist(node) + 1e-9, (
                    f"covering violated at node {node.point}: child "
                    f"{child.point} at {d} > {self._covdist(node)}"
                )
                assert child.level < node.level
                stack.append(child)
            # maxdist bounds every descendant
            desc = _descendants(node)
            if desc:
                dists = self._dist_to_points(node.point, desc)
                assert dists.max() <= node.maxdist + 1e-9

    def depth(self) -> int:
        """Maximum node depth (diagnostics)."""
        if self.root is None:
            return 0

        def go(node: _Node) -> int:
            return 1 + max((go(c) for c in node.children), default=0)

        return go(self.root)

    def memory_footprint(self) -> int:
        """Bytes for the tree: one node per point (id, level, maxdist,
        children list) — the cover tree's linear-space guarantee."""
        if self.root is None:
            raise RuntimeError("call build(X) first")
        total = 0

        def go(node: _Node) -> None:
            nonlocal total
            total += 80 + 8 * len(node.children)
            for child in node.children:
                go(child)

        go(self.root)
        return int(total)


def _descendants(node: _Node) -> list[int]:
    out = []
    stack = list(node.children)
    while stack:
        nd = stack.pop()
        out.append(nd.point)
        stack.extend(nd.children)
    return out


def _is_single(Q) -> bool:
    return (
        isinstance(Q, np.ndarray)
        and Q.ndim == 1
        and np.issubdtype(Q.dtype, np.floating)
    )
