"""Baseline search structures the paper compares against."""

from .aesa import AESA
from .balltree import BallTree
from .base import Index
from .brute import BruteForceIndex
from .covertree import CoverTree
from .gnat import GNAT
from .kdtree import KDTree
from .vptree import VPTree

__all__ = ["AESA", "BallTree", "Index", "BruteForceIndex", "CoverTree", "GNAT", "KDTree", "VPTree"]
