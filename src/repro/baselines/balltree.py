"""Metric ball tree baseline (Omohundro 1989 / Yianilos 1993 lineage).

The paper cites metric ball trees as one of the two empirically strongest
classical structures (§2) and uses "metric trees" as the canonical example
of search whose interleaved, conditional structure resists parallelization
(§3).  This implementation works for any true metric — it only ever calls
``rho`` and applies the triangle inequality — so it doubles as the general-
metric tree baseline for the edit-distance and graph-metric scenarios.

Construction partitions each node's points between two far-apart pivots;
each node stores its pivot and covering radius, and queries prune subtrees
with ``d(q, pivot) - radius >= kth_best``.
"""

from __future__ import annotations

import heapq

import numpy as np

from ..metrics import get_metric
from ..metrics.base import Metric
from ..runtime.context import ExecContext, resolve_ctx
from ..simulator.trace import NULL_RECORDER, Op, TraceRecorder
from .base import Capabilities, Index

__all__ = ["BallTree"]


class _Node:
    __slots__ = ("pivot", "radius", "left", "right", "ids")

    def __init__(self, pivot: int, radius: float, left=None, right=None, ids=None):
        self.pivot = pivot
        self.radius = radius
        self.left = left
        self.right = right
        self.ids = ids  # leaf-only


class BallTree(Index):
    """Two-pivot metric ball tree with best-first exact k-NN queries."""

    CAPS = Capabilities(
        exact=True,
        process_safe=False,
        rescorable=True,
    )

    def __init__(
        self,
        metric: str | Metric = "euclidean",
        *,
        leaf_size: int = 32,
        seed: int = 0,
    ) -> None:
        self.metric = get_metric(metric)
        if not getattr(self.metric, "is_true_metric", True):
            raise ValueError("ball trees require a true metric")
        if leaf_size < 1:
            raise ValueError("leaf_size must be >= 1")
        self.leaf_size = leaf_size
        self.rng = np.random.default_rng(seed)
        self.root: _Node | None = None
        self.X = None

    # -------------------------------------------------------------- build
    def build(
        self,
        X,
        *,
        recorder: TraceRecorder = NULL_RECORDER,
        ctx: ExecContext | None = None,
    ) -> "BallTree":
        recorder = resolve_ctx(ctx, recorder=recorder).recorder
        self.X = X
        n = self.metric.length(X)
        if n == 0:
            raise ValueError("database is empty")
        evals0 = self.metric.counter.n_evals
        with recorder.phase("balltree:build"):
            self.root = self._build(np.arange(n, dtype=np.int64))
            # the recursion's pivot sweeps are data-dependent within a
            # path; recorded as one sequential chain of the measured work
            recorder.record(
                Op(
                    kind="branchy",
                    flops=(self.metric.counter.n_evals - evals0)
                    * self.metric.flops_per_eval(self.metric.dim(X)),
                    bytes=8.0 * n * self.metric.dim(X),
                    vectorizable=False,
                    divergence=1.0,
                    tag="balltree:build",
                    chain=0,
                )
            )
        return self

    def _dists_from(self, pid: int, ids: np.ndarray) -> np.ndarray:
        p = self.metric.take(self.X, [pid])
        return self.metric.pairwise(p, self.metric.take(self.X, ids))[0]

    def _build(self, ids: np.ndarray) -> _Node:
        # pivot = point far from a random seed point (cheap 2-sweep
        # approximation of the diameter pair)
        seed = int(ids[self.rng.integers(ids.size)])
        d_seed = self._dists_from(seed, ids)
        pivot = int(ids[int(np.argmax(d_seed))])
        d_pivot = self._dists_from(pivot, ids)
        radius = float(d_pivot.max())

        if ids.size <= self.leaf_size:
            return _Node(pivot, radius, ids=ids)

        far = int(ids[int(np.argmax(d_pivot))])
        d_far = self._dists_from(far, ids)
        to_left = d_pivot <= d_far
        # degenerate partitions (duplicated points) fall back to a leaf
        if to_left.all() or not to_left.any():
            return _Node(pivot, radius, ids=ids)
        return _Node(
            pivot,
            radius,
            left=self._build(ids[to_left]),
            right=self._build(ids[~to_left]),
        )

    # -------------------------------------------------------------- query
    def query(
        self,
        Q,
        k: int = 1,
        *,
        recorder: TraceRecorder = NULL_RECORDER,
        ctx: ExecContext | None = None,
    ) -> tuple[np.ndarray, np.ndarray]:
        recorder = resolve_ctx(ctx, recorder=recorder).recorder
        if self.root is None:
            raise RuntimeError("call build(X) first")
        if k < 1:
            raise ValueError("k must be >= 1")
        from ..parallel.bruteforce import _is_batch

        Qb = Q if _is_batch(self.metric, Q) else self.metric._as_batch(Q)
        m = self.metric.length(Qb)
        out_d = np.full((m, k), np.inf)
        out_i = np.full((m, k), -1, dtype=np.int64)
        with recorder.phase("balltree:query"):
            for i in range(m):
                d, idx = self._query_one(
                    self.metric.take(Qb, [i]), k, recorder, chain=i
                )
                out_d[i, : d.size] = d
                out_i[i, : idx.size] = idx
        return out_d, out_i

    def _query_one(self, q, k: int, recorder: TraceRecorder, chain: int = 0):
        dim = self.metric.dim(self.X)
        best: list[tuple[float, int]] = []
        # pivots of internal nodes also appear in a leaf below them, so
        # candidates can be offered twice; a point must occupy one slot
        offered: set[int] = set()

        def kth() -> float:
            return -best[0][0] if len(best) == k else np.inf

        def offer(d: float, pid: int) -> None:
            if d < kth() and pid not in offered:
                offered.add(pid)
                if len(best) == k:
                    heapq.heapreplace(best, (-d, pid))
                else:
                    heapq.heappush(best, (-d, pid))

        d_root = self.metric.pairwise(
            q, self.metric.take(self.X, [self.root.pivot])
        )[0, 0]
        offer(float(d_root), self.root.pivot)
        frontier = [(max(0.0, d_root - self.root.radius), 0, self.root)]
        tiebreak = 1
        while frontier and frontier[0][0] < kth():
            _, _, node = heapq.heappop(frontier)
            if node.ids is not None:
                D = self.metric.pairwise(q, self.metric.take(self.X, node.ids))[0]
                recorder.record(
                    Op(
                        kind="branchy",
                        flops=node.ids.size * self.metric.flops_per_eval(dim),
                        bytes=8.0 * node.ids.size * dim,
                        vectorizable=False,
                        divergence=1.0,
                        tag="balltree:leaf",
                        chain=chain,
                    )
                )
                for d, pid in zip(D, node.ids):
                    offer(float(d), int(pid))
                continue
            for child in (node.left, node.right):
                dc = self.metric.pairwise(
                    q, self.metric.take(self.X, [child.pivot])
                )[0, 0]
                recorder.record(
                    Op(
                        kind="branchy",
                        flops=self.metric.flops_per_eval(dim),
                        bytes=8.0 * dim,
                        vectorizable=False,
                        divergence=1.0,
                        tag="balltree:node",
                        chain=chain,
                    )
                )
                offer(float(dc), child.pivot)
                lb = max(0.0, float(dc) - child.radius)
                if lb < kth():
                    heapq.heappush(frontier, (lb, tiebreak, child))
                    tiebreak += 1

        pairs = sorted((-nd, pid) for nd, pid in best)
        return (
            np.array([p[0] for p in pairs]),
            np.array([p[1] for p in pairs], dtype=np.int64),
        )

    def memory_footprint(self) -> int:
        """Bytes for the tree: leaf id arrays plus per-node overhead
        (pivot id, radius, child slots)."""
        if self.root is None:
            raise RuntimeError("call build(X) first")
        total = 0

        def go(node: _Node) -> None:
            nonlocal total
            total += 64
            if node.ids is not None:
                total += node.ids.nbytes
            if node.left is not None:
                go(node.left)
            if node.right is not None:
                go(node.right)

        go(self.root)
        return int(total)
