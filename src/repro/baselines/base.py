"""Common interface for all search indexes (RBC and baselines)."""

from __future__ import annotations

import numpy as np

from ..runtime.context import ExecContext
from ..simulator.trace import NULL_RECORDER, TraceRecorder

__all__ = ["Index"]


class Index:
    """Protocol shared by every index: ``build(X)`` then ``query(Q, k)``.

    ``query`` returns ``(dist, idx)`` arrays of shape ``(m, k)`` with rows
    sorted ascending by distance, padded with ``inf`` / ``-1`` when fewer
    than ``k`` results exist.  All implementations count their distance
    evaluations in ``self.metric.counter`` and can record operation traces
    for the machine models.

    Both methods accept an :class:`~repro.runtime.context.ExecContext`
    carrying the recorder (and, where the index parallelizes, the executor
    and kernel policy) in one object; the ``recorder=`` kwarg remains as a
    thin adapter over it, with set ``ctx`` fields taking precedence.
    """

    metric = None

    def build(
        self,
        X,
        *,
        recorder: TraceRecorder = NULL_RECORDER,
        ctx: ExecContext | None = None,
    ) -> "Index":
        raise NotImplementedError

    def query(
        self,
        Q,
        k: int = 1,
        *,
        recorder: TraceRecorder = NULL_RECORDER,
        ctx: ExecContext | None = None,
    ) -> tuple[np.ndarray, np.ndarray]:
        raise NotImplementedError
