"""Common interface for all search indexes (RBC and baselines).

The formal protocol now lives in :mod:`repro.index.protocol` (``build /
query / range_query / memory_footprint / capabilities``); this module
re-exports it so existing ``from repro.baselines.base import Index``
imports keep working.
"""

from __future__ import annotations

from ..index.protocol import Capabilities, Index, UnsupportedCapability

__all__ = ["Capabilities", "Index", "UnsupportedCapability"]
