"""Manycore machine models and the operation-trace mechanism.

This package substitutes for the paper's physical testbed (48-core server,
quad-core desktop, Tesla c2050); see DESIGN.md §1 for the substitution
argument.  Algorithms record the operations they really perform into a
:class:`~repro.simulator.trace.Trace`; :func:`~repro.simulator.machine.simulate`
replays a trace on a parameterized :class:`~repro.simulator.machine.MachineSpec`.
"""

from .analysis import speedup, strong_scaling, with_cores
from .machine import (
    AMD_48CORE,
    DESKTOP_QUAD,
    SEQUENTIAL,
    TESLA_C2050,
    GpuSpec,
    MachineSpec,
    SimResult,
    simulate,
)
from .trace import NULL_RECORDER, Op, Phase, Trace, TraceRecorder

__all__ = [
    "speedup",
    "strong_scaling",
    "with_cores",
    "AMD_48CORE",
    "DESKTOP_QUAD",
    "SEQUENTIAL",
    "TESLA_C2050",
    "GpuSpec",
    "MachineSpec",
    "SimResult",
    "simulate",
    "NULL_RECORDER",
    "Op",
    "Phase",
    "Trace",
    "TraceRecorder",
]
