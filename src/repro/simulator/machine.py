"""Parameterized machine models: multicore CPUs and SIMT (GPU-like) devices.

These models stand in for the paper's testbed hardware (48-core AMD 6176SE
server, quad-core Core i5 desktop, NVIDIA Tesla c2050) — see DESIGN.md §1.
A model consumes an operation :class:`~repro.simulator.trace.Trace` and
reports how long the trace would take, using:

* a **roofline** per-op time: ``max(compute_time, memory_time)``, where the
  compute rate depends on whether the op is vectorizable (SIMD lanes) and,
  on SIMT devices, on branch divergence (divergent lanes serialize);
* **LPT list scheduling** of each phase's independent ops onto workers
  (cores / streaming multiprocessors), so load imbalance and the serial
  fraction of a trace show up as lost scaling, exactly the effect the paper
  is designing around;
* a fixed per-phase **synchronization overhead** (barrier / kernel-launch).

Numbers for the presets are taken from the published specs of the paper's
hardware; absolute times are not expected to match the paper's testbed, but
ratios between algorithms on the same model — every figure in the paper is
such a ratio — depend only on trace structure.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field

from .trace import Op, Phase, Trace

__all__ = [
    "MachineSpec",
    "GpuSpec",
    "SimResult",
    "simulate",
    "AMD_48CORE",
    "DESKTOP_QUAD",
    "SEQUENTIAL",
    "TESLA_C2050",
]


@dataclass(frozen=True)
class MachineSpec:
    """A homogeneous shared-memory multicore machine."""

    name: str
    cores: int = 4
    simd_lanes: int = 2  # float64 lanes per vector unit
    flops_per_cycle_per_lane: float = 2.0  # fused multiply-add
    ghz: float = 2.3
    mem_bandwidth_gbs: float = 20.0
    scalar_ops_per_cycle: float = 1.0
    sync_overhead_us: float = 2.0

    def __post_init__(self) -> None:
        if self.cores < 1:
            raise ValueError("cores must be >= 1")
        if self.ghz <= 0 or self.mem_bandwidth_gbs <= 0:
            raise ValueError("rates must be positive")

    # ------------------------------------------------------------ rates
    @property
    def n_workers(self) -> int:
        return self.cores

    @property
    def vector_flops_per_worker(self) -> float:
        """Peak vector FLOP/s of one core."""
        return self.simd_lanes * self.flops_per_cycle_per_lane * self.ghz * 1e9

    @property
    def scalar_flops_per_worker(self) -> float:
        return self.scalar_ops_per_cycle * self.ghz * 1e9

    @property
    def peak_gflops(self) -> float:
        return self.n_workers * self.vector_flops_per_worker / 1e9

    def compute_time(self, op: Op) -> float:
        """Pure compute time for one op on one worker, in seconds."""
        rate = (
            self.vector_flops_per_worker
            if op.vectorizable
            else self.scalar_flops_per_worker
        )
        return op.flops / rate

    def op_time(self, op: Op) -> float:
        """Roofline time for one op running alone on the machine.

        Memory bandwidth is a socket-level resource: a single op may draw
        the full bandwidth, while a phase of many ops saturates it
        collectively (handled in :func:`simulate`).
        """
        memory = op.bytes / (self.mem_bandwidth_gbs * 1e9)
        return max(self.compute_time(op), memory)


@dataclass(frozen=True)
class GpuSpec(MachineSpec):
    """A SIMT throughput device (GPU).

    Work is scheduled onto streaming multiprocessors; within an SM a warp of
    lanes executes in lockstep, so an op with branch ``divergence`` f runs at
    ``1 / (1 + f * (warp_size - 1))`` of peak — the architectural fact that
    makes conditional tree search "inefficient" on GPUs (paper §3) and that
    Table 2 exploits.
    """

    sms: int = 14
    warp_size: int = 32
    lanes_per_sm: int = 32
    kernel_launch_us: float = 8.0

    @property
    def n_workers(self) -> int:
        return self.sms

    @property
    def vector_flops_per_worker(self) -> float:
        return self.lanes_per_sm * self.flops_per_cycle_per_lane * self.ghz * 1e9

    @property
    def scalar_flops_per_worker(self) -> float:
        # a lone scalar thread occupies a full warp slot
        return self.ghz * 1e9 / self.warp_size

    def compute_time(self, op: Op) -> float:
        t = super().compute_time(op)
        if op.vectorizable and op.divergence > 0.0:
            t *= 1.0 + op.divergence * (self.warp_size - 1)
        return t


@dataclass
class SimResult:
    """Outcome of replaying a trace on a machine model."""

    machine: MachineSpec
    time_s: float
    phase_times: list[tuple[str, float]] = field(default_factory=list)
    total_flops: float = 0.0
    busy_time_s: float = 0.0

    @property
    def utilization(self) -> float:
        """Mean fraction of workers kept busy (1.0 = perfect scaling)."""
        denom = self.time_s * self.machine.n_workers
        return self.busy_time_s / denom if denom > 0 else 0.0

    @property
    def achieved_gflops(self) -> float:
        return self.total_flops / self.time_s / 1e9 if self.time_s > 0 else 0.0


def _phase_makespan(phase: Phase, machine: MachineSpec) -> tuple[float, float]:
    """(makespan, total busy time) of one phase.

    Compute: ops sharing a chain id are data-dependent and fuse into one
    sequential unit; the resulting independent units are LPT-scheduled
    onto workers.  Memory: the phase's total bytes move at the socket
    bandwidth; the phase cannot finish before the slower of the two — a
    roofline at phase granularity, which lets a lone op use full bandwidth
    while a parallel phase saturates it.
    """
    chained: dict[int, float] = {}
    singles: list[float] = []
    for op in phase.ops:
        t = machine.compute_time(op)
        if op.chain is None:
            singles.append(t)
        else:
            chained[op.chain] = chained.get(op.chain, 0.0) + t
    times = sorted(singles + list(chained.values()), reverse=True)
    busy = sum(times)
    w = machine.n_workers
    if not times:
        return 0.0, 0.0
    if len(times) == 1 or w == 1:
        span = busy
    else:
        heap = [0.0] * min(w, len(times))
        for t in times:
            heapq.heapreplace(heap, heap[0] + t)
        span = max(heap)
    memory = phase.bytes / (machine.mem_bandwidth_gbs * 1e9)
    return max(span, memory), busy


def simulate(trace: Trace, machine: MachineSpec) -> SimResult:
    """Replay ``trace`` on ``machine`` and return the modeled runtime."""
    sync = machine.sync_overhead_us * 1e-6
    if isinstance(machine, GpuSpec):
        sync += machine.kernel_launch_us * 1e-6
    total = 0.0
    busy = 0.0
    phase_times: list[tuple[str, float]] = []
    for phase in trace.phases:
        span, b = _phase_makespan(phase, machine)
        span += sync
        phase_times.append((phase.name, span))
        total += span
        busy += b
    return SimResult(
        machine=machine,
        time_s=total,
        phase_times=phase_times,
        total_flops=trace.flops,
        busy_time_s=busy,
    )


# ----------------------------------------------------------------- presets
#: the paper's 48-core AMD Opteron 6176SE server (4 chips x 12 cores, SSE)
AMD_48CORE = MachineSpec(
    name="amd-6176se-48core",
    cores=48,
    simd_lanes=2,
    flops_per_cycle_per_lane=2.0,
    ghz=2.3,
    mem_bandwidth_gbs=85.0,
    sync_overhead_us=5.0,
)

#: the paper's quad-core Intel Core i5 desktop
DESKTOP_QUAD = MachineSpec(
    name="core-i5-quad",
    cores=4,
    simd_lanes=2,
    flops_per_cycle_per_lane=2.0,
    ghz=2.8,
    mem_bandwidth_gbs=21.0,
    sync_overhead_us=1.0,
)

#: a single sequential core of the desktop (Cover Tree baseline in Table 3)
SEQUENTIAL = MachineSpec(
    name="core-i5-1core",
    cores=1,
    simd_lanes=2,
    flops_per_cycle_per_lane=2.0,
    ghz=2.8,
    mem_bandwidth_gbs=21.0,
    sync_overhead_us=0.0,
)

#: the paper's NVIDIA Tesla c2050 (14 SMs x 32 lanes, 1.15 GHz, 144 GB/s)
TESLA_C2050 = GpuSpec(
    name="tesla-c2050",
    cores=14,
    sms=14,
    warp_size=32,
    lanes_per_sm=32,
    flops_per_cycle_per_lane=1.0,
    ghz=1.15,
    mem_bandwidth_gbs=144.0,
    sync_overhead_us=0.0,
    kernel_launch_us=8.0,
)
