"""Operation traces: the interface between algorithms and machine models.

The paper's central engineering claim is structural: RBC search *factors
into brute-force calls*, whose distance step "has virtually the same
structure as matrix-matrix multiply" and whose comparison step is a standard
parallel reduce (§3), whereas tree search is a deep sequence of conditional,
interleaved scalar steps that parallelize poorly and serialize on vector
hardware.

To evaluate that claim without the paper's 48-core server and Tesla c2050
(see DESIGN.md §1), every algorithm in this package can *record* the
operations it actually performs — tiles of pairwise distances, tree-reduce
merge rounds, scalar branchy traversal steps — into a :class:`Trace`.  The
machine models in :mod:`repro.simulator.machine` then replay a trace on a
parameterized device and report the time it would take.  Work counts (FLOPs,
bytes) in the trace come from the real computation, not from formulas, so
the simulated comparisons inherit the real algorithmic behaviour.

A trace is a list of :class:`Phase` objects.  Ops inside one phase are
mutually independent and may run concurrently; phases are separated by
barriers (e.g. all distance tiles must finish before the cross-tile merge
begins).
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from dataclasses import dataclass, field, replace

__all__ = ["Op", "Phase", "Trace", "TraceRecorder", "NULL_RECORDER"]


@dataclass(frozen=True)
class Op:
    """One schedulable unit of work (runs on a single worker).

    Parameters
    ----------
    kind:
        ``"gemm"`` (dense tile of distance evaluations), ``"reduce"``
        (comparison/merge step), ``"ewise"`` (element-wise pass),
        ``"branchy"`` (data-dependent scalar control flow, e.g. a tree
        descent), ``"memcpy"``.
    flops:
        floating point operations actually performed.
    bytes:
        memory traffic in bytes (reads + writes of operands).
    vectorizable:
        whether the op can use SIMD lanes; ``branchy`` ops cannot.
    divergence:
        fraction in [0, 1] of data-dependent branching; on SIMT devices
        divergent lanes serialize (``1 + divergence * (warp - 1)`` slowdown).
    chain:
        dependency-chain id.  Ops in one phase with the same chain id are
        data-dependent (e.g. the node expansions of ONE tree-search query,
        or the inserts of a sequential build) and are scheduled as a single
        sequential unit; ops with ``chain=None`` are independent.  This is
        how the models distinguish "parallel across queries, serial within
        a query" from genuinely parallel work.
    span_id:
        id of the live :class:`~repro.obs.tracing.Span` that was open when
        the op was recorded (``None`` when span tracing is off).  Lets a
        machine-model replay of the trace be joined against the wall-clock
        span timeline of the same run.
    """

    kind: str
    flops: float
    bytes: float = 0.0
    vectorizable: bool = True
    divergence: float = 0.0
    tag: str = ""
    chain: int | None = None
    span_id: str | None = None

    def __post_init__(self) -> None:
        if self.flops < 0 or self.bytes < 0:
            raise ValueError("flops and bytes must be non-negative")
        if not 0.0 <= self.divergence <= 1.0:
            raise ValueError("divergence must be in [0, 1]")


@dataclass
class Phase:
    """A barrier-delimited group of independent ops."""

    name: str
    ops: list[Op] = field(default_factory=list)

    @property
    def flops(self) -> float:
        return sum(op.flops for op in self.ops)

    @property
    def bytes(self) -> float:
        return sum(op.bytes for op in self.ops)


@dataclass
class Trace:
    """An ordered sequence of phases emitted by one algorithm execution."""

    phases: list[Phase] = field(default_factory=list)

    @property
    def flops(self) -> float:
        return sum(p.flops for p in self.phases)

    @property
    def bytes(self) -> float:
        return sum(p.bytes for p in self.phases)

    @property
    def n_ops(self) -> int:
        return sum(len(p.ops) for p in self.phases)

    def extend(self, other: "Trace") -> None:
        """Append another trace's phases (sequential composition)."""
        self.phases.extend(other.phases)


class TraceRecorder:
    """Collects ops into phases; algorithms call this while running.

    A recorder is optional everywhere: the module-level :data:`NULL_RECORDER`
    swallows records with near-zero overhead so production search paths pay
    nothing when tracing is off.

    The recorder is thread-safe: the *open* phase is thread-local, so tasks
    mapped over a :class:`~repro.parallel.pool.ThreadExecutor` each collect
    their ops into their own phase (appended to the shared trace under a
    lock when the phase closes).  The resulting phase multiset — names, op
    counts, flops, bytes — is identical to a serial run; only the order in
    which concurrently-closed phases land in ``trace.phases`` can differ,
    which the machine models are insensitive to (phases are replayed as
    barrier-delimited groups either way).
    """

    enabled = True
    #: optional :class:`~repro.obs.tracing.Tracer` whose current span id is
    #: stamped onto recorded ops (``None`` skips the lookup entirely)
    tracer = None

    def __init__(self) -> None:
        self.trace = Trace()
        self._tls = threading.local()
        self._lock = threading.Lock()

    @property
    def _current(self) -> Phase | None:
        """This thread's open phase (``None`` outside any phase)."""
        return getattr(self._tls, "current", None)

    @contextmanager
    def phase(self, name: str):
        """Open a phase; ops recorded inside (by this thread) belong to it.

        Nested phases are flattened into the outermost one — an algorithm
        composed of traced sub-algorithms (RBC calling BF) keeps the
        caller's barrier structure.  Each thread has its own notion of the
        open phase, so concurrent tasks cannot append ops to one another's
        phases.
        """
        if self._current is not None:
            yield self
            return
        opened = Phase(name)
        self._tls.current = opened
        try:
            yield self
        finally:
            self._tls.current = None
            if opened.ops:
                with self._lock:
                    self.trace.phases.append(opened)

    def record(self, op: Op) -> None:
        if self.tracer is not None and op.span_id is None:
            live = self.tracer.current
            if live is not None and live.span_id is not None:
                op = replace(op, span_id=live.span_id)
        current = self._current
        if current is None:
            # op outside any phase gets its own barrier-delimited phase
            with self._lock:
                self.trace.phases.append(Phase(op.tag or op.kind, [op]))
        else:
            current.ops.append(op)


class _NullRecorder(TraceRecorder):
    """Recorder that drops everything (tracing disabled)."""

    enabled = False

    def record(self, op: Op) -> None:  # noqa: D102 - intentional no-op
        pass

    @contextmanager
    def phase(self, name: str):  # noqa: D102
        yield self


NULL_RECORDER = _NullRecorder()
