"""Analysis helpers over machine models: scaling curves and comparisons."""

from __future__ import annotations

from dataclasses import replace

from .machine import MachineSpec, SimResult, simulate
from .trace import Trace

__all__ = ["with_cores", "strong_scaling", "speedup"]


def with_cores(machine: MachineSpec, cores: int) -> MachineSpec:
    """A copy of ``machine`` with a different core count.

    Memory bandwidth is held fixed (it is a property of the socket/board,
    not of the core count), so bandwidth-bound phases stop scaling — the
    realistic strong-scaling limiter.
    """
    if isinstance(machine, type(machine)) and hasattr(machine, "sms"):
        return replace(machine, cores=cores, sms=cores)
    return replace(machine, cores=cores)


def strong_scaling(
    trace: Trace, machine: MachineSpec, core_counts: list[int]
) -> list[tuple[int, SimResult]]:
    """Simulate the same trace across core counts (strong scaling)."""
    return [(c, simulate(trace, with_cores(machine, c))) for c in core_counts]


def speedup(baseline: SimResult, contender: SimResult) -> float:
    """How many times faster ``contender`` is than ``baseline``."""
    if contender.time_s <= 0:
        raise ValueError("contender time must be positive")
    return baseline.time_s / contender.time_s
