"""Per-run observability: the :class:`RunReport` a context-driven run emits.

One uniform structure per build/query run, assembled from the pieces the
:class:`~repro.runtime.context.ExecContext` already carries:

* per-phase **wall time** (from :class:`~repro.runtime.context.TimingRecorder`),
* per-phase and total **trace flops / bytes / op counts** (from the
  recorded :class:`~repro.simulator.trace.Trace`),
* the **distance-eval window** (exactly this run's work, snapshot-based),
* the **operand-cache window** (preparations vs hits vs invalidations),
* the index's **SearchStats rule counts** (pruning observables),
* optional **machine-model replays** of the trace.

The report is also the backward-compatible return type of
:func:`repro.eval.harness.traced_query` / ``traced_build``: it carries the
legacy ``QueryRun`` fields (``dist``, ``idx``, ``wall_s``, ``evals``,
``sims``, ``sim_time``) and supports machine-name indexing
(``report["amd-48core"]``) as the old ``traced_build`` dict did.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..metrics.engine import CacheCounter
from ..simulator.machine import MachineSpec, SimResult, simulate
from .context import ExecContext, Observation

__all__ = [
    "PhaseReport",
    "RunReport",
    "LatencyStats",
    "StreamReport",
    "collect_report",
]


@dataclass
class PhaseReport:
    """Aggregated observables for one named phase of a run."""

    name: str
    wall_s: float = 0.0
    flops: float = 0.0
    bytes: float = 0.0
    n_ops: int = 0


@dataclass
class RunReport:
    """Everything observed about one run (build or query batch)."""

    name: str
    #: results (``None`` for builds)
    dist: np.ndarray | None = None
    idx: np.ndarray | None = None
    #: end-to-end wall time of the run
    wall_s: float = 0.0
    #: distance evaluations spent by this run (exact counter window)
    evals: int = 0
    #: pairwise-kernel invocations in the same window
    n_calls: int = 0
    #: machine-name -> simulated replay of the recorded trace
    sims: dict[str, SimResult] = field(default_factory=dict)
    #: phase-name -> aggregated wall time / flops / bytes / op count
    phases: dict[str, PhaseReport] = field(default_factory=dict)
    #: trace totals (zero when tracing was off)
    flops: float = 0.0
    bytes: float = 0.0
    n_ops: int = 0
    #: operand-cache activity during the run (prepared vs hits)
    cache: CacheCounter = field(default_factory=CacheCounter)
    #: ``SearchStats.rule_counts()`` of the queried index, when available
    rule_counts: dict[str, int] = field(default_factory=dict)

    # ------------------------------------------------------------ accessors
    def sim_time(self, machine: MachineSpec) -> float:
        return self.sims[machine.name].time_s

    @property
    def phase_wall(self) -> dict[str, float]:
        """Phase-name -> wall seconds (convenience view over ``phases``)."""
        return {name: p.wall_s for name, p in self.phases.items()}

    def __getitem__(self, machine_name: str) -> SimResult:
        """Machine-name indexing, for compatibility with the dict that
        ``traced_build`` used to return."""
        return self.sims[machine_name]

    def __contains__(self, machine_name: str) -> bool:
        return machine_name in self.sims

    def keys(self):
        return self.sims.keys()

    # ---------------------------------------------------------- presentation
    def summary(self) -> str:
        """Human-readable per-phase breakdown (CLI / notebook friendly)."""
        lines = [
            f"{self.name}: {self.wall_s * 1e3:.2f} ms wall, "
            f"{self.evals} distance evals in {self.n_calls} kernel calls"
        ]
        if self.cache.n_prepared or self.cache.n_hits:
            lines.append(
                f"  operand cache: {self.cache.n_hits} hits, "
                f"{self.cache.n_prepared} prepared, "
                f"{self.cache.n_invalidated} invalidated"
            )
        for name in sorted(self.phases):
            p = self.phases[name]
            bits = []
            if p.wall_s:
                bits.append(f"{p.wall_s * 1e3:.2f} ms")
            if p.n_ops:
                bits.append(
                    f"{p.n_ops} ops, {p.flops:.3g} flops, {p.bytes:.3g} B"
                )
            lines.append(f"  {name}: " + ", ".join(bits))
        for key, val in self.rule_counts.items():
            lines.append(f"  {key}: {val}")
        for mname, sim in self.sims.items():
            lines.append(f"  sim[{mname}]: {sim.time_s * 1e3:.3f} ms")
        return "\n".join(lines)

    def to_dict(self) -> dict:
        """JSON-serializable form (results omitted)."""
        return {
            "name": self.name,
            "wall_s": self.wall_s,
            "evals": self.evals,
            "n_calls": self.n_calls,
            "flops": self.flops,
            "bytes": self.bytes,
            "n_ops": self.n_ops,
            "phases": {
                name: {
                    "wall_s": p.wall_s,
                    "flops": p.flops,
                    "bytes": p.bytes,
                    "n_ops": p.n_ops,
                }
                for name, p in self.phases.items()
            },
            "cache": {
                "n_prepared": self.cache.n_prepared,
                "n_hits": self.cache.n_hits,
                "n_invalidated": self.cache.n_invalidated,
            },
            "rule_counts": dict(self.rule_counts),
            "sims": {name: sim.time_s for name, sim in self.sims.items()},
        }


@dataclass
class LatencyStats:
    """Distribution summary of a latency sample (seconds)."""

    n: int = 0
    mean_s: float = 0.0
    p50_s: float = 0.0
    p95_s: float = 0.0
    p99_s: float = 0.0
    max_s: float = 0.0

    @classmethod
    def from_samples(cls, samples) -> "LatencyStats":
        s = np.asarray(samples, dtype=np.float64)
        if s.size == 0:
            return cls()
        return cls(
            n=int(s.size),
            mean_s=float(s.mean()),
            p50_s=float(np.percentile(s, 50)),
            p95_s=float(np.percentile(s, 95)),
            p99_s=float(np.percentile(s, 99)),
            max_s=float(s.max()),
        )

    def to_dict(self) -> dict:
        return {
            "n": self.n,
            "mean_s": self.mean_s,
            "p50_s": self.p50_s,
            "p95_s": self.p95_s,
            "p99_s": self.p99_s,
            "max_s": self.max_s,
        }


@dataclass
class StreamReport(RunReport):
    """A :class:`RunReport` extended with streaming-serving observables.

    ``latency`` is the per-query *sojourn* time — arrival to answer,
    including the time a query waits in the micro-batcher — and ``wait``
    is the queueing component alone.  ``throughput_qps`` is completed
    queries over the stream's makespan.
    """

    n_queries: int = 0
    throughput_qps: float = 0.0
    n_batches: int = 0
    mean_batch: float = 0.0
    max_batch: int = 0
    deadline_flushes: int = 0
    latency: LatencyStats = field(default_factory=LatencyStats)
    wait: LatencyStats = field(default_factory=LatencyStats)

    def summary(self) -> str:
        lines = [
            f"{self.name}: {self.n_queries} queries, "
            f"{self.throughput_qps:.1f} q/s over {self.wall_s * 1e3:.2f} ms",
            f"  latency: p50 {self.latency.p50_s * 1e3:.3f} ms, "
            f"p95 {self.latency.p95_s * 1e3:.3f} ms, "
            f"p99 {self.latency.p99_s * 1e3:.3f} ms, "
            f"max {self.latency.max_s * 1e3:.3f} ms",
            f"  batches: {self.n_batches} "
            f"(mean {self.mean_batch:.1f}, max {self.max_batch}, "
            f"{self.deadline_flushes} deadline flushes)",
        ]
        base = RunReport.summary(self)
        return "\n".join(lines + base.splitlines()[1:])

    def to_dict(self) -> dict:
        d = RunReport.to_dict(self)
        d.update(
            n_queries=self.n_queries,
            throughput_qps=self.throughput_qps,
            n_batches=self.n_batches,
            mean_batch=self.mean_batch,
            max_batch=self.max_batch,
            deadline_flushes=self.deadline_flushes,
            latency=self.latency.to_dict(),
            wait=self.wait.to_dict(),
        )
        return d


def collect_report(
    name: str,
    ctx: ExecContext,
    obs: Observation,
    *,
    dist: np.ndarray | None = None,
    idx: np.ndarray | None = None,
    stats=None,
    machines: list[MachineSpec] | tuple = (),
) -> RunReport:
    """Assemble a :class:`RunReport` from a finished observed run.

    ``ctx.recorder`` supplies the trace (phase flops/bytes, machine-model
    replays) and — when it is a :class:`TimingRecorder` — the per-phase
    wall clock; ``obs`` supplies the counter windows; ``stats`` is the
    index's :class:`~repro.core.stats.SearchStats` (or ``None``).
    """
    recorder = ctx.recorder
    phases: dict[str, PhaseReport] = {}
    trace = getattr(recorder, "trace", None)
    if trace is not None:
        for p in trace.phases:
            agg = phases.setdefault(p.name, PhaseReport(p.name))
            agg.flops += p.flops
            agg.bytes += p.bytes
            agg.n_ops += len(p.ops)
    for pname, wall in getattr(recorder, "phase_wall", {}).items():
        agg = phases.setdefault(pname, PhaseReport(pname))
        agg.wall_s += wall
    sims = (
        {m.name: simulate(trace, m) for m in machines} if trace is not None else {}
    )
    return RunReport(
        name=name,
        dist=dist,
        idx=idx,
        wall_s=obs.wall_s,
        evals=obs.evals,
        n_calls=obs.n_calls,
        sims=sims,
        phases=phases,
        flops=trace.flops if trace is not None else 0.0,
        bytes=trace.bytes if trace is not None else 0.0,
        n_ops=trace.n_ops if trace is not None else 0,
        cache=obs.cache,
        rule_counts=dict(stats.rule_counts()) if stats is not None else {},
    )
