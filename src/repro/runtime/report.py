"""Per-run observability: the :class:`RunReport` a context-driven run emits.

One uniform structure per build/query run, assembled from the pieces the
:class:`~repro.runtime.context.ExecContext` already carries:

* per-phase **wall time** (from :class:`~repro.runtime.context.TimingRecorder`),
* per-phase and total **trace flops / bytes / op counts** (from the
  recorded :class:`~repro.simulator.trace.Trace`),
* the **distance-eval window** (exactly this run's work, snapshot-based),
* the **operand-cache window** (preparations vs hits vs invalidations),
* the index's **SearchStats rule counts** (pruning observables),
* optional **machine-model replays** of the trace.

The report is also the backward-compatible return type of
:func:`repro.eval.harness.traced_query` / ``traced_build``: it carries the
legacy ``QueryRun`` fields (``dist``, ``idx``, ``wall_s``, ``evals``,
``sims``, ``sim_time``) and supports machine-name indexing
(``report["amd-48core"]``) as the old ``traced_build`` dict did.
"""

from __future__ import annotations

import itertools
import os
from dataclasses import dataclass, field

import numpy as np

from ..metrics.engine import CacheCounter
from ..simulator.machine import MachineSpec, SimResult, simulate
from .context import ExecContext, Observation

__all__ = [
    "PhaseReport",
    "RunReport",
    "LatencyStats",
    "StreamReport",
    "collect_report",
]


@dataclass
class PhaseReport:
    """Aggregated observables for one named phase of a run."""

    name: str
    wall_s: float = 0.0
    flops: float = 0.0
    bytes: float = 0.0
    n_ops: int = 0


_report_seq = itertools.count()


def _new_report_id() -> str:
    """Process-unique report identity; consumers that ingest reports
    (the router's cost model) use it to deduplicate re-observations."""
    return f"r{os.getpid():x}-{next(_report_seq):x}"


@dataclass
class RunReport:
    """Everything observed about one run (build or query batch)."""

    name: str
    #: results (``None`` for builds)
    dist: np.ndarray | None = None
    idx: np.ndarray | None = None
    #: end-to-end wall time of the run
    wall_s: float = 0.0
    #: distance evaluations spent by this run (exact counter window)
    evals: int = 0
    #: pairwise-kernel invocations in the same window
    n_calls: int = 0
    #: machine-name -> simulated replay of the recorded trace
    sims: dict[str, SimResult] = field(default_factory=dict)
    #: phase-name -> aggregated wall time / flops / bytes / op count
    phases: dict[str, PhaseReport] = field(default_factory=dict)
    #: trace totals (zero when tracing was off)
    flops: float = 0.0
    bytes: float = 0.0
    n_ops: int = 0
    #: operand-cache activity during the run (prepared vs hits)
    cache: CacheCounter = field(default_factory=CacheCounter)
    #: ``SearchStats.rule_counts()`` of the queried index, when available
    rule_counts: dict[str, int] = field(default_factory=dict)
    #: quantized-tier report (strategy, quantizer, backend, over-fetch
    #: re-rank bound, recall before re-rank); ``None`` when the run did
    #: not touch compressed codes
    quant: dict | None = None
    #: process-unique identity; observation sinks deduplicate on it, so
    #: feeding the same report twice cannot double-count
    report_id: str = field(default_factory=_new_report_id)

    # ------------------------------------------------------------ accessors
    def sim_time(self, machine: MachineSpec) -> float:
        return self.sims[machine.name].time_s

    @property
    def phase_wall(self) -> dict[str, float]:
        """Phase-name -> wall seconds (convenience view over ``phases``)."""
        return {name: p.wall_s for name, p in self.phases.items()}

    def __getitem__(self, machine_name: str) -> SimResult:
        """Machine-name indexing, for compatibility with the dict that
        ``traced_build`` used to return."""
        return self.sims[machine_name]

    def __contains__(self, machine_name: str) -> bool:
        return machine_name in self.sims

    def keys(self):
        return self.sims.keys()

    # ---------------------------------------------------------- presentation
    def summary(self) -> str:
        """Human-readable per-phase breakdown (CLI / notebook friendly)."""
        header = (
            f"{self.name}: {self.wall_s * 1e3:.2f} ms wall, "
            f"{self.evals} distance evals in {self.n_calls} kernel calls"
        )
        return "\n".join([header] + self._detail_lines())

    def _detail_lines(self) -> list[str]:
        """The indented body of :meth:`summary` — everything below the
        headline, so subclasses can swap in their own header without
        splicing rendered text."""
        lines = []
        if self.cache.n_prepared or self.cache.n_hits:
            lines.append(
                f"  operand cache: {self.cache.n_hits} hits, "
                f"{self.cache.n_prepared} prepared, "
                f"{self.cache.n_invalidated} invalidated"
            )
        for name in sorted(self.phases):
            p = self.phases[name]
            bits = []
            if p.wall_s:
                bits.append(f"{p.wall_s * 1e3:.2f} ms")
            if p.n_ops:
                bits.append(
                    f"{p.n_ops} ops, {p.flops:.3g} flops, {p.bytes:.3g} B"
                )
            lines.append(f"  {name}: " + ", ".join(bits))
        for key, val in self.rule_counts.items():
            lines.append(f"  {key}: {val}")
        if self.quant:
            bits = [
                f"{self.quant.get('quantizer', '?')}"
                f"/{self.quant.get('strategy', '?')}"
                f" ({self.quant.get('backend', '?')})"
            ]
            if "k_prime" in self.quant:
                bits.append(f"k'={self.quant['k_prime']}")
            if "recall_before_rerank" in self.quant:
                bits.append(
                    f"recall@rerank {self.quant['recall_before_rerank']:.4f}"
                )
            lines.append("  quant: " + ", ".join(bits))
        for mname, sim in self.sims.items():
            lines.append(f"  sim[{mname}]: {sim.time_s * 1e3:.3f} ms")
        return lines

    def to_dict(self) -> dict:
        """JSON-serializable form (results omitted)."""
        return {
            "name": self.name,
            "wall_s": self.wall_s,
            "evals": self.evals,
            "n_calls": self.n_calls,
            "flops": self.flops,
            "bytes": self.bytes,
            "n_ops": self.n_ops,
            "phases": {
                name: {
                    "wall_s": p.wall_s,
                    "flops": p.flops,
                    "bytes": p.bytes,
                    "n_ops": p.n_ops,
                }
                for name, p in self.phases.items()
            },
            "cache": {
                "n_prepared": self.cache.n_prepared,
                "n_hits": self.cache.n_hits,
                "n_invalidated": self.cache.n_invalidated,
            },
            "rule_counts": dict(self.rule_counts),
            "quant": dict(self.quant) if self.quant else None,
            "sims": {name: sim.time_s for name, sim in self.sims.items()},
            "report_id": self.report_id,
        }

    @classmethod
    def from_dict(cls, d: dict) -> "RunReport":
        """Rebuild a report from :meth:`to_dict` output (results stay
        ``None`` — they are not serialized).  ``sims`` entries come back
        as lightweight stand-ins carrying only ``time_s``, which is all
        :meth:`sim_time` / ``report[machine]`` ever read."""
        return cls(
            name=d.get("name", ""),
            wall_s=float(d.get("wall_s", 0.0)),
            evals=int(d.get("evals", 0)),
            n_calls=int(d.get("n_calls", 0)),
            flops=float(d.get("flops", 0.0)),
            bytes=float(d.get("bytes", 0.0)),
            n_ops=int(d.get("n_ops", 0)),
            phases={
                name: PhaseReport(
                    name,
                    wall_s=float(p.get("wall_s", 0.0)),
                    flops=float(p.get("flops", 0.0)),
                    bytes=float(p.get("bytes", 0.0)),
                    n_ops=int(p.get("n_ops", 0)),
                )
                for name, p in d.get("phases", {}).items()
            },
            cache=CacheCounter(**d.get("cache", {})),
            rule_counts=dict(d.get("rule_counts", {})),
            quant=d.get("quant"),
            sims={
                name: _SimTime(float(t)) for name, t in d.get("sims", {}).items()
            },
            report_id=d.get("report_id") or _new_report_id(),
            **cls._extra_from_dict(d),
        )

    @classmethod
    def _extra_from_dict(cls, d: dict) -> dict:
        """Subclass hook: extra constructor kwargs pulled from ``d``."""
        return {}


@dataclass(frozen=True)
class _SimTime:
    """Deserialized stand-in for a :class:`SimResult`: ``to_dict`` keeps
    only the modeled seconds, so that is what a round-tripped report's
    ``sims`` can offer."""

    time_s: float


@dataclass
class LatencyStats:
    """Distribution summary of a latency sample (seconds)."""

    n: int = 0
    mean_s: float = 0.0
    p50_s: float = 0.0
    p95_s: float = 0.0
    p99_s: float = 0.0
    max_s: float = 0.0

    @classmethod
    def from_samples(cls, samples) -> "LatencyStats":
        s = np.asarray(samples, dtype=np.float64)
        if s.size == 0:
            return cls()
        if not np.all(np.isfinite(s)):
            raise ValueError("latency samples must be finite")
        return cls(
            n=int(s.size),
            mean_s=float(s.mean()),
            p50_s=float(np.percentile(s, 50)),
            p95_s=float(np.percentile(s, 95)),
            p99_s=float(np.percentile(s, 99)),
            max_s=float(s.max()),
        )

    def to_dict(self) -> dict:
        return {
            "n": self.n,
            "mean_s": self.mean_s,
            "p50_s": self.p50_s,
            "p95_s": self.p95_s,
            "p99_s": self.p99_s,
            "max_s": self.max_s,
        }

    @classmethod
    def from_dict(cls, d: dict) -> "LatencyStats":
        return cls(
            n=int(d.get("n", 0)),
            mean_s=float(d.get("mean_s", 0.0)),
            p50_s=float(d.get("p50_s", 0.0)),
            p95_s=float(d.get("p95_s", 0.0)),
            p99_s=float(d.get("p99_s", 0.0)),
            max_s=float(d.get("max_s", 0.0)),
        )


@dataclass
class StreamReport(RunReport):
    """A :class:`RunReport` extended with streaming-serving observables.

    ``latency`` is the per-query *sojourn* time — arrival to answer,
    including the time a query waits in the micro-batcher — and ``wait``
    is the queueing component alone.  ``throughput_qps`` is completed
    queries over the stream's makespan.
    """

    n_queries: int = 0
    throughput_qps: float = 0.0
    n_batches: int = 0
    mean_batch: float = 0.0
    max_batch: int = 0
    deadline_flushes: int = 0
    #: SLO-breach backoffs the micro-batch ladder took during the stream
    n_backoffs: int = 0
    latency: LatencyStats = field(default_factory=LatencyStats)
    wait: LatencyStats = field(default_factory=LatencyStats)
    #: :meth:`repro.obs.slo.SLOMonitor.report` of the stream, when a
    #: monitor was attached (``None`` otherwise)
    slo: dict | None = None
    #: :meth:`repro.obs.quality.QualitySampler.report` of the stream —
    #: the answer-quality sibling of ``slo`` (windowed recall estimate,
    #: sample count, breach count, drift); ``None`` when no sampler ran
    quality: dict | None = None
    #: shards the serving index was partitioned over (0 = unsharded)
    n_shards: int = 0
    #: scatter-gather communication waves over the stream (one per
    #: micro-batch, plus one whenever a hedge wave was issued)
    rounds: int = 0
    #: straggler tasks re-issued to a replica during the stream
    hedges: int = 0
    #: per-shard load breakdown (``None`` when unsharded): one dict per
    #: shard with tasks / queries / evals / busy_s / hedges and traffic
    per_shard: list[dict] | None = None
    #: semantic-cache activity during the stream (all zero when the
    #: searcher ran without a :class:`~repro.serving.cache.ProximityCache`)
    cache_hits: int = 0
    cache_misses: int = 0
    #: certified rejects: lookups whose nearest key existed but whose
    #: tolerance certificate failed (a subset of ``cache_misses``)
    cache_rejects: int = 0
    cache_hit_rate: float = 0.0

    def summary(self) -> str:
        lines = [
            f"{self.name}: {self.n_queries} queries, "
            f"{self.throughput_qps:.1f} q/s over {self.wall_s * 1e3:.2f} ms",
            f"  latency: p50 {self.latency.p50_s * 1e3:.3f} ms, "
            f"p95 {self.latency.p95_s * 1e3:.3f} ms, "
            f"p99 {self.latency.p99_s * 1e3:.3f} ms, "
            f"max {self.latency.max_s * 1e3:.3f} ms",
            f"  batches: {self.n_batches} "
            f"(mean {self.mean_batch:.1f}, max {self.max_batch}, "
            f"{self.deadline_flushes} deadline flushes, "
            f"{self.n_backoffs} backoffs)",
        ]
        if self.n_shards:
            lines.append(
                f"  shards: {self.n_shards} "
                f"({self.rounds} rounds, {self.hedges} hedges)"
            )
            for w, row in enumerate(self.per_shard or []):
                lines.append(
                    f"    shard {w}: {row.get('tasks', 0)} tasks, "
                    f"{row.get('queries', 0)} queries, "
                    f"{row.get('evals', 0)} evals, "
                    f"{row.get('busy_s', 0.0) * 1e3:.2f} ms busy, "
                    f"{row.get('hedges', 0)} hedges"
                )
        if self.cache_hits or self.cache_misses:
            lines.append(
                f"  semantic cache: {self.cache_hits} hits, "
                f"{self.cache_misses} misses "
                f"({self.cache_rejects} certified rejects), "
                f"hit rate {self.cache_hit_rate:.1%}"
            )
        if self.slo:
            lines.append(
                f"  slo: target p{self.slo.get('target', 0) * 100:g} "
                f"<= {self.slo.get('budget_s', 0) * 1e3:.1f} ms, "
                f"burn {self.slo.get('burn_rate', 0.0):.2f}, "
                f"{self.slo.get('n_breaches', 0)} breaches"
            )
        if self.quality:
            q = self.quality
            lines.append(
                f"  quality: recall est {q.get('recall_estimate', 0.0):.4f} "
                f"(target {q.get('target', 0.0):g}) over "
                f"{q.get('n_samples', 0)} samples, "
                f"{q.get('n_breaches', 0)} breaches"
            )
            drift = q.get("drift")
            if drift and drift.get("drifted"):
                lines.append(
                    "  drift: "
                    + "; ".join(drift.get("reasons") or ["thresholds crossed"])
                )
        return "\n".join(lines + self._detail_lines())

    def to_dict(self) -> dict:
        d = RunReport.to_dict(self)
        d.update(
            n_queries=self.n_queries,
            throughput_qps=self.throughput_qps,
            n_batches=self.n_batches,
            mean_batch=self.mean_batch,
            max_batch=self.max_batch,
            deadline_flushes=self.deadline_flushes,
            n_backoffs=self.n_backoffs,
            latency=self.latency.to_dict(),
            wait=self.wait.to_dict(),
            slo=self.slo,
            quality=self.quality,
            n_shards=self.n_shards,
            rounds=self.rounds,
            hedges=self.hedges,
            per_shard=self.per_shard,
            cache_hits=self.cache_hits,
            cache_misses=self.cache_misses,
            cache_rejects=self.cache_rejects,
            cache_hit_rate=self.cache_hit_rate,
        )
        return d

    @classmethod
    def _extra_from_dict(cls, d: dict) -> dict:
        return {
            "n_queries": int(d.get("n_queries", 0)),
            "throughput_qps": float(d.get("throughput_qps", 0.0)),
            "n_batches": int(d.get("n_batches", 0)),
            "mean_batch": float(d.get("mean_batch", 0.0)),
            "max_batch": int(d.get("max_batch", 0)),
            "deadline_flushes": int(d.get("deadline_flushes", 0)),
            "n_backoffs": int(d.get("n_backoffs", 0)),
            "latency": LatencyStats.from_dict(d.get("latency", {})),
            "wait": LatencyStats.from_dict(d.get("wait", {})),
            "slo": d.get("slo"),
            # quality arrived after slo; old payloads load as None and
            # the summary simply omits the line (graceful zeros)
            "quality": d.get("quality"),
            "n_shards": int(d.get("n_shards", 0)),
            "rounds": int(d.get("rounds", 0)),
            "hedges": int(d.get("hedges", 0)),
            "per_shard": d.get("per_shard"),
            # cache fields arrived after the first serialized payloads;
            # .get defaults keep old payloads loading cleanly
            "cache_hits": int(d.get("cache_hits", 0)),
            "cache_misses": int(d.get("cache_misses", 0)),
            "cache_rejects": int(d.get("cache_rejects", 0)),
            "cache_hit_rate": float(d.get("cache_hit_rate", 0.0)),
        }


def collect_report(
    name: str,
    ctx: ExecContext,
    obs: Observation,
    *,
    dist: np.ndarray | None = None,
    idx: np.ndarray | None = None,
    stats=None,
    machines: list[MachineSpec] | tuple = (),
) -> RunReport:
    """Assemble a :class:`RunReport` from a finished observed run.

    ``ctx.recorder`` supplies the trace (phase flops/bytes, machine-model
    replays) and — when it is a :class:`TimingRecorder` — the per-phase
    wall clock; ``obs`` supplies the counter windows; ``stats`` is the
    index's :class:`~repro.core.stats.SearchStats` (or ``None``).
    """
    recorder = ctx.recorder
    phases: dict[str, PhaseReport] = {}
    trace = getattr(recorder, "trace", None)
    if trace is not None:
        for p in trace.phases:
            agg = phases.setdefault(p.name, PhaseReport(p.name))
            agg.flops += p.flops
            agg.bytes += p.bytes
            agg.n_ops += len(p.ops)
    for pname, wall in getattr(recorder, "phase_wall", {}).items():
        agg = phases.setdefault(pname, PhaseReport(pname))
        agg.wall_s += wall
    sims = (
        {m.name: simulate(trace, m) for m in machines} if trace is not None else {}
    )
    return RunReport(
        name=name,
        dist=dist,
        idx=idx,
        wall_s=obs.wall_s,
        evals=obs.evals,
        n_calls=obs.n_calls,
        sims=sims,
        phases=phases,
        flops=trace.flops if trace is not None else 0.0,
        bytes=trace.bytes if trace is not None else 0.0,
        n_ops=trace.n_ops if trace is not None else 0,
        cache=obs.cache,
        rule_counts=dict(stats.rule_counts()) if stats is not None else {},
        quant=dict(stats.quant)
        if stats is not None and getattr(stats, "quant", None)
        else None,
    )
