"""Unified execution runtime: one context object per search run.

:class:`ExecContext` bundles the cross-cutting execution state — scoped
executor, trace recorder, engine/dtype policy, chunking policy — that the
brute-force primitive, both RBC searches, every baseline, and the eval
harness all share; :class:`RunReport` is the per-run observability record
a context-driven run emits.  See :mod:`repro.runtime.context` for the
merge semantics that keep the legacy ``recorder=``/``executor=`` kwargs
working unchanged.
"""

from .autotune import Autotuner, KernelPlan, autotune_cache_path, default_autotuner
from .context import ExecContext, Observation, TimingRecorder, resolve_ctx
from .report import (
    LatencyStats,
    PhaseReport,
    RunReport,
    StreamReport,
    collect_report,
)

__all__ = [
    "Autotuner",
    "KernelPlan",
    "autotune_cache_path",
    "default_autotuner",
    "ExecContext",
    "Observation",
    "TimingRecorder",
    "resolve_ctx",
    "LatencyStats",
    "PhaseReport",
    "RunReport",
    "StreamReport",
    "collect_report",
]
