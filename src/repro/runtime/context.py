"""The unified execution context threaded through every search run.

The paper's argument is that RBC search is *one* parallel primitive —
``BF(Q, X[L])`` — reused everywhere (§3).  The cross-cutting execution
state of that primitive (which executor maps the tiles, which recorder
collects the operation trace, what compute dtype/engine policy the kernels
use, how work is chunked) used to be hand-threaded as ad-hoc kwargs
through every layer, with the executor-ownership dance and the
"process pool degrades BLAS-bound stages to inline" decision copied
between modules.  :class:`ExecContext` bundles all of it in one object:

* **executor scope** — :meth:`ExecContext.executor_scope` resolves the
  executor spec and closes the pool iff this run created it, in one
  ``with`` block (see :func:`repro.parallel.pool.executor_scope`);
* **recorder** — the :class:`~repro.simulator.trace.TraceRecorder` the
  run records into (:class:`TimingRecorder` additionally collects
  per-phase wall time);
* **engine/dtype policy** — compute dtype, the prepared-operand engine
  switch, and the rule that the process backend disables operand sharing
  (workers own their copies) and runs GIL-releasing batched stages inline;
* **chunking policy** — ``row_chunk`` / ``tile_cols`` overrides for the
  blocked kernels;
* **observation windows** — :meth:`ExecContext.observe` snapshots the
  distance counter and the operand-cache counters around a block, the raw
  material of a :class:`~repro.runtime.report.RunReport`.

Every field defaults to "unset" (``None`` / :data:`NULL_RECORDER`), so a
context can be *merged*: explicitly-set fields win, unset fields fall back
to another context's (or an index's) defaults.  The legacy ``recorder=`` /
``executor=`` kwargs across the package are thin adapters over exactly
this merge, so both calling styles produce bit-identical runs.
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass, replace
from typing import TYPE_CHECKING

import numpy as np

from ..metrics.base import VectorMetric
from ..metrics.engine import CacheCounter, check_dtype, operand_cache
from ..obs.tracing import NULL_TRACER, Tracer
from ..simulator.trace import NULL_RECORDER, TraceRecorder

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..parallel.pool import Executor

# NOTE: runtime sits *below* repro.parallel in the layering (bruteforce
# imports this module), so the pool helpers are imported lazily inside the
# methods that need them rather than at module import time.

__all__ = ["ExecContext", "Observation", "TimingRecorder", "resolve_ctx"]


class TimingRecorder(TraceRecorder):
    """A :class:`TraceRecorder` that also accumulates per-phase wall time.

    ``phase_wall`` maps phase name to total seconds spent inside that phase
    (summed over repeats — blocked algorithms open the same phase once per
    chunk).  Nested phases are flattened exactly like the base recorder, so
    the wall-time map has the same keys as the recorded trace.

    With ``trace_ops=False`` the recorder reports ``enabled = False`` —
    algorithms then skip all ``Op`` construction and the machine-model
    trace stays empty — but phase timings are still collected.  This is the
    near-zero-overhead observability mode: per-phase wall clock for the
    cost of two ``perf_counter`` calls per phase.
    """

    def __init__(self, trace_ops: bool = True, tracer: Tracer | None = None) -> None:
        super().__init__()
        self.enabled = bool(trace_ops)
        if tracer is not None and tracer.enabled:
            # ops recorded under an open span carry its id (see Op.span_id)
            self.tracer = tracer
        self.phase_wall: dict[str, float] = {}
        self._wall_lock = threading.Lock()

    def record(self, op) -> None:
        if self.enabled:
            super().record(op)

    @contextmanager
    def phase(self, name: str):
        if self._current is not None:  # nested: flatten, outer phase times
            yield self
            return
        t0 = time.perf_counter()
        try:
            with TraceRecorder.phase(self, name):
                yield self
        finally:
            dt = time.perf_counter() - t0
            with self._wall_lock:
                self.phase_wall[name] = self.phase_wall.get(name, 0.0) + dt


class Observation:
    """Counter deltas measured around one run (see :meth:`ExecContext.observe`).

    ``evals``/``n_calls`` are the distance-counter window — exactly the
    work of the observed block, immune to whatever ran before — and
    ``cache`` is the operand-cache activity (preparations, hits,
    invalidations) as a :class:`~repro.metrics.engine.CacheCounter` delta.
    """

    __slots__ = ("wall_s", "evals", "n_calls", "cache")

    def __init__(self) -> None:
        self.wall_s = 0.0
        self.evals = 0
        self.n_calls = 0
        self.cache = CacheCounter()


@dataclass
class ExecContext:
    """Everything a search run needs to execute and be observed.

    Fields left at their defaults mean "unset — inherit": :func:`resolve_ctx`
    and the index classes fill them from legacy kwargs and per-index
    configuration, so ``query(..., ctx=ExecContext(recorder=r))`` and
    ``query(..., recorder=r)`` are the same run.

    Parameters
    ----------
    executor:
        ``None`` (inherit / serial), ``"serial"``, ``"threads"``,
        ``"processes"``, or an :class:`~repro.parallel.pool.Executor`
        instance (never closed by the run).
    n_workers:
        worker count for string specs.
    recorder:
        trace recorder; :data:`NULL_RECORDER` disables tracing.
    tracer:
        span tracer (:mod:`repro.obs`); :data:`~repro.obs.tracing.
        NULL_TRACER` disables span collection at near-zero cost.
    dtype:
        compute dtype for vector-metric kernels (``None`` inherits;
        effective default ``"float64"``).
    engine:
        prepared-operand kernel engine switch (``None`` inherits;
        effective default on).
    row_chunk / tile_cols:
        chunking policy for the blocked brute-force kernels (``None``
        auto-sizes).
    """

    executor: str | Executor | None = None
    n_workers: int | None = None
    recorder: TraceRecorder = NULL_RECORDER
    dtype: str | None = None
    engine: bool | None = None
    row_chunk: int | None = None
    tile_cols: int | None = None
    tracer: Tracer = NULL_TRACER

    def __post_init__(self) -> None:
        if self.recorder is None:
            self.recorder = NULL_RECORDER
        if self.tracer is None:
            self.tracer = NULL_TRACER
        if self.dtype is not None:
            check_dtype(self.dtype)

    # -------------------------------------------------------------- merging
    def overriding(self, base: "ExecContext") -> "ExecContext":
        """New context taking this one's set fields, falling back to ``base``."""
        return ExecContext(
            executor=self.executor if self.executor is not None else base.executor,
            n_workers=(
                self.n_workers if self.n_workers is not None else base.n_workers
            ),
            recorder=(
                self.recorder
                if self.recorder is not NULL_RECORDER
                else base.recorder
            ),
            dtype=self.dtype if self.dtype is not None else base.dtype,
            engine=self.engine if self.engine is not None else base.engine,
            row_chunk=(
                self.row_chunk if self.row_chunk is not None else base.row_chunk
            ),
            tile_cols=(
                self.tile_cols if self.tile_cols is not None else base.tile_cols
            ),
            tracer=(
                self.tracer if self.tracer is not NULL_TRACER else base.tracer
            ),
        )

    def transport(self) -> "ExecContext":
        """The execution fields only — executor, recorder, tracer,
        chunking — without the dtype/engine policy.  Sub-calls with their
        own numeric policy (index builds always run float64, an inner index
        has its own dtype knob) travel on this."""
        return ExecContext(
            executor=self.executor,
            n_workers=self.n_workers,
            recorder=self.recorder,
            row_chunk=self.row_chunk,
            tile_cols=self.tile_cols,
            tracer=self.tracer,
        )

    def with_recorder(self, recorder: TraceRecorder) -> "ExecContext":
        return replace(self, recorder=recorder)

    def with_tracer(self, tracer: Tracer) -> "ExecContext":
        return replace(self, tracer=tracer)

    def span(self, name: str, **attrs):
        """Open a span on the context's tracer (no-op context manager when
        tracing is disabled) — the one-liner instrumented code calls."""
        return self.tracer.span(name, **attrs)

    # ------------------------------------------------------- executor scope
    @property
    def uses_processes(self) -> bool:
        """True when the process backend runs the brute-force primitive.

        The process pool changes two policies at once: operands cannot be
        shared with workers (each owns its copies, so the prepared-operand
        engine is off) and BLAS-bound batched stages run inline instead —
        shipping whole-index state per chunk would cost more than the
        GIL-releasing kernels save.
        """
        from ..parallel.pool import ProcessExecutor

        return self.executor == "processes" or isinstance(
            self.executor, ProcessExecutor
        )

    def executor_scope(self, *, inline_processes: bool = False):
        """Scoped executor for this run (see :func:`~repro.parallel.pool.executor_scope`).

        ``inline_processes=True`` applies the degrade rule above: when the
        context's executor is the process backend, the stage runs on an
        inline :class:`~repro.parallel.pool.SerialExecutor` instead.
        """
        from ..parallel.pool import executor_scope

        spec = self.executor
        if inline_processes and self.uses_processes:
            spec = "serial"
        return executor_scope(spec, self.n_workers)

    # -------------------------------------------------------- engine policy
    @property
    def dtype_or_default(self) -> str:
        return self.dtype if self.dtype is not None else "float64"

    @property
    def engine_or_default(self) -> bool:
        return True if self.engine is None else bool(self.engine)

    def engine_active(self, metric, X) -> bool:
        """Whether the prepared-operand engine applies to this run: vector
        metrics over ndarray databases only, and never under the process
        backend (no operand sharing across the process boundary)."""
        if self.uses_processes:
            return False
        return (
            self.engine_or_default
            and isinstance(metric, VectorMetric)
            and isinstance(X, np.ndarray)
        )

    # ----------------------------------------------------------- observation
    @contextmanager
    def observe(self, metric):
        """Measure a block: wall time, the metric's distance-counter window,
        and the operand-cache counter window, as an :class:`Observation`.

        The windows are snapshot-based (lock-consistent), so ``obs.evals``
        is exactly the block's work even when other runs came before.
        """
        obs = Observation()
        c0 = metric.counter.snapshot()
        k0 = operand_cache.stats.snapshot()
        t0 = time.perf_counter()
        try:
            yield obs
        finally:
            obs.wall_s = time.perf_counter() - t0
            c1 = metric.counter.snapshot()
            k1 = operand_cache.stats.snapshot()
            obs.evals = c1.n_evals - c0.n_evals
            obs.n_calls = c1.n_calls - c0.n_calls
            obs.cache = CacheCounter(
                k1.n_prepared - k0.n_prepared,
                k1.n_hits - k0.n_hits,
                k1.n_invalidated - k0.n_invalidated,
            )


def resolve_ctx(
    ctx: ExecContext | None = None,
    *,
    executor: str | Executor | None = None,
    n_workers: int | None = None,
    recorder: TraceRecorder | None = None,
    dtype: str | None = None,
    engine: bool | None = None,
    row_chunk: int | None = None,
    tile_cols: int | None = None,
    tracer: Tracer | None = None,
) -> ExecContext:
    """Merge an optional context with legacy keyword arguments.

    The adapter behind every ``recorder=`` / ``executor=`` kwarg in the
    package: explicitly-set ``ctx`` fields win, the legacy kwargs fill
    whatever the context leaves unset.  With ``ctx=None`` this simply
    packages the kwargs into a context.
    """
    base = ExecContext(
        executor=executor,
        n_workers=n_workers,
        recorder=recorder if recorder is not None else NULL_RECORDER,
        dtype=dtype,
        engine=engine,
        row_chunk=row_chunk,
        tile_cols=tile_cols,
        tracer=tracer if tracer is not None else NULL_TRACER,
    )
    if ctx is None:
        return base
    return ctx.overriding(base)
