"""Kernel autotuner: the simulator's machine model as a cost model.

The quantized tier gives the stage-2 scan a real choice: the *grouped*
path scans only the pruned candidate lists (a win when the triangle-
inequality rules bite, i.e. low dimension), while the *flat* path
replaces both stages with one certified quantized scan of the whole
database (a win when the curse of dimensionality makes pruning keep
nearly everything — at d >= 32 on Gaussian data the exact rules retain
~100% of the candidates, so the "pruned" grouped scan is a slower
full scan).  Which side wins depends on ``(n, d, dtype, backend)`` and
the machine, which is exactly what :mod:`repro.simulator` models.

:class:`Autotuner` prices both strategies with the roofline arithmetic
of :meth:`~repro.simulator.machine.MachineSpec.op_time` — compute time
vs bytes-over-bandwidth, plus a per-group synchronization term for the
grouped path — picks the cheaper one, and persists the decision as a
:class:`KernelPlan` keyed by ``(algo, log2 n, d, kernel, backend,
cand_frac decile)``.
The JSON plan cache (``REPRO_AUTOTUNE_CACHE`` or
``~/.cache/repro/autotune.json``) survives processes, so a serving
front-end gets tuned kernels at ``warm()`` without re-deriving anything.
"""

from __future__ import annotations

import json
import os
import tempfile
from dataclasses import asdict, dataclass, field
from pathlib import Path

from ..simulator.machine import AMD_48CORE, DESKTOP_QUAD, MachineSpec
from ..simulator.trace import Op

__all__ = ["KernelPlan", "Autotuner", "default_autotuner", "autotune_cache_path"]

#: bytes one scanned row moves per code kind (per dimension); the numpy
#: backend always streams the float32 decode cache
_BYTES_PER_DIM = {
    ("int8", "numba"): 1.0,
    ("pq", "numba"): 0.25,  # one uint8 code per 4-dim subspace (M = d/4+)
    ("float16", "numba"): 4.0,  # storage-only kind: decoded-path scan
}


@dataclass
class KernelPlan:
    """One tuned kernel configuration (the autotuner's output).

    ``strategy`` selects flat (whole-database certified scan) vs grouped
    (pruned stage-2 lists on the decode cache); ``row_chunk`` keeps the
    flat scan's score block cache-resident; ``over_fetch`` is the ``c``
    in the ``k' = ck`` re-rank bound surfaced in ``RunReport``.
    """

    quantizer: str = "int8"
    strategy: str = "flat"  # "flat" | "grouped"
    backend: str = "numpy"  # scan backend the plan was priced for
    row_chunk: int = 64
    over_fetch: int = 4
    cand_frac: float = 1.0  # pruning estimate the plan was priced with
    predicted_ms: dict = field(default_factory=dict)  # strategy -> ms/query

    def to_dict(self) -> dict:
        return asdict(self)

    @classmethod
    def from_dict(cls, d: dict) -> "KernelPlan":
        known = {f for f in cls.__dataclass_fields__}
        return cls(**{k: v for k, v in d.items() if k in known})


def autotune_cache_path() -> Path:
    """Where tuned plans persist across processes."""
    env = os.environ.get("REPRO_AUTOTUNE_CACHE")
    if env:
        return Path(env)
    return Path.home() / ".cache" / "repro" / "autotune.json"


def _default_machine() -> MachineSpec:
    cpus = os.cpu_count() or 4
    return AMD_48CORE if cpus >= 16 else DESKTOP_QUAD


class Autotuner:
    """Price the scan strategies on a machine model and remember the pick.

    Parameters
    ----------
    machine:
        the :class:`~repro.simulator.machine.MachineSpec` cost model;
        defaults to the preset closest to this host's core count.
    cache_bytes:
        last-level cache size assumed when sizing the flat scan's query
        chunk (the score block should stay resident between the GEMM and
        the selection pass).
    path:
        plan-cache file; ``None`` uses :func:`autotune_cache_path`.
        ``persist=False`` keeps the tuner purely in-memory.
    """

    def __init__(
        self,
        machine: MachineSpec | None = None,
        *,
        cache_bytes: int = 8 << 20,
        path: str | os.PathLike | None = None,
        persist: bool = True,
    ) -> None:
        self.machine = machine or _default_machine()
        self.cache_bytes = int(cache_bytes)
        self.persist = bool(persist)
        self._path = Path(path) if path is not None else None
        self._plans: dict[str, KernelPlan] | None = None

    # ------------------------------------------------------------ storage
    @property
    def path(self) -> Path:
        return self._path if self._path is not None else autotune_cache_path()

    def _load(self) -> dict[str, KernelPlan]:
        if self._plans is not None:
            return self._plans
        plans: dict[str, KernelPlan] = {}
        if self.persist and self.path.exists():
            try:
                raw = json.loads(self.path.read_text())
                plans = {
                    k: KernelPlan.from_dict(v) for k, v in raw.items()
                }
            except (OSError, ValueError, TypeError):
                plans = {}  # corrupt cache: retune rather than crash
        self._plans = plans
        return plans

    def _save(self) -> None:
        if not self.persist or self._plans is None:
            return
        try:
            path = self.path
            path.parent.mkdir(parents=True, exist_ok=True)
            fd, tmp = tempfile.mkstemp(
                dir=str(path.parent), suffix=".tmp"
            )
            with os.fdopen(fd, "w") as fh:
                json.dump(
                    {k: p.to_dict() for k, p in self._plans.items()},
                    fh,
                    indent=2,
                )
            os.replace(tmp, path)
        except OSError:
            pass  # read-only home: plans stay in-memory for this process

    # --------------------------------------------------------- cost model
    def _flat_ms(self, n: int, d: int, quantizer: str, backend: str) -> float:
        """Per-query cost of the flat certified scan, in milliseconds."""
        mach = self.machine
        bpd = _BYTES_PER_DIM.get((quantizer, backend), 4.0)
        scan = mach.op_time(
            Op(kind="gemm", flops=2.0 * n * d, bytes=n * d * bpd,
               vectorizable=True, tag="autotune:flat")
        )
        # frontier selection: one argpartition pass over the n scores
        select = mach.op_time(
            Op(kind="reduce", flops=4.0 * n, bytes=4.0 * n,
               vectorizable=False, tag="autotune:select")
        )
        return (scan + select) * 1e3

    def _grouped_ms(self, n: int, d: int, cand_frac: float) -> float:
        """Per-query cost of the pruned grouped stage-2 scan (float32
        decode cache), including the per-group dispatch overhead the flat
        path does not pay."""
        mach = self.machine
        n_cand = max(1.0, cand_frac * n)
        scan = mach.op_time(
            Op(kind="gemm", flops=2.0 * n_cand * d, bytes=4.0 * n_cand * d,
               vectorizable=True, tag="autotune:grouped")
        )
        # survivor selection (bound filter + rank + float64 re-rank) over
        # the candidates — the grouped path's analogue of the flat select;
        # without it the model calls grouped "free" at cand_frac ~ 1 where
        # the pruned scan is really a slower full scan
        select = mach.op_time(
            Op(kind="reduce", flops=4.0 * n_cand, bytes=4.0 * n_cand,
               vectorizable=False, tag="autotune:grouped-select")
        )
        # the grouped quant path re-ranks every certified survivor in
        # float64 (the flat path re-ranks only k' = ck per query, which
        # is negligible) — at cand_frac ~ 1 this is a second full scan,
        # which is exactly why flat must win when pruning doesn't bite
        rerank = mach.op_time(
            Op(kind="gemm", flops=2.0 * n_cand * d, bytes=8.0 * n_cand * d,
               vectorizable=True, tag="autotune:grouped-rerank")
        )
        scan += select + rerank
        # stage 1 against ~sqrt(n) representatives + per-group dispatch,
        # amortized over the 256-query chunks the exact search batches
        n_groups = max(1.0, n**0.5)
        stage1 = mach.op_time(
            Op(kind="gemm", flops=2.0 * n_groups * d,
               bytes=4.0 * n_groups * d, vectorizable=True,
               tag="autotune:stage1")
        )
        dispatch = n_groups * self.machine.sync_overhead_us * 1e-6 / 256.0
        return (scan + stage1 + dispatch) * 1e3

    def _row_chunk(self, n: int) -> int:
        """Largest power-of-two chunk whose float32 score block fits the
        assumed last-level cache (clamped to [32, 256])."""
        chunk = 32
        while chunk < 256 and (2 * chunk) * n * 4 <= self.cache_bytes:
            chunk *= 2
        return chunk

    # ---------------------------------------------------------- interface
    def plan_for(
        self,
        algo: str,
        n: int,
        d: int,
        *,
        kernel: str = "gram",
        backend: str | None = None,
        quantizer: str | None = None,
        cand_frac: float = 1.0,
    ) -> KernelPlan:
        """The tuned :class:`KernelPlan` for a workload shape.

        ``cand_frac`` is the caller's estimate of the fraction of the
        database surviving the pruning rules (``ExactRBC`` probes it
        cheaply at ``warm()``); it decides the flat-vs-grouped race, so
        it is part of the memo key (bucketed to deciles — the race is a
        coarse crossover, and fine-grained keys would shatter the cache).
        Results are memoized per ``(algo, log2 n, d, kernel, backend,
        cand_frac decile)`` and persisted.
        """
        if backend is None:
            from ..metrics.jit import kernel_backend

            backend = kernel_backend(quantizer)
        n = max(int(n), 1)
        cf = min(max(float(cand_frac), 0.0), 1.0)
        cf_bucket = int(round(cf * 10.0))
        key = (
            f"{algo}|n{max(n, 2).bit_length() - 1}|d{d}|{kernel}|{backend}"
            f"|cf{cf_bucket}"
        )
        plans = self._load()
        cached = plans.get(key)
        if cached is not None and (
            quantizer is None or cached.quantizer == quantizer
        ):
            return cached

        q = quantizer or ("pq" if backend == "numba" and d >= 64 else "int8")
        flat_ms = self._flat_ms(n, d, q, backend)
        grouped_ms = self._grouped_ms(n, d, cand_frac)
        plan = KernelPlan(
            quantizer=q,
            strategy="flat" if flat_ms <= grouped_ms else "grouped",
            backend=backend,
            row_chunk=self._row_chunk(n),
            over_fetch=4,
            cand_frac=cf,
            predicted_ms={
                "flat": round(flat_ms, 6), "grouped": round(grouped_ms, 6)
            },
        )
        plans[key] = plan
        self._save()
        return plan


#: process-wide tuner the index classes consult at ``warm()``
default_autotuner = Autotuner()
