"""Distributed nearest-neighbor engines (paper §8's future-work study).

Two engines over the same :class:`~repro.distributed.cluster.ClusterSpec`:

* :class:`DistributedRBC` — the paper's proposal: the database is
  distributed *by representative*; each node stores some representatives
  with their complete ownership lists.  A query is pruned at the
  coordinator using the exact-search rules (one small ``BF(Q, R)`` — the
  representative table is tiny, O(√n), and lives on the coordinator), then
  travels only to the nodes hosting its surviving representatives.  The
  second brute-force stage is entirely node-local, and the result merge is
  k values per contacted node.  Answers are exact.

* :class:`DistributedBruteForce` — the baseline: random row sharding;
  every query is broadcast to every node, every node scans its full shard,
  and the coordinator merges.

Both engines really execute their searches (results are verified exact in
the tests); nodes are simulated in-process, with per-node work recorded as
operation traces and communication counted message-by-message.  The
returned :class:`DistRunReport` breaks the modeled time into coordinator
compute, scatter, node compute (max over nodes), gather, and merge — the
"I/O and communication costs" the paper flags for study.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..core.exact import ExactRBC
from ..metrics import get_metric
from ..obs.tracing import NULL_TRACER, SpanContext, Tracer
from ..parallel.bruteforce import _record_dist_tile
from ..parallel.reduce import EMPTY_IDX, merge_topk, topk_of_block
from ..runtime.context import ExecContext, resolve_ctx
from ..simulator.machine import simulate
from ..simulator.trace import TraceRecorder
from .cluster import ClusterSpec, CommStats
from .partition import partition_by_representatives, partition_random

__all__ = ["DistRunReport", "DistributedRBC", "DistributedBruteForce"]

_ID_BYTES = 8.0
_FLOAT_BYTES = 8.0


@dataclass
class DistRunReport:
    """Cost breakdown of one distributed query batch."""

    n_queries: int
    #: distance evaluations performed by each node
    node_evals: list[int]
    comm: CommStats
    coordinator_s: float
    scatter_s: float
    compute_s: float  # max over nodes
    gather_s: float
    merge_s: float
    #: per-node modeled compute seconds (diagnostics / balance)
    node_compute_s: list[float] = field(default_factory=list)

    @property
    def total_s(self) -> float:
        return (
            self.coordinator_s
            + self.scatter_s
            + self.compute_s
            + self.gather_s
            + self.merge_s
        )

    @property
    def comm_fraction(self) -> float:
        t = self.total_s
        return (self.scatter_s + self.gather_s) / t if t > 0 else 0.0

    @property
    def balance(self) -> float:
        """Mean/max node compute time (1.0 = perfectly balanced)."""
        if not self.node_compute_s or max(self.node_compute_s) == 0:
            return 1.0
        return float(np.mean(self.node_compute_s) / max(self.node_compute_s))


def _node_tracer(span_ctx: SpanContext | None) -> Tracer:
    """Node-side tracer parented under the coordinator's query span.

    The span context is the telemetry part of the coordinator→node
    message: it rides along with the routed tasks, the node records its
    scan under it, and the finished spans travel back with the results to
    be adopted into the coordinator's timeline.
    """
    return Tracer(root=span_ctx) if span_ctx is not None else NULL_TRACER


def _node_compute_time(node_spec, metric, dim, eval_counts: list[int]) -> float:
    """Modeled time for one node to run its per-query candidate scans."""
    rec = TraceRecorder()
    with rec.phase("node"):
        for c in eval_counts:
            if c > 0:
                _record_dist_tile(rec, metric, 1, c, dim, "node:scan")
    return simulate(rec.trace, node_spec).time_s


class DistributedRBC:
    """Exact distributed k-NN with representative-based sharding."""

    def __init__(
        self,
        cluster: ClusterSpec,
        metric="euclidean",
        *,
        seed: int | np.random.Generator | None = 0,
    ) -> None:
        self.cluster = cluster
        self.metric = get_metric(metric)
        self.seed = seed
        self.index: ExactRBC | None = None
        #: representative indices hosted by each node
        self.node_reps: list[list[int]] = []
        #: node hosting each representative
        self.rep_node: np.ndarray | None = None
        self.last_report: DistRunReport | None = None

    def build(
        self,
        X,
        n_reps: int | None = None,
        *,
        c: float = 1.0,
        ctx: ExecContext | None = None,
    ):
        """Build the cover centrally, then shard lists by representative.

        Build communication is one-time: each node receives its
        representatives' points (counted in ``build_comm``).  ``ctx``
        carries the coordinator-side execution state (executor, recorder)
        into the central :class:`ExactRBC` build.
        """
        self.index = ExactRBC(metric=self.metric, seed=self.seed)
        self.index.build(X, n_reps=n_reps, c=c, ctx=resolve_ctx(ctx).transport())
        sizes = [lst.size for lst in self.index.lists]
        self.node_reps = partition_by_representatives(
            sizes, self.cluster.n_nodes
        )
        self.rep_node = np.empty(self.index.n_reps, dtype=np.int64)
        for w, reps in enumerate(self.node_reps):
            for j in reps:
                self.rep_node[j] = w
        dim = self.metric.dim(X)
        self.build_comm = CommStats(
            bytes_to_nodes=[
                float(
                    sum(sizes[j] for j in reps) * dim * _FLOAT_BYTES
                )
                for reps in self.node_reps
            ],
            bytes_from_nodes=[0.0] * self.cluster.n_nodes,
            messages=self.cluster.n_nodes,
        )
        return self

    def points_per_node(self) -> list[int]:
        """How many database points each node stores."""
        if self.index is None:
            raise RuntimeError("call build(X) first")
        return [
            int(sum(self.index.lists[j].size for j in reps))
            for reps in self.node_reps
        ]

    def query(
        self, Q, k: int = 1, *, ctx: ExecContext | None = None
    ) -> tuple[np.ndarray, np.ndarray]:
        """Exact k-NN over the cluster; cost breakdown in ``last_report``.

        ``ctx.recorder`` (when set) additionally receives the coordinator
        and node-scan operation phases, so a distributed run shows up in a
        harness :class:`~repro.runtime.report.RunReport` like any other.
        """
        if self.index is None:
            raise RuntimeError("call build(X) first")
        rctx = resolve_ctx(ctx)
        run_rec = rctx.recorder
        tracer = rctx.tracer
        idx = self.index
        metric = self.metric
        cluster = self.cluster
        Qb = Q if isinstance(Q, np.ndarray) and Q.ndim == 2 else metric._as_batch(Q)
        m = metric.length(Qb)
        dim = metric.dim(Qb)
        nr = idx.n_reps

        query_span = tracer.start_span("dist:query", engine="rbc", m=m, k=k)
        # ---- coordinator: BF(Q, R), gamma, pruning (exact-search rules)
        coord_rec = TraceRecorder()
        with tracer.span_under(query_span.context, "dist:coord", n_reps=nr), \
                run_rec.phase("coord:stage1"), coord_rec.phase("coord:stage1"):
            D_R = metric.pairwise(Qb, idx.rep_data)
            _record_dist_tile(coord_rec, metric, m, nr, dim, "coord:stage1")
            if run_rec.enabled:
                _record_dist_tile(run_rec, metric, m, nr, dim, "coord:stage1")
        kk = min(k, nr)
        # gamma = distance to the k-th nearest representative, an upper
        # bound on the k-th NN distance.  With fewer representatives than
        # k no such bound exists — the nr-th rep distance does NOT bound
        # the k-th neighbor — so pruning is disabled (same guard as
        # ExactRBC.query) and every list is scanned in full.
        if nr >= k:
            gamma = np.partition(D_R, kk - 1, axis=1)[:, kk - 1]
        else:
            gamma = np.full(m, np.inf)

        keep = (D_R - idx.radii[None, :] < gamma[:, None]) & (
            D_R <= 3.0 * gamma[:, None]
        )
        coordinator_s = simulate(coord_rec.trace, cluster.coordinator_spec).time_s

        # ---- routing: which queries touch which node, and their candidates
        per_node_tasks: list[list[tuple[int, np.ndarray]]] = [
            [] for _ in range(cluster.n_nodes)
        ]
        bytes_to = [0.0] * cluster.n_nodes
        messages = 0
        for qi in range(m):
            js = np.flatnonzero(keep[qi])
            # node-local trim (Claim 2): the node can evaluate the cut
            # itself from rho(q, r) + gamma, both shipped with the query
            touched: dict[int, list[np.ndarray]] = {}
            for j in js:
                cut = np.searchsorted(
                    idx.list_dists[j], D_R[qi, j] + gamma[qi], side="right"
                )
                if cut == 0:
                    continue
                touched.setdefault(int(self.rep_node[j]), []).append(
                    idx.lists[j][:cut]
                )
            # representative seeds keep boundary ties exact; the
            # coordinator already knows their distances, so they cost no
            # communication (handled at merge below)
            for w, cand_parts in touched.items():
                cand = np.concatenate(cand_parts)
                per_node_tasks[w].append((qi, cand))
                # message: query vector + per-rep (id, cut bound) + gamma
                bytes_to[w] += (
                    dim * _FLOAT_BYTES
                    + len(cand_parts) * (_ID_BYTES + _FLOAT_BYTES)
                    + _FLOAT_BYTES
                )
                messages += 1

        # ---- node-local brute force over shipped candidate lists
        # the query span's context is part of each coordinator→node
        # message; nodes record their scans under it and ship the finished
        # spans back with the results
        span_ctx = query_span.context if tracer.enabled else None
        node_evals = [0] * cluster.n_nodes
        node_results: list[list[tuple[int, np.ndarray, np.ndarray]]] = [
            [] for _ in range(cluster.n_nodes)
        ]
        node_times = []
        with run_rec.phase("node:scan"):
            for w, tasks in enumerate(per_node_tasks):
                ntracer = _node_tracer(span_ctx)
                counts = []
                with ntracer.span(
                    "dist:node", node=w, n_queries=len(tasks)
                ) as nspan:
                    for qi, cand in tasks:
                        D2 = metric.pairwise(
                            metric.take(Qb, [qi]), metric.take(idx.X, cand)
                        )
                        d, li = topk_of_block(D2, k)
                        gi = np.where(
                            li[0] >= 0, cand[np.clip(li[0], 0, None)], EMPTY_IDX
                        )
                        node_results[w].append((qi, d[0], gi))
                        node_evals[w] += cand.size
                        counts.append(cand.size)
                        if run_rec.enabled and cand.size:
                            _record_dist_tile(
                                run_rec, metric, 1, cand.size, dim, "node:scan"
                            )
                    nspan.set(evals=node_evals[w])
                tracer.adopt(ntracer.export())
                node_times.append(
                    _node_compute_time(cluster.nodes[w], metric, dim, counts)
                )

        # ---- gather + merge at the coordinator
        bytes_from = [
            len(tasks) * k * (_FLOAT_BYTES + _ID_BYTES)
            for tasks in per_node_tasks
        ]
        # merge width 2k: a representative can arrive both as a seed and
        # inside its own shipped list, and duplicates must not be able to
        # push a genuine neighbor past the merge window before the dedupe
        W = 2 * k
        with tracer.span_under(
            query_span.context, "dist:merge", n_messages=messages
        ):
            seed_order = np.argsort(D_R, axis=1, kind="stable")[:, :kk]
            seed_d = np.take_along_axis(D_R, seed_order, axis=1)
            seed_i = idx.rep_ids[seed_order].astype(np.int64)
            out_d = np.pad(seed_d, ((0, 0), (0, W - kk)), constant_values=np.inf)
            out_i = np.pad(
                seed_i, ((0, 0), (0, W - kk)), constant_values=EMPTY_IDX
            )
            for w in range(cluster.n_nodes):
                for qi, d, gi in node_results[w]:
                    dw = np.pad(d, (0, W - d.size), constant_values=np.inf)
                    gw = np.pad(gi, (0, W - gi.size), constant_values=EMPTY_IDX)
                    md, mi = merge_topk(
                        (out_d[qi : qi + 1], out_i[qi : qi + 1]),
                        (dw[None, :], gw[None, :]),
                    )
                    out_d[qi], out_i[qi] = md[0], mi[0]
            out_d, out_i = _dedupe_batch(out_d, out_i, k)

        merge_s = _merge_time(cluster, m, k, messages)
        tracer.finish(query_span)
        self.last_report = DistRunReport(
            n_queries=m,
            node_evals=node_evals,
            comm=CommStats(bytes_to, bytes_from, messages),
            coordinator_s=coordinator_s,
            scatter_s=cluster.comm_phase_time(bytes_to),
            compute_s=max(node_times) if node_times else 0.0,
            gather_s=cluster.comm_phase_time(bytes_from),
            merge_s=merge_s,
            node_compute_s=node_times,
        )
        return out_d, out_i


class DistributedBruteForce:
    """Exact distributed k-NN with random row sharding (the baseline)."""

    def __init__(
        self,
        cluster: ClusterSpec,
        metric="euclidean",
        *,
        seed: int | np.random.Generator | None = 0,
    ) -> None:
        self.cluster = cluster
        self.metric = get_metric(metric)
        self.rng = (
            seed
            if isinstance(seed, np.random.Generator)
            else np.random.default_rng(seed)
        )
        self.X = None
        self.shards: list[np.ndarray] = []
        self.last_report: DistRunReport | None = None

    def build(self, X, *, ctx: ExecContext | None = None):
        self.X = X
        n = self.metric.length(X)
        if n == 0:
            raise ValueError("database is empty")
        self.shards = partition_random(n, self.cluster.n_nodes, self.rng)
        dim = self.metric.dim(X)
        self.build_comm = CommStats(
            bytes_to_nodes=[
                float(s.size * dim * _FLOAT_BYTES) for s in self.shards
            ],
            bytes_from_nodes=[0.0] * self.cluster.n_nodes,
            messages=self.cluster.n_nodes,
        )
        return self

    def points_per_node(self) -> list[int]:
        if self.X is None:
            raise RuntimeError("call build(X) first")
        return [int(s.size) for s in self.shards]

    def query(
        self, Q, k: int = 1, *, ctx: ExecContext | None = None
    ) -> tuple[np.ndarray, np.ndarray]:
        if self.X is None:
            raise RuntimeError("call build(X) first")
        rctx = resolve_ctx(ctx)
        run_rec = rctx.recorder
        tracer = rctx.tracer
        metric = self.metric
        cluster = self.cluster
        Qb = Q if isinstance(Q, np.ndarray) and Q.ndim == 2 else metric._as_batch(Q)
        m = metric.length(Qb)
        dim = metric.dim(Qb)

        query_span = tracer.start_span("dist:query", engine="bf", m=m, k=k)
        span_ctx = query_span.context if tracer.enabled else None
        # broadcast all queries to all *storing* nodes: a shard that holds
        # no points is never contacted and must not be charged traffic
        bytes_to = [
            float(m * dim * _FLOAT_BYTES) if shard.size else 0.0
            for shard in self.shards
        ]
        node_evals = []
        node_times = []
        partials = []
        with run_rec.phase("node:scan"):
            for w, shard in enumerate(self.shards):
                if shard.size == 0:
                    node_evals.append(0)
                    node_times.append(0.0)
                    partials.append(None)
                    continue
                ntracer = _node_tracer(span_ctx)
                with ntracer.span("dist:node", node=w, shard=int(shard.size)):
                    D = metric.pairwise(Qb, metric.take(self.X, shard))
                    d, li = topk_of_block(D, k)
                    gi = np.where(
                        li >= 0, shard[np.clip(li, 0, None)], EMPTY_IDX
                    )
                tracer.adopt(ntracer.export())
                partials.append((d, gi))
                node_evals.append(int(D.size))
                if run_rec.enabled:
                    _record_dist_tile(
                        run_rec, metric, m, shard.size, dim, "node:scan"
                    )
                rec = TraceRecorder()
                with rec.phase("node"):
                    _record_dist_tile(rec, metric, m, shard.size, dim, "node:scan")
                node_times.append(simulate(rec.trace, cluster.nodes[w]).time_s)

        # gather traffic mirrors the scatter: only nodes that actually ran
        # a scan (``partials`` entry not ``None``) send results back, so
        # inactive shards contribute zero bytes and zero messages
        bytes_from = [
            float(m * k * (_FLOAT_BYTES + _ID_BYTES)) if part is not None else 0.0
            for part in partials
        ]
        n_active = sum(1 for part in partials if part is not None)
        with tracer.span_under(
            query_span.context, "dist:merge", n_messages=n_active
        ):
            out_d = np.full((m, k), np.inf)
            out_i = np.full((m, k), EMPTY_IDX, dtype=np.int64)
            for part in partials:
                if part is not None:
                    out_d, out_i = merge_topk((out_d, out_i), part)
        tracer.finish(query_span)

        self.last_report = DistRunReport(
            n_queries=m,
            node_evals=node_evals,
            comm=CommStats(bytes_to, bytes_from, 2 * n_active),
            coordinator_s=0.0,
            scatter_s=cluster.comm_phase_time(bytes_to),
            compute_s=max(node_times) if node_times else 0.0,
            gather_s=cluster.comm_phase_time(bytes_from),
            merge_s=_merge_time(cluster, m, k, n_active),
            node_compute_s=node_times,
        )
        return out_d, out_i


def _merge_time(cluster: ClusterSpec, m: int, k: int, n_messages: int) -> float:
    """Coordinator-side merge cost: a tree of k-way row merges."""
    from ..simulator.trace import Op, Phase, Trace

    if n_messages == 0:
        return 0.0
    flops = 4.0 * m * k * max(1, int(np.ceil(np.log2(n_messages + 1))))
    trace = Trace([Phase("merge", [Op("reduce", flops, 8.0 * m * k)])])
    return simulate(trace, cluster.coordinator_spec).time_s


def _dedupe_batch(d: np.ndarray, i: np.ndarray, k: int):
    """Representative seeds also live in some node's list; drop repeats."""
    from ..parallel.reduce import dedupe_rows

    return dedupe_rows(d, i, k)
