"""Database partitioning strategies for the distributed RBC.

The paper's suggestion (§8) is to distribute "the database according to
the representatives": each node holds a set of representatives together
with their complete ownership lists, so the second search stage for any
query is entirely node-local.  The alternative every distributed system
starts from — random (row) sharding — spreads every query's candidates
over all nodes, forcing a full broadcast.  The benchmark compares both.
"""

from __future__ import annotations

import numpy as np

from ..parallel.scheduler import lpt_assign

__all__ = [
    "partition_by_representatives",
    "partition_random",
    "partition_reps_random",
]


def partition_by_representatives(
    list_sizes: list[int], n_nodes: int
) -> list[list[int]]:
    """Assign representative ids to nodes, balancing owned-point counts.

    Greedy LPT on list sizes: representatives with the largest ownership
    lists are placed first onto the least-loaded node.  Returns, per node,
    the representative indices it hosts.
    """
    if n_nodes < 1:
        raise ValueError("n_nodes must be >= 1")
    assignment = lpt_assign([float(s) for s in list_sizes], n_nodes)
    return [sorted(reps) for reps in assignment]


def partition_random(
    n: int, n_nodes: int, rng: np.random.Generator
) -> list[np.ndarray]:
    """Random row sharding: each point to a uniform node.  Returns, per
    node, the global point ids it stores."""
    if n_nodes < 1:
        raise ValueError("n_nodes must be >= 1")
    owner = rng.integers(n_nodes, size=n)
    return [np.flatnonzero(owner == w).astype(np.int64) for w in range(n_nodes)]


def partition_reps_random(
    n_reps: int, n_nodes: int, rng: np.random.Generator
) -> list[list[int]]:
    """Random *representative* sharding: each representative (with its
    complete ownership list) to a uniform node — the load-oblivious
    counterpart of :func:`partition_by_representatives`, useful as a
    skew baseline for the sharded serving path.  Returns, per node, the
    representative indices it hosts."""
    return [
        [int(j) for j in part]
        for part in partition_random(n_reps, n_nodes, rng)
    ]
