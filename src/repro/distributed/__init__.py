"""Distributed RBC: the paper's §8 future-work study, carried out.

The database is sharded by representative (each node holds some
representatives with their full ownership lists); queries are pruned at a
coordinator with the exact-search rules and travel only to the nodes that
can own their answers.  Compared against broadcast-everything random
sharding, with communication and per-node compute accounted explicitly.
"""

from .cluster import ClusterSpec, CommStats, NetworkSpec
from .engine import DistributedBruteForce, DistributedRBC, DistRunReport
from .partition import (
    partition_by_representatives,
    partition_random,
    partition_reps_random,
)

__all__ = [
    "ClusterSpec",
    "CommStats",
    "NetworkSpec",
    "DistributedBruteForce",
    "DistributedRBC",
    "DistRunReport",
    "partition_by_representatives",
    "partition_random",
    "partition_reps_random",
]
