"""Cluster model: compute nodes joined by a network.

Paper §8 proposes exactly this study: "an interesting direction for future
work is to explore the performance of the RBC in a distributed or
multi-GPU environment.  The RBC data structure suggests a simple
distribution of the database according to the representatives...  There
are many interesting details for study here, such as I/O and communication
costs."  This package carries out that study.

A :class:`ClusterSpec` is a coordinator plus ``n_nodes`` worker nodes —
each an arbitrary :class:`~repro.simulator.machine.MachineSpec` (CPU or
GPU model, enabling the multi-GPU variant) — connected by links with
latency and bandwidth.  Message cost is the standard alpha-beta model
``latency + bytes / bandwidth``; scatters/gathers to distinct nodes
overlap (different links), so a communication phase costs the max over
nodes, plus a per-message coordinator occupancy charge.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..simulator.machine import MachineSpec

__all__ = ["NetworkSpec", "ClusterSpec", "CommStats"]


@dataclass(frozen=True)
class NetworkSpec:
    """Point-to-point link model (alpha-beta)."""

    latency_us: float = 25.0  # per-message latency (switch + stack)
    bandwidth_gbs: float = 10.0  # per-link bandwidth
    #: coordinator-side per-message CPU occupancy (serialization etc.)
    per_message_overhead_us: float = 2.0

    def __post_init__(self) -> None:
        if self.latency_us < 0 or self.bandwidth_gbs <= 0:
            raise ValueError("invalid network parameters")

    def message_time(self, n_bytes: float) -> float:
        """Seconds to move one message of ``n_bytes`` over one link."""
        return self.latency_us * 1e-6 + n_bytes / (self.bandwidth_gbs * 1e9)


@dataclass(frozen=True)
class ClusterSpec:
    """A coordinator plus homogeneous (or mixed) worker nodes."""

    nodes: tuple[MachineSpec, ...]
    network: NetworkSpec = field(default_factory=NetworkSpec)
    coordinator: MachineSpec | None = None  # defaults to nodes[0]'s spec

    def __post_init__(self) -> None:
        if not self.nodes:
            raise ValueError("cluster needs at least one node")

    @property
    def n_nodes(self) -> int:
        return len(self.nodes)

    @property
    def coordinator_spec(self) -> MachineSpec:
        return self.coordinator if self.coordinator is not None else self.nodes[0]

    @classmethod
    def homogeneous(
        cls,
        n_nodes: int,
        node: MachineSpec,
        network: NetworkSpec | None = None,
    ) -> "ClusterSpec":
        if n_nodes < 1:
            raise ValueError("n_nodes must be >= 1")
        return cls(
            nodes=tuple([node] * n_nodes),
            network=network or NetworkSpec(),
        )

    def comm_phase_time(self, bytes_per_node: list[float]) -> float:
        """Time for one scatter or gather.

        Transfers to distinct nodes ride distinct links and overlap; the
        coordinator serially pays a small per-message overhead.
        """
        if len(bytes_per_node) != self.n_nodes:
            raise ValueError("one byte count per node required")
        active = [b for b in bytes_per_node if b > 0]
        if not active:
            return 0.0
        slowest = max(self.network.message_time(b) for b in active)
        coord = len(active) * self.network.per_message_overhead_us * 1e-6
        return slowest + coord


@dataclass
class CommStats:
    """Communication accounting for one distributed operation."""

    bytes_to_nodes: list[float] = field(default_factory=list)
    bytes_from_nodes: list[float] = field(default_factory=list)
    messages: int = 0

    @classmethod
    def zeros(cls, n_nodes: int) -> "CommStats":
        """An all-zero accumulator for ``n_nodes`` nodes."""
        return cls([0.0] * n_nodes, [0.0] * n_nodes, 0)

    @property
    def total_bytes(self) -> float:
        return sum(self.bytes_to_nodes) + sum(self.bytes_from_nodes)

    @property
    def active_nodes(self) -> int:
        """Nodes that moved any traffic in either direction."""
        return sum(
            1
            for to, frm in zip(self.bytes_to_nodes, self.bytes_from_nodes)
            if to > 0 or frm > 0
        )

    def add(self, other: "CommStats") -> "CommStats":
        """Accumulate another operation's traffic in place (the sharded
        serving path folds one ``CommStats`` per micro-batch into a
        per-stream total).  Returns ``self``."""
        if len(other.bytes_to_nodes) != len(self.bytes_to_nodes) or len(
            other.bytes_from_nodes
        ) != len(self.bytes_from_nodes):
            raise ValueError("cannot add CommStats of different node counts")
        for w, b in enumerate(other.bytes_to_nodes):
            self.bytes_to_nodes[w] += b
        for w, b in enumerate(other.bytes_from_nodes):
            self.bytes_from_nodes[w] += b
        self.messages += other.messages
        return self

    def to_dict(self) -> dict:
        return {
            "bytes_to_nodes": list(self.bytes_to_nodes),
            "bytes_from_nodes": list(self.bytes_from_nodes),
            "messages": int(self.messages),
        }
