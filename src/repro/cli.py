"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``info``
    Registry contents: paper-analog datasets, metrics, machine presets.
``build``
    Build an RBC index from a ``.npy`` array or a registry dataset name
    and save it to ``.npz``.
``query``
    Load a saved index and run k-NN queries from a ``.npy`` file; prints
    neighbors and work statistics.
``dim``
    Estimate the expansion rate (Definition 1) of a dataset.
``compare``
    Quick exact-RBC vs brute-force comparison on a dataset — a one-command
    taste of Figure 2.
``knn-graph``
    Build the exact k-NN graph of a dataset (RBC-accelerated all-k-NN)
    and save the ``(dist, idx)`` arrays to ``.npz``.
``serve-bench``
    Streaming-serving benchmark: replay a query-arrival trace through a
    per-call server and a resident micro-batched server, print latency
    percentiles and throughput, verify the answers are identical.
    ``--trace`` saves a Chrome-trace JSON of the batched run.
``explain``
    Serve a few queries with EXPLAIN capture and print each one's
    decision digest: router choice and per-backend cost scores, cache
    outcome with the tolerance radius, pruning-rule attribution,
    quantized-tier stats, shard fan-out.
``report``
    Pretty-print any saved observability artifact — a ``RunReport`` /
    ``StreamReport`` / serve-bench JSON, a Chrome-trace file, a span
    dump, a metrics-snapshot JSONL, or a flight-recorder bundle
    directory (auto-detected by its ``manifest.json``).
``metrics``
    Run a small instrumented serving stream and print the metrics
    registry's Prometheus text exposition plus the SLO summary.
"""

from __future__ import annotations

import argparse
import sys
import time

import numpy as np

__all__ = ["main"]


def _load_data(spec: str, scale: float, n_queries: int):
    """Resolve a data spec: registry dataset name or a .npy path."""
    from .data import DATASETS, load

    if spec in DATASETS:
        return load(spec, scale=scale, n_queries=n_queries)
    X = np.load(spec)
    if X.ndim != 2:
        raise SystemExit(f"expected a 2-d array in {spec}, got shape {X.shape}")
    return X, None


def _cmd_info(args) -> int:
    from .data import table1_rows
    from .eval import format_table
    from .metrics import available_metrics
    from .simulator import AMD_48CORE, DESKTOP_QUAD, SEQUENTIAL, TESLA_C2050

    print(
        format_table(
            ["dataset", "paper n", "n @ default scale", "dim", "intrinsic"],
            [list(r) for r in table1_rows()],
            title="Paper-analog datasets (Table 1)",
        )
    )
    print("\nmetrics:", ", ".join(available_metrics()))
    print("\nmachine models:")
    for m in (AMD_48CORE, DESKTOP_QUAD, SEQUENTIAL, TESLA_C2050):
        print(
            f"  {m.name:20s} workers={m.n_workers:3d} "
            f"peak={m.peak_gflops:7.1f} GFLOP/s "
            f"bw={m.mem_bandwidth_gbs:g} GB/s"
        )
    return 0


def _cmd_build(args) -> int:
    from .core import ExactRBC, OneShotRBC, save_index

    X, _ = _load_data(args.data, args.scale, n_queries=0)
    t0 = time.perf_counter()
    if args.algorithm == "exact":
        index = ExactRBC(metric=args.metric, seed=args.seed)
        index.build(X, n_reps=args.n_reps)
    else:
        index = OneShotRBC(metric=args.metric, seed=args.seed)
        index.build(X, n_reps=args.n_reps, s=args.s)
    elapsed = time.perf_counter() - t0
    save_index(index, args.output)
    bs = index.build_stats
    print(
        f"built {args.algorithm} RBC over {bs.n_points} points: "
        f"{bs.n_reps} representatives, mean list {bs.mean_list:.1f}, "
        f"{bs.build_evals} distance evaluations, {elapsed:.2f}s"
    )
    print(f"saved to {args.output}")
    return 0


def _cmd_query(args) -> int:
    from .core import load_index

    index = load_index(args.index)
    Q = np.load(args.queries)
    t0 = time.perf_counter()
    dist, idx = index.query(np.atleast_2d(Q), k=args.k)
    elapsed = time.perf_counter() - t0
    st = index.last_stats
    for r in range(min(dist.shape[0], args.show)):
        pairs = ", ".join(
            f"#{int(i)} @ {d:.4g}" for d, i in zip(dist[r], idx[r]) if i >= 0
        )
        print(f"query {r}: {pairs}")
    print(
        f"\n{dist.shape[0]} queries in {elapsed:.3f}s; "
        f"{st.per_query_evals():.0f} distance evaluations/query "
        f"(database holds {index.n})"
    )
    return 0


def _cmd_dim(args) -> int:
    from .dimension import estimate_expansion_rate

    X, _ = _load_data(args.data, args.scale, n_queries=0)
    est = estimate_expansion_rate(
        X, args.metric, n_centers=args.centers, seed=args.seed
    )
    print(
        f"expansion rate c = {est.c:.2f} (median {est.c_median:.2f}, "
        f"max {est.c_max:.2f}) over {est.n_centers} centers"
    )
    print(f"growth dimension log2(c) = {est.log2_c:.2f}")
    return 0


def _cmd_compare(args) -> int:
    import inspect

    from .baselines import BruteForceIndex
    from .core import ExactRBC
    from .eval import traced_query
    from .index import create_index
    from .runtime import ExecContext
    from .simulator import AMD_48CORE

    X, Q = _load_data(args.data, args.scale, n_queries=args.queries)
    if Q is None:
        rng = np.random.default_rng(args.seed)
        take = rng.choice(X.shape[0], size=args.queries, replace=False)
        Q = X[take]
    # both runs execute under an ExecContext; the harness adds the recorder
    brute = BruteForceIndex().build(X)
    b = traced_query(
        brute, Q, [AMD_48CORE], k=args.k, ctx=ExecContext(tile_cols=2048)
    )
    name = args.index
    rbc = create_index(name, lenient=True, metric="euclidean", seed=args.seed)
    if "n_reps" in inspect.signature(rbc.build).parameters:
        rbc.build(X, n_reps=args.n_reps)
    else:
        rbc.build(X)
    r = traced_query(rbc, Q, [AMD_48CORE], k=args.k, ctx=ExecContext())
    caps = rbc.capabilities()
    same = bool(np.allclose(b.dist, r.dist, atol=1e-6))
    print(f"database {X.shape[0]} x {X.shape[1]}, {Q.shape[0]} queries, k={args.k}")
    if caps.exact:
        print(f"answers identical: {same}")
    else:
        hits = sum(
            len(set(r.idx[t]) & set(b.idx[t])) for t in range(Q.shape[0])
        )
        recall = hits / float(Q.shape[0] * args.k)
        print(f"{name} is approximate: recall@{args.k} = {recall:.4f}")
    print(f"work:        brute {b.evals:>12d} evals | {name} {r.evals:>12d} "
          f"({b.evals / max(r.evals, 1):.1f}x less)")
    print(
        f"48-core sim: brute {b.sim_time(AMD_48CORE) * 1e3:9.3f} ms | {name} "
        f"{r.sim_time(AMD_48CORE) * 1e3:9.3f} ms "
        f"({b.sim_time(AMD_48CORE) / max(r.sim_time(AMD_48CORE), 1e-12):.1f}x faster)"
    )
    decision = getattr(rbc, "last_decision", None)
    if decision is not None:
        print(
            f"routed to:   {decision.backend} (rung {decision.rung}, "
            f"c_est {decision.c_est:.2f}, predicted "
            f"{decision.predicted_s * 1e3:.3f} ms, measured "
            f"{decision.measured_s * 1e3:.3f} ms)"
        )
    if args.quantize and name not in ("rbc-exact", "exact"):
        print("(--quantize applies to --index rbc-exact only; skipping)")
        args.quantize = None
    if args.quantize:
        ctx = ExecContext(engine=True)
        qidx = ExactRBC(seed=args.seed, quantizer=args.quantize).build(
            X, n_reps=args.n_reps
        )
        qidx.warm(ctx)
        qr = traced_query(qidx, Q, [AMD_48CORE], k=args.k, ctx=ctx)
        qsame = bool(
            r.idx is not None and qr.idx is not None
            and np.array_equal(r.idx, qr.idx)
        )
        info = qr.quant or {}
        plan = qidx._quant_plan()
        # bytes one query scans: codes vs the float64 operand it replaces
        float_bytes = X.shape[0] * X.shape[1] * 8
        code_bytes = int(info.get("code_bytes", 0))
        print(
            f"quantized:   {info.get('quantizer', args.quantize)}"
            f"/{info.get('strategy', plan.strategy)} "
            f"({info.get('backend', plan.backend)}) "
            f"{qr.wall_s * 1e3:9.3f} ms vs rbc {r.wall_s * 1e3:9.3f} ms "
            f"({r.wall_s / max(qr.wall_s, 1e-12):.1f}x)"
        )
        print(
            f"  ids identical: {qsame}; bytes/scan {code_bytes} vs "
            f"{float_bytes} float64 "
            f"({float_bytes / max(code_bytes, 1):.1f}x less moved)"
        )
        if "recall_before_rerank" in info:
            print(
                f"  recall before re-rank: "
                f"{info['recall_before_rerank']:.4f} "
                f"(k'={info.get('k_prime', '?')}, exact after re-rank)"
            )
        if args.report:
            print("\n" + qr.summary())
    if args.report:
        print("\n" + b.summary())
        print("\n" + r.summary())
    return 0


def _cmd_serve_bench(args) -> int:
    import json

    from .core import ExactRBC, OneShotRBC
    from .eval import format_table
    from .obs import SLOMonitor, Tracer
    from .runtime import ExecContext
    from .serving import (
        BatchPolicy,
        CachePolicy,
        HedgePolicy,
        ShardedStreamingSearcher,
        StreamingSearcher,
        make_scenario,
    )

    X, Q = _load_data(args.data, args.scale, n_queries=args.queries)
    if Q is None:
        rng = np.random.default_rng(args.seed)
        take = rng.choice(X.shape[0], size=args.queries, replace=False)
        Q = X[take]
    arrivals = None
    scenario_params = None
    if args.scenario:
        # the whole trace — content skew and arrival process — comes from
        # the explicit seed, so reruns replay byte-identical traffic
        trace = make_scenario(
            args.scenario, Q, n_queries=args.queries, qps=args.qps,
            seed=args.seed,
        )
        Q, arrivals = trace.queries, trace.arrivals
        scenario_params = trace.params
    cache_spec = (
        CachePolicy(
            max_entries=args.cache_size,
            ttl_s=args.cache_ttl if args.cache_ttl > 0 else float("inf"),
        )
        if args.cache
        else None
    )
    if args.index:
        from .index import create_index

        index = create_index(
            args.index, lenient=True, metric="euclidean", seed=args.seed
        )
        index.build(X)
        if args.shards > 1 and not (
            hasattr(index, "shard_target") or hasattr(index, "lists")
        ):
            raise SystemExit(
                "--shards requires an RBC-backed index (rbc-exact or router)"
            )
    elif args.algorithm == "exact":
        index = ExactRBC(seed=args.seed).build(X)
    else:
        if args.shards > 1:
            raise SystemExit("--shards requires --algorithm exact")
        index = OneShotRBC(seed=args.seed).build(X)
    ctx = ExecContext(executor=args.backend) if args.backend else None

    def run(
        max_batch: int,
        label: str,
        tracer: Tracer | None = None,
        cache=None,
        quality=None,
        flight=None,
    ):
        restore = getattr(index, "restore", None)
        if callable(restore):
            # each serving run starts at the router's best-quality rung;
            # SLO breaches during the run may walk it down the ladder
            restore()
        policy = BatchPolicy(max_delay_ms=args.max_delay_ms, max_batch=max_batch)
        run_ctx = ctx
        if tracer is not None:
            run_ctx = (ctx or ExecContext()).with_tracer(tracer)
        slo = SLOMonitor(args.max_delay_ms / 1e3, window_s=float("inf"))
        if args.shards > 1:
            srv_ = ShardedStreamingSearcher(
                index,
                k=args.k,
                policy=policy,
                ctx=run_ctx,
                slo=slo,
                n_shards=args.shards,
                replicas=args.replicas,
                hedge=HedgePolicy() if args.replicas > 1 else None,
                cache=cache,
                quality=quality,
                flight=flight,
            )
        else:
            srv_ = StreamingSearcher(
                index, k=args.k, policy=policy, ctx=run_ctx, slo=slo,
                cache=cache, quality=quality, flight=flight,
            )
        with srv_ as srv:
            if arrivals is not None:
                return srv.search_stream(
                    Q, arrival_times=arrivals, name=label
                )
            return srv.search_stream(Q, qps=args.qps, name=label)

    flight = None
    if args.flight:
        from .obs import FlightRecorder

        flight = FlightRecorder(dir=args.flight)
    tracer = Tracer() if args.trace else None
    per_call = run(1, "per-call")
    # the cache / quality sampler / flight recorder ride the resident run
    # only: answers must still match the uncached per-call baseline
    # bit-for-bit (the zero-recall-loss check)
    batched = run(
        args.max_batch, "resident+batched", tracer, cache_spec,
        args.quality if args.quality > 0 else None, flight,
    )
    if tracer is not None:
        tracer.save(args.trace)
        print(f"wrote {args.trace} ({len(tracer)} spans)")

    identical = bool(
        np.array_equal(per_call.dist, batched.dist)
        and np.array_equal(per_call.idx, batched.idx)
    )
    rows = [
        [
            r.name,
            r.throughput_qps,
            r.latency.p50_s * 1e3,
            r.latency.p95_s * 1e3,
            r.latency.p99_s * 1e3,
            r.mean_batch,
            r.n_batches,
        ]
        for r in (per_call, batched)
    ]
    print(
        f"database {X.shape[0]} x {X.shape[1]}, {Q.shape[0]} queries at "
        f"{args.qps:g} q/s offered, k={args.k}, "
        f"budget {args.max_delay_ms:g} ms"
    )
    if scenario_params is not None:
        knobs = ", ".join(
            f"{k}={v}" for k, v in scenario_params.items()
            if k not in ("scenario", "n_queries", "qps")
        )
        print(f"scenario: {scenario_params['scenario']} ({knobs})")
    print(
        format_table(
            ["server", "q/s", "p50 ms", "p95 ms", "p99 ms", "batch", "flushes"],
            rows,
        )
    )
    speedup = batched.throughput_qps / per_call.throughput_qps
    print(f"\nbatched speedup: {speedup:.1f}x; answers identical: {identical}")
    if cache_spec is not None:
        print(
            f"semantic cache: {batched.cache_hits} hits / "
            f"{batched.cache_misses} misses "
            f"({batched.cache_rejects} certified rejects), "
            f"hit rate {batched.cache_hit_rate:.1%}"
        )
    if batched.quality:
        q = batched.quality
        print(
            f"quality: recall est {q.get('recall_estimate', 0.0):.4f} "
            f"(target {q.get('target', 0.0):g}) from "
            f"{q.get('n_sampled', 0)}/{q.get('n_seen', 0)} sampled, "
            f"{q.get('n_breaches', 0)} breaches"
        )
    if flight is not None and flight.bundles:
        for b in flight.bundles:
            print(f"flight bundle: {b}")
    route_counts = getattr(index, "route_counts", None)
    if callable(route_counts):
        counts = route_counts()
        rung = getattr(index, "rung", 0)
        print(
            f"router: final rung {rung}, batches per backend {counts}"
            + ("" if identical else "\n  (differing answers mean SLO breaches degraded one run's rung)")
        )
    if batched.n_shards:
        print(
            f"sharded over {batched.n_shards} nodes "
            f"(x{args.replicas} replicas): {batched.rounds} rounds, "
            f"{batched.hedges} hedges"
        )
    if args.json:
        payload = {
            "n": int(X.shape[0]),
            "dim": int(X.shape[1]),
            "queries": int(Q.shape[0]),
            "qps_offered": float(args.qps),
            "identical": identical,
            "speedup": speedup,
            "per_call": per_call.to_dict(),
            "batched": batched.to_dict(),
        }
        if scenario_params is not None:
            payload["scenario"] = scenario_params
        with open(args.json, "w") as fh:
            json.dump(payload, fh, indent=2)
        print(f"wrote {args.json}")
    return 0 if identical else 1


def _cmd_explain(args) -> int:
    from .index import create_index
    from .serving import BatchPolicy, StreamingSearcher

    X, Q = _load_data(args.data, args.scale, n_queries=max(args.queries, 1))
    if Q is None:
        rng = np.random.default_rng(args.seed)
        take = rng.choice(X.shape[0], size=max(args.queries, 1), replace=False)
        Q = X[take]
    index = create_index(
        args.index, lenient=True, metric="euclidean", seed=args.seed
    )
    index.build(X)
    with StreamingSearcher(
        index,
        k=args.k,
        policy=BatchPolicy(max_batch=1),
        cache=True if args.cache else None,
        quality=args.quality if args.quality > 0 else None,
    ) as srv:
        for r in range(min(args.queries, Q.shape[0])):
            dist, idx, e = srv.explain_query(Q[r])
            pairs = ", ".join(
                f"#{int(i)} @ {d:.4g}" for d, i in zip(dist, idx) if i >= 0
            )
            print(f"query {r}: {pairs}")
            print(e.summary())
            if args.json:
                import json

                print(json.dumps(e.to_dict(), default=str))
            print()
    return 0


def _print_flight_bundle(bundle, manifest: dict) -> None:
    import json

    print(
        f"flight bundle: reason '{manifest.get('reason', '?')}' "
        f"(v{manifest.get('version', '?')}, clock "
        f"{manifest.get('now')})"
    )
    counts = manifest.get("counts", {})
    print(
        "  rings: "
        + ", ".join(f"{k} {v}" for k, v in sorted(counts.items()))
    )
    files = manifest.get("files", {})
    quality_file = bundle / files.get("quality", "quality.json")
    if quality_file.exists():
        q = json.loads(quality_file.read_text())
        mon = q.get("monitor")
        if mon:
            print(
                f"  quality: recall est {mon.get('recall_estimate', 0.0):.4f} "
                f"(target {mon.get('target', 0.0):g}) over "
                f"{mon.get('n_samples', 0)} samples, "
                f"{mon.get('n_breaches', 0)} breaches"
            )
            for label, agg in sorted(mon.get("by_label", {}).items()):
                print(
                    f"    {label}: n={agg.get('n', 0)} "
                    f"recall={agg.get('recall', 1.0):.4f}"
                )
        drift = q.get("drift")
        if drift:
            from .obs.quality import DriftReport

            print("  " + DriftReport.from_dict(drift).summary())
    events_file = bundle / files.get("events", "events.json")
    if events_file.exists():
        events = json.loads(events_file.read_text())
        if events:
            print(f"  events ({len(events)}):")
            for ev in events[-8:]:
                extra = ", ".join(
                    f"{k}={v}" for k, v in ev.items() if k not in ("kind", "t")
                )
                print(
                    f"    {ev.get('kind', '?')} at t={ev.get('t')}"
                    + (f" ({extra})" if extra else "")
                )
    explains_file = bundle / files.get("explains", "explains.json")
    if explains_file.exists():
        explains = json.loads(explains_file.read_text())
        if explains:
            from .obs.explain import QueryExplain

            print(f"  last of {len(explains)} recorded explains:")
            last = QueryExplain.from_dict(explains[-1])
            for line in last.summary().splitlines():
                print("    " + line)
    trace_file = bundle / files.get("trace", "trace.json")
    if trace_file.exists():
        payload = json.loads(trace_file.read_text())
        if payload.get("traceEvents"):
            print()
            _print_chrome_trace(payload)


def _detect_flight_bundle(path):
    """``(bundle_dir, manifest)`` when ``path`` is a flight bundle (the
    directory or its manifest.json), else ``None``."""
    import json
    from pathlib import Path

    from .obs.flight import BUNDLE_KIND

    p = Path(path)
    manifest_path = None
    if p.is_dir() and (p / "manifest.json").exists():
        manifest_path = p / "manifest.json"
    elif p.is_file() and p.name == "manifest.json":
        manifest_path = p
    if manifest_path is None:
        return None
    try:
        manifest = json.loads(manifest_path.read_text())
    except (OSError, ValueError):
        return None
    if not isinstance(manifest, dict) or manifest.get("kind") != BUNDLE_KIND:
        return None
    return manifest_path.parent, manifest


def _print_chrome_trace(payload: dict) -> None:
    from .eval import format_table

    events = payload.get("traceEvents", [])
    agg: dict[str, list[float]] = {}
    pids = set()
    for ev in events:
        ent = agg.setdefault(ev.get("name", "?"), [0, 0.0])
        ent[0] += 1
        ent[1] += float(ev.get("dur", 0.0))
        pids.add(ev.get("pid"))
    span = max((e.get("ts", 0.0) + e.get("dur", 0.0) for e in events), default=0.0)
    print(
        f"Chrome trace: {len(events)} events across {len(pids)} process(es), "
        f"{span / 1e3:.2f} ms timeline"
    )
    rows = [
        [name, n, total / 1e3, total / n / 1e3]
        for name, (n, total) in sorted(
            agg.items(), key=lambda kv: -kv[1][1]
        )
    ]
    print(format_table(["span", "count", "total ms", "mean ms"], rows))


def _print_span_dump(spans: list) -> None:
    from .eval import format_table

    agg: dict[str, list[float]] = {}
    traces = set()
    for s in spans:
        ent = agg.setdefault(s.get("name", "?"), [0, 0.0])
        ent[0] += 1
        ent[1] += float(s.get("dur_s", 0.0))
        traces.add(s.get("trace_id"))
    print(f"Span dump: {len(spans)} spans in {len(traces)} trace(s)")
    rows = [
        [name, n, total * 1e3, total / n * 1e3]
        for name, (n, total) in sorted(agg.items(), key=lambda kv: -kv[1][1])
    ]
    print(format_table(["span", "count", "total ms", "mean ms"], rows))


def _print_metrics_snapshots(records: list) -> None:
    last = records[-1]["metrics"]
    if len(records) > 1:
        t0, t1 = records[0].get("ts", 0.0), records[-1].get("ts", 0.0)
        print(
            f"Metrics: {len(records)} snapshots over {t1 - t0:.3f} s "
            f"(latest shown)"
        )
    for name, entry in sorted(last.items()):
        values = entry.get("values", {})
        for labels, val in sorted(values.items()):
            where = f"{{{labels}}}" if labels else ""
            if isinstance(val, dict):  # histogram: sum/count
                n = val.get("count", 0)
                mean = val.get("sum", 0.0) / n if n else 0.0
                shown = f"count {n}, mean {mean:.6g}"
            else:
                shown = f"{val:g}"
            print(f"  {name}{where} [{entry.get('kind', '?')}] {shown}")


def _print_serve_bench(payload: dict) -> None:
    from .runtime.report import StreamReport

    print(
        f"serve-bench: {payload.get('queries', '?')} queries over "
        f"{payload.get('n', '?')} x {payload.get('dim', '?')} at "
        f"{payload.get('qps_offered', 0.0):g} q/s offered; "
        f"speedup {payload.get('speedup', 0.0):.1f}x, "
        f"identical: {payload.get('identical')}"
    )
    for key in ("per_call", "batched"):
        if key in payload:
            print("\n" + StreamReport.from_dict(payload[key]).summary())


def _print_scenarios(payload: dict) -> None:
    from .eval import format_table

    print(
        f"scenario bench: {payload.get('n', '?')} x "
        f"{payload.get('dim', '?')} database, k={payload.get('k', '?')}, "
        f"{payload.get('queries', '?')} queries per scenario"
    )
    rows = [
        [
            s.get("name", "?"),
            s.get("offered_qps", 0.0),
            s.get("hit_rate", 0.0) * 100.0,
            s.get("uncached_throughput_qps", 0.0),
            s.get("cached_throughput_qps", 0.0),
            s.get("uncached_p99_ms", 0.0),
            s.get("cached_p99_ms", 0.0),
            s.get("p99_speedup_raw", s.get("p99_speedup", 0.0)),
            "yes" if s.get("identical") else "NO",
        ]
        for s in payload.get("scenarios", [])
    ]
    print(
        format_table(
            [
                "scenario", "offered q/s", "hit %", "q/s off", "q/s on",
                "p99 off ms", "p99 on ms", "p99 x", "identical",
            ],
            rows,
        )
    )
    zipf = payload.get("zipfian")
    if zipf:
        x = zipf.get("p99_speedup_raw", zipf.get("p99_speedup", 0.0))
        print(
            f"\nzipfian hot-key: p99 speedup {x:.1f}x "
            f"at hit rate {zipf.get('hit_rate', 0.0):.1%} "
            f"(acceptance floor 2.0x)"
        )


def _cmd_report(args) -> int:
    import json

    from .runtime.report import RunReport, StreamReport

    found = _detect_flight_bundle(args.file)
    if found is not None:
        _print_flight_bundle(*found)
        return 0
    with open(args.file) as fh:
        text = fh.read()
    try:
        payload = json.loads(text)
    except json.JSONDecodeError:
        # not one JSON document: try metrics-snapshot JSONL
        try:
            records = [
                json.loads(ln) for ln in text.splitlines() if ln.strip()
            ]
        except json.JSONDecodeError:
            raise SystemExit(f"{args.file}: neither JSON nor JSONL")
        if not records or not all(
            isinstance(r, dict) and "metrics" in r for r in records
        ):
            raise SystemExit(f"{args.file}: unrecognized JSONL contents")
        _print_metrics_snapshots(records)
        return 0
    if isinstance(payload, dict) and "traceEvents" in payload:
        _print_chrome_trace(payload)
    elif isinstance(payload, dict) and "scenarios" in payload:
        _print_scenarios(payload)
    elif isinstance(payload, dict) and "per_call" in payload:
        _print_serve_bench(payload)
    elif isinstance(payload, dict) and "metrics" in payload:
        _print_metrics_snapshots([payload])
    elif isinstance(payload, dict) and "n_queries" in payload:
        print(StreamReport.from_dict(payload).summary())
    elif isinstance(payload, dict) and "wall_s" in payload:
        print(RunReport.from_dict(payload).summary())
    elif (
        isinstance(payload, list)
        and payload
        and isinstance(payload[0], dict)
        and "span_id" in payload[0]
    ):
        _print_span_dump(payload)
    else:
        raise SystemExit(f"{args.file}: unrecognized report format")
    return 0


def _cmd_metrics(args) -> int:
    from .core import ExactRBC
    from .obs import MetricsRegistry, SLOMonitor
    from .serving import BatchPolicy, StreamingSearcher

    X, Q = _load_data(args.data, args.scale, n_queries=args.queries)
    if Q is None:
        rng = np.random.default_rng(args.seed)
        take = rng.choice(X.shape[0], size=args.queries, replace=False)
        Q = X[take]
    index = ExactRBC(seed=args.seed).build(X)
    reg = MetricsRegistry()
    slo = SLOMonitor(args.max_delay_ms / 1e3, window_s=float("inf"))
    policy = BatchPolicy(max_delay_ms=args.max_delay_ms)
    with StreamingSearcher(
        index, k=args.k, policy=policy, slo=slo, metrics=reg
    ) as srv:
        srv.search_stream(Q, qps=args.qps)
    sys.stdout.write(reg.expose())
    print("\n" + slo.summary())
    return 0


def _cmd_knn_graph(args) -> int:
    from .core.knngraph import knn_graph

    X, _ = _load_data(args.data, args.scale, n_queries=0)
    t0 = time.perf_counter()
    dist, idx = knn_graph(X, args.k, metric=args.metric, seed=args.seed)
    elapsed = time.perf_counter() - t0
    np.savez_compressed(args.output, dist=dist, idx=idx)
    print(
        f"{args.k}-NN graph over {X.shape[0]} points in {elapsed:.2f}s; "
        f"saved dist/idx arrays to {args.output}"
    )
    return 0


def build_parser() -> argparse.ArgumentParser:
    p = argparse.ArgumentParser(
        prog="repro",
        description="Random Ball Cover nearest-neighbor search (Cayton, IPPS 2012)",
    )
    sub = p.add_subparsers(dest="command", required=True)

    sub.add_parser("info", help="list datasets, metrics, machine models")

    b = sub.add_parser("build", help="build and save an RBC index")
    b.add_argument("data", help="dataset name (see `info`) or .npy path")
    b.add_argument("-o", "--output", required=True, help="output .npz path")
    b.add_argument("--algorithm", choices=["exact", "oneshot"], default="exact")
    b.add_argument("--metric", default="euclidean")
    b.add_argument("--n-reps", type=int, default=None)
    b.add_argument("--s", type=int, default=None, help="one-shot list size")
    b.add_argument("--scale", type=float, default=0.05)
    b.add_argument("--seed", type=int, default=0)

    q = sub.add_parser("query", help="query a saved index")
    q.add_argument("index", help=".npz file written by `build`")
    q.add_argument("queries", help=".npy file of query points")
    q.add_argument("-k", type=int, default=1)
    q.add_argument("--show", type=int, default=5, help="queries to print")

    d = sub.add_parser("dim", help="estimate the expansion rate")
    d.add_argument("data", help="dataset name or .npy path")
    d.add_argument("--metric", default="euclidean")
    d.add_argument("--centers", type=int, default=64)
    d.add_argument("--scale", type=float, default=0.01)
    d.add_argument("--seed", type=int, default=0)

    c = sub.add_parser(
        "compare", help="a registered index vs brute force, one command"
    )
    c.add_argument("data", help="dataset name or .npy path")
    c.add_argument(
        "--index",
        default="rbc-exact",
        help="registered backend to compare against brute force "
        "(see `repro.index.available_indexes()`; 'router' picks per batch)",
    )
    c.add_argument("-k", type=int, default=1)
    c.add_argument("--queries", type=int, default=200)
    c.add_argument("--n-reps", type=int, default=None)
    c.add_argument("--scale", type=float, default=0.05)
    c.add_argument("--seed", type=int, default=0)
    c.add_argument(
        "--report",
        action="store_true",
        help="print the full per-run observability reports",
    )
    c.add_argument(
        "--quantize",
        nargs="?",
        const="auto",
        default=None,
        choices=["auto", "int8", "float16", "pq"],
        help="additionally run a quantized exact index and report its "
        "speedup, bytes moved, and recall before the float64 re-rank "
        "(answers stay id-identical)",
    )

    s = sub.add_parser(
        "serve-bench", help="streaming per-call vs micro-batched serving"
    )
    s.add_argument("data", help="dataset name or .npy path")
    s.add_argument("-k", type=int, default=1)
    s.add_argument("--queries", type=int, default=512)
    s.add_argument("--algorithm", choices=["exact", "oneshot"], default="exact")
    s.add_argument(
        "--index",
        default=None,
        help="serve a registered backend by name instead of --algorithm "
        "('router' serves with the SLO degradation ladder armed)",
    )
    s.add_argument("--qps", type=float, default=2000.0, help="offered load")
    s.add_argument("--max-delay-ms", type=float, default=100.0)
    s.add_argument("--max-batch", type=int, default=256)
    s.add_argument(
        "--shards",
        type=int,
        default=1,
        help="partition the (exact) index over this many simulated "
        "node shards",
    )
    s.add_argument(
        "--replicas",
        type=int,
        default=1,
        help="replica-group size per shard; > 1 enables hedged requests",
    )
    s.add_argument(
        "--backend",
        choices=["serial", "threads", "processes"],
        default=None,
        help="executor backend for the dispatched query calls",
    )
    s.add_argument(
        "--scenario",
        choices=["uniform", "diurnal", "flash_crowd", "zipfian", "drift"],
        default=None,
        help="replay a generated traffic scenario (arrival process + "
        "query skew) instead of the uniform-rate trace; seeded by --seed",
    )
    s.add_argument(
        "--cache",
        action="store_true",
        help="front the resident run with the proximity-keyed semantic "
        "cache (answers stay bit-identical to the uncached baseline)",
    )
    s.add_argument(
        "--cache-size", type=int, default=2048, help="max cached results"
    )
    s.add_argument(
        "--cache-ttl",
        type=float,
        default=0.0,
        help="cache entry TTL in seconds (<= 0 means no expiry)",
    )
    s.add_argument(
        "--quality",
        type=float,
        default=0.0,
        help="shadow-oracle sampling fraction for the resident run "
        "(0 disables; the windowed recall estimate is printed and "
        "lands in the JSON report)",
    )
    s.add_argument(
        "--flight",
        default=None,
        help="arm a flight recorder on the resident run; breach bundles "
        "land under this directory",
    )
    s.add_argument("--scale", type=float, default=0.05)
    s.add_argument("--seed", type=int, default=0)
    s.add_argument("--json", default=None, help="write the full report here")
    s.add_argument(
        "--trace",
        default=None,
        help="write a Chrome-trace JSON of the batched run here",
    )

    e = sub.add_parser(
        "explain", help="serve queries with EXPLAIN capture and print each digest"
    )
    e.add_argument("data", help="dataset name or .npy path")
    e.add_argument("-k", type=int, default=1)
    e.add_argument(
        "--index",
        default="rbc-exact",
        help="registered backend to serve ('router' shows the decision "
        "and per-backend cost scores)",
    )
    e.add_argument("--queries", type=int, default=3, help="queries to explain")
    e.add_argument(
        "--cache",
        action="store_true",
        help="front the searcher with the proximity cache (hit/reject "
        "outcomes appear in the digest)",
    )
    e.add_argument(
        "--quality",
        type=float,
        default=0.0,
        help="shadow-oracle sampling fraction (sampled queries show "
        "their measured recall)",
    )
    e.add_argument(
        "--json",
        action="store_true",
        help="also print each explain as one JSON line",
    )
    e.add_argument("--scale", type=float, default=0.05)
    e.add_argument("--seed", type=int, default=0)

    r = sub.add_parser(
        "report", help="pretty-print a saved observability artifact"
    )
    r.add_argument(
        "file",
        help="RunReport/StreamReport/serve-bench/scenario-bench JSON, "
        "Chrome trace, span dump, metrics JSONL, or a flight-recorder "
        "bundle directory",
    )

    mt = sub.add_parser(
        "metrics", help="instrumented serving demo + Prometheus exposition"
    )
    mt.add_argument("data", help="dataset name or .npy path")
    mt.add_argument("-k", type=int, default=1)
    mt.add_argument("--queries", type=int, default=256)
    mt.add_argument("--qps", type=float, default=2000.0)
    mt.add_argument("--max-delay-ms", type=float, default=100.0)
    mt.add_argument("--scale", type=float, default=0.05)
    mt.add_argument("--seed", type=int, default=0)

    g = sub.add_parser("knn-graph", help="all-k-NN graph of a dataset")
    g.add_argument("data", help="dataset name or .npy path")
    g.add_argument("-o", "--output", required=True, help="output .npz path")
    g.add_argument("-k", type=int, default=8)
    g.add_argument("--metric", default="euclidean")
    g.add_argument("--scale", type=float, default=0.01)
    g.add_argument("--seed", type=int, default=0)
    return p


_HANDLERS = {
    "info": _cmd_info,
    "build": _cmd_build,
    "query": _cmd_query,
    "dim": _cmd_dim,
    "compare": _cmd_compare,
    "knn-graph": _cmd_knn_graph,
    "serve-bench": _cmd_serve_bench,
    "explain": _cmd_explain,
    "report": _cmd_report,
    "metrics": _cmd_metrics,
}


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return _HANDLERS[args.command](args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
