"""Adaptive micro-batching for a streaming query front-end.

The paper's central performance fact is that the brute-force primitive is
GEMM-shaped: per-query cost collapses when queries share a kernel launch
(§3, Table 2).  A serving front-end that dispatches arrivals one at a time
therefore leaves an order of magnitude on the table — but batching buys
throughput with *queueing delay*, so the batch size must be chosen against
a latency budget, and the right size depends on the machine and index at
hand.

:class:`QueryBatcher` measures instead of guessing.  Batch sizes move on a
power-of-two ladder; every dispatched batch reports its measured service
time, which maintains an EWMA throughput estimate per ladder level.  The
controller hill-climbs: grow while the next level's measured rate is
better (or unexplored), shrink when the level below is faster, and never
target a batch whose estimated service time would eat more than a fixed
fraction of the latency budget.  A deadline rule bounds the wait of the
oldest enqueued query: the batch flushes early when the remaining slack —
budget minus age minus a safety-margined service estimate — runs out.

The batcher is a pure policy object driven by an explicit clock (``now``
parameters).  It never sleeps and never reads the wall clock, so the same
code serves the live ``submit()`` path and the reproducible virtual-clock
replay in :meth:`~repro.serving.searcher.StreamingSearcher.search_stream`.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

__all__ = ["BatchPolicy", "QueryBatcher"]


@dataclass(frozen=True)
class BatchPolicy:
    """Knobs of the adaptive micro-batcher.

    Parameters
    ----------
    max_delay_ms:
        latency budget: no query should wait in the batcher past the point
        where waiting longer would push its answer beyond this deadline.
    max_batch / min_batch:
        hard bounds on the dispatch size (``max_batch=1`` degenerates to
        per-query dispatch — the serving baseline).
    growth:
        climb threshold: move up the ladder when the level above delivers
        at least this factor of the current level's measured throughput.
    ewma:
        smoothing weight of the per-level throughput estimates (weight of
        the newest observation).
    safety:
        multiplier on the service-time estimate inside the deadline rule —
        headroom for estimate error, so a mispredicted batch does not blow
        the budget.
    service_fraction:
        cap: never target a batch whose estimated service time exceeds
        this fraction of ``max_delay_ms`` (the rest of the budget is left
        for queueing).
    """

    max_delay_ms: float = 50.0
    max_batch: int = 256
    min_batch: int = 1
    growth: float = 1.05
    ewma: float = 0.3
    safety: float = 1.25
    service_fraction: float = 0.5

    def __post_init__(self) -> None:
        if self.max_delay_ms <= 0:
            raise ValueError("max_delay_ms must be positive")
        if not 1 <= self.min_batch <= self.max_batch:
            raise ValueError("need 1 <= min_batch <= max_batch")
        if not 0 < self.ewma <= 1:
            raise ValueError("ewma must be in (0, 1]")

    @property
    def max_delay_s(self) -> float:
        return self.max_delay_ms / 1e3

    def ladder(self) -> list[int]:
        """Power-of-two batch sizes from ``min_batch`` to ``max_batch``."""
        levels = []
        size = max(1, int(self.min_batch))
        while size < self.max_batch:
            levels.append(size)
            size *= 2
        levels.append(int(self.max_batch))
        return levels


class QueryBatcher:
    """Latency-budgeted adaptive batching queue (policy only, no I/O).

    Usage protocol, all times in seconds on one caller-supplied clock::

        batcher.add(payload, now)          # enqueue an arrival
        if batcher.ready(now):             # full target, or slack ran out
            items = batcher.take(now)      # -> [(payload, arrival), ...]
            ... dispatch, measure wall ...
            batcher.observe(len(items), service_s)   # feed the controller

    ``next_deadline()`` exposes the time at which ``ready`` would turn true
    with no further arrivals — the event the virtual-clock replay (and a
    live event loop's timeout) waits on.
    """

    def __init__(self, policy: BatchPolicy | None = None) -> None:
        self.policy = policy or BatchPolicy()
        self._items: deque = deque()
        self._levels = self.policy.ladder()
        #: ladder index of the current target size
        self._lvl = 0
        #: ladder index -> EWMA throughput (queries / second)
        self._rate: dict[int, float] = {}
        # lifetime counters (the StreamReport's batching observables)
        self.n_batches = 0
        self.n_items = 0
        self.n_deadline_flushes = 0
        self.max_batch_seen = 0
        self.n_backoffs = 0

    # --------------------------------------------------------------- queue
    @property
    def pending(self) -> int:
        return len(self._items)

    def add(self, payload, now: float) -> None:
        """Enqueue one query with its arrival timestamp."""
        self._items.append((payload, float(now)))

    @property
    def target(self) -> int:
        """The batch size the controller currently aims to fill."""
        return self._levels[self._lvl]

    @property
    def level(self) -> int:
        """Current ladder index (0 = ``min_batch``)."""
        return self._lvl

    def backoff(self) -> None:
        """Drop one ladder level immediately (external pressure signal).

        The hook an :class:`~repro.obs.slo.SLOMonitor` breach callback
        pulls: when the error budget burns too fast, the batcher stops
        trusting its throughput estimates and trades batch economies for
        queueing headroom.  The EWMA rates are kept — the controller may
        climb back once measurements justify it.
        """
        if self._lvl > 0:
            self._lvl -= 1
            self.n_backoffs += 1

    # ---------------------------------------------------------- controller
    def _level_of(self, size: int) -> int:
        """Ladder index of the largest level not exceeding ``size``."""
        lvl = 0
        for i, level in enumerate(self._levels):
            if level <= size:
                lvl = i
        return lvl

    def service_estimate(self, size: int) -> float:
        """Estimated seconds to serve a batch of ``size`` (0 when nothing
        has been measured yet — unknown cost never delays a flush)."""
        if size <= 0 or not self._rate:
            return 0.0
        lvl = min(self._rate, key=lambda i: abs(self._levels[i] - size))
        return size / self._rate[lvl]

    def observe(self, size: int, service_s: float) -> None:
        """Feed one dispatched batch's measured service time back."""
        if size <= 0:
            return
        lvl = self._level_of(size)
        rate = size / max(float(service_s), 1e-9)
        prev = self._rate.get(lvl)
        a = self.policy.ewma
        self._rate[lvl] = rate if prev is None else (1 - a) * prev + a * rate
        self._adapt()

    def _adapt(self) -> None:
        rates = self._rate
        cur = rates.get(self._lvl)
        if cur is not None:
            up = self._lvl + 1
            if up < len(self._levels):
                up_rate = rates.get(up)
                # unexplored levels are climbed optimistically: the batched
                # kernel's economies of scale make "bigger is faster" the
                # right prior, and a bad level is measured once and left
                if up_rate is None or up_rate >= self.policy.growth * cur:
                    self._lvl = up
            down = self._lvl - 1
            if down >= 0 and rates.get(down, 0.0) > rates.get(self._lvl, cur):
                self._lvl = down
        # never target a batch whose service alone would eat the budget
        budget = self.policy.service_fraction * self.policy.max_delay_s
        while self._lvl > 0 and (
            self.service_estimate(self._levels[self._lvl]) > budget
        ):
            self._lvl -= 1

    # ------------------------------------------------------------- flushing
    def ready(self, now: float, *, more_coming: bool = True) -> bool:
        """Whether a batch should dispatch at time ``now``."""
        if not self._items:
            return False
        if len(self._items) >= self.target:
            return True
        if not more_coming:
            return True
        # the deadline comparison must reuse next_deadline() verbatim: an
        # event loop sleeps until exactly that time, and computing the
        # slack with rearranged arithmetic can leave it one ulp positive
        # at the woken instant — ready() never turns true and the loop
        # spins forever at a frozen virtual clock
        return float(now) >= self.next_deadline()

    def next_deadline(self) -> float | None:
        """Absolute time at which the deadline rule will force a flush
        (assuming no further arrivals); ``None`` when the queue is empty."""
        if not self._items:
            return None
        oldest = self._items[0][1]
        est = self.service_estimate(len(self._items))
        return oldest + self.policy.max_delay_s - self.policy.safety * est

    def take(self, now: float) -> list[tuple[object, float]]:
        """Pop the batch to dispatch: up to the controller's current
        ``target`` queued items.

        The cap must be the adaptive target, not ``policy.max_batch``:
        whenever the queue is deeper than the target — exactly the
        overload regime where an SLO-breach :meth:`backoff` just shrank
        the ladder — popping ``max_batch`` would silently bypass the
        controller and dispatch a giant batch anyway.  A deep queue
        instead drains as several target-sized batches, each feeding the
        controller a measurement at the size it actually chose.
        ``target`` never exceeds ``policy.max_batch`` (the ladder is
        bounded by it), so the hard cap still holds.
        """
        limit = max(self.target, self.policy.min_batch)
        size = min(len(self._items), limit)
        if size == 0:
            return []
        if size < self.target:
            self.n_deadline_flushes += 1
        self.n_batches += 1
        self.n_items += size
        self.max_batch_seen = max(self.max_batch_seen, size)
        return [self._items.popleft() for _ in range(size)]
