"""Dataset residency for a serving session.

A query stream hits the same index thousands of times, so anything the
index derives from its (fixed) database must be paid once per index epoch,
not once per call:

* **in-process** (serial / thread backends): the prepared-operand engine
  already caches norms and the packed candidate matrix; ``warm()`` simply
  fills those caches up front so the first query's latency does not carry
  the one-time preparation.
* **process backend**: workers cannot share the parent's caches, so the
  prepared operands live in POSIX shared memory via the process-wide
  :data:`~repro.parallel.pool.operand_store`.  Registration is keyed on
  array identity; this module *pins* the canonical operand arrays for the
  lifetime of the serving session (a strong reference, so the store entry
  can never be reclaimed mid-stream) and releases — unlinks — the shared
  segments deterministically on ``close()``.

Without the explicit release, cleanup would ride on garbage collection of
the dataset, which is exactly the kind of nondeterminism that leaks
``/dev/shm`` segments from long-lived servers.  The leak regression tests
assert that ``close()`` (and ``close()`` via ``__exit__`` after a
mid-stream exception) leaves no segment behind.
"""

from __future__ import annotations

import numpy as np

from ..metrics.base import VectorMetric
from ..parallel.bruteforce import _as_shared_f64, register_resident_operands
from ..parallel.pool import operand_store
from ..runtime.context import ExecContext

__all__ = ["DatasetResidency"]


class DatasetResidency:
    """Pins one index's datasets for the duration of a serving session.

    For a process-backend context this registers the database and the
    representative block in the shared-memory operand store (so every
    query call ships handles, not arrays) and holds the canonical operand
    arrays alive; :meth:`release` unlinks the segments.  For in-process
    backends it is a no-op beyond ``index.warm()`` — which the caller
    (:class:`~repro.serving.searcher.StreamingSearcher`) performs — since
    residency there is the operand cache itself.
    """

    def __init__(self, index, ctx: ExecContext) -> None:
        self.index = index
        #: canonical operand arrays held alive while the session serves
        self._pins: list[np.ndarray] = []
        if not ctx.uses_processes or not isinstance(index.metric, VectorMetric):
            return
        version = int(getattr(index, "_version", 0))
        for arr in (getattr(index, "X", None), getattr(index, "rep_data", None)):
            if not isinstance(arr, np.ndarray):
                continue
            canonical = _as_shared_f64(arr)
            register_resident_operands(index.metric, canonical, version=version)
            self._pins.append(canonical)

    @property
    def active(self) -> bool:
        return bool(self._pins)

    def segment_names(self) -> list[str]:
        """Names of the shared segments currently pinned (for leak tests)."""
        names: list[str] = []
        for arr in self._pins:
            names.extend(operand_store.segments_for(arr))
        return names

    def release(self) -> int:
        """Unlink every pinned segment; idempotent.  Returns the number of
        store entries released."""
        released = 0
        for arr in self._pins:
            released += operand_store.release_for(arr)
        self._pins.clear()
        return released
