"""Realistic serving-traffic scenarios: arrival processes + query skew.

``serve-bench`` historically replayed a uniform-rate trace of i.i.d.
queries — the one traffic shape production never sees.  Real workloads
have structure on both axes the serving stack cares about:

* **when** queries arrive — diurnal load cycles, flash crowds, Poisson
  noise around any mean rate — which stresses the adaptive micro-batcher
  and the SLO monitor;
* **what** they ask — Zipfian hot keys, near-duplicate reformulations,
  slowly drifting intent — which is exactly the structure the proximity
  cache (:mod:`repro.serving.cache`) exploits and the structure that
  ages its entries out.

A :class:`ScenarioTrace` bundles both axes: a query matrix, one
nondecreasing arrival time per query, and the generator's parameters for
provenance.  Every generator is a pure function of an explicit ``seed``
(no global RNG state), so a scenario bench is reproducible run-to-run
and across machines.

Traces plug straight into the stack::

    trace = make_scenario("zipfian", pool, n_queries=2048, qps=3000, seed=7)
    report = server.search_stream(
        trace.queries, arrival_times=trace.arrivals, name=trace.name
    )
    observe_scenario(router, report)   # feed the router's cost model
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = [
    "ScenarioTrace",
    "SCENARIOS",
    "make_scenario",
    "observe_scenario",
    "uniform_scenario",
    "diurnal_scenario",
    "flash_crowd_scenario",
    "zipfian_scenario",
    "drift_scenario",
]


@dataclass
class ScenarioTrace:
    """One generated traffic trace: queries plus their arrival times.

    ``queries`` is ``(n, d)`` float64, ``arrivals`` the matching
    nondecreasing arrival seconds, and ``params`` the full generator
    configuration (scenario name, seed, rates, skew knobs) for
    provenance in benchmark payloads.
    """

    name: str
    queries: np.ndarray
    arrivals: np.ndarray
    params: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        self.queries = np.atleast_2d(np.asarray(self.queries, dtype=np.float64))
        self.arrivals = np.asarray(self.arrivals, dtype=np.float64)
        if self.arrivals.shape != (self.queries.shape[0],):
            raise ValueError("need one arrival time per query")
        if np.any(np.diff(self.arrivals) < 0):
            raise ValueError("arrival times must be nondecreasing")

    @property
    def n_queries(self) -> int:
        return int(self.queries.shape[0])

    @property
    def duration_s(self) -> float:
        return float(self.arrivals[-1]) if self.arrivals.size else 0.0

    @property
    def offered_qps(self) -> float:
        """Mean offered rate over the trace span."""
        return self.n_queries / max(self.duration_s, 1e-12)


# --------------------------------------------------------------- arrivals
def _poisson_arrivals(rng: np.random.Generator, n: int, qps: float) -> np.ndarray:
    """Homogeneous Poisson process at mean rate ``qps``: cumulative
    exponential gaps, starting at the first gap (not zero)."""
    if qps <= 0:
        raise ValueError("qps must be positive")
    return np.cumsum(rng.exponential(1.0 / qps, size=n))


def _modulated_arrivals(
    rng: np.random.Generator, n: int, qps: float, rate_of
) -> np.ndarray:
    """Nonhomogeneous Poisson arrivals with instantaneous rate
    ``rate_of(t) >= 0`` and mean rate ``qps``, via inverse transform on
    the cumulative intensity: unit-rate Poisson event times are mapped
    through the inverse of ``Lambda(t) = integral rate``, evaluated on a
    fine grid."""
    unit = np.cumsum(rng.exponential(1.0, size=n))
    # grid long enough to cover n expected events at the mean rate, with
    # head-room for the troughs pushing events later
    horizon = 4.0 * n / qps
    t = np.linspace(0.0, horizon, max(4096, 8 * n))
    rate = np.maximum(np.asarray(rate_of(t), dtype=np.float64), 0.0)
    cum = np.concatenate([[0.0], np.cumsum(0.5 * (rate[1:] + rate[:-1]) * np.diff(t))])
    if unit[-1] > cum[-1]:  # pragma: no cover - defensive horizon growth
        scale = unit[-1] / max(cum[-1], 1e-12)
        t = t * scale
        cum = cum * scale
    return np.interp(unit, cum, t)


def _draw_pool(rng: np.random.Generator, pool: np.ndarray, n: int) -> np.ndarray:
    return pool[rng.integers(0, pool.shape[0], size=n)]


def _as_pool(pool) -> np.ndarray:
    pool = np.atleast_2d(np.asarray(pool, dtype=np.float64))
    if pool.shape[0] == 0:
        raise ValueError("query pool must be non-empty")
    return pool


# -------------------------------------------------------------- scenarios
def uniform_scenario(
    pool,
    *,
    n_queries: int,
    qps: float,
    seed: int = 0,
) -> ScenarioTrace:
    """The classic baseline: i.i.d. pool queries, Poisson arrivals."""
    rng = np.random.default_rng(seed)
    pool = _as_pool(pool)
    return ScenarioTrace(
        name="uniform",
        queries=_draw_pool(rng, pool, n_queries),
        arrivals=_poisson_arrivals(rng, n_queries, qps),
        params={"scenario": "uniform", "n_queries": n_queries, "qps": qps,
                "seed": seed},
    )


def diurnal_scenario(
    pool,
    *,
    n_queries: int,
    qps: float,
    seed: int = 0,
    period_s: float = 4.0,
    depth: float = 0.8,
) -> ScenarioTrace:
    """Day/night load cycle: a sinusoid-modulated Poisson process whose
    rate swings ``qps * (1 ± depth)`` with period ``period_s`` (seconds
    of virtual time — a compressed "day").  Queries are i.i.d. from the
    pool; the stress is on the batcher riding the rate swings."""
    if not 0.0 <= depth <= 1.0:
        raise ValueError("depth must be in [0, 1]")
    rng = np.random.default_rng(seed)
    pool = _as_pool(pool)
    omega = 2.0 * np.pi / float(period_s)
    arrivals = _modulated_arrivals(
        rng, n_queries, qps, lambda t: qps * (1.0 + depth * np.sin(omega * t))
    )
    return ScenarioTrace(
        name="diurnal",
        queries=_draw_pool(rng, pool, n_queries),
        arrivals=arrivals,
        params={"scenario": "diurnal", "n_queries": n_queries, "qps": qps,
                "seed": seed, "period_s": period_s, "depth": depth},
    )


def flash_crowd_scenario(
    pool,
    *,
    n_queries: int,
    qps: float,
    seed: int = 0,
    n_bursts: int = 3,
    burst_x: float = 8.0,
    burst_frac: float = 0.1,
    jitter: float = 1e-4,
) -> ScenarioTrace:
    """Flash crowds: background Poisson traffic punctuated by bursts at
    ``burst_x`` times the base rate, each burst asking near-duplicates of
    one hot prototype (everyone searching the same breaking topic).
    ``burst_frac`` is the fraction of the trace span inside bursts;
    ``jitter`` the per-coordinate Gaussian scale of the reformulations."""
    rng = np.random.default_rng(seed)
    pool = _as_pool(pool)
    span_guess = n_queries / qps
    width = burst_frac * span_guess / max(n_bursts, 1)
    starts = np.sort(rng.uniform(0.0, span_guess - width, size=n_bursts))
    rate = lambda t: qps * (  # noqa: E731 - tiny closure over the windows
        1.0
        + (burst_x - 1.0)
        * np.any(
            (t[:, None] >= starts[None, :])
            & (t[:, None] < starts[None, :] + width),
            axis=1,
        )
    )
    arrivals = _modulated_arrivals(rng, n_queries, qps, rate)
    in_burst = np.any(
        (arrivals[:, None] >= starts[None, :])
        & (arrivals[:, None] < starts[None, :] + width),
        axis=1,
    )
    protos = _draw_pool(rng, pool, n_bursts)
    # each burst window reuses its own prototype
    which = np.clip(
        np.searchsorted(starts, arrivals, side="right") - 1, 0, n_bursts - 1
    )
    queries = _draw_pool(rng, pool, n_queries)
    d = pool.shape[1]
    noise = rng.normal(scale=jitter, size=(n_queries, d))
    queries[in_burst] = protos[which[in_burst]] + noise[in_burst]
    return ScenarioTrace(
        name="flash_crowd",
        queries=queries,
        arrivals=arrivals,
        params={"scenario": "flash_crowd", "n_queries": n_queries,
                "qps": qps, "seed": seed, "n_bursts": n_bursts,
                "burst_x": burst_x, "burst_frac": burst_frac,
                "jitter": jitter},
    )


def zipfian_scenario(
    pool,
    *,
    n_queries: int,
    qps: float,
    seed: int = 0,
    n_hot: int = 32,
    alpha: float = 1.1,
    exact_frac: float = 0.5,
    jitter: float = 1e-4,
    background_frac: float = 0.2,
) -> ScenarioTrace:
    """Zipfian hot keys + near-duplicate skew — the cache's home turf.

    ``1 - background_frac`` of the traffic targets ``n_hot`` prototype
    queries under a Zipf(``alpha``) popularity law; of those,
    ``exact_frac`` are byte-exact repeats and the rest near-duplicate
    reformulations (Gaussian ``jitter``).  The remainder is background
    uniform pool traffic.  Arrivals are Poisson at ``qps``."""
    rng = np.random.default_rng(seed)
    pool = _as_pool(pool)
    ranks = np.arange(1, n_hot + 1, dtype=np.float64)
    p = ranks ** (-float(alpha))
    p /= p.sum()
    protos = _draw_pool(rng, pool, n_hot)
    which = rng.choice(n_hot, size=n_queries, p=p)
    queries = protos[which].copy()
    u = rng.random(n_queries)
    background = u < background_frac
    jittered = ~background & (
        u >= background_frac + (1.0 - background_frac) * exact_frac
    )
    d = pool.shape[1]
    queries[jittered] += rng.normal(scale=jitter, size=(int(jittered.sum()), d))
    queries[background] = _draw_pool(rng, pool, int(background.sum()))
    return ScenarioTrace(
        name="zipfian",
        queries=queries,
        arrivals=_poisson_arrivals(rng, n_queries, qps),
        params={"scenario": "zipfian", "n_queries": n_queries, "qps": qps,
                "seed": seed, "n_hot": n_hot, "alpha": alpha,
                "exact_frac": exact_frac, "jitter": jitter,
                "background_frac": background_frac},
    )


def drift_scenario(
    pool,
    *,
    n_queries: int,
    qps: float,
    seed: int = 0,
    n_hot: int = 8,
    drift_scale: float = 0.05,
    jitter: float = 1e-4,
    background_frac: float = 0.2,
) -> ScenarioTrace:
    """Interest drift: hot prototypes random-walk through query space
    over the trace (step scale ``drift_scale`` per arrival), so a result
    cached against an early prototype position stops certifying later —
    the adversarial case for any semantic cache's TTL/eviction policy."""
    rng = np.random.default_rng(seed)
    pool = _as_pool(pool)
    d = pool.shape[1]
    protos = _draw_pool(rng, pool, n_hot)
    arrivals = _poisson_arrivals(rng, n_queries, qps)
    which = rng.integers(0, n_hot, size=n_queries)
    steps = rng.normal(scale=drift_scale, size=(n_queries, d))
    queries = np.empty((n_queries, d))
    for i in range(n_queries):
        protos[which[i]] += steps[i]
        queries[i] = protos[which[i]]
    queries += rng.normal(scale=jitter, size=(n_queries, d))
    background = rng.random(n_queries) < background_frac
    queries[background] = _draw_pool(rng, pool, int(background.sum()))
    return ScenarioTrace(
        name="drift",
        queries=queries,
        arrivals=arrivals,
        params={"scenario": "drift", "n_queries": n_queries, "qps": qps,
                "seed": seed, "n_hot": n_hot, "drift_scale": drift_scale,
                "jitter": jitter, "background_frac": background_frac},
    )


#: scenario name -> generator; all share the
#: ``(pool, *, n_queries, qps, seed, **knobs)`` signature
SCENARIOS = {
    "uniform": uniform_scenario,
    "diurnal": diurnal_scenario,
    "flash_crowd": flash_crowd_scenario,
    "zipfian": zipfian_scenario,
    "drift": drift_scenario,
}


def make_scenario(
    name: str,
    pool,
    *,
    n_queries: int,
    qps: float,
    seed: int = 0,
    **knobs,
) -> ScenarioTrace:
    """Generate the named scenario's trace from an explicit seed."""
    try:
        gen = SCENARIOS[name]
    except KeyError:
        raise ValueError(
            f"unknown scenario {name!r}; have {sorted(SCENARIOS)}"
        ) from None
    return gen(pool, n_queries=n_queries, qps=qps, seed=seed, **knobs)


def observe_scenario(router, report, *, backend: str | None = None) -> None:
    """Feed a scenario stream's measured cost into a Router's cost model.

    The router prices backends from per-query wall observations; a
    scenario replay is a large, realistically-skewed sample of exactly
    that, so routing decisions after a scenario run reflect the traffic
    actually served.  ``backend`` defaults to the router's last routing
    decision (the backend that served the stream).
    """
    if backend is None:
        decision = getattr(router, "last_decision", None)
        backend = getattr(decision, "backend", None)
    if backend is None:
        raise ValueError(
            "no backend given and the router has no last_decision; pass "
            "backend= explicitly"
        )
    router.observe_report(backend, report)
