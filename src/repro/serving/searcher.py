"""The streaming query front-end: residency + micro-batching + metrics.

:class:`StreamingSearcher` turns an index's batch ``query()`` into a
query *server*: arrivals are enqueued, the adaptive
:class:`~repro.serving.batcher.QueryBatcher` groups them into
latency-budgeted micro-batches, each batch runs one ``query()`` call on a
registry-resident executor against residency-pinned operands, and answers
fan back out per query.

**Determinism.**  Per-query and batched dispatch must return the *same
answer* — a correctness property, not a best effort.  The candidate ids an
index returns are batching-invariant, but raw float64 GEMM distances are
not bit-identical between a 1-row and an m-row kernel call (different BLAS
reduction orders, ~1 ulp).  The searcher therefore re-scores every
returned candidate with the metric's *paired* kernel
(:func:`~repro.metrics.engine.rescore_pairs`), whose per-pair reduction
does not depend on how rows are batched — so a ``max_batch=1`` server and
a ``max_batch=256`` server produce bit-identical distances, and the
regression tests compare them with ``==``.  The pruning-rule counters are
likewise batching-invariant (summed over micro-batches).

**Measurement.**  :meth:`search_stream` replays an arrival trace on a
*virtual clock*: arrivals and flush deadlines advance simulated time,
while each dispatched batch contributes its real measured service wall
time.  Nothing sleeps, so a 10-second trace replays in the time the
kernels actually take, and the recorded per-query sojourn latencies
(arrival to answer, queueing included) are reproducible modulo kernel
timing noise.  The result is a :class:`~repro.runtime.report.StreamReport`
— the standard :class:`~repro.runtime.report.RunReport` observables plus
throughput, batch shape, and latency percentiles.
"""

from __future__ import annotations

import time
from collections import deque

import numpy as np

from ..index.protocol import capabilities_for
from ..metrics.engine import rescore_pairs
from ..obs.collectors import (
    install_cache_collectors,
    install_index_collectors,
    install_quality_collectors,
    install_standard_collectors,
)
from ..obs.explain import QueryExplain
from ..obs.flight import FlightRecorder
from ..obs.metrics import MetricsRegistry
from ..obs.quality import DriftMonitor, QualitySampler
from ..obs.slo import SLOMonitor
from ..runtime.context import ExecContext, TimingRecorder, resolve_ctx
from ..runtime.report import LatencyStats, StreamReport, collect_report
from .batcher import BatchPolicy, QueryBatcher
from .cache import CachePolicy, ProximityCache
from .residency import DatasetResidency

__all__ = ["StreamingSearcher"]


class StreamingSearcher:
    """A persistent serving session over one built index.

    Parameters
    ----------
    index:
        any built index exposing ``query(Q, k, ctx=...)`` (the RBC
        structures and the baselines all do).
    k:
        neighbors returned per query.
    policy:
        micro-batching policy; ``BatchPolicy(max_batch=1)`` is the
        per-query dispatch baseline.
    ctx:
        execution context for the dispatched queries (executor backend,
        dtype, ...).  String executor specs resolve to registry-resident
        pools, so workers persist across micro-batches.
    rescore:
        re-score returned candidates with the batching-invariant paired
        kernel (see module docstring).  Leave on; turning it off trades
        the bit-identity guarantee for skipping one ``(m, k)`` paired
        pass.
    slo:
        optional :class:`~repro.obs.slo.SLOMonitor` fed every served
        query's sojourn latency; its breach callback is wired to
        :meth:`~repro.serving.batcher.QueryBatcher.backoff`, so a burning
        error budget drops the batch ladder one level.
    metrics:
        optional :class:`~repro.obs.metrics.MetricsRegistry`; the searcher
        maintains batcher gauges (ladder level, target, queue depth), a
        sojourn-latency histogram, and served/batch counters in it, and
        installs the standard pull-collectors (operand cache, executor
        pool, packed-list slack).
    cache:
        optional proximity-keyed result cache
        (:class:`~repro.serving.cache.ProximityCache`) consulted before
        every dispatch: queries within a cached key's certified tolerance
        radius are answered from cache with zero recall loss, everything
        else falls through to the index.  Pass an existing cache, a
        :class:`~repro.serving.cache.CachePolicy`, or ``True`` for the
        default policy.  Requires an exact index over a true metric with
        rescoring available (the certificate math needs all three); the
        searcher over-fetches ``k + 1`` neighbors on misses to learn each
        entry's radius, and still serves ``k`` per answer.
    quality:
        optional shadow-oracle recall sampling: pass a configured
        :class:`~repro.obs.quality.QualitySampler`, ``True`` for the
        default 1% sampler, or a float fraction.  Sampled queries are
        re-answered by brute force *after* each batch's service time is
        taken (the virtual clock never sees the oracle) and fed to the
        sampler's :class:`~repro.obs.quality.QualityMonitor`.  Breaches
        are the symmetric counterpart of SLO pressure: a degradable
        index is walked back *up* its quality ladder (``restore()``) and
        an attached proximity cache is disabled.
    flight:
        optional :class:`~repro.obs.flight.FlightRecorder`: the searcher
        feeds its rings (batch span digests, batch explains, quality
        samples, breach events) and wires SLO/quality breaches to
        :meth:`~repro.obs.flight.FlightRecorder.dump`.
    query_kwargs:
        extra keyword arguments forwarded to every ``index.query`` call
        (e.g. ``n_probes=2``).

    Span tracing rides the execution context: pass
    ``ctx=ExecContext(tracer=Tracer())`` and every served query gets a
    root span, each dispatched micro-batch a ``serve:batch`` span
    parented under its oldest query, and the kernel/worker spans nest
    below that — one Chrome-trace timeline from arrival to answer.

    Use as a context manager (or call :meth:`close`) so the residency
    pins are released deterministically::

        with StreamingSearcher(index, k=3) as server:
            report = server.search_stream(Q, qps=2000.0)
    """

    def __init__(
        self,
        index,
        *,
        k: int = 1,
        policy: BatchPolicy | None = None,
        ctx: ExecContext | None = None,
        rescore: bool = True,
        slo: SLOMonitor | None = None,
        metrics: MetricsRegistry | None = None,
        cache: ProximityCache | CachePolicy | bool | None = None,
        quality: QualitySampler | float | bool | None = None,
        flight: FlightRecorder | None = None,
        **query_kwargs,
    ) -> None:
        getattr(index, "_require_built", lambda: None)()
        self.index = index
        #: neighbors per served answer (``self.k`` is the dispatch width:
        #: one wider when the cache needs the (k+1)-th distance)
        self.k_serve = int(k)
        self.k = self.k_serve
        self.policy = policy or BatchPolicy()
        base = getattr(index, "_base_ctx", ExecContext)()
        self.ctx = resolve_ctx(ctx).overriding(base)
        self.query_kwargs = dict(query_kwargs)
        self.batcher = QueryBatcher(self.policy)
        self.rescore = bool(rescore) and self._can_rescore(index)
        self.cache: ProximityCache | None = None
        if cache is not None and cache is not False:
            if not self.rescore:
                raise ValueError(
                    "the proximity cache needs rescoring: hit distances "
                    "are recomputed for the new query with the paired "
                    "kernel, and bit-identity with the miss path depends "
                    "on both sides being rescored"
                )
            if isinstance(cache, ProximityCache):
                if cache.index is not index or cache.k != self.k_serve:
                    raise ValueError(
                        "cache was built for a different index or k"
                    )
                self.cache = cache
            else:
                pol = cache if isinstance(cache, CachePolicy) else None
                self.cache = ProximityCache(
                    index, self.k_serve, policy=pol
                )
            # misses fetch one extra neighbor so the (k+1)-th distance
            # certifies each admitted entry's tolerance radius
            self.k = self.k_serve + 1
        self._closed = False
        #: ticket -> (dist_row, idx_row) for answered, un-collected queries
        self._done: dict[int, tuple[np.ndarray, np.ndarray]] = {}
        self._next_ticket = 0
        #: pruning-rule counters summed over every dispatched micro-batch
        self.rule_counts: dict[str, int] = {}
        #: ticket -> open root span of a live-submitted query
        self._qspans: dict = {}
        self.flight = flight
        self.quality: QualitySampler | None = None
        if quality is not None and quality is not False:
            if isinstance(quality, QualitySampler):
                self.quality = quality
            else:
                frac = 0.01 if quality is True else float(quality)
                self.quality = QualitySampler(
                    index,
                    self.k_serve,
                    fraction=frac,
                    drift=DriftMonitor.from_index(index),
                )
            mon = self.quality.monitor
            if capabilities_for(index).degradable:
                # the symmetric counterpart of SLO pressure: a recall
                # breach walks the router back *up* its quality ladder
                mon.on_breach(lambda _m: index.restore())
            if self.cache is not None:
                mon.on_breach(lambda _m: self._disable_cache_on_breach())
            if flight is not None:
                mon.on_breach(
                    lambda m: flight.record_event(
                        "quality-breach",
                        now=m.last_fired_at,
                        recall_estimate=m.recall_estimate,
                        target=m.target,
                    )
                )
                mon.on_breach(
                    lambda m: flight.dump("quality-breach", now=m.last_fired_at)
                )
        self.slo = slo
        if slo is not None:
            # late-bound on purpose: search_stream swaps in a per-stream
            # batcher, and that is the one a breach must back off
            slo.on_breach(lambda _mon: self.batcher.backoff())
            if capabilities_for(index).degradable:
                # degradable indexes (the router) also walk their own
                # quality ladder under SLO pressure
                slo.on_breach(lambda _mon: index.degrade())
            if flight is not None:
                slo.on_breach(
                    lambda mon: flight.record_event(
                        "slo-breach", now=getattr(mon, "_last_fired", None)
                    )
                )
                slo.on_breach(
                    lambda mon: flight.dump(
                        "slo-breach", now=getattr(mon, "_last_fired", None)
                    )
                )
        if flight is not None:
            flight.attach(quality=self.quality, metrics=metrics)
        #: explain plumbing: tickets awaiting an explain, finished
        #: explains, and the last observed batch's digest
        self._explain_tickets: set[int] = set()
        self._explains: dict[int, QueryExplain] = {}
        self._batch_info: dict | None = None
        self._last_hit_mask: np.ndarray | None = None
        self._last_wave: dict | None = None
        self.metrics = metrics
        #: batcher backoffs already mirrored into the backoff counter
        self._backoffs_seen = 0
        if metrics is not None:
            install_standard_collectors(metrics)
            install_index_collectors(index, metrics)
            if self.cache is not None:
                install_cache_collectors(self.cache, metrics)
            if self.quality is not None:
                install_quality_collectors(self.quality, metrics)
            self._m_served = metrics.counter(
                "repro_queries_served_total", "queries answered by the searcher"
            )
            self._m_batches = metrics.counter(
                "repro_batches_dispatched_total", "micro-batches dispatched"
            )
            self._m_backoffs = metrics.counter(
                "repro_batcher_backoffs_total", "SLO-driven ladder backoffs"
            )
            self._m_level = metrics.gauge(
                "repro_batcher_ladder_level", "current batch-size ladder index"
            )
            self._m_target = metrics.gauge(
                "repro_batcher_target", "batch size the controller aims to fill"
            )
            self._m_depth = metrics.gauge(
                "repro_batcher_queue_depth", "queries waiting in the batcher"
            )
            self._m_sojourn = metrics.histogram(
                "repro_query_sojourn_seconds",
                "arrival-to-answer latency of served queries",
            )
        # residency: fill the in-process prepared caches up front, and pin
        # shared-memory operands for the process backend
        if capabilities_for(index).warmable and not self.ctx.uses_processes:
            index.warm(self.ctx)
        self.residency = DatasetResidency(index, self.ctx)

    @staticmethod
    def _can_rescore(index) -> bool:
        """Rescoring is a declared capability now: backends opt in through
        ``capabilities().rescorable`` (the protocol's default resolves it
        against the live metric/database state; foreign duck-typed indexes
        get the same structural fallback via ``capabilities_for``)."""
        return capabilities_for(index).rescorable

    # ------------------------------------------------------------ lifecycle
    def close(self) -> None:
        """Flush nothing, release the residency pins; idempotent."""
        if self._closed:
            return
        self._closed = True
        self.residency.release()

    def __enter__(self) -> "StreamingSearcher":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def _require_open(self) -> None:
        if self._closed:
            raise RuntimeError("StreamingSearcher is closed")

    # -------------------------------------------------------------- dispatch
    def _dispatch(
        self, Qb: np.ndarray, width: int | None = None
    ) -> tuple[np.ndarray, np.ndarray]:
        """One micro-batch through the index, re-scored to batching
        invariance, with the rule counters accumulated."""
        k = self.k if width is None else int(width)
        dist, idx = self.index.query(
            Qb, k, ctx=self.ctx, **self.query_kwargs
        )
        if self.rescore:
            d = rescore_pairs(self.index.metric, Qb, self.index.X, idx)
            order = np.argsort(d, axis=1, kind="stable")
            dist = np.take_along_axis(d, order, axis=1)
            idx = np.take_along_axis(idx, order, axis=1)
            idx = np.where(np.isfinite(dist), idx, -1)
        stats = getattr(self.index, "last_stats", None)
        if stats is not None:
            for key, val in stats.rule_counts().items():
                self.rule_counts[key] = self.rule_counts.get(key, 0) + int(val)
        return dist, idx

    def _timed_dispatch(
        self, Qb: np.ndarray, width: int | None = None
    ) -> tuple[np.ndarray, np.ndarray, float]:
        """Dispatch one micro-batch and return ``(dist, idx, service_s)``.

        The base searcher's service time is the measured wall time of the
        ``query()`` call.  Subclasses that *model* service (e.g. the
        sharded searcher, whose time is the max over shard completions
        plus communication) override this one method; everything else —
        batching, the virtual clock, telemetry — is inherited unchanged.
        ``width`` overrides the dispatch top-k (default ``self.k``).
        """
        self._last_wave = None
        t0 = time.perf_counter()
        dist, idx = self._dispatch(Qb, width)
        return dist, idx, time.perf_counter() - t0

    def _serve_batch(
        self, Qb: np.ndarray, now: float
    ) -> tuple[np.ndarray, np.ndarray, float]:
        """Serve one micro-batch, then run the off-path observability
        pass (shadow-oracle sampling, explain capture, flight rings).

        The observability work happens strictly *after* the batch's
        service time has been measured by :meth:`_serve_batch_core`, so
        the virtual clock — and the latency percentiles built on it —
        never see the oracle's brute-force pass or the explain
        bookkeeping.  With nothing attached the wrapper is two attribute
        checks.
        """
        active = (
            self.quality is not None
            or self.flight is not None
            or bool(self._explain_tickets)
        )
        if not active:
            self._batch_info = None
            return self._serve_batch_core(Qb, now)
        rules_before = dict(self.rule_counts)
        self._last_hit_mask = None
        dist, idx, service = self._serve_batch_core(Qb, now)
        self._observe_batch(Qb, dist, idx, service, now, rules_before)
        return dist, idx, service

    def _serve_batch_core(
        self, Qb: np.ndarray, now: float
    ) -> tuple[np.ndarray, np.ndarray, float]:
        """Serve one micro-batch: cache hits first, index for the rest.

        Returns ``(dist, idx, service_s)`` at the *served* width
        ``k_serve``.  Without a cache this is :meth:`_timed_dispatch`
        verbatim.  With one, certified hits skip the index entirely,
        misses dispatch through the (unchanged, subclass-overridable)
        :meth:`_timed_dispatch` at width ``k + 1`` and are admitted as new
        keys; the cache's own work (lookup GEMM, hit rescore, admission)
        is measured and included in the batch's service time.  A cache
        disabled by a quality breach is bypassed entirely (dispatch at
        the served width — no over-fetch, no admission).
        """
        if self.cache is None:
            return self._timed_dispatch(Qb)
        if not self.cache.enabled:
            return self._timed_dispatch(Qb, self.k_serve)
        t0 = time.perf_counter()
        hit, hd, hi = self.cache.lookup(Qb, now=now)
        cache_s = time.perf_counter() - t0
        self._last_hit_mask = hit
        m = int(Qb.shape[0])
        dist = np.empty((m, self.k_serve))
        idx = np.empty((m, self.k_serve), dtype=np.int64)
        if hd is not None:
            dist[hit], idx[hit] = hd, hi
        miss = ~hit
        service = 0.0
        if np.any(miss):
            md, mi, service = self._timed_dispatch(Qb[miss])
            ks = self.k_serve
            # A tie at the k-boundary (d_k == d_{k+1}) means which tie
            # member makes the top-k is a width-dependent engine choice:
            # the k+1 over-fetch trimmed to k may pick a different (equally
            # correct) id than an uncached k-width dispatch would.  Re-ask
            # those rare rows at width k so the served row — and the stored
            # entry an exact repeat is later served from — is the engine's
            # own k-width answer.  The certified radius is 0 either way.
            tie = np.isfinite(md[:, ks - 1]) & (md[:, ks - 1] == md[:, ks])
            if np.any(tie):
                td, ti, extra = self._timed_dispatch(Qb[miss][tie], ks)
                service += extra
                md[tie, :ks] = td
                mi[tie, :ks] = ti
                md[tie, ks] = td[:, ks - 1]
                mi[tie, ks] = -1
            t1 = time.perf_counter()
            self.cache.admit(Qb[miss], md, mi, now=now)
            cache_s += time.perf_counter() - t1
            dist[miss] = md[:, : self.k_serve]
            idx[miss] = mi[:, : self.k_serve]
        return dist, idx, service + cache_s

    # -------------------------------------------------------- observability
    def _disable_cache_on_breach(self) -> None:
        """Quality-breach response: stop serving from the cache (its
        certified radii are only as good as the index answers that were
        admitted under them)."""
        if self.cache is None or not self.cache.enabled:
            return
        self.cache.disable("quality breach")
        if self.flight is not None:
            self.flight.record_event(
                "cache-disabled", reason="quality breach"
            )

    def _explain_shards(self) -> dict | None:
        """Scatter-gather shape of the last dispatch (sharded subclass
        stamps ``_last_wave``; the base dispatch clears it)."""
        return self._last_wave

    def _observe_batch(
        self,
        Qb: np.ndarray,
        dist: np.ndarray,
        idx: np.ndarray,
        service: float,
        now: float,
        rules_before: dict,
    ) -> None:
        """The off-path observability pass for one served batch: digest
        what the serve decided (router, cache, rules, shards), feed the
        shadow oracle, and stock the flight rings."""
        m = int(Qb.shape[0])
        rules_delta = {
            key: val - rules_before.get(key, 0)
            for key, val in self.rule_counts.items()
            if val != rules_before.get(key, 0)
        }
        hit_mask = self._last_hit_mask
        all_hit = hit_mask is not None and bool(np.all(hit_mask))
        dec = getattr(self.index, "last_decision", None)
        rung = getattr(self.index, "rung", None)
        if all_hit:
            backend = "cache"
        elif dec is not None:
            backend = dec.backend
        else:
            backend = type(self.index).__name__
        router_info = None
        if dec is not None and not all_hit:
            router_info = {
                "backend": dec.backend,
                "reason": dec.reason,
                "predicted_s": dec.predicted_s,
                "measured_s": dec.measured_s,
                "budget_s": dec.budget_s,
                "c_est": dec.c_est,
            }
            if hasattr(self.index, "predict_cost_s") and hasattr(
                self.index, "backend_names"
            ):
                router_info["scores"] = {
                    name: self.index.predict_cost_s(name, m, self.k_serve)
                    for name in self.index.backend_names()
                }
        if self.cache is None:
            cache_state = "off"
        elif not self.cache.enabled:
            cache_state = "disabled"
        else:
            cache_state = "on"
        stats = getattr(self.index, "last_stats", None)
        quant = getattr(stats, "quant", None) if stats is not None else None
        if quant is not None and hasattr(quant, "to_dict"):
            quant = quant.to_dict()
        samples: dict[int, object] = {}
        if self.quality is not None:
            t_done = now + service
            for s in self.quality.observe_batch(
                Qb,
                dist,
                idx,
                now=t_done,
                backend=backend,
                rung=int(rung) if rung is not None else 0,
                cache_hit=hit_mask,
            ):
                samples[s.row] = s
            self.quality.observe_rules(rules_delta, m)
        self._batch_info = {
            "m": m,
            "service": service,
            "now": now,
            "backend": backend,
            "rung": rung,
            "router": router_info,
            "rules": rules_delta,
            "cache_state": cache_state,
            "cache_detail": (
                self.cache.last_lookup if cache_state == "on" else None
            ),
            "quant": quant,
            "shards": self._explain_shards(),
            "samples": samples,
        }
        if self.flight is not None:
            self.flight.record_span(
                "serve:batch",
                ts=now,
                dur_s=service,
                size=m,
                backend=backend,
                **({"rung": int(rung)} if rung is not None else {}),
            )
            for s in samples.values():
                self.flight.record_quality(s)
            self.flight.record_explain(self._explain_from_info(row=None))

    def _explain_from_info(
        self, *, row: int | None, ticket: int | None = None
    ) -> QueryExplain:
        """Build a :class:`QueryExplain` for one row of the last observed
        batch (or the whole batch, with ``row=None``)."""
        info = self._batch_info or {}
        cache_state = info.get("cache_state", "off")
        cache_info: dict | None = None
        if cache_state == "off":
            cache_info = None
        elif cache_state == "disabled":
            cache_info = {"outcome": "disabled"}
        else:
            detail = info.get("cache_detail")
            if detail is None:
                cache_info = {"outcome": "miss"}
            elif row is None:
                hit = detail["hit"]
                cache_info = {
                    "outcome": "hit" if bool(np.all(hit)) else "miss",
                    "hits": int(np.count_nonzero(hit)),
                }
            else:
                hit = bool(detail["hit"][row])
                delta = (
                    float(detail["delta"][row])
                    if detail.get("delta") is not None
                    else None
                )
                radius = (
                    float(detail["radius"][row])
                    if detail.get("radius") is not None
                    else None
                )
                if hit:
                    outcome = "hit"
                elif delta is not None and np.isfinite(delta):
                    outcome = "reject"  # a key was near, but outside radius
                else:
                    outcome = "miss"
                cache_info = {
                    "outcome": outcome,
                    "delta": delta if delta is not None and np.isfinite(delta) else None,
                    "radius": radius if radius is not None and np.isfinite(radius) else None,
                }
        sample = info.get("samples", {}).get(row) if row is not None else None
        rung = info.get("rung")
        return QueryExplain(
            ticket=ticket,
            row=row,
            k=self.k_serve,
            backend=info.get("backend", ""),
            rung=int(rung) if rung is not None else None,
            batch_size=info.get("m", 0),
            service_s=info.get("service", 0.0),
            t=info.get("now", 0.0),
            router=info.get("router"),
            rules=info.get("rules", {}),
            cache=cache_info,
            quant=info.get("quant"),
            shards=info.get("shards"),
            sampled=sample is not None,
            recall=sample.recall if sample is not None else None,
        )

    def _observe_served(self, sojourns, now: float) -> None:
        """Per-dispatch telemetry: SLO samples first (a breach may back
        the ladder off), then the metrics instruments.

        ``sojourns`` are the batch's arrival-to-answer latencies and
        ``now`` the completion time, both on the caller's clock — wall
        for the live path, virtual for :meth:`search_stream`.
        """
        depth = self.batcher.pending
        if self.slo is not None:
            for s in sojourns:
                self.slo.observe(s, now=now, queue_depth=depth)
        if self.metrics is not None:
            self._m_served.inc(len(sojourns))
            self._m_batches.inc()
            fresh = self.batcher.n_backoffs - self._backoffs_seen
            if fresh > 0:
                self._m_backoffs.inc(fresh)
            self._backoffs_seen = self.batcher.n_backoffs
            self._m_level.set(self.batcher.level)
            self._m_target.set(self.batcher.target)
            self._m_depth.set(depth)
            for s in sojourns:
                self._m_sojourn.observe(s)

    def _flush(self, now: float) -> tuple[int, float]:
        """Dispatch the batch due at ``now``; answers land in ``_done``.

        Returns ``(batch_size, service_s)`` with the *measured* service
        wall time (also fed to the batcher's controller).
        """
        items = self.batcher.take(now)
        if not items:
            return 0, 0.0
        tickets = [t for (t, _q), _arr in items]
        Qb = np.stack([q for (_t, q), _arr in items])
        tracer = self.ctx.tracer
        qspans = [self._qspans.pop(t, None) for t in tickets]
        # the batch span joins the trace of its oldest query, so worker
        # spans below land under the submitting query's trace id
        parent = next((s for s in qspans if s is not None), None)
        with tracer.span_under(
            parent.context if parent is not None else None,
            "serve:batch",
            size=len(items),
        ):
            dist, idx, service = self._serve_batch(Qb, now)
        self.batcher.observe(len(items), service)
        done_t = now + service
        for row, ticket in enumerate(tickets):
            self._done[ticket] = (dist[row], idx[row])
            span = qspans[row]
            if span is not None:
                tracer.finish(span.set(batch=len(items)))
            if ticket in self._explain_tickets:
                self._explain_tickets.discard(ticket)
                e = self._explain_from_info(row=row, ticket=ticket)
                self._explains[ticket] = e
                if self.flight is not None:
                    self.flight.record_explain(e)
        self._observe_served([done_t - arr for _p, arr in items], done_t)
        return len(items), service

    # ------------------------------------------------------------- live API
    def submit(
        self, q, *, now: float | None = None, explain: bool = False
    ) -> int:
        """Enqueue one query; returns its ticket.  Dispatches inline when
        the batcher's target fills or the latency budget demands it.

        With ``explain=True`` the serving batch's decision digest is
        captured for this ticket; collect it with :meth:`explain` once
        the answer has been served.
        """
        self._require_open()
        row = np.asarray(q, dtype=np.float64)
        if row.ndim == 2 and row.shape[0] == 1:
            row = row[0]
        if row.ndim != 1:
            raise ValueError("submit() takes one query vector at a time")
        ticket = self._next_ticket
        self._next_ticket += 1
        if explain:
            self._explain_tickets.add(ticket)
        now = time.perf_counter() if now is None else float(now)
        tracer = self.ctx.tracer
        if tracer.enabled:
            # each live query gets a root span; outside any open span this
            # starts a fresh trace, so one trace = one query's causal tree
            self._qspans[ticket] = tracer.start_span(
                "serve:query", ticket=ticket
            )
        self.batcher.add((ticket, row), now)
        if self.batcher.ready(now):
            self._flush(now)
        return ticket

    def tick(self, now: float | None = None) -> int:
        """Flush any batch whose latency budget has run out; returns the
        number of queries served.

        The live path needs this: :meth:`submit` only evaluates the
        deadline rule at submission time, so with no further arrivals a
        sub-target batch would wait forever.  A live event loop calls
        ``tick()`` periodically (or sleeps until :meth:`next_deadline`);
        the virtual-clock replay advances time itself and never needs it.
        """
        self._require_open()
        now = time.perf_counter() if now is None else float(now)
        n = 0
        while self.batcher.ready(now):
            size, _service = self._flush(now)
            if size == 0:
                break
            n += size
        return n

    def next_deadline(self) -> float | None:
        """Absolute time at which the oldest queued query's budget forces
        a flush (``None`` when nothing is queued) — what a live event
        loop should sleep until before calling :meth:`tick`."""
        return self.batcher.next_deadline()

    def poll(self, ticket: int, *, now: float | None = None):
        """The answered ``(dist, idx)`` rows for ``ticket``, or ``None``
        while it is still queued.

        Polling also checks the deadline rule: if the queue's budget has
        expired by ``now`` (wall clock when not given), the due batch is
        flushed first — so a caller that only ever submits and polls
        still cannot starve the last sub-target batch.
        """
        ans = self._done.pop(ticket, None)
        if ans is None and not self._closed and self.batcher.pending:
            now = time.perf_counter() if now is None else float(now)
            if self.batcher.ready(now):
                self._flush(now)
                ans = self._done.pop(ticket, None)
        return ans

    def drain(self) -> dict[int, tuple[np.ndarray, np.ndarray]]:
        """Flush everything queued; returns (and forgets) all answers
        collected since the last drain, keyed by ticket."""
        self._require_open()
        while self.batcher.pending:
            self._flush(time.perf_counter())
        out = self._done
        self._done = {}
        return out

    def explain(self, ticket: int) -> QueryExplain | None:
        """The captured :class:`~repro.obs.explain.QueryExplain` for a
        ticket submitted with ``explain=True`` (``None`` while it is
        still queued); collecting forgets it."""
        return self._explains.pop(ticket, None)

    def explain_query(
        self, q, *, now: float | None = None
    ) -> tuple[np.ndarray, np.ndarray, QueryExplain]:
        """One-shot convenience: submit one query with explain capture,
        drain, and return ``(dist, idx, explain)``."""
        ticket = self.submit(q, now=now, explain=True)
        answers = self.drain()
        dist, idx = answers.pop(ticket)
        self._done.update(answers)  # other tickets stay collectible
        return dist, idx, self._explains.pop(ticket)

    # ------------------------------------------------------- trace replay
    def search_stream(
        self,
        Q,
        *,
        qps: float | None = None,
        arrival_times=None,
        name: str | None = None,
        trace_ops: bool = False,
        metrics_jsonl=None,
        snapshot_every_s: float = 1.0,
    ) -> StreamReport:
        """Replay an arrival trace through the server on a virtual clock.

        ``arrival_times`` gives each query's arrival second explicitly
        (any nondecreasing trace — bursty, lulls, ...); ``qps`` is the
        uniform-rate shorthand ``i / qps``.  Exactly one must be given.
        Batches dispatch when the adaptive target fills or a query's
        latency budget runs out, service time is the real measured wall
        time of each ``query()`` call, and simulated time advances by it —
        so queueing behind a slow kernel is captured without any sleeping.

        Returns a :class:`~repro.runtime.report.StreamReport` whose
        ``dist``/``idx`` are in arrival order (identical to per-query
        answers), with sojourn/wait percentiles, throughput over the
        stream makespan, batch-shape counters, and the usual counter
        windows.

        Telemetry: the attached :class:`SLOMonitor` (if any) is driven on
        the virtual clock and its :meth:`~repro.obs.slo.SLOMonitor.report`
        lands in ``report.slo``; with a metrics registry attached,
        ``metrics_jsonl`` appends one snapshot line per
        ``snapshot_every_s`` of *virtual* time (plus a final one at the
        makespan); a tracer on the context yields one root span per query
        with each batch (and its kernel/worker spans) under the oldest
        query it serves.
        """
        self._require_open()
        Qb = np.atleast_2d(np.asarray(Q, dtype=np.float64))
        m = Qb.shape[0]
        if (qps is None) == (arrival_times is None):
            raise ValueError("give exactly one of qps or arrival_times")
        if arrival_times is None:
            if qps <= 0:
                raise ValueError("qps must be positive")
            arrivals = np.arange(m, dtype=np.float64) / float(qps)
        else:
            arrivals = np.asarray(arrival_times, dtype=np.float64)
            if arrivals.shape != (m,):
                raise ValueError("need one arrival time per query")
            if np.any(np.diff(arrivals) < 0):
                raise ValueError("arrival times must be nondecreasing")

        batcher = QueryBatcher(self.policy)  # fresh controller per stream
        tracer = self.ctx.tracer
        recorder = TimingRecorder(trace_ops=trace_ops, tracer=tracer)
        run_ctx = self.ctx.with_recorder(recorder)
        old_ctx, old_batcher = self.ctx, self.batcher
        old_backoffs = self._backoffs_seen
        self.ctx, self.batcher = run_ctx, batcher
        self._backoffs_seen = 0
        self._stream_begin()

        dist = np.full((m, self.k_serve), np.inf)
        idx = np.full((m, self.k_serve), -1, dtype=np.int64)
        sojourn = np.zeros(m)
        wait = np.zeros(m)
        served = deque()
        t0_counts = dict(self.rule_counts)
        self.rule_counts = {}
        #: row -> open root span of an in-flight query
        qspans: dict = {}
        next_snap = float(snapshot_every_s)

        try:
            with run_ctx.observe(self.index.metric) as obs:
                free_at = 0.0  # virtual time the executor is next free
                j = 0
                while j < m or batcher.pending:
                    next_arr = arrivals[j] if j < m else np.inf
                    deadline = batcher.next_deadline()
                    flush_at = max(
                        free_at,
                        np.inf if deadline is None else deadline,
                    )
                    if next_arr <= flush_at:
                        if tracer.enabled:
                            qspans[j] = tracer.start_span(
                                "serve:query", row=j
                            )
                        batcher.add((j, Qb[j]), now=next_arr)
                        j += 1
                        now = max(free_at, next_arr)
                    else:
                        now = flush_at
                    if batcher.ready(now, more_coming=(j < m)):
                        items = batcher.take(now)
                        rows = [payload[0] for payload, _arr in items]
                        # the batch span (and the kernel/worker spans
                        # below it) joins the oldest served query's trace
                        parent = qspans.get(rows[0])
                        with tracer.span_under(
                            parent.context if parent is not None else None,
                            "serve:batch",
                            size=len(items),
                        ):
                            bd, bi, service = self._serve_batch(
                                Qb[rows], now
                            )
                        batcher.observe(len(items), service)
                        done_t = now + service
                        dist[rows], idx[rows] = bd, bi
                        for (_row, _q), arr in items:
                            wait[_row] = now - arr
                            sojourn[_row] = done_t - arr
                            span = qspans.pop(_row, None)
                            if span is not None:
                                tracer.finish(
                                    span.set(
                                        sojourn_s=sojourn[_row],
                                        wait_s=wait[_row],
                                        batch=len(items),
                                    )
                                )
                        served.append(done_t)
                        free_at = done_t
                        self._observe_served(
                            [sojourn[r] for r in rows], done_t
                        )
                        if self.metrics is not None and metrics_jsonl:
                            while next_snap <= done_t:
                                self.metrics.dump_jsonl(
                                    metrics_jsonl, now=next_snap
                                )
                                next_snap += float(snapshot_every_s)
                makespan = max(float(served[-1]) if served else 0.0, 1e-12)
        finally:
            stream_counts = self.rule_counts
            self.ctx, self.batcher = old_ctx, old_batcher
            self.rule_counts = t0_counts
            self._backoffs_seen = old_backoffs

        if self.metrics is not None and metrics_jsonl:
            # final snapshot at the makespan, so short streams still leave
            # at least one line behind
            self.metrics.dump_jsonl(metrics_jsonl, now=makespan)
        if self.flight is not None and self.metrics is not None:
            self.flight.record_metrics(self.metrics, now=makespan)

        report = collect_report(
            name or f"{type(self.index).__name__}:stream",
            run_ctx,
            obs,
            dist=dist,
            idx=idx,
            stats=None,
        )
        stream = StreamReport(
            **vars(report),
            n_queries=m,
            throughput_qps=m / makespan,
            n_batches=batcher.n_batches,
            mean_batch=batcher.n_items / max(batcher.n_batches, 1),
            max_batch=batcher.max_batch_seen,
            deadline_flushes=batcher.n_deadline_flushes,
            n_backoffs=batcher.n_backoffs,
            latency=LatencyStats.from_samples(sojourn),
            wait=LatencyStats.from_samples(wait),
            slo=self.slo.report() if self.slo is not None else None,
            quality=(
                self.quality.report() if self.quality is not None else None
            ),
        )
        stream.rule_counts = stream_counts
        self._augment_report(stream)
        return stream

    # ------------------------------------------------------ subclass hooks
    def _stream_begin(self) -> None:
        """Called by :meth:`search_stream` once the per-stream batcher is
        installed, before any dispatch; subclasses snapshot per-stream
        accumulators here (and call ``super()``)."""
        self._cache_snap = (
            self.cache.counters.snapshot() if self.cache is not None else None
        )

    def _augment_report(self, stream: StreamReport) -> None:
        """Called on the finished :class:`StreamReport` just before
        :meth:`search_stream` returns; subclasses stamp extra fields
        (shard counts, hedges, per-shard load) here (and call
        ``super()``)."""
        if self.cache is not None and self._cache_snap is not None:
            win = self.cache.counters.since(self._cache_snap)
            stream.cache_hits = win.hits
            stream.cache_misses = win.misses
            stream.cache_rejects = win.rejects
            stream.cache_hit_rate = win.hit_rate
