"""Streaming query serving: persistent executors, dataset residency,
adaptive micro-batching (see docs/serving.md).

The paper benchmarks one big batch of queries; a deployed nearest-neighbor
service sees them one at a time.  This package closes that gap without
giving up the paper's batched-kernel economics: a
:class:`~repro.serving.searcher.StreamingSearcher` keeps executors and
prepared operands resident across calls, groups arrivals into
latency-budgeted micro-batches via the measurement-driven
:class:`~repro.serving.batcher.QueryBatcher`, and reports per-query
latency percentiles and throughput as a
:class:`~repro.runtime.report.StreamReport`.
"""

from .batcher import BatchPolicy, QueryBatcher
from .residency import DatasetResidency
from .searcher import StreamingSearcher
from .sharded import HedgePolicy, ShardedStreamingSearcher

__all__ = [
    "BatchPolicy",
    "QueryBatcher",
    "DatasetResidency",
    "StreamingSearcher",
    "HedgePolicy",
    "ShardedStreamingSearcher",
]
