"""Streaming query serving: persistent executors, dataset residency,
adaptive micro-batching (see docs/serving.md).

The paper benchmarks one big batch of queries; a deployed nearest-neighbor
service sees them one at a time.  This package closes that gap without
giving up the paper's batched-kernel economics: a
:class:`~repro.serving.searcher.StreamingSearcher` keeps executors and
prepared operands resident across calls, groups arrivals into
latency-budgeted micro-batches via the measurement-driven
:class:`~repro.serving.batcher.QueryBatcher`, and reports per-query
latency percentiles and throughput as a
:class:`~repro.runtime.report.StreamReport`.

Skewed traffic gets its own tier: the
:class:`~repro.serving.cache.ProximityCache` answers queries within a
certified tolerance radius of a cached neighbor's result with zero
recall loss, and :mod:`repro.serving.scenarios` generates the realistic
traces (diurnal, flash-crowd, Zipfian, drift) that make the skew
measurable.
"""

from .batcher import BatchPolicy, QueryBatcher
from .cache import CacheCounters, CachePolicy, ProximityCache
from .residency import DatasetResidency
from .scenarios import (
    SCENARIOS,
    ScenarioTrace,
    make_scenario,
    observe_scenario,
)
from .searcher import StreamingSearcher
from .sharded import HedgePolicy, ShardedStreamingSearcher

__all__ = [
    "BatchPolicy",
    "QueryBatcher",
    "CacheCounters",
    "CachePolicy",
    "ProximityCache",
    "DatasetResidency",
    "SCENARIOS",
    "ScenarioTrace",
    "make_scenario",
    "observe_scenario",
    "StreamingSearcher",
    "HedgePolicy",
    "ShardedStreamingSearcher",
]
