"""Sharded streaming serving: the distributed RBC behind the micro-batcher.

The paper's §8 direction — distribute the database according to the
representatives — meets the serving front-end here.  A
:class:`ShardedStreamingSearcher` partitions a built exact-RBC index
across ``n_shards`` simulated nodes (each shard owns a set of
representatives together with their complete ownership lists, via
:func:`~repro.distributed.partition.partition_by_representatives`), and
serves every micro-batch the adaptive
:class:`~repro.serving.batcher.QueryBatcher` forms with one
scatter-gather wave:

1. **coordinator stage 1**: ``BF(Q_batch, R)`` with distances retained,
   ``gamma`` = distance to the k-th nearest representative, and the psi /
   3-gamma pruning rules broadcast over the whole block — exactly the
   exact search's pruning, so each query's surviving representatives are
   known before anything leaves the coordinator;
2. **scatter**: each query is routed only to the shards owning at least
   one of its surviving representatives (an empty shard is never
   contacted and never charged communication);
3. **shard scan**: each contacted shard runs the Claim-2-trimmed grouped
   prefix scans over its own lists and returns a per-query top-k partial;
4. **gather + merge**: partials and the stage-1 representative seeds are
   folded with :func:`~repro.parallel.reduce.merge_topk` at width ``2k``
   (each candidate appears at most twice — once as a seed, once in its
   owner's list — so ``2k`` slots cannot evict a genuine neighbor),
   deduplicated with :func:`~repro.parallel.reduce.dedupe_rows`, and
   re-scored with the batching-invariant paired kernel — the same
   re-ranking the single-node searcher applies, so a sharded server's
   answers are *bit-identical* to an unsharded
   :class:`~repro.serving.searcher.StreamingSearcher` over the same index.

**Stragglers and failures.**  Shards are simulated in-process, so each
task's latency is its measured scan wall time plus an injected per-shard
delay (``shard_delays``); a batch completes at the *max* over its shard
completions.  With ``replicas > 1`` every shard is a replica group, and a
:class:`HedgePolicy` re-issues a straggler's task to a replica once the
task has been outstanding past a latency-quantile cutoff (the classic
tail-at-scale hedged request); a dead primary (delay ``inf``) is then
survivable, and a merely slow one stops dictating the batch's p99.  Each
hedge wave counts as an extra scatter-gather **round** — the adaptivity
measure of the distributed-kNN literature — and every round's traffic is
charged to the per-shard :class:`~repro.distributed.cluster.CommStats`
(alpha-beta time when a :class:`~repro.distributed.cluster.ClusterSpec`
is attached).
"""

from __future__ import annotations

import time
from collections import deque
from dataclasses import dataclass

import numpy as np

from ..distributed.cluster import ClusterSpec, CommStats
from ..distributed.partition import (
    partition_by_representatives,
    partition_reps_random,
)
from ..metrics.engine import rescore_pairs
from ..parallel.reduce import (
    EMPTY_IDX,
    dedupe_rows,
    merge_group_topk,
    merge_topk,
    topk_of_block,
)
from ..runtime.report import StreamReport
from .searcher import StreamingSearcher

__all__ = ["HedgePolicy", "ShardedStreamingSearcher"]

_FLOAT_BYTES = 8.0
_ID_BYTES = 8.0


@dataclass(frozen=True)
class HedgePolicy:
    """When to re-issue a straggling shard task to a replica.

    The cutoff after which a task is hedged is
    ``min(factor * Q_quantile(completion history), budget_fraction *
    max_delay_ms)`` — the quantile term adapts to the measured latency
    distribution once ``min_samples`` completions are on record, and the
    budget term guarantees a hedge fires early enough to still make the
    latency budget even on a cold start (or when a dead shard has
    poisoned nothing yet).
    """

    quantile: float = 0.95
    factor: float = 2.0
    min_samples: int = 16
    budget_fraction: float = 0.25
    #: completion-latency samples kept for the quantile estimate
    history: int = 256

    def __post_init__(self) -> None:
        if not 0 < self.quantile < 1:
            raise ValueError("quantile must be in (0, 1)")
        if self.factor < 1.0:
            raise ValueError("factor must be >= 1")
        if not 0 < self.budget_fraction <= 1:
            raise ValueError("budget_fraction must be in (0, 1]")
        if self.min_samples < 1 or self.history < self.min_samples:
            raise ValueError("need 1 <= min_samples <= history")

    def cutoff(self, samples, max_delay_s: float) -> float:
        """Outstanding seconds after which a task is re-issued."""
        cut = self.budget_fraction * float(max_delay_s)
        if len(samples) >= self.min_samples:
            est = self.factor * float(
                np.quantile(np.asarray(samples, dtype=np.float64), self.quantile)
            )
            cut = min(cut, est)
        return cut


@dataclass
class _ShardTally:
    """Lifetime load accounting for one shard (and its replica group)."""

    tasks: int = 0
    queries: int = 0
    evals: int = 0
    busy_s: float = 0.0
    hedges: int = 0

    def copy(self) -> "_ShardTally":
        return _ShardTally(**vars(self))


class ShardedStreamingSearcher(StreamingSearcher):
    """A :class:`StreamingSearcher` whose index is partitioned across
    simulated node shards.

    Parameters (beyond the base searcher's)
    ---------------------------------------
    n_shards:
        number of shards the representatives (with their ownership
        lists) are partitioned over.
    replicas:
        replica-group size per shard; ``> 1`` enables hedged requests.
    partition:
        ``"reps"`` — load-balanced
        :func:`~repro.distributed.partition.partition_by_representatives`
        (default) — or ``"random"`` representative sharding.
    hedge:
        the :class:`HedgePolicy`; ``None`` disables hedging even with
        replicas (the straggler then dictates the batch).
    cluster:
        optional :class:`~repro.distributed.cluster.ClusterSpec` with
        ``n_shards`` nodes; when given, scatter/gather waves also cost
        alpha-beta communication time in the modeled service.
    shard_delays:
        injected per-replica latency (seconds) for straggler/failure
        experiments: ``{w: s}`` delays shard ``w``'s primary, ``{(w, r):
        s}`` a specific replica, and ``float("inf")`` marks it dead.
    shard_seed:
        RNG seed of the ``"random"`` partition.

    The modeled per-batch service time is coordinator work (stage 1 +
    merge, measured) plus communication (when a cluster is attached)
    plus the max over shard completions; answers are bit-identical to
    the unsharded searcher's (see module docstring).
    """

    def __init__(
        self,
        index,
        *,
        n_shards: int,
        replicas: int = 1,
        partition: str = "reps",
        hedge: HedgePolicy | None = None,
        cluster: ClusterSpec | None = None,
        shard_delays: dict | None = None,
        shard_seed: int = 0,
        **kwargs,
    ) -> None:
        if n_shards < 1:
            raise ValueError("n_shards must be >= 1")
        if replicas < 1:
            raise ValueError("replicas must be >= 1")
        if cluster is not None and cluster.n_nodes != n_shards:
            raise ValueError(
                f"cluster has {cluster.n_nodes} nodes, need {n_shards}"
            )
        # a composite index (the router) nominates the concrete structure
        # that owns the disjoint ownership lists the shards partition
        target = getattr(index, "shard_target", None)
        if callable(target):
            index = target()
        for attr in ("lists", "list_dists", "rep_ids", "radii"):
            if getattr(index, attr, None) is None:
                raise ValueError(
                    "sharded serving requires a built RBC index "
                    f"(missing {attr!r})"
                )
        getattr(index, "_require_true_metric", lambda _w: None)(
            "the sharded searcher's pruning"
        )
        n_listed = sum(len(lst) for lst in index.lists)
        if n_listed != index.n:
            # overlapping (one-shot) lists would let one point surface
            # from several shards, breaking the 2k merge-width bound
            raise ValueError(
                "sharded serving requires the exact build's disjoint "
                f"ownership lists ({n_listed} listed points != n={index.n})"
            )
        super().__init__(index, **kwargs)
        self.n_shards = int(n_shards)
        self.replicas = int(replicas)
        self.cluster = cluster
        self.hedge = hedge
        self.shard_delays = dict(shard_delays or {})

        nr = index.n_reps
        if partition == "reps":
            sizes = [len(lst) for lst in index.lists]
            parts = partition_by_representatives(sizes, self.n_shards)
        elif partition == "random":
            parts = partition_reps_random(
                nr, self.n_shards, np.random.default_rng(shard_seed)
            )
        else:
            raise ValueError(f"unknown partition scheme {partition!r}")
        #: per shard, the representative indices it hosts (sorted)
        self.shard_reps = [
            np.asarray(sorted(reps), dtype=np.int64) for reps in parts
        ]
        #: representative index -> owning shard
        self.shard_of = np.full(nr, -1, dtype=np.int64)
        for w, reps in enumerate(self.shard_reps):
            self.shard_of[reps] = w

        # lifetime counters (per-stream values are snapshot diffs)
        self.rounds = 0
        self.hedges = 0
        self.comm = CommStats.zeros(self.n_shards)
        self.shard_tallies = [_ShardTally() for _ in range(self.n_shards)]
        hist = hedge.history if hedge is not None else 256
        #: completion latencies feeding the hedge cutoff quantile — fed
        #: *completions* (hedged included), not primaries, so a
        #: persistently slow shard cannot inflate the quantile until
        #: hedging disables itself
        self._completions: deque = deque(maxlen=hist)
        self._snap = self._snapshot()

        if self.metrics is not None:
            self._m_shard_tasks = self.metrics.counter(
                "repro_shard_tasks_total",
                "scatter tasks dispatched per shard",
                labelnames=("shard",),
            )
            self._m_shard_queries = self.metrics.counter(
                "repro_shard_queries_total",
                "query rows routed per shard",
                labelnames=("shard",),
            )
            self._m_shard_hedges = self.metrics.counter(
                "repro_shard_hedges_total",
                "straggler tasks re-issued to a replica, per shard",
                labelnames=("shard",),
            )
            self._m_shard_busy = self.metrics.gauge(
                "repro_shard_busy_seconds",
                "cumulative modeled busy seconds per shard group",
                labelnames=("shard",),
            )
            self._m_rounds = self.metrics.counter(
                "repro_scatter_rounds_total",
                "scatter-gather communication rounds",
            )

    # -------------------------------------------------------------- helpers
    def _delay(self, w: int, r: int) -> float:
        """Injected latency of replica ``r`` of shard ``w``."""
        d = self.shard_delays.get((w, r))
        if d is None and r == 0:
            d = self.shard_delays.get(w)
        return float(d) if d is not None else 0.0

    def _hedge_target(self, w: int) -> int:
        """The replica a hedge re-issues to: least injected delay, ties
        to the lowest index (the primary, replica 0, is excluded)."""
        return min(
            range(1, self.replicas), key=lambda r: (self._delay(w, r), r)
        )

    def _scan_shard(
        self,
        Qb: np.ndarray,
        w: int,
        rows: np.ndarray,
        D_R: np.ndarray,
        gamma: np.ndarray,
        keep: np.ndarray,
        width: int | None = None,
    ) -> tuple[np.ndarray, np.ndarray, int, int]:
        """Shard ``w``'s node-local stage 2 for the routed queries.

        Returns ``(dist, idx, evals, trimmed)`` with ``dist``/``idx`` of
        shape ``(len(rows), k)`` — the per-query top-k among candidates
        owned by this shard's representatives, produced by the same
        Claim-2-trimmed grouped prefix scans as the exact search.
        """
        index, metric = self.index, self.index.metric
        k = self.k if width is None else int(width)
        best_d = np.full((rows.size, k), np.inf)
        best_i = np.full((rows.size, k), EMPTY_IDX, dtype=np.int64)
        evals = trimmed = 0
        lists, list_dists = index.lists, index.list_dists
        for j in self.shard_reps[w]:
            sub = np.flatnonzero(keep[rows, j])
            if sub.size == 0:
                continue
            lst = lists[j]
            if lst.size == 0:
                continue
            bound = D_R[rows[sub], j] + gamma[rows[sub]]
            cut = np.searchsorted(list_dists[j], bound, side="right")
            trimmed += int(sub.size * lst.size - cut.sum())
            nz = cut > 0
            sub, cut = sub[nz], cut[nz]
            if sub.size == 0:
                continue
            prefix_len = int(cut.max())
            prefix = lst[:prefix_len]
            D = metric.pairwise(
                metric.take(Qb, rows[sub]), metric.take(index.X, prefix)
            )
            if int(cut.min()) < prefix_len:
                # ragged group scanned as one padded block: a row only
                # owns its own trimmed prefix
                D[np.arange(prefix_len)[None, :] >= cut[:, None]] = np.inf
            merge_group_topk(best_d, best_i, sub, D, prefix, n_valid=cut)
            evals += int(sub.size) * prefix_len
        return best_d, best_i, evals, trimmed

    # ------------------------------------------------------------- dispatch
    def _timed_dispatch(
        self, Qb: np.ndarray, width: int | None = None
    ) -> tuple[np.ndarray, np.ndarray, float]:
        """One micro-batch as a scatter-gather wave over the shards.

        Returns the bit-identical answers plus the *modeled* service
        time: measured coordinator work + communication (when a cluster
        is attached) + the max over shard-task completions, hedging
        included.  The scans run inline (the shards are simulated), so
        the measured walls feed the model instead of the clock.
        ``width`` overrides the dispatch top-k (default ``self.k``).
        """
        t_start = time.perf_counter()
        index, metric = self.index, self.index.metric
        k = self.k if width is None else int(width)
        m = int(Qb.shape[0])
        nr = index.n_reps
        tracer = self.ctx.tracer

        # ---- coordinator stage 1: BF(Q, R), gamma, pruning rules
        D_R = metric.pairwise(Qb, index.rep_data)
        if nr >= k:
            gamma = np.partition(D_R, k - 1, axis=1)[:, k - 1]
        else:
            # pruning is unsound when fewer representatives than k exist
            gamma = np.full(m, np.inf)
        psi_kept = D_R - index.radii[None, :] < gamma[:, None]
        g3_kept = D_R <= 3.0 * gamma[:, None]
        keep = psi_kept & g3_kept

        counts = self.rule_counts
        counts["n_queries"] = counts.get("n_queries", 0) + m
        counts["pruned_by_psi"] = counts.get("pruned_by_psi", 0) + int(
            m * nr - np.count_nonzero(psi_kept)
        )
        counts["pruned_by_3gamma"] = counts.get("pruned_by_3gamma", 0) + int(
            np.count_nonzero(psi_kept & ~g3_kept)
        )

        # ---- scatter: route each query to the shards owning survivors
        shard_rows = [
            np.flatnonzero(keep[:, reps].any(axis=1))
            if reps.size
            else np.empty(0, dtype=np.int64)
            for reps in self.shard_reps
        ]

        # ---- shard scans (simulated in-process, walls measured per task)
        partials: dict[int, tuple[np.ndarray, np.ndarray]] = {}
        walls: dict[int, float] = {}
        trimmed = 0
        examined = 0
        for w, rows in enumerate(shard_rows):
            if rows.size == 0:
                continue
            with tracer.span("serve:shard", shard=w, queries=int(rows.size)):
                t0 = time.perf_counter()
                pd, pi, evals_w, trim_w = self._scan_shard(
                    Qb, w, rows, D_R, gamma, keep, width
                )
                walls[w] = time.perf_counter() - t0
            partials[w] = (pd, pi)
            trimmed += trim_w
            examined += evals_w
            tally = self.shard_tallies[w]
            tally.tasks += 1
            tally.queries += int(rows.size)
            tally.evals += evals_w
        counts["trimmed_by_4gamma"] = counts.get("trimmed_by_4gamma", 0) + trimmed

        # ---- straggler handling: completion per task, hedged if due
        cutoff = np.inf
        if self.hedge is not None and self.replicas > 1:
            cutoff = self.hedge.cutoff(
                self._completions, self.policy.max_delay_s
            )
        completions: dict[int, float] = {}
        hedged: list[int] = []
        for w, wall in walls.items():
            primary = wall + self._delay(w, 0)
            completion = primary
            busy = wall
            if primary > cutoff:
                r = self._hedge_target(w)
                # the replica starts at the cutoff and repeats the scan
                completion = min(primary, cutoff + wall + self._delay(w, r))
                hedged.append(w)
                busy += wall
                self.shard_tallies[w].hedges += 1
            if not np.isfinite(completion):
                raise RuntimeError(
                    f"shard {w} never answered (injected delay is inf and "
                    "no live replica was hedged); serve with replicas > 1 "
                    "and a HedgePolicy to survive dead shards"
                )
            completions[w] = completion
            self.shard_tallies[w].busy_s += busy
            self._completions.append(completion)
        self.hedges += len(hedged)
        rounds = (1 if walls else 0) + (1 if hedged else 0)
        self.rounds += rounds

        # ---- communication accounting (hedge waves re-pay their traffic)
        dim = int(Qb.shape[1])
        scatter = [0.0] * self.n_shards
        gather = [0.0] * self.n_shards
        for w, rows in enumerate(shard_rows):
            if rows.size == 0:
                continue
            mult = 2.0 if w in hedged else 1.0
            scatter[w] = mult * rows.size * dim * _FLOAT_BYTES
            gather[w] = mult * rows.size * k * (_FLOAT_BYTES + _ID_BYTES)
        msgs = 2 * len(walls) + 2 * len(hedged)
        self.comm.add(CommStats(scatter, gather, msgs))
        comm_s = 0.0
        if self.cluster is not None and walls:
            comm_s = self.cluster.comm_phase_time(
                scatter
            ) + self.cluster.comm_phase_time(gather)

        # ---- gather + merge: seeds, then each shard's partial, at 2k
        W = 2 * k
        kk = min(k, nr)
        seed_cols = np.argpartition(D_R, kk - 1, axis=1)[:, :kk]
        sd = np.take_along_axis(D_R, seed_cols, axis=1)
        sg = index.rep_ids[seed_cols]
        acc_d, li = topk_of_block(sd, W)
        acc_i = np.where(
            li >= 0,
            np.take_along_axis(sg, np.clip(li, 0, None), axis=1),
            EMPTY_IDX,
        ).astype(np.int64)
        acc_i = np.where(np.isfinite(acc_d), acc_i, EMPTY_IDX)
        counts["candidates_examined"] = (
            counts.get("candidates_examined", 0) + examined + m * kk
        )
        for w, (pd, pi) in partials.items():
            rows = shard_rows[w]
            pd = np.pad(pd, ((0, 0), (0, W - k)), constant_values=np.inf)
            pi = np.pad(pi, ((0, 0), (0, W - k)), constant_values=EMPTY_IDX)
            acc_d[rows], acc_i[rows] = merge_topk(
                (acc_d[rows], acc_i[rows]), (pd, pi)
            )
        dist, idx = dedupe_rows(acc_d, acc_i, k)

        # the same batching-invariant re-ranking as the base searcher —
        # this is what makes sharded and single-node answers `==`
        if self.rescore:
            d = rescore_pairs(metric, Qb, index.X, idx)
            order = np.argsort(d, axis=1, kind="stable")
            dist = np.take_along_axis(d, order, axis=1)
            idx = np.take_along_axis(idx, order, axis=1)
            idx = np.where(np.isfinite(dist), idx, -1)

        coord_wall = (time.perf_counter() - t_start) - sum(walls.values())
        service = coord_wall + comm_s + (
            max(completions.values()) if completions else 0.0
        )
        # EXPLAIN hook: scatter-gather shape of this dispatch
        self._last_wave = {
            "fan_out": len(walls),
            "shards": sorted(walls),
            "hedges": len(hedged),
            "rounds": rounds,
        }

        if self.metrics is not None:
            for w in walls:
                self._m_shard_tasks.inc(shard=w)
                self._m_shard_queries.inc(
                    float(shard_rows[w].size), shard=w
                )
                self._m_shard_busy.set(
                    self.shard_tallies[w].busy_s, shard=w
                )
            for w in hedged:
                self._m_shard_hedges.inc(shard=w)
            if rounds:
                self._m_rounds.inc(rounds)
        return dist, idx, service

    # ------------------------------------------------------- report plumbing
    def _snapshot(self):
        return (
            self.rounds,
            self.hedges,
            [t.copy() for t in self.shard_tallies],
            CommStats(
                list(self.comm.bytes_to_nodes),
                list(self.comm.bytes_from_nodes),
                self.comm.messages,
            ),
        )

    def _stream_begin(self) -> None:
        super()._stream_begin()
        self._snap = self._snapshot()

    def _augment_report(self, stream: StreamReport) -> None:
        super()._augment_report(stream)
        r0, h0, t0, c0 = self._snap
        stream.n_shards = self.n_shards
        stream.rounds = self.rounds - r0
        stream.hedges = self.hedges - h0
        stream.per_shard = [
            {
                "shard": w,
                "n_reps": int(self.shard_reps[w].size),
                "tasks": t.tasks - t0[w].tasks,
                "queries": t.queries - t0[w].queries,
                "evals": t.evals - t0[w].evals,
                "busy_s": t.busy_s - t0[w].busy_s,
                "hedges": t.hedges - t0[w].hedges,
                "bytes_to": self.comm.bytes_to_nodes[w] - c0.bytes_to_nodes[w],
                "bytes_from": self.comm.bytes_from_nodes[w]
                - c0.bytes_from_nodes[w],
            }
            for w, t in enumerate(self.shard_tallies)
        ]
