"""Proximity-keyed semantic result cache: answer near-duplicate queries
from a cached neighbor's result, with **zero recall loss**.

Real query traffic is skewed — Zipfian hot keys, flash crowds around one
topic, users re-issuing the same embedding with tiny perturbations.  The
paper's stage-2 machinery already pays for the tool that exploits this:
the triangle inequality.  A cached entry stores a *key* query ``q0``, its
exact top-``k`` answer, and a **certified tolerance radius**

.. math::

    r \\;=\\; \\tfrac{1}{2}\\,(d_{k+1} - d_k)

derived from the gap between the key's ``k``-th and ``(k+1)``-th neighbor
distances (the serving front-end over-fetches one extra neighbor on every
miss to learn the gap).  For a new query ``q`` with ``delta = rho(q, q0)
<= r`` the triangle inequality gives, for every cached member ``p`` and
every outside point ``p'``::

    rho(q, p)  <= d_k     + delta          (cached members stay close)
    rho(q, p') >= d_{k+1} - delta          (everything else stays far)

so ``delta <= r`` implies the cached id set *is* ``q``'s exact top-``k``
set — the hit is **certificate-checked**, never heuristic.  Hits are
optionally re-scored through the paired kernel
(:func:`~repro.metrics.engine.rescore_pairs`) so the returned distances
are exact for the *new* query, and re-ranked with the same structural
tie-break the batched stage-2 kernels use, keeping cache-served rows
id-identical to a cache-off server.

Lookup itself rides the existing kernel engine: the key set lives in one
contiguous buffer whose prepared form (hoisted norms) is cached in the
process-wide :data:`~repro.metrics.engine.operand_cache` under a version
stamp, so a lookup is a single small ``BF(Q, keys)`` GEMM.

Staleness is impossible by construction: the cache snapshots the index's
mutation version (the ``RBCBase._version`` stamp *and* the
:class:`~repro.core.packed.PackedLists` mutation version), and any
lookup after an ``insert``/``delete``/rebuild clears every entry before
answering.  Entries also carry a TTL and are evicted LRU beyond
``max_entries``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from ..index.protocol import capabilities_for
from ..metrics.engine import operand_cache, rescore_pairs

__all__ = ["CachePolicy", "CacheCounters", "ProximityCache"]

#: structural rank for ids outside every ownership list (tombstoned or
#: padding): sorts after any real candidate among equal distances
_RANK_FAR = np.iinfo(np.int64).max // 2


@dataclass(frozen=True)
class CachePolicy:
    """Knobs of a :class:`ProximityCache`.

    ``safety`` relatively shrinks every certified radius before it is
    trusted, absorbing the few-ulp float error between the exact real
    arithmetic of the certificate and the computed distances; it costs a
    vanishing fraction of hits and buys the zero-recall guarantee back
    from floating point.  ``rescore=False`` returns the *key's* distances
    on a hit (ids stay exact) — leave it on unless the metric's paired
    kernel dominates your hit cost.
    """

    max_entries: int = 2048
    ttl_s: float = math.inf
    safety: float = 1e-9
    rescore: bool = True

    def __post_init__(self) -> None:
        if self.max_entries < 1:
            raise ValueError("max_entries must be >= 1")
        if not self.ttl_s > 0:
            raise ValueError("ttl_s must be positive")
        if not 0.0 <= self.safety < 1.0:
            raise ValueError("safety must be in [0, 1)")


class CacheCounters:
    """Lifetime tallies of cache activity (diffed per stream).

    ``rejects`` counts *certified rejects*: lookups whose nearest key
    existed but whose certificate failed (``delta > r``) — every reject
    is also a miss, so ``hits + misses`` is the lookup total.
    """

    __slots__ = (
        "hits",
        "misses",
        "rejects",
        "admitted",
        "evicted",
        "expired",
        "invalidated",
    )

    def __init__(self, **kw) -> None:
        for name in self.__slots__:
            setattr(self, name, int(kw.get(name, 0)))

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        total = self.lookups
        return self.hits / total if total else 0.0

    def snapshot(self) -> "CacheCounters":
        return CacheCounters(**self.to_dict())

    def since(self, t0: "CacheCounters") -> "CacheCounters":
        """Counter deltas accumulated after snapshot ``t0``."""
        return CacheCounters(
            **{n: getattr(self, n) - getattr(t0, n) for n in self.__slots__}
        )

    def to_dict(self) -> dict:
        return {name: getattr(self, name) for name in self.__slots__}

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        body = ", ".join(f"{n}={getattr(self, n)}" for n in self.__slots__)
        return f"CacheCounters({body})"


class ProximityCache:
    """Certificate-checked result cache over one built exact index.

    Parameters
    ----------
    index:
        a built **exact** index over an ndarray database whose metric
        satisfies the triangle inequality (the certificate is meaningless
        without it).  :class:`~repro.core.exact.ExactRBC` is the primary
        client; any exact registry backend works.
    k:
        neighbors per served answer.  The serving front-end fetches
        ``k + 1`` on misses; :meth:`admit` consumes the widened rows.
    policy:
        :class:`CachePolicy`; defaults are sized for a serving session.

    The cache reads the index's mutation stamps on every call and clears
    itself whenever they move, so a certified answer can never outlive
    the database state it was computed against.
    """

    def __init__(
        self, index, k: int, *, policy: CachePolicy | None = None
    ) -> None:
        caps = capabilities_for(index)
        if not caps.exact:
            raise ValueError(
                "ProximityCache requires an exact index: the certificate "
                "radius is derived from exact neighbor distances"
            )
        if not getattr(index.metric, "is_true_metric", False):
            raise ValueError(
                f"{type(index.metric).__name__} does not satisfy the "
                "triangle inequality, which the cache certificate requires"
            )
        getattr(index, "_require_built", lambda: None)()
        if not isinstance(getattr(index, "X", None), np.ndarray):
            raise ValueError("ProximityCache requires an ndarray database")
        if k < 1:
            raise ValueError("k must be >= 1")
        self.index = index
        self.metric = index.metric
        self.k = int(k)
        self.policy = policy or CachePolicy()
        self.counters = CacheCounters()
        d = int(index.X.shape[1])
        self._d = d
        #: compact entry store: row i of each array is one live entry
        self._keys = np.zeros((0, d))
        self._dist = np.zeros((0, self.k))
        self._idx = np.zeros((0, self.k), dtype=np.int64)
        self._radius = np.zeros(0)
        self._born = np.zeros(0)
        self._used = np.zeros(0)
        self._n = 0
        #: operand-cache stamp for the key buffer; bumped by any mutation
        self._buf_version = 0
        self._seen = self._data_version()
        self._ranks: np.ndarray | None = None
        #: serving front-ends skip a disabled cache entirely (the
        #: quality monitor's breach hook flips this — recall pressure
        #: takes the cache out of the path until re-enabled)
        self.enabled = True
        #: why the cache was last disabled (diagnostics)
        self.disabled_reason: str | None = None
        #: per-batch lookup detail for EXPLAIN: ``delta`` / ``radius``
        #: per row (``None`` while the store is empty) and the hit mask
        self.last_lookup: dict | None = None

    # ------------------------------------------------------------- gating
    def disable(self, reason: str | None = None) -> None:
        """Take the cache out of the serving path (entries are kept;
        :meth:`enable` puts it back)."""
        self.enabled = False
        self.disabled_reason = reason

    def enable(self) -> None:
        self.enabled = True
        self.disabled_reason = None

    # ------------------------------------------------------------ liveness
    def __len__(self) -> int:
        return self._n

    def _data_version(self) -> tuple:
        """The index state this cache's certificates were computed
        against: the prepared-operand version stamp, the packed-list
        mutation version, and the database buffer identity."""
        idx = self.index
        packed = getattr(idx, "packed", None)
        return (
            getattr(idx, "_version", 0),
            getattr(packed, "version", -1) if packed is not None else -1,
            id(idx.X),
        )

    def _sync(self) -> None:
        """Drop everything if the index mutated since the last call."""
        v = self._data_version()
        if v != self._seen:
            self.counters.invalidated += self._n
            self._n = 0
            self._buf_version += 1
            self._seen = v
            self._ranks = None

    def invalidate(self) -> None:
        """Explicitly drop all entries (mutation hooks call :meth:`_sync`
        lazily, so this is only needed for out-of-band database edits the
        version stamps cannot see)."""
        self.counters.invalidated += self._n
        self._n = 0
        self._buf_version += 1
        self._ranks = None

    # ------------------------------------------------------- tie structure
    def _struct_ranks(self) -> np.ndarray:
        """Global id -> enumeration rank of the batched stage-2 scan.

        The exact kernels enumerate candidates in packed-storage order
        (ascending list, ascending within-list position) and their final
        stable sort keeps that order among equal distances; re-ranking a
        hit with the same key keeps cache-served ties bit-identical to a
        fresh query.  Indexes without packed lists (brute force) scan in
        id order, so the rank *is* the id.
        """
        if self._ranks is None:
            n = int(self.index.n)
            packed = getattr(self.index, "packed", None)
            if packed is None:
                self._ranks = np.arange(n, dtype=np.int64)
            else:
                rank = np.full(n, _RANK_FAR, dtype=np.int64)
                for j in range(packed.n_lists):
                    lo, hi = packed.span(j)
                    rank[packed.ids[lo:hi]] = np.arange(lo, hi)
                self._ranks = rank
        return self._ranks

    # ------------------------------------------------------------- storage
    def _grow(self, need: int) -> None:
        cap = max(64, 2 * self._keys.shape[0], need)
        cap = min(cap, max(self.policy.max_entries, need))

        def widen(a: np.ndarray) -> np.ndarray:
            out = np.zeros((cap,) + a.shape[1:], dtype=a.dtype)
            out[: self._n] = a[: self._n]
            return out

        self._keys = widen(self._keys)
        self._dist = widen(self._dist)
        self._idx = widen(self._idx)
        self._radius = widen(self._radius)
        self._born = widen(self._born)
        self._used = widen(self._used)

    def _discard(self, rows: np.ndarray) -> None:
        """Swap-delete ``rows`` (descending), keeping the store compact."""
        for r in sorted((int(r) for r in rows), reverse=True):
            last = self._n - 1
            if r != last:
                for a in (
                    self._keys,
                    self._dist,
                    self._idx,
                    self._radius,
                    self._born,
                    self._used,
                ):
                    a[r] = a[last]
            self._n -= 1
        self._buf_version += 1

    def _expire(self, now: float) -> None:
        if not math.isfinite(self.policy.ttl_s) or self._n == 0:
            return
        old = np.flatnonzero(
            now - self._born[: self._n] > self.policy.ttl_s
        )
        if old.size:
            self.counters.expired += int(old.size)
            self._discard(old)

    # -------------------------------------------------------------- lookup
    def _key_dists(self, Qb: np.ndarray) -> np.ndarray:
        """``BF(Q, keys)`` through the kernel engine: the key buffer's
        prepared form (hoisted norms) is cached process-wide under this
        cache's version stamp, so steady-state lookups prepare only the
        query block."""
        prepare = getattr(self.metric, "prepare", None)
        if prepare is None:  # non-vector metrics: plain kernel
            return self.metric.pairwise(Qb, self._keys[: self._n])
        Kp = operand_cache.get(
            self.metric, self._keys, version=self._buf_version
        )
        return self.metric.pairwise_prepared(
            prepare(Qb), Kp.slice(0, self._n)
        )

    def lookup(
        self, Qb: np.ndarray, *, now: float = 0.0
    ) -> tuple[np.ndarray, np.ndarray | None, np.ndarray | None]:
        """Try to answer a query batch from cache.

        Returns ``(hit_mask, dist, idx)``: ``hit_mask`` flags the rows of
        ``Qb`` served from cache, and ``dist``/``idx`` hold one
        ``(n_hits, k)`` row per flagged query (both ``None`` when nothing
        hit).  Counters: a certified hit increments ``hits``; any other
        lookup is a ``miss``, and the subset whose nearest key existed
        but failed the certificate also counts as a ``reject``.
        """
        self._sync()
        self._expire(now)
        Qb = np.atleast_2d(np.asarray(Qb, dtype=np.float64))
        m = int(Qb.shape[0])
        hit = np.zeros(m, dtype=bool)
        if self._n == 0:
            self.counters.misses += m
            self.last_lookup = {"hit": hit.copy(), "delta": None, "radius": None}
            return hit, None, None

        D = self._key_dists(Qb)
        j = np.argmin(D, axis=1)
        delta = D[np.arange(m), j]
        ok = (delta <= self._radius[: self._n][j]) | (delta == 0.0)
        # the Gram-trick distance between *identical* vectors cancels
        # catastrophically to ~sqrt(eps)*norm, not zero — recover the
        # exact-repeat hit (the hot-key fast path) by comparing
        # coordinates, filtered to near-zero rows so the scan stays O(1)
        scale = 1.0 + np.sqrt(np.einsum("ij,ij->i", Qb, Qb))
        maybe = np.flatnonzero(~ok & (delta <= 1e-6 * scale))
        for r in maybe:
            if np.array_equal(Qb[r], self._keys[j[r]]):
                ok[r] = True
        hit[:] = ok
        self.last_lookup = {
            "hit": hit.copy(),
            "delta": delta.copy(),
            "radius": self._radius[: self._n][j].copy(),
        }

        n_hit = int(np.count_nonzero(ok))
        self.counters.hits += n_hit
        self.counters.misses += m - n_hit
        self.counters.rejects += m - n_hit
        if n_hit == 0:
            return hit, None, None

        rows = np.flatnonzero(ok)
        ent = j[rows]
        self._used[ent] = now
        hd = self._dist[ent].copy()
        hi = self._idx[ent].copy()
        if self.policy.rescore:
            d_re = rescore_pairs(self.metric, Qb[rows], self.index.X, hi)
            ranks = self._struct_ranks()
            r_keys = np.where(
                hi >= 0, ranks[np.clip(hi, 0, None)], _RANK_FAR
            )
            order = np.lexsort((r_keys, d_re))
            hd = np.take_along_axis(d_re, order, axis=1)
            hi = np.take_along_axis(hi, order, axis=1)
            hi = np.where(np.isfinite(hd), hi, -1)
        return hit, hd, hi

    # --------------------------------------------------------------- admit
    def admit(
        self,
        Qb: np.ndarray,
        dist: np.ndarray,
        idx: np.ndarray,
        *,
        now: float = 0.0,
    ) -> int:
        """Insert freshly-answered queries as keys.

        ``dist``/``idx`` are the over-fetched ``(m, k + 1)`` served rows
        (exact, re-scored); column ``k`` exists only to certify the
        radius and is not stored.  Rows the policy cannot certify (NaN
        distances) are skipped.  Returns the number admitted.
        """
        self._sync()
        Qb = np.atleast_2d(np.asarray(Qb, dtype=np.float64))
        m = int(Qb.shape[0])
        if dist.shape != (m, self.k + 1) or idx.shape != (m, self.k + 1):
            raise ValueError(
                f"admit needs (m, k+1) = ({m}, {self.k + 1}) rows, got "
                f"dist {dist.shape}, idx {idx.shape}"
            )
        d_k = dist[:, self.k - 1]
        d_k1 = dist[:, self.k]
        with np.errstate(invalid="ignore"):
            radius = 0.5 * (d_k1 - d_k)
        # inf - inf: fewer than k live points — the answer is the whole
        # database for any query, so the certificate holds at any radius
        radius = np.where(np.isnan(radius), np.inf, radius)
        finite = np.isfinite(radius)
        radius[finite] = np.maximum(
            0.0, radius[finite] * (1.0 - self.policy.safety)
        )
        keep = ~np.isnan(d_k1)
        take = np.flatnonzero(keep)[: self.policy.max_entries]
        if take.size == 0:
            return 0

        need = self._n + int(take.size)
        if need > self._keys.shape[0]:
            self._grow(min(need, self.policy.max_entries))
        over = self._n + int(take.size) - self.policy.max_entries
        if over > 0:
            lru = np.argpartition(self._used[: self._n], over - 1)[:over]
            self.counters.evicted += int(lru.size)
            self._discard(lru)

        lo = self._n
        hi = lo + int(take.size)
        self._keys[lo:hi] = Qb[take]
        self._dist[lo:hi] = dist[take, : self.k]
        self._idx[lo:hi] = idx[take, : self.k]
        self._radius[lo:hi] = radius[take]
        self._born[lo:hi] = now
        self._used[lo:hi] = now
        self._n = hi
        self._buf_version += 1
        self.counters.admitted += int(take.size)
        return int(take.size)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"ProximityCache(k={self.k}, entries={self._n}/"
            f"{self.policy.max_entries}, hit_rate={self.counters.hit_rate:.3f})"
        )
