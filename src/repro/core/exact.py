"""The exact RBC search algorithm (paper §5.2).

Search runs as two brute-force stages separated by a pruning step that uses
only the triangle inequality:

1. ``BF(Q, R)`` with distances retained; ``gamma`` = distance to the
   nearest representative is an upper bound on the distance to the true NN
   (representatives are database points).
2. Pruning discards every representative ``r`` that provably cannot own a
   nearest neighbor, by two rules used simultaneously (the paper notes
   their combination improves empirical performance):

   * **psi rule** (inequality (1)): discard if
     ``rho(q, r) >= gamma + psi_r`` — the whole ball around ``r`` lies
     further than the bound;
   * **3-gamma rule** (inequality (2) / Lemma 1): discard if
     ``rho(q, r) > 3 gamma`` — the owner of the NN is within ``3 gamma``.

   Within surviving lists, the sorted order by distance-to-representative
   enables the Claim-2 trim: a nearest neighbor owned by ``r`` satisfies
   ``rho(x, r) <= rho(q, r) + gamma``, so only a sorted prefix is scanned.
3. ``BF(q, X[L_1 ∪ ... ∪ L_t])`` over the surviving candidates.

For k-NN, ``gamma`` is the distance to the k-th nearest representative
(still an upper bound on the k-th NN distance since ``R ⊂ X``); all three
rules generalize with that substitution.

An approximation knob ``approx_eps`` implements the paper's footnote 1:
with ``approx_eps = e > 0`` the pruning threshold shrinks from ``gamma`` to
``gamma / (1 + e)``, which guarantees the returned point is within a factor
``(1 + e)`` of the true NN distance while pruning more aggressively.
"""

from __future__ import annotations

import numpy as np

from ..parallel.blocking import row_chunks
from ..parallel.bruteforce import _is_batch, _record_dist_tile
from ..parallel.pool import SerialExecutor, get_executor
from ..parallel.reduce import EMPTY_IDX, topk_of_block
from ..simulator.trace import NULL_RECORDER, Op, TraceRecorder
from .params import standard_n_reps
from .rbc import RBCBase, sample_representatives
from .stats import SearchStats

__all__ = ["ExactRBC"]


class ExactRBC(RBCBase):
    """Random Ball Cover with the exact (guaranteed-correct) search.

    Examples
    --------
    >>> import numpy as np
    >>> from repro.core import ExactRBC
    >>> X = np.random.default_rng(0).normal(size=(2000, 8))
    >>> index = ExactRBC(seed=0).build(X)
    >>> dist, idx = index.query(X[:3], k=2)
    >>> bool((idx[:, 0] == [0, 1, 2]).all())   # a point's 1-NN is itself
    True
    """

    def build(
        self,
        X,
        n_reps: int | None = None,
        *,
        c: float = 1.0,
        recorder: TraceRecorder = NULL_RECORDER,
    ) -> "ExactRBC":
        """Build: sample ``R``, then one ``BF(X, R)`` assigns every point to
        its nearest representative (paper §4).

        ``n_reps`` defaults to the standard setting ``c^{3/2} sqrt(n)``.
        """
        self._require_true_metric("the exact search's pruning")
        n = self.metric.length(X)
        if n == 0:
            raise ValueError("database is empty")
        self._validate_input(X)
        n_reps = standard_n_reps(n, c=c) if n_reps is None else n_reps

        rep_ids = sample_representatives(n, n_reps, self.rng, scheme=self.rep_scheme)
        rep_data = self.metric.take(X, rep_ids)

        evals0 = self.metric.counter.n_evals
        # the build routine is exactly BF(X, R) (paper §4)
        from ..parallel.bruteforce import bf_nn

        dist, owner = bf_nn(
            X,
            rep_data,
            self.metric,
            executor=self.executor,
            recorder=recorder,
        )
        build_evals = self.metric.counter.n_evals - evals0

        # group points by owner, each list ascending by distance to its rep
        order = np.lexsort((dist, owner))
        owner_sorted = owner[order]
        boundaries = np.searchsorted(owner_sorted, np.arange(rep_ids.size + 1))
        lists, list_dists = [], []
        for j in range(rep_ids.size):
            sl = order[boundaries[j] : boundaries[j + 1]]
            lists.append(sl.astype(np.int64))
            list_dists.append(dist[sl])
        self._finish_build(X, rep_ids, lists, list_dists, build_evals)
        return self

    # ------------------------------------------------------------- queries
    def query(
        self,
        Q,
        k: int = 1,
        *,
        use_psi_rule: bool = True,
        use_3gamma_rule: bool = True,
        use_trim: bool = True,
        approx_eps: float = 0.0,
        recorder: TraceRecorder = NULL_RECORDER,
    ) -> tuple[np.ndarray, np.ndarray]:
        """Exact k-NN (or ``(1 + approx_eps)``-approximate if ``> 0``).

        The three rule flags exist for the ablation experiments; with all
        rules disabled the second stage degenerates to full brute force
        over every ownership list (still correct, just slow).

        Returns ``(dist, idx)`` of shape ``(m, k)``, rows sorted ascending.
        """
        self._require_built()
        if k < 1:
            raise ValueError("k must be >= 1")
        if approx_eps < 0:
            raise ValueError("approx_eps must be >= 0")
        stats = SearchStats()
        nr = self.n_reps

        Qb = Q if _is_batch(self.metric, Q) else self.metric._as_batch(Q)
        m = self.metric.length(Qb)
        stats.n_queries = m

        # ---- stage 1: BF(Q, R) with all distances retained
        evals0 = self.metric.counter.n_evals
        D_R = self._stage1_distances(Qb, recorder)
        stats.stage1_evals = self.metric.counter.n_evals - evals0

        # gamma = distance to the k-th nearest representative (upper bound
        # on the k-th NN distance); inf disables pruning when nr < k.
        if nr >= k:
            gamma = np.partition(D_R, k - 1, axis=1)[:, k - 1]
        else:
            gamma = np.full(m, np.inf)
        gamma_eff = gamma / (1.0 + approx_eps)

        # ---- pruning + stage 2, parallel over query chunks
        psi = self.radii
        exec_ = get_executor(self.executor)
        owns_exec = self.executor is None or isinstance(self.executor, str)

        def task(chunk):
            lo, hi = chunk
            return self._stage2_chunk(
                Qb,
                D_R,
                gamma,
                gamma_eff,
                psi,
                lo,
                hi,
                k,
                use_psi_rule,
                use_3gamma_rule,
                use_trim,
                recorder,
            )

        chunks = row_chunks(m, 256)
        evals1 = self.metric.counter.n_evals
        try:
            if len(chunks) == 1 or isinstance(exec_, SerialExecutor):
                parts = [task(ch) for ch in chunks]
            else:
                parts = exec_.map(task, chunks)
        finally:
            if owns_exec:
                exec_.close()
        stats.stage2_evals = self.metric.counter.n_evals - evals1

        dist = np.concatenate([p[0] for p in parts], axis=0)
        idx = np.concatenate([p[1] for p in parts], axis=0)
        for p in parts:
            sub = p[2]
            stats.pruned_by_psi += sub.pruned_by_psi
            stats.pruned_by_3gamma += sub.pruned_by_3gamma
            stats.trimmed_by_4gamma += sub.trimmed_by_4gamma
            stats.candidates_examined += sub.candidates_examined
        self.last_stats = stats
        return dist, idx

    def _stage1_distances(self, Qb, recorder: TraceRecorder) -> np.ndarray:
        """Full (m, n_reps) distance matrix, computed in row chunks."""
        m = self.metric.length(Qb)
        dim = self.metric.dim(self.rep_data)
        out = np.empty((m, self.n_reps))
        with recorder.phase("exact:stage1"):
            for lo, hi in row_chunks(m, 1024):
                Qc = self.metric.take(Qb, np.arange(lo, hi))
                out[lo:hi] = self.metric.pairwise(Qc, self.rep_data)
                _record_dist_tile(
                    recorder, self.metric, hi - lo, self.n_reps, dim,
                    "exact:stage1",
                )
        return out

    def _stage2_chunk(
        self,
        Qb,
        D_R,
        gamma,
        gamma_eff,
        psi,
        lo,
        hi,
        k,
        use_psi_rule,
        use_3gamma_rule,
        use_trim,
        recorder,
    ):
        """Prune representatives and brute-force the survivors' lists for
        queries ``lo..hi``."""
        sub = SearchStats()
        dim = self.metric.dim(self.rep_data)
        dists = np.full((hi - lo, k), np.inf)
        idxs = np.full((hi - lo, k), EMPTY_IDX, dtype=np.int64)
        # DRAM traffic model: a candidate vector is streamed from memory the
        # first time any query in this chunk touches it and served from
        # cache afterwards, so the chunk charges each unique candidate once
        # (recorded as one memcpy op below); per-query ops carry only their
        # compute and output bytes.
        touched = np.zeros(self.n, dtype=bool) if recorder.enabled else None
        with recorder.phase("exact:stage2"):
            for i in range(lo, hi):
                d_row = D_R[i]
                keep = np.ones(self.n_reps, dtype=bool)
                if use_psi_rule:
                    # inequality (1): rho(q,r) >= gamma + psi_r  =>  discard
                    kept = d_row - psi < gamma_eff[i]
                    sub.pruned_by_psi += int(self.n_reps - kept.sum())
                    keep &= kept
                if use_3gamma_rule:
                    # inequality (2) via Lemma 1
                    kept = d_row <= 3.0 * gamma[i]
                    sub.pruned_by_3gamma += int(np.count_nonzero(keep & ~kept))
                    keep &= kept
                recorder.record(
                    Op(
                        kind="ewise",
                        flops=4.0 * self.n_reps,
                        bytes=8.0 * self.n_reps,
                        tag="exact:prune",
                    )
                )

                cand_parts = []
                for j in np.flatnonzero(keep):
                    lst = self.lists[j]
                    if lst.size == 0:
                        continue
                    if use_trim:
                        # Claim 2: an answer owned by r satisfies
                        # rho(x, r) <= rho(q, r) + gamma
                        cut = np.searchsorted(
                            self.list_dists[j],
                            d_row[j] + gamma_eff[i],
                            side="right",
                        )
                        sub.trimmed_by_4gamma += int(lst.size - cut)
                        cand_parts.append(lst[:cut])
                    else:
                        cand_parts.append(lst)
                # Seed with the k nearest representatives: they are database
                # points whose distances are already known to be <= gamma,
                # which keeps the answer exact even when a boundary tie in
                # rule (1) discards a representative's own singleton list.
                kk = min(k, self.n_reps)
                seed = self.rep_ids[np.argpartition(d_row, kk - 1)[:kk]]
                cand = np.unique(np.concatenate(cand_parts + [seed]))
                sub.candidates_examined += int(cand.size)

                q_i = self.metric.take(Qb, [i])
                D2 = self.metric.pairwise(q_i, self.metric.take(self.X, cand))
                if touched is not None:
                    touched[cand] = True
                recorder.record(
                    Op(
                        kind="gemm",
                        flops=cand.size * self.metric.flops_per_eval(dim),
                        bytes=8.0 * cand.size,  # output row + id reads
                        tag="exact:stage2",
                    )
                )
                d, li = topk_of_block(D2, k)
                mask = li[0] >= 0
                idxs[i - lo, mask] = cand[li[0][mask]]
                dists[i - lo] = d[0]
            if touched is not None and touched.any():
                recorder.record(
                    Op(
                        kind="memcpy",
                        flops=0.0,
                        bytes=8.0 * dim * float(touched.sum()),
                        tag="exact:stage2-stream",
                    )
                )
        return dists, idxs, sub

    # ------------------------------------------------------ dynamic updates
    def insert(self, x) -> int:
        """Insert a point: assign it to its nearest representative.

        Exactly the per-point step of the build's ``BF(X, R)``; queries
        remain exact afterwards.  Returns the new point's global id.
        O(n_reps) distance evaluations plus an O(n) database append —
        rebuild instead when inserting a large batch.
        """
        self._require_built()
        self._require_vector_db("insert")
        gid = self._append_point(x)
        d = self.metric.pairwise(
            self.metric.take(self.X, [gid]), self.rep_data
        )[0]
        j = int(np.argmin(d))
        pos = int(np.searchsorted(self.list_dists[j], d[j]))
        self.lists[j] = np.insert(self.lists[j], pos, gid)
        self.list_dists[j] = np.insert(self.list_dists[j], pos, d[j])
        self.radii[j] = max(self.radii[j], float(d[j]))
        return gid

    def delete(self, gid: int) -> None:
        """Delete a point by global id.

        Non-representative points are removed from their owner's list.
        Deleting a representative redistributes its surviving list members
        to their nearest remaining representative (the same assignment
        rule as the build).  Radii are kept as-is: they remain valid
        *upper* bounds, so exactness is preserved; pruning tightness can
        be restored by rebuilding after heavy churn.
        """
        self._require_built()
        self._require_vector_db("delete")
        gid = int(gid)
        self._tombstone(gid)

        rep_pos = np.flatnonzero(self.rep_ids == gid)
        if rep_pos.size == 0:
            for j in range(len(self.lists)):
                hit = np.flatnonzero(self.lists[j] == gid)
                if hit.size:
                    self.lists[j] = np.delete(self.lists[j], hit[0])
                    self.list_dists[j] = np.delete(self.list_dists[j], hit[0])
                    return
            raise AssertionError(f"point {gid} missing from every list")

        j = int(rep_pos[0])
        if self.rep_ids.size == 1:
            raise ValueError(
                "cannot delete the only representative; rebuild the index"
            )
        orphans = self.lists[j][self.lists[j] != gid]
        # drop representative j
        self.rep_ids = np.delete(self.rep_ids, j)
        self.rep_data = self.metric.take(self.X, self.rep_ids)
        del self.lists[j]
        del self.list_dists[j]
        self.radii = np.delete(self.radii, j)
        if orphans.size:
            # reassign orphans to their nearest surviving representative
            D = self.metric.pairwise(
                self.metric.take(self.X, orphans), self.rep_data
            )
            owner = D.argmin(axis=1)
            dist = D[np.arange(orphans.size), owner]
            for t in np.unique(owner):
                sel = owner == t
                merged_ids = np.concatenate([self.lists[t], orphans[sel]])
                merged_d = np.concatenate([self.list_dists[t], dist[sel]])
                order = np.argsort(merged_d, kind="stable")
                self.lists[t] = merged_ids[order]
                self.list_dists[t] = merged_d[order]
                self.radii[t] = max(self.radii[t], float(merged_d.max()))

    def range_query(
        self,
        Q,
        eps: float,
        *,
        recorder: TraceRecorder = NULL_RECORDER,
    ) -> list[tuple[np.ndarray, np.ndarray]]:
        """Exact ε-range search: every point within ``eps`` of each query.

        A representative's list can contain hits only if
        ``rho(q, r) <= eps + psi_r``; inside a surviving list, hits satisfy
        ``|rho(x, r) - rho(q, r)| <= eps``, so the sorted order admits a
        two-sided window.  Survivor candidates are then verified exactly.
        """
        self._require_built()
        if eps < 0:
            raise ValueError("eps must be non-negative")
        Qb = Q if _is_batch(self.metric, Q) else self.metric._as_batch(Q)
        m = self.metric.length(Qb)
        D_R = self._stage1_distances(Qb, recorder)

        out = []
        with recorder.phase("exact:range"):
            for i in range(m):
                d_row = D_R[i]
                keep = d_row <= eps + self.radii
                cand_parts = []
                for j in np.flatnonzero(keep):
                    ld = self.list_dists[j]
                    lsl = np.searchsorted(ld, d_row[j] - eps, side="left")
                    lsr = np.searchsorted(ld, d_row[j] + eps, side="right")
                    if lsr > lsl:
                        cand_parts.append(self.lists[j][lsl:lsr])
                if not cand_parts:
                    out.append((np.empty(0), np.empty(0, dtype=np.int64)))
                    continue
                cand = np.concatenate(cand_parts)
                q_i = self.metric.take(Qb, [i])
                D2 = self.metric.pairwise(q_i, self.metric.take(self.X, cand))[0]
                hit = D2 <= eps
                d, gi = D2[hit], cand[hit]
                order = np.argsort(d, kind="stable")
                out.append((d[order], gi[order]))
        return out
