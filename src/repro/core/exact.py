"""The exact RBC search algorithm (paper §5.2).

Search runs as two brute-force stages separated by a pruning step that uses
only the triangle inequality:

1. ``BF(Q, R)`` with distances retained; ``gamma`` = distance to the
   nearest representative is an upper bound on the distance to the true NN
   (representatives are database points).
2. Pruning discards every representative ``r`` that provably cannot own a
   nearest neighbor, by two rules used simultaneously (the paper notes
   their combination improves empirical performance):

   * **psi rule** (inequality (1)): discard if
     ``rho(q, r) >= gamma + psi_r`` — the whole ball around ``r`` lies
     further than the bound;
   * **3-gamma rule** (inequality (2) / Lemma 1): discard if
     ``rho(q, r) > 3 gamma`` — the owner of the NN is within ``3 gamma``.

   Within surviving lists, the sorted order by distance-to-representative
   enables the Claim-2 trim: a nearest neighbor owned by ``r`` satisfies
   ``rho(x, r) <= rho(q, r) + gamma``, so only a sorted prefix is scanned.
3. ``BF(q, X[L_1 ∪ ... ∪ L_t])`` over the surviving candidates.

For k-NN, ``gamma`` is the distance to the k-th nearest representative
(still an upper bound on the k-th NN distance since ``R ⊂ X``); all three
rules generalize with that substitution.

An approximation knob ``approx_eps`` implements the paper's footnote 1:
with ``approx_eps = e > 0`` the pruning threshold shrinks from ``gamma`` to
``gamma / (1 + e)``, which guarantees the returned point is within a factor
``(1 + e)`` of the true NN distance while pruning more aggressively.

Stage 2 is *batched*: the pruning rules are broadcast over the whole
``(chunk, n_reps)`` stage-1 distance block, the Claim-2 trim is one
vectorized ``searchsorted`` per representative, and surviving queries are
grouped by representative so each representative's trimmed prefix is
scanned with a single dense ``pairwise`` block (the same matmul-like
group-by-rep structure as the one-shot search).  This is the paper's core
argument applied to its own exact algorithm: per-query scalar work
coalesces into brute-force blocks that run at hardware speed.
"""

from __future__ import annotations

import numpy as np

from ..metrics.engine import refine_topk
from ..parallel.blocking import row_chunks
from ..parallel.bruteforce import _is_batch, _record_dist_tile, _record_select
from ..parallel.pool import SerialExecutor
from ..parallel.reduce import EMPTY_IDX, merge_group_topk, merge_topk, topk_of_block
from ..runtime.context import ExecContext
from ..simulator.trace import NULL_RECORDER, Op, TraceRecorder
from .params import standard_n_reps
from .rbc import RBCBase, sample_representatives
from .stats import SearchStats

__all__ = ["ExactRBC"]


class ExactRBC(RBCBase):
    """Random Ball Cover with the exact (guaranteed-correct) search.

    Examples
    --------
    >>> import numpy as np
    >>> from repro.core import ExactRBC
    >>> X = np.random.default_rng(0).normal(size=(2000, 8))
    >>> index = ExactRBC(seed=0).build(X)
    >>> dist, idx = index.query(X[:3], k=2)
    >>> bool((idx[:, 0] == [0, 1, 2]).all())   # a point's 1-NN is itself
    True
    """

    CAPS = RBCBase.CAPS.replace(range_queries=True)

    def build(
        self,
        X,
        n_reps: int | None = None,
        *,
        c: float = 1.0,
        recorder: TraceRecorder = NULL_RECORDER,
        ctx: ExecContext | None = None,
    ) -> "ExactRBC":
        """Build: sample ``R``, then one ``BF(X, R)`` assigns every point to
        its nearest representative (paper §4).

        ``n_reps`` defaults to the standard setting ``c^{3/2} sqrt(n)``.
        The build always computes in float64 (stored list distances and
        radii must stay exact bounds), so only ``ctx``'s transport fields
        — executor, recorder, chunking — apply here.
        """
        ctx = self._call_ctx(ctx, recorder=recorder).transport()
        self._require_true_metric("the exact search's pruning")
        n = self.metric.length(X)
        if n == 0:
            raise ValueError("database is empty")
        self._validate_input(X)
        n_reps = standard_n_reps(n, c=c) if n_reps is None else n_reps

        rep_ids = sample_representatives(n, n_reps, self.rng, scheme=self.rep_scheme)
        rep_data = self.metric.take(X, rep_ids)

        evals0 = self.metric.counter.n_evals
        # the build routine is exactly BF(X, R) (paper §4)
        from ..parallel.bruteforce import bf_nn

        dist, owner = bf_nn(X, rep_data, self.metric, ctx=ctx)
        build_evals = self.metric.counter.n_evals - evals0

        # group points by owner, each list ascending by distance to its rep
        order = np.lexsort((dist, owner))
        owner_sorted = owner[order]
        boundaries = np.searchsorted(owner_sorted, np.arange(rep_ids.size + 1))
        lists, list_dists = [], []
        for j in range(rep_ids.size):
            sl = order[boundaries[j] : boundaries[j + 1]]
            lists.append(sl.astype(np.int64))
            list_dists.append(dist[sl])
        self._finish_build(X, rep_ids, lists, list_dists, build_evals)
        return self

    # ------------------------------------------------------------- queries
    def query(
        self,
        Q,
        k: int = 1,
        *,
        use_psi_rule: bool = True,
        use_3gamma_rule: bool = True,
        use_trim: bool = True,
        approx_eps: float = 0.0,
        recorder: TraceRecorder = NULL_RECORDER,
        executor=None,
        ctx: ExecContext | None = None,
    ) -> tuple[np.ndarray, np.ndarray]:
        """Exact k-NN (or ``(1 + approx_eps)``-approximate if ``> 0``).

        The three rule flags exist for the ablation experiments; with all
        rules disabled the second stage degenerates to full brute force
        over every ownership list (still correct, just slow).

        ``ctx`` (or the legacy ``recorder``/``executor`` kwargs it
        subsumes) overrides the index configuration for this call; set
        ``ctx`` fields win, then kwargs, then the index defaults.

        Returns ``(dist, idx)`` of shape ``(m, k)``, rows sorted ascending.
        """
        self._require_built()
        if k < 1:
            raise ValueError("k must be >= 1")
        if approx_eps < 0:
            raise ValueError("approx_eps must be >= 0")
        ctx = self._call_ctx(ctx, recorder=recorder, executor=executor)
        recorder = ctx.recorder
        dtype = ctx.dtype_or_default
        stats = SearchStats()
        nr = self.n_reps
        engine = self._engine_active(ctx)
        fp32 = engine and dtype == "float32"

        Qb = Q if _is_batch(self.metric, Q) else self.metric._as_batch(Q)
        m = self.metric.length(Qb)
        stats.n_queries = m
        if m == 0:
            self.last_stats = stats
            return (
                np.full((0, k), np.inf),
                np.full((0, k), EMPTY_IDX, dtype=np.int64),
            )

        qplan = self._quant_plan() if engine else None
        if qplan is not None and qplan.strategy == "flat":
            return self._query_quant_flat(Qb, k, qplan, stats, recorder)
        qop = None
        Qp_q = None
        if qplan is not None:
            # grouped quantized stage 2: the trimmed prefixes are scanned
            # on the float32 decode cache and every survivor is re-ranked
            # in float64, so the answer ids match the unquantized path
            qop = self._quant_operand(qplan.quantizer)
            Qp_q = self.metric.prepare(Qb, dtype="float32")

        Qp = self.metric.prepare(Qb, dtype=dtype) if engine else None

        # ---- stage 1: BF(Q, R) with all distances retained
        evals0 = self.metric.counter.n_evals
        D_R = self._stage1_distances(Qb, recorder, Qp=Qp)
        stats.stage1_evals = self.metric.counter.n_evals - evals0

        # gamma = distance to the k-th nearest representative (upper bound
        # on the k-th NN distance); inf disables pruning when nr < k.
        if nr >= k:
            gamma = np.partition(D_R, k - 1, axis=1)[:, k - 1]
        else:
            gamma = np.full(m, np.inf)
        gamma_eff = gamma / (1.0 + approx_eps)

        # ---- pruning + stage 2, parallel over query chunks
        psi = self.radii
        rep_owner, rep_pos = self._rep_positions()

        # float32 mode keeps extra result slots so rounding noise cannot
        # evict the true k-th neighbor before the float64 refinement
        k_out = k + max(8, k) if fp32 else k

        def task(chunk):
            lo, hi = chunk
            return self._stage2_chunk(
                Qb,
                D_R,
                gamma,
                gamma_eff,
                psi,
                rep_owner,
                rep_pos,
                lo,
                hi,
                k,
                use_psi_rule,
                use_3gamma_rule,
                use_trim,
                recorder,
                Qp=Qp,
                k_out=k_out,
                fp32=fp32,
                qop=qop,
                Qp_q=Qp_q,
            )

        chunks = row_chunks(m, 256)
        evals1 = self.metric.counter.n_evals
        # stage 2 under a process pool would ship the whole index state per
        # chunk; the batched kernels below are BLAS-bound and release the
        # GIL, so the context degrades that backend to inline execution
        with ctx.executor_scope(inline_processes=True) as exec_:
            if len(chunks) == 1 or isinstance(exec_, SerialExecutor):
                parts = [task(ch) for ch in chunks]
            else:
                parts = exec_.map(task, chunks)
        stats.stage2_evals = self.metric.counter.n_evals - evals1

        dist = np.concatenate([p[0] for p in parts], axis=0)
        idx = np.concatenate([p[1] for p in parts], axis=0)
        if fp32 and qop is None:
            # exact float64 re-score and re-rank of the float32 candidates
            # (the quantized path re-ranks inside each chunk already)
            dist, idx = refine_topk(self.metric, Qb, self.X, idx, k)
        for p in parts:
            sub = p[2]
            stats.pruned_by_psi += sub.pruned_by_psi
            stats.pruned_by_3gamma += sub.pruned_by_3gamma
            stats.trimmed_by_4gamma += sub.trimmed_by_4gamma
            stats.candidates_examined += sub.candidates_examined
        if qop is not None:
            stats.quant = {
                "strategy": "grouped",
                "quantizer": qplan.quantizer,
                "backend": qplan.backend,
                "code_bytes": int(qop.code_bytes),
            }
        self.last_stats = stats
        return dist, idx

    def _query_quant_flat(self, Qb, k, plan, stats, recorder):
        """One certified quantized scan of the live points, replacing both
        stages (the autotuner's *flat* strategy — chosen when the pruning
        rules are predicted to keep nearly everything, so the grouped
        "pruned" scan would be a slower full scan).

        Answers are id-identical to the two-stage exact search: the scan
        over-fetches ``ck`` candidates per query, certifies the frontier
        with the per-row residual bound ``|d(q,x) - d(q,x~)| <= d(x,x~)``,
        and re-ranks every survivor in float64.
        """
        from ..metrics.quantize import quant_search

        qop = self._quant_operand(plan.quantizer)
        n_rows = len(qop.codes)  # packed width incl. slack (the GEMM scans it)
        n_live = (
            int(qop.valid.sum()) if qop.valid is not None else n_rows
        )
        dim = self.metric.dim(self.X)
        m = self.metric.length(Qb)
        evals0 = self.metric.counter.n_evals
        with recorder.phase("exact:quant-flat"):
            dist, idx, info = quant_search(
                self.metric,
                np.asarray(Qb),
                self.X,
                qop,
                k,
                over_fetch=plan.over_fetch,
                row_chunk=plan.row_chunk,
                backend=plan.backend,
            )
            if recorder.enabled:
                # the scan streams the code block once per query chunk
                n_blocks = -(-m // max(1, plan.row_chunk))
                recorder.record(
                    Op(
                        kind="gemm",
                        flops=2.0 * m * n_rows * dim,
                        bytes=float(qop.code_bytes) * n_blocks,
                        tag="exact:quant-flat",
                    )
                )
        stats.stage2_evals = self.metric.counter.n_evals - evals0
        # live rows only, matching quant_topk's m * n_valid counter credit
        stats.candidates_examined = m * n_live
        stats.quant = dict(info, strategy="flat", over_fetch=plan.over_fetch)
        self.last_stats = stats
        return dist, idx

    def _stage1_distances(
        self, Qb, recorder: TraceRecorder, Qp=None
    ) -> np.ndarray:
        """Full (m, n_reps) distance matrix, computed in row chunks.

        With a prepared query block ``Qp`` the engine path runs: cached
        representative operands, no coercion, no norm recomputation
        (bit-identical values in float64; float32 results are widened back
        to float64 so downstream pruning arithmetic is uniform).
        """
        m = self.metric.length(Qb)
        dim = self.metric.dim(self.rep_data)
        out = np.empty((m, self.n_reps))
        with recorder.phase("exact:stage1"):
            if Qp is not None:
                # the reps cache keys on dtype, so a per-call override via
                # ExecContext gets (and keeps) its own prepared block
                Rp = self._prepared_reps(str(Qp.data.dtype))
                itemsize = float(Qp.data.dtype.itemsize)
                for lo, hi in row_chunks(m, 1024):
                    out[lo:hi] = self.metric.pairwise_prepared(
                        Qp.slice(lo, hi), Rp
                    )
                    _record_dist_tile(
                        recorder, self.metric, hi - lo, self.n_reps, dim,
                        "exact:stage1", itemsize=itemsize,
                    )
            else:
                for lo, hi in row_chunks(m, 1024):
                    Qc = self.metric.take(Qb, np.arange(lo, hi))
                    out[lo:hi] = self.metric.pairwise(Qc, self.rep_data)
                    _record_dist_tile(
                        recorder, self.metric, hi - lo, self.n_reps, dim,
                        "exact:stage1",
                    )
        return out

    def warm(self, ctx: ExecContext | None = None) -> "ExactRBC":
        """Additionally pre-computes the representative-position table the
        batched stage 2 consults (see :meth:`RBCBase.warm`)."""
        super().warm(ctx)
        self._rep_positions()
        return self

    def _rep_positions(self) -> tuple[np.ndarray, np.ndarray]:
        """Locate every representative inside the ownership lists.

        Returns ``(owner, pos)``: representative ``r`` (a database point)
        sits at ``lists[owner[r]][pos[r]]``.  The batched stage 2 uses this
        to avoid examining a seed representative twice when its own list
        prefix is already scanned.  ``owner`` is ``-1`` for a representative
        found in no list (cannot happen in a consistent exact build; treated
        as "not scanned").

        The table depends only on the index state, but the scan that
        builds it is a Python loop over every ownership list — by far the
        largest *fixed* cost of a query call, which a one-query-at-a-time
        stream pays over and over.  It is therefore cached per index
        version (``_prep`` is cleared by every build/insert/delete).
        """
        cached = self._prep.get("rep_positions")
        if cached is not None:
            return cached
        owner = np.full(self.n_reps, -1, dtype=np.int64)
        pos = np.zeros(self.n_reps, dtype=np.int64)
        for j, lst in enumerate(self.lists):
            if lst.size == 0:
                continue
            hit = np.flatnonzero(np.isin(lst, self.rep_ids))
            if hit.size:
                ridx = np.searchsorted(self.rep_ids, lst[hit])
                owner[ridx] = j
                pos[ridx] = hit
        self._prep["rep_positions"] = (owner, pos)
        return owner, pos

    def _estimate_candidate_fraction(self) -> float:
        """Measured fraction of the database the pruning rules keep,
        probed on <= 64 database points standing in as queries (k = 1).

        This is the autotuner's flat-vs-grouped input: at low dimension
        the rules prune hard and the grouped scan wins; past d ~ 32 on
        i.i.d. data they keep nearly everything and one flat quantized
        scan is cheaper.  The probe is a single stage-1 block plus the
        vectorized rule arithmetic — no stage-2 distances — and runs once
        per index version (the plan is cached in ``_prep``).
        """
        self._require_built()
        probe_m = min(64, self.n)
        rows = np.random.default_rng(0).choice(
            self.n, size=probe_m, replace=False
        )
        Dp = self.metric.pairwise(
            self.metric.take(self.X, rows), self.rep_data
        )
        gamma = Dp.min(axis=1)
        keep = (Dp - self.radii[None, :] < gamma[:, None]) & (
            Dp <= 3.0 * gamma[:, None]
        )
        total = 0
        for j in np.flatnonzero(keep.any(axis=0)):
            ld = self.list_dists[j]
            if ld.size == 0:
                continue
            r = np.flatnonzero(keep[:, j])
            cut = np.searchsorted(ld, Dp[r, j] + gamma[r], side="right")
            total += int(cut.sum())
        return min(1.0, total / max(1, probe_m * self.n))

    def _stage2_chunk(
        self,
        Qb,
        D_R,
        gamma,
        gamma_eff,
        psi,
        rep_owner,
        rep_pos,
        lo,
        hi,
        k,
        use_psi_rule,
        use_3gamma_rule,
        use_trim,
        recorder,
        Qp=None,
        k_out=None,
        fp32=False,
        qop=None,
        Qp_q=None,
    ):
        """Batched pruning + grouped stage 2 for queries ``lo..hi``.

        All per-query scalar work is coalesced into dense kernels:

        1. the psi and 3-gamma rules are broadcast over the whole
           ``(chunk, n_reps)`` block of stage-1 distances;
        2. the Claim-2 trim is one vectorized ``searchsorted`` per
           representative over the queries that kept it;
        3. surviving queries are grouped by representative and each
           representative's trimmed prefix is scanned with a single
           ``pairwise`` block (rows padded to the group's longest prefix and
           masked back to each query's own cut), with per-query results
           folded through :func:`~repro.parallel.reduce.merge_group_topk`;
        4. the seed representatives (the ``k`` nearest, distances already in
           ``D_R``) are merged last, skipping any seed already inside a
           scanned prefix so no candidate is examined twice.

        Pruning/trim/candidate counters are identical to the per-query
        formulation; stage-2 distance evaluations may exceed the per-query
        count by the group padding (real work the dense kernel performs).

        With a prepared query block ``Qp`` the group scans run on the
        engine: each trimmed prefix is a contiguous row slice of the cached
        pre-gathered candidate matrix and ``squared_ok`` metrics rank in
        the squared domain (the root is applied only to the ``(c, k)``
        result).  ``fp32`` widens every pruning/trim bound by a relative
        slack so float32 rounding cannot discard a true neighbor's list;
        the caller refines the returned candidates in float64.
        """
        sub = SearchStats()
        nr = self.n_reps
        c = hi - lo
        k_out = k if k_out is None else k_out
        dim = self.metric.dim(self.rep_data)
        Dc = D_R[lo:hi]
        ge = gamma_eff[lo:hi]
        # relative slack on the pruning bounds in float32 mode (float32
        # kernels carry ~1e-7 relative error; 1e-4 leaves ample headroom at
        # negligible extra candidate cost)
        slack = 1e-4 if fp32 else 0.0

        # ---- rules, broadcast over the whole chunk
        keep = np.ones((c, nr), dtype=bool)
        if use_psi_rule:
            # inequality (1): rho(q,r) >= gamma + psi_r  =>  discard
            tol = slack * (np.abs(Dc) + psi[None, :]) if fp32 else 0.0
            kept = Dc - psi[None, :] < ge[:, None] + tol
            sub.pruned_by_psi += int(c * nr - np.count_nonzero(kept))
            keep &= kept
        if use_3gamma_rule:
            # inequality (2) via Lemma 1
            tol = 4.0 * slack * np.abs(Dc) if fp32 else 0.0
            kept = Dc <= 3.0 * gamma[lo:hi][:, None] + tol
            sub.pruned_by_3gamma += int(np.count_nonzero(keep & ~kept))
            keep &= kept

        # ---- Claim-2 trim: rho(x, r) <= rho(q, r) + gamma bounds a sorted
        # prefix; one vectorized searchsorted per surviving representative
        cuts = np.zeros((c, nr), dtype=np.int64)
        for j in np.flatnonzero(keep.any(axis=0)):
            lst = self.lists[j]
            if lst.size == 0:
                continue
            rows = np.flatnonzero(keep[:, j])
            if use_trim:
                bound = Dc[rows, j] + ge[rows]
                cut = np.searchsorted(
                    self.list_dists[j], bound * (1.0 + slack), side="right"
                )
                sub.trimmed_by_4gamma += int(rows.size * lst.size - cut.sum())
                cuts[rows, j] = cut
            else:
                cuts[rows, j] = lst.size

        # Seed with the k nearest representatives: they are database points
        # whose distances are already known (stage 1) to be <= gamma, which
        # keeps the answer exact even when a boundary tie in rule (1)
        # discards a representative's own singleton list.  Seeds already
        # inside a scanned prefix are masked so no candidate repeats.
        kk = min(k, nr)
        seed_cols = np.argpartition(Dc, kk - 1, axis=1)[:, :kk]
        so = rep_owner[seed_cols]
        so_ok = so >= 0
        cut_at = np.take_along_axis(cuts, np.where(so_ok, so, 0), axis=1)
        in_parts = so_ok & (rep_pos[seed_cols] < cut_at)
        sub.candidates_examined += int(cuts.sum() + np.count_nonzero(~in_parts))

        engine = Qp is not None
        quant = engine and qop is not None
        if engine:
            Cp = qop.decoded if quant else self._prepared_cands(str(Qp.data.dtype))
            packed = self._packed
            squared = self.metric.squared_ok
            itemsize = 4.0 if quant else float(Qp.data.dtype.itemsize)
            # gamma bounds the k-th NN distance (the k seed representatives
            # are candidates at distance <= gamma), so any scanned candidate
            # beyond it can never enter the final top-k.  The engine path
            # exploits this: instead of an argpartition+merge per group, a
            # single compare keeps the few survivors per query and one
            # lexsort per chunk ranks them at the end.  The threshold is
            # widened by a relative slack so rounding can only admit extra
            # survivors (harmless), never exclude a true neighbor.
            g_chunk = gamma[lo:hi]
            thr = (
                self.metric.to_squared(g_chunk) if squared else g_chunk
            ) * (1.0 + (1e-4 if fp32 else 1e-9))
            acc_r: list[np.ndarray] = []
            acc_d: list[np.ndarray] = []
            acc_g: list[np.ndarray] = []
        else:
            squared = False
            itemsize = 8.0

        dists = np.full((c, k_out), np.inf)
        idxs = np.full((c, k_out), EMPTY_IDX, dtype=np.int64)
        # DRAM traffic model: a candidate vector is streamed from memory the
        # first time any query in this chunk touches it and served from
        # cache afterwards, so the chunk charges each unique candidate once
        # (recorded as one memcpy op below); group ops carry only their
        # compute and output bytes.
        touched = np.zeros(self.n, dtype=bool) if recorder.enabled else None
        with recorder.phase("exact:stage2"):
            if recorder.enabled:
                recorder.record(
                    Op(
                        kind="ewise",
                        flops=4.0 * nr * c,
                        bytes=8.0 * nr * c,
                        tag="exact:prune",
                    )
                )
            for j in np.flatnonzero((cuts > 0).any(axis=0)):
                rows = np.flatnonzero(cuts[:, j])
                cut = cuts[rows, j]
                prefix_len = int(cut.max())
                prefix = self.lists[j][:prefix_len]
                if engine:
                    plo = int(packed.starts[j])
                    D = self.metric.pairwise_prepared(
                        (Qp_q if quant else Qp).take(lo + rows),
                        Cp.slice(plo, plo + prefix_len),
                        squared=squared,
                    )
                else:
                    Qg = self.metric.take(Qb, lo + rows)
                    D = self.metric.pairwise(Qg, self.metric.take(self.X, prefix))
                ragged = int(cut.min()) < prefix_len
                if ragged and not engine:
                    # ragged group scanned as one padded block: a row only
                    # owns its own trimmed prefix
                    D[np.arange(prefix_len)[None, :] >= cut[:, None]] = np.inf
                if touched is not None:
                    touched[prefix] = True
                _record_dist_tile(
                    recorder, self.metric, rows.size, prefix_len, dim,
                    "exact:stage2", itemsize=itemsize,
                )
                _record_select(
                    recorder, rows.size, prefix_len, "exact:stage2",
                    itemsize=itemsize,
                )
                if engine:
                    if quant:
                        # per-element triangle bound: a candidate with true
                        # distance <= gamma has decoded-scan distance
                        # <= gamma + resid, so nothing widened out of this
                        # mask can belong to the final top-k
                        bnd = (
                            g_chunk[rows][:, None]
                            + qop.resid[plo : plo + prefix_len][None, :]
                        )
                        if squared:
                            bnd = self.metric.to_squared(bnd)
                        mask = D <= bnd * (1.0 + 1e-4) + 1e-9
                    else:
                        mask = D <= thr[rows][:, None]
                    if ragged:
                        # fold the ragged-prefix ownership into the same
                        # mask instead of writing inf padding into D
                        mask &= np.arange(prefix_len)[None, :] < cut[:, None]
                    # 1-D nonzero + divmod beats 2-D nonzero by ~2x here
                    flat = np.flatnonzero(mask)
                    rr, cc = np.divmod(flat, prefix_len)
                    acc_r.append(rows[rr])
                    acc_d.append(
                        D.reshape(-1)[flat].astype(np.float64, copy=False)
                    )
                    acc_g.append(prefix[cc])
                else:
                    merge_group_topk(dists, idxs, rows, D, prefix, n_valid=cut)
                if recorder.enabled:
                    # two (rows, k) candidate blocks: distances at the
                    # compute itemsize plus int64 ids
                    recorder.record(
                        Op(
                            kind="reduce",
                            flops=4.0 * rows.size * k,
                            bytes=2.0 * rows.size * k * (itemsize + 8.0),
                            vectorizable=True,
                            tag="exact:stage2:merge",
                        )
                    )
            # fold in the seeds not already scanned above, reusing their
            # stage-1 distances (no new evaluations)
            sd = np.take_along_axis(Dc, seed_cols, axis=1).astype(
                np.float64, copy=True
            )
            if squared:
                # accumulators hold squared distances; lift the seeds into
                # the same domain before merging
                sd = self.metric.to_squared(sd)
            sd[in_parts] = np.inf
            sg = self.rep_ids[seed_cols]
            if engine:
                # seeds are at distance <= gamma <= thr by construction, so
                # they join the survivor pool unconditionally
                srr, scc = np.nonzero(np.isfinite(sd))
                acc_r.append(srr)
                acc_d.append(sd[srr, scc])
                acc_g.append(sg[srr, scc])
                r_all = np.concatenate(acc_r)
                d_all = np.concatenate(acc_d)
                g_all = np.concatenate(acc_g)
                # one ranking pass over all survivors: stable sort by
                # (query row, distance), then each row keeps its first k_out
                order = np.lexsort((d_all, r_all))
                r_s = r_all[order]
                rank = np.arange(r_s.size) - np.searchsorted(
                    r_s, np.arange(c + 1)
                )[r_s]
                if quant:
                    # approximate scan distances cannot rank the answer:
                    # keep *every* survivor (the widened bound guarantees
                    # the true top-k are among them), pad to the widest
                    # row and re-rank the whole pool in exact float64
                    counts = np.bincount(r_s, minlength=c)
                    width = max(int(counts.max()) if counts.size else 0, 1)
                    padded = np.full((c, width), EMPTY_IDX, dtype=np.int64)
                    padded[r_s, rank] = g_all[order]
                    qd, qi = refine_topk(
                        self.metric,
                        self.metric.take(Qb, np.arange(lo, hi)),
                        self.X,
                        padded,
                        k,
                    )
                    return qd, qi, sub
                sel = rank < k_out
                dists[r_s[sel], rank[sel]] = d_all[order][sel]
                idxs[r_s[sel], rank[sel]] = g_all[order][sel]
            else:
                d_s, li = topk_of_block(sd, k_out)
                gi = np.where(
                    li >= 0,
                    np.take_along_axis(sg, np.clip(li, 0, None), axis=1),
                    EMPTY_IDX,
                )
                gi = np.where(np.isfinite(d_s), gi, EMPTY_IDX)
                dists, idxs = merge_topk((dists, idxs), (d_s, gi))
            if recorder.enabled:
                recorder.record(
                    Op(
                        kind="reduce",
                        flops=4.0 * c * k,
                        bytes=2.0 * c * k * (itemsize + 8.0),
                        vectorizable=True,
                        tag="exact:stage2:merge",
                    )
                )
            if touched is not None and touched.any():
                recorder.record(
                    Op(
                        kind="memcpy",
                        flops=0.0,
                        bytes=itemsize * dim * float(touched.sum()),
                        tag="exact:stage2-stream",
                    )
                )
        if squared:
            dists = self.metric.from_squared(dists)
        return dists, idxs, sub

    # ------------------------------------------------------ dynamic updates
    def insert(self, x) -> int:
        """Insert a point: assign it to its nearest representative.

        Exactly the per-point step of the build's ``BF(X, R)``; queries
        remain exact afterwards.  Returns the new point's global id.
        O(n_reps) distance evaluations plus an O(n) database append —
        rebuild instead when inserting a large batch.
        """
        self._require_built()
        self._require_vector_db("insert")
        gid = self._append_point(x)
        d = self.metric.pairwise(
            self.metric.take(self.X, [gid]), self.rep_data
        )[0]
        j = int(np.argmin(d))
        pos = int(np.searchsorted(self.list_dists[j], d[j]))
        self._packed.insert(j, pos, gid, float(d[j]))
        self.radii[j] = max(self.radii[j], float(d[j]))
        return gid

    def delete(self, gid: int) -> None:
        """Delete a point by global id.

        Non-representative points are removed from their owner's list.
        Deleting a representative redistributes its surviving list members
        to their nearest remaining representative (the same assignment
        rule as the build).  Radii are kept as-is: they remain valid
        *upper* bounds, so exactness is preserved; pruning tightness can
        be restored by rebuilding after heavy churn.
        """
        self._require_built()
        self._require_vector_db("delete")
        gid = int(gid)
        self._tombstone(gid)

        packed = self._packed
        rep_pos = np.flatnonzero(self.rep_ids == gid)
        if rep_pos.size == 0:
            for j in range(packed.n_lists):
                hit = np.flatnonzero(packed.ids_of(j) == gid)
                if hit.size:
                    packed.delete_at(j, int(hit[0]))
                    return
            raise AssertionError(f"point {gid} missing from every list")

        j = int(rep_pos[0])
        if self.rep_ids.size == 1:
            raise ValueError(
                "cannot delete the only representative; rebuild the index"
            )
        lst = packed.ids_of(j)
        orphans = lst[lst != gid].copy()
        # drop representative j
        self.rep_ids = np.delete(self.rep_ids, j)
        self.rep_data = self.metric.take(self.X, self.rep_ids)
        packed.drop(j)
        self.radii = np.delete(self.radii, j)
        if orphans.size:
            # reassign orphans to their nearest surviving representative
            D = self.metric.pairwise(
                self.metric.take(self.X, orphans), self.rep_data
            )
            owner = D.argmin(axis=1)
            dist = D[np.arange(orphans.size), owner]
            for t in np.unique(owner):
                sel = owner == t
                merged_ids = np.concatenate([packed.ids_of(t), orphans[sel]])
                merged_d = np.concatenate([packed.dists_of(t), dist[sel]])
                order = np.argsort(merged_d, kind="stable")
                packed.replace(t, merged_ids[order], merged_d[order])
                self.radii[t] = max(self.radii[t], float(merged_d.max()))

    def range_query(
        self,
        Q,
        eps: float,
        *,
        recorder: TraceRecorder = NULL_RECORDER,
        ctx: ExecContext | None = None,
    ) -> list[tuple[np.ndarray, np.ndarray]]:
        """Exact ε-range search: every point within ``eps`` of each query.

        A representative's list can contain hits only if
        ``rho(q, r) <= eps + psi_r``; inside a surviving list, hits satisfy
        ``|rho(x, r) - rho(q, r)| <= eps``, so the sorted order admits a
        two-sided window.  Survivor candidates are then verified exactly.

        Like the k-NN stage 2, the scan is batched: pruning and the
        two-sided windows are vectorized over the whole query batch, and
        each representative's candidate window is verified with one dense
        ``pairwise`` block over all queries that reached it.
        """
        self._require_built()
        if eps < 0:
            raise ValueError("eps must be non-negative")
        ctx = self._call_ctx(ctx, recorder=recorder)
        recorder = ctx.recorder
        dtype = ctx.dtype_or_default
        Qb = Q if _is_batch(self.metric, Q) else self.metric._as_batch(Q)
        m = self.metric.length(Qb)
        engine = self._engine_active(ctx)
        fp32 = engine and dtype == "float32"
        Qp = self.metric.prepare(Qb, dtype=dtype) if engine else None
        if engine:
            Cp = self._prepared_cands(str(Qp.data.dtype))
            packed = self._packed
            itemsize = float(Qp.data.dtype.itemsize)
        D_R = self._stage1_distances(Qb, recorder, Qp=Qp)
        dim = self.metric.dim(self.rep_data)
        # float32 windows/thresholds are slack-widened; candidate hits are
        # then verified with the exact float64 distance
        slack = 1e-4 if fp32 else 0.0

        keep = D_R <= (eps + self.radii[None, :]) * (1.0 + slack)
        parts_d: list[list[np.ndarray]] = [[] for _ in range(m)]
        parts_i: list[list[np.ndarray]] = [[] for _ in range(m)]
        with recorder.phase("exact:range"):
            for j in np.flatnonzero(keep.any(axis=0)):
                lst = self.lists[j]
                ld = self.list_dists[j]
                if lst.size == 0:
                    continue
                rows = np.flatnonzero(keep[:, j])
                tol = slack * (np.abs(D_R[rows, j]) + eps)
                lsl = np.searchsorted(ld, D_R[rows, j] - eps - tol, side="left")
                lsr = np.searchsorted(ld, D_R[rows, j] + eps + tol, side="right")
                nonempty = lsr > lsl
                rows, lsl, lsr = rows[nonempty], lsl[nonempty], lsr[nonempty]
                if rows.size == 0:
                    continue
                # one dense block over the union window; each row then keeps
                # its own two-sided slice
                wlo, whi = int(lsl.min()), int(lsr.max())
                window = lst[wlo:whi]
                if engine:
                    plo = int(packed.starts[j])
                    D = self.metric.pairwise_prepared(
                        Qp.take(rows), Cp.slice(plo + wlo, plo + whi)
                    )
                    _record_dist_tile(
                        recorder, self.metric, rows.size, window.size, dim,
                        "exact:range", itemsize=itemsize,
                    )
                else:
                    D = self.metric.pairwise(
                        self.metric.take(Qb, rows),
                        self.metric.take(self.X, window),
                    )
                    _record_dist_tile(
                        recorder, self.metric, rows.size, window.size, dim,
                        "exact:range",
                    )
                cols = np.arange(wlo, whi)[None, :]
                eps_scan = eps + slack * (1.0 + np.abs(D)) if fp32 else eps
                hit = (cols >= lsl[:, None]) & (cols < lsr[:, None]) & (D <= eps_scan)
                for t, i_row in enumerate(rows):
                    sel = np.flatnonzero(hit[t])
                    if not sel.size:
                        continue
                    if fp32:
                        # exact float64 verification of the float32 hits
                        d = self.metric.pairwise(
                            self.metric.take(Qb, [i_row]),
                            self.metric.take(self.X, window[sel]),
                        )[0]
                        inside = d <= eps
                        parts_d[i_row].append(d[inside])
                        parts_i[i_row].append(window[sel][inside])
                    else:
                        parts_d[i_row].append(D[t, sel])
                        parts_i[i_row].append(window[sel])

        out = []
        for r in range(m):
            if parts_d[r]:
                d = np.concatenate(parts_d[r])
                gi = np.concatenate(parts_i[r]).astype(np.int64)
                order = np.argsort(d, kind="stable")
                out.append((d[order], gi[order]))
            else:
                out.append((np.empty(0), np.empty(0, dtype=np.int64)))
        return out
