"""Parameter settings from the paper's theory section (§6).

Two settings are named in the paper:

* the **standard parameter setting** for exact search,
  ``n_r = c^{3/2} sqrt(n)``, which balances the two brute-force stages so
  each performs ``O(c^{3/2} sqrt(n))`` distance evaluations (Theorem 1);
* the **one-shot setting** of Theorem 2,
  ``n_r = s = c * sqrt(n * ln(1/delta))``, which guarantees the one-shot
  algorithm returns the true NN with probability at least ``1 - delta``.

``c`` is the expansion rate of the data (estimable with
:mod:`repro.dimension`); when unknown, ``c = 1`` reduces both to the
generic ``sqrt(n)`` rule, which Appendix C shows is robust in practice.
"""

from __future__ import annotations

import math

__all__ = ["standard_n_reps", "oneshot_params", "clip_reps"]


def clip_reps(n_reps: float, n: int) -> int:
    """Round and clip a representative count into ``[1, n]``."""
    if n < 1:
        raise ValueError("database must be non-empty")
    return max(1, min(int(round(n_reps)), n))


def standard_n_reps(n: int, c: float = 1.0) -> int:
    """The exact-search standard setting ``n_r = c^{3/2} sqrt(n)``.

    With this choice the expected second-stage work ``c^3 n / n_r`` equals
    the first-stage work ``n_r`` (Theorem 1), so total expected work is
    ``O(c^{3/2} sqrt(n))``.
    """
    if c < 1.0:
        raise ValueError("expansion rate c is always >= 1")
    return clip_reps(c**1.5 * math.sqrt(n), n)


def oneshot_params(n: int, c: float = 1.0, delta: float = 0.05) -> tuple[int, int]:
    """Theorem 2 setting: ``n_r = s = c sqrt(n ln(1/delta))``.

    Returns ``(n_reps, s)``; the one-shot algorithm with these parameters
    returns the exact NN with probability at least ``1 - delta``.
    """
    if not 0.0 < delta < 1.0:
        raise ValueError("delta must lie in (0, 1)")
    if c < 1.0:
        raise ValueError("expansion rate c is always >= 1")
    v = clip_reps(c * math.sqrt(n * math.log(1.0 / delta)), n)
    return v, v
