"""All-nearest-neighbors: k-NN graph construction.

The all-k-NN problem (every database point queries the database) is the
workhorse behind the manifold-learning methods the paper cites as the
reason intrinsic-dimension structure is common (LLE, Isomap — refs [26],
[27]): both start from a k-NN graph.  The RBC turns the naive O(n²) build
into two brute-force passes plus ~O(n√n) candidate work, and since queries
*are* database points, the self-match needs handling — done here.
"""

from __future__ import annotations

import numpy as np

from ..metrics.base import Metric
from ..parallel.bruteforce import bf_knn
from ..runtime.context import ExecContext, resolve_ctx
from .exact import ExactRBC

__all__ = ["knn_graph", "mutual_knn_graph", "knn_graph_networkx"]


def knn_graph(
    X,
    k: int,
    metric: str | Metric = "euclidean",
    *,
    method: str = "rbc",
    seed: int = 0,
    executor=None,
    ctx: ExecContext | None = None,
) -> tuple[np.ndarray, np.ndarray]:
    """k nearest neighbors of every database point (self excluded).

    ``method="rbc"`` builds an exact RBC and batch-queries it with the
    database itself; ``method="brute"`` is the O(n²) reference.  Both are
    exact; they return identical distances.  ``ctx`` carries the run's
    execution state (executor, recorder, dtype) into both build and query;
    the legacy ``executor=`` kwarg remains as the usual adapter.

    Returns ``(dist, idx)`` of shape ``(n, k)``, rows ascending.
    """
    if k < 1:
        raise ValueError("k must be >= 1")
    call = resolve_ctx(ctx, executor=executor)
    if method == "brute":
        d, i = bf_knn(X, X, metric, k=k + 1, ctx=call)
    elif method == "rbc":
        index = ExactRBC(metric=metric, seed=seed, executor=call.executor)
        index.build(X, ctx=call.transport())
        if index.n <= k:
            raise ValueError(f"need n > k, got n={index.n}, k={k}")
        d, i = index.query(X, k=k + 1, ctx=call)
    else:
        raise ValueError(f"unknown method {method!r}")
    return _drop_self(d, i, k)


def _drop_self(d: np.ndarray, i: np.ndarray, k: int):
    """Remove each row's own point from its (k+1)-NN list.

    Under exact duplicates the self-match can land anywhere in the tied
    block, so the row is searched for the identity index rather than
    assuming slot 0; if absent (ties beyond k+1), the last slot is
    dropped, which is a tie of equal distance.
    """
    n = d.shape[0]
    out_d = np.empty((n, k))
    out_i = np.empty((n, k), dtype=np.int64)
    for r in range(n):
        hit = np.flatnonzero(i[r] == r)
        drop = hit[0] if hit.size else k
        out_d[r] = np.delete(d[r], drop)
        out_i[r] = np.delete(i[r], drop)
    return out_d, out_i


def mutual_knn_graph(
    X, k: int, metric: str | Metric = "euclidean", **kwargs
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Mutual k-NN edges: (u, v) kept only if each is in the other's k-NN.

    Returns ``(rows, cols, dists)`` of the surviving undirected edges with
    ``rows < cols``.  Mutual graphs are the standard symmetrization for
    clustering/manifold pipelines.
    """
    d, i = knn_graph(X, k, metric, **kwargs)
    n = d.shape[0]
    neighbor_sets = [set(map(int, row)) for row in i]
    rows, cols, dists = [], [], []
    for u in range(n):
        for slot, v in enumerate(i[u]):
            v = int(v)
            if u < v and u in neighbor_sets[v]:
                rows.append(u)
                cols.append(v)
                dists.append(float(d[u, slot]))
    return (
        np.asarray(rows, dtype=np.int64),
        np.asarray(cols, dtype=np.int64),
        np.asarray(dists),
    )


def knn_graph_networkx(X, k: int, metric: str | Metric = "euclidean", **kwargs):
    """The k-NN graph as a weighted undirected ``networkx.Graph``.

    Edge weights are distances; an edge appears if either endpoint selects
    the other (the usual "symmetric" k-NN graph).
    """
    import networkx as nx

    d, i = knn_graph(X, k, metric, **kwargs)
    g = nx.Graph()
    g.add_nodes_from(range(d.shape[0]))
    for u in range(d.shape[0]):
        for slot in range(k):
            g.add_edge(u, int(i[u, slot]), weight=float(d[u, slot]))
    return g
