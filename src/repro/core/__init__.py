"""The paper's primary contribution: the Random Ball Cover.

:class:`OneShotRBC` — high-probability approximate search (paper §5.1).
:class:`ExactRBC` — guaranteed-exact search with triangle-inequality
pruning (paper §5.2).  Parameter rules from the theory section live in
:mod:`repro.core.params`.
"""

from .exact import ExactRBC
from .hierarchical import HierarchicalOneShotRBC
from .oneshot import OneShotRBC
from .params import clip_reps, oneshot_params, standard_n_reps
from .rbc import RBCBase, sample_representatives
from .serialize import load_index, save_index
from .stats import BuildStats, SearchStats

__all__ = [
    "ExactRBC",
    "HierarchicalOneShotRBC",
    "OneShotRBC",
    "load_index",
    "save_index",
    "clip_reps",
    "oneshot_params",
    "standard_n_reps",
    "RBCBase",
    "sample_representatives",
    "BuildStats",
    "SearchStats",
]
